package engine

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		got, err := Map(Pool{Workers: workers}, 20, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestPoolRunsEveryJobAndReportsLowestError(t *testing.T) {
	var ran atomic.Int64
	bad := errors.New("boom")
	err := Pool{Workers: 4}.Run(10, func(i int) error {
		ran.Add(1)
		if i == 3 || i == 7 {
			return fmt.Errorf("job failure %d: %w", i, bad)
		}
		return nil
	})
	if got := ran.Load(); got != 10 {
		t.Errorf("ran %d jobs, want 10 (later jobs must run despite an early failure)", got)
	}
	if err == nil || !errors.Is(err, bad) {
		t.Fatalf("error = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "job 3") {
		t.Errorf("error = %v, want the lowest-indexed failure (job 3)", err)
	}
}

// TestPoolPanicContainment pins the crash-safety contract on both executor
// paths: a panicking job fails with an error naming the job and carrying the
// stack, while the process survives and every other job completes normally.
func TestPoolPanicContainment(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var ran atomic.Int64
			out, err := Map(Pool{Workers: workers}, 10, func(i int) (int, error) {
				ran.Add(1)
				if i == 3 {
					panic("boom")
				}
				return i * i, nil
			})
			if got := ran.Load(); got != 10 {
				t.Errorf("ran %d jobs, want 10 (other jobs must complete despite the panic)", got)
			}
			if err == nil {
				t.Fatal("panicking job reported no error")
			}
			if !strings.Contains(err.Error(), "job 3 panicked: boom") {
				t.Errorf("error = %v, want %q", err, "job 3 panicked: boom")
			}
			var pe *PanicError
			if !errors.As(err, &pe) {
				t.Fatalf("error %v is not a *PanicError", err)
			}
			if pe.Job != 3 || pe.Value != "boom" {
				t.Errorf("PanicError = job %d value %v, want job 3 value boom", pe.Job, pe.Value)
			}
			if len(pe.Stack) == 0 || !strings.Contains(string(pe.Stack), "goroutine") {
				t.Error("PanicError does not carry the stack")
			}
			for i, v := range out {
				if i != 3 && v != i*i {
					t.Errorf("result[%d] = %d, want %d (non-panicking jobs must deliver)", i, v, i*i)
				}
			}
		})
	}
}

// TestPoolPanicLowestIndexWins pins deterministic reporting when several
// jobs panic: the lowest-indexed panic is the returned error.
func TestPoolPanicLowestIndexWins(t *testing.T) {
	_, err := Map(Pool{Workers: 4}, 10, func(i int) (int, error) {
		if i == 2 || i == 6 {
			panic(i)
		}
		return 0, nil
	})
	if err == nil || !strings.Contains(err.Error(), "job 2 panicked: 2") {
		t.Fatalf("error = %v, want the lowest-indexed panic (job 2)", err)
	}
}

func TestPoolZeroJobs(t *testing.T) {
	out, err := Map(Pool{}, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || out != nil {
		t.Fatalf("Map(0 jobs) = %v, %v; want nil, nil", out, err)
	}
}

func TestJobSeedDeterministicAndDistinct(t *testing.T) {
	seen := map[uint64]int{}
	for i := 0; i < 100; i++ {
		s := JobSeed(1, i)
		if s2 := JobSeed(1, i); s2 != s {
			t.Fatalf("JobSeed(1, %d) not deterministic: %d vs %d", i, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("JobSeed collision between jobs %d and %d", prev, i)
		}
		seen[s] = i
	}
	if JobSeed(1, 0) == JobSeed(2, 0) {
		t.Error("different base seeds produced the same job seed")
	}
}
