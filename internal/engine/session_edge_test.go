package engine

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/cpm-sim/cpm/internal/sim"
)

// TestSessionDegenerateWindows covers the configuration edges: zero and
// negative measurement windows are rejected outright; a warmup longer than
// the whole measurement window is legal and must leave the summary covering
// exactly the measured epochs.
func TestSessionDegenerateWindows(t *testing.T) {
	cmp, err := sim.New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, meas := range []int{0, -3} {
		if _, err := NewSession(NewChipRunner(cmp), SessionConfig{MeasureEpochs: meas}); err == nil {
			t.Errorf("MeasureEpochs = %d accepted", meas)
		}
	}

	// Warmup dominates the run: 5 warm epochs, 1 measured.
	const warm, meas, period = 5, 1, 10
	cmp, err = sim.New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	var steps, measured int
	s, err := NewSession(NewChipRunner(cmp), SessionConfig{WarmEpochs: warm, MeasureEpochs: meas, Period: period},
		Funcs{OnStep: func(st Step) {
			steps++
			if st.Measured {
				measured++
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Run()
	if steps != (warm+meas)*period || measured != meas*period {
		t.Errorf("steps = %d (measured %d), want %d (%d)", steps, measured, (warm+meas)*period, meas*period)
	}
	if len(sum.Epochs) != meas {
		t.Errorf("summary has %d epochs, want %d", len(sum.Epochs), meas)
	}
	if sum.MeanPowerW <= 0 || sum.Instructions <= 0 {
		t.Errorf("empty-looking summary after long warmup: %+v", sum)
	}
}

// TestSessionMutatingObserver runs the same managed configuration twice —
// once with a hostile observer that scribbles over every slice it is handed,
// once with a passive recorder — and requires bit-identical summaries. The
// session must never let an observer's writes feed back into aggregation.
func TestSessionMutatingObserver(t *testing.T) {
	run := func(obs ...Observer) Summary {
		r := newManaged(t, testConfig(t), 30)
		s, err := NewSession(r, SessionConfig{WarmEpochs: 1, MeasureEpochs: 3, BudgetW: 30}, obs...)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}

	scribble := func(xs []float64) {
		for i := range xs {
			xs[i] = -1e9
		}
	}
	hostile := Funcs{
		OnStep: func(st Step) {
			scribble(st.AllocW)
			for i := range st.Sim.Islands {
				st.Sim.Islands[i].PowerW = -1e9
				st.Sim.Islands[i].Instructions = -1e9
			}
		},
		OnEpoch: func(e Epoch) {
			scribble(e.AllocW)
			scribble(e.IslandPowerW)
			scribble(e.IslandBIPS)
		},
	}
	recorder := Funcs{} // sees the same events, touches nothing

	got := run(hostile)
	want := run(recorder)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("mutating observer changed the summary:\n got %+v\nwant %+v", got, want)
	}
	if got.IslandAlloc == nil || got.IslandAlloc[0][0] < 0 {
		t.Errorf("IslandAlloc corrupted: %v", got.IslandAlloc)
	}
}

// TestPoolMoreWorkersThanJobs checks the executor's small-batch edge: a pool
// sized far beyond the job count must still run every job exactly once,
// deliver results in job order, and report the lowest-indexed error.
func TestPoolMoreWorkersThanJobs(t *testing.T) {
	p := Pool{Workers: 64}
	var ran int32
	out, err := Map(p, 3, func(i int) (int, error) {
		atomic.AddInt32(&ran, 1)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Errorf("ran %d jobs, want 3", ran)
	}
	if !reflect.DeepEqual(out, []int{0, 1, 4}) {
		t.Errorf("out-of-order results: %v", out)
	}

	// Zero jobs: nothing runs, nothing fails.
	out, err = Map(p, 0, func(i int) (int, error) { return 0, errors.New("must not run") })
	if err != nil || out != nil {
		t.Errorf("Map with 0 jobs = (%v, %v)", out, err)
	}

	// Every job still runs on failure, and the lowest index wins.
	boom := errors.New("boom")
	ran = 0
	_, err = Map(Pool{Workers: 16}, 4, func(i int) (int, error) {
		atomic.AddInt32(&ran, 1)
		if i == 1 || i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if ran != 4 {
		t.Errorf("ran %d jobs after failure, want 4", ran)
	}
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if want := "engine: job 1:"; err.Error()[:len(want)] != want {
		t.Errorf("error %q does not name the lowest failing job", err)
	}

	// JobSeed must not depend on scheduling: derive twice, compare.
	for i := 0; i < 4; i++ {
		if JobSeed(99, i) != JobSeed(99, i) {
			t.Fatalf("JobSeed unstable for job %d", i)
		}
	}
	if JobSeed(99, 0) == JobSeed(99, 1) {
		t.Error("adjacent jobs share a seed")
	}
}
