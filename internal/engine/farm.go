package engine

import "errors"

// FarmRunner drives a set of sessions in lockstep rounds: every round steps
// each unfinished session exactly one interval, in session order. This is
// the driving discipline record-driven chips (sim.NewWithRecords) require —
// all chips sharing a sampler consume the same interval's record batch
// before any chip moves to the next — and it bounds the sampler's buffering
// to a single batch regardless of fleet size. Sessions may have different
// interval budgets; a session that exhausts its budget simply drops out of
// later rounds.
//
// A FarmRunner is single-use and not safe for concurrent use. Shard
// independent farms (separate samplers) across a Pool instead.
type FarmRunner struct {
	sessions []*Session
	done     []bool
	active   int
}

// NewFarmRunner binds the sessions of one farm shard.
func NewFarmRunner(sessions []*Session) (*FarmRunner, error) {
	if len(sessions) == 0 {
		return nil, errors.New("engine: farm needs at least one session")
	}
	for _, s := range sessions {
		if s == nil {
			return nil, errors.New("engine: nil session in farm")
		}
	}
	return &FarmRunner{
		sessions: sessions,
		done:     make([]bool, len(sessions)),
		active:   len(sessions),
	}, nil
}

// Sessions returns the driven sessions, in round order.
func (f *FarmRunner) Sessions() []*Session { return f.sessions }

// Active returns the number of sessions that still have intervals to run.
func (f *FarmRunner) Active() int { return f.active }

// StepRound advances every unfinished session one interval and returns the
// number still unfinished. Interleave with snapshotting to checkpoint a
// fleet between rounds — the only point where sharing chips and their
// sampler are mutually consistent.
func (f *FarmRunner) StepRound() int {
	for i, s := range f.sessions {
		if f.done[i] {
			continue
		}
		if s.RunIntervals(1) == 0 {
			f.done[i] = true
			f.active--
		}
	}
	return f.active
}

// Run steps rounds until every session's interval budget is exhausted,
// then finishes each session and returns the summaries in session order.
// onRound, when non-nil, is invoked after every round with the number of
// sessions completed so far and the total — the progress feed for
// fleet-scale CLIs.
func (f *FarmRunner) Run(onRound func(completed, total int)) []Summary {
	n := len(f.sessions)
	for f.active > 0 {
		f.StepRound()
		if onRound != nil {
			onRound(n-f.active, n)
		}
	}
	out := make([]Summary, n)
	for i, s := range f.sessions {
		out[i] = s.Run()
	}
	return out
}
