package engine

import (
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/sim"
)

// Step is one interval's unified observation, produced by every Runner.
type Step struct {
	// Index is the runner's interval counter (warmup included).
	Index int
	// Measured reports whether the interval fell inside the session's
	// measurement window (set by the Session, false for bare Runner use).
	Measured bool
	// Sim is the simulator's observation for the interval.
	Sim sim.Result
	// AllocW is the per-island provision in force during the interval
	// (nil for unmanaged and MaxBIPS runs).
	AllocW []float64
	// GPMInvoked reports whether this interval began a new GPM epoch.
	GPMInvoked bool
	// GPMObs carries the island observations the GPM provisioned from when
	// GPMInvoked is set on a managed run — the gpm-layer view, surfaced
	// through the manager's provision hook.
	GPMObs []gpm.IslandObs
}

// Clone returns a deep copy of the step, independent of the runner's and
// chip's per-interval scratch buffers (Sim.Islands, AllocW). Observers see
// steps synchronously and need no copy; anything retaining a Step across
// intervals must Clone it.
func (s Step) Clone() Step {
	s.Sim = s.Sim.Clone()
	s.AllocW = append([]float64(nil), s.AllocW...)
	s.GPMObs = append([]gpm.IslandObs(nil), s.GPMObs...)
	return s
}

// Epoch is one GPM epoch's aggregate over the measurement window.
type Epoch struct {
	// Index counts measured epochs from 0.
	Index int
	// MeanPowerW and MeanBIPS are chip means over the epoch.
	MeanPowerW float64
	MeanBIPS   float64
	// Instructions executed during the epoch.
	Instructions float64
	// BudgetW is the session's chip budget (0 when unmanaged).
	BudgetW float64
	// AllocW is the per-island provision at the epoch's last interval
	// (nil when the runner reports no allocations).
	AllocW []float64
	// IslandPowerW and IslandBIPS are per-island epoch means.
	IslandPowerW []float64
	IslandBIPS   []float64
}

// Observer receives a session's run-lifecycle, per-step and per-GPM-epoch
// events. Implementations must not retain the slices handed to them beyond
// the call unless documented otherwise; Session passes freshly allocated
// epoch slices, so observers may keep those.
type Observer interface {
	// RunStart is called once before the first interval.
	RunStart(info RunInfo)
	// ObserveStep is called after every interval, warmup included.
	ObserveStep(s Step)
	// ObserveEpoch is called at every measured GPM-epoch boundary.
	ObserveEpoch(e Epoch)
	// RunEnd is called once with the finished summary.
	RunEnd(sum *Summary)
}

// Funcs adapts optional callbacks to the Observer interface; nil fields are
// skipped.
type Funcs struct {
	OnRunStart func(RunInfo)
	OnStep     func(Step)
	OnEpoch    func(Epoch)
	OnRunEnd   func(*Summary)
}

// RunStart implements Observer.
func (f Funcs) RunStart(info RunInfo) {
	if f.OnRunStart != nil {
		f.OnRunStart(info)
	}
}

// ObserveStep implements Observer.
func (f Funcs) ObserveStep(s Step) {
	if f.OnStep != nil {
		f.OnStep(s)
	}
}

// ObserveEpoch implements Observer.
func (f Funcs) ObserveEpoch(e Epoch) {
	if f.OnEpoch != nil {
		f.OnEpoch(e)
	}
}

// RunEnd implements Observer.
func (f Funcs) RunEnd(sum *Summary) {
	if f.OnRunEnd != nil {
		f.OnRunEnd(sum)
	}
}
