package engine

import (
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/maxbips"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

func testConfig(t testing.TB) sim.Config {
	t.Helper()
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Seed = 7
	return cfg
}

func newManaged(t testing.TB, cfg sim.Config, budgetW float64) *CPMRunner {
	t.Helper()
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.New(cmp, core.Config{BudgetW: budgetW, UseOraclePower: true})
	if err != nil {
		t.Fatal(err)
	}
	return NewCPMRunner(ctl)
}

func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(nil, SessionConfig{MeasureEpochs: 1}); err == nil {
		t.Error("nil runner accepted")
	}
	cmp, err := sim.New(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(NewChipRunner(cmp), SessionConfig{}); err == nil {
		t.Error("zero measurement window accepted")
	}
	if _, err := NewSession(NewChipRunner(cmp), SessionConfig{MeasureEpochs: 1, WarmEpochs: -1}); err == nil {
		t.Error("negative warmup accepted")
	}
}

// TestSessionUnmanagedSummary checks that the session's aggregates equal a
// hand-rolled loop over an identical chip.
func TestSessionUnmanagedSummary(t *testing.T) {
	cfg := testConfig(t)
	const warm, meas, period = 1, 3, 20

	// Reference: bespoke loop, as the experiment harnesses used to do.
	ref, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < warm*period; k++ {
		ref.Step()
	}
	var wantPow, wantInstr float64
	for k := 0; k < meas*period; k++ {
		r := ref.Step()
		wantPow += r.ChipPowerW
		for _, ir := range r.Islands {
			wantInstr += ir.Instructions
		}
	}
	wantPow /= meas * period

	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(NewChipRunner(cmp), SessionConfig{WarmEpochs: warm, MeasureEpochs: meas, Period: period})
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Run()

	if math.Abs(sum.MeanPowerW-wantPow) > 1e-9*wantPow {
		t.Errorf("MeanPowerW = %v, want %v", sum.MeanPowerW, wantPow)
	}
	if math.Abs(sum.Instructions-wantInstr) > 1e-6 {
		t.Errorf("Instructions = %v, want %v", sum.Instructions, wantInstr)
	}
	if len(sum.Epochs) != meas || len(sum.EpochInstr) != meas {
		t.Fatalf("epoch series lengths = %d/%d, want %d", len(sum.Epochs), len(sum.EpochInstr), meas)
	}
	var epochInstr float64
	for _, v := range sum.EpochInstr {
		epochInstr += v
	}
	if math.Abs(epochInstr-sum.Instructions) > 1e-6 {
		t.Errorf("EpochInstr sums to %v, Instructions = %v", epochInstr, sum.Instructions)
	}
	if sum.IslandAlloc != nil || sum.AllocTrace != nil {
		t.Error("unmanaged run recorded allocations")
	}
	if sum.WorstEpochOver != 0 {
		t.Error("unmanaged run has budget overshoot")
	}
	for i, series := range sum.IslandPower {
		if len(series) != meas {
			t.Errorf("island %d power series length %d, want %d", i, len(series), meas)
		}
	}
}

// TestSessionManagedObservers checks the observer event protocol on a
// managed run: ordering, counts, epoch payloads and gpm-layer observations.
func TestSessionManagedObservers(t *testing.T) {
	cfg := testConfig(t)
	const warm, meas, period = 2, 3, 20
	r := newManaged(t, cfg, 30)

	var starts, ends, steps, measured, epochs, gpmObs int
	var lastInfo RunInfo
	obs := Funcs{
		OnRunStart: func(info RunInfo) { starts++; lastInfo = info },
		OnStep: func(s Step) {
			steps++
			if s.Measured {
				measured++
			}
			if s.GPMInvoked && len(s.GPMObs) > 0 {
				gpmObs++
			}
		},
		OnEpoch: func(e Epoch) {
			if e.Index != epochs {
				t.Errorf("epoch index %d, want %d", e.Index, epochs)
			}
			if e.BudgetW != 30 {
				t.Errorf("epoch budget %v, want 30", e.BudgetW)
			}
			if len(e.AllocW) != 4 || len(e.IslandPowerW) != 4 || len(e.IslandBIPS) != 4 {
				t.Errorf("epoch island payload lengths %d/%d/%d, want 4",
					len(e.AllocW), len(e.IslandPowerW), len(e.IslandBIPS))
			}
			epochs++
		},
		OnRunEnd: func(sum *Summary) {
			ends++
			if sum.MeanPowerW <= 0 {
				t.Error("summary delivered before aggregation")
			}
		},
	}
	s, err := NewSession(r, SessionConfig{
		WarmEpochs: warm, MeasureEpochs: meas, Period: period, BudgetW: 30,
		KeepSteps: true, Label: "cpm",
	}, obs)
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Run()

	if starts != 1 || ends != 1 {
		t.Errorf("RunStart/RunEnd = %d/%d, want 1/1", starts, ends)
	}
	if steps != (warm+meas)*period || measured != meas*period {
		t.Errorf("steps = %d (measured %d), want %d (%d)", steps, measured, (warm+meas)*period, meas*period)
	}
	if epochs != meas {
		t.Errorf("epochs observed = %d, want %d", epochs, meas)
	}
	if gpmObs == 0 {
		t.Error("no gpm-layer observations surfaced through the provision hook")
	}
	if lastInfo.Islands != 4 || lastInfo.Cores != 8 || lastInfo.BudgetW != 30 || lastInfo.Label != "cpm" {
		t.Errorf("bad RunInfo: %+v", lastInfo)
	}
	if len(sum.Steps) != meas*period {
		t.Errorf("KeepSteps recorded %d steps, want %d", len(sum.Steps), meas*period)
	}
	if len(sum.AllocTrace) != meas {
		t.Errorf("AllocTrace has %d entries, want %d (one per measured GPM invocation)", len(sum.AllocTrace), meas)
	}
	for i, series := range sum.IslandAlloc {
		if len(series) != meas {
			t.Errorf("island %d alloc series length %d, want %d", i, len(series), meas)
		}
	}
}

// TestSessionMaxBIPSMatchesBespokeLoop pins the MaxBIPSRunner to the loop
// structure the experiments package used before the engine existed.
func TestSessionMaxBIPSMatchesBespokeLoop(t *testing.T) {
	cfg := testConfig(t)
	const warm, meas, period = 1, 2, 20
	const budget = 30.0

	build := func() (*sim.CMP, *maxbips.Planner) {
		cmp, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := maxbips.New(cmp.Table())
		if err != nil {
			t.Fatal(err)
		}
		if err := pl.SetStaticTable(StaticPredictionTable(cmp)); err != nil {
			t.Fatal(err)
		}
		return cmp, pl
	}

	// Reference: the historical inline loop.
	refCMP, refPl := build()
	n := refCMP.NumIslands()
	obs := make([]maxbips.IslandObs, n)
	epochPow := make([]float64, n)
	epochBIPS := make([]float64, n)
	haveObs := false
	var wantPow float64
	total := (warm + meas) * period
	for k := 0; k < total; k++ {
		if k%period == 0 && haveObs {
			for i := 0; i < n; i++ {
				obs[i] = maxbips.IslandObs{Level: refCMP.Level(i), PowerW: epochPow[i] / period, BIPS: epochBIPS[i] / period}
				epochPow[i], epochBIPS[i] = 0, 0
			}
			for i, lvl := range refPl.Choose(budget, obs) {
				refCMP.SetLevel(i, lvl)
			}
		} else if k%period == 0 {
			for i := range epochPow {
				epochPow[i], epochBIPS[i] = 0, 0
			}
		}
		r := refCMP.Step()
		for i, ir := range r.Islands {
			epochPow[i] += ir.PowerW
			epochBIPS[i] += ir.BIPS
		}
		if (k+1)%period == 0 {
			haveObs = true
		}
		if k >= warm*period {
			wantPow += r.ChipPowerW
		}
	}
	wantPow /= meas * period

	cmp, pl := build()
	runner, err := NewMaxBIPSRunner(cmp, pl, budget, period)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(runner, SessionConfig{WarmEpochs: warm, MeasureEpochs: meas, Period: period, BudgetW: budget})
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Run()
	if sum.MeanPowerW != wantPow {
		t.Errorf("MaxBIPS session mean power = %v, bespoke loop = %v", sum.MeanPowerW, wantPow)
	}
}

func TestDegradationGuards(t *testing.T) {
	cases := []struct {
		name      string
		run, base float64
		want      float64
	}{
		{"zero baseline", 100, 0, 0},
		{"near-zero baseline", 100, 1e-12, 0},
		{"negative baseline", 100, -5, 0},
		{"both zero", 0, 0, 0},
		{"normal", 90, 100, 0.1},
		{"run exceeds baseline", 110, 100, 0},
	}
	for _, c := range cases {
		got := DegradationRatio(c.run, c.base)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: DegradationRatio(%v, %v) = %v, want %v", c.name, c.run, c.base, got, c.want)
		}
		gotSum := Degradation(Summary{Instructions: c.run}, Summary{Instructions: c.base})
		if gotSum != got {
			t.Errorf("%s: Degradation disagrees with DegradationRatio", c.name)
		}
	}
}
