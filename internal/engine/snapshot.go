package engine

import (
	"errors"

	"github.com/cpm-sim/cpm/internal/snapshot"
)

// ResumeAware is the optional capability an Observer implements when it
// needs to distinguish a run resumed from a snapshot from one started
// fresh. Session.Restore fires RunResumed (after RunStart) with the number
// of intervals the run had already completed when it was captured, so
// whole-run aggregators can stand down checks that need the full window.
type ResumeAware interface {
	RunResumed(completedIntervals int)
}

// SnapshotRunner is the optional capability a Runner implements when it can
// checkpoint its complete state (chip included) between Steps. All runners
// in this package implement it.
type SnapshotRunner interface {
	Runner
	// Snapshot appends the runner's complete dynamic state.
	Snapshot(e *snapshot.Encoder) error
	// Restore reads state written by Snapshot into a freshly constructed
	// runner of the same kind over an equivalently configured chip.
	Restore(d *snapshot.Decoder) error
}

// Runner kind bytes, written first so a snapshot restored into the wrong
// runner type fails loudly instead of misinterpreting bytes.
const (
	runnerKindCPM     = 1
	runnerKindChip    = 2
	runnerKindMaxBIPS = 3
)

// Snapshot implements SnapshotRunner. The GPM-observation scratch buffer is
// reset at the start of every Step and therefore not state.
func (r *CPMRunner) Snapshot(e *snapshot.Encoder) error {
	e.Tag(snapshot.TagRunner)
	e.U8(runnerKindCPM)
	e.Int(r.k)
	return r.ctl.Snapshot(e)
}

// Restore implements SnapshotRunner.
func (r *CPMRunner) Restore(d *snapshot.Decoder) error {
	k, err := decodeRunnerHead(d, runnerKindCPM)
	if err != nil {
		return err
	}
	if err := r.ctl.Restore(d); err != nil {
		return err
	}
	r.k = k
	return nil
}

// Snapshot implements SnapshotRunner.
func (r *ChipRunner) Snapshot(e *snapshot.Encoder) error {
	e.Tag(snapshot.TagRunner)
	e.U8(runnerKindChip)
	e.Int(r.k)
	return r.cmp.Snapshot(e)
}

// Restore implements SnapshotRunner.
func (r *ChipRunner) Restore(d *snapshot.Decoder) error {
	k, err := decodeRunnerHead(d, runnerKindChip)
	if err != nil {
		return err
	}
	if err := r.cmp.Restore(d); err != nil {
		return err
	}
	r.k = k
	return nil
}

// Snapshot implements SnapshotRunner. The planner is stateless
// configuration; the observation scratch buffer is fully overwritten before
// each use. The epoch accumulators and primed flag are the runner's state.
func (r *MaxBIPSRunner) Snapshot(e *snapshot.Encoder) error {
	e.Tag(snapshot.TagRunner)
	e.U8(runnerKindMaxBIPS)
	e.Int(r.k)
	e.Bool(r.haveObs)
	e.F64s(r.epochPow)
	e.F64s(r.epochBIPS)
	return r.cmp.Snapshot(e)
}

// Restore implements SnapshotRunner.
func (r *MaxBIPSRunner) Restore(d *snapshot.Decoder) error {
	k, err := decodeRunnerHead(d, runnerKindMaxBIPS)
	if err != nil {
		return err
	}
	haveObs := d.Bool()
	epochPow := d.F64s()
	epochBIPS := d.F64s()
	if err := d.Err(); err != nil {
		return err
	}
	if len(epochPow) != len(r.epochPow) || len(epochBIPS) != len(r.epochBIPS) {
		return snapshot.ShapeErrorf("maxbips accumulators sized %d/%d, runner has %d islands",
			len(epochPow), len(epochBIPS), len(r.epochPow))
	}
	if err := r.cmp.Restore(d); err != nil {
		return err
	}
	r.k = k
	r.haveObs = haveObs
	copy(r.epochPow, epochPow)
	copy(r.epochBIPS, epochBIPS)
	return nil
}

// decodeRunnerHead reads the shared runner prelude and validates the kind.
func decodeRunnerHead(d *snapshot.Decoder, wantKind uint8) (k int, err error) {
	d.Tag(snapshot.TagRunner)
	kind := d.U8()
	k = d.Int()
	if err := d.Err(); err != nil {
		return 0, err
	}
	if kind != wantKind {
		return 0, snapshot.ShapeErrorf("snapshot holds runner kind %d, target is kind %d", kind, wantKind)
	}
	if k < 0 {
		return 0, snapshot.ShapeErrorf("negative runner interval counter %d", k)
	}
	return k, nil
}

// Snapshot appends the session's complete state between intervals: a
// configuration echo, the runner (chip included), the interval cursor, the
// summary under construction and the epoch accumulators. The runner must
// implement SnapshotRunner; sessions recording raw steps
// (SessionConfig.KeepSteps) and sessions that have not started or have
// already finished are not checkpointable.
func (s *Session) Snapshot(e *snapshot.Encoder) error {
	sr, ok := s.runner.(SnapshotRunner)
	if !ok {
		return errors.New("engine: runner does not support snapshots")
	}
	if s.cfg.KeepSteps {
		return errors.New("engine: KeepSteps sessions are not checkpointable")
	}
	if s.prog == nil {
		return errors.New("engine: session not started; snapshot the chip instead")
	}
	if s.prog.finished {
		return errors.New("engine: session already finished")
	}
	p := s.prog
	e.Tag(snapshot.TagSession)
	e.Int(s.cfg.WarmEpochs)
	e.Int(s.cfg.MeasureEpochs)
	e.Int(s.cfg.Period)
	e.F64(s.cfg.BudgetW)
	if err := sr.Snapshot(e); err != nil {
		return err
	}
	e.Int(p.k)
	e.Tag(snapshot.TagSummary)
	e.F64(p.sum.MeanPowerW) // still the raw sum; finish divides
	e.F64(p.sum.MeanBIPS)   // likewise
	e.F64(p.sum.Instructions)
	e.F64(p.sum.WorstEpochOver)
	e.F64(p.sum.MaxTempC)
	e.F64s(p.sum.Epochs)
	e.F64s(p.sum.EpochInstr)
	encodeMatrix(e, p.sum.IslandAlloc)
	encodeMatrix(e, p.sum.IslandPower)
	encodeMatrix(e, p.sum.IslandBIPS)
	encodeMatrix(e, p.sum.AllocTrace)
	e.F64(p.epochPow)
	e.F64(p.epochInstr)
	e.F64(p.epochBIPSAcc)
	e.F64s(p.epochIslPow)
	e.F64s(p.epochIslBIPS)
	e.Bool(p.managed)
	e.Bool(p.lastAlloc != nil)
	if p.lastAlloc != nil {
		e.F64s(p.lastAlloc)
	}
	return nil
}

// Restore reads state written by Snapshot into a freshly constructed,
// not-yet-started session with an equivalent configuration, runner kind and
// chip, then announces the (resumed) run to observers. Restore stateful
// observers AFTER the session: the RunStart fired here resets them, and
// their own Restore then reinstates the captured state.
func (s *Session) Restore(d *snapshot.Decoder) error {
	sr, ok := s.runner.(SnapshotRunner)
	if !ok {
		return errors.New("engine: runner does not support snapshots")
	}
	if s.cfg.KeepSteps {
		return errors.New("engine: KeepSteps sessions are not checkpointable")
	}
	if s.prog != nil {
		return errors.New("engine: session already started")
	}
	d.Tag(snapshot.TagSession)
	warmE := d.Int()
	measE := d.Int()
	period := d.Int()
	budget := d.F64()
	if err := d.Err(); err != nil {
		return err
	}
	if warmE != s.cfg.WarmEpochs || measE != s.cfg.MeasureEpochs ||
		period != s.cfg.Period || budget != s.cfg.BudgetW {
		return snapshot.ShapeErrorf(
			"snapshot session shape warm=%d meas=%d period=%d budget=%g, target warm=%d meas=%d period=%d budget=%g",
			warmE, measE, period, budget,
			s.cfg.WarmEpochs, s.cfg.MeasureEpochs, s.cfg.Period, s.cfg.BudgetW)
	}
	if err := sr.Restore(d); err != nil {
		return err
	}
	k := d.Int()
	d.Tag(snapshot.TagSummary)
	var sum Summary
	sum.MeanPowerW = d.F64()
	sum.MeanBIPS = d.F64()
	sum.Instructions = d.F64()
	sum.WorstEpochOver = d.F64()
	sum.MaxTempC = d.F64()
	sum.Epochs = d.F64s()
	sum.EpochInstr = d.F64s()
	sum.IslandAlloc = decodeMatrix(d)
	sum.IslandPower = decodeMatrix(d)
	sum.IslandBIPS = decodeMatrix(d)
	sum.AllocTrace = decodeMatrix(d)
	epochPow := d.F64()
	epochInstr := d.F64()
	epochBIPSAcc := d.F64()
	epochIslPow := d.F64s()
	epochIslBIPS := d.F64s()
	managed := d.Bool()
	var lastAlloc []float64
	if d.Bool() {
		lastAlloc = d.F64s()
	}
	if err := d.Err(); err != nil {
		return err
	}
	n := s.runner.Chip().NumIslands()
	warm := s.cfg.WarmEpochs * s.cfg.Period
	meas := s.cfg.MeasureEpochs * s.cfg.Period
	if k < 0 || k > warm+meas {
		return snapshot.ShapeErrorf("session cursor %d outside run of %d intervals", k, warm+meas)
	}
	if len(epochIslPow) != n || len(epochIslBIPS) != n ||
		len(sum.IslandPower) != n || len(sum.IslandBIPS) != n {
		return snapshot.ShapeErrorf("session island arrays do not match %d islands", n)
	}
	if sum.IslandAlloc != nil && len(sum.IslandAlloc) != n {
		return snapshot.ShapeErrorf("session allocation matrix sized %d, chip has %d islands", len(sum.IslandAlloc), n)
	}
	s.prog = &runProgress{
		k:            k,
		warm:         warm,
		meas:         meas,
		n:            n,
		sum:          sum,
		epochPow:     epochPow,
		epochInstr:   epochInstr,
		epochBIPSAcc: epochBIPSAcc,
		epochIslPow:  epochIslPow,
		epochIslBIPS: epochIslBIPS,
		managed:      managed,
		lastAlloc:    lastAlloc,
	}
	info := s.Info()
	for _, o := range s.obs {
		o.RunStart(info)
	}
	for _, o := range s.obs {
		if ra, ok := o.(ResumeAware); ok {
			ra.RunResumed(k)
		}
	}
	return nil
}

// encodeMatrix appends a slice of float64 rows; a nil matrix is encoded as
// zero rows (never-allocated and empty are not distinguished).
func encodeMatrix(e *snapshot.Encoder, m [][]float64) {
	e.Int(len(m))
	for _, row := range m {
		e.F64s(row)
	}
}

// decodeMatrix reads what encodeMatrix wrote, returning nil for zero rows.
func decodeMatrix(d *snapshot.Decoder) [][]float64 {
	n := d.Int()
	if d.Err() != nil || n <= 0 {
		return nil
	}
	if n > d.Remaining()/8 {
		// Bound by remaining bytes (each row costs at least a length
		// word) so a corrupt count cannot force a huge allocation.
		d.Fail("matrix row count %d exceeds remaining input", n)
		return nil
	}
	m := make([][]float64, n)
	for i := range m {
		m[i] = d.F64s()
	}
	return m
}
