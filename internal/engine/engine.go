// Package engine is the unified run layer every simulator consumer sits
// on: experiment harnesses, the CLIs and the examples all drive the chip
// through one Session abstraction (config → warmup epochs → measurement
// window → summary) instead of re-implementing their own warmup/measure/
// record loops.
//
// The pieces compose as follows:
//
//   - a Runner adapts one steppable system — the CPM-managed chip
//     (CPMRunner), the raw unmanaged chip (ChipRunner) or the MaxBIPS
//     baseline (MaxBIPSRunner) — to a single per-interval Step observation;
//   - a Session drives a Runner through warmup and measurement, aggregates
//     the measurement window into a Summary, and fans every run-lifecycle,
//     per-step and per-GPM-epoch event out to pluggable Observers, so
//     tracing, CSV export, ASCII charts and shape assertions are composable
//     instead of bespoke field-scraping;
//   - a Pool executes independent Sessions concurrently with deterministic
//     per-job seeding and order-preserving results, which is what makes
//     parameter sweeps scale with the machine while staying byte-identical
//     to serial execution.
package engine

// RunInfo describes a session to observers at run start.
type RunInfo struct {
	// Label names the run in reports ("cpm", "maxbips", "unmanaged", or a
	// caller-chosen tag).
	Label string
	// Islands and Cores describe the chip.
	Islands int
	Cores   int
	// Period is the number of PIC intervals per GPM epoch.
	Period int
	// WarmIntervals and MeasureIntervals are the two window lengths.
	WarmIntervals    int
	MeasureIntervals int
	// BudgetW is the chip power budget (0 for unmanaged runs).
	BudgetW float64
	// IntervalSec is the simulation interval length.
	IntervalSec float64
}

// minBaselineInstr is the smallest baseline instruction count a
// degradation ratio is defined against; anything at or below it (an empty
// or degenerate measurement window) yields a degradation of 0 rather than
// an Inf/NaN that would poison downstream aggregates.
const minBaselineInstr = 1e-9

// Degradation returns the throughput loss of run vs baseline as a fraction
// in [0, 1]. A zero or near-zero baseline (nothing executed during the
// window) returns 0 by definition.
func Degradation(run, baseline Summary) float64 {
	return DegradationRatio(run.Instructions, baseline.Instructions)
}

// DegradationRatio is Degradation over raw instruction counts.
func DegradationRatio(runInstr, baseInstr float64) float64 {
	if baseInstr <= minBaselineInstr {
		return 0
	}
	d := 1 - runInstr/baseInstr
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}
