package engine

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"github.com/cpm-sim/cpm/internal/stats"
)

// Pool is a worker-pool batch executor for independent jobs — typically one
// Session per job. Jobs run concurrently but results are always delivered
// in job order, so any output assembled from them is byte-identical to
// serial execution regardless of worker count.
type Pool struct {
	// Workers is the maximum number of concurrent jobs; values ≤ 0 select
	// runtime.GOMAXPROCS(0). Workers == 1 is the serial path.
	Workers int
}

// workers resolves the effective worker count for n jobs.
func (p Pool) workers(n int) int {
	w := p.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Run executes jobs 0..n-1 and blocks until all complete. Every job runs
// even if an earlier one fails; the returned error is the failure with the
// lowest job index, making error reporting deterministic under concurrency.
func (p Pool) Run(n int, job func(i int) error) error {
	_, err := Map(p, n, func(i int) (struct{}, error) {
		return struct{}{}, job(i)
	})
	return err
}

// PanicError is the error a job that panicked fails with. Only that job
// fails: its panic is recovered inside the pool, so the process — and every
// other job, serial or pooled — completes normally.
type PanicError struct {
	// Job is the index of the panicking job.
	Job int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error names the job and the panic value; the captured stack rides in the
// Stack field for callers that want the full trace.
func (p *PanicError) Error() string {
	return fmt.Sprintf("job %d panicked: %v", p.Job, p.Value)
}

// Map executes jobs 0..n-1 and returns their results in job order. Like
// Run, it executes every job and reports the lowest-indexed error. A job
// that panics fails with a *PanicError instead of crashing the process (or,
// on the serial path, propagating to the caller); the remaining jobs still
// run.
func Map[T any](p Pool, n int, job func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	run := func(i int) (out T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Job: i, Value: r, Stack: debug.Stack()}
			}
		}()
		return job(i)
	}
	out := make([]T, n)
	errs := make([]error, n)
	w := p.workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = run(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		wg.Add(w)
		for g := 0; g < w; g++ {
			go func() {
				defer wg.Done()
				for i := range jobs {
					out[i], errs[i] = run(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			var pe *PanicError
			if errors.As(err, &pe) {
				return out, fmt.Errorf("engine: %w", err)
			}
			return out, fmt.Errorf("engine: job %d: %w", i, err)
		}
	}
	return out, nil
}

// JobSeed derives a deterministic per-job seed from a base seed, using the
// same splitmix derivation the simulator uses per core — job i always gets
// the same stream no matter how jobs are scheduled across workers.
func JobSeed(base uint64, i int) uint64 {
	return stats.DeriveSeed(base, uint64(i))
}
