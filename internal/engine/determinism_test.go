package engine

import (
	"hash/fnv"
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

// seriesHash folds a run's full per-interval power/BIPS series (chip and
// per island) into one hash, so executor equivalence is asserted
// bit-for-bit, as the sim package's parallel-executor comment promises.
func seriesHash(steps []Step) uint64 {
	h := fnv.New64a()
	word := func(v float64) {
		b := math.Float64bits(v)
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(b >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, s := range steps {
		word(s.Sim.ChipPowerW)
		word(s.Sim.TotalBIPS)
		for _, ir := range s.Sim.Islands {
			word(ir.PowerW)
			word(ir.BIPS)
		}
	}
	return h.Sum64()
}

// runManagedSteps executes one managed session and returns its measured
// steps.
func runManagedSteps(t testing.TB, parallel bool) []Step {
	t.Helper()
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Seed = 11
	cfg.Parallel = parallel
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.New(cmp, core.Config{BudgetW: 28, UseOraclePower: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(NewCPMRunner(ctl), SessionConfig{
		WarmEpochs: 1, MeasureEpochs: 3, BudgetW: 28, KeepSteps: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Run()
	return sum.Steps
}

// TestCrossExecutorDeterminism drives the same config + seed through the
// sequential executor, the parallel island executor, and sessions running
// inside an engine.Pool, and requires identical per-interval power/BIPS
// series from all three paths.
func TestCrossExecutorDeterminism(t *testing.T) {
	seq := seriesHash(runManagedSteps(t, false))
	par := seriesHash(runManagedSteps(t, true))
	if seq != par {
		t.Fatalf("Parallel executor diverged from sequential: %x vs %x", par, seq)
	}

	// Several identical jobs concurrently through the pool: every job must
	// reproduce the sequential hash even while racing with its siblings.
	hashes, err := Map(Pool{Workers: 4}, 4, func(i int) (uint64, error) {
		return seriesHash(runManagedSteps(t, true)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hashes {
		if h != seq {
			t.Fatalf("pool job %d diverged: %x vs %x", i, h, seq)
		}
	}
}
