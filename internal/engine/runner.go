package engine

import (
	"errors"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/sim"
)

// Runner adapts one steppable system to the engine: each call advances the
// chip by one PIC interval and returns the unified observation. Runners are
// single-use and not safe for concurrent use; run independent Runners in
// parallel via Pool instead.
type Runner interface {
	// Step advances the system one interval.
	Step() Step
	// Chip returns the underlying simulator instance.
	Chip() *sim.CMP
}

// CPMRunner drives a CPM-managed chip. It registers a provision hook on the
// controller's GPM so observers see the gpm-layer island observations at
// every epoch boundary, not just the resulting allocations.
type CPMRunner struct {
	ctl *core.CPM
	k   int
	obs []gpm.IslandObs
}

// NewCPMRunner wraps a two-tier controller.
func NewCPMRunner(ctl *core.CPM) *CPMRunner {
	r := &CPMRunner{ctl: ctl}
	ctl.Manager().AddProvisionHook(func(_ float64, obs []gpm.IslandObs, _ []float64) {
		r.obs = append(r.obs[:0], obs...)
	})
	return r
}

// Chip implements Runner.
func (r *CPMRunner) Chip() *sim.CMP { return r.ctl.Chip() }

// Controller returns the wrapped CPM instance.
func (r *CPMRunner) Controller() *core.CPM { return r.ctl }

// Step implements Runner.
func (r *CPMRunner) Step() Step {
	r.obs = r.obs[:0]
	sr := r.ctl.Step()
	st := Step{Index: r.k, Sim: sr.Sim, AllocW: sr.AllocW, GPMInvoked: sr.GPMInvoked}
	if sr.GPMInvoked && len(r.obs) > 0 {
		st.GPMObs = append([]gpm.IslandObs(nil), r.obs...)
	}
	r.k++
	return st
}

// ChipRunner drives a raw chip with no power management — the unmanaged
// baseline every degradation figure normalizes against.
type ChipRunner struct {
	cmp *sim.CMP
	k   int
}

// NewChipRunner wraps an unmanaged chip.
func NewChipRunner(cmp *sim.CMP) *ChipRunner { return &ChipRunner{cmp: cmp} }

// Chip implements Runner.
func (r *ChipRunner) Chip() *sim.CMP { return r.cmp }

// Step implements Runner.
func (r *ChipRunner) Step() Step {
	st := Step{Index: r.k, Sim: r.cmp.Step()}
	r.k++
	return st
}

// errNilChip is shared by the runner constructors that validate their chip.
var errNilChip = errors.New("engine: nil chip")
