package engine

import (
	"errors"

	"github.com/cpm-sim/cpm/internal/maxbips"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
)

// MaxBIPSRunner drives the MaxBIPS baseline: every period intervals the
// planner picks the level combination maximizing predicted BIPS under the
// budget, predicting either from a workload-blind static characterization
// table (the paper's comparison setup) or from last-epoch per-island
// observations (the original Isci et al. formulation).
type MaxBIPSRunner struct {
	cmp     *sim.CMP
	planner *maxbips.Planner
	budgetW float64
	period  int

	k         int
	haveObs   bool
	epochPow  []float64
	epochBIPS []float64
	obs       []maxbips.IslandObs
}

// NewMaxBIPSRunner wraps a chip and planner. period ≤ 0 selects the default
// of 20 intervals (50 ms of 2.5 ms intervals).
func NewMaxBIPSRunner(cmp *sim.CMP, planner *maxbips.Planner, budgetW float64, period int) (*MaxBIPSRunner, error) {
	if cmp == nil {
		return nil, errNilChip
	}
	if planner == nil {
		return nil, errors.New("engine: nil MaxBIPS planner")
	}
	if budgetW <= 0 {
		return nil, errors.New("engine: non-positive MaxBIPS budget")
	}
	if period <= 0 {
		period = 20
	}
	n := cmp.NumIslands()
	return &MaxBIPSRunner{
		cmp:       cmp,
		planner:   planner,
		budgetW:   budgetW,
		period:    period,
		epochPow:  make([]float64, n),
		epochBIPS: make([]float64, n),
		obs:       make([]maxbips.IslandObs, n),
	}, nil
}

// Chip implements Runner.
func (r *MaxBIPSRunner) Chip() *sim.CMP { return r.cmp }

// Step implements Runner.
func (r *MaxBIPSRunner) Step() Step {
	if r.k%r.period == 0 && r.haveObs {
		for i := range r.obs {
			r.obs[i] = maxbips.IslandObs{
				Level:  r.cmp.Level(i),
				PowerW: r.epochPow[i] / float64(r.period),
				BIPS:   r.epochBIPS[i] / float64(r.period),
			}
			r.epochPow[i], r.epochBIPS[i] = 0, 0
		}
		for i, lvl := range r.planner.Choose(r.budgetW, r.obs) {
			r.cmp.SetLevel(i, lvl)
		}
	} else if r.k%r.period == 0 {
		for i := range r.epochPow {
			r.epochPow[i], r.epochBIPS[i] = 0, 0
		}
	}
	res := r.cmp.Step()
	for i, ir := range res.Islands {
		r.epochPow[i] += ir.PowerW
		r.epochBIPS[i] += ir.BIPS
	}
	if (r.k+1)%r.period == 0 {
		r.haveObs = true
	}
	st := Step{Index: r.k, Sim: res, GPMInvoked: r.k%r.period == 0}
	r.k++
	return st
}

// StaticPredictionTable builds the characterization table the static
// MaxBIPS selects from: per island and level, the nominal power of its
// cores at a typical 70% activity plus reference-temperature leakage — the
// kind of offline table a datasheet-driven implementation would carry.
// Every island is characterized from its *own* model and table, so row
// lengths differ on a chip whose islands run different tables.
func StaticPredictionTable(cmp *sim.CMP) [][]float64 {
	out := make([][]float64, cmp.NumIslands())
	for i := range out {
		m := cmp.IslandModel(i)
		tbl := cmp.IslandTable(i)
		out[i] = make([]float64, tbl.Levels())
		for l := 0; l < tbl.Levels(); l++ {
			op := tbl.Point(l)
			corePred := 0.7*m.Dynamic.Power(op, power.FullActivity()) +
				m.Leakage.Power(op.VoltageV, m.Leakage.TRefC, 1)
			out[i][l] = corePred * float64(cmp.IslandCores(i))
		}
	}
	return out
}

// NewPlanner builds an observation-driven (adaptive) MaxBIPS planner over
// the chip's own per-island tables, so heterogeneous chips are planned on
// the right axes.
func NewPlanner(cmp *sim.CMP) (*maxbips.Planner, error) {
	tables := make([]*power.DVFSTable, cmp.NumIslands())
	for i := range tables {
		tables[i] = cmp.IslandTable(i)
	}
	return maxbips.NewPerIsland(tables)
}

// NewStaticPlanner builds the static-table MaxBIPS planner for a chip —
// one planning table per island plus the StaticPredictionTable — the one
// constructor every driver (sweep, farm, serve, experiments) should use so
// heterogeneous chips are planned on the right axes.
func NewStaticPlanner(cmp *sim.CMP) (*maxbips.Planner, error) {
	planner, err := NewPlanner(cmp)
	if err != nil {
		return nil, err
	}
	if err := planner.SetStaticTable(StaticPredictionTable(cmp)); err != nil {
		return nil, err
	}
	return planner, nil
}
