package engine

import (
	"errors"
	"fmt"
)

// SessionConfig shapes one run: how long to warm up, how long to measure,
// and what to keep.
type SessionConfig struct {
	// WarmEpochs is the number of GPM epochs stepped before measurement
	// (results discarded from the summary, still visible to observers).
	WarmEpochs int
	// MeasureEpochs is the number of GPM epochs aggregated into the
	// summary. Must be positive.
	MeasureEpochs int
	// Period is the number of PIC intervals per GPM epoch (default 20).
	Period int
	// BudgetW is the chip power budget the run is evaluated against; it
	// feeds Epoch events and the summary's worst-epoch overshoot. Zero for
	// unmanaged runs.
	BudgetW float64
	// KeepSteps records every measured interval in Summary.Steps.
	KeepSteps bool
	// Label names the run in RunInfo.
	Label string
}

// Summary aggregates one run's measurement window — the superset of what
// the experiment harnesses, CLIs and examples previously each scraped by
// hand.
type Summary struct {
	// MeanPowerW is the mean chip power.
	MeanPowerW float64
	// MeanBIPS is the mean chip throughput.
	MeanBIPS float64
	// Instructions executed during the measurement window.
	Instructions float64
	// WorstEpochOver is the worst per-GPM-epoch budget overshoot fraction
	// (0 when the session has no budget).
	WorstEpochOver float64
	// MaxTempC is the peak temperature seen during measurement.
	MaxTempC float64
	// Epochs holds per-epoch mean chip power.
	Epochs []float64
	// EpochInstr holds per-epoch instruction totals.
	EpochInstr []float64
	// IslandAlloc[i] is the per-epoch allocation per island (managed runs
	// only; nil otherwise).
	IslandAlloc [][]float64
	// IslandPower[i] and IslandBIPS[i] are per-epoch means per island.
	IslandPower [][]float64
	IslandBIPS  [][]float64
	// AllocTrace records the allocation vector at every measured GPM
	// invocation (managed runs only).
	AllocTrace [][]float64
	// Steps records every measured interval (set SessionConfig.KeepSteps).
	Steps []Step
}

// Session drives a Runner through warmup and measurement, aggregating the
// measurement window into a Summary and fanning events out to observers.
type Session struct {
	runner Runner
	cfg    SessionConfig
	obs    []Observer
}

// NewSession validates the configuration and binds runner and observers.
func NewSession(r Runner, cfg SessionConfig, obs ...Observer) (*Session, error) {
	if r == nil {
		return nil, errors.New("engine: nil runner")
	}
	if cfg.MeasureEpochs <= 0 {
		return nil, fmt.Errorf("engine: non-positive measurement window (%d epochs)", cfg.MeasureEpochs)
	}
	if cfg.WarmEpochs < 0 {
		return nil, fmt.Errorf("engine: negative warmup (%d epochs)", cfg.WarmEpochs)
	}
	if cfg.Period <= 0 {
		cfg.Period = 20
	}
	return &Session{runner: r, cfg: cfg, obs: obs}, nil
}

// Run executes the session: warmup epochs, then the measurement window,
// then the summary. It may be called once per Session (Runners are
// single-use).
func (s *Session) Run() Summary {
	cmp := s.runner.Chip()
	period := s.cfg.Period
	warm := s.cfg.WarmEpochs * period
	meas := s.cfg.MeasureEpochs * period

	info := RunInfo{
		Label:            s.cfg.Label,
		Islands:          cmp.NumIslands(),
		Cores:            cmp.NumCores(),
		Period:           period,
		WarmIntervals:    warm,
		MeasureIntervals: meas,
		BudgetW:          s.cfg.BudgetW,
		IntervalSec:      cmp.IntervalSec(),
	}
	for _, o := range s.obs {
		o.RunStart(info)
	}

	for k := 0; k < warm; k++ {
		st := s.runner.Step()
		for _, o := range s.obs {
			o.ObserveStep(st)
		}
	}

	n := cmp.NumIslands()
	sum := Summary{
		IslandPower: make([][]float64, n),
		IslandBIPS:  make([][]float64, n),
	}
	epochPow := 0.0
	epochInstr := 0.0
	epochBIPSAcc := 0.0
	epochIslPow := make([]float64, n)
	epochIslBIPS := make([]float64, n)
	managed := false
	// lastAlloc snapshots the provision before observers see the step:
	// Step.AllocW shares its backing array with the runner, so an observer
	// that writes into it must not be able to corrupt the epoch aggregates.
	var lastAlloc []float64
	for k := 0; k < meas; k++ {
		st := s.runner.Step()
		st.Measured = true
		if s.cfg.KeepSteps {
			sum.Steps = append(sum.Steps, st.Clone())
		}
		if st.AllocW != nil {
			managed = true
			lastAlloc = append(lastAlloc[:0], st.AllocW...)
			if st.GPMInvoked {
				sum.AllocTrace = append(sum.AllocTrace, append([]float64(nil), st.AllocW...))
			}
		}
		sum.MeanPowerW += st.Sim.ChipPowerW
		sum.MeanBIPS += st.Sim.TotalBIPS
		if st.Sim.MaxTempC > sum.MaxTempC {
			sum.MaxTempC = st.Sim.MaxTempC
		}
		epochPow += st.Sim.ChipPowerW
		epochBIPSAcc += st.Sim.TotalBIPS
		for i, ir := range st.Sim.Islands {
			sum.Instructions += ir.Instructions
			epochInstr += ir.Instructions
			epochIslPow[i] += ir.PowerW
			epochIslBIPS[i] += ir.BIPS
		}
		for _, o := range s.obs {
			o.ObserveStep(st)
		}
		if (k+1)%period == 0 {
			p := float64(period)
			mean := epochPow / p
			sum.Epochs = append(sum.Epochs, mean)
			sum.EpochInstr = append(sum.EpochInstr, epochInstr)
			if s.cfg.BudgetW > 0 {
				if over := (mean - s.cfg.BudgetW) / s.cfg.BudgetW; over > sum.WorstEpochOver {
					sum.WorstEpochOver = over
				}
			}
			ev := Epoch{
				Index:        len(sum.Epochs) - 1,
				MeanPowerW:   mean,
				MeanBIPS:     epochBIPSAcc / p,
				Instructions: epochInstr,
				BudgetW:      s.cfg.BudgetW,
				IslandPowerW: make([]float64, n),
				IslandBIPS:   make([]float64, n),
			}
			if managed && lastAlloc != nil {
				ev.AllocW = append([]float64(nil), lastAlloc...)
				if sum.IslandAlloc == nil {
					sum.IslandAlloc = make([][]float64, n)
				}
			}
			for i := 0; i < n; i++ {
				ev.IslandPowerW[i] = epochIslPow[i] / p
				ev.IslandBIPS[i] = epochIslBIPS[i] / p
				if ev.AllocW != nil {
					sum.IslandAlloc[i] = append(sum.IslandAlloc[i], lastAlloc[i])
				}
				sum.IslandPower[i] = append(sum.IslandPower[i], epochIslPow[i]/p)
				sum.IslandBIPS[i] = append(sum.IslandBIPS[i], epochIslBIPS[i]/p)
				epochIslPow[i], epochIslBIPS[i] = 0, 0
			}
			epochPow, epochInstr, epochBIPSAcc = 0, 0, 0
			for _, o := range s.obs {
				o.ObserveEpoch(ev)
			}
		}
	}
	sum.MeanPowerW /= float64(meas)
	sum.MeanBIPS /= float64(meas)
	for _, o := range s.obs {
		o.RunEnd(&sum)
	}
	return sum
}
