package engine

import (
	"errors"
	"fmt"
)

// SessionConfig shapes one run: how long to warm up, how long to measure,
// and what to keep.
type SessionConfig struct {
	// WarmEpochs is the number of GPM epochs stepped before measurement
	// (results discarded from the summary, still visible to observers).
	WarmEpochs int
	// MeasureEpochs is the number of GPM epochs aggregated into the
	// summary. Must be positive.
	MeasureEpochs int
	// Period is the number of PIC intervals per GPM epoch (default 20).
	Period int
	// BudgetW is the chip power budget the run is evaluated against; it
	// feeds Epoch events and the summary's worst-epoch overshoot. Zero for
	// unmanaged runs.
	BudgetW float64
	// KeepSteps records every measured interval in Summary.Steps.
	KeepSteps bool
	// Label names the run in RunInfo.
	Label string
}

// Summary aggregates one run's measurement window — the superset of what
// the experiment harnesses, CLIs and examples previously each scraped by
// hand.
type Summary struct {
	// MeanPowerW is the mean chip power.
	MeanPowerW float64
	// MeanBIPS is the mean chip throughput.
	MeanBIPS float64
	// Instructions executed during the measurement window.
	Instructions float64
	// WorstEpochOver is the worst per-GPM-epoch budget overshoot fraction
	// (0 when the session has no budget).
	WorstEpochOver float64
	// MaxTempC is the peak temperature seen during measurement.
	MaxTempC float64
	// Epochs holds per-epoch mean chip power.
	Epochs []float64
	// EpochInstr holds per-epoch instruction totals.
	EpochInstr []float64
	// IslandAlloc[i] is the per-epoch allocation per island (managed runs
	// only; nil otherwise).
	IslandAlloc [][]float64
	// IslandPower[i] and IslandBIPS[i] are per-epoch means per island.
	IslandPower [][]float64
	IslandBIPS  [][]float64
	// AllocTrace records the allocation vector at every measured GPM
	// invocation (managed runs only).
	AllocTrace [][]float64
	// Steps records every measured interval (set SessionConfig.KeepSteps).
	Steps []Step
}

// runProgress is the mutable mid-run state of a Session: the interval
// cursor, the summary under construction (means still held as raw sums
// until finish divides them), and the per-epoch accumulators. Holding it in
// one struct is what makes a session checkpointable between intervals.
type runProgress struct {
	finished bool
	k        int // intervals completed (warmup + measurement combined)

	warm, meas int // interval totals
	n          int // islands

	sum Summary

	epochPow, epochInstr, epochBIPSAcc float64
	epochIslPow, epochIslBIPS          []float64
	managed                            bool
	// lastAlloc snapshots the provision before observers see the step:
	// Step.AllocW shares its backing array with the runner, so an observer
	// that writes into it must not be able to corrupt the epoch aggregates.
	lastAlloc []float64
}

// Session drives a Runner through warmup and measurement, aggregating the
// measurement window into a Summary and fanning events out to observers.
type Session struct {
	runner Runner
	cfg    SessionConfig
	obs    []Observer
	prog   *runProgress
}

// NewSession validates the configuration and binds runner and observers.
func NewSession(r Runner, cfg SessionConfig, obs ...Observer) (*Session, error) {
	if r == nil {
		return nil, errors.New("engine: nil runner")
	}
	if cfg.MeasureEpochs <= 0 {
		return nil, fmt.Errorf("engine: non-positive measurement window (%d epochs)", cfg.MeasureEpochs)
	}
	if cfg.WarmEpochs < 0 {
		return nil, fmt.Errorf("engine: negative warmup (%d epochs)", cfg.WarmEpochs)
	}
	if cfg.Period <= 0 {
		cfg.Period = 20
	}
	return &Session{runner: r, cfg: cfg, obs: obs}, nil
}

// Info describes the run the session performs.
func (s *Session) Info() RunInfo {
	cmp := s.runner.Chip()
	return RunInfo{
		Label:            s.cfg.Label,
		Islands:          cmp.NumIslands(),
		Cores:            cmp.NumCores(),
		Period:           s.cfg.Period,
		WarmIntervals:    s.cfg.WarmEpochs * s.cfg.Period,
		MeasureIntervals: s.cfg.MeasureEpochs * s.cfg.Period,
		BudgetW:          s.cfg.BudgetW,
		IntervalSec:      cmp.IntervalSec(),
	}
}

// Started reports whether the session has begun stepping (or was restored
// from a snapshot).
func (s *Session) Started() bool { return s.prog != nil }

// Finished reports whether the session has produced its summary.
func (s *Session) Finished() bool { return s.prog != nil && s.prog.finished }

// Completed returns the number of intervals stepped so far (warmup and
// measurement combined; 0 before the session starts).
func (s *Session) Completed() int {
	if s.prog == nil {
		return 0
	}
	return s.prog.k
}

// TotalIntervals returns the session's interval budget: warmup plus
// measurement.
func (s *Session) TotalIntervals() int {
	return (s.cfg.WarmEpochs + s.cfg.MeasureEpochs) * s.cfg.Period
}

// start initializes progress and announces the run to observers.
func (s *Session) start() {
	n := s.runner.Chip().NumIslands()
	s.prog = &runProgress{
		warm: s.cfg.WarmEpochs * s.cfg.Period,
		meas: s.cfg.MeasureEpochs * s.cfg.Period,
		n:    n,
		sum: Summary{
			IslandPower: make([][]float64, n),
			IslandBIPS:  make([][]float64, n),
		},
		epochIslPow:  make([]float64, n),
		epochIslBIPS: make([]float64, n),
	}
	info := s.Info()
	for _, o := range s.obs {
		o.RunStart(info)
	}
}

// stepOne advances the session a single interval — a warmup interval when
// the cursor is still inside the warmup window, a measured one otherwise.
func (s *Session) stepOne() {
	p := s.prog
	if p.k < p.warm {
		st := s.runner.Step()
		for _, o := range s.obs {
			o.ObserveStep(st)
		}
		p.k++
		return
	}

	k := p.k - p.warm // measured interval index
	n := p.n
	period := s.cfg.Period
	sum := &p.sum

	st := s.runner.Step()
	st.Measured = true
	if s.cfg.KeepSteps {
		sum.Steps = append(sum.Steps, st.Clone())
	}
	if st.AllocW != nil {
		p.managed = true
		p.lastAlloc = append(p.lastAlloc[:0], st.AllocW...)
		if st.GPMInvoked {
			sum.AllocTrace = append(sum.AllocTrace, append([]float64(nil), st.AllocW...))
		}
	}
	sum.MeanPowerW += st.Sim.ChipPowerW
	sum.MeanBIPS += st.Sim.TotalBIPS
	if st.Sim.MaxTempC > sum.MaxTempC {
		sum.MaxTempC = st.Sim.MaxTempC
	}
	p.epochPow += st.Sim.ChipPowerW
	p.epochBIPSAcc += st.Sim.TotalBIPS
	for i, ir := range st.Sim.Islands {
		sum.Instructions += ir.Instructions
		p.epochInstr += ir.Instructions
		p.epochIslPow[i] += ir.PowerW
		p.epochIslBIPS[i] += ir.BIPS
	}
	for _, o := range s.obs {
		o.ObserveStep(st)
	}
	if (k+1)%period == 0 {
		pf := float64(period)
		mean := p.epochPow / pf
		sum.Epochs = append(sum.Epochs, mean)
		sum.EpochInstr = append(sum.EpochInstr, p.epochInstr)
		if s.cfg.BudgetW > 0 {
			if over := (mean - s.cfg.BudgetW) / s.cfg.BudgetW; over > sum.WorstEpochOver {
				sum.WorstEpochOver = over
			}
		}
		ev := Epoch{
			Index:        len(sum.Epochs) - 1,
			MeanPowerW:   mean,
			MeanBIPS:     p.epochBIPSAcc / pf,
			Instructions: p.epochInstr,
			BudgetW:      s.cfg.BudgetW,
			IslandPowerW: make([]float64, n),
			IslandBIPS:   make([]float64, n),
		}
		if p.managed && p.lastAlloc != nil {
			ev.AllocW = append([]float64(nil), p.lastAlloc...)
			if sum.IslandAlloc == nil {
				sum.IslandAlloc = make([][]float64, n)
			}
		}
		for i := 0; i < n; i++ {
			ev.IslandPowerW[i] = p.epochIslPow[i] / pf
			ev.IslandBIPS[i] = p.epochIslBIPS[i] / pf
			if ev.AllocW != nil {
				sum.IslandAlloc[i] = append(sum.IslandAlloc[i], p.lastAlloc[i])
			}
			sum.IslandPower[i] = append(sum.IslandPower[i], p.epochIslPow[i]/pf)
			sum.IslandBIPS[i] = append(sum.IslandBIPS[i], p.epochIslBIPS[i]/pf)
			p.epochIslPow[i], p.epochIslBIPS[i] = 0, 0
		}
		p.epochPow, p.epochInstr, p.epochBIPSAcc = 0, 0, 0
		for _, o := range s.obs {
			o.ObserveEpoch(ev)
		}
	}
	p.k++
}

// finish converts the accumulated sums into means and announces the end of
// the run.
func (s *Session) finish() Summary {
	p := s.prog
	p.sum.MeanPowerW /= float64(p.meas)
	p.sum.MeanBIPS /= float64(p.meas)
	p.finished = true
	for _, o := range s.obs {
		o.RunEnd(&p.sum)
	}
	return p.sum
}

// RunIntervals advances the session by up to n intervals (starting it on
// the first call) without finishing the run, and reports how many intervals
// were actually stepped — fewer than n when the run's interval budget is
// exhausted. Interleave with Snapshot to checkpoint a run mid-flight; call
// Run to complete it.
func (s *Session) RunIntervals(n int) int {
	if s.prog == nil {
		s.start()
	}
	total := s.prog.warm + s.prog.meas
	done := 0
	for done < n && s.prog.k < total {
		s.stepOne()
		done++
	}
	return done
}

// Run executes the session to completion: warmup epochs, then the
// measurement window, then the summary. It may be called once per Session
// (Runners are single-use); a session partially advanced by RunIntervals or
// restored from a snapshot is continued, not restarted.
func (s *Session) Run() Summary {
	if s.prog == nil {
		s.start()
	}
	for s.prog.k < s.prog.warm+s.prog.meas {
		s.stepOne()
	}
	return s.finish()
}
