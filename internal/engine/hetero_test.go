package engine

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

// heteroChip builds the smallest asymmetric-table chip: one big (OoO) and
// one little (in-order) island, each with its own DVFS table.
func heteroChip(t testing.TB) *sim.CMP {
	t.Helper()
	cfg := sim.DefaultConfig(workload.Mix{
		Name:    "tiny",
		Islands: [][]string{{"bschls"}, {"fsim"}},
	})
	cfg.IslandClasses = []power.CoreClass{power.ClassOoO, power.ClassLittleIO}
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cmp
}

// TestStaticPredictionTablePerIsland is the audit regression for the
// chip-global Table()/Model() assumption: under asymmetric tables every
// prediction row must be sized and priced by its island's *own* table —
// code routed through the legacy chip-wide accessors cannot even build the
// table (they panic on a heterogeneous chip), and a chip-wide row length
// would misindex the little island's shorter table.
func TestStaticPredictionTablePerIsland(t *testing.T) {
	cmp := heteroChip(t)
	tbl := StaticPredictionTable(cmp)
	if len(tbl) != cmp.NumIslands() {
		t.Fatalf("prediction table has %d rows for %d islands", len(tbl), cmp.NumIslands())
	}
	for i, row := range tbl {
		want := cmp.IslandTable(i).Levels()
		if len(row) != want {
			t.Errorf("island %d row has %d levels, its table has %d", i, len(row), want)
		}
		for l := 1; l < len(row); l++ {
			if row[l] <= row[l-1] {
				t.Errorf("island %d prediction not increasing at level %d: %.4f <= %.4f",
					i, l, row[l], row[l-1])
			}
		}
	}
	// The little island's top-level prediction must be cheaper than the
	// big island's: that is the whole point of its class-scaled model.
	bigTop := tbl[0][len(tbl[0])-1]
	littleTop := tbl[1][len(tbl[1])-1]
	if littleTop >= bigTop {
		t.Errorf("little island top prediction %.3f W not below big %.3f W", littleTop, bigTop)
	}
}

// TestStaticPlannerHeterogeneous runs the full MaxBIPS baseline over an
// asymmetric-table chip: the planner must pick levels legal for each
// island's own table at every epoch.
func TestStaticPlannerHeterogeneous(t *testing.T) {
	cmp := heteroChip(t)
	planner, err := NewStaticPlanner(cmp)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewMaxBIPSRunner(cmp, planner, 0.7*cmp.MaxChipPowerW(), 20)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3*20; k++ {
		st := r.Step()
		for i, ir := range st.Sim.Islands {
			if max := cmp.IslandTable(i).Levels(); ir.Level < 0 || ir.Level >= max {
				t.Fatalf("interval %d: island %d at level %d, table has %d levels",
					k, i, ir.Level, max)
			}
		}
	}
}
