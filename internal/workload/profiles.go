// Package workload provides the synthetic application models that stand in
// for the PARSEC and SPEC benchmarks of the paper's evaluation (Table II).
//
// The original evaluation ran real PARSEC binaries under Simics; no such
// traces are available here, so each benchmark is modelled by a profile
// capturing what the power controllers actually observe: its ILP-limited
// base CPI, instruction mix, memory intensity, working-set size and access
// locality, switching activity, and phase volatility. A deterministic phase
// machine perturbs these parameters over time, producing the time-varying
// power demand that Figures 7–9 exercise, and an address-stream generator
// drives the real cache hierarchy so that miss rates — and therefore the
// CPU-bound/memory-bound split of Table III — emerge from cache geometry
// rather than from hard-coded constants.
package workload

import (
	"fmt"
	"sort"
)

// Class is the CPU-bound/memory-bound classification of Table III.
type Class int

// Benchmark classes.
const (
	CPUBound Class = iota
	MemBound
)

// String returns the single-letter code used in Table III.
func (c Class) String() string {
	if c == CPUBound {
		return "C"
	}
	return "M"
}

// Profile is a synthetic benchmark model.
type Profile struct {
	// Name is the short name used in mixes (e.g. "bschls").
	Name string
	// FullName is the benchmark's full name (e.g. "blackscholes").
	FullName string
	// Description is the one-line summary from Table II.
	Description string
	// Suite is "PARSEC" or "SPEC".
	Suite string
	// InputSet is the input used in the paper ("sim-large" for CPU-bound,
	// "native" for memory-bound; §III).
	InputSet string
	// Class is the CPU/memory-bound classification.
	Class Class

	// BaseCPI is the ILP-limited cycles per instruction with a perfect
	// memory system.
	BaseCPI float64
	// FPFraction is the floating-point share of the instruction mix.
	FPFraction float64
	// MemRefFraction is the data references per instruction.
	MemRefFraction float64
	// WorkingSetBytes is the span of the data working set; sets the L2 miss
	// rate through actual cache geometry.
	WorkingSetBytes uint64
	// HotFraction is the probability that a non-sequential access falls in
	// the hot set (temporal locality).
	HotFraction float64
	// HotSetBytes is the size of the hot set. CPU-bound benchmarks keep it
	// L1-resident; memory-bound ones keep it L2-resident, so that only the
	// cold fraction and long sequential sweeps reach memory.
	HotSetBytes uint64
	// SeqFraction is the share of accesses that are stride-1 (spatial
	// locality).
	SeqFraction float64
	// CodeBytes is the instruction footprint driving the L1I.
	CodeBytes uint64
	// MLP is the memory-level parallelism: the average number of
	// overlapping outstanding misses dividing the exposed miss penalty.
	MLP float64
	// ActivityScale scales switching activity relative to utilization.
	ActivityScale float64
	// PhaseVolatility in [0, 1] controls how strongly the phase machine
	// perturbs the profile over time.
	PhaseVolatility float64
}

// Validate checks profile parameters.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: profile without name")
	case p.BaseCPI <= 0:
		return fmt.Errorf("workload %s: non-positive BaseCPI", p.Name)
	case p.FPFraction < 0 || p.FPFraction > 1:
		return fmt.Errorf("workload %s: FPFraction out of range", p.Name)
	case p.MemRefFraction < 0 || p.MemRefFraction > 1:
		return fmt.Errorf("workload %s: MemRefFraction out of range", p.Name)
	case p.WorkingSetBytes == 0 || p.CodeBytes == 0:
		return fmt.Errorf("workload %s: zero footprint", p.Name)
	case p.HotSetBytes < blockBytes:
		return fmt.Errorf("workload %s: hot set %d smaller than a cache block (%d)", p.Name, p.HotSetBytes, blockBytes)
	case p.HotSetBytes > p.WorkingSetBytes:
		return fmt.Errorf("workload %s: hot set must be within the working set", p.Name)
	case p.CodeBytes < blockBytes:
		return fmt.Errorf("workload %s: code footprint %d smaller than a cache block (%d)", p.Name, p.CodeBytes, blockBytes)
	case p.HotFraction < 0 || p.HotFraction > 1:
		return fmt.Errorf("workload %s: HotFraction out of range", p.Name)
	case p.SeqFraction < 0 || p.SeqFraction > 1:
		return fmt.Errorf("workload %s: SeqFraction out of range", p.Name)
	case p.MLP < 1:
		return fmt.Errorf("workload %s: MLP below 1", p.Name)
	case p.ActivityScale <= 0:
		return fmt.Errorf("workload %s: non-positive ActivityScale", p.Name)
	case p.PhaseVolatility < 0 || p.PhaseVolatility > 1:
		return fmt.Errorf("workload %s: PhaseVolatility out of range", p.Name)
	}
	return nil
}

const (
	kb = 1024
	mb = 1024 * 1024
)

// profiles is the registry. CPU-bound benchmarks have working sets that fit
// comfortably in the 512 KB/core L2 (paper: sim-large inputs); memory-bound
// ones exceed it by an order of magnitude (paper: native inputs).
var profiles = map[string]Profile{
	"bschls": {
		Name: "bschls", FullName: "blackscholes", Suite: "PARSEC", InputSet: "sim-large",
		Description: "PDE solver for option pricing", Class: CPUBound,
		BaseCPI: 0.65, FPFraction: 0.45, MemRefFraction: 0.24,
		WorkingSetBytes: 192 * kb, HotSetBytes: 12 * kb, HotFraction: 0.93, SeqFraction: 0.35,
		CodeBytes: 24 * kb, MLP: 1.6, ActivityScale: 1.0, PhaseVolatility: 0.25,
	},
	"btrack": {
		Name: "btrack", FullName: "bodytrack", Suite: "PARSEC", InputSet: "sim-large",
		Description: "tracks the body of a person", Class: CPUBound,
		BaseCPI: 0.72, FPFraction: 0.50, MemRefFraction: 0.27,
		WorkingSetBytes: 256 * kb, HotSetBytes: 12 * kb, HotFraction: 0.92, SeqFraction: 0.35,
		CodeBytes: 48 * kb, MLP: 1.8, ActivityScale: 0.95, PhaseVolatility: 0.45,
	},
	"fsim": {
		Name: "fsim", FullName: "facesim", Suite: "PARSEC", InputSet: "native",
		Description: "simulates motion of a human face", Class: MemBound,
		BaseCPI: 0.80, FPFraction: 0.55, MemRefFraction: 0.34,
		WorkingSetBytes: 24 * mb, HotSetBytes: 256 * kb, HotFraction: 0.75, SeqFraction: 0.55,
		CodeBytes: 64 * kb, MLP: 2.4, ActivityScale: 0.80, PhaseVolatility: 0.35,
	},
	"fmine": {
		Name: "fmine", FullName: "freqmine", Suite: "PARSEC", InputSet: "sim-large",
		Description: "frequent item set mining", Class: CPUBound,
		BaseCPI: 0.78, FPFraction: 0.10, MemRefFraction: 0.30,
		WorkingSetBytes: 320 * kb, HotSetBytes: 12 * kb, HotFraction: 0.90, SeqFraction: 0.30,
		CodeBytes: 40 * kb, MLP: 1.5, ActivityScale: 0.90, PhaseVolatility: 0.40,
	},
	"x264": {
		Name: "x264", FullName: "x264", Suite: "PARSEC", InputSet: "sim-large",
		Description: "video encoding application", Class: CPUBound,
		BaseCPI: 0.60, FPFraction: 0.25, MemRefFraction: 0.26,
		WorkingSetBytes: 384 * kb, HotSetBytes: 12 * kb, HotFraction: 0.90, SeqFraction: 0.40,
		CodeBytes: 96 * kb, MLP: 2.0, ActivityScale: 1.0, PhaseVolatility: 0.55,
	},
	"vips": {
		Name: "vips", FullName: "vips", Suite: "PARSEC", InputSet: "native",
		Description: "image processing application", Class: MemBound,
		BaseCPI: 0.70, FPFraction: 0.30, MemRefFraction: 0.36,
		WorkingSetBytes: 32 * mb, HotSetBytes: 256 * kb, HotFraction: 0.50, SeqFraction: 0.80,
		CodeBytes: 72 * kb, MLP: 3.0, ActivityScale: 0.85, PhaseVolatility: 0.30,
	},
	"sclust": {
		Name: "sclust", FullName: "streamcluster", Suite: "PARSEC", InputSet: "native",
		Description: "online clustering of an input stream", Class: MemBound,
		BaseCPI: 0.75, FPFraction: 0.40, MemRefFraction: 0.38,
		WorkingSetBytes: 48 * mb, HotSetBytes: 256 * kb, HotFraction: 0.80, SeqFraction: 0.50,
		CodeBytes: 24 * kb, MLP: 2.8, ActivityScale: 0.75, PhaseVolatility: 0.20,
	},
	"canneal": {
		Name: "canneal", FullName: "canneal", Suite: "PARSEC", InputSet: "native",
		Description: "cache-aware simulated annealing for chip routing", Class: MemBound,
		BaseCPI: 0.85, FPFraction: 0.15, MemRefFraction: 0.40,
		WorkingSetBytes: 64 * mb, HotSetBytes: 256 * kb, HotFraction: 0.85, SeqFraction: 0.20,
		CodeBytes: 32 * kb, MLP: 1.4, ActivityScale: 0.70, PhaseVolatility: 0.30,
	},

	// SPEC CPU2000 profiles used by the thermal-aware evaluation (Fig 18),
	// all CPU-bound as required by that experiment.
	"mesa": {
		Name: "mesa", FullName: "mesa", Suite: "SPEC", InputSet: "ref",
		Description: "3-D graphics library", Class: CPUBound,
		BaseCPI: 0.68, FPFraction: 0.50, MemRefFraction: 0.26,
		WorkingSetBytes: 224 * kb, HotSetBytes: 12 * kb, HotFraction: 0.92, SeqFraction: 0.35,
		CodeBytes: 64 * kb, MLP: 1.7, ActivityScale: 1.0, PhaseVolatility: 0.30,
	},
	"bzip": {
		Name: "bzip", FullName: "bzip2", Suite: "SPEC", InputSet: "ref",
		Description: "compression", Class: CPUBound,
		BaseCPI: 0.74, FPFraction: 0.05, MemRefFraction: 0.31,
		WorkingSetBytes: 288 * kb, HotSetBytes: 12 * kb, HotFraction: 0.90, SeqFraction: 0.35,
		CodeBytes: 24 * kb, MLP: 1.5, ActivityScale: 0.95, PhaseVolatility: 0.40,
	},
	"gcc": {
		Name: "gcc", FullName: "gcc", Suite: "SPEC", InputSet: "ref",
		Description: "C compiler", Class: CPUBound,
		BaseCPI: 0.82, FPFraction: 0.05, MemRefFraction: 0.33,
		WorkingSetBytes: 288 * kb, HotSetBytes: 16 * kb, HotFraction: 0.88, SeqFraction: 0.30,
		CodeBytes: 96 * kb, MLP: 1.4, ActivityScale: 0.90, PhaseVolatility: 0.50,
	},
	"sixtrack": {
		Name: "sixtrack", FullName: "sixtrack", Suite: "SPEC", InputSet: "ref",
		Description: "particle accelerator simulation", Class: CPUBound,
		BaseCPI: 0.64, FPFraction: 0.60, MemRefFraction: 0.22,
		WorkingSetBytes: 160 * kb, HotSetBytes: 12 * kb, HotFraction: 0.93, SeqFraction: 0.40,
		CodeBytes: 48 * kb, MLP: 1.9, ActivityScale: 1.05, PhaseVolatility: 0.20,
	},
}

// ByName returns the profile registered under name.
func ByName(name string) (Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return p, nil
}

// MustByName is ByName for static mixes; it panics on unknown names.
func MustByName(name string) Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns all registered benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PARSEC returns the eight PARSEC profiles of Table II, sorted by name.
func PARSEC() []Profile { return bySuite("PARSEC") }

// SPEC returns the SPEC profiles used by the thermal evaluation.
func SPEC() []Profile { return bySuite("SPEC") }

func bySuite(suite string) []Profile {
	var out []Profile
	for _, n := range Names() {
		if profiles[n].Suite == suite {
			out = append(out, profiles[n])
		}
	}
	return out
}
