package workload

import (
	"testing"
	"testing/quick"
)

func TestAllProfilesValid(t *testing.T) {
	for _, name := range Names() {
		p := MustByName(name)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Errorf("registry key %q does not match profile name %q", name, p.Name)
		}
	}
}

func TestSuiteMembership(t *testing.T) {
	if n := len(PARSEC()); n != 8 {
		t.Errorf("PARSEC profiles = %d, want 8 (Table II)", n)
	}
	if n := len(SPEC()); n != 4 {
		t.Errorf("SPEC profiles = %d, want 4 (Fig 18)", n)
	}
}

func TestClassificationMatchesTableIII(t *testing.T) {
	cpu := []string{"bschls", "btrack", "fmine", "x264", "mesa", "bzip", "gcc", "sixtrack"}
	mem := []string{"sclust", "fsim", "canneal", "vips"}
	for _, n := range cpu {
		if MustByName(n).Class != CPUBound {
			t.Errorf("%s should be CPU-bound", n)
		}
	}
	for _, n := range mem {
		if MustByName(n).Class != MemBound {
			t.Errorf("%s should be memory-bound", n)
		}
	}
}

func TestMemBoundWorkingSetsExceedL2(t *testing.T) {
	const l2 = 512 * 1024
	for _, p := range PARSEC() {
		if p.Class == MemBound && p.WorkingSetBytes <= 4*l2 {
			t.Errorf("%s: memory-bound working set %d too small to stress the L2", p.Name, p.WorkingSetBytes)
		}
		if p.Class == CPUBound && p.WorkingSetBytes > l2 {
			t.Errorf("%s: CPU-bound working set %d exceeds L2 capacity", p.Name, p.WorkingSetBytes)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("doom"); err == nil {
		t.Error("unknown benchmark should error")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustByName should panic on unknown benchmark")
		}
	}()
	MustByName("doom")
}

func TestClassString(t *testing.T) {
	if CPUBound.String() != "C" || MemBound.String() != "M" {
		t.Error("class codes should match Table III")
	}
}

func TestMixesMatchTableIII(t *testing.T) {
	m1 := Mix1()
	if err := m1.Validate(); err != nil {
		t.Fatal(err)
	}
	if m1.Cores() != 8 || len(m1.Islands) != 4 {
		t.Errorf("Mix-1 shape = %d cores / %d islands", m1.Cores(), len(m1.Islands))
	}
	// Mix-1: every island pairs one C with one M.
	for i, isl := range m1.Islands {
		c := MustByName(isl[0]).Class
		m := MustByName(isl[1]).Class
		if c != CPUBound || m != MemBound {
			t.Errorf("Mix-1 island %d = (%v,%v), want (C,M)", i, c, m)
		}
	}
	// Mix-2: islands are homogeneous.
	for i, isl := range Mix2().Islands {
		a := MustByName(isl[0]).Class
		b := MustByName(isl[1]).Class
		if a != b {
			t.Errorf("Mix-2 island %d heterogeneous", i)
		}
	}
	// Mix-3 for 16 cores.
	m3 := Mix3(1)
	if m3.Cores() != 16 || len(m3.Islands) != 4 {
		t.Errorf("Mix-3(1) shape = %d cores / %d islands", m3.Cores(), len(m3.Islands))
	}
	for i, isl := range m3.Islands {
		want := CPUBound
		if i%2 == 1 {
			want = MemBound
		}
		for _, b := range isl {
			if MustByName(b).Class != want {
				t.Errorf("Mix-3 island %d: %s has wrong class", i, b)
			}
		}
	}
	// Mix-3 replicated for 32 cores.
	if Mix3(2).Cores() != 32 {
		t.Error("Mix-3(2) should have 32 cores")
	}
	// Thermal mix: 8 single-core islands, all CPU-bound.
	tm := ThermalMix()
	if tm.Cores() != 8 || len(tm.Islands) != 8 {
		t.Errorf("thermal mix shape wrong")
	}
	for _, isl := range tm.Islands {
		if MustByName(isl[0]).Class != CPUBound {
			t.Error("thermal mix must be CPU-bound only")
		}
	}
}

func TestMixValidateCatchesErrors(t *testing.T) {
	if err := (Mix{Name: "empty"}).Validate(); err == nil {
		t.Error("empty mix should be invalid")
	}
	bad := Mix{Name: "bad", Islands: [][]string{{"nope"}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown benchmark should invalidate mix")
	}
	if _, err := bad.Profiles(); err == nil {
		t.Error("Profiles should propagate validation errors")
	}
}

func TestPerIslandSize(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		m, err := PerIslandSize(n)
		if err != nil {
			t.Fatalf("PerIslandSize(%d): %v", n, err)
		}
		if m.Cores() != 8 {
			t.Errorf("PerIslandSize(%d) has %d cores", n, m.Cores())
		}
		if len(m.Islands) != 8/n {
			t.Errorf("PerIslandSize(%d) has %d islands", n, len(m.Islands))
		}
	}
	if _, err := PerIslandSize(3); err == nil {
		t.Error("non-divisor island size should error")
	}
	if _, err := PerIslandSize(0); err == nil {
		t.Error("zero island size should error")
	}
}

func TestPhaseGenDeterministic(t *testing.T) {
	p := MustByName("btrack")
	a := NewPhaseGen(42, p)
	b := NewPhaseGen(42, p)
	for i := 0; i < 500; i++ {
		if a.Next() != b.Next() {
			t.Fatal("phase machines with equal seeds diverged")
		}
	}
}

func TestPhaseGenSeedsDiffer(t *testing.T) {
	p := MustByName("btrack")
	a := NewPhaseGen(1, p)
	b := NewPhaseGen(2, p)
	same := 0
	for i := 0; i < 200; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 100 {
		t.Errorf("different seeds produced %d/200 identical phases", same)
	}
}

// Property: phases stay within the documented bounds for every profile.
func TestPhaseBoundsProperty(t *testing.T) {
	f := func(seed uint64, pick uint8) bool {
		names := Names()
		p := MustByName(names[int(pick)%len(names)])
		g := NewPhaseGen(seed, p)
		for i := 0; i < 300; i++ {
			ph := g.Next()
			if ph.CPIMult < phaseMin || ph.CPIMult > phaseMax ||
				ph.MemMult < phaseMin || ph.MemMult > phaseMax ||
				ph.ActMult < phaseMin || ph.ActMult > phaseMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPhaseGenActuallyVaries(t *testing.T) {
	g := NewPhaseGen(7, MustByName("x264"))
	lo, hi := 10.0, -10.0
	for i := 0; i < 1000; i++ {
		ph := g.Next()
		if ph.CPIMult < lo {
			lo = ph.CPIMult
		}
		if ph.CPIMult > hi {
			hi = ph.CPIMult
		}
	}
	if hi-lo < 0.1 {
		t.Errorf("phase machine barely moved: range [%v, %v]", lo, hi)
	}
}

func mustStream(t *testing.T, seed uint64, coreID int, p Profile) *StreamGen {
	t.Helper()
	g, err := NewStreamGen(seed, coreID, p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStreamGenDeterministicAndDisjoint(t *testing.T) {
	p := MustByName("sclust")
	a := mustStream(t, 9, 0, p)
	b := mustStream(t, 9, 0, p)
	other := mustStream(t, 9, 1, p)
	ph := NeutralPhase()
	aa := a.DataAddrs(256, ph, nil)
	bb := b.DataAddrs(256, ph, nil)
	oo := other.DataAddrs(256, ph, nil)
	otherSet := map[uint64]bool{}
	for _, x := range oo {
		otherSet[x] = true
	}
	for i := range aa {
		if aa[i] != bb[i] {
			t.Fatal("equal-seed streams diverged")
		}
		if otherSet[aa[i]] {
			t.Fatal("different cores share addresses")
		}
	}
}

func TestStreamAddressesWithinFootprints(t *testing.T) {
	p := MustByName("canneal")
	g := mustStream(t, 3, 2, p)
	ph := Phase{CPIMult: 1, MemMult: phaseMax, ActMult: 1}
	data := g.DataAddrs(4096, ph, nil)
	base := uint64(3) << 40
	for _, a := range data {
		if a < base || a >= base+p.WorkingSetBytes {
			t.Fatalf("data address %#x outside working set", a)
		}
	}
	code := g.FetchAddrs(4096, nil)
	cbase := base | 1<<36
	for _, a := range code {
		if a < cbase || a >= cbase+p.CodeBytes {
			t.Fatalf("fetch address %#x outside code footprint", a)
		}
	}
}

func TestStreamGenReusesBuffer(t *testing.T) {
	g := mustStream(t, 1, 0, MustByName("bschls"))
	buf := make([]uint64, 0, 512)
	out := g.DataAddrs(512, NeutralPhase(), buf)
	if &out[0] != &buf[:1][0] {
		t.Error("buffer with sufficient capacity was not reused")
	}
	out2 := g.DataAddrs(1024, NeutralPhase(), out)
	if len(out2) != 1024 {
		t.Error("growing request returned wrong length")
	}
}

// Property: sequential fraction materializes — a fully sequential profile
// produces strictly consecutive block addresses.
func TestSequentialStreamProperty(t *testing.T) {
	p := MustByName("bschls")
	p.SeqFraction = 1
	g := mustStream(t, 5, 0, p)
	addrs := g.DataAddrs(1000, NeutralPhase(), nil)
	for i := 1; i < len(addrs); i++ {
		d := int64(addrs[i]) - int64(addrs[i-1])
		if d != 8 && d != -(int64(p.WorkingSetBytes)-8) {
			t.Fatalf("non-sequential step %d at %d", d, i)
		}
	}
}

func TestMixByName(t *testing.T) {
	for name, cores := range map[string]int{
		"mix1": 8, "mix2": 8, "mix3": 16, "mix3x2": 32, "thermal": 8,
	} {
		m, err := MixByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Cores() != cores {
			t.Errorf("%s has %d cores, want %d", name, m.Cores(), cores)
		}
	}
	if _, err := MixByName("nope"); err == nil {
		t.Error("unknown mix should error")
	}
}
