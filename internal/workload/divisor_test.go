package workload

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/stats"
)

// TestDivisorMatchesHardwareRemainder checks the reciprocal remainder against
// the hardware `%` over edge-case divisors (powers of two, neighbours of
// powers of two, the generators' real block counts, extremes) and edge-case
// plus random operands. The address generators rely on exact equality: one
// differing draw would shift every subsequent address and break the golden
// traces.
func TestDivisorMatchesHardwareRemainder(t *testing.T) {
	divisors := []uint64{
		1, 2, 3, 5, 7, 63, 64, 65, 127, 128,
		192, 256, 384, 640, 768, 1024, 1152, 1536, 4096, // registry hot/code block counts
		1<<20 - 1, 1 << 20, 1<<20 + 1,
		1<<33 + 7, 1 << 63, 1<<63 + 1, ^uint64(0) - 1, ^uint64(0),
	}
	r := stats.NewRand(0xd17)
	for _, d := range divisors {
		v := newDivisor(d)
		xs := []uint64{0, 1, d - 1, d, d + 1, 2*d - 1, 2 * d, ^uint64(0), ^uint64(0) - 1}
		for i := 0; i < 2000; i++ {
			xs = append(xs[:9], r.Uint64())
			for _, x := range xs {
				if got, want := v.mod(x), x%d; got != want {
					t.Fatalf("divisor %d: mod(%d) = %d, want %d", d, x, got, want)
				}
			}
		}
	}
}

func TestDivisorRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("newDivisor(0) should panic")
		}
	}()
	newDivisor(0)
}
