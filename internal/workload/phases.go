package workload

import "github.com/cpm-sim/cpm/internal/stats"

// Phase is the multiplicative perturbation a benchmark's phase machine
// applies to its profile during one control interval.
type Phase struct {
	// CPIMult scales the ILP-limited base CPI.
	CPIMult float64
	// MemMult scales the memory reference rate.
	MemMult float64
	// ActMult scales switching activity.
	ActMult float64
}

// NeutralPhase applies no perturbation.
func NeutralPhase() Phase { return Phase{CPIMult: 1, MemMult: 1, ActMult: 1} }

// Phase bounds: perturbations stay within [phaseMin, phaseMax] so that no
// phase can turn a CPU-bound benchmark into a memory-bound one or vice
// versa.
const (
	phaseMin = 0.55
	phaseMax = 1.60
)

// PhaseGen is a deterministic, mean-reverting phase machine. Each interval
// the three multipliers take a small random-walk step pulled back toward 1;
// occasionally (with probability proportional to the profile's volatility)
// the benchmark jumps to a distinctly different program phase, modelling the
// multi-interval phase behaviour that makes the GPM's provisioning problem
// dynamic (Figures 7 and 8).
//
// The generator derives all randomness from its seed, so two generators with
// the same (seed, profile) produce identical phase sequences regardless of
// what else runs in the process.
type PhaseGen struct {
	rng *stats.Rand
	vol float64
	cur Phase
	// jump target and dwell control the occasional large phase changes.
	dwell int
}

// NewPhaseGen builds a phase machine for profile p seeded by seed.
func NewPhaseGen(seed uint64, p Profile) *PhaseGen {
	g := &PhaseGen{
		rng: stats.NewRand(stats.DeriveSeed(seed, 0x9a5e)),
		vol: p.PhaseVolatility,
		cur: NeutralPhase(),
	}
	return g
}

// Next advances one control interval and returns the phase to apply.
func (g *PhaseGen) Next() Phase {
	if g.dwell > 0 {
		g.dwell--
	} else if g.rng.Bool(0.01 + 0.04*g.vol) {
		// Program phase change: jump all multipliers to a new neighbourhood
		// and hold course for a while. Magnitudes are sized for 2.5 ms
		// control intervals — millions of instructions average out the
		// finer-grained behaviour, so interval-to-interval jumps are
		// moderate even for volatile applications.
		g.cur.CPIMult = g.rng.Range(1-0.25*g.vol, 1+0.3*g.vol)
		g.cur.MemMult = g.rng.Range(1-0.3*g.vol, 1+0.4*g.vol)
		// Switching activity tracks execution rate far more tightly than
		// CPI or memory intensity drift: large independent ActMult noise
		// would decorrelate power from throughput, which real hardware
		// (and the paper's R²≈0.96 utilization-power fits) rules out.
		g.cur.ActMult = g.rng.Range(1-0.08*g.vol, 1+0.08*g.vol)
		g.dwell = 10 + g.rng.Intn(30)
	}
	step := 0.015 + 0.05*g.vol
	g.cur.CPIMult = walk(g.rng, g.cur.CPIMult, step)
	g.cur.MemMult = walk(g.rng, g.cur.MemMult, step)
	g.cur.ActMult = walk(g.rng, g.cur.ActMult, step*0.15)
	return g.cur
}

// walk takes one bounded, mean-reverting random-walk step.
func walk(r *stats.Rand, v, step float64) float64 {
	v += r.Range(-step, step) + 0.02*(1-v)
	if v < phaseMin {
		v = phaseMin
	}
	if v > phaseMax {
		v = phaseMax
	}
	return v
}
