package workload

import "github.com/cpm-sim/cpm/internal/stats"

// StreamGen generates the sampled address streams that drive the cache
// hierarchy. Data accesses mix three behaviours according to the profile:
// stride-1 sequential walks (spatial locality), accesses to a hot subset of
// the working set (temporal locality), and uniform accesses over the whole
// working set. Instruction fetches walk the code footprint sequentially with
// occasional branches.
//
// Each core owns one StreamGen; all randomness derives from the seed so
// streams are reproducible.
type StreamGen struct {
	rng     *stats.Rand
	profile Profile

	dataBase uint64 // base virtual address of the data segment
	codeBase uint64
	seqPos   uint64 // sequential walk cursor within the working set
	codePos  uint64
}

const (
	blockBytes = 64
	// seqStride is the step of sequential walks: word-sized, so a stride-1
	// sweep touches each cache block eight times before moving on — the
	// spatial locality real streaming code exhibits.
	seqStride = 8
)

// NewStreamGen builds a generator for profile p. Cores receive distinct
// base addresses so their streams never alias in a shared L2 (the
// applications of the paper's mixes do not share data).
func NewStreamGen(seed uint64, coreID int, p Profile) *StreamGen {
	return &StreamGen{
		rng:     stats.NewRand(stats.DeriveSeed(seed, 0x57a7, uint64(coreID))),
		profile: p,
		// 1 TiB apart per core: disjoint address spaces.
		dataBase: uint64(coreID+1) << 40,
		codeBase: uint64(coreID+1)<<40 | 1<<36,
	}
}

// DataAddrs fills dst with n sampled data addresses for an interval in
// phase ph and returns it. dst is reused when it has capacity.
func (s *StreamGen) DataAddrs(n int, ph Phase, dst []uint64) []uint64 {
	dst = grow(dst, n)
	ws := s.profile.WorkingSetBytes
	hot := s.profile.HotSetBytes
	if hot > ws {
		hot = ws
	}
	if hot < blockBytes {
		hot = blockBytes
	}
	for i := 0; i < n; i++ {
		switch {
		case s.rng.Bool(s.profile.SeqFraction):
			s.seqPos = (s.seqPos + seqStride) % ws
			dst[i] = s.dataBase + s.seqPos
		case s.rng.Bool(s.profile.HotFraction):
			dst[i] = s.dataBase + uint64(s.rng.Intn(int(hot/blockBytes)))*blockBytes
		default:
			// Cold accesses roam the working set; memory-heavier phases
			// sweep more of it.
			span := float64(ws) * minf(1, ph.MemMult)
			blocks := uint64(span) / blockBytes
			if blocks == 0 {
				blocks = 1
			}
			dst[i] = s.dataBase + (s.rng.Uint64()%blocks)*blockBytes
		}
	}
	return dst
}

// FetchAddrs fills dst with n sampled instruction-fetch addresses.
func (s *StreamGen) FetchAddrs(n int, dst []uint64) []uint64 {
	dst = grow(dst, n)
	code := s.profile.CodeBytes
	for i := 0; i < n; i++ {
		if s.rng.Bool(0.04) {
			// Branch to a random code block.
			s.codePos = uint64(s.rng.Intn(int(code/blockBytes))) * blockBytes
		} else {
			s.codePos = (s.codePos + blockBytes) % code
		}
		dst[i] = s.codeBase + s.codePos
	}
	return dst
}

func grow(dst []uint64, n int) []uint64 {
	if cap(dst) < n {
		return make([]uint64, n)
	}
	return dst[:n]
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
