package workload

import (
	"math"

	"github.com/cpm-sim/cpm/internal/stats"
)

// StreamGen generates the sampled address streams that drive the cache
// hierarchy. Data accesses mix three behaviours according to the profile:
// stride-1 sequential walks (spatial locality), accesses to a hot subset of
// the working set (temporal locality), and uniform accesses over the whole
// working set. Instruction fetches walk the code footprint sequentially with
// occasional branches.
//
// Each core owns one StreamGen; all randomness derives from the seed so
// streams are reproducible.
type StreamGen struct {
	rng     *stats.Rand
	profile Profile

	dataBase uint64 // base virtual address of the data segment
	codeBase uint64
	seqPos   uint64 // sequential walk cursor within the working set
	codePos  uint64

	// Reciprocals for the per-address uniform draws, prepared once at
	// construction (hot set, code footprint) or once per observed phase
	// multiplier (cold span), so the generator loops never execute a
	// hardware divide.
	hotDiv   divisor
	codeDiv  divisor
	coldDiv  divisor
	coldMult float64 // phase multiplier coldDiv was built for; NaN initially
}

const (
	blockBytes = 64
	// seqStride is the step of sequential walks: word-sized, so a stride-1
	// sweep touches each cache block eight times before moving on — the
	// spatial locality real streaming code exhibits.
	seqStride = 8
)

// NewStreamGen builds a generator for profile p, which must validate: the
// generator relies on the footprint bounds (hot set and code footprint at
// least one block, hot set within the working set) instead of silently
// clamping misconfigured profiles. Cores receive distinct base addresses so
// their streams never alias in a shared L2 (the applications of the paper's
// mixes do not share data).
func NewStreamGen(seed uint64, coreID int, p Profile) (*StreamGen, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &StreamGen{
		rng:     stats.NewRand(stats.DeriveSeed(seed, 0x57a7, uint64(coreID))),
		profile: p,
		// 1 TiB apart per core: disjoint address spaces.
		dataBase: uint64(coreID+1) << 40,
		codeBase: uint64(coreID+1)<<40 | 1<<36,
		hotDiv:   newDivisor(p.HotSetBytes / blockBytes),
		codeDiv:  newDivisor(p.CodeBytes / blockBytes),
		coldMult: math.NaN(), // never equal: first DataAddrs call builds coldDiv
	}, nil
}

// DataAddrs fills dst with n sampled data addresses for an interval in
// phase ph and returns it. dst is reused when it has capacity.
func (s *StreamGen) DataAddrs(n int, ph Phase, dst []uint64) []uint64 {
	dst = grow(dst, n)
	ws := s.profile.WorkingSetBytes
	if ph.MemMult != s.coldMult {
		// Cold accesses roam the working set; memory-heavier phases sweep
		// more of it. The span is fixed for the whole phase, so the
		// reciprocal survives across calls until the phase machine moves.
		blocks := uint64(float64(ws)*minf(1, ph.MemMult)) / blockBytes
		if blocks == 0 {
			blocks = 1
		}
		s.coldDiv = newDivisor(blocks)
		s.coldMult = ph.MemMult
	}
	rng := s.rng
	seqF, hotF := s.profile.SeqFraction, s.profile.HotFraction
	for i := range dst {
		switch {
		case rng.Bool(seqF):
			// seqPos stays below ws, so one conditional subtract is the
			// wrap-around (ws is at least one block, far above the stride).
			s.seqPos += seqStride
			if s.seqPos >= ws {
				s.seqPos -= ws
			}
			dst[i] = s.dataBase + s.seqPos
		case rng.Bool(hotF):
			dst[i] = s.dataBase + s.hotDiv.mod(rng.Uint64())*blockBytes
		default:
			dst[i] = s.dataBase + s.coldDiv.mod(rng.Uint64())*blockBytes
		}
	}
	return dst
}

// FetchAddrs fills dst with n sampled instruction-fetch addresses.
func (s *StreamGen) FetchAddrs(n int, dst []uint64) []uint64 {
	dst = grow(dst, n)
	rng := s.rng
	code := s.profile.CodeBytes
	for i := range dst {
		if rng.Bool(0.04) {
			// Branch to a random code block.
			s.codePos = s.codeDiv.mod(rng.Uint64()) * blockBytes
		} else {
			// codePos stays below code, so wrap-around is one subtract.
			s.codePos += blockBytes
			if s.codePos >= code {
				s.codePos -= code
			}
		}
		dst[i] = s.codeBase + s.codePos
	}
	return dst
}

func grow(dst []uint64, n int) []uint64 {
	if cap(dst) < n {
		return make([]uint64, n)
	}
	return dst[:n]
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
