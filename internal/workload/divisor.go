package workload

import "math/bits"

// divisor computes exact 64-bit remainders by a fixed divisor without a
// hardware divide, using the 128-bit reciprocal technique of Lemire, Kaser
// and Kurz ("Faster remainders when the divisor is a constant"): with
// M = ceil(2^128 / d), x mod d = floor(((x*M) mod 2^128) * d / 2^128) for
// every x. The address generators draw remainders per sampled address, and
// the 64-bit divide in `%` is by far the most expensive instruction in that
// loop; three multiplies replace it. Divisors are invariant per generator
// (hot-set and code blocks) or per phase (cold-span blocks), so the setup
// divide amortizes over thousands of draws.
type divisor struct {
	d        uint64
	mHi, mLo uint64 // ceil(2^128 / d), little-endian halves
}

// newDivisor prepares the reciprocal for d. d must be non-zero.
func newDivisor(d uint64) divisor {
	if d == 0 {
		panic("workload: zero divisor")
	}
	// M = floor((2^128 - 1) / d) + 1, computed as a 128/64 long division.
	hi := ^uint64(0) / d
	lo, _ := bits.Div64(^uint64(0)%d, ^uint64(0), d)
	lo++
	if lo == 0 {
		hi++ // carry; for d == 1, M wraps to 0 mod 2^128 and mod returns 0
	}
	return divisor{d: d, mHi: hi, mLo: lo}
}

// mod returns x % v.d.
func (v divisor) mod(x uint64) uint64 {
	// low 128 bits of x*M
	pHi, pLo := bits.Mul64(x, v.mLo)
	pHi += x * v.mHi
	// floor((pHi:pLo * d) / 2^128): the top word of the 192-bit product
	hh, hl := bits.Mul64(pHi, v.d)
	carry, _ := bits.Mul64(pLo, v.d)
	if hl+carry < hl {
		hh++
	}
	return hh
}
