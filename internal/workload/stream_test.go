package workload

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/stats"
)

// refDataAddrs reproduces the pre-optimization address generator verbatim —
// per-address `%` draws, per-address span recompute, silent clamps — against
// a caller-supplied RNG. The fast path must be draw-for-draw identical.
func refDataAddrs(rng *stats.Rand, p Profile, base uint64, seqPos *uint64, n int, ph Phase) []uint64 {
	out := make([]uint64, n)
	ws := p.WorkingSetBytes
	hot := p.HotSetBytes
	if hot > ws {
		hot = ws
	}
	if hot < blockBytes {
		hot = blockBytes
	}
	for i := 0; i < n; i++ {
		switch {
		case rng.Bool(p.SeqFraction):
			*seqPos = (*seqPos + seqStride) % ws
			out[i] = base + *seqPos
		case rng.Bool(p.HotFraction):
			out[i] = base + uint64(rng.Intn(int(hot/blockBytes)))*blockBytes
		default:
			span := float64(ws) * minf(1, ph.MemMult)
			blocks := uint64(span) / blockBytes
			if blocks == 0 {
				blocks = 1
			}
			out[i] = base + (rng.Uint64()%blocks)*blockBytes
		}
	}
	return out
}

func refFetchAddrs(rng *stats.Rand, p Profile, base uint64, codePos *uint64, n int) []uint64 {
	out := make([]uint64, n)
	code := p.CodeBytes
	for i := 0; i < n; i++ {
		if rng.Bool(0.04) {
			*codePos = uint64(rng.Intn(int(code/blockBytes))) * blockBytes
		} else {
			*codePos = (*codePos + blockBytes) % code
		}
		out[i] = base + *codePos
	}
	return out
}

// TestStreamFastPathMatchesReference drives the optimized generator and the
// verbatim pre-optimization algorithm from identically-seeded RNGs across
// every registry profile and a sweep of phase multipliers, demanding
// draw-for-draw identical streams. This is what makes the reciprocal-divide
// and conditional-subtract rewrites safe for the golden traces.
func TestStreamFastPathMatchesReference(t *testing.T) {
	for _, name := range Names() {
		p := MustByName(name)
		g := mustStream(t, 11, 3, p)
		rng := stats.NewRand(stats.DeriveSeed(11, 0x57a7, 3))
		base := uint64(3+1) << 40
		codeBase := base | 1<<36
		var seqPos, codePos uint64
		var dst, fdst []uint64
		for step, mult := range []float64{1, 0.3, 2.5, 0.3, 1e-9, 4, 1} {
			ph := NeutralPhase()
			ph.MemMult = mult
			dst = g.DataAddrs(512, ph, dst)
			want := refDataAddrs(rng, p, base, &seqPos, 512, ph)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("%s step %d: data addr %d = %#x, reference %#x", name, step, i, dst[i], want[i])
				}
			}
			fdst = g.FetchAddrs(512, fdst)
			fwant := refFetchAddrs(rng, p, codeBase, &codePos, 512)
			for i := range fdst {
				if fdst[i] != fwant[i] {
					t.Fatalf("%s step %d: fetch addr %d = %#x, reference %#x", name, step, i, fdst[i], fwant[i])
				}
			}
		}
	}
}

// TestNewStreamGenRejectsInvalidProfiles pins the satellite bugfix: profiles
// the generator used to clamp silently are now rejected at construction.
func TestNewStreamGenRejectsInvalidProfiles(t *testing.T) {
	valid := MustByName("bschls")

	tiny := valid
	tiny.HotSetBytes = blockBytes / 2 // below one cache block
	if _, err := NewStreamGen(1, 0, tiny); err == nil {
		t.Error("hot set smaller than a block should be rejected")
	}

	wide := valid
	wide.HotSetBytes = wide.WorkingSetBytes * 2 // hot set outside working set
	if _, err := NewStreamGen(1, 0, wide); err == nil {
		t.Error("hot set beyond the working set should be rejected")
	}

	code := valid
	code.CodeBytes = blockBytes - 1
	if _, err := NewStreamGen(1, 0, code); err == nil {
		t.Error("code footprint smaller than a block should be rejected")
	}

	if _, err := NewStreamGen(1, 0, valid); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

// TestDataAddrsSteadyStateAllocs guards the zero-allocation contract of the
// interval loop's address generation.
func TestDataAddrsSteadyStateAllocs(t *testing.T) {
	g := mustStream(t, 2, 0, MustByName("sclust"))
	ph := NeutralPhase()
	dst := g.DataAddrs(2048, ph, nil)
	fdst := g.FetchAddrs(512, nil)
	if n := testing.AllocsPerRun(50, func() {
		dst = g.DataAddrs(2048, ph, dst)
		fdst = g.FetchAddrs(512, fdst)
	}); n != 0 {
		t.Errorf("steady-state address generation allocates %v times per interval, want 0", n)
	}
}

// BenchmarkStreamGen measures the per-interval address-generation cost for a
// memory-bound profile (2048 data + 512 fetch addresses, the interval-kernel
// sampling shape).
func BenchmarkStreamGen(b *testing.B) {
	g, err := NewStreamGen(2, 0, MustByName("sclust"))
	if err != nil {
		b.Fatal(err)
	}
	ph := NeutralPhase()
	dst := make([]uint64, 2048)
	fdst := make([]uint64, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = g.DataAddrs(2048, ph, dst)
		fdst = g.FetchAddrs(512, fdst)
	}
}
