package workload

import (
	"strings"
	"testing"
)

// FuzzParseMix drives the mix-spec parser with arbitrary input. Properties:
// the parser never panics; anything it accepts validates, stays within the
// documented size bounds, and round-trips through a re-rendered spec to the
// same island assignment.
func FuzzParseMix(f *testing.F) {
	f.Add("bschls,sclust/btrack,fsim/fmine,canneal/x264,vips")
	f.Add("hot:mesa/bzip/gcc/sixtrack")
	f.Add(" bschls , sclust / vips ")
	f.Add("custom:")
	f.Add(":/")
	f.Add("a,b/c")
	f.Add("mesa")
	f.Add(strings.Repeat("mesa/", 100))
	f.Add("name with spaces:mesa/bzip")
	f.Add("mesa,,bzip")
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := ParseMix(spec)
		if err != nil {
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ParseMix(%q) accepted an invalid mix: %v", spec, err)
		}
		if m.Name == "" {
			t.Fatalf("ParseMix(%q) returned an unnamed mix", spec)
		}
		if len(m.Islands) > maxSpecIslands {
			t.Fatalf("ParseMix(%q) exceeded the island bound: %d", spec, len(m.Islands))
		}
		for i, isl := range m.Islands {
			if len(isl) > maxSpecCoresPerIsland {
				t.Fatalf("ParseMix(%q) island %d exceeded the core bound: %d", spec, i, len(isl))
			}
		}
		// Round-trip: rendering the accepted mix back to spec form must
		// parse to the same assignment.
		var parts []string
		for _, isl := range m.Islands {
			parts = append(parts, strings.Join(isl, ","))
		}
		again, err := ParseMix(m.Name + ":" + strings.Join(parts, "/"))
		if err != nil {
			t.Fatalf("round-trip of ParseMix(%q) rejected: %v", spec, err)
		}
		if len(again.Islands) != len(m.Islands) {
			t.Fatalf("round-trip island count %d != %d", len(again.Islands), len(m.Islands))
		}
		for i := range m.Islands {
			if strings.Join(again.Islands[i], ",") != strings.Join(m.Islands[i], ",") {
				t.Fatalf("round-trip island %d differs: %v != %v", i, again.Islands[i], m.Islands[i])
			}
		}
	})
}

// FuzzStreamAddrs drives the address-stream generator with arbitrary seeds,
// cores, profiles and phase intensities. Properties: no panics, and every
// generated address stays inside the owning core's private segment — data
// within the working set above dataBase, fetches within the code footprint
// above codeBase — so streams from different cores can never alias.
func FuzzStreamAddrs(f *testing.F) {
	f.Add(uint64(1), 0, 0, 64, 1.0)
	f.Add(uint64(42), 7, 3, 1, 0.25)
	f.Add(uint64(0), 31, 200, 512, 4.0)
	f.Fuzz(func(t *testing.T, seed uint64, coreID, profIdx, n int, memMult float64) {
		if coreID < 0 || coreID > 1<<20 {
			coreID %= 1 << 20
			if coreID < 0 {
				coreID = -coreID
			}
		}
		if n < 0 {
			n = -n
		}
		n %= 4096
		names := Names()
		if profIdx < 0 {
			profIdx = -profIdx
		}
		p := MustByName(names[profIdx%len(names)])
		// Phases are bounded by the phase machine; clamp the fuzzed
		// multiplier into the same domain.
		ph := NeutralPhase()
		if memMult == memMult && memMult > 0 && memMult < 16 { // not NaN
			ph.MemMult = memMult
		}

		g, err := NewStreamGen(seed, coreID, p)
		if err != nil {
			t.Fatalf("NewStreamGen rejected registry profile %s: %v", p.Name, err)
		}
		base := uint64(coreID+1) << 40
		next := uint64(coreID+2) << 40

		data := g.DataAddrs(n, ph, nil)
		if len(data) != n {
			t.Fatalf("DataAddrs returned %d addresses, want %d", len(data), n)
		}
		ws := p.WorkingSetBytes
		if ws < blockBytes {
			ws = blockBytes
		}
		for i, a := range data {
			if a < base || a >= next {
				t.Fatalf("data addr %d (%#x) escaped core %d's segment [%#x, %#x)", i, a, coreID, base, next)
			}
			if off := a - base; off >= ws {
				t.Fatalf("data addr %d offset %#x beyond working set %#x", i, off, ws)
			}
		}

		fetch := g.FetchAddrs(n, nil)
		codeBase := base | 1<<36
		for i, a := range fetch {
			if a < codeBase || a >= next {
				t.Fatalf("fetch addr %d (%#x) escaped core %d's code segment", i, a, coreID)
			}
			if off := a - codeBase; off >= p.CodeBytes {
				t.Fatalf("fetch addr %d offset %#x beyond code footprint %#x", i, off, p.CodeBytes)
			}
		}

		// Same inputs, fresh generator: streams must be reproducible.
		g2, err := NewStreamGen(seed, coreID, p)
		if err != nil {
			t.Fatalf("NewStreamGen rejected registry profile %s: %v", p.Name, err)
		}
		data2 := g2.DataAddrs(n, ph, nil)
		for i := range data {
			if data[i] != data2[i] {
				t.Fatalf("stream not reproducible at %d: %#x != %#x", i, data[i], data2[i])
			}
		}
	})
}
