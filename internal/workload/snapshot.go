package workload

import (
	"math"

	"github.com/cpm-sim/cpm/internal/snapshot"
)

// Snapshot appends the phase generator's dynamic state: the RNG stream
// position, the current phase multipliers and the remaining dwell.
func (g *PhaseGen) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagPhaseGen)
	e.U64(g.rng.State())
	e.F64(g.cur.CPIMult)
	e.F64(g.cur.MemMult)
	e.F64(g.cur.ActMult)
	e.Int(g.dwell)
}

// Restore reads state written by Snapshot.
func (g *PhaseGen) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagPhaseGen)
	g.rng.SetState(d.U64())
	g.cur.CPIMult = d.F64()
	g.cur.MemMult = d.F64()
	g.cur.ActMult = d.F64()
	g.dwell = d.Int()
	return d.Err()
}

// Snapshot appends the address generator's dynamic state: the RNG stream
// position, the sequential-walk cursors, and the phase multiplier the cold
// divisor was last built for. The Lemire reciprocals themselves are not
// serialized — they are a pure function of configuration plus coldMult and
// are rebuilt on restore, which also keeps corrupt snapshot bytes from
// smuggling in an inconsistent divisor.
func (g *StreamGen) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagStreamGen)
	e.U64(g.rng.State())
	e.U64(g.seqPos)
	e.U64(g.codePos)
	e.F64(g.coldMult) // NaN (never built) round-trips via raw bits
}

// Restore reads state written by Snapshot, rebuilding the cold-span
// divisor exactly as DataAddrs would for the restored multiplier.
func (g *StreamGen) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagStreamGen)
	rngState := d.U64()
	seqPos := d.U64()
	codePos := d.U64()
	coldMult := d.F64()
	if err := d.Err(); err != nil {
		return err
	}
	g.rng.SetState(rngState)
	g.seqPos = seqPos
	g.codePos = codePos
	g.coldMult = coldMult
	if !math.IsNaN(coldMult) {
		// Mirror the DataAddrs rebuild so the divisor is bit-identical to
		// the one the snapshotted generator was using.
		blocks := uint64(float64(g.profile.WorkingSetBytes)*minf(1, coldMult)) / blockBytes
		if blocks == 0 {
			blocks = 1
		}
		g.coldDiv = newDivisor(blocks)
	}
	return nil
}
