package workload

import "fmt"

// Mix assigns one benchmark to each core of each island, reproducing
// Table III of the paper.
type Mix struct {
	// Name identifies the mix ("Mix-1", ...).
	Name string
	// Islands[i] lists the benchmark names running on island i, one per
	// core.
	Islands [][]string
}

// Cores returns the total core count of the mix.
func (m Mix) Cores() int {
	n := 0
	for _, isl := range m.Islands {
		n += len(isl)
	}
	return n
}

// Validate checks that every benchmark exists and islands are non-empty.
func (m Mix) Validate() error {
	if len(m.Islands) == 0 {
		return fmt.Errorf("workload: mix %s has no islands", m.Name)
	}
	for i, isl := range m.Islands {
		if len(isl) == 0 {
			return fmt.Errorf("workload: mix %s island %d empty", m.Name, i)
		}
		for _, b := range isl {
			if _, err := ByName(b); err != nil {
				return fmt.Errorf("workload: mix %s island %d: %w", m.Name, i, err)
			}
		}
	}
	return nil
}

// Profiles resolves the mix to profile values, in island-major order.
func (m Mix) Profiles() ([][]Profile, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	out := make([][]Profile, len(m.Islands))
	for i, isl := range m.Islands {
		out[i] = make([]Profile, len(isl))
		for j, b := range isl {
			out[i][j] = MustByName(b)
		}
	}
	return out, nil
}

// Mix1 is Table III(a): each island pairs one CPU-bound and one memory-bound
// application (8-core CMP, 4 islands × 2 cores).
func Mix1() Mix {
	return Mix{Name: "Mix-1", Islands: [][]string{
		{"bschls", "sclust"},
		{"btrack", "fsim"},
		{"fmine", "canneal"},
		{"x264", "vips"},
	}}
}

// Mix2 is Table III(b): islands are homogeneous — two CPU-bound or two
// memory-bound applications together (8-core CMP).
func Mix2() Mix {
	return Mix{Name: "Mix-2", Islands: [][]string{
		{"bschls", "btrack"},
		{"sclust", "fsim"},
		{"fmine", "x264"},
		{"canneal", "vips"},
	}}
}

// Mix3 is Table III(c): the 16-core mix with 4 cores per island,
// alternating all-CPU-bound and all-memory-bound islands. For a 32-core CMP
// the paper replicates this mix twice; pass replicas=2.
func Mix3(replicas int) Mix {
	base := [][]string{
		{"bschls", "btrack", "fmine", "x264"},
		{"sclust", "fsim", "canneal", "vips"},
		{"bschls", "btrack", "fmine", "x264"},
		{"sclust", "fsim", "canneal", "vips"},
	}
	m := Mix{Name: "Mix-3"}
	for r := 0; r < replicas; r++ {
		for _, isl := range base {
			m.Islands = append(m.Islands, append([]string(nil), isl...))
		}
	}
	return m
}

// ThermalMix is the Figure 18(a) assignment: eight single-core islands
// running mesa, bzip, gcc and sixtrack twice over — all CPU-bound, as the
// thermal-aware evaluation requires.
func ThermalMix() Mix {
	return Mix{Name: "Thermal", Islands: [][]string{
		{"mesa"}, {"bzip"}, {"gcc"}, {"sixtrack"},
		{"mesa"}, {"bzip"}, {"gcc"}, {"sixtrack"},
	}}
}

// PerIslandSize builds a mix from Mix-1's application set with the given
// cores per island, used by the island-size sensitivity study (Fig 13):
// 1 core/island spreads the 8 applications over 8 islands; 2 is Mix-1
// itself; 4 groups them into 2 islands.
func PerIslandSize(coresPerIsland int) (Mix, error) {
	apps := []string{"bschls", "sclust", "btrack", "fsim", "fmine", "canneal", "x264", "vips"}
	if coresPerIsland <= 0 || len(apps)%coresPerIsland != 0 {
		return Mix{}, fmt.Errorf("workload: cannot split %d apps into islands of %d", len(apps), coresPerIsland)
	}
	m := Mix{Name: fmt.Sprintf("Mix-1/%d-per-island", coresPerIsland)}
	for i := 0; i < len(apps); i += coresPerIsland {
		m.Islands = append(m.Islands, apps[i:i+coresPerIsland])
	}
	return m, nil
}

// MixByName resolves the built-in mixes by their CLI names: "mix1", "mix2",
// "mix3" (16 cores), "mix3x2" (32 cores) and "thermal". Anything else is
// treated as a custom mix specification (see ParseMix), so CLIs accept e.g.
// -mix mesa/bzip/gcc,sixtrack without a code change.
func MixByName(name string) (Mix, error) {
	switch name {
	case "mix1":
		return Mix1(), nil
	case "mix2":
		return Mix2(), nil
	case "mix3":
		return Mix3(1), nil
	case "mix3x2":
		return Mix3(2), nil
	case "thermal":
		return ThermalMix(), nil
	}
	m, err := ParseMix(name)
	if err != nil {
		return Mix{}, fmt.Errorf("workload: unknown mix %q (not a built-in, and not a valid spec: %v)", name, err)
	}
	return m, nil
}
