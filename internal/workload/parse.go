package workload

import (
	"fmt"
	"strings"
)

// Mix-spec limits: a spec is a CLI convenience, not a bulk format, and the
// simulator's cost grows with core count, so oversized specs are rejected
// up front rather than silently accepted.
const (
	maxSpecIslands        = 64
	maxSpecCoresPerIsland = 16
)

// ParseMix parses a custom mix specification of the form
//
//	[name:]island/island/...
//
// where each island is a comma-separated list of benchmark names, e.g.
//
//	bschls,sclust/btrack,fsim/fmine,canneal/x264,vips
//	hot:mesa/bzip/gcc/sixtrack
//
// Whitespace around names is ignored. Every benchmark must be one of the
// built-in profiles (see Names), each island needs at least one core, and
// the spec is bounded by maxSpecIslands × maxSpecCoresPerIsland.
func ParseMix(spec string) (Mix, error) {
	name := "custom"
	body := spec
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name = strings.TrimSpace(spec[:i])
		body = spec[i+1:]
		if name == "" {
			return Mix{}, fmt.Errorf("workload: empty mix name in spec %q", spec)
		}
		if strings.ContainsAny(name, "/,") {
			return Mix{}, fmt.Errorf("workload: mix name %q may not contain '/' or ','", name)
		}
	}
	if strings.TrimSpace(body) == "" {
		return Mix{}, fmt.Errorf("workload: empty mix spec")
	}
	islands := strings.Split(body, "/")
	if len(islands) > maxSpecIslands {
		return Mix{}, fmt.Errorf("workload: mix spec has %d islands, max %d", len(islands), maxSpecIslands)
	}
	m := Mix{Name: name}
	for i, isl := range islands {
		var cores []string
		for _, b := range strings.Split(isl, ",") {
			b = strings.TrimSpace(b)
			if b == "" {
				return Mix{}, fmt.Errorf("workload: island %d has an empty benchmark name", i)
			}
			cores = append(cores, b)
		}
		if len(cores) == 0 {
			return Mix{}, fmt.Errorf("workload: island %d is empty", i)
		}
		if len(cores) > maxSpecCoresPerIsland {
			return Mix{}, fmt.Errorf("workload: island %d has %d cores, max %d", i, len(cores), maxSpecCoresPerIsland)
		}
		m.Islands = append(m.Islands, cores)
	}
	if err := m.Validate(); err != nil {
		return Mix{}, err
	}
	return m, nil
}
