// Package sweepd makes long parameter sweeps preemptible and migratable.
//
// A sweep is a set of independent Points, each of which builds into an
// engine.Session plus ancillary checkpointable state (typically golden
// observers). A Coordinator drives the points over a pool of worker
// goroutines; workers checkpoint their in-flight point at interval
// boundaries, and when a worker dies mid-point — injected deterministically
// by a kill plan, or organically by a panic inside the simulation — the
// coordinator reassigns the point to a surviving worker, shipping the
// latest checkpoint so only the intervals since that boundary re-execute.
//
// Because every point is deterministic and checkpoints capture complete
// session state, a resumed point replays the lost intervals bit-identically:
// a sweep that suffered any number of kills produces byte-identical output
// to one that suffered none. That equivalence is the package's contract and
// is pinned by the golden kill-equivalence suite in internal/check.
//
// Checkpoints are self-describing snapshot files (Header kind
// "sweepd-point", fingerprint = the point name) whose body is covered by an
// FNV-1a integrity digest, so truncation, bit flips, or a checkpoint from
// the wrong point always fail restore with an error — never a divergent
// resume. The lineage of checkpoints, including what-if forks of mid-run
// state into parameter variants, is recorded in a Tree.
package sweepd

import (
	"fmt"
	"hash/fnv"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/snapshot"
)

// CheckpointKind tags sweepd point checkpoints in the snapshot header so a
// session or chip snapshot handed to RestoreCheckpoint (or vice versa)
// fails loudly instead of misparsing.
const CheckpointKind = "sweepd-point"

// State is ancillary checkpointable state carried alongside a point's
// session — typically stateful observers such as check.Golden, whose
// digests would silently diverge if the session migrated without them.
type State interface {
	Snapshot(e *snapshot.Encoder)
	Restore(d *snapshot.Decoder) error
}

// Instance is one constructed incarnation of a point: a session (not yet
// started, unless restored) plus the aux state included in its checkpoints.
// Aux order is part of the checkpoint format and must be identical across
// incarnations of the same point.
type Instance struct {
	Session *engine.Session
	Aux     []State
	// Check, when set, is consulted at every interval boundary; a non-nil
	// error fails the point permanently at that boundary. Use it to
	// surface invariant violations before a later checkpoint could
	// migrate past the offending (and not replayed) intervals.
	Check func() error
}

// Point is one migratable unit of sweep work. Build must be deterministic
// and repeatable: after a worker dies it is called again on another worker
// to construct a fresh instance for the checkpoint to restore into. Name
// doubles as the checkpoint fingerprint, so it must be unique within a run.
type Point struct {
	Name  string
	Build func() (*Instance, error)
}

// bodyDigest is the integrity digest over the checkpoint body. FNV-1a
// matches the repo's golden-digest hash and detects the corruption classes
// shape checks cannot: bit flips inside float payloads decode to legal but
// wrong values, so restore must refuse anything whose bytes changed.
func bodyDigest(body []byte) uint64 {
	h := fnv.New64a()
	h.Write(body)
	return h.Sum64()
}

// EncodeCheckpoint captures inst at its current interval boundary as a
// self-describing checkpoint for p. Layout: snapshot header (kind
// "sweepd-point", fingerprint = point name), the body's FNV-1a digest, then
// the body blob — completed-interval count, session snapshot, aux count,
// aux states.
func EncodeCheckpoint(p Point, inst *Instance) ([]byte, error) {
	body := snapshot.NewEncoder()
	body.Int(inst.Session.Completed())
	if err := inst.Session.Snapshot(body); err != nil {
		return nil, fmt.Errorf("sweepd: checkpointing %s: %w", p.Name, err)
	}
	body.Int(len(inst.Aux))
	for _, a := range inst.Aux {
		a.Snapshot(body)
	}
	e := snapshot.NewEncoder()
	e.Header(snapshot.Header{Kind: CheckpointKind, Fingerprint: p.Name})
	e.U64(bodyDigest(body.Bytes()))
	e.Blob(body.Bytes())
	return e.Bytes(), nil
}

// RestoreCheckpoint restores a checkpoint produced by EncodeCheckpoint into
// a freshly built instance of the same point, returning the interval the
// point resumes from. Every validation failure — wrong kind, wrong point,
// digest mismatch, truncation, trailing bytes, aux-count mismatch, or an
// interval echo that disagrees with the restored session — is an error;
// a nil error guarantees the instance is bit-identical to the one
// checkpointed.
func RestoreCheckpoint(p Point, inst *Instance, data []byte) (int, error) {
	d := snapshot.NewDecoder(data)
	h, err := d.Header()
	if err != nil {
		return 0, fmt.Errorf("sweepd: reading checkpoint for %s: %w", p.Name, err)
	}
	if h.Kind != CheckpointKind {
		return 0, snapshot.ShapeErrorf("sweepd: snapshot is a %q, not a %q checkpoint", h.Kind, CheckpointKind)
	}
	if h.Fingerprint != p.Name {
		return 0, snapshot.ShapeErrorf("sweepd: checkpoint was taken for point %q, restoring point %q", h.Fingerprint, p.Name)
	}
	digest := d.U64()
	body := d.Blob()
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("sweepd: reading checkpoint for %s: %w", p.Name, err)
	}
	if rem := d.Remaining(); rem != 0 {
		return 0, snapshot.ShapeErrorf("sweepd: checkpoint for %s has %d trailing bytes", p.Name, rem)
	}
	if got := bodyDigest(body); got != digest {
		return 0, snapshot.ShapeErrorf("sweepd: checkpoint for %s failed integrity check: digest %016x, header says %016x (corrupt or tampered)",
			p.Name, got, digest)
	}
	bd := snapshot.NewDecoder(body)
	k := bd.Int()
	if err := inst.Session.Restore(bd); err != nil {
		return 0, fmt.Errorf("sweepd: restoring %s: %w", p.Name, err)
	}
	nAux := bd.Int()
	if err := bd.Err(); err != nil {
		return 0, fmt.Errorf("sweepd: restoring %s: %w", p.Name, err)
	}
	if nAux != len(inst.Aux) {
		return 0, snapshot.ShapeErrorf("sweepd: checkpoint for %s carries %d aux states, instance has %d", p.Name, nAux, len(inst.Aux))
	}
	// Aux states restore after the session: Session.Restore re-runs RunStart
	// on observers, so restoring them afterwards reinstates their mid-run
	// state on top of that reset.
	for i, a := range inst.Aux {
		if err := a.Restore(bd); err != nil {
			return 0, fmt.Errorf("sweepd: restoring %s aux %d: %w", p.Name, i, err)
		}
	}
	if rem := bd.Remaining(); rem != 0 {
		return 0, snapshot.ShapeErrorf("sweepd: checkpoint body for %s has %d trailing bytes", p.Name, rem)
	}
	if got := inst.Session.Completed(); got != k {
		return 0, snapshot.ShapeErrorf("sweepd: checkpoint for %s says interval %d, restored session at %d", p.Name, k, got)
	}
	return k, nil
}
