package sweepd

import "fmt"

// TreeNode is one snapshot in a checkpoint lineage: an opaque encoded state
// (a sweepd checkpoint, or a chip snapshot used as a fork base), the
// interval it was captured at, and the node it grew from.
type TreeNode struct {
	ID       int
	Parent   int // -1 for roots
	Label    string
	Interval int
	State    []byte
}

// Tree records checkpoint lineage for a resilient run. It generalizes the
// linear warm-start snapshot into a snapshot tree: any node's state can be
// forked into parameter variants (new child points restoring the same
// base), and each point's periodic checkpoints chain as descendants of the
// node it was forked from. Nodes are append-only; IDs are dense indices in
// insertion order. Tree is not safe for concurrent mutation — the
// coordinator appends only from its own event loop.
type Tree struct {
	nodes []TreeNode
}

// NewTree returns an empty lineage tree.
func NewTree() *Tree { return &Tree{} }

// Add appends a node under parent (or as a root when parent is -1) and
// returns its ID. The state slice is stored as given, not copied.
func (t *Tree) Add(parent int, label string, interval int, state []byte) (int, error) {
	if parent < -1 || parent >= len(t.nodes) {
		return 0, fmt.Errorf("sweepd: tree parent %d out of range [-1, %d)", parent, len(t.nodes))
	}
	id := len(t.nodes)
	t.nodes = append(t.nodes, TreeNode{ID: id, Parent: parent, Label: label, Interval: interval, State: state})
	return id, nil
}

// Len returns the number of nodes.
func (t *Tree) Len() int { return len(t.nodes) }

// Node returns node id; it panics on an out-of-range ID, which is a
// programming error rather than a data error.
func (t *Tree) Node(id int) TreeNode { return t.nodes[id] }

// Roots returns the IDs of all parentless nodes in insertion order.
func (t *Tree) Roots() []int {
	var ids []int
	for _, n := range t.nodes {
		if n.Parent == -1 {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Children returns the IDs of id's direct children in insertion order.
func (t *Tree) Children(id int) []int {
	var ids []int
	for _, n := range t.nodes {
		if n.Parent == id {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Path returns the IDs from the root down to id, inclusive.
func (t *Tree) Path(id int) []int {
	var rev []int
	for cur := id; cur != -1; cur = t.nodes[cur].Parent {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
