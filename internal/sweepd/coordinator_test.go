package sweepd

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/metrics"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/snapshot"
	"github.com/cpm-sim/cpm/internal/workload"
)

// countState is a stateful observer carried as aux checkpoint state: it
// counts observed intervals, so any migration that dropped or replayed
// observer state shows up as a count mismatch.
type countState struct {
	steps int
}

func (c *countState) RunStart(engine.RunInfo)   { c.steps = 0 }
func (c *countState) ObserveStep(engine.Step)   { c.steps++ }
func (c *countState) ObserveEpoch(engine.Epoch) {}
func (c *countState) RunEnd(*engine.Summary)    {}

func (c *countState) Snapshot(e *snapshot.Encoder) { e.Int(c.steps) }
func (c *countState) Restore(d *snapshot.Decoder) error {
	c.steps = d.Int()
	return d.Err()
}

// testInstance builds a small unmanaged session (1 warm + 2 measure epochs
// = 60 intervals) with a countState attached as both observer and aux.
func testInstance(t testing.TB, seed uint64, extra ...engine.Observer) (*Instance, *countState) {
	t.Helper()
	inst, cs, err := buildTestInstance(seed, extra...)
	if err != nil {
		t.Fatal(err)
	}
	return inst, cs
}

func buildTestInstance(seed uint64, extra ...engine.Observer) (*Instance, *countState, error) {
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Seed = seed
	cfg.Parallel = false
	cmp, err := sim.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	cs := &countState{}
	obs := append([]engine.Observer{cs}, extra...)
	sess, err := engine.NewSession(engine.NewChipRunner(cmp), engine.SessionConfig{
		WarmEpochs: 1, MeasureEpochs: 2, Label: "sweepd-test",
	}, obs...)
	if err != nil {
		return nil, nil, err
	}
	return &Instance{Session: sess, Aux: []State{cs}}, cs, nil
}

func testPoints(t testing.TB, n int) ([]Point, []*countState) {
	t.Helper()
	pts := make([]Point, n)
	counts := make([]*countState, n)
	for i := range pts {
		i := i
		seed := uint64(i + 1)
		name := "pt-" + string(rune('a'+i))
		pts[i] = Point{Name: name, Build: func() (*Instance, error) {
			inst, cs, err := buildTestInstance(seed)
			if err != nil {
				return nil, err
			}
			counts[i] = cs // final incarnation wins; happens-before via events
			return inst, nil
		}}
	}
	return pts, counts
}

func summariesEqual(t *testing.T, got, want []engine.Summary) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d summaries, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.MeanPowerW != w.MeanPowerW || g.MeanBIPS != w.MeanBIPS || g.Instructions != w.Instructions {
			t.Errorf("point %d summary diverged: got power=%v bips=%v instr=%v, want power=%v bips=%v instr=%v",
				i, g.MeanPowerW, g.MeanBIPS, g.Instructions, w.MeanPowerW, w.MeanBIPS, w.Instructions)
		}
	}
}

// reference runs the same points straight through, no coordinator.
func reference(t *testing.T, n int) []engine.Summary {
	t.Helper()
	sums := make([]engine.Summary, n)
	for i := 0; i < n; i++ {
		inst, _ := testInstance(t, uint64(i+1))
		sums[i] = inst.Session.Run()
	}
	return sums
}

func TestCoordinatorPlainRun(t *testing.T) {
	pts, counts := testPoints(t, 3)
	c, err := New(pts, Config{Workers: 2, CheckpointEvery: 20})
	if err != nil {
		t.Fatal(err)
	}
	sums, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	summariesEqual(t, sums, reference(t, 3))
	st := c.Stats()
	if st.Kills != 0 || st.Migrations != 0 {
		t.Errorf("uninjected run reported kills=%d migrations=%d", st.Kills, st.Migrations)
	}
	// 60 intervals at cadence 20 with the final boundary skipped = 2 per point.
	if st.Checkpoints != 6 {
		t.Errorf("checkpoints = %d, want 6", st.Checkpoints)
	}
	if st.CheckpointBytes <= 0 || st.MaxCheckpointBytes <= 0 {
		t.Errorf("checkpoint byte accounting empty: %+v", st)
	}
	for i, cs := range counts {
		if cs.steps != 60 {
			t.Errorf("point %d observed %d intervals, want 60", i, cs.steps)
		}
	}
}

// TestCoordinatorKillEquivalence is the core contract: a sweep killed at
// EVERY interval boundary produces summaries and observer state identical
// to an unkilled run.
func TestCoordinatorKillEquivalence(t *testing.T) {
	want := reference(t, 3)
	for _, killEvery := range []int{1, 7} {
		pts, counts := testPoints(t, 3)
		var log bytes.Buffer
		reg := metrics.NewRegistry()
		c, err := New(pts, Config{
			Workers:         2,
			CheckpointEvery: 5,
			KillEvery:       killEvery,
			Log:             &log,
			Metrics:         NewInstruments(reg, "test"),
		})
		if err != nil {
			t.Fatal(err)
		}
		sums, err := c.Run()
		if err != nil {
			t.Fatalf("killEvery=%d: %v", killEvery, err)
		}
		summariesEqual(t, sums, want)
		st := c.Stats()
		wantKills := 3 * (60 / killEvery) // every boundary fires exactly once per point
		if st.Kills != wantKills || st.Migrations != wantKills {
			t.Errorf("killEvery=%d: kills=%d migrations=%d, want %d each", killEvery, st.Kills, st.Migrations, wantKills)
		}
		if st.Restores == 0 {
			t.Errorf("killEvery=%d: no migration resumed from a checkpoint", killEvery)
		}
		for i, cs := range counts {
			if cs.steps != 60 {
				t.Errorf("killEvery=%d: point %d observer counted %d intervals, want 60 (aux state diverged across migration)",
					killEvery, i, cs.steps)
			}
		}
		if !strings.Contains(log.String(), "migrating") {
			t.Errorf("killEvery=%d: no migration logged:\n%s", killEvery, log.String())
		}
		if v := c.cfg.Metrics.Migrations.Value(); int(v) != wantKills {
			t.Errorf("killEvery=%d: cpmsweep_migrations_total = %v, want %d", killEvery, v, wantKills)
		}
		if v := c.cfg.Metrics.Checkpoints.Value(); int(v) != st.Checkpoints {
			t.Errorf("killEvery=%d: cpmsweep_checkpoints_total = %v, stats say %d", killEvery, v, st.Checkpoints)
		}
	}
}

// TestCoordinatorPanicContainment: a point that panics mid-simulation fails
// with an error naming it; the process survives and every other point
// completes with correct results.
func TestCoordinatorPanicContainment(t *testing.T) {
	pts, _ := testPoints(t, 3)
	bomb := engine.Funcs{OnStep: func(s engine.Step) {
		if s.Index == 30 {
			panic("injected fault")
		}
	}}
	pts[1].Build = func() (*Instance, error) {
		inst, _, err := buildTestInstance(2, bomb)
		return inst, err
	}
	c, err := New(pts, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sums, err := c.Run()
	if err == nil {
		t.Fatal("panicking point did not surface an error")
	}
	for _, frag := range []string{"point 1", "pt-b", "panicked: injected fault", "goroutine"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q does not contain %q", err.Error(), frag)
		}
	}
	want := reference(t, 3)
	if sums[0].Instructions != want[0].Instructions || sums[2].Instructions != want[2].Instructions {
		t.Error("surviving points diverged after a sibling panicked")
	}
	if sums[1].Instructions != 0 {
		t.Errorf("failed point carries a summary: %+v", sums[1])
	}
}

// TestCoordinatorBoundaryCheck: an Instance.Check error fails the point at
// the next interval boundary instead of letting a later checkpoint migrate
// past it.
func TestCoordinatorBoundaryCheck(t *testing.T) {
	pts, _ := testPoints(t, 2)
	build := pts[1].Build
	pts[1].Build = func() (*Instance, error) {
		inst, err := build()
		if err != nil {
			return nil, err
		}
		inst.Check = func() error {
			if inst.Session.Completed() >= 13 {
				return errors.New("budget invariant violated")
			}
			return nil
		}
		return inst, nil
	}
	c, err := New(pts, Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run()
	if err == nil || !strings.Contains(err.Error(), "check failed at interval 13") ||
		!strings.Contains(err.Error(), "budget invariant violated") {
		t.Errorf("boundary check error = %v", err)
	}
}

func TestCoordinatorValidation(t *testing.T) {
	pt := Point{Name: "a", Build: func() (*Instance, error) { return nil, nil }}
	cases := []struct {
		name string
		pts  []Point
		cfg  Config
		want string
	}{
		{"no points", nil, Config{}, "no points"},
		{"unnamed", []Point{{Build: pt.Build}}, Config{}, "no name"},
		{"no build", []Point{{Name: "a"}}, Config{}, "no Build"},
		{"duplicate names", []Point{pt, pt}, Config{}, "share name"},
		{"negative kill", []Point{pt}, Config{KillEvery: -1}, "must be >= 0"},
		{"treebase length", []Point{pt}, Config{TreeBase: []int{0, 1}}, "TreeBase"},
		{"treebase range", []Point{pt}, Config{TreeBase: []int{5}}, "out of range"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := New(c.pts, c.cfg)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("New = %v, want error containing %q", err, c.want)
			}
		})
	}
	c, err := New([]Point{pt}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	c.ran = true
	if _, err := c.Run(); err == nil || !strings.Contains(err.Error(), "already run") {
		t.Errorf("second Run = %v, want already-run error", err)
	}
}

func TestKillPlanFiresOncePerBoundary(t *testing.T) {
	p := &killPlan{every: 5}
	if p.fire("x", 3) {
		t.Error("fired off-cadence")
	}
	if p.fire("x", 0) {
		t.Error("fired at interval 0")
	}
	if !p.fire("x", 5) {
		t.Error("did not fire at first boundary")
	}
	if p.fire("x", 5) {
		t.Error("re-fired a spent boundary (re-executed intervals must not re-kill)")
	}
	if !p.fire("y", 5) {
		t.Error("plans must be per-point")
	}
	var nilPlan *killPlan
	if nilPlan.fire("x", 5) {
		t.Error("nil plan fired")
	}
	if (&killPlan{}).fire("x", 5) {
		t.Error("disabled plan fired")
	}
}
