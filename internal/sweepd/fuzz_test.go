package sweepd

import (
	"bytes"
	"testing"
)

// FuzzCheckpointRestore is the migration-path robustness target: whatever
// bytes arrive as a checkpoint, RestoreCheckpoint must either reject them
// with an error or restore a state whose re-encoding is byte-identical to
// the input — never a silently divergent resume. Truncations, bit flips,
// and wrong-fingerprint headers all land in the reject arm via the header,
// shape, and FNV-1a integrity checks.
func FuzzCheckpointRestore(f *testing.F) {
	point := Point{Name: "fuzz-point", Build: func() (*Instance, error) {
		inst, _, err := buildTestInstance(5)
		return inst, err
	}}
	seedInst, _, err := buildTestInstance(5)
	if err != nil {
		f.Fatal(err)
	}
	seedInst.Session.RunIntervals(20)
	valid, err := EncodeCheckpoint(point, seedInst)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/2])
	mut := bytes.Clone(valid)
	mut[len(mut)/2] ^= 0x01
	f.Add(mut)
	wrong, err := EncodeCheckpoint(Point{Name: "other"}, seedInst)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wrong)

	f.Fuzz(func(t *testing.T, data []byte) {
		inst, _, err := buildTestInstance(5)
		if err != nil {
			t.Fatal(err)
		}
		k, err := RestoreCheckpoint(point, inst, data)
		if err != nil {
			return // rejected: the safe outcome for arbitrary bytes
		}
		if got := inst.Session.Completed(); got != k {
			t.Fatalf("accepted checkpoint: reported interval %d, session at %d", k, got)
		}
		re, err := EncodeCheckpoint(point, inst)
		if err != nil {
			t.Fatalf("accepted checkpoint failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted checkpoint is not re-encode-identical: restore would diverge from the checkpointed trajectory (%d vs %d bytes)",
				len(re), len(data))
		}
	})
}
