package sweepd

import "github.com/cpm-sim/cpm/internal/metrics"

// Instruments are the coordinator's exported telemetry. All instruments are
// optional: a nil *Instruments (or nil fields) disables export without
// branching at every call site.
type Instruments struct {
	// Checkpoints counts checkpoints taken (cpmsweep_checkpoints_total).
	Checkpoints *metrics.Counter
	// Migrations counts points reassigned after a worker death
	// (cpmsweep_migrations_total).
	Migrations *metrics.Counter
	// Kills counts injected worker deaths (cpmsweep_kills_total).
	Kills *metrics.Counter
	// CheckpointBytes accumulates encoded checkpoint sizes
	// (cpmsweep_checkpoint_bytes_total).
	CheckpointBytes *metrics.Counter
	// LastCheckpointBytes tracks the most recent checkpoint's size
	// (cpmsweep_checkpoint_last_bytes).
	LastCheckpointBytes *metrics.Gauge
}

// NewInstruments registers the sweepd instrument set on r, labelled by
// sweep run. Returns nil when r is nil so callers can thread an optional
// registry straight through.
func NewInstruments(r *metrics.Registry, run string) *Instruments {
	if r == nil {
		return nil
	}
	return &Instruments{
		Checkpoints: r.CounterVec("cpmsweep_checkpoints_total",
			"Point checkpoints taken at interval boundaries by the resilient sweep coordinator.",
			"run").With(run),
		Migrations: r.CounterVec("cpmsweep_migrations_total",
			"Sweep points reassigned to a surviving worker after a worker death.",
			"run").With(run),
		Kills: r.CounterVec("cpmsweep_kills_total",
			"Injected worker deaths fired by the deterministic kill plan.",
			"run").With(run),
		CheckpointBytes: r.CounterVec("cpmsweep_checkpoint_bytes_total",
			"Total encoded size of all checkpoints taken, in bytes.",
			"run").With(run),
		LastCheckpointBytes: r.GaugeVec("cpmsweep_checkpoint_last_bytes",
			"Encoded size of the most recent checkpoint, in bytes.",
			"run").With(run),
	}
}

func (m *Instruments) checkpoint(bytes int) {
	if m == nil {
		return
	}
	if m.Checkpoints != nil {
		m.Checkpoints.Inc()
	}
	if m.CheckpointBytes != nil {
		m.CheckpointBytes.Add(float64(bytes))
	}
	if m.LastCheckpointBytes != nil {
		m.LastCheckpointBytes.Set(float64(bytes))
	}
}

func (m *Instruments) migration() {
	if m == nil || m.Migrations == nil {
		return
	}
	m.Migrations.Inc()
}

func (m *Instruments) kill() {
	if m == nil || m.Kills == nil {
		return
	}
	m.Kills.Inc()
}
