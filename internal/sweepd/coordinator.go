package sweepd

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"

	"github.com/cpm-sim/cpm/internal/engine"
)

// Config tunes a Coordinator.
type Config struct {
	// Workers is the worker-goroutine pool size; 0 means GOMAXPROCS,
	// capped at the number of points.
	Workers int
	// CheckpointEvery is the interval-boundary cadence at which workers
	// checkpoint their in-flight point; 0 means every 20 intervals (one
	// epoch at the default period).
	CheckpointEvery int
	// KillEvery injects a deterministic worker death each time a point
	// first completes an interval divisible by KillEvery; 0 disables
	// injection. See killPlan for the determinism contract.
	KillEvery int
	// Metrics receives checkpoint/migration telemetry; nil disables.
	Metrics *Instruments
	// Log receives one line per checkpoint, kill, and migration; nil
	// discards.
	Log io.Writer
	// Tree records checkpoint lineage; nil builds a fresh tree. Pass a
	// pre-seeded tree (e.g. holding a warm-start base snapshot) to chain
	// run checkpoints under existing nodes.
	Tree *Tree
	// TreeBase maps each point to the tree node its checkpoints descend
	// from (-1 = root). Nil means all points start at -1. Length must
	// equal the point count when set.
	TreeBase []int
}

// Stats summarizes the fault-tolerance activity of one Run.
type Stats struct {
	Checkpoints        int   // checkpoints taken at interval boundaries
	CheckpointBytes    int64 // total encoded size of those checkpoints
	MaxCheckpointBytes int   // largest single checkpoint
	Kills              int   // injected worker deaths
	Migrations         int   // points reassigned after a death
	Restores           int   // migrations that resumed from a checkpoint
}

// killPlan injects worker deaths deterministically. A kill fires the first
// time a point completes an interval divisible by Every — and at most once
// per (point, interval), so intervals re-executed after a restore never
// re-fire and forward progress is guaranteed even when the kill cadence is
// denser than the checkpoint cadence. Keying on point progress rather than
// wall clock or worker identity makes the schedule identical at any worker
// count, which is what lets kill-equivalence tests demand byte-identical
// output.
type killPlan struct {
	every int
	mu    sync.Mutex
	fired map[string]map[int]bool
}

func (p *killPlan) fire(point string, interval int) bool {
	if p == nil || p.every <= 0 || interval <= 0 || interval%p.every != 0 {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fired[point][interval] {
		return false
	}
	if p.fired == nil {
		p.fired = make(map[string]map[int]bool)
	}
	if p.fired[point] == nil {
		p.fired[point] = make(map[int]bool)
	}
	p.fired[point][interval] = true
	return true
}

// Coordinator drives a set of points to completion across a pool of worker
// goroutines, checkpointing and migrating as configured. Use New, Run once,
// then read Summaries/Stats/Tree.
type Coordinator struct {
	points  []Point
	cfg     Config
	workers int
	ckEvery int
	kills   *killPlan
	tree    *Tree
	tip     []int // latest tree node per point
	latest  [][]byte
	sums    []engine.Summary
	errs    []error
	stats   Stats
	ran     bool
}

// New validates the point set and returns a coordinator ready to Run.
func New(points []Point, cfg Config) (*Coordinator, error) {
	if len(points) == 0 {
		return nil, errors.New("sweepd: no points")
	}
	seen := make(map[string]int, len(points))
	for i, p := range points {
		if p.Name == "" {
			return nil, fmt.Errorf("sweepd: point %d has no name", i)
		}
		if p.Build == nil {
			return nil, fmt.Errorf("sweepd: point %d (%s) has no Build", i, p.Name)
		}
		if j, dup := seen[p.Name]; dup {
			return nil, fmt.Errorf("sweepd: points %d and %d share name %q (names are checkpoint fingerprints and must be unique)", j, i, p.Name)
		}
		seen[p.Name] = i
	}
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(points) {
		w = len(points)
	}
	ck := cfg.CheckpointEvery
	if ck <= 0 {
		ck = 20
	}
	if cfg.KillEvery < 0 {
		return nil, fmt.Errorf("sweepd: KillEvery %d must be >= 0", cfg.KillEvery)
	}
	tree := cfg.Tree
	if tree == nil {
		tree = NewTree()
	}
	tip := make([]int, len(points))
	for i := range tip {
		tip[i] = -1
	}
	if cfg.TreeBase != nil {
		if len(cfg.TreeBase) != len(points) {
			return nil, fmt.Errorf("sweepd: TreeBase has %d entries for %d points", len(cfg.TreeBase), len(points))
		}
		for i, b := range cfg.TreeBase {
			if b < -1 || b >= tree.Len() {
				return nil, fmt.Errorf("sweepd: TreeBase[%d] = %d out of range [-1, %d)", i, b, tree.Len())
			}
			tip[i] = b
		}
	}
	return &Coordinator{
		points:  points,
		cfg:     cfg,
		workers: w,
		ckEvery: ck,
		kills:   &killPlan{every: cfg.KillEvery},
		tree:    tree,
		tip:     tip,
		latest:  make([][]byte, len(points)),
		sums:    make([]engine.Summary, len(points)),
		errs:    make([]error, len(points)),
	}, nil
}

// event kinds flowing from workers to the coordinator loop.
type evKind int

const (
	evCheckpoint evKind = iota // periodic checkpoint of an in-flight point
	evDied                     // injected kill: the worker goroutine is gone
	evDone                     // point ran to completion
	evFail                     // point failed permanently (build/restore/panic)
)

type event struct {
	kind     evKind
	worker   int
	point    int
	interval int
	data     []byte
	sum      engine.Summary
	err      error
}

type task struct {
	point int
	ckpt  []byte // nil = cold build, else resume from this checkpoint
}

// Run drives every point to completion or permanent failure, migrating
// killed points. It returns per-point summaries in point order; if any
// point failed, the error names the lowest-index failing point and its
// cause, and the remaining summaries are still valid. Run may be called
// once.
func (c *Coordinator) Run() ([]engine.Summary, error) {
	if c.ran {
		return nil, errors.New("sweepd: coordinator already run")
	}
	c.ran = true

	tasks := make(chan task)
	events := make(chan event)
	pending := make([]task, len(c.points))
	for i := range pending {
		pending[i] = task{point: i}
	}
	nextWorker := 0
	spawn := func() {
		id := nextWorker
		nextWorker++
		go c.worker(id, tasks, events)
	}
	for i := 0; i < c.workers; i++ {
		spawn()
	}

	remaining := len(c.points)
	for remaining > 0 {
		// Offer the head of the queue to any idle worker while staying
		// responsive to events; a nil channel blocks the send case away
		// when the queue is empty.
		var send chan task
		var head task
		if len(pending) > 0 {
			send = tasks
			head = pending[0]
		}
		select {
		case send <- head:
			pending = pending[1:]
		case ev := <-events:
			switch ev.kind {
			case evCheckpoint:
				c.latest[ev.point] = ev.data
				if id, err := c.tree.Add(c.tip[ev.point], c.points[ev.point].Name, ev.interval, ev.data); err == nil {
					c.tip[ev.point] = id
				}
				c.stats.Checkpoints++
				c.stats.CheckpointBytes += int64(len(ev.data))
				if len(ev.data) > c.stats.MaxCheckpointBytes {
					c.stats.MaxCheckpointBytes = len(ev.data)
				}
				c.cfg.Metrics.checkpoint(len(ev.data))
				c.logf("worker %d checkpointed %s at interval %d (%d bytes)", ev.worker, c.points[ev.point].Name, ev.interval, len(ev.data))
			case evDied:
				c.stats.Kills++
				c.stats.Migrations++
				c.cfg.Metrics.kill()
				c.cfg.Metrics.migration()
				from := "scratch"
				if ck := c.latest[ev.point]; ck != nil {
					c.stats.Restores++
					from = fmt.Sprintf("checkpoint @%d", c.tree.Node(c.tip[ev.point]).Interval)
				}
				pending = append(pending, task{point: ev.point, ckpt: c.latest[ev.point]})
				// The dead worker's goroutine returned; replace it to keep
				// the pool at strength.
				spawn()
				c.logf("worker %d died on %s at interval %d; migrating (resume from %s)", ev.worker, c.points[ev.point].Name, ev.interval, from)
			case evDone:
				c.sums[ev.point] = ev.sum
				remaining--
			case evFail:
				c.errs[ev.point] = ev.err
				remaining--
			}
		}
	}
	close(tasks)

	for i, err := range c.errs {
		if err != nil {
			return c.sums, fmt.Errorf("sweepd: point %d (%s): %w", i, c.points[i].Name, err)
		}
	}
	return c.sums, nil
}

// Summaries returns the per-point summaries gathered by Run, in point
// order. Entries for failed points are zero.
func (c *Coordinator) Summaries() []engine.Summary { return c.sums }

// Stats returns the fault-tolerance counters gathered by Run.
func (c *Coordinator) Stats() Stats { return c.stats }

// Tree returns the checkpoint lineage recorded by Run.
func (c *Coordinator) Tree() *Tree { return c.tree }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log == nil {
		return
	}
	fmt.Fprintf(c.cfg.Log, "sweepd: "+format+"\n", args...)
}

// worker pulls assignments until the task channel closes or an injected
// kill terminates this incarnation (the coordinator spawns a replacement).
func (c *Coordinator) worker(id int, tasks <-chan task, events chan<- event) {
	for t := range tasks {
		if died := c.execute(id, t, events); died {
			return
		}
	}
}

// execute runs one assignment to completion, permanent failure, or injected
// death. Build and restore failures are permanent: retrying a checkpoint
// that failed validation cannot succeed, so the point fails rather than
// looping.
func (c *Coordinator) execute(id int, t task, events chan<- event) (died bool) {
	p := c.points[t.point]
	inst, err := p.Build()
	if err != nil {
		events <- event{kind: evFail, worker: id, point: t.point, err: fmt.Errorf("build: %w", err)}
		return false
	}
	if t.ckpt != nil {
		if _, err := RestoreCheckpoint(p, inst, t.ckpt); err != nil {
			events <- event{kind: evFail, worker: id, point: t.point, err: err}
			return false
		}
	}
	return c.drive(id, t.point, inst, events)
}

// drive steps the instance interval by interval: fire any planned kill at
// the boundary first (a crash loses the work since the last checkpoint,
// which the migrated incarnation re-executes deterministically), then
// checkpoint on cadence. Panics out of the simulation are contained here:
// the point fails with an error naming it and carrying the stack, while the
// process and every other point continue.
func (c *Coordinator) drive(id, point int, inst *Instance, events chan<- event) (died bool) {
	p := c.points[point]
	var sum engine.Summary
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("panicked: %v\n%s", r, debug.Stack())
			}
		}()
		sess := inst.Session
		for {
			if sess.RunIntervals(1) == 0 {
				sum = sess.Run() // all intervals done; finalize the summary
				return nil
			}
			k := sess.Completed()
			if inst.Check != nil {
				if cerr := inst.Check(); cerr != nil {
					return fmt.Errorf("check failed at interval %d: %w", k, cerr)
				}
			}
			if c.kills.fire(p.Name, k) {
				died = true
				events <- event{kind: evDied, worker: id, point: point, interval: k}
				return nil
			}
			if k%c.ckEvery == 0 && k < sess.TotalIntervals() {
				data, err := EncodeCheckpoint(p, inst)
				if err != nil {
					return fmt.Errorf("checkpoint at interval %d: %w", k, err)
				}
				events <- event{kind: evCheckpoint, worker: id, point: point, interval: k, data: data}
			}
		}
	}()
	if died {
		return true
	}
	if err != nil {
		events <- event{kind: evFail, worker: id, point: point, err: err}
		return false
	}
	events <- event{kind: evDone, worker: id, point: point, sum: sum}
	return false
}
