package sweepd

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/cpm-sim/cpm/internal/snapshot"
)

// midRunCheckpoint builds a test point, advances it to interval 30, and
// returns the point, a checkpoint, and the summary of running the original
// to completion.
func midRunCheckpoint(t *testing.T) (Point, []byte, float64) {
	t.Helper()
	p := Point{Name: "ckpt-test", Build: func() (*Instance, error) {
		inst, _, err := buildTestInstance(9)
		return inst, err
	}}
	inst, _ := testInstance(t, 9)
	if n := inst.Session.RunIntervals(30); n != 30 {
		t.Fatalf("advanced %d intervals, want 30", n)
	}
	data, err := EncodeCheckpoint(p, inst)
	if err != nil {
		t.Fatal(err)
	}
	return p, data, inst.Session.Run().Instructions
}

func TestCheckpointRoundTrip(t *testing.T) {
	p, data, wantInstr := midRunCheckpoint(t)
	inst, cs := testInstance(t, 9)
	k, err := RestoreCheckpoint(p, inst, data)
	if err != nil {
		t.Fatal(err)
	}
	if k != 30 {
		t.Errorf("restored at interval %d, want 30", k)
	}
	if cs.steps != 30 {
		t.Errorf("aux state restored to %d steps, want 30", cs.steps)
	}
	if got := inst.Session.Run().Instructions; got != wantInstr {
		t.Errorf("resumed run diverged: %v instructions, want %v", got, wantInstr)
	}
	// A restored instance checkpoints to the identical bytes: the restore ∘
	// encode identity the fuzz target generalizes.
	inst2, _ := testInstance(t, 9)
	if _, err := RestoreCheckpoint(p, inst2, data); err != nil {
		t.Fatal(err)
	}
	re, err := EncodeCheckpoint(p, inst2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re, data) {
		t.Error("re-encoded checkpoint differs from original")
	}
}

func TestCheckpointRejectsWrongPoint(t *testing.T) {
	_, data, _ := midRunCheckpoint(t)
	other := Point{Name: "other-point"}
	inst, _ := testInstance(t, 9)
	_, err := RestoreCheckpoint(other, inst, data)
	if !errors.Is(err, snapshot.ErrShape) || !strings.Contains(err.Error(), "ckpt-test") {
		t.Errorf("wrong-point restore = %v, want shape error naming the source point", err)
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	p, data, _ := midRunCheckpoint(t)
	t.Run("bit flip", func(t *testing.T) {
		for _, off := range []int{len(data) / 4, len(data) / 2, len(data) - 1} {
			mut := bytes.Clone(data)
			mut[off] ^= 0x40
			inst, _ := testInstance(t, 9)
			if _, err := RestoreCheckpoint(p, inst, mut); err == nil {
				t.Errorf("bit flip at offset %d restored silently", off)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for _, n := range []int{0, 4, len(data) / 2, len(data) - 1} {
			inst, _ := testInstance(t, 9)
			if _, err := RestoreCheckpoint(p, inst, data[:n]); err == nil {
				t.Errorf("truncation to %d bytes restored silently", n)
			}
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		inst, _ := testInstance(t, 9)
		if _, err := RestoreCheckpoint(p, inst, append(bytes.Clone(data), 0xEE)); err == nil {
			t.Error("trailing byte restored silently")
		}
	})
	t.Run("wrong kind", func(t *testing.T) {
		e := snapshot.NewEncoder()
		e.Header(snapshot.Header{Kind: "cpmsim-session", Fingerprint: p.Name})
		inst, _ := testInstance(t, 9)
		if _, err := RestoreCheckpoint(p, inst, e.Bytes()); err == nil || !strings.Contains(err.Error(), "cpmsim-session") {
			t.Errorf("wrong-kind restore = %v", err)
		}
	})
}

func TestTreeLineage(t *testing.T) {
	tr := NewTree()
	root, err := tr.Add(-1, "warm", 20, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := tr.Add(root, "cpm-0.8", 25, []byte{2})
	b, _ := tr.Add(root, "cpm-0.6", 25, []byte{3})
	a2, _ := tr.Add(a, "cpm-0.8", 30, []byte{4})
	if got := tr.Roots(); len(got) != 1 || got[0] != root {
		t.Errorf("roots = %v", got)
	}
	if got := tr.Children(root); len(got) != 2 || got[0] != a || got[1] != b {
		t.Errorf("children(root) = %v", got)
	}
	if got := tr.Path(a2); len(got) != 3 || got[0] != root || got[1] != a || got[2] != a2 {
		t.Errorf("path(a2) = %v", got)
	}
	if _, err := tr.Add(99, "x", 0, nil); err == nil {
		t.Error("out-of-range parent accepted")
	}
	if tr.Len() != 4 {
		t.Errorf("len = %d", tr.Len())
	}
}

// TestCoordinatorTreeLineage: periodic checkpoints chain under the
// configured base node, so a resilient run's tree reads as one branch per
// point descending from its fork base.
func TestCoordinatorTreeLineage(t *testing.T) {
	tr := NewTree()
	base, err := tr.Add(-1, "base", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	pts, _ := testPoints(t, 2)
	c, err := New(pts, Config{Workers: 1, CheckpointEvery: 20, Tree: tr, TreeBase: []int{base, base}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Tree() != tr {
		t.Fatal("coordinator did not adopt the provided tree")
	}
	// base + 2 checkpoints per point.
	if tr.Len() != 5 {
		t.Fatalf("tree has %d nodes, want 5", tr.Len())
	}
	for pi, name := range []string{"pt-a", "pt-b"} {
		tip := c.tip[pi]
		path := tr.Path(tip)
		if len(path) != 3 || path[0] != base {
			t.Errorf("%s lineage = %v, want base plus two checkpoints", name, path)
		}
		if n := tr.Node(tip); n.Label != name || n.Interval != 40 {
			t.Errorf("%s tip = %+v, want interval 40", name, n)
		}
	}
}
