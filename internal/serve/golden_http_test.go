package serve

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/check"
)

// TestGoldenOverHTTP is the service's equivalence contract: every canonical
// scenario served over HTTP — as a single report and as an NDJSON stream —
// must reproduce the exact pinned golden digests the scalar in-process path
// records. A server that perturbs the simulation (shared state, observer
// interference, request mangling) diverges here.
func TestGoldenOverHTTP(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 16})
	for _, name := range check.ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			ref := loadRef(t, name)

			// Non-streamed report.
			resp := postJSON(t, ts, runDoc(Request{Scenario: name, Seed: goldenSeed}))
			body := wantStatus(t, resp, 200)
			if got := resp.Header.Get("Content-Type"); got != "application/json" {
				t.Errorf("report Content-Type %q", got)
			}
			rep := decodeReport(t, body)
			if err := traceOf(rep).Diff(ref); err != nil {
				t.Errorf("served report diverged from the pinned golden: %v", err)
			}
			if len(rep.EpochSeries) != rep.Epochs {
				t.Errorf("report has %d epoch rows for %d epochs", len(rep.EpochSeries), rep.Epochs)
			}
			for i, e := range rep.EpochSeries {
				if e.Digest != rep.EpochDigests[i] {
					t.Errorf("epoch %d row digest %s != digest list %s", i, e.Digest, rep.EpochDigests[i])
				}
			}

			// Streamed: same simulation (must be a cache hit), same digests.
			resp = postJSON(t, ts, runDoc(Request{Scenario: name, Seed: goldenSeed, Stream: true}))
			if got := resp.Header.Get(HeaderCache); got != outcomeHit {
				t.Errorf("streamed request outcome %q, want %q (stream must not re-run)", got, outcomeHit)
			}
			if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
				t.Errorf("stream Content-Type %q", got)
			}
			epochs, trailer := decodeStream(t, wantStatus(t, resp, 200))
			if err := traceOf(trailer).Diff(ref); err != nil {
				t.Errorf("streamed trailer diverged from the pinned golden: %v", err)
			}
			if len(epochs) != trailer.Epochs {
				t.Errorf("stream carried %d epoch lines for %d epochs", len(epochs), trailer.Epochs)
			}
			for i, e := range epochs {
				if e.Digest != ref.EpochDigests[i] {
					t.Errorf("streamed epoch %d digest %s, golden %s", i, e.Digest, ref.EpochDigests[i])
				}
			}
			if trailer.EpochSeries != nil {
				t.Errorf("stream trailer duplicates the epoch series")
			}
		})
	}

	// A second full pass must be pure cache: no additional simulations.
	runs := srv.Stats().Runs
	for _, name := range check.ScenarioNames() {
		resp := postJSON(t, ts, runDoc(Request{Scenario: name, Seed: goldenSeed}))
		if got := resp.Header.Get(HeaderCache); got != outcomeHit {
			t.Errorf("%s second pass outcome %q, want hit", name, got)
		}
		rep := decodeReport(t, wantStatus(t, resp, 200))
		if err := traceOf(rep).Diff(loadRef(t, name)); err != nil {
			t.Errorf("%s cached report diverged: %v", name, err)
		}
	}
	if got := srv.Stats().Runs; got != runs {
		t.Errorf("second pass ran %d extra simulations, want 0", got-runs)
	}
}
