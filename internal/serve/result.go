package serve

import (
	"bytes"
	"encoding/json"
	"fmt"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/metrics"
)

// EpochReport is one measured GPM epoch of a run: the epoch means the
// session aggregated, plus the golden digest folding them — the same
// quantized FNV-1a the pinned regression traces store, so a client can
// verify a served run against the repository's goldens line by line.
//
// Float fields use metrics.Float so a non-finite value (which encoding/json
// rejects outright) degrades to null instead of poisoning the whole
// response.
type EpochReport struct {
	Index        int             `json:"index"`
	MeanPowerW   metrics.Float   `json:"mean_power_w"`
	MeanBIPS     metrics.Float   `json:"mean_bips"`
	Instructions metrics.Float   `json:"instructions"`
	AllocW       []metrics.Float `json:"alloc_w,omitempty"`
	IslandPowerW []metrics.Float `json:"island_power_w"`
	IslandBIPS   []metrics.Float `json:"island_bips"`
	Digest       string          `json:"digest"`
}

// Report is the final document of one run: headline summary, the per-epoch
// series, and the golden digests (per-epoch and the final interval-level
// fold) that pin the run's entire observable behaviour.
type Report struct {
	Scenario       string        `json:"scenario"`
	Seed           uint64        `json:"seed"`
	BudgetFrac     metrics.Float `json:"budget_frac"`
	BudgetW        metrics.Float `json:"budget_w"`
	Islands        int           `json:"islands"`
	Cores          int           `json:"cores"`
	WarmEpochs     int           `json:"warm_epochs"`
	Epochs         int           `json:"epochs"`
	MeanPowerW     metrics.Float `json:"mean_power_w"`
	MeanBIPS       metrics.Float `json:"mean_bips"`
	MaxTempC       metrics.Float `json:"max_temp_c"`
	WorstEpochOver metrics.Float `json:"worst_epoch_over"`
	EpochSeries    []EpochReport `json:"epoch_series,omitempty"`
	EpochDigests   []string      `json:"epoch_digests"`
	FinalDigest    string        `json:"final_digest"`
}

// streamLine wraps the two NDJSON line shapes with their discriminator.
type epochLine struct {
	Type string `json:"type"`
	EpochReport
}

type reportLine struct {
	Type string `json:"type"`
	Report
}

// result is one completed simulation with both response renderings
// precomputed: the JSON report body and the NDJSON stream. Rendering once
// at completion is what makes every response for a given cache key —
// leader, coalesced follower, cache hit — byte-identical by construction.
type result struct {
	report Report
	body   []byte // single JSON report (POST /v1/run)
	ndjson []byte // per-epoch NDJSON stream (stream=true)
}

// epochRecorder captures the session's run info and per-epoch events; the
// engine hands observers freshly allocated epoch slices, so retaining them
// is part of the Observer contract.
type epochRecorder struct {
	info   engine.RunInfo
	epochs []engine.Epoch
}

// observer adapts the recorder to engine.Observer.
func (r *epochRecorder) observer() engine.Observer {
	return engine.Funcs{
		OnRunStart: func(info engine.RunInfo) { r.info = info },
		OnEpoch:    func(e engine.Epoch) { r.epochs = append(r.epochs, e) },
	}
}

// floats converts a slice for NaN/Inf-safe JSON encoding.
func floats(v []float64) []metrics.Float {
	if v == nil {
		return nil
	}
	out := make([]metrics.Float, len(v))
	for i, x := range v {
		out[i] = metrics.Float(x)
	}
	return out
}

// buildResult assembles the report from a finished run and renders both
// response bodies. The digest count must match the epoch count — a
// mismatch means the observer wiring broke, which is a server bug, not a
// client error.
func buildResult(req Request, sum engine.Summary, rec *epochRecorder, tr check.Trace) (*result, error) {
	if len(tr.EpochDigests) != len(rec.epochs) {
		return nil, fmt.Errorf("serve: %d epoch digests for %d recorded epochs", len(tr.EpochDigests), len(rec.epochs))
	}
	rep := Report{
		Scenario:       req.Scenario,
		Seed:           req.Seed,
		BudgetFrac:     metrics.Float(req.BudgetFrac),
		BudgetW:        metrics.Float(rec.info.BudgetW),
		Islands:        rec.info.Islands,
		Cores:          rec.info.Cores,
		WarmEpochs:     req.WarmEpochs,
		Epochs:         len(rec.epochs),
		MeanPowerW:     metrics.Float(sum.MeanPowerW),
		MeanBIPS:       metrics.Float(sum.MeanBIPS),
		MaxTempC:       metrics.Float(sum.MaxTempC),
		WorstEpochOver: metrics.Float(sum.WorstEpochOver),
		EpochDigests:   tr.EpochDigests,
		FinalDigest:    tr.FinalDigest,
	}
	for i, e := range rec.epochs {
		rep.EpochSeries = append(rep.EpochSeries, EpochReport{
			Index:        e.Index,
			MeanPowerW:   metrics.Float(e.MeanPowerW),
			MeanBIPS:     metrics.Float(e.MeanBIPS),
			Instructions: metrics.Float(e.Instructions),
			AllocW:       floats(e.AllocW),
			IslandPowerW: floats(e.IslandPowerW),
			IslandBIPS:   floats(e.IslandBIPS),
			Digest:       tr.EpochDigests[i],
		})
	}
	return renderResult(rep)
}

// renderResult produces both response bodies from a completed report.
func renderResult(rep Report) (*result, error) {
	body, err := json.Marshal(rep)
	if err != nil {
		return nil, fmt.Errorf("serve: rendering report: %w", err)
	}
	body = append(body, '\n')

	var stream bytes.Buffer
	enc := json.NewEncoder(&stream)
	for _, e := range rep.EpochSeries {
		if err := enc.Encode(epochLine{Type: "epoch", EpochReport: e}); err != nil {
			return nil, fmt.Errorf("serve: rendering epoch stream: %w", err)
		}
	}
	final := rep
	final.EpochSeries = nil // epochs already streamed line by line
	if err := enc.Encode(reportLine{Type: "report", Report: final}); err != nil {
		return nil, fmt.Errorf("serve: rendering stream trailer: %w", err)
	}
	return &result{report: rep, body: body, ndjson: stream.Bytes()}, nil
}
