package serve

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// httptestServer pairs the HTTP front end with the run-start channel the
// gated RunHook feeds.
type httptestServer struct {
	ts      *httptest.Server
	started chan Request
}

// awaitStart blocks until a run has entered the (gated) RunHook.
func (h *httptestServer) awaitStart(t *testing.T) Request {
	t.Helper()
	select {
	case r := <-h.started:
		return r
	case <-time.After(30 * time.Second):
		t.Fatalf("timed out waiting for a run to start")
		return Request{}
	}
}

// gatedServer builds a 1-worker server whose runs block until the returned
// release function is called — the harness for queue-pressure and drain
// tests.
func gatedServer(t *testing.T, queueDepth int) (*Server, *httptestServer, func()) {
	t.Helper()
	gate := make(chan struct{})
	started := make(chan Request, 64)
	srv, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: queueDepth,
		RunHook: func(r Request) {
			started <- r
			<-gate
		},
	})
	var once sync.Once
	return srv, &httptestServer{ts: ts, started: started}, func() { once.Do(func() { close(gate) }) }
}

// TestQueueFullBackpressure: with one worker and no queue, a second
// distinct request during an in-flight run is refused with 429 and a
// Retry-After hint — while an *identical* request still coalesces instead
// of being bounced.
func TestQueueFullBackpressure(t *testing.T) {
	srv, h, release := gatedServer(t, 0)
	defer release()
	ts := h.ts

	first := runDoc(shortRun("cpm-default", goldenSeed))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wantStatus(t, postJSON(t, ts, first), 200)
	}()
	h.awaitStart(t) // the worker now holds the only slot

	// Distinct work: no capacity, explicit backpressure.
	resp := postJSON(t, ts, runDoc(shortRun("cpm-default", 7)))
	readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("distinct request during full queue: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 without a Retry-After hint")
	}

	// Identical work: coalescing costs no slot, so it is never bounced.
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp := postJSON(t, ts, first)
		wantStatus(t, resp, 200)
		if got := resp.Header.Get(HeaderCache); got != outcomeCoalesced {
			t.Errorf("identical request during full queue: outcome %q, want coalesced", got)
		}
	}()
	waitFor(t, "identical request to coalesce", func() bool { return srv.Stats().Coalesced == 1 })

	release()
	wg.Wait()

	// Capacity freed: the previously bounced request now succeeds.
	wantStatus(t, postJSON(t, ts, runDoc(shortRun("cpm-default", 7))), 200)
	st := srv.Stats()
	if st.RejectedQueueFull != 1 {
		t.Errorf("RejectedQueueFull = %d, want 1", st.RejectedQueueFull)
	}
}

// TestGracefulDrain: draining lets the in-flight run finish and be
// answered while new submissions — and the health check — turn away.
func TestGracefulDrain(t *testing.T) {
	srv, h, release := gatedServer(t, 4)
	defer release()
	ts := h.ts

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wantStatus(t, postJSON(t, ts, runDoc(shortRun("cpm-default", goldenSeed))), 200)
	}()
	h.awaitStart(t)

	srv.StartDrain()

	resp := postJSON(t, ts, runDoc(shortRun("cpm-default", 7)))
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("503 without a Retry-After hint")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, hresp)
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", hresp.StatusCode)
	}

	release()
	srv.Drain() // must return: the accepted run finishes
	wg.Wait()

	st := srv.Stats()
	if !st.Draining || st.RejectedDraining != 1 {
		t.Errorf("post-drain stats: %+v", st)
	}
	// Draining refuses everything, even requests the cache could answer —
	// the server is going away, clients must fail over.
	resp = postJSON(t, ts, runDoc(shortRun("cpm-default", goldenSeed)))
	readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining server accepted new work: status %d", resp.StatusCode)
	}
}
