package serve

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// Retry-After only speaks integral seconds: a sub-second configured
// back-off must round up to 1, never truncate to 0 ("retry immediately").
// The pre-fix code rendered int(Seconds()), so 250ms became "0".
func TestRetryAfterRoundsUpToWholeSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{250 * time.Millisecond, "1"},
		{999 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{3 * time.Second, "3"},
	}
	for _, tc := range cases {
		srv := NewServer(Options{Workers: 1, RetryAfter: tc.d})
		rec := httptest.NewRecorder()
		srv.writeJSONError(rec, http.StatusTooManyRequests, "queue full")
		if got := rec.Header().Get("Retry-After"); got != tc.want {
			t.Errorf("RetryAfter %v: header %q, want %q", tc.d, got, tc.want)
		}
		// Non-pressure codes must not advertise a retry hint.
		rec = httptest.NewRecorder()
		srv.writeJSONError(rec, http.StatusBadRequest, "bad request")
		if got := rec.Header().Get("Retry-After"); got != "" {
			t.Errorf("RetryAfter %v: 400 carried Retry-After %q", tc.d, got)
		}
		srv.Close()
	}
}

// The draining health probe advertises the same rounded-up back-off.
func TestHealthzDrainingRetryAfterHeader(t *testing.T) {
	srv := NewServer(Options{Workers: 1, RetryAfter: 100 * time.Millisecond})
	defer srv.Close()
	go srv.Drain()
	// Drain flips the stats flag before waiting on workers; poll until the
	// probe observes it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec := httptest.NewRecorder()
		srv.handleHealthz(rec, httptest.NewRequest("GET", "/healthz", nil))
		if rec.Code == http.StatusServiceUnavailable {
			if got := rec.Header().Get("Retry-After"); got != "1" {
				t.Fatalf("draining healthz Retry-After = %q, want \"1\"", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("server never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
}
