package serve

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzServeRequestDecode fuzzes the request codec: no input may panic the
// decoder, and any input it accepts must satisfy two round-trip laws —
// re-encoding an accepted request decodes back to the same value, and
// resolution (the cache-identity normalizer) is idempotent with a stable
// fingerprint. Together these pin the property the whole cache leans on:
// the bytes on the wire fully determine the content address.
func FuzzServeRequestDecode(f *testing.F) {
	f.Add([]byte(`{"scenario":"cpm-default"}`))
	f.Add([]byte(`{"scenario":"budget-60","seed":7,"budget_frac":0.55,"warm_epochs":3,"measure_epochs":8,"stream":true}`))
	f.Add([]byte(`{"scenario":"thermal-policy","seed":18446744073709551615}`))
	f.Add([]byte(`{"scenario":"cpm-default","sead":2}`))
	f.Add([]byte(`{"scenario":"cpm-default"} {}`))
	f.Add([]byte(`{"scenario":"x","budget_frac":1e999}`))
	f.Add([]byte(`[{"scenario":"cpm-default"}]`))
	f.Add([]byte(``))
	f.Add([]byte(`{"scenario":"cpm-default","budget_frac":-0.25,"warm_epochs":-3}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		if req.Validate() != nil {
			return
		}

		// Law 1: encode/decode round-trip is the identity on accepted
		// requests (Request is a comparable struct, so == is exact).
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request failed to re-encode: %v\ninput: %q", err, data)
		}
		back, err := DecodeRequest(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("re-encoded request failed to decode: %v\nencoded: %s", err, enc)
		}
		if back != req {
			t.Fatalf("round trip changed the request:\n  got  %+v\n  want %+v", back, req)
		}

		// Law 2: resolution is idempotent and fingerprint-stable.
		res, _, err := req.Resolve()
		if err != nil {
			return // e.g. a syntactically fine but unknown scenario name
		}
		res2, _, err := res.Resolve()
		if err != nil {
			t.Fatalf("resolved request failed to re-resolve: %v\nresolved: %+v", err, res)
		}
		// Stream is presentation, not identity; ignore it for idempotence.
		res2.Stream = res.Stream
		if res2 != res {
			t.Fatalf("resolve is not idempotent:\n  once  %+v\n  twice %+v", res, res2)
		}
		if res.CacheKey() != res2.CacheKey() || res.Fingerprint() != res2.Fingerprint() {
			t.Fatalf("fingerprint unstable across resolves: %s vs %s", res.Fingerprint(), res2.Fingerprint())
		}
		if res.CacheKey() == "" || len(res.CacheKey()) != 16 {
			t.Fatalf("cache key %q is not a 16-hex-digit address", res.CacheKey())
		}
	})
}
