package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"github.com/cpm-sim/cpm/internal/check"
)

// Response headers exposing the admission decision: the content address of
// the run and how this request was satisfied (hit, miss, coalesced).
const (
	HeaderCacheKey = "X-Cpmserve-Key"
	HeaderCache    = "X-Cpmserve-Cache"
)

// Handler returns the server's HTTP mux:
//
//	POST /v1/run       — run (or fetch) a simulation; ?stream=1 or
//	                     "stream":true selects the NDJSON epoch stream
//	GET  /v1/scenarios — list the canonical scenario names
//	GET  /v1/stats     — admission counters (JSON)
//	GET  /healthz      — 200 ok, 503 once draining
//	GET  /metrics      — Prometheus text exposition of the registry
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// retryAfterSeconds renders the configured back-off for the Retry-After
// header, which only speaks integral seconds: round up, never below 1.
// Truncation would turn any sub-second back-off into "Retry-After: 0" —
// an invitation to hammer the server, the opposite of backpressure.
func (s *Server) retryAfterSeconds() string {
	secs := int(math.Ceil(s.opts.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// writeJSONError emits the uniform error document. Retry hints go on the
// admission-pressure codes.
func (s *Server) writeJSONError(w http.ResponseWriter, code int, msg string) {
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
	s.m.requests.With(strconv.Itoa(code)).Inc()
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, MaxRequestBytes)
	raw, err := DecodeRequest(r.Body)
	if err != nil {
		s.writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if v := r.URL.Query().Get("stream"); v == "1" || v == "true" {
		raw.Stream = true
	}
	req, sc, err := raw.Resolve()
	if err != nil {
		code := http.StatusBadRequest
		// An unknown scenario is an absent resource, not a malformed request.
		if strings.Contains(err.Error(), "unknown scenario") {
			code = http.StatusNotFound
		}
		s.writeJSONError(w, code, err.Error())
		return
	}

	j, outcome, serr := s.submit(req, sc)
	if serr != nil {
		s.writeJSONError(w, serr.code, serr.msg)
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client left; the run (if any) continues and lands in the
		// cache for the next identical request.
		s.m.requests.With("499").Inc()
		return
	}
	if j.err != nil {
		s.writeJSONError(w, http.StatusInternalServerError, j.err.Error())
		return
	}

	w.Header().Set(HeaderCacheKey, j.key)
	w.Header().Set(HeaderCache, outcome)
	body := j.res.body
	ctype := "application/json"
	if req.Stream {
		body = j.res.ndjson
		ctype = "application/x-ndjson"
	}
	w.Header().Set("Content-Type", ctype)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	w.Write(body)
	s.m.requests.With("200").Inc()
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string][]string{"scenarios": check.ScenarioNames()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Stats().Draining {
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// A mid-stream write error means the client left; nothing to recover.
	_ = s.reg.WritePrometheus(w)
}
