package serve

import "container/list"

// lruCache is a bounded most-recently-used result cache keyed by content
// address. It is not safe for concurrent use on its own — the server's one
// admission mutex guards it, which is also what makes the
// check-cache-then-register-flight sequence atomic.
type lruCache struct {
	cap   int
	ll    *list.List // front = most recently used; values are *lruEntry
	byKey map[string]*list.Element
}

type lruEntry struct {
	key string
	res *result
}

// newLRUCache builds a cache holding at most cap entries; cap <= 0 disables
// caching entirely (every get misses, every add is dropped).
func newLRUCache(cap int) *lruCache {
	return &lruCache{cap: cap, ll: list.New(), byKey: map[string]*list.Element{}}
}

// get returns the cached result for key, refreshing its recency.
func (c *lruCache) get(key string) (*result, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).res, true
}

// add inserts (or refreshes) key, evicting the least recently used entry
// when the bound is exceeded.
func (c *lruCache) add(key string, res *result) {
	if c.cap <= 0 {
		return
	}
	if el, ok := c.byKey[key]; ok {
		el.Value.(*lruEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&lruEntry{key: key, res: res})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*lruEntry).key)
	}
}

// len reports the number of cached results.
func (c *lruCache) len() int { return c.ll.Len() }
