// Package serve is the simulation-as-a-service layer: an HTTP/JSON front
// end over the deterministic engine/check stack. A request names a
// canonical scenario plus a (seed, budget, windows) variation; the response
// is either a single JSON report or an NDJSON per-epoch stream, both
// carrying the golden digests that pin the run's observable behaviour.
//
// Determinism is the load-bearing property. Every request resolves to a
// content-addressed fingerprint (Request.CacheKey, in the snapshot-header
// style, versioned by snapshot.Version and ResultVersion), and the server
// exploits it at three levels:
//
//  1. Result cache: identical resolved requests are served from a bounded
//     LRU of rendered results — byte-identical bodies, zero simulation.
//  2. Coalescing: concurrent identical requests collapse onto one in-flight
//     run (singleflight); followers wait for the leader's result.
//  3. Batch admission: distinct queued requests that share a farm workload
//     key (same sampling half: seed, mix, core/cache geometry) are run as
//     one internal/farm group over a single shared trace sampler instead of
//     N scalar sessions.
//
// Admission is a bounded queue over a fixed worker pool: when the number of
// outstanding runs reaches Workers+QueueDepth the server answers 429 with
// Retry-After instead of building an unbounded backlog. StartDrain flips
// the server into drain mode — accepted runs (queued and in-flight) finish,
// new submissions are refused with 503 — and Drain blocks until the last
// accepted run completes, which is the graceful-SIGTERM path of cmd/cpmserve.
package serve

import (
	"sync"
	"time"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/farm"
	"github.com/cpm-sim/cpm/internal/metrics"
)

// Options shapes a Server.
type Options struct {
	// Workers is the number of concurrent simulation workers; <= 0 selects
	// 4. Each worker runs one scalar session or one farm batch at a time.
	Workers int
	// QueueDepth bounds the backlog beyond the running jobs: a submission
	// arriving with Workers+QueueDepth jobs outstanding is rejected with
	// 429. < 0 means 0 (no queue: reject unless a worker is free).
	QueueDepth int
	// CacheEntries bounds the LRU result cache; 0 selects 256, negative
	// disables caching.
	CacheEntries int
	// BatchMax caps how many compatible queued jobs one worker admits into
	// a single farm group; <= 1 disables batching. 0 selects 16.
	BatchMax int
	// RetryAfter is the client back-off advertised on 429/503 responses;
	// <= 0 selects 1s.
	RetryAfter time.Duration
	// Registry receives both the server's own telemetry and the per-run
	// engine telemetry, served at /metrics. Nil creates a fresh registry.
	Registry *metrics.Registry
	// RunHook, when non-nil, is called on the executing worker once per
	// simulation run (per job — batched jobs fire once each), immediately
	// before the run starts. Tests use it as the run counter proving
	// coalescing, and block in it to hold workers busy.
	RunHook func(req Request)
}

// withDefaults resolves the option defaults.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.QueueDepth < 0 {
		o.QueueDepth = 0
	}
	if o.CacheEntries == 0 {
		o.CacheEntries = 256
	}
	if o.BatchMax == 0 {
		o.BatchMax = 16
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.Registry == nil {
		o.Registry = metrics.NewRegistry()
	}
	return o
}

// Stats is a point-in-time snapshot of the server's admission counters.
type Stats struct {
	// Hits, Misses and Coalesced partition accepted /v1/run requests by how
	// they were satisfied: from the result cache, by running a fresh
	// simulation (the flight leader), or by attaching to an in-flight one.
	Hits, Misses, Coalesced uint64
	// RejectedQueueFull and RejectedDraining count 429 and 503 refusals.
	RejectedQueueFull, RejectedDraining uint64
	// Runs counts simulation runs executed (each batched job counts one);
	// FarmBatches counts farm-group executions; BatchedJobs counts jobs that
	// rode in them.
	Runs, FarmBatches, BatchedJobs uint64
	// CacheEntries and QueueDepth are current occupancy; Draining reports
	// drain mode.
	CacheEntries, QueueDepth int
	Draining                 bool
}

// job is one accepted unit of work: the flight leader for its cache key.
// Followers wait on done and read res/err afterwards (the close is the
// happens-before edge).
type job struct {
	req Request
	sc  check.Scenario
	key string
	// wkey groups jobs that may share one farm trace sampler.
	wkey farm.WorkloadKey

	done chan struct{}
	res  *result
	err  error
}

// Server is the simulation service: admission state machine, worker pool,
// result cache and telemetry. Construct with NewServer; serve via Handler.
type Server struct {
	opts Options
	reg  *metrics.Registry

	mu          sync.Mutex
	cache       *lruCache
	flights     map[string]*job // cache key -> in-flight leader
	queue       []*job          // accepted, not yet picked by a worker
	outstanding int             // queued + running jobs
	draining    bool
	stats       Stats

	kick      chan struct{} // wakes workers; tokens <= accepted jobs
	stop      chan struct{}
	stopOnce  sync.Once
	jobsWG    sync.WaitGroup // accepted jobs not yet finished
	workersWG sync.WaitGroup

	m serverInstruments
}

// serverInstruments are the server-plane metric handles (the per-run
// engine telemetry is attached per job by the executor).
type serverInstruments struct {
	requests                    *metrics.CounterVec // label: code
	hits, misses, coalesced     *metrics.Counter
	rejectedFull, rejectedDrain *metrics.Counter
	runsScalar, runsFarm        *metrics.Counter
	batchSize                   *metrics.Histogram
	runSeconds                  *metrics.Histogram
	queueDepth, inflight        *metrics.Gauge
	cacheEntries                *metrics.Gauge
	drainingG                   *metrics.Gauge
}

// NewServer builds the server and starts its workers. Callers must Close
// (or Drain then Close) before discarding it.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:    opts,
		reg:     opts.Registry,
		cache:   newLRUCache(opts.CacheEntries),
		flights: map[string]*job{},
		kick:    make(chan struct{}, opts.Workers+opts.QueueDepth+1),
		stop:    make(chan struct{}),
	}
	r := s.reg
	s.m = serverInstruments{
		requests: r.CounterVec("cpmserve_requests_total",
			"HTTP requests to /v1/run by response code.", "code"),
		hits: r.CounterVec("cpmserve_cache_hits_total",
			"Run requests served from the content-addressed result cache.").With(),
		misses: r.CounterVec("cpmserve_cache_misses_total",
			"Run requests that led a fresh simulation (flight leaders).").With(),
		coalesced: r.CounterVec("cpmserve_coalesced_total",
			"Run requests coalesced onto an identical in-flight simulation.").With(),
		rejectedFull: r.CounterVec("cpmserve_rejected_total",
			"Run requests refused by admission control.", "reason").With("queue-full"),
		rejectedDrain: r.CounterVec("cpmserve_rejected_total",
			"Run requests refused by admission control.", "reason").With("draining"),
		runsScalar: r.CounterVec("cpmserve_runs_total",
			"Simulation runs executed, by execution mode.", "mode").With("scalar"),
		runsFarm: r.CounterVec("cpmserve_runs_total",
			"Simulation runs executed, by execution mode.", "mode").With("farm"),
		batchSize: r.HistogramVec("cpmserve_batch_size",
			"Jobs admitted per worker pick (1 = scalar).",
			metrics.LinearBuckets(1, 1, 16)).With(),
		runSeconds: r.HistogramVec("cpmserve_run_seconds",
			"Wall-clock seconds per worker execution (scalar run or farm batch).",
			metrics.ExponentialBuckets(0.001, 2, 14)).With(),
		queueDepth: r.GaugeVec("cpmserve_queue_depth",
			"Jobs accepted and waiting for a worker.").With(),
		inflight: r.GaugeVec("cpmserve_inflight_jobs",
			"Jobs accepted and not yet finished (queued + running).").With(),
		cacheEntries: r.GaugeVec("cpmserve_cache_entries",
			"Results held in the LRU cache.").With(),
		drainingG: r.GaugeVec("cpmserve_draining",
			"1 while the server is draining, else 0.").With(),
	}
	for i := 0; i < opts.Workers; i++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the registry the server records into (the /metrics
// source).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Stats returns a snapshot of the admission counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.CacheEntries = s.cache.len()
	st.QueueDepth = len(s.queue)
	st.Draining = s.draining
	return st
}

// submitErr classifies an admission refusal.
type submitErr struct {
	code int // HTTP status
	msg  string
}

func (e *submitErr) Error() string { return e.msg }

// outcome tags how an accepted request was satisfied; it becomes the
// X-Cpmserve-Cache response header.
const (
	outcomeHit       = "hit"
	outcomeMiss      = "miss"
	outcomeCoalesced = "coalesced"
)

// submit admits one resolved request and returns the job whose completion
// carries the result: a synthetic pre-completed job for cache hits, the
// shared in-flight leader for coalesced requests, or a freshly queued
// leader. The admission decision — cache lookup, flight registration,
// queue-bound check — is one critical section, so two identical concurrent
// requests can never both become leaders.
func (s *Server) submit(req Request, sc check.Scenario) (*job, string, *submitErr) {
	key := req.CacheKey()
	s.mu.Lock()
	if s.draining {
		s.stats.RejectedDraining++
		s.m.rejectedDrain.Inc()
		s.mu.Unlock()
		return nil, "", &submitErr{code: 503, msg: "serve: draining, not accepting new runs"}
	}
	if res, ok := s.cache.get(key); ok {
		s.stats.Hits++
		s.m.hits.Inc()
		s.mu.Unlock()
		j := &job{req: req, key: key, done: make(chan struct{}), res: res}
		close(j.done)
		return j, outcomeHit, nil
	}
	if leader, ok := s.flights[key]; ok {
		s.stats.Coalesced++
		s.m.coalesced.Inc()
		s.mu.Unlock()
		return leader, outcomeCoalesced, nil
	}
	if s.outstanding >= s.opts.Workers+s.opts.QueueDepth {
		s.stats.RejectedQueueFull++
		s.m.rejectedFull.Inc()
		s.mu.Unlock()
		return nil, "", &submitErr{code: 429, msg: "serve: queue full"}
	}
	j := &job{
		req:  req,
		sc:   sc,
		key:  key,
		wkey: farm.KeyOf(sc.BuildConfig(req.Seed)),
		done: make(chan struct{}),
	}
	s.flights[key] = j
	s.queue = append(s.queue, j)
	s.outstanding++
	s.stats.Misses++
	s.m.misses.Inc()
	s.m.queueDepth.Set(float64(len(s.queue)))
	s.m.inflight.Set(float64(s.outstanding))
	s.jobsWG.Add(1)
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
		// Channel full means enough wake tokens are already pending; any
		// woken worker drains the whole queue before sleeping again.
	}
	return j, outcomeMiss, nil
}

// takeBatch pops the oldest queued job plus up to BatchMax-1 younger jobs
// sharing its farm workload key — the compatible set that can draw trace
// records from one shared sampler. Returns nil when the queue is empty.
func (s *Server) takeBatch() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.queue) == 0 {
		return nil
	}
	head := s.queue[0]
	batch := []*job{head}
	rest := s.queue[:0]
	for _, j := range s.queue[1:] {
		if len(batch) < s.opts.BatchMax && j.wkey == head.wkey {
			batch = append(batch, j)
		} else {
			rest = append(rest, j)
		}
	}
	s.queue = rest
	s.m.queueDepth.Set(float64(len(s.queue)))
	return batch
}

// worker pulls batches off the queue until the server stops.
func (s *Server) worker() {
	defer s.workersWG.Done()
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		}
		for {
			batch := s.takeBatch()
			if batch == nil {
				break
			}
			s.runBatch(batch)
		}
	}
}

// runBatch executes one worker pick — a scalar session for a single job, a
// farm group for several — and completes every job in it.
func (s *Server) runBatch(batch []*job) {
	if hook := s.opts.RunHook; hook != nil {
		for _, j := range batch {
			hook(j.req)
		}
	}
	start := time.Now()
	if len(batch) == 1 {
		j := batch[0]
		res, err := s.executeScalar(j)
		s.m.runsScalar.Inc()
		s.finish(j, res, err)
	} else {
		s.executeFarm(batch)
	}
	s.m.runSeconds.Observe(time.Since(start).Seconds())
	s.m.batchSize.Observe(float64(len(batch)))
	s.mu.Lock()
	s.stats.Runs += uint64(len(batch))
	if len(batch) > 1 {
		s.stats.FarmBatches++
		s.stats.BatchedJobs += uint64(len(batch))
	}
	s.mu.Unlock()
}

// finish publishes a job's result, caches it, and releases the flight so
// later identical requests hit the cache instead of a dead flight.
func (s *Server) finish(j *job, res *result, err error) {
	s.mu.Lock()
	if err == nil {
		s.cache.add(j.key, res)
	}
	delete(s.flights, j.key)
	s.outstanding--
	s.m.inflight.Set(float64(s.outstanding))
	s.m.cacheEntries.Set(float64(s.cache.len()))
	s.mu.Unlock()
	j.res, j.err = res, err
	close(j.done)
	s.jobsWG.Done()
}

// StartDrain flips the server into drain mode: every subsequent submission
// is refused with 503 while accepted runs — queued and in-flight — keep
// going. Idempotent.
func (s *Server) StartDrain() {
	s.mu.Lock()
	s.draining = true
	s.m.drainingG.Set(1)
	s.mu.Unlock()
}

// Drain starts draining and blocks until every accepted run has finished —
// the SIGTERM path: in-flight work completes, nothing new is admitted.
func (s *Server) Drain() {
	s.StartDrain()
	s.jobsWG.Wait()
}

// Close drains and then stops the workers. The server cannot be reused.
func (s *Server) Close() {
	s.Drain()
	s.stopOnce.Do(func() { close(s.stop) })
	s.workersWG.Wait()
}
