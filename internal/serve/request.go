package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/snapshot"
)

// MaxRequestBytes bounds the size of one request document; anything larger
// is rejected before it reaches the decoder.
const MaxRequestBytes = 1 << 20

// ResultVersion names the response-rendering generation. It participates in
// every cache fingerprint, so a change to the report layout (like a bump of
// snapshot.Version for simulator-state layout) invalidates cached results
// instead of serving stale shapes.
const ResultVersion = 1

// Epoch-window caps: a request may widen the canonical 2+4 epoch windows,
// but not past these bounds, so a single request cannot buy an unbounded
// amount of simulation.
const (
	MaxWarmEpochs    = 64
	MaxMeasureEpochs = 256
)

// Request is one simulation submission: which canonical scenario to run,
// under which seed, against which budget. The zero value of every optional
// field means "the scenario's own default"; Resolve fills the defaults in,
// and the resolved request — not the raw one — is the unit of caching and
// coalescing.
type Request struct {
	// Scenario names a canonical golden scenario (check.Canonical).
	Scenario string `json:"scenario"`
	// Seed is the simulation seed; 0 (or absent) means the golden seed 1.
	Seed uint64 `json:"seed,omitempty"`
	// BudgetFrac overrides the scenario's budget fraction of calibrated
	// unmanaged power; 0 means the scenario default. Must be finite and in
	// (0, 1].
	BudgetFrac float64 `json:"budget_frac,omitempty"`
	// WarmEpochs / MeasureEpochs override the run windows (GPM epochs);
	// 0 means the scenario default (canonically 2 warm + 4 measured).
	WarmEpochs    int `json:"warm_epochs,omitempty"`
	MeasureEpochs int `json:"measure_epochs,omitempty"`
	// Stream selects the NDJSON per-epoch streaming response instead of the
	// single JSON report. Stream does not participate in the cache
	// fingerprint: both renderings come from the same simulation.
	Stream bool `json:"stream,omitempty"`
}

// DecodeRequest reads one JSON request document. Unknown fields and
// trailing data are errors — the service is a determinism oracle, so a
// silently dropped field (a typo'd "sead") must not turn into a run with
// defaults.
func DecodeRequest(r io.Reader) (Request, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes+1))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return Request{}, fmt.Errorf("serve: decoding request: %w", err)
	}
	if dec.More() {
		return Request{}, errors.New("serve: trailing data after request object")
	}
	return req, nil
}

// Validate rejects structurally invalid requests: a missing scenario name,
// a non-finite or out-of-range budget fraction (the same guard pic and gpm
// apply at their own boundaries), negative or oversized run windows.
// Whether the scenario name resolves is the server's concern, not the
// codec's.
func (r Request) Validate() error {
	if r.Scenario == "" {
		return errors.New("serve: request needs a scenario name")
	}
	if math.IsNaN(r.BudgetFrac) || math.IsInf(r.BudgetFrac, 0) {
		return fmt.Errorf("serve: non-finite budget_frac %v", r.BudgetFrac)
	}
	if r.BudgetFrac < 0 || r.BudgetFrac > 1 {
		return fmt.Errorf("serve: budget_frac %v outside (0, 1] (0 = scenario default)", r.BudgetFrac)
	}
	if r.WarmEpochs < 0 || r.WarmEpochs > MaxWarmEpochs {
		return fmt.Errorf("serve: warm_epochs %d outside [0, %d]", r.WarmEpochs, MaxWarmEpochs)
	}
	if r.MeasureEpochs < 0 || r.MeasureEpochs > MaxMeasureEpochs {
		return fmt.Errorf("serve: measure_epochs %d outside [0, %d]", r.MeasureEpochs, MaxMeasureEpochs)
	}
	return nil
}

// Resolve validates the request and fills every defaulted field from the
// named scenario, returning the fully determined request: seed, budget
// fraction and both epoch windows all concrete. Two submissions that mean
// the same run resolve to the same value — and therefore the same
// fingerprint — whether the client spelled the defaults out or not.
func (r Request) Resolve() (Request, check.Scenario, error) {
	if err := r.Validate(); err != nil {
		return Request{}, check.Scenario{}, err
	}
	sc, err := check.ScenarioByName(r.Scenario)
	if err != nil {
		return Request{}, check.Scenario{}, err
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.BudgetFrac == 0 {
		r.BudgetFrac = sc.BudgetFrac
	}
	warm, meas := sc.Defaults()
	if r.WarmEpochs == 0 {
		r.WarmEpochs = warm
	}
	if r.MeasureEpochs == 0 {
		r.MeasureEpochs = meas
	}
	sc.BudgetFrac = r.BudgetFrac
	sc.WarmEpochs = r.WarmEpochs
	sc.MeasureEpochs = r.MeasureEpochs
	return r, sc, nil
}

// Fingerprint renders the resolved request's content identity, in the same
// producer-chosen style as the snapshot checkpoint headers ("<scenario>/
// seed=N/..."), versioned by both the snapshot state-layout version and the
// serve result version. Identical fingerprints mean byte-identical
// responses; the fingerprint is the cache and coalescing key's preimage.
func (r Request) Fingerprint() string {
	return fmt.Sprintf("%s/seed=%d/budget=%.9g/warm=%d/meas=%d/snap=v%d/result=v%d",
		r.Scenario, r.Seed, r.BudgetFrac, r.WarmEpochs, r.MeasureEpochs,
		snapshot.Version, ResultVersion)
}

// CacheKey is the content address of the resolved request's result: the
// 64-bit FNV-1a of the fingerprint, hex-rendered. Stream is deliberately
// not part of the identity — both response renderings are derived from one
// cached simulation.
func (r Request) CacheKey() string {
	h := fnv.New64a()
	h.Write([]byte(r.Fingerprint()))
	return fmt.Sprintf("%016x", h.Sum64())
}
