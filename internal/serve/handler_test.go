package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/metrics"
)

// TestRunRejects is the table of malformed submissions: every reject path
// must answer before any simulation is admitted, with the uniform JSON
// error document.
func TestRunRejects(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name string
		doc  string
		code int
		frag string // substring the error must carry
	}{
		{"empty body", "", 400, "decoding request"},
		{"malformed JSON", "{", 400, "decoding request"},
		{"not an object", "[1,2]", 400, "decoding request"},
		{"unknown field", `{"scenario":"cpm-default","sead":2}`, 400, "sead"},
		{"trailing data", `{"scenario":"cpm-default"} {}`, 400, "trailing data"},
		{"missing scenario", `{"seed":1}`, 400, "needs a scenario"},
		{"unknown scenario", `{"scenario":"warp-drive"}`, 404, "unknown scenario"},
		{"overflowing budget", `{"scenario":"cpm-default","budget_frac":1e999}`, 400, "decoding request"},
		{"negative budget", `{"scenario":"cpm-default","budget_frac":-0.5}`, 400, "budget_frac"},
		{"budget above one", `{"scenario":"cpm-default","budget_frac":1.5}`, 400, "budget_frac"},
		{"negative warm window", `{"scenario":"cpm-default","warm_epochs":-1}`, 400, "warm_epochs"},
		{"oversized warm window", `{"scenario":"cpm-default","warm_epochs":65}`, 400, "warm_epochs"},
		{"oversized measure window", `{"scenario":"cpm-default","measure_epochs":257}`, 400, "measure_epochs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := postJSON(t, ts, tc.doc)
			body := wantStatus(t, resp, tc.code)
			var ed struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &ed); err != nil || ed.Error == "" {
				t.Fatalf("error body is not the JSON error document: %s", body)
			}
			if !strings.Contains(ed.Error, tc.frag) {
				t.Errorf("error %q does not mention %q", ed.Error, tc.frag)
			}
		})
	}
	if st := srv.Stats(); st.Runs != 0 || st.Misses != 0 {
		t.Errorf("reject paths admitted work: %+v", st)
	}
}

// TestValidateNonFinite covers the budget values JSON itself cannot carry:
// the codec-level guard mirrors the gpm/pic non-finite rejections.
func TestValidateNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		r := Request{Scenario: "cpm-default", BudgetFrac: bad}
		if err := r.Validate(); err == nil || !strings.Contains(err.Error(), "non-finite") {
			t.Errorf("budget_frac %v: err %v, want non-finite rejection", bad, err)
		}
	}
	if err := (Request{Scenario: "cpm-default", BudgetFrac: 0.8}).Validate(); err != nil {
		t.Errorf("finite budget rejected: %v", err)
	}
}

// TestMethodNotAllowed: the route patterns are method-qualified, so a GET
// on the run endpoint is a 405, not a 404 or an empty run.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/run")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/run: status %d, want 405", resp.StatusCode)
	}
}

// TestScenariosEndpoint pins the discovery document to the canonical set.
func TestScenariosEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Scenarios []string `json:"scenarios"`
	}
	if err := json.Unmarshal(wantStatus(t, resp, 200), &doc); err != nil {
		t.Fatal(err)
	}
	want := check.ScenarioNames()
	if len(doc.Scenarios) != len(want) {
		t.Fatalf("%d scenarios listed, want %d", len(doc.Scenarios), len(want))
	}
	for i := range want {
		if doc.Scenarios[i] != want[i] {
			t.Errorf("scenario %d = %q, want %q", i, doc.Scenarios[i], want[i])
		}
	}
}

// TestMetricsEndpoint runs one short simulation and validates the full
// /metrics exposition — server plane and run plane — through the strict
// Prometheus text parser.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	wantStatus(t, postJSON(t, ts, runDoc(shortRun("cpm-default", goldenSeed))), 200)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := wantStatus(t, resp, 200)
	fams, err := metrics.ParsePrometheus(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics is not valid Prometheus exposition: %v", err)
	}
	byName := map[string]bool{}
	for _, f := range fams {
		byName[f.Name] = true
	}
	for _, want := range []string{
		"cpmserve_requests_total",
		"cpmserve_cache_misses_total",
		"cpmserve_runs_total",
		"cpmserve_run_seconds",
		"cpm_intervals_total", // the run-plane observer wired per job
	} {
		if !byName[want] {
			t.Errorf("/metrics lacks family %s", want)
		}
	}
}

// TestHealthz covers both health states; the draining transition is in
// drain_test.go.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if body := wantStatus(t, resp, 200); !bytes.Contains(body, []byte("ok")) {
		t.Errorf("healthz body %q", body)
	}
}

// TestRunFailureIs500: a run that violates the invariant suite — here a
// budget four orders of magnitude below idle power, which no controller can
// hold past the suite's settle window — must surface as a 500 with the
// violation in the error document, and must not be cached.
func TestRunFailureIs500(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	doc := runDoc(Request{Scenario: "cpm-default", Seed: goldenSeed, BudgetFrac: 0.0001})
	body := wantStatus(t, postJSON(t, ts, doc), 500)
	var ed struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &ed); err != nil || ed.Error == "" {
		t.Fatalf("500 body is not the JSON error document: %s", body)
	}
	// A failed run must not be served from cache afterwards: retrying is a
	// fresh miss, not a replay of the failure.
	resp := postJSON(t, ts, doc)
	readBody(t, resp)
	if resp.Header.Get(HeaderCache) == outcomeHit {
		t.Errorf("failed run was cached and served as a hit")
	}
	if st := srv.Stats(); st.Misses != 2 {
		t.Errorf("expected both attempts to be misses, stats: %+v", st)
	}
}
