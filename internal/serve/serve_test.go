package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/cpm-sim/cpm/internal/check"
)

// goldenSeed is the seed every pinned golden trace was recorded at.
const goldenSeed = 1

// newTestServer builds a server plus an httptest front end, both torn down
// with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// postJSON issues one POST /v1/run with the given document.
func postJSON(t *testing.T, ts *httptest.Server, doc string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/run", "application/json", bytes.NewReader([]byte(doc)))
	if err != nil {
		t.Fatalf("POST /v1/run: %v", err)
	}
	return resp
}

// runDoc renders the request document for a scenario run.
func runDoc(req Request) string {
	b, err := json.Marshal(req)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// readBody drains and closes a response body.
func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response body: %v", err)
	}
	return b
}

// wantStatus fails the test with the body's error text when the status
// differs.
func wantStatus(t *testing.T, resp *http.Response, want int) []byte {
	t.Helper()
	body := readBody(t, resp)
	if resp.StatusCode != want {
		t.Fatalf("status %d, want %d (body: %s)", resp.StatusCode, want, bytes.TrimSpace(body))
	}
	return body
}

// goldenPath locates a pinned golden trace in the check package's testdata.
func goldenPath(name string) string {
	return filepath.Join("..", "check", "testdata", "golden", name+".json")
}

// loadRef fetches a scenario's pinned golden trace, skipping when absent —
// the same convention as the check package's own golden tests.
func loadRef(t *testing.T, name string) check.Trace {
	t.Helper()
	ref, err := check.LoadTrace(goldenPath(name))
	if os.IsNotExist(err) {
		t.Skipf("no golden trace at %s; run the check package with -update first", goldenPath(name))
	}
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// traceOf rebuilds a check.Trace from a served report, the shape Diff
// compares digests over.
func traceOf(rep Report) check.Trace {
	return check.Trace{
		Scenario:     rep.Scenario,
		Epochs:       len(rep.EpochDigests),
		EpochDigests: rep.EpochDigests,
		FinalDigest:  rep.FinalDigest,
		MeanPowerW:   float64(rep.MeanPowerW),
		MeanBIPS:     float64(rep.MeanBIPS),
		MaxTempC:     float64(rep.MaxTempC),
	}
}

// decodeReport parses a non-streamed run response.
func decodeReport(t *testing.T, body []byte) Report {
	t.Helper()
	var rep Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("decoding report: %v\nbody: %s", err, body)
	}
	return rep
}

// decodeStream parses an NDJSON run response into its epoch lines and the
// report trailer, validating the line discipline as it goes.
func decodeStream(t *testing.T, body []byte) ([]EpochReport, Report) {
	t.Helper()
	var (
		epochs  []EpochReport
		trailer *Report
	)
	scan := bufio.NewScanner(bytes.NewReader(body))
	scan.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for scan.Scan() {
		line := scan.Bytes()
		var disc struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &disc); err != nil {
			t.Fatalf("stream line is not JSON: %v\nline: %s", err, line)
		}
		switch disc.Type {
		case "epoch":
			if trailer != nil {
				t.Fatalf("epoch line after the report trailer")
			}
			var el epochLine
			if err := json.Unmarshal(line, &el); err != nil {
				t.Fatalf("decoding epoch line: %v", err)
			}
			epochs = append(epochs, el.EpochReport)
		case "report":
			if trailer != nil {
				t.Fatalf("two report trailers in one stream")
			}
			var rl reportLine
			if err := json.Unmarshal(line, &rl); err != nil {
				t.Fatalf("decoding report trailer: %v", err)
			}
			trailer = &rl.Report
		default:
			t.Fatalf("unknown stream line type %q", disc.Type)
		}
	}
	if err := scan.Err(); err != nil {
		t.Fatal(err)
	}
	if trailer == nil {
		t.Fatalf("stream ended without a report trailer")
	}
	return epochs, *trailer
}

// shortRun is a cheap non-canonical request variant tests use when they
// need a real simulation but not the full canonical window.
func shortRun(scenario string, seed uint64) Request {
	return Request{Scenario: scenario, Seed: seed, MeasureEpochs: 1}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fmtSeed exists so test names stay readable.
func fmtSeed(seed uint64) string { return fmt.Sprintf("seed-%d", seed) }
