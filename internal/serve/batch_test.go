package serve

import (
	"sync"
	"testing"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/farm"
)

// TestBatchAdmissionGoldenEquivalence holds the single worker on a blocker
// run while all six canonical scenarios queue up, then releases it. The
// five scenarios sharing the Mix1/seed-1 workload key must come back as
// one farm group (one shared trace sampler), the thermal-policy scenario
// as a scalar run — and every response must still reproduce its pinned
// golden digests exactly: the batched path is invisible in the bytes.
func TestBatchAdmissionGoldenEquivalence(t *testing.T) {
	// The canonical set splits 5 + 1 across workload keys; assert that
	// premise first so the test fails loudly if the scenario set changes.
	byKey := map[farm.WorkloadKey]int{}
	for _, sc := range check.Canonical() {
		byKey[farm.KeyOf(sc.BuildConfig(goldenSeed))]++
	}
	if len(byKey) != 2 {
		t.Fatalf("canonical scenarios span %d workload keys, test assumes 2", len(byKey))
	}

	gate := make(chan struct{})
	started := make(chan Request, 16)
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	blocker := Request{Scenario: "cpm-default", Seed: goldenSeed, MeasureEpochs: 5}
	// RunHook sees the *resolved* request (defaults filled), so the gate
	// must match against the resolved form.
	resolvedBlocker, _, err := blocker.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 16,
		BatchMax:   16,
		RunHook: func(r Request) {
			started <- r
			if r == resolvedBlocker {
				<-gate
			}
		},
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wantStatus(t, postJSON(t, ts, runDoc(blocker)), 200)
	}()
	waitFor(t, "blocker to start", func() bool { return len(started) > 0 })
	<-started

	// With the worker held, queue every canonical scenario.
	names := check.ScenarioNames()
	reports := make([]Report, len(names))
	for i, name := range names {
		i, name := i, name
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts, runDoc(Request{Scenario: name, Seed: goldenSeed}))
			reports[i] = decodeReport(t, wantStatus(t, resp, 200))
		}()
	}
	waitFor(t, "all six scenarios queued", func() bool { return srv.Stats().QueueDepth == len(names) })
	release()
	wg.Wait()

	for i, name := range names {
		if err := traceOf(reports[i]).Diff(loadRef(t, name)); err != nil {
			t.Errorf("batched %s diverged from the pinned golden: %v", name, err)
		}
	}
	st := srv.Stats()
	if st.FarmBatches != 1 {
		t.Errorf("FarmBatches = %d, want exactly 1 (the five Mix1 scenarios)", st.FarmBatches)
	}
	if st.BatchedJobs != 5 {
		t.Errorf("BatchedJobs = %d, want 5", st.BatchedJobs)
	}
	if st.Runs != uint64(len(names))+1 {
		t.Errorf("Runs = %d, want %d (blocker + six scenarios)", st.Runs, len(names)+1)
	}
}

// TestBatchDisabled: BatchMax 1 must route every job scalar even when the
// queue is full of compatible work.
func TestBatchDisabled(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan Request, 16)
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	blocker := Request{Scenario: "cpm-default", Seed: goldenSeed, MeasureEpochs: 2}
	resolvedBlocker, _, err := blocker.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 16,
		BatchMax:   1,
		RunHook: func(r Request) {
			started <- r
			if r == resolvedBlocker {
				<-gate
			}
		},
	})

	var wg sync.WaitGroup
	post := func(doc string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wantStatus(t, postJSON(t, ts, doc), 200)
		}()
	}
	post(runDoc(blocker))
	waitFor(t, "blocker to start", func() bool { return len(started) > 0 })
	<-started

	post(runDoc(shortRun("cpm-default", goldenSeed)))
	post(runDoc(shortRun("maxbips", goldenSeed)))
	waitFor(t, "both runs queued", func() bool { return srv.Stats().QueueDepth == 2 })
	release()
	wg.Wait()

	st := srv.Stats()
	if st.FarmBatches != 0 || st.BatchedJobs != 0 {
		t.Errorf("BatchMax 1 still batched: %+v", st)
	}
	if st.Runs != 3 {
		t.Errorf("Runs = %d, want 3", st.Runs)
	}
}
