package serve

import (
	"sync"
	"testing"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/farm"
)

// TestBatchAdmissionGoldenEquivalence holds the single worker on a blocker
// run while every canonical scenario queues up, then releases it. The
// scenarios sharing the Mix1/seed-1 workload key must come back as one
// farm group (one shared trace sampler), the rest — thermal-policy,
// big.LITTLE and tech-scaled chips, each alone on its workload key — as
// scalar runs; and every response must still reproduce its pinned golden
// digests exactly: the batched path is invisible in the bytes.
func TestBatchAdmissionGoldenEquivalence(t *testing.T) {
	// Derive the expected batching from the canonical set's own key
	// structure: exactly one key (the legacy Mix1 chip) holds a batchable
	// majority, every other key is a singleton and runs scalar. Fail
	// loudly if that shape ever changes.
	byKey := map[farm.WorkloadKey]int{}
	for _, sc := range check.Canonical() {
		byKey[farm.KeyOf(sc.BuildConfig(goldenSeed))]++
	}
	wantBatched, batchableKeys := 0, 0
	for _, n := range byKey {
		if n > 1 {
			batchableKeys++
			wantBatched = n
		}
	}
	if batchableKeys != 1 {
		t.Fatalf("canonical scenarios have %d batchable workload keys, test assumes exactly 1", batchableKeys)
	}
	if wantBatched < 2 {
		t.Fatalf("largest workload key holds %d scenarios, test assumes a batchable majority", wantBatched)
	}

	gate := make(chan struct{})
	started := make(chan Request, 16)
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	blocker := Request{Scenario: "cpm-default", Seed: goldenSeed, MeasureEpochs: 5}
	// RunHook sees the *resolved* request (defaults filled), so the gate
	// must match against the resolved form.
	resolvedBlocker, _, err := blocker.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 16,
		BatchMax:   16,
		RunHook: func(r Request) {
			started <- r
			if r == resolvedBlocker {
				<-gate
			}
		},
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wantStatus(t, postJSON(t, ts, runDoc(blocker)), 200)
	}()
	waitFor(t, "blocker to start", func() bool { return len(started) > 0 })
	<-started

	// With the worker held, queue every canonical scenario.
	names := check.ScenarioNames()
	reports := make([]Report, len(names))
	for i, name := range names {
		i, name := i, name
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts, runDoc(Request{Scenario: name, Seed: goldenSeed}))
			reports[i] = decodeReport(t, wantStatus(t, resp, 200))
		}()
	}
	waitFor(t, "all scenarios queued", func() bool { return srv.Stats().QueueDepth == len(names) })
	release()
	wg.Wait()

	for i, name := range names {
		if err := traceOf(reports[i]).Diff(loadRef(t, name)); err != nil {
			t.Errorf("batched %s diverged from the pinned golden: %v", name, err)
		}
	}
	st := srv.Stats()
	if st.FarmBatches != 1 {
		t.Errorf("FarmBatches = %d, want exactly 1 (the Mix1 scenarios)", st.FarmBatches)
	}
	if st.BatchedJobs != uint64(wantBatched) {
		t.Errorf("BatchedJobs = %d, want %d", st.BatchedJobs, wantBatched)
	}
	if st.Runs != uint64(len(names))+1 {
		t.Errorf("Runs = %d, want %d (blocker + every scenario)", st.Runs, len(names)+1)
	}
}

// TestBatchDisabled: BatchMax 1 must route every job scalar even when the
// queue is full of compatible work.
func TestBatchDisabled(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan Request, 16)
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	blocker := Request{Scenario: "cpm-default", Seed: goldenSeed, MeasureEpochs: 2}
	resolvedBlocker, _, err := blocker.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	srv, ts := newTestServer(t, Options{
		Workers:    1,
		QueueDepth: 16,
		BatchMax:   1,
		RunHook: func(r Request) {
			started <- r
			if r == resolvedBlocker {
				<-gate
			}
		},
	})

	var wg sync.WaitGroup
	post := func(doc string) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wantStatus(t, postJSON(t, ts, doc), 200)
		}()
	}
	post(runDoc(blocker))
	waitFor(t, "blocker to start", func() bool { return len(started) > 0 })
	<-started

	post(runDoc(shortRun("cpm-default", goldenSeed)))
	post(runDoc(shortRun("maxbips", goldenSeed)))
	waitFor(t, "both runs queued", func() bool { return srv.Stats().QueueDepth == 2 })
	release()
	wg.Wait()

	st := srv.Stats()
	if st.FarmBatches != 0 || st.BatchedJobs != 0 {
		t.Errorf("BatchMax 1 still batched: %+v", st)
	}
	if st.Runs != 3 {
		t.Errorf("Runs = %d, want 3", st.Runs)
	}
}
