package serve

import (
	"fmt"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/farm"
	"github.com/cpm-sim/cpm/internal/metrics"
	"github.com/cpm-sim/cpm/internal/sim"
)

// runObservers is the observer set one served run carries: the golden
// digest recorder (the response's verification payload), the epoch recorder
// (the response's data payload), and the registry observer feeding /metrics
// under the scenario's canonical name — a bounded label set, since only
// canonical scenarios are admitted.
type runObservers struct {
	golden *check.Golden
	rec    *epochRecorder
	all    []engine.Observer
}

func (s *Server) observersFor(req Request) runObservers {
	golden := check.NewGolden(req.Scenario)
	rec := &epochRecorder{}
	return runObservers{
		golden: golden,
		rec:    rec,
		all: []engine.Observer{
			golden,
			rec.observer(),
			metrics.NewObserver(s.reg, metrics.ObserverOptions{Label: req.Scenario}),
		},
	}
}

// finalize turns one finished session into a rendered result, failing on
// invariant violations — a served run that breaks the paper's invariants is
// a 500, never a silently wrong 200.
func finalize(j *job, sum engine.Summary, suite *check.Suite, obs runObservers) (*result, error) {
	if err := suite.Err(); err != nil {
		return nil, fmt.Errorf("serve: %s seed %d violated invariants: %w", j.req.Scenario, j.req.Seed, err)
	}
	return buildResult(j.req, sum, obs.rec, obs.golden.Trace())
}

// executeScalar runs one job as a plain single-chip session.
func (s *Server) executeScalar(j *job) (*result, error) {
	obs := s.observersFor(j.req)
	sess, suite, err := j.sc.Build(j.req.Seed, obs.all...)
	if err != nil {
		return nil, fmt.Errorf("serve: building %s seed %d: %w", j.req.Scenario, j.req.Seed, err)
	}
	return finalize(j, sess.Run(), suite, obs)
}

// executeFarm runs a batch of workload-compatible jobs as one farm group:
// one shared trace sampler, member chips stepped in lockstep. The farm path
// is golden-equivalent to the scalar path (proven in internal/check), so
// which path a job happens to ride never changes its response bytes.
func (s *Server) executeFarm(batch []*job) {
	obs := make([]runObservers, len(batch))
	suites := make([]*check.Suite, len(batch))
	specs := make([]farm.ChipSpec, len(batch))
	for i, j := range batch {
		i, j := i, j
		obs[i] = s.observersFor(j.req)
		specs[i] = farm.ChipSpec{
			Config: j.sc.BuildConfig(j.req.Seed),
			NewSession: func(cmp *sim.CMP) (*engine.Session, error) {
				sess, suite, err := j.sc.BuildOn(cmp, j.req.Seed, obs[i].all...)
				if err != nil {
					return nil, err
				}
				suites[i] = suite
				return sess, nil
			},
		}
	}
	f, err := farm.New(specs, farm.Options{})
	if err != nil {
		// Group construction failed as a whole; fail every member.
		for _, j := range batch {
			s.m.runsFarm.Inc()
			s.finish(j, nil, fmt.Errorf("serve: building farm batch: %w", err))
		}
		return
	}
	// One group, one sampler: the inner lockstep rounds are the
	// parallelism-free unit, so a single pool worker is exact and cheap.
	sums, err := f.Run(engine.Pool{Workers: 1}, nil)
	for i, j := range batch {
		s.m.runsFarm.Inc()
		if err != nil {
			s.finish(j, nil, fmt.Errorf("serve: running farm batch: %w", err))
			continue
		}
		res, ferr := finalize(j, sums[i], suites[i], obs[i])
		s.finish(j, res, ferr)
	}
}
