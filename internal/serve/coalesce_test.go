package serve

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCoalescingRunsOnce proves the singleflight contract under -race: N
// concurrent identical requests must run the simulation exactly once, and
// every response — the leader's and all coalesced followers' — must be
// byte-identical.
func TestCoalescingRunsOnce(t *testing.T) {
	const n = 12
	var runs atomic.Int64
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Options{
		Workers:    2,
		QueueDepth: 16,
		RunHook: func(Request) {
			runs.Add(1)
			<-gate // hold the run until every request has been admitted
		},
	})

	doc := runDoc(shortRun("cpm-default", goldenSeed))
	type reply struct {
		body    []byte
		outcome string
	}
	replies := make([]reply, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts, doc)
			replies[i] = reply{wantStatus(t, resp, 200), resp.Header.Get(HeaderCache)}
		}()
	}

	// All n requests must be admitted — one leader, n-1 coalesced — before
	// the gated run is released; this is the window a second leader would
	// slip through if admission raced.
	waitFor(t, "all requests admitted", func() bool {
		st := srv.Stats()
		return st.Misses == 1 && st.Coalesced == n-1
	})
	close(gate)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("%d identical concurrent requests ran the simulation %d times, want exactly 1", n, got)
	}
	var leaders, followers int
	for i, r := range replies {
		if !bytes.Equal(r.body, replies[0].body) {
			t.Errorf("response %d differs from response 0 (%d vs %d bytes)", i, len(r.body), len(replies[0].body))
		}
		switch r.outcome {
		case outcomeMiss:
			leaders++
		case outcomeCoalesced:
			followers++
		default:
			t.Errorf("response %d outcome %q", i, r.outcome)
		}
	}
	if leaders != 1 || followers != n-1 {
		t.Errorf("outcomes: %d leaders, %d followers; want 1 and %d", leaders, followers, n-1)
	}
}

// TestDistinctSeedsNeverShare proves the negative: requests differing only
// in seed have distinct cache keys, run separately, and produce different
// digests — a fingerprint collision here would silently serve one seed's
// physics as another's.
func TestDistinctSeedsNeverShare(t *testing.T) {
	var runs atomic.Int64
	srv, ts := newTestServer(t, Options{
		Workers:    2,
		QueueDepth: 16,
		RunHook:    func(Request) { runs.Add(1) },
	})

	var (
		wg   sync.WaitGroup
		keys [2]string
		reps [2]Report
	)
	for i, seed := range []uint64{1, 2} {
		i, seed := i, seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := postJSON(t, ts, runDoc(shortRun("cpm-default", seed)))
			body := wantStatus(t, resp, 200)
			keys[i] = resp.Header.Get(HeaderCacheKey)
			reps[i] = decodeReport(t, body)
		}()
	}
	wg.Wait()

	if got := runs.Load(); got != 2 {
		t.Fatalf("two distinct-seed requests ran %d simulations, want 2", got)
	}
	if keys[0] == keys[1] {
		t.Errorf("seeds 1 and 2 share cache key %s", keys[0])
	}
	if reps[0].FinalDigest == reps[1].FinalDigest {
		t.Errorf("seeds 1 and 2 produced the same final digest %s", reps[0].FinalDigest)
	}
	if st := srv.Stats(); st.Hits != 0 {
		t.Errorf("distinct requests recorded %d cache hits", st.Hits)
	}
}

// TestCacheKeyIdentity pins what is — and is not — part of a request's
// content address.
func TestCacheKeyIdentity(t *testing.T) {
	resolve := func(t *testing.T, r Request) Request {
		t.Helper()
		res, _, err := r.Resolve()
		if err != nil {
			t.Fatalf("resolving %+v: %v", r, err)
		}
		return res
	}
	base := Request{Scenario: "cpm-default"}
	cases := []struct {
		name string
		a, b Request
		same bool
	}{
		{"stream is not identity", base, Request{Scenario: "cpm-default", Stream: true}, true},
		{"explicit defaults equal implicit", base,
			Request{Scenario: "cpm-default", Seed: 1, BudgetFrac: 0.8, WarmEpochs: 2, MeasureEpochs: 4}, true},
		{"seed differs", base, Request{Scenario: "cpm-default", Seed: 2}, false},
		{"budget differs", base, Request{Scenario: "cpm-default", BudgetFrac: 0.6}, false},
		{"warm window differs", base, Request{Scenario: "cpm-default", WarmEpochs: 3}, false},
		{"measure window differs", base, Request{Scenario: "cpm-default", MeasureEpochs: 5}, false},
		{"scenario differs", base, Request{Scenario: "budget-60"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ka, kb := resolve(t, tc.a).CacheKey(), resolve(t, tc.b).CacheKey()
			if (ka == kb) != tc.same {
				t.Errorf("keys %s and %s; want same=%v\nfingerprints:\n  %s\n  %s",
					ka, kb, tc.same, resolve(t, tc.a).Fingerprint(), resolve(t, tc.b).Fingerprint())
			}
		})
	}
	// budget-60 vs cpm-default at the same explicit budget: the scenario
	// name itself must stay in the fingerprint.
	a := resolve(t, Request{Scenario: "cpm-default", BudgetFrac: 0.6})
	b := resolve(t, Request{Scenario: "budget-60"})
	if a.CacheKey() == b.CacheKey() {
		t.Errorf("different scenarios with equal parameters share key %s", a.CacheKey())
	}
}
