package serve

import (
	"fmt"
	"testing"
)

func cacheRes(tag string) *result {
	return &result{body: []byte(tag)}
}

// TestLRUCacheEviction pins the recency discipline: the bound holds and
// the least recently *used* entry — not the oldest inserted — is evicted.
func TestLRUCacheEviction(t *testing.T) {
	c := newLRUCache(2)
	c.add("a", cacheRes("a"))
	c.add("b", cacheRes("b"))
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before any eviction")
	}
	// a was just used, so adding c must evict b.
	c.add("c", cacheRes("c"))
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	for _, want := range []string{"a", "c"} {
		res, ok := c.get(want)
		if !ok {
			t.Errorf("%s evicted unexpectedly", want)
		} else if string(res.body) != want {
			t.Errorf("%s returned body %q", want, res.body)
		}
	}
}

// TestLRUCacheRefresh: re-adding an existing key updates in place without
// growing the cache or losing other entries.
func TestLRUCacheRefresh(t *testing.T) {
	c := newLRUCache(2)
	c.add("a", cacheRes("a1"))
	c.add("b", cacheRes("b"))
	c.add("a", cacheRes("a2"))
	if c.len() != 2 {
		t.Fatalf("len = %d after refresh, want 2", c.len())
	}
	res, ok := c.get("a")
	if !ok || string(res.body) != "a2" {
		t.Errorf("refreshed entry = %v, %v; want a2", res, ok)
	}
	// b is now least recently used; a third key evicts it, not a.
	c.add("c", cacheRes("c"))
	if _, ok := c.get("b"); ok {
		t.Error("b survived; refresh did not move a to the front")
	}
}

// TestLRUCacheDisabled: cap <= 0 must behave as a null cache, which is
// what Options.CacheEntries <= 0 wires.
func TestLRUCacheDisabled(t *testing.T) {
	for _, cap := range []int{0, -1} {
		c := newLRUCache(cap)
		c.add("a", cacheRes("a"))
		if _, ok := c.get("a"); ok {
			t.Errorf("cap %d cached an entry", cap)
		}
		if c.len() != 0 {
			t.Errorf("cap %d len = %d", cap, c.len())
		}
	}
}

// TestLRUCacheChurn exercises the map/list bookkeeping across many
// evictions: the two structures must never disagree.
func TestLRUCacheChurn(t *testing.T) {
	c := newLRUCache(8)
	for i := 0; i < 100; i++ {
		c.add(fmt.Sprintf("k%d", i), cacheRes("x"))
		if c.len() > 8 {
			t.Fatalf("bound broken at insert %d: len %d", i, c.len())
		}
		if len(c.byKey) != c.ll.Len() {
			t.Fatalf("map %d vs list %d at insert %d", len(c.byKey), c.ll.Len(), i)
		}
	}
	// Only the newest 8 remain.
	for i := 92; i < 100; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); !ok {
			t.Errorf("k%d missing from the newest window", i)
		}
	}
	if _, ok := c.get("k91"); ok {
		t.Error("k91 survived past the bound")
	}
}

// TestServerCacheDisabled: with caching off (negative CacheEntries),
// sequential identical requests re-run the simulation — no hidden caching
// layer.
func TestServerCacheDisabled(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, CacheEntries: -1})
	doc := runDoc(shortRun("cpm-default", goldenSeed))
	first := wantStatus(t, postJSON(t, ts, doc), 200)
	second := wantStatus(t, postJSON(t, ts, doc), 200)
	st := srv.Stats()
	if st.Runs != 2 || st.Hits != 0 {
		t.Errorf("uncached server: %+v, want 2 runs and 0 hits", st)
	}
	// Re-running must still be deterministic: same bytes, fresh simulation.
	if string(first) != string(second) {
		t.Errorf("two uncached runs of one request differ")
	}
}
