package core

import "github.com/cpm-sim/cpm/internal/stats"

// FaultPlan injects sensor and actuator faults into a managed run, for the
// robustness studies DESIGN.md calls out. The paper's central argument for
// formal feedback control over open-loop heuristics is predictable behaviour
// under mis-modelling and disturbance (§II-D); the fault plan makes that
// claim testable end to end:
//
//   - UtilNoiseStd corrupts every utilization reading with multiplicative
//     Gaussian noise (a flaky performance counter),
//   - UtilBiasMult scales every reading by a constant (a mis-calibrated
//     counter or transducer drift),
//   - StuckIsland pins one island's DVFS actuator at StuckLevel, ignoring
//     the PIC (a failed voltage regulator), and
//   - DropGPMProb makes the supervisor skip GPM invocations at random (a
//     busy or faulty management core); the PICs keep capping at their last
//     provisions, which is exactly the decoupling guarantee of §II-C.
//
// All randomness is deterministic in Seed. The zero value injects nothing.
type FaultPlan struct {
	// UtilNoiseStd is the standard deviation of multiplicative Gaussian
	// noise applied to measured utilization (0.1 = 10% noise).
	UtilNoiseStd float64
	// UtilBiasMult scales measured utilization (1 = unbiased).
	UtilBiasMult float64
	// StuckIsland, when >= 0, identifies an island whose actuator ignores
	// the PIC and stays pinned at StuckLevel.
	StuckIsland int
	// StuckLevel is the level the stuck island is pinned at.
	StuckLevel int
	// DropGPMProb is the probability that a due GPM invocation is skipped.
	DropGPMProb float64
	// Seed drives the fault randomness.
	Seed uint64
}

// enabled reports whether the plan injects anything.
func (f FaultPlan) enabled() bool {
	return f.UtilNoiseStd > 0 || (f.UtilBiasMult != 0 && f.UtilBiasMult != 1) ||
		f.StuckIsland >= 0 || f.DropGPMProb > 0
}

// faultState is the run-time side of a FaultPlan.
type faultState struct {
	plan FaultPlan
	rng  *stats.Rand
}

func newFaultState(plan FaultPlan) *faultState {
	if plan.UtilBiasMult == 0 {
		plan.UtilBiasMult = 1
	}
	return &faultState{
		plan: plan,
		rng:  stats.NewRand(stats.DeriveSeed(plan.Seed, 0xfa17)),
	}
}

// corruptUtil applies sensor faults to a utilization reading.
func (f *faultState) corruptUtil(u float64) float64 {
	u *= f.plan.UtilBiasMult
	if f.plan.UtilNoiseStd > 0 {
		u *= f.rng.Norm(1, f.plan.UtilNoiseStd)
	}
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// dropGPM reports whether this GPM invocation is skipped.
func (f *faultState) dropGPM() bool {
	return f.plan.DropGPMProb > 0 && f.rng.Bool(f.plan.DropGPMProb)
}

// overrideLevel replaces the PIC's command for a stuck island.
func (f *faultState) overrideLevel(island, level int) int {
	if island == f.plan.StuckIsland {
		return f.plan.StuckLevel
	}
	return level
}
