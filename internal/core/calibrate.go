package core

import (
	"errors"
	"fmt"
	"math"

	"github.com/cpm-sim/cpm/internal/sensor"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/stats"
)

// Calibration is the offline system-identification result the controllers
// are configured from, mirroring §II-D's methodology: per-island linear
// utilization→power transducers (Figure 6) and the plant gain a of the
// difference model (Equation 8), fitted from a white-noise DVFS run.
type Calibration struct {
	// Transducers are the per-island estimators the controllers deploy
	// with: the operating-point-aware refinement (sensor.LevelTransducer),
	// which removes the chord bias of a single global line.
	Transducers []sensor.Estimator
	// LevelR2 are the per-island goodness-of-fit values of the deployed
	// estimators.
	LevelR2 []float64
	// LinearTransducers are the paper's pure linear fits P = k0*U + k1
	// (Figure 6), kept for the figure reproduction and as an ablation.
	LinearTransducers []sensor.Transducer
	// R2 are the linear fits' per-island goodness-of-fit values (paper:
	// 0.96 average).
	R2 []float64
	// PlantGain is the identified a (island power fraction per normalized
	// frequency; paper: 0.79).
	PlantGain float64
	// PowerElasticity is the identified exponent e of the chip's
	// power-frequency relation P ∝ f^e over the operating region, fitted
	// from the white-noise windows. The paper's Equation (1) idealizes
	// e = 3; this substrate lands near 1.5 (see EXPERIMENTS.md).
	PowerElasticity float64
	// UnmanagedPowerW is the mean chip power with every island pinned at
	// the top level — the "required power by the whole chip" that budgets
	// are expressed against in §IV.
	UnmanagedPowerW float64
	// UnmanagedBIPS is the mean chip throughput at the top level, the
	// baseline for performance-degradation figures.
	UnmanagedBIPS float64
}

// BudgetW converts a §IV-style budget fraction ("80% of the required
// power") into watts.
func (c Calibration) BudgetW(frac float64) float64 { return frac * c.UnmanagedPowerW }

// RecommendedExponent returns the performance-expectation exponent matched
// to the identified power elasticity (1/e), the substrate-calibrated
// alternative to Equation (4)'s cube root — see
// gpm.PerformanceAware.PowerExponent.
func (c Calibration) RecommendedExponent() float64 {
	if c.PowerElasticity <= 0 {
		return 1.0 / 3.0
	}
	return 1 / c.PowerElasticity
}

// Calibrate performs the offline identification for the chip described by
// cfg: first an unmanaged run at the top operating point (warm + measure
// intervals), then a white-noise DVFS run of the same length during which
// per-island (utilization, power) pairs and (Δpower, Δfrequency) pairs are
// collected and fitted.
func Calibrate(cfg sim.Config, warm, measure int) (Calibration, error) {
	if warm < 0 || measure < 2 {
		return Calibration{}, errors.New("core: need at least two measurement intervals")
	}

	// Unmanaged baseline.
	cfg.InitialLevel = -1
	cmp, err := sim.New(cfg)
	if err != nil {
		return Calibration{}, err
	}
	cal := Calibration{}
	for k := 0; k < warm; k++ {
		cmp.Step()
	}
	for k := 0; k < measure; k++ {
		r := cmp.Step()
		cal.UnmanagedPowerW += r.ChipPowerW
		cal.UnmanagedBIPS += r.TotalBIPS
	}
	cal.UnmanagedPowerW /= float64(measure)
	cal.UnmanagedBIPS /= float64(measure)

	// White-noise DVFS run on a fresh instance of the same chip. Each
	// random level is *held* for a short measurement window and the window
	// mean forms one calibration sample: per-interval workload phase noise
	// perturbs utilization much more than power, and fitting on raw
	// intervals would bury the level-to-level relation under it (this is
	// also how the paper's Figure 6 points are obtained — per measurement
	// window, not per controller tick).
	const (
		holdIntervals = 8
		settle        = 2 // discard post-transition transients
		// Levels below minLevel are excluded from the white-noise draw:
		// under the 50–95%% budgets of §IV the controllers operate in the
		// upper part of the table, and the utilization→power relation is
		// mildly convex, so fitting the line over the operating region
		// keeps the estimate unbiased where it is actually used.
		minLevel = 2
	)
	cmp, err = sim.New(cfg)
	if err != nil {
		return Calibration{}, err
	}
	n := cmp.NumIslands()
	rng := stats.NewRand(stats.DeriveSeed(cfg.Seed, 0xca11b))
	utils := make([][]float64, n)
	fracs := make([][]float64, n)
	lvls := make([][]int, n)
	var dPow, dFreq []float64
	prevFrac := make([]float64, n)
	prevNorm := make([]float64, n)
	havePrev := false

	for k := 0; k < warm; k++ {
		cmp.Step()
	}
	windows := measure / holdIntervals
	if windows < 2 {
		windows = 2
	}
	sumU := make([]float64, n)
	sumP := make([]float64, n)
	// One chip-wide draw range even on a heterogeneous chip: the draw spans
	// the largest island table and each island clamps to its own range, so
	// the RNG stream — and with it every calibration number — is unchanged
	// on homogeneous chips.
	maxLevels := 0
	for i := 0; i < n; i++ {
		if l := cmp.IslandTable(i).Levels(); l > maxLevels {
			maxLevels = l
		}
	}
	for w := 0; w < windows; w++ {
		// One random level per window for the whole chip: memory-channel
		// contention then matches what the deployed controllers see when
		// they drive all islands into the same region of the table, which
		// per-island independent draws would systematically understate.
		base, span := minLevel, maxLevels-minLevel
		if span < 1 {
			// Tables shorter than the excluded band (e.g. single-point
			// islands) draw over their whole range instead.
			base, span = 0, maxLevels
		}
		lvl := base + rng.Intn(span)
		for i := 0; i < n; i++ {
			cmp.SetLevel(i, lvl)
			sumU[i], sumP[i] = 0, 0
			lvls[i] = append(lvls[i], cmp.Level(i))
		}
		var norm []float64
		for k := 0; k < holdIntervals; k++ {
			r := cmp.Step()
			if k < settle {
				continue
			}
			if norm == nil {
				norm = make([]float64, n)
				for i, ir := range r.Islands {
					// Each island's frequency normalizes on its *own*
					// table's axis, so per-island (Δpower, Δfrequency)
					// pairs — and the plant gain pooled from them — are
					// dimensionless in the same sense the PICs use.
					norm[i] = cmp.IslandTable(i).NormFreq(ir.FreqMHz)
				}
			}
			for i, ir := range r.Islands {
				sumU[i] += ir.MeanUtil
				sumP[i] += ir.PowerFracIsland
			}
		}
		cnt := float64(holdIntervals - settle)
		for i := 0; i < n; i++ {
			u, p := sumU[i]/cnt, sumP[i]/cnt
			utils[i] = append(utils[i], u)
			fracs[i] = append(fracs[i], p)
			if havePrev {
				dPow = append(dPow, p-prevFrac[i])
				dFreq = append(dFreq, norm[i]-prevNorm[i])
			}
			prevFrac[i] = p
			prevNorm[i] = norm[i]
		}
		havePrev = true
	}

	for i := 0; i < n; i++ {
		lin, r2, err := sensor.FitTransducer(utils[i], fracs[i])
		if err != nil {
			return Calibration{}, fmt.Errorf("core: island %d transducer: %w", i, err)
		}
		cal.LinearTransducers = append(cal.LinearTransducers, lin)
		cal.R2 = append(cal.R2, r2)
		lt, lr2, err := sensor.FitLevelTransducer(lvls[i], utils[i], fracs[i], cmp.IslandTable(i).Levels())
		if err != nil {
			return Calibration{}, fmt.Errorf("core: island %d level transducer: %w", i, err)
		}
		cal.Transducers = append(cal.Transducers, lt)
		cal.LevelR2 = append(cal.LevelR2, lr2)
	}
	gain, err := sensor.FitPlantGain(dPow, dFreq)
	if err != nil {
		return Calibration{}, fmt.Errorf("core: plant gain: %w", err)
	}
	cal.PlantGain = gain

	// Power elasticity: regress ln(chip power) on ln(frequency) over the
	// white-noise windows (the draw is chip-wide per window, so island 0's
	// level list — clamped to its own table — describes every window).
	var lnF, lnP []float64
	for w, lvl := range lvls[0] {
		chip := 0.0
		for i := 0; i < n; i++ {
			chip += fracs[i][w]
		}
		lnF = append(lnF, math.Log(cmp.IslandTable(0).Point(lvl).FreqMHz))
		lnP = append(lnP, math.Log(chip))
	}
	efit, err := stats.LinReg(lnF, lnP)
	if err != nil {
		return Calibration{}, fmt.Errorf("core: power elasticity: %w", err)
	}
	cal.PowerElasticity = efit.Slope
	return cal, nil
}

// RunUnmanaged measures the mean chip power and throughput with all islands
// pinned at level (pass -1 for the top), the "no power management" baseline
// of Figure 12.
func RunUnmanaged(cfg sim.Config, level, warm, measure int) (powerW, bips float64, err error) {
	cfg.InitialLevel = level
	cmp, err := sim.New(cfg)
	if err != nil {
		return 0, 0, err
	}
	for k := 0; k < warm; k++ {
		cmp.Step()
	}
	if measure <= 0 {
		return 0, 0, errors.New("core: need measurement intervals")
	}
	for k := 0; k < measure; k++ {
		r := cmp.Step()
		powerW += r.ChipPowerW
		bips += r.TotalBIPS
	}
	return powerW / float64(measure), bips / float64(measure), nil
}
