// Package core implements CPM — the paper's Coordinated Power Management
// architecture: the two-tier composition of a Global Power Manager and
// per-island PID controllers over a voltage/frequency-island CMP
// (Figures 3 and 4).
//
// The timeline follows Figure 4: every GPMPeriod PIC intervals the GPM
// provisions the chip budget across islands from the epoch's aggregate
// observations; every interval each PIC converts its island's measured
// utilization to estimated power, compares it to its provision, and actuates
// the island's DVFS knob. Because each PIC caps its island at the
// provisioned value and the GPM never provisions more than the budget, the
// chip tracks the global budget without any central power measurement.
package core

import (
	"errors"
	"fmt"

	"github.com/cpm-sim/cpm/internal/control"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/pic"
	"github.com/cpm-sim/cpm/internal/sensor"
	"github.com/cpm-sim/cpm/internal/sim"
)

// Config parameterizes a CPM instance.
type Config struct {
	// Gains are the PIC design parameters (control.PaperGains by default).
	Gains control.Gains
	// GPMPeriod is the number of PIC intervals per GPM invocation
	// (default 20: 50 ms over 2.5 ms intervals, as in §III).
	GPMPeriod int
	// Policy is the GPM provisioning policy (performance-aware by default).
	Policy gpm.Policy
	// BudgetW is the chip power budget in watts.
	BudgetW float64
	// Transducers are the per-island utilization→power estimators from
	// calibration. Length must match the island count unless
	// UseOraclePower is set.
	Transducers []sensor.Estimator
	// UseOraclePower feeds measured power directly to the PICs (ablation).
	UseOraclePower bool
	// SmoothAlpha is passed to every PIC (see pic.Config.SmoothAlpha).
	SmoothAlpha float64
	// Adaptive, when non-nil, runs every PIC with the adaptive-gain
	// estimator (see pic.AdaptiveConfig): Gains become design gains that
	// the RLS plant-gain estimate rescales online, with the Jury-criterion
	// guard falling back to the paper's fixed gains.
	Adaptive *pic.AdaptiveConfig
	// Faults optionally injects sensor/actuator faults (robustness
	// studies). StuckIsland of 0 is a valid island, so construct plans with
	// StuckIsland: -1 when no actuator fault is wanted — or leave the whole
	// field nil.
	Faults *FaultPlan
}

// StepResult is one managed interval's outcome.
//
// Sim.Islands and AllocW alias scratch buffers that Step overwrites every
// interval; a caller retaining a StepResult across steps must Clone it.
type StepResult struct {
	// Sim is the simulator's observation for the interval.
	Sim sim.Result
	// AllocW is the per-island provision in force during the interval.
	AllocW []float64
	// GPMInvoked reports whether this interval began a new GPM epoch.
	GPMInvoked bool
}

// Clone returns a deep copy independent of the controller's and chip's
// scratch buffers, safe to retain across Steps.
func (r StepResult) Clone() StepResult {
	r.Sim = r.Sim.Clone()
	r.AllocW = append([]float64(nil), r.AllocW...)
	return r
}

// CPM couples a simulated chip with the two-tier controller.
type CPM struct {
	cfg Config
	cmp *sim.CMP
	mgr *gpm.Manager
	pic []*pic.Controller

	alloc    []float64
	resAlloc []float64 // reused backing array of StepResult.AllocW
	haveMeas bool
	lastUtil []float64
	lastPowW []float64

	// epoch accumulators for GPM observations
	accPow, accBIPS []float64
	accN            int
	interval        int

	// Cache-signal plumbing, active only when the policy chain asks for it
	// (gpm.WantsCacheSignals): curCache latches the cumulative per-island
	// cache counters right after each chip step — the one point where every
	// farm group member observes the shared sampler at the same position —
	// and prevCache holds the latch from the last GPM invocation so the
	// next one observes epoch deltas.
	wantCache bool
	curCache  []sim.CacheStats
	prevCache []sim.CacheStats

	faults *faultState

	stepHooks []func(StepResult)
}

// SetStepHook installs a callback invoked at the end of every Step with the
// managed interval's outcome — the controller-layer attachment point for
// observers. Set replaces every previously installed hook; a nil hook
// detaches them all. Not safe to call concurrently with Step.
func (c *CPM) SetStepHook(fn func(StepResult)) {
	c.stepHooks = c.stepHooks[:0]
	if fn != nil {
		c.stepHooks = append(c.stepHooks, fn)
	}
}

// AddStepHook appends a hook without disturbing the ones already installed,
// so independent observers can subscribe to the same controller. The
// StepResult aliases scratch buffers; hooks must Clone what they keep. A
// nil hook is ignored. Not safe to call concurrently with Step.
func (c *CPM) AddStepHook(fn func(StepResult)) {
	if fn != nil {
		c.stepHooks = append(c.stepHooks, fn)
	}
}

// New wires a CPM over the given chip.
func New(cmp *sim.CMP, cfg Config) (*CPM, error) {
	if cmp == nil {
		return nil, errors.New("core: nil chip")
	}
	if cfg.BudgetW <= 0 {
		return nil, errors.New("core: non-positive budget")
	}
	if cfg.GPMPeriod <= 0 {
		cfg.GPMPeriod = 20
	}
	if cfg.Policy == nil {
		cfg.Policy = &gpm.PerformanceAware{}
	}
	n := cmp.NumIslands()
	if !cfg.UseOraclePower && len(cfg.Transducers) != n {
		return nil, fmt.Errorf("core: %d transducers for %d islands", len(cfg.Transducers), n)
	}
	mgr, err := gpm.NewManager(cfg.Policy, cfg.BudgetW)
	if err != nil {
		return nil, err
	}
	c := &CPM{
		cfg:      cfg,
		cmp:      cmp,
		mgr:      mgr,
		alloc:    make([]float64, n),
		lastUtil: make([]float64, n),
		lastPowW: make([]float64, n),
		accPow:   make([]float64, n),
		accBIPS:  make([]float64, n),
	}
	if cfg.Faults != nil && cfg.Faults.enabled() {
		c.faults = newFaultState(*cfg.Faults)
	}
	if gpm.WantsCacheSignals(cfg.Policy) {
		c.wantCache = true
		c.curCache = make([]sim.CacheStats, n)
		c.prevCache = make([]sim.CacheStats, n)
	}
	for i := 0; i < n; i++ {
		var tr sensor.Estimator
		if !cfg.UseOraclePower {
			tr = cfg.Transducers[i]
		}
		p, err := pic.New(pic.Config{
			Gains:          cfg.Gains,
			Table:          cmp.IslandTable(i),
			IslandMaxW:     cmp.IslandMaxPowerW(i),
			Transducer:     tr,
			UseOraclePower: cfg.UseOraclePower,
			SmoothAlpha:    cfg.SmoothAlpha,
			Adaptive:       cfg.Adaptive,
		}, cmp.Level(i))
		if err != nil {
			return nil, err
		}
		c.pic = append(c.pic, p)
		c.alloc[i] = cfg.BudgetW / float64(n) // Pᵢ(0) = P_target/N
		p.SetTargetWatts(c.alloc[i])
	}
	return c, nil
}

// Chip returns the managed simulator instance.
func (c *CPM) Chip() *sim.CMP { return c.cmp }

// Manager returns the GPM.
func (c *CPM) Manager() *gpm.Manager { return c.mgr }

// PIC returns island i's per-island controller, for attaching telemetry
// hooks (see pic.Controller.SetInvokeHook).
func (c *CPM) PIC(i int) *pic.Controller { return c.pic[i] }

// AllocW returns the current per-island provisions in watts (live slice;
// callers must not modify).
func (c *CPM) AllocW() []float64 { return c.alloc }

// SetBudgetW changes the chip budget at the next GPM invocation.
func (c *CPM) SetBudgetW(w float64) { c.mgr.SetBudgetW(w) }

// Step advances the managed chip one PIC interval. The returned StepResult
// aliases scratch buffers valid until the next Step (see StepResult.Clone).
func (c *CPM) Step() StepResult {
	c.resAlloc = append(c.resAlloc[:0], c.alloc...)
	res := StepResult{AllocW: c.resAlloc}

	// GPM at epoch boundaries (Figure 4), once measurements exist.
	gpmDue := c.interval%c.cfg.GPMPeriod == 0 && c.accN > 0
	if gpmDue && c.faults != nil && c.faults.dropGPM() {
		gpmDue = false
	}
	if gpmDue {
		obs := make([]gpm.IslandObs, c.cmp.NumIslands())
		for i := range obs {
			obs[i] = gpm.IslandObs{
				Island:    i,
				AllocW:    c.alloc[i],
				PowerW:    c.accPow[i] / float64(c.accN),
				BIPS:      c.accBIPS[i] / float64(c.accN),
				MaxPowerW: c.cmp.IslandMaxPowerW(i),
				LeakMult:  c.cmp.IslandLeakMult(i),
				Level:     c.cmp.Level(i),
			}
			if c.wantCache {
				// curCache was latched right after the last chip step, so
				// the deltas cover exactly the epoch that just ended.
				cur, prev := c.curCache[i], c.prevCache[i]
				obs[i].L2Accesses = float64(cur.L2.Accesses - prev.L2.Accesses)
				obs[i].L2Misses = float64(cur.L2.Misses - prev.L2.Misses)
				obs[i].L1DAccesses = float64(cur.L1D.Accesses - prev.L1D.Accesses)
				obs[i].L1DMisses = float64(cur.L1D.Misses - prev.L1D.Misses)
				c.prevCache[i] = cur
			}
		}
		c.alloc = c.mgr.Provision(obs)
		for i, p := range c.pic {
			p.SetTargetWatts(c.alloc[i])
		}
		for i := range c.accPow {
			c.accPow[i], c.accBIPS[i] = 0, 0
		}
		c.accN = 0
		res.GPMInvoked = true
		res.AllocW = append(res.AllocW[:0], c.alloc...)
	}

	// PIC invocations use the previous interval's measurements.
	if c.haveMeas {
		for i, p := range c.pic {
			util := c.lastUtil[i]
			if c.faults != nil {
				util = c.faults.corruptUtil(util)
			}
			lvl := p.Invoke(util, c.lastPowW[i])
			if c.faults != nil {
				lvl = c.faults.overrideLevel(i, lvl)
			}
			c.cmp.SetLevel(i, lvl)
		}
	}

	r := c.cmp.Step()
	for i, ir := range r.Islands {
		c.lastUtil[i] = ir.MeanUtil
		c.lastPowW[i] = ir.PowerW
		// The GPM, like the PICs, has no power sensor: it observes the
		// transducer estimate, which is also what lets it notice an island
		// that cannot spend its allocation (§II-C's starvation discussion).
		// The oracle ablation feeds measured power throughout instead.
		est := ir.PowerW
		if !c.cfg.UseOraclePower {
			est = c.cfg.Transducers[i].EstimatePowerFrac(ir.MeanUtil, ir.Level) * c.cmp.IslandMaxPowerW(i)
		}
		c.accPow[i] += est
		c.accBIPS[i] += ir.BIPS
	}
	if c.wantCache {
		// Latch cumulative counters now, not lazily at the next GPM
		// boundary: in a farm group the shared sampler advances once per
		// lockstep round, and immediately after a member's own step is the
		// one moment its position is the same for every member (and for
		// the scalar path) — see the struct comment.
		for i := range c.curCache {
			c.curCache[i] = c.cmp.IslandCacheStats(i)
		}
	}
	c.accN++
	c.haveMeas = true
	c.interval++
	res.Sim = r
	for _, h := range c.stepHooks {
		h(res)
	}
	return res
}

// Run advances n intervals, returning every step result. Results are cloned
// out of the per-step scratch buffers, so the slice is safe to keep.
func (c *CPM) Run(n int) []StepResult {
	out := make([]StepResult, n)
	for i := range out {
		out[i] = c.Step().Clone()
	}
	return out
}
