package core

import (
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

// Robustness under injected faults: the point of formal feedback control
// over open-loop heuristics (§II-D) is predictable behaviour when the
// models are wrong or parts fail, so we test exactly that end to end.

// runFaulted runs the default-mix CPM at an 80% budget under a fault plan
// and returns (mean power, budget).
func runFaulted(t *testing.T, plan *FaultPlan) (mean, budget float64) {
	t.Helper()
	cfg, cal := calibrated(t, workload.Mix1())
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	budget = cal.BudgetW(0.8)
	c, err := New(cmp, Config{BudgetW: budget, Transducers: cal.Transducers, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(140)
	const n = 300
	for k := 0; k < n; k++ {
		mean += c.Step().Sim.ChipPowerW / n
	}
	return mean, budget
}

func TestRobustToSensorNoise(t *testing.T) {
	// 15% multiplicative noise on every utilization reading: the integral
	// action must average it out; mean tracking error stays small.
	mean, budget := runFaulted(t, &FaultPlan{UtilNoiseStd: 0.15, StuckIsland: -1, Seed: 5})
	if err := math.Abs(mean-budget) / budget; err > 0.06 {
		t.Errorf("mean tracking error under 15%% sensor noise = %.1f%%, want <= 6%%", err*100)
	}
}

func TestSensorBiasShiftsSteadyStatePredictably(t *testing.T) {
	// A mis-calibrated counter reading 10% high makes the controller think
	// the island is hotter than it is → it settles *below* the budget (the
	// safe direction), with bounded offset. Reading 10% low inverts that.
	low, budget := runFaulted(t, &FaultPlan{UtilBiasMult: 1.10, StuckIsland: -1, Seed: 6})
	high, _ := runFaulted(t, &FaultPlan{UtilBiasMult: 0.90, StuckIsland: -1, Seed: 6})
	if low >= high {
		t.Errorf("over-reading sensor should under-consume: %.1f W vs %.1f W", low, high)
	}
	for name, v := range map[string]float64{"bias+10%": low, "bias-10%": high} {
		if off := math.Abs(v-budget) / budget; off > 0.15 {
			t.Errorf("%s: steady-state offset %.1f%%, want bounded <= 15%%", name, off*100)
		}
	}
}

func TestStuckActuatorIsContained(t *testing.T) {
	// Island 0's regulator fails pinned at the top level. The GPM observes
	// its (estimated) consumption and the remaining islands absorb the
	// budget shortfall; the chip must not run away.
	mean, budget := runFaulted(t, &FaultPlan{StuckIsland: 0, StuckLevel: 7, Seed: 7})
	if mean > budget*1.12 {
		t.Errorf("chip power %.1f W with a stuck island, want <= %.1f W (budget %.1f +12%%)",
			mean, budget*1.12, budget)
	}
	// And the healthy islands must actually have been throttled below what
	// they'd consume in a fault-free run at the same budget.
	clean, _ := runFaulted(t, &FaultPlan{StuckIsland: -1, Seed: 7})
	if mean < clean*0.7 {
		t.Errorf("implausible collapse under single actuator fault: %.1f W vs %.1f W clean", mean, clean)
	}
}

func TestSurvivesDroppedGPMInvocations(t *testing.T) {
	// Half the GPM invocations never happen. Because the PICs keep capping
	// at their last provisions — the §II-C decoupling — the chip still
	// tracks the budget, just with staler allocations.
	mean, budget := runFaulted(t, &FaultPlan{DropGPMProb: 0.5, StuckIsland: -1, Seed: 8})
	if err := math.Abs(mean-budget) / budget; err > 0.07 {
		t.Errorf("mean tracking error with 50%% dropped GPM invocations = %.1f%%, want <= 7%%", err*100)
	}
}

// TestPlantGainDriftWithinCertifiedRange verifies the §II-D guarantee end
// to end: the controller, tuned and calibrated on the nominal chip, remains
// stable when deployed on a chip whose power responds twice as strongly to
// frequency (g = 2 < the certified bound). Transducers are recalibrated on
// the drifted chip (sensing tracks the silicon; the PID gains do not).
func TestPlantGainDriftWithinCertifiedRange(t *testing.T) {
	mkCfg := func(scale float64) sim.Config {
		cfg := sim.DefaultConfig(workload.Mix1())
		cfg.Parallel = true
		m := power.DefaultModel()
		dyn, err := power.NewDynamicModel(10*scale, m.Table.Max(), 0.10, power.DefaultUnitWeights)
		if err != nil {
			t.Fatal(err)
		}
		m.Dynamic = dyn
		cfg.Power = m
		return cfg
	}
	for _, scale := range []float64{1.0, 1.6} {
		cfg := mkCfg(scale)
		cal, err := Calibrate(cfg, 40, 160)
		if err != nil {
			t.Fatal(err)
		}
		cmp, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		budget := cal.BudgetW(0.8)
		c, err := New(cmp, Config{BudgetW: budget, Transducers: cal.Transducers})
		if err != nil {
			t.Fatal(err)
		}
		c.Run(140)
		var mean, sq float64
		const n = 200
		for k := 0; k < n; k++ {
			p := c.Step().Sim.ChipPowerW
			mean += p / n
			sq += p * p / n
		}
		sd := math.Sqrt(math.Max(0, sq-mean*mean))
		if err := math.Abs(mean-budget) / budget; err > 0.06 {
			t.Errorf("gain scale %.1f: tracking error %.1f%%", scale, err*100)
		}
		// No oscillatory blow-up: power fluctuation stays workload-sized.
		if sd/mean > 0.12 {
			t.Errorf("gain scale %.1f: power fluctuation %.1f%% of mean — loop ringing?", scale, sd/mean*100)
		}
	}
}
