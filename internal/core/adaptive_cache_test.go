package core

import (
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/pic"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/snapshot"
	"github.com/cpm-sim/cpm/internal/workload"
)

// TestCacheSignalsReachPolicy runs a cache-aware CPM and checks that the GPM
// observations carry per-island cache deltas: positive L2 activity on a live
// chip, deltas (not cumulative counters) across epochs, and nothing at all
// for a policy that never asked.
func TestCacheSignalsReachPolicy(t *testing.T) {
	cfg, cal := calibrated(t, workload.Mix1())
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var epochs [][]gpm.IslandObs
	c, err := New(cmp, Config{
		BudgetW:     cal.BudgetW(0.7),
		Transducers: cal.Transducers,
		Policy:      &gpm.CacheAware{},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Manager().AddProvisionHook(func(_ float64, obs []gpm.IslandObs, _ []float64) {
		cp := make([]gpm.IslandObs, len(obs))
		copy(cp, obs)
		epochs = append(epochs, cp)
	})
	c.Run(90) // 4 GPM invocations (first boundary skipped: no measurements)
	if len(epochs) < 3 {
		t.Fatalf("expected ≥ 3 GPM epochs, saw %d", len(epochs))
	}
	for e, obs := range epochs {
		for _, o := range obs {
			if o.L1DAccesses <= 0 {
				t.Fatalf("epoch %d island %d: no L1D activity (%v) on a live chip", e, o.Island, o.L1DAccesses)
			}
			if o.L2Misses > o.L2Accesses {
				t.Fatalf("epoch %d island %d: L2 misses %v exceed accesses %v", e, o.Island, o.L2Misses, o.L2Accesses)
			}
		}
	}
	// Deltas, not cumulative counters: successive epochs must be the same
	// order of magnitude, not monotonically growing sums.
	first, last := epochs[0][0].L1DAccesses, epochs[len(epochs)-1][0].L1DAccesses
	if last > first*float64(len(epochs))*2 {
		t.Errorf("L1D accesses grew %v → %v across %d epochs: cumulative counters leaked through", first, last, len(epochs))
	}

	// A policy that never asked pays nothing and sees zeros.
	cmp2, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := New(cmp2, Config{BudgetW: cal.BudgetW(0.7), Transducers: cal.Transducers})
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	c2.Manager().AddProvisionHook(func(_ float64, obs []gpm.IslandObs, _ []float64) {
		seen = true
		for _, o := range obs {
			if o.L2Accesses != 0 || o.L1DAccesses != 0 {
				t.Fatalf("performance-aware CPM observed cache deltas: %+v", o)
			}
		}
	})
	c2.Run(45)
	if !seen {
		t.Fatal("provision hook never fired")
	}
}

// TestAdaptiveCPMWiring checks Config.Adaptive reaches every PIC and that
// the estimator actually runs under closed-loop excitation.
func TestAdaptiveCPMWiring(t *testing.T) {
	cfg, cal := calibrated(t, workload.Mix1())
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cmp, Config{
		BudgetW:     cal.BudgetW(0.8),
		Transducers: cal.Transducers,
		Adaptive:    &pic.AdaptiveConfig{SeedGain: cal.PlantGain},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cmp.NumIslands(); i++ {
		if !c.PIC(i).Adaptive() {
			t.Fatalf("island %d PIC not adaptive", i)
		}
	}
	c.Run(200)
	for i := 0; i < cmp.NumIslands(); i++ {
		est, scale := c.PIC(i).PlantGainEstimate(), c.PIC(i).GainScale()
		if math.IsNaN(est) || est <= 0 {
			t.Errorf("island %d plant-gain estimate %v", i, est)
		}
		if math.IsNaN(scale) || scale <= 0 {
			t.Errorf("island %d gain scale %v", i, scale)
		}
	}
}

// TestSnapshotRoundTripCacheAdaptive snapshots a cache-aware + adaptive CPM
// mid-run and checks the restored instance replays bit-identically — the
// latches and estimator state are part of the Version 2 snapshot.
func TestSnapshotRoundTripCacheAdaptive(t *testing.T) {
	cfg, cal := calibrated(t, workload.Mix1())
	build := func() *CPM {
		cmp, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(cmp, Config{
			BudgetW:     cal.BudgetW(0.7),
			Transducers: cal.Transducers,
			Policy:      &gpm.CacheAware{},
			Adaptive:    &pic.AdaptiveConfig{SeedGain: cal.PlantGain},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	src := build()
	src.Run(70) // past two GPM boundaries so the cache latch is non-zero

	e := snapshot.NewEncoder()
	if err := src.Snapshot(e); err != nil {
		t.Fatal(err)
	}
	dst := build()
	if err := dst.Restore(snapshot.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 60; k++ {
		a, b := src.Step(), dst.Step()
		if a.Sim.ChipPowerW != b.Sim.ChipPowerW || a.Sim.TotalBIPS != b.Sim.TotalBIPS {
			t.Fatalf("step %d diverged: power %v vs %v, BIPS %v vs %v",
				k, a.Sim.ChipPowerW, b.Sim.ChipPowerW, a.Sim.TotalBIPS, b.Sim.TotalBIPS)
		}
		for i := range a.AllocW {
			if a.AllocW[i] != b.AllocW[i] {
				t.Fatalf("step %d island %d alloc diverged: %v vs %v", k, i, a.AllocW[i], b.AllocW[i])
			}
		}
	}

	// Presence mismatch must be rejected, not silently misparsed.
	plain, err := New(mustSim(t, cfg), Config{BudgetW: cal.BudgetW(0.7), Transducers: cal.Transducers, Policy: &gpm.CacheAware{}})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Restore(snapshot.NewDecoder(e.Bytes())); err == nil {
		t.Error("restoring an adaptive snapshot into a fixed-gain CPM should fail")
	}
}

func mustSim(t *testing.T, cfg sim.Config) *sim.CMP {
	t.Helper()
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cmp
}
