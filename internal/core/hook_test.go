package core

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

func TestStepHookReceivesManagedResults(t *testing.T) {
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Seed = 5
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cmp, Config{BudgetW: 30, UseOraclePower: true})
	if err != nil {
		t.Fatal(err)
	}
	var got []StepResult
	// StepResults are retained across steps, so the hook clones them out of
	// the controller's scratch buffers.
	c.SetStepHook(func(r StepResult) { got = append(got, r.Clone()) })

	const n = 45 // spans two GPM epochs with the default period of 20
	want := c.Run(n)
	if len(got) != n {
		t.Fatalf("hook fired %d times over %d steps", len(got), n)
	}
	var invocations int
	for k := range want {
		if got[k].Sim.ChipPowerW != want[k].Sim.ChipPowerW || got[k].GPMInvoked != want[k].GPMInvoked {
			t.Fatalf("step %d: hook saw %+v, Step returned %+v", k, got[k], want[k])
		}
		if got[k].GPMInvoked {
			invocations++
		}
	}
	if invocations == 0 {
		t.Error("no GPM invocation surfaced through the hook")
	}

	c.SetStepHook(nil)
	c.Step()
	if len(got) != n {
		t.Error("detached hook still fired")
	}
}

// TestStepHookFanOut pins the Add/Set semantics: Add subscribes alongside
// existing hooks, Set replaces them all, Set(nil) detaches all.
func TestStepHookFanOut(t *testing.T) {
	cfg := sim.DefaultConfig(workload.Mix1())
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cmp, Config{BudgetW: 30, UseOraclePower: true})
	if err != nil {
		t.Fatal(err)
	}
	var a, b, s int
	c.AddStepHook(func(StepResult) { a++ })
	c.AddStepHook(func(StepResult) { b++ })
	c.AddStepHook(nil) // ignored
	c.Step()
	if a != 1 || b != 1 {
		t.Fatalf("added hooks fired %d/%d times, want 1/1", a, b)
	}
	c.SetStepHook(func(StepResult) { s++ })
	c.Step()
	if a != 1 || b != 1 || s != 1 {
		t.Fatalf("after Set: fired %d/%d/%d, want 1/1/1 (Set must replace)", a, b, s)
	}
	c.SetStepHook(nil)
	c.Step()
	if a != 1 || b != 1 || s != 1 {
		t.Error("Set(nil) left a hook attached")
	}
}

func TestPICAccessor(t *testing.T) {
	cfg := sim.DefaultConfig(workload.Mix1())
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cmp, Config{BudgetW: 30, UseOraclePower: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cmp.NumIslands(); i++ {
		if c.PIC(i) == nil {
			t.Fatalf("PIC(%d) is nil", i)
		}
	}
}
