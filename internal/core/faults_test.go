package core

import (
	"math"
	"testing"
)

func TestFaultPlanEnabled(t *testing.T) {
	cases := []struct {
		plan FaultPlan
		want bool
	}{
		{FaultPlan{StuckIsland: -1}, false},
		{FaultPlan{StuckIsland: -1, UtilBiasMult: 1}, false},
		{FaultPlan{StuckIsland: -1, UtilNoiseStd: 0.1}, true},
		{FaultPlan{StuckIsland: -1, UtilBiasMult: 1.2}, true},
		{FaultPlan{StuckIsland: 0}, true},
		{FaultPlan{StuckIsland: -1, DropGPMProb: 0.5}, true},
	}
	for i, c := range cases {
		if got := c.plan.enabled(); got != c.want {
			t.Errorf("case %d: enabled = %v, want %v (%+v)", i, got, c.want, c.plan)
		}
	}
}

func TestCorruptUtilClampsAndBiases(t *testing.T) {
	// Pure bias, no noise: deterministic scaling with clamping.
	f := newFaultState(FaultPlan{UtilBiasMult: 1.5, StuckIsland: -1})
	if got := f.corruptUtil(0.4); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("biased util = %v, want 0.6", got)
	}
	if got := f.corruptUtil(0.9); got != 1 {
		t.Errorf("util above 1 should clamp, got %v", got)
	}
	down := newFaultState(FaultPlan{UtilBiasMult: -1, StuckIsland: -1})
	if got := down.corruptUtil(0.5); got != 0 {
		t.Errorf("negative product should clamp to 0, got %v", got)
	}
	// Zero bias in the plan defaults to 1 (no bias).
	neutral := newFaultState(FaultPlan{UtilNoiseStd: 0, StuckIsland: -1})
	if got := neutral.corruptUtil(0.37); got != 0.37 {
		t.Errorf("neutral plan changed the reading: %v", got)
	}
}

func TestCorruptUtilNoiseIsDeterministicInSeed(t *testing.T) {
	a := newFaultState(FaultPlan{UtilNoiseStd: 0.2, StuckIsland: -1, Seed: 9})
	b := newFaultState(FaultPlan{UtilNoiseStd: 0.2, StuckIsland: -1, Seed: 9})
	for i := 0; i < 50; i++ {
		if a.corruptUtil(0.5) != b.corruptUtil(0.5) {
			t.Fatal("equal seeds diverged")
		}
	}
	c := newFaultState(FaultPlan{UtilNoiseStd: 0.2, StuckIsland: -1, Seed: 10})
	diff := 0
	for i := 0; i < 50; i++ {
		if a.corruptUtil(0.5) != c.corruptUtil(0.5) {
			diff++
		}
	}
	if diff < 45 {
		t.Error("different seeds should produce different noise")
	}
}

func TestOverrideLevelAndDropGPM(t *testing.T) {
	f := newFaultState(FaultPlan{StuckIsland: 2, StuckLevel: 5})
	if f.overrideLevel(2, 7) != 5 {
		t.Error("stuck island must ignore the commanded level")
	}
	if f.overrideLevel(1, 7) != 7 {
		t.Error("healthy island must keep its command")
	}
	never := newFaultState(FaultPlan{StuckIsland: -1})
	for i := 0; i < 20; i++ {
		if never.dropGPM() {
			t.Fatal("zero drop probability fired")
		}
	}
	always := newFaultState(FaultPlan{StuckIsland: -1, DropGPMProb: 1})
	for i := 0; i < 20; i++ {
		if !always.dropGPM() {
			t.Fatal("unit drop probability did not fire")
		}
	}
}
