package core

import (
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/stats"
	"github.com/cpm-sim/cpm/internal/workload"
)

// calOnce caches the default-mix calibration: it is the expensive common
// fixture of most tests here.
var calCache = map[string]Calibration{}

func calibrated(t *testing.T, mix workload.Mix) (sim.Config, Calibration) {
	t.Helper()
	cfg := sim.DefaultConfig(mix)
	cfg.Parallel = true
	if c, ok := calCache[mix.Name]; ok {
		return cfg, c
	}
	cal, err := Calibrate(cfg, 60, 240)
	if err != nil {
		t.Fatal(err)
	}
	calCache[mix.Name] = cal
	return cfg, cal
}

func newCPM(t *testing.T, budgetFrac float64) (*CPM, Calibration) {
	t.Helper()
	cfg, cal := calibrated(t, workload.Mix1())
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cmp, Config{
		BudgetW:     cal.BudgetW(budgetFrac),
		Transducers: cal.Transducers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, cal
}

func TestCalibrationQuality(t *testing.T) {
	_, cal := calibrated(t, workload.Mix1())
	if cal.UnmanagedPowerW <= 0 || cal.UnmanagedBIPS <= 0 {
		t.Fatalf("degenerate unmanaged baseline: %+v", cal)
	}
	for i, r2 := range cal.R2 {
		if r2 < 0.80 {
			t.Errorf("island %d transducer R² = %.3f, want strong linearity (paper: ≈0.96)", i, r2)
		}
	}
	// The plant gain identified on this substrate should land in the same
	// family as the paper's 0.79 (island power fraction per normalized
	// frequency step).
	if cal.PlantGain < 0.3 || cal.PlantGain > 1.2 {
		t.Errorf("plant gain = %.3f, want within (0.3, 1.2) around the paper's 0.79", cal.PlantGain)
	}
	t.Logf("identified plant gain a = %.3f (paper: 0.79); transducer R² = %v", cal.PlantGain, cal.R2)
}

func TestNewValidation(t *testing.T) {
	cfg, cal := calibrated(t, workload.Mix1())
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, Config{BudgetW: 50}); err == nil {
		t.Error("nil chip should be rejected")
	}
	if _, err := New(cmp, Config{BudgetW: 0, Transducers: cal.Transducers}); err == nil {
		t.Error("zero budget should be rejected")
	}
	if _, err := New(cmp, Config{BudgetW: 50, Transducers: cal.Transducers[:1]}); err == nil {
		t.Error("transducer arity mismatch should be rejected")
	}
	if _, err := New(cmp, Config{BudgetW: 50, UseOraclePower: true}); err != nil {
		t.Errorf("oracle mode should not need transducers: %v", err)
	}
}

// The headline claim: the managed chip tracks the budget closely — within a
// few percent — while the unmanaged chip would overshoot it substantially.
func TestTracksChipBudget(t *testing.T) {
	c, cal := newCPM(t, 0.8)
	budget := cal.BudgetW(0.8)
	// Let the loop converge (2 GPM epochs), then measure.
	// Converge past the startup transient (the paper's plots likewise show
	// steady operation), then measure at two granularities: per PIC
	// interval (dominated by workload phase noise on this substrate) and
	// per GPM epoch — the granularity of the paper's Figure 10, whose 4%
	// envelope we check with a small margin.
	c.Run(120)
	var mean, worstInterval, worstEpoch float64
	epochSum, epochN := 0.0, 0
	n := 400
	for k := 0; k < n; k++ {
		r := c.Step()
		mean += r.Sim.ChipPowerW
		if over := (r.Sim.ChipPowerW - budget) / budget; over > worstInterval {
			worstInterval = over
		}
		epochSum += r.Sim.ChipPowerW
		epochN++
		if epochN == 20 {
			if over := (epochSum/20 - budget) / budget; over > worstEpoch {
				worstEpoch = over
			}
			epochSum, epochN = 0, 0
		}
	}
	mean /= float64(n)
	if math.Abs(mean-budget)/budget > 0.04 {
		t.Errorf("mean power %.1f W vs budget %.1f W: tracking error %.1f%%",
			mean, budget, 100*math.Abs(mean-budget)/budget)
	}
	if worstEpoch > 0.05 {
		t.Errorf("worst per-epoch overshoot = %.1f%%, paper's Figure 10 envelope is ≈4%%", worstEpoch*100)
	}
	if worstInterval > 0.15 {
		t.Errorf("worst per-interval overshoot = %.1f%%, want bounded phase-noise spikes", worstInterval*100)
	}
	t.Logf("mean %.1f W vs budget %.1f W; worst epoch %.2f%%, worst interval %.2f%%",
		mean, budget, worstEpoch*100, worstInterval*100)
}

func TestGPMInvokedOnSchedule(t *testing.T) {
	c, _ := newCPM(t, 0.8)
	results := c.Run(61)
	for k, r := range results {
		// First epoch (k=0) has no measurements yet; GPM fires from k=20.
		wantGPM := k > 0 && k%20 == 0
		if r.GPMInvoked != wantGPM {
			t.Errorf("interval %d: GPMInvoked = %v, want %v", k, r.GPMInvoked, wantGPM)
		}
	}
}

func TestAllocationsSumToBudget(t *testing.T) {
	c, cal := newCPM(t, 0.8)
	budget := cal.BudgetW(0.8)
	for k := 0; k < 100; k++ {
		r := c.Step()
		sum := stats.Sum(r.AllocW)
		if sum > budget+1e-6 {
			t.Fatalf("interval %d: Σalloc=%v exceeds budget %v", k, sum, budget)
		}
		// The performance-aware policy spends the whole budget.
		if r.GPMInvoked && math.Abs(sum-budget) > 1e-6 {
			t.Fatalf("interval %d: Σalloc=%v, want %v", k, sum, budget)
		}
	}
}

// Per-island tracking (Figure 8): once converged, each island's measured
// power stays near its provision.
func TestIslandsTrackProvisions(t *testing.T) {
	c, _ := newCPM(t, 0.8)
	c.Run(60)
	miss := 0
	total := 0
	for k := 0; k < 200; k++ {
		r := c.Step()
		for i, ir := range r.Sim.Islands {
			total++
			// One DVFS quantum of island power is the fundamental tracking
			// resolution.
			quantum := 0.15 * c.Chip().IslandMaxPowerW(i)
			if math.Abs(ir.PowerW-r.AllocW[i]) > quantum {
				miss++
			}
		}
	}
	if frac := float64(miss) / float64(total); frac > 0.25 {
		t.Errorf("islands off their provision %d%% of observations", int(frac*100))
	}
}

// Lowering the budget must lower both power and throughput (Figures 11/12).
func TestBudgetSweepMonotonicity(t *testing.T) {
	type point struct{ power, bips float64 }
	measure := func(frac float64) point {
		c, cal := newCPM(t, frac)
		_ = cal
		c.Run(60)
		var p point
		for k := 0; k < 120; k++ {
			r := c.Step()
			p.power += r.Sim.ChipPowerW
			p.bips += r.Sim.TotalBIPS
		}
		p.power /= 120
		p.bips /= 120
		return p
	}
	lo := measure(0.55)
	hi := measure(0.90)
	if lo.power >= hi.power {
		t.Errorf("power at 55%% budget (%v) should be below 90%% (%v)", lo.power, hi.power)
	}
	if lo.bips >= hi.bips {
		t.Errorf("throughput at 55%% budget (%v) should be below 90%% (%v)", lo.bips, hi.bips)
	}
}

func TestOracleModeTracksAtLeastAsWell(t *testing.T) {
	cfg, cal := calibrated(t, workload.Mix1())
	budget := cal.BudgetW(0.8)
	run := func(oracle bool) float64 {
		cmp, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := New(cmp, Config{
			BudgetW:        budget,
			Transducers:    cal.Transducers,
			UseOraclePower: oracle,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.Run(60)
		var sse float64
		for k := 0; k < 120; k++ {
			r := c.Step()
			e := (r.Sim.ChipPowerW - budget) / budget
			sse += e * e
		}
		return sse
	}
	trans := run(false)
	oracle := run(true)
	// The transducer is a proxy; oracle feedback should not be wildly
	// worse. (It can be slightly worse through quantization luck.)
	if oracle > trans*3 {
		t.Errorf("oracle tracking SSE (%v) much worse than transducer (%v)?", oracle, trans)
	}
	t.Logf("tracking SSE: transducer=%.5f oracle=%.5f", trans, oracle)
}

func TestSetBudgetTakesEffect(t *testing.T) {
	c, cal := newCPM(t, 0.9)
	c.Run(80)
	c.SetBudgetW(cal.BudgetW(0.6))
	c.Run(80) // converge to the new budget
	var mean float64
	for k := 0; k < 60; k++ {
		mean += c.Step().Sim.ChipPowerW
	}
	mean /= 60
	if math.Abs(mean-cal.BudgetW(0.6))/cal.BudgetW(0.6) > 0.08 {
		t.Errorf("after budget change, mean power %v vs new budget %v", mean, cal.BudgetW(0.6))
	}
}

func TestEqualSharePolicyAlsoTracks(t *testing.T) {
	cfg, cal := calibrated(t, workload.Mix1())
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(cmp, Config{
		BudgetW:     cal.BudgetW(0.8),
		Policy:      gpm.EqualShare{},
		Transducers: cal.Transducers,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(60)
	var mean float64
	for k := 0; k < 100; k++ {
		mean += c.Step().Sim.ChipPowerW
	}
	mean /= 100
	// Equal share cannot reallocate between islands, so tracking is looser
	// (some islands can't spend their share), but power must not exceed
	// budget materially.
	if mean > cal.BudgetW(0.8)*1.05 {
		t.Errorf("equal-share mean power %v exceeds budget %v", mean, cal.BudgetW(0.8))
	}
}

func TestRunUnmanaged(t *testing.T) {
	cfg, _ := calibrated(t, workload.Mix1())
	pTop, bTop, err := RunUnmanaged(cfg, -1, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	pLow, bLow, err := RunUnmanaged(cfg, 0, 40, 40)
	if err != nil {
		t.Fatal(err)
	}
	if pLow >= pTop || bLow >= bTop {
		t.Errorf("unmanaged extremes inverted: (%v,%v) vs (%v,%v)", pLow, bLow, pTop, bTop)
	}
	if _, _, err := RunUnmanaged(cfg, -1, 0, 0); err == nil {
		t.Error("zero measurement intervals should error")
	}
}

func TestCalibrateValidation(t *testing.T) {
	cfg := sim.DefaultConfig(workload.Mix1())
	if _, err := Calibrate(cfg, 0, 1); err == nil {
		t.Error("too few measurement intervals should error")
	}
}
