package core

import (
	"github.com/cpm-sim/cpm/internal/cache"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/snapshot"
)

// Snapshot appends the complete dynamic state of the managed chip: the chip
// itself, every per-island PIC, the GPM (budget and policy history), the
// controller's allocation and measurement latches, the epoch accumulators,
// and the fault-injection RNG position. Configuration (gains, transducers,
// periods) is construction-time and not captured; restore requires a CPM
// built with an equivalent Config.
func (c *CPM) Snapshot(e *snapshot.Encoder) error {
	e.Tag(snapshot.TagCPM)
	if err := c.cmp.Snapshot(e); err != nil {
		return err
	}
	e.Int(len(c.pic))
	for _, p := range c.pic {
		p.Snapshot(e)
	}
	c.mgr.Snapshot(e)
	e.F64s(c.alloc)
	e.Bool(c.haveMeas)
	e.F64s(c.lastUtil)
	e.F64s(c.lastPowW)
	e.F64s(c.accPow)
	e.F64s(c.accBIPS)
	e.Int(c.accN)
	e.Int(c.interval)
	e.Bool(c.faults != nil)
	if c.faults != nil {
		e.U64(c.faults.rng.State())
	}
	e.Bool(c.wantCache)
	if c.wantCache {
		for _, s := range c.prevCache {
			encodeCacheStats(e, s)
		}
		for _, s := range c.curCache {
			encodeCacheStats(e, s)
		}
	}
	return nil
}

func encodeCacheStats(e *snapshot.Encoder, s sim.CacheStats) {
	for _, cs := range [...]cache.Stats{s.L1I, s.L1D, s.L2} {
		e.U64(cs.Accesses)
		e.U64(cs.Hits)
		e.U64(cs.Misses)
		e.U64(cs.Evictions)
	}
}

func decodeCacheStats(d *snapshot.Decoder) sim.CacheStats {
	var s sim.CacheStats
	for _, cs := range [...]*cache.Stats{&s.L1I, &s.L1D, &s.L2} {
		cs.Accesses = d.U64()
		cs.Hits = d.U64()
		cs.Misses = d.U64()
		cs.Evictions = d.U64()
	}
	return s
}

// Restore reads state written by Snapshot into a CPM constructed with an
// equivalent chip and Config. On error the receiver may be partially
// written and must be discarded.
func (c *CPM) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagCPM)
	if err := d.Err(); err != nil {
		return err
	}
	if err := c.cmp.Restore(d); err != nil {
		return err
	}
	nPIC := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nPIC != len(c.pic) {
		return snapshot.ShapeErrorf("snapshot has %d PICs, controller has %d", nPIC, len(c.pic))
	}
	for _, p := range c.pic {
		if err := p.Restore(d); err != nil {
			return err
		}
	}
	if err := c.mgr.Restore(d); err != nil {
		return err
	}
	alloc := d.F64s()
	haveMeas := d.Bool()
	lastUtil := d.F64s()
	lastPowW := d.F64s()
	accPow := d.F64s()
	accBIPS := d.F64s()
	accN := d.Int()
	interval := d.Int()
	hadFaults := d.Bool()
	var faultRNG uint64
	if hadFaults {
		faultRNG = d.U64()
	}
	hadCache := d.Bool()
	var prevCache, curCache []sim.CacheStats
	if hadCache {
		prevCache = make([]sim.CacheStats, nPIC)
		for i := range prevCache {
			prevCache[i] = decodeCacheStats(d)
		}
		curCache = make([]sim.CacheStats, nPIC)
		for i := range curCache {
			curCache[i] = decodeCacheStats(d)
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	n := len(c.alloc)
	for _, s := range [][]float64{alloc, lastUtil, lastPowW, accPow, accBIPS} {
		if len(s) != n {
			return snapshot.ShapeErrorf("snapshot island arrays sized %d, controller has %d islands", len(s), n)
		}
	}
	if accN < 0 || interval < 0 {
		return snapshot.ShapeErrorf("negative counters accN=%d interval=%d", accN, interval)
	}
	if hadFaults != (c.faults != nil) {
		return snapshot.ShapeErrorf("snapshot fault-plan presence %v, controller %v", hadFaults, c.faults != nil)
	}
	if hadCache != c.wantCache {
		return snapshot.ShapeErrorf("snapshot cache-latch presence %v, controller %v", hadCache, c.wantCache)
	}
	c.alloc = alloc
	c.haveMeas = haveMeas
	copy(c.lastUtil, lastUtil)
	copy(c.lastPowW, lastPowW)
	copy(c.accPow, accPow)
	copy(c.accBIPS, accBIPS)
	c.accN = accN
	c.interval = interval
	if c.faults != nil {
		c.faults.rng.SetState(faultRNG)
	}
	if c.wantCache {
		copy(c.prevCache, prevCache)
		copy(c.curCache, curCache)
	}
	return nil
}
