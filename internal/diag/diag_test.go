package diag

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cpm-sim/cpm/internal/metrics"
)

// testRegistry builds a registry with one finite gauge and one NaN gauge —
// the shape the export-boundary sanitization has to survive.
func testRegistry() *metrics.Registry {
	reg := metrics.NewRegistry()
	g := reg.GaugeVec("cpm_test_gauge", "A test gauge.", "run")
	g.With("a").Set(1.5)
	g.With("b").Set(math.NaN())
	return reg
}

func TestAddFlagsBinds(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := AddFlags(fs)
	if err := fs.Parse([]string{"-metrics", "m.json", "-pprof", "localhost:0", "-trace", "t.out"}); err != nil {
		t.Fatal(err)
	}
	if f.MetricsPath != "m.json" || f.PprofAddr != "localhost:0" || f.TracePath != "t.out" {
		t.Errorf("flags not bound: %+v", f)
	}
}

func TestRegistryGatedOnMetricsFlag(t *testing.T) {
	if reg := (&Flags{}).Registry(); reg != nil {
		t.Error("empty MetricsPath should yield a nil registry")
	}
	if reg := (&Flags{MetricsPath: "-"}).Registry(); reg == nil {
		t.Error("MetricsPath set but Registry() == nil")
	}
}

func TestNilFlagsAreSafe(t *testing.T) {
	var f *Flags
	if reg := f.Registry(); reg != nil {
		t.Error("nil Flags should yield a nil registry")
	}
	stop, err := f.Start(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if err := f.WriteMetrics(testRegistry(), io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestWriteMetricsStdout(t *testing.T) {
	var out bytes.Buffer
	f := &Flags{MetricsPath: "-"}
	if err := f.WriteMetrics(testRegistry(), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cpm_test_gauge") {
		t.Errorf("stdout export missing gauge:\n%s", out.String())
	}
	if _, err := metrics.ParsePrometheus(bytes.NewReader(out.Bytes())); err != nil {
		t.Errorf("stdout export is not Prometheus text format: %v", err)
	}
}

func TestWriteMetricsSelectsFormatByExtension(t *testing.T) {
	dir := t.TempDir()

	promPath := filepath.Join(dir, "telemetry.prom")
	f := &Flags{MetricsPath: promPath}
	if err := f.WriteMetrics(testRegistry(), io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(promPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := metrics.ParsePrometheus(bytes.NewReader(raw)); err != nil {
		t.Errorf(".prom export is not Prometheus text format: %v\n%s", err, raw)
	}
	if !bytes.Contains(raw, []byte("NaN")) {
		t.Errorf("Prometheus text should carry the NaN literal:\n%s", raw)
	}

	jsonPath := filepath.Join(dir, "telemetry.json")
	f = &Flags{MetricsPath: jsonPath}
	if err := f.WriteMetrics(testRegistry(), io.Discard); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Errorf(".json export is not valid JSON: %v\n%s", err, raw)
	}
	if !bytes.Contains(raw, []byte(`"value": null`)) {
		t.Errorf("NaN gauge should encode as null in JSON:\n%s", raw)
	}
}

func TestWriteMetricsNoOpWithoutFlag(t *testing.T) {
	var out bytes.Buffer
	f := &Flags{}
	if err := f.WriteMetrics(testRegistry(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("no -metrics flag but output written:\n%s", out.String())
	}
	// A nil registry (flag given but no runs recorded) is also a no-op.
	f = &Flags{MetricsPath: "-"}
	if err := f.WriteMetrics(nil, &out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("nil registry but output written:\n%s", out.String())
	}
}

func TestStartTraceCapture(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.trace")
	f := &Flags{TracePath: path}
	stop, err := f.Start(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_ = i * i
	}
	stop()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() == 0 {
		t.Error("trace capture is empty")
	}
}
