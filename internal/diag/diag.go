// Package diag wires the shared diagnostics flags of the CLIs: -metrics
// (telemetry export to a file or stdout), -pprof (a net/http/pprof
// listener) and -trace (a runtime/trace capture). Both cpmsim and cpmsweep
// bind the same flag set, so tooling works identically against either.
package diag

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers the /debug/pprof handlers
	"os"
	"runtime/trace"
	"strings"

	"github.com/cpm-sim/cpm/internal/metrics"
)

// Flags holds the parsed diagnostics flags.
type Flags struct {
	// MetricsPath is where telemetry is exported after the run: a file
	// path ("-" for stdout), JSON when it ends in .json, Prometheus text
	// format otherwise. Empty disables telemetry collection.
	MetricsPath string
	// PprofAddr is the listen address for the net/http/pprof server
	// (e.g. "localhost:6060"); empty disables it.
	PprofAddr string
	// TracePath is the runtime/trace output file; empty disables tracing.
	TracePath string
}

// AddFlags binds the diagnostics flags onto fs and returns the destination.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.MetricsPath, "metrics", "", "export run telemetry to this file after the run (\"-\" = stdout, .json = JSON, else Prometheus text)")
	fs.StringVar(&f.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.StringVar(&f.TracePath, "trace", "", "write a runtime/trace capture to this file")
	return f
}

// Registry returns the registry runs should record into, or nil when
// -metrics was not given (callers skip attaching observers entirely, so the
// flagless path stays untouched).
func (f *Flags) Registry() *metrics.Registry {
	if f == nil || f.MetricsPath == "" {
		return nil
	}
	return metrics.NewRegistry()
}

// Start brings up the requested diagnostics: the pprof listener (on a
// goroutine, for the life of the process) and the runtime/trace capture.
// The returned stop function ends the trace and must be called before the
// process exits; it is safe to call when no trace was requested.
func (f *Flags) Start(logw io.Writer) (stop func(), err error) {
	if f == nil {
		return func() {}, nil
	}
	if f.PprofAddr != "" {
		ln := f.PprofAddr
		go func() {
			// DefaultServeMux carries the pprof handlers via the blank import.
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintf(logw, "pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(logw, "pprof listening on http://%s/debug/pprof/\n", ln)
	}
	if f.TracePath == "" {
		return func() {}, nil
	}
	tf, err := os.Create(f.TracePath)
	if err != nil {
		return nil, err
	}
	if err := trace.Start(tf); err != nil {
		tf.Close()
		return nil, err
	}
	return func() {
		trace.Stop()
		if err := tf.Close(); err != nil {
			fmt.Fprintf(logw, "closing trace: %v\n", err)
		}
	}, nil
}

// WriteMetrics exports the registry to MetricsPath: stdout for "-", JSON
// for .json paths, Prometheus text format otherwise. No-op when -metrics
// was not given or the registry is nil.
func (f *Flags) WriteMetrics(reg *metrics.Registry, stdout io.Writer) error {
	if f == nil || f.MetricsPath == "" || reg == nil {
		return nil
	}
	write := reg.WritePrometheus
	if strings.HasSuffix(f.MetricsPath, ".json") {
		write = reg.WriteJSON
	}
	if f.MetricsPath == "-" {
		return write(stdout)
	}
	file, err := os.Create(f.MetricsPath)
	if err != nil {
		return err
	}
	if err := write(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
