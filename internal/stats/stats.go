// Package stats provides the small statistical toolkit used throughout the
// CPM simulator: summary statistics, linear regression with goodness-of-fit,
// and deterministic pseudo-random streams.
//
// Everything in this package is allocation-conscious and deterministic: the
// random number generator is a splitmix64 stream keyed by an explicit seed so
// that simulations are reproducible bit-for-bit regardless of execution order
// (the parallel simulator executor depends on this).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by estimators that need more samples than
// they were given.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the population variance of xs (division by n, not n-1).
// It returns 0 for slices with fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It does not modify xs.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrInsufficientData
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range")
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if len(ys) == 1 {
		return ys[0], nil
	}
	rank := p / 100 * float64(len(ys)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return ys[lo], nil
	}
	frac := rank - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac, nil
}

// Summary holds the common descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs in a single pass.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if len(xs) == 0 {
		s.Min, s.Max = 0, 0
		return s
	}
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumSq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(len(xs))
	s.Mean = sum / n
	v := sumSq/n - s.Mean*s.Mean
	if v < 0 {
		v = 0 // guard against catastrophic cancellation
	}
	s.StdDev = math.Sqrt(v)
	return s
}

// LinFit is the result of a simple least-squares linear regression
// y = Slope*x + Intercept.
type LinFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination of the fit in [0, 1]
	// (1 when the fit is exact; 0 when it explains nothing).
	R2 float64
}

// Predict evaluates the fitted line at x.
func (f LinFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// LinReg fits y = a*x + b by ordinary least squares and reports R².
// It requires at least two points and non-degenerate x values.
func LinReg(xs, ys []float64) (LinFit, error) {
	if len(xs) != len(ys) {
		return LinFit{}, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return LinFit{}, ErrInsufficientData
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinFit{}, errors.New("stats: degenerate x values")
	}
	fit := LinFit{}
	fit.Slope = (n*sxy - sx*sy) / den
	fit.Intercept = (sy - fit.Slope*sx) / n

	// R² = 1 - SS_res/SS_tot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		e := ys[i] - fit.Predict(xs[i])
		ssRes += e * e
		d := ys[i] - meanY
		ssTot += d * d
	}
	switch {
	case ssTot == 0 && ssRes == 0:
		fit.R2 = 1
	case ssTot == 0:
		fit.R2 = 0
	default:
		fit.R2 = 1 - ssRes/ssTot
		if fit.R2 < 0 {
			fit.R2 = 0
		}
	}
	return fit, nil
}

// MAPE returns the mean absolute percentage error between predictions and
// actuals, ignoring points where the actual value is zero.
func MAPE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, errors.New("stats: mismatched sample lengths")
	}
	s, n := 0.0, 0
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		s += math.Abs((predicted[i] - actual[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0, ErrInsufficientData
	}
	return s / float64(n) * 100, nil
}
