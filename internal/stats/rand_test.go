package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a := NewRand(7)
	b := NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestRandDistinctSeeds(t *testing.T) {
	a := NewRand(1)
	b := NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between distinct seeds", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	base := NewRand(99)
	d1 := base.Derive(1)
	d2 := base.Derive(2)
	d1again := base.Derive(1)
	if d1.Uint64() != d1again.Uint64() {
		t.Error("Derive is not a pure function of keys")
	}
	if d1.Uint64() == d2.Uint64() {
		t.Error("different keys should give different streams")
	}
	// Derive must not perturb the parent.
	before := NewRand(99).Uint64()
	if base.Uint64() != before {
		t.Error("Derive mutated the parent stream")
	}
}

func TestDeriveSeedMatchesDerive(t *testing.T) {
	base := NewRand(123)
	viaDerive := base.Derive(4, 5).Uint64()
	viaSeed := NewRand(DeriveSeed(123, 4, 5)).Uint64()
	if viaDerive != viaSeed {
		t.Error("DeriveSeed disagrees with Derive")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64MeanVariance(t *testing.T) {
	r := NewRand(11)
	n := 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ≈0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ≈%.4f", variance, 1.0/12)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRand(21)
	n := 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ≈10", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Errorf("normal sd = %v, want ≈2", sd)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(31)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(3)
		if v < 0 {
			t.Fatal("exponential draw negative")
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-3) > 0.1 {
		t.Errorf("exponential mean = %v, want ≈3", mean)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRand(5)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(8)
	p := make([]int, 20)
	r.Perm(p)
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

// Property: Range(lo, hi) stays within [lo, hi) for lo < hi.
func TestRangeProperty(t *testing.T) {
	f := func(seed uint64, a, b float64) bool {
		lo, hi := math.Mod(a, 100), math.Mod(b, 100)
		if lo == hi {
			return true
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		r := NewRand(seed)
		for i := 0; i < 10; i++ {
			v := r.Range(lo, hi)
			if v < lo || v >= hi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRand(77)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("Bool(0.3) hit rate = %v", frac)
	}
}
