package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanSumMinMax(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Sum(xs) != 10 {
		t.Errorf("Sum = %v", Sum(xs))
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) should be 0")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty should be ±Inf")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if v := Variance(xs); math.Abs(v-4) > 1e-12 {
		t.Errorf("Variance = %v, want 4", v)
	}
	if s := StdDev(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", s)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("expected error for out-of-range percentile")
	}
	// Input must not be reordered.
	ys := []float64{3, 1, 2}
	if _, err := Percentile(ys, 50); err != nil {
		t.Fatal(err)
	}
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestSummarizeMatchesIndividuals(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	s := Summarize(xs)
	if s.N != len(xs) || s.Min != Min(xs) || s.Max != Max(xs) {
		t.Errorf("Summary basics wrong: %+v", s)
	}
	if math.Abs(s.Mean-Mean(xs)) > 1e-12 {
		t.Errorf("Summary.Mean = %v, want %v", s.Mean, Mean(xs))
	}
	if math.Abs(s.StdDev-StdDev(xs)) > 1e-9 {
		t.Errorf("Summary.StdDev = %v, want %v", s.StdDev, StdDev(xs))
	}
}

func TestLinRegExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x + 1.5
	}
	fit, err := LinReg(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2.5) > 1e-12 || math.Abs(fit.Intercept-1.5) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2.5 intercept 1.5", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinRegNoisyR2(t *testing.T) {
	r := NewRand(42)
	var xs, ys []float64
	for i := 0; i < 500; i++ {
		x := r.Range(0, 10)
		xs = append(xs, x)
		ys = append(ys, 3*x+2+r.Norm(0, 0.5))
	}
	fit, err := LinReg(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-3) > 0.1 || math.Abs(fit.Intercept-2) > 0.3 {
		t.Errorf("fit = %+v, want ≈(3, 2)", fit)
	}
	if fit.R2 < 0.95 {
		t.Errorf("R2 = %v, want > 0.95 for low-noise line", fit.R2)
	}
}

func TestLinRegErrors(t *testing.T) {
	if _, err := LinReg([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for single point")
	}
	if _, err := LinReg([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	if _, err := LinReg([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("expected error for degenerate x")
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{100, 200}, []float64{110, 180})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Errorf("MAPE = %v, want 10", got)
	}
	if _, err := MAPE([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("expected error when all actuals are zero")
	}
}

// Property: the least-squares residuals are orthogonal to the regressor,
// i.e. sum(x_i * e_i) ≈ 0 and sum(e_i) ≈ 0.
func TestLinRegNormalEquationsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		n := 3 + r.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Range(-5, 5)
			ys[i] = r.Range(-5, 5)
		}
		fit, err := LinReg(xs, ys)
		if err != nil {
			return true // degenerate draw
		}
		var se, sxe float64
		for i := range xs {
			e := ys[i] - fit.Predict(xs[i])
			se += e
			sxe += xs[i] * e
		}
		return math.Abs(se) < 1e-6*float64(n) && math.Abs(sxe) < 1e-6*float64(n)*10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: R² is always within [0, 1].
func TestLinRegR2BoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		n := 3 + r.Intn(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = r.Range(-5, 5)
			ys[i] = r.Range(-100, 100)
		}
		fit, err := LinReg(xs, ys)
		if err != nil {
			return true
		}
		return fit.R2 >= 0 && fit.R2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
