package stats

// State returns the generator's internal state word. Together with
// SetState it makes the stream checkpointable: a generator restored with
// SetState(State()) produces the identical continuation of draws. The
// splitmix64 core keeps no auxiliary state (Norm discards its spare
// deviate), so one word is the complete stream position.
func (r *Rand) State() uint64 { return r.state }

// SetState overwrites the generator's state word (see State).
func (r *Rand) SetState(s uint64) { r.state = s }
