package stats

import "math"

// Rand is a small, fast, deterministic pseudo-random stream based on
// splitmix64. It is used instead of math/rand so that every stochastic
// component of the simulator can own an independent stream keyed by
// (seed, core, interval, ...) and produce identical sequences regardless of
// the order in which streams are consumed — a requirement for the parallel
// executor to match the sequential one bit-for-bit.
type Rand struct {
	state uint64
}

// NewRand returns a stream seeded with seed. Distinct seeds yield streams
// that are statistically independent for simulation purposes.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Derive returns a new independent stream keyed by this stream's seed and the
// given keys. It does not perturb the receiver. This is the mechanism used to
// fan a single experiment seed out to per-core, per-interval streams.
func (r *Rand) Derive(keys ...uint64) *Rand {
	s := r.state
	for _, k := range keys {
		s = mix64(s ^ (k + 0x9e3779b97f4a7c15))
	}
	return &Rand{state: s}
}

// DeriveSeed mixes keys into seed and returns the resulting sub-seed.
func DeriveSeed(seed uint64, keys ...uint64) uint64 {
	s := seed
	for _, k := range keys {
		s = mix64(s ^ (k + 0x9e3779b97f4a7c15))
	}
	return s
}

func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix64(r.state)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, using the Box–Muller transform.
func (r *Rand) Norm(mean, stddev float64) float64 {
	// Avoid log(0) by shifting u1 into (0, 1].
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := 1 - r.Float64()
	return -mean * math.Log(u)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm fills dst with a random permutation of [0, len(dst)).
func (r *Rand) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}
