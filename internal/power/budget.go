package power

import "errors"

// Model bundles the dynamic and leakage models with the DVFS table into the
// per-core power model the simulator uses.
type Model struct {
	Table   *DVFSTable
	Dynamic *DynamicModel
	Leakage *LeakageModel
}

// DefaultModel returns the calibrated model used throughout the
// reproduction: a 90 nm-class core drawing 10 W dynamic at 2 GHz/1.356 V with
// everything switching, plus 2 W leakage at the reference point — so an
// 8-core chip tops out around 96 W, in the envelope of the CMPs the paper
// targets.
func DefaultModel() *Model {
	table := PentiumM()
	dyn, err := NewDynamicModel(10.0, table.Max(), 0.10, DefaultUnitWeights)
	if err != nil {
		panic("power: invalid default dynamic model: " + err.Error())
	}
	// β = 0.01/°C keeps the electrothermal loop stable: with the default
	// 4.5 °C/W thermal resistance the feedback gain leak·β·Rth stays well
	// below 1 at every reachable operating point, so temperatures settle
	// instead of running away. (Stronger coefficients model newer nodes but
	// need proportionally better cooling.)
	leak, err := NewLeakageModel(2.0, table.Max().VoltageV, 45, 0.01)
	if err != nil {
		panic("power: invalid default leakage model: " + err.Error())
	}
	return &Model{Table: table, Dynamic: dyn, Leakage: leak}
}

// CorePower returns a core's total (dynamic + static) power in watts at DVFS
// level lvl with interval activity a, temperature tC and variation
// multiplier varMult.
func (m *Model) CorePower(lvl int, a Activity, tC, varMult float64) float64 {
	op := m.Table.Point(m.Table.ClampLevel(lvl))
	return m.Dynamic.Power(op, a) + m.Leakage.Power(op.VoltageV, tC, varMult)
}

// CoreMaxPower returns a core's power at the top operating point with full
// activity at the leakage reference temperature and nominal variation — the
// per-core contribution to "maximum chip power", the denominator of every
// percent-power figure in the paper.
func (m *Model) CoreMaxPower() float64 {
	op := m.Table.Max()
	return m.Dynamic.Power(op, FullActivity()) + m.Leakage.Power(op.VoltageV, m.Leakage.TRefC, 1)
}

// MaxChipPower returns the maximum chip power for n cores.
func (m *Model) MaxChipPower(n int) float64 {
	return float64(n) * m.CoreMaxPower()
}

// ErrBadBudget reports an out-of-range power budget fraction.
var ErrBadBudget = errors.New("power: budget fraction must be in (0, 1]")

// BudgetWatts converts a budget given as a fraction of maximum chip power
// into watts for an n-core chip.
func (m *Model) BudgetWatts(fraction float64, n int) (float64, error) {
	if fraction <= 0 || fraction > 1 {
		return 0, ErrBadBudget
	}
	return fraction * m.MaxChipPower(n), nil
}
