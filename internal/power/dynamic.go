package power

import (
	"errors"
	"fmt"
)

// Unit identifies a microarchitectural block in the Wattch-style per-unit
// dynamic power model.
type Unit int

// The modelled core units. Weights follow the rough per-unit energy
// breakdown Wattch reports for an aggressive out-of-order core at 90 nm.
const (
	UnitFetch Unit = iota
	UnitRename
	UnitIssue
	UnitRegFile
	UnitIntALU
	UnitFPU
	UnitL1I
	UnitL1D
	UnitL2
	UnitClock
	NumUnits
)

var unitNames = [NumUnits]string{
	"fetch", "rename", "issue", "regfile", "int-alu", "fpu",
	"l1i", "l1d", "l2", "clock",
}

// String returns the lower-case unit name.
func (u Unit) String() string {
	if u < 0 || u >= NumUnits {
		return fmt.Sprintf("unit(%d)", int(u))
	}
	return unitNames[u]
}

// UnitWeights gives each unit's share of the core's total effective
// switching capacitance. Weights must sum to 1.
type UnitWeights [NumUnits]float64

// DefaultUnitWeights is the built-in capacitance breakdown.
var DefaultUnitWeights = UnitWeights{
	UnitFetch:   0.08,
	UnitRename:  0.06,
	UnitIssue:   0.12,
	UnitRegFile: 0.10,
	UnitIntALU:  0.12,
	UnitFPU:     0.12,
	UnitL1I:     0.08,
	UnitL1D:     0.12,
	UnitL2:      0.10,
	UnitClock:   0.10,
}

// Validate checks that the weights are non-negative and sum to 1 within
// floating-point tolerance.
func (w UnitWeights) Validate() error {
	sum := 0.0
	for u, v := range w {
		if v < 0 {
			return fmt.Errorf("power: negative weight for %s", Unit(u))
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("power: unit weights sum to %v, want 1", sum)
	}
	return nil
}

// Activity holds per-unit activity factors in [0, 1] for one interval:
// the fraction of cycles each unit performed useful switching.
type Activity struct {
	Units [NumUnits]float64
}

// ActivityProfile summarises what a core did during an interval, from which
// per-unit activities are derived.
type ActivityProfile struct {
	// Utilization is the fraction of cycles the core was not stalled.
	Utilization float64
	// FPFraction is the fraction of executed instructions that are
	// floating-point.
	FPFraction float64
	// MemRefFraction is the fraction of executed instructions that access
	// the L1D.
	MemRefFraction float64
	// L2AccessFactor is the L1-miss traffic reaching the L2, normalized to
	// instructions (misses per instruction), scaled into [0, 1] activity by
	// the model.
	L2AccessFactor float64
}

// DeriveActivity maps an interval profile to per-unit activity factors.
//
// Execution units (ALUs, register file) gate well and track utilization and
// the instruction mix. Front-end structures do not: on a running core the
// fetch engine keeps speculating past stalls, wakeup/select logic examines
// the issue queue every cycle, and the data cache's ports and MSHRs stay
// busy servicing outstanding misses — so those units carry a structural
// baseline in addition to the utilization-tracking component. The clock tree
// always switches (its residual gating is the model's gate floor).
func DeriveActivity(p ActivityProfile) Activity {
	u := clamp01(p.Utilization)
	fp := clamp01(p.FPFraction)
	mem := clamp01(p.MemRefFraction)
	l2 := clamp01(p.L2AccessFactor)
	var a Activity
	a.Units[UnitFetch] = 0.45 + 0.55*u
	a.Units[UnitRename] = 0.35 + 0.65*u
	a.Units[UnitIssue] = 0.50 + 0.50*u
	a.Units[UnitRegFile] = 0.25 + 0.75*u
	a.Units[UnitIntALU] = u * (1 - fp)
	a.Units[UnitFPU] = u * fp
	a.Units[UnitL1I] = 0.45 + 0.55*u
	a.Units[UnitL1D] = clamp01(0.15 + 2.5*mem)
	a.Units[UnitL2] = l2
	a.Units[UnitClock] = 1
	return a
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// DynamicModel is the Wattch-style dynamic power model for a single core.
type DynamicModel struct {
	// CoreMaxW is the dynamic power of one core at the reference operating
	// point with all units fully active.
	CoreMaxW float64
	// Ref is the operating point at which CoreMaxW is specified (the top of
	// the DVFS table).
	Ref OperatingPoint
	// GateFloor is the fraction of a unit's power drawn when idle under the
	// linear clock-gating scheme; the paper uses 10%.
	GateFloor float64
	Weights   UnitWeights
}

// NewDynamicModel validates and returns a model.
func NewDynamicModel(coreMaxW float64, ref OperatingPoint, gateFloor float64, w UnitWeights) (*DynamicModel, error) {
	if coreMaxW <= 0 {
		return nil, errors.New("power: CoreMaxW must be positive")
	}
	if ref.FreqMHz <= 0 || ref.VoltageV <= 0 {
		return nil, errors.New("power: invalid reference operating point")
	}
	if gateFloor < 0 || gateFloor > 1 {
		return nil, errors.New("power: gate floor must be in [0,1]")
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &DynamicModel{CoreMaxW: coreMaxW, Ref: ref, GateFloor: gateFloor, Weights: w}, nil
}

// Power returns the core dynamic power in watts at operating point op with
// activity a. Each unit draws
//
//	w_u · P_max · (V/V_ref)² · (f/f_ref) · (gate + (1-gate)·α_u)
//
// — the C·V²·f·α law with the linear clock-gating floor.
func (m *DynamicModel) Power(op OperatingPoint, a Activity) float64 {
	scale := (op.VoltageV / m.Ref.VoltageV) * (op.VoltageV / m.Ref.VoltageV) * (op.FreqMHz / m.Ref.FreqMHz)
	total := 0.0
	for u := Unit(0); u < NumUnits; u++ {
		eff := m.GateFloor + (1-m.GateFloor)*clamp01(a.Units[u])
		total += m.Weights[u] * eff
	}
	return m.CoreMaxW * scale * total
}

// PowerBreakdown returns per-unit dynamic power in watts.
func (m *DynamicModel) PowerBreakdown(op OperatingPoint, a Activity) [NumUnits]float64 {
	scale := (op.VoltageV / m.Ref.VoltageV) * (op.VoltageV / m.Ref.VoltageV) * (op.FreqMHz / m.Ref.FreqMHz)
	var out [NumUnits]float64
	for u := Unit(0); u < NumUnits; u++ {
		eff := m.GateFloor + (1-m.GateFloor)*clamp01(a.Units[u])
		out[u] = m.CoreMaxW * scale * m.Weights[u] * eff
	}
	return out
}

// FullActivity returns an Activity with every unit at 1, the condition under
// which Power equals CoreMaxW at the reference point.
func FullActivity() Activity {
	var a Activity
	for u := range a.Units {
		a.Units[u] = 1
	}
	return a
}
