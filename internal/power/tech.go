package power

import (
	"errors"
	"fmt"
)

// This file adds the technology/heterogeneity axis to the power substrate:
// Lumos-style per-node scaling tables (vdd, frequency, power, threshold
// voltage) that rescale the Table-I operating points and reference
// parameters for nodes from 45 nm down to 8 nm, in two projection variants
// (aggressive ITRS vs conservative), plus core-class scalars for
// heterogeneous big.LITTLE chips. The baseline model (TechConfig zero
// value, ClassOoO) is bit-identical to the legacy chip-global path: no
// scaling is applied at all unless a node is selected.

// TechNode identifies a CMOS technology node by its feature size in
// nanometres. The zero value means "no scaling" — the legacy 90 nm-class
// baseline of Table I.
type TechNode int

// The modelled nodes, following the Lumos scaling dataset.
const (
	Node45 TechNode = 45
	Node32 TechNode = 32
	Node22 TechNode = 22
	Node16 TechNode = 16
	Node11 TechNode = 11
	Node8  TechNode = 8
)

// Nodes lists the modelled nodes from largest to smallest feature size —
// the order of a shrink sweep.
func Nodes() []TechNode { return []TechNode{Node45, Node32, Node22, Node16, Node11, Node8} }

// String returns e.g. "16nm".
func (n TechNode) String() string { return fmt.Sprintf("%dnm", int(n)) }

// TechVariant selects which scaling projection the tables follow.
type TechVariant uint8

const (
	// ITRS is the aggressive roadmap projection: supply voltage and
	// switching power fall fast with each shrink and frequency rises
	// steeply, at the cost of a worsening leakage fraction and a
	// threshold-voltage floor that eats the bottom of the DVFS table.
	ITRS TechVariant = iota
	// Conservative is the pessimistic projection: vdd barely scales below
	// 22 nm, frequency gains are modest, and every Table-I operating point
	// stays above the threshold floor at every node.
	Conservative
)

// String returns "itrs" or "cons".
func (v TechVariant) String() string {
	switch v {
	case ITRS:
		return "itrs"
	case Conservative:
		return "cons"
	default:
		return fmt.Sprintf("variant(%d)", uint8(v))
	}
}

// TechConfig selects a technology node and projection variant. The zero
// value (Node 0) disables scaling entirely and reproduces the legacy model
// bit for bit.
type TechConfig struct {
	Node    TechNode
	Variant TechVariant
}

// Enabled reports whether any scaling is selected.
func (c TechConfig) Enabled() bool { return c.Node != 0 }

// Validate checks that the node and variant are modelled.
func (c TechConfig) Validate() error {
	if !c.Enabled() {
		return nil
	}
	if _, ok := vthBaseV[c.Node]; !ok {
		return fmt.Errorf("power: unknown technology node %d nm", int(c.Node))
	}
	if c.Variant != ITRS && c.Variant != Conservative {
		return fmt.Errorf("power: unknown technology variant %d", uint8(c.Variant))
	}
	return nil
}

// String returns e.g. "16nm-itrs", or "none" when scaling is disabled —
// the form used in chip fingerprints and scenario names.
func (c TechConfig) String() string {
	if !c.Enabled() {
		return "none"
	}
	return c.Node.String() + "-" + c.Variant.String()
}

// techScale bundles one node's multipliers relative to the 45 nm anchor.
type techScale struct {
	vdd  float64 // supply-voltage multiplier
	freq float64 // frequency multiplier at constant vdd headroom
	pow  float64 // switching-power multiplier at the nominal point
	leak float64 // growth of the leakage share of nominal power
}

// The scaling tables are anchored so Node45 is the identity for vdd, freq
// and power: the default Table-I model *is* the 45 nm-class baseline.
// Values follow the Lumos technology dataset (vdd/freq/power projections
// for high-performance CMOS, ITRS vs conservative); the leakage-growth
// column is this model's knob for the well-known trend that static power
// claims a growing share of the budget with each shrink, and grows faster
// under aggressive vdd/vth scaling than under the conservative roadmap.
var techScaling = map[TechVariant]map[TechNode]techScale{
	ITRS: {
		Node45: {vdd: 1.00, freq: 1.00, pow: 1.00, leak: 1.00},
		Node32: {vdd: 0.93, freq: 1.09, pow: 0.66, leak: 1.15},
		Node22: {vdd: 0.84, freq: 2.38, pow: 0.54, leak: 1.35},
		Node16: {vdd: 0.75, freq: 3.21, pow: 0.38, leak: 1.60},
		// The published projection saturates at the end of the roadmap
		// (the raw dataset dips below the 11 nm frequency at 8 nm); the
		// table clamps the tail to keep the shrink axis monotone.
		Node11: {vdd: 0.68, freq: 4.17, pow: 0.25, leak: 1.90},
		Node8:  {vdd: 0.62, freq: 4.25, pow: 0.12, leak: 2.25},
	},
	Conservative: {
		Node45: {vdd: 1.00, freq: 1.00, pow: 1.00, leak: 1.00},
		Node32: {vdd: 0.93, freq: 1.10, pow: 0.71, leak: 1.10},
		Node22: {vdd: 0.88, freq: 1.19, pow: 0.52, leak: 1.25},
		Node16: {vdd: 0.86, freq: 1.25, pow: 0.39, leak: 1.40},
		Node11: {vdd: 0.84, freq: 1.30, pow: 0.29, leak: 1.60},
		Node8:  {vdd: 0.84, freq: 1.34, pow: 0.22, leak: 1.85},
	},
}

// vthBaseV is the nominal threshold voltage per node (variant-independent),
// from the same dataset.
var vthBaseV = map[TechNode]float64{
	Node45: 0.3201,
	Node32: 0.2970,
	Node22: 0.2673,
	Node16: 0.2409,
	Node11: 0.2178,
	Node8:  0.1980,
}

// VthMarginV is the super-threshold guardband: operating points whose
// scaled supply falls below Vth + VthMarginV are outside the alpha-power
// law's validity (near-threshold operation) and are dropped from the
// scaled DVFS table. Under aggressive ITRS vdd scaling this floor consumes
// the bottom of the Pentium-M table from 16 nm on; the conservative
// projection keeps every level at every node.
const VthMarginV = 0.5

// MinVddV returns the lowest legal supply voltage at the given node.
func MinVddV(n TechNode) (float64, error) {
	vth, ok := vthBaseV[n]
	if !ok {
		return 0, fmt.Errorf("power: unknown technology node %d nm", int(n))
	}
	return vth + VthMarginV, nil
}

func (c TechConfig) scale() (techScale, error) {
	if err := c.Validate(); err != nil {
		return techScale{}, err
	}
	return techScaling[c.Variant][c.Node], nil
}

// ScaleTable rescales a DVFS table to the given node: every operating
// point's frequency and voltage are multiplied by the node's factors, and
// points whose scaled supply falls below the vth-derived floor (MinVddV)
// are dropped. A disabled TechConfig returns the input table unchanged
// (same pointer), preserving bit-identity of the legacy path.
func ScaleTable(t *DVFSTable, c TechConfig) (*DVFSTable, error) {
	if !c.Enabled() {
		return t, nil
	}
	s, err := c.scale()
	if err != nil {
		return nil, err
	}
	floor, err := MinVddV(c.Node)
	if err != nil {
		return nil, err
	}
	pts := make([]OperatingPoint, 0, t.Levels())
	for i := 0; i < t.Levels(); i++ {
		p := t.Point(i)
		sp := OperatingPoint{FreqMHz: p.FreqMHz * s.freq, VoltageV: p.VoltageV * s.vdd}
		if sp.VoltageV < floor {
			continue
		}
		pts = append(pts, sp)
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("power: every operating point of the table falls below the %s threshold floor (%.3f V)", c.Node, floor)
	}
	return NewDVFSTable(pts)
}

// ScaleModel rescales a complete power model to the given node: the DVFS
// table via ScaleTable, the dynamic model's reference power by the node's
// power factor (re-anchored at the scaled table's top point), and the
// leakage reference by the power factor times the node's leakage growth —
// so the leakage *share* of nominal power grows with each shrink, faster
// under ITRS than under the conservative projection. A disabled TechConfig
// returns the input model unchanged (same pointer).
func ScaleModel(m *Model, c TechConfig) (*Model, error) {
	if !c.Enabled() {
		return m, nil
	}
	s, err := c.scale()
	if err != nil {
		return nil, err
	}
	table, err := ScaleTable(m.Table, c)
	if err != nil {
		return nil, err
	}
	dyn, err := NewDynamicModel(m.Dynamic.CoreMaxW*s.pow, table.Max(), m.Dynamic.GateFloor, m.Dynamic.Weights)
	if err != nil {
		return nil, err
	}
	leak, err := NewLeakageModel(m.Leakage.NomW*s.pow*s.leak, table.Max().VoltageV, m.Leakage.TRefC, m.Leakage.Beta)
	if err != nil {
		return nil, err
	}
	return &Model{Table: table, Dynamic: dyn, Leakage: leak}, nil
}

// CoreClass identifies the microarchitectural class of an island's cores
// on a heterogeneous chip. The zero value is the big out-of-order class of
// Table I, so homogeneous configurations need not mention classes at all.
type CoreClass uint8

const (
	// ClassOoO is the paper's big out-of-order core (Table I).
	ClassOoO CoreClass = iota
	// ClassLittleIO is a little in-order core: roughly 0.31× the power of
	// the big core (the in-order/out-of-order ratio of the Lumos dataset)
	// with a shorter critical path that clocks ~13% higher at the same
	// supply voltage.
	ClassLittleIO
)

// String returns "ooo" or "little".
func (c CoreClass) String() string {
	switch c {
	case ClassOoO:
		return "ooo"
	case ClassLittleIO:
		return "little"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Validate checks that the class is modelled.
func (c CoreClass) Validate() error {
	if c != ClassOoO && c != ClassLittleIO {
		return fmt.Errorf("power: unknown core class %d", uint8(c))
	}
	return nil
}

// The little-core scalars derive from the Lumos in-order/out-of-order
// pair: 6.14 W vs 19.83 W at 4.2 GHz vs 3.7 GHz (45 nm).
const (
	littlePowerScale = 6.14 / 19.83
	littleFreqScale  = 4.2 / 3.7
)

// ModelForClass specializes a (possibly tech-scaled) island power model to
// a core class. ClassOoO returns the input model unchanged (same pointer);
// ClassLittleIO scales dynamic and leakage power by the little-core ratio
// and stretches the frequency axis at unchanged voltages.
func ModelForClass(m *Model, class CoreClass) (*Model, error) {
	if err := class.Validate(); err != nil {
		return nil, err
	}
	if class == ClassOoO {
		return m, nil
	}
	pts := make([]OperatingPoint, 0, m.Table.Levels())
	for i := 0; i < m.Table.Levels(); i++ {
		p := m.Table.Point(i)
		pts = append(pts, OperatingPoint{FreqMHz: p.FreqMHz * littleFreqScale, VoltageV: p.VoltageV})
	}
	table, err := NewDVFSTable(pts)
	if err != nil {
		return nil, err
	}
	dyn, err := NewDynamicModel(m.Dynamic.CoreMaxW*littlePowerScale, table.Max(), m.Dynamic.GateFloor, m.Dynamic.Weights)
	if err != nil {
		return nil, err
	}
	leak, err := NewLeakageModel(m.Leakage.NomW*littlePowerScale, m.Leakage.VRef, m.Leakage.TRefC, m.Leakage.Beta)
	if err != nil {
		return nil, err
	}
	return &Model{Table: table, Dynamic: dyn, Leakage: leak}, nil
}

// ModelFor composes technology scaling and class specialization: the
// island model for a core class at a node. With scaling disabled and
// ClassOoO it returns the base model unchanged (same pointer).
func ModelFor(base *Model, tech TechConfig, class CoreClass) (*Model, error) {
	if base == nil {
		return nil, errors.New("power: nil base model")
	}
	m, err := ScaleModel(base, tech)
	if err != nil {
		return nil, err
	}
	return ModelForClass(m, class)
}
