package power

import (
	"errors"
	"math"
)

// LeakageModel is the HotLeakage-style static power model for a single core:
//
//	P_leak = P_nom · (V/V_ref) · e^(β·(T − T_ref)) · variation
//
// Subthreshold leakage current grows exponentially with temperature and
// roughly linearly with supply voltage over the narrow DVFS range; the
// per-core variation multiplier models intra-die process variation (§IV-B).
type LeakageModel struct {
	// NomW is the per-core leakage power at (VRef, TRefC) with variation 1.
	NomW float64
	// VRef is the reference supply voltage.
	VRef float64
	// TRefC is the reference temperature in °C.
	TRefC float64
	// Beta is the exponential temperature coefficient (1/°C). Silicon
	// leakage roughly doubles every 10–15 °C; β ≈ 0.05 gives doubling every
	// ~14 °C.
	Beta float64
}

// NewLeakageModel validates and returns a model.
func NewLeakageModel(nomW, vRef, tRefC, beta float64) (*LeakageModel, error) {
	if nomW < 0 {
		return nil, errors.New("power: negative nominal leakage")
	}
	if vRef <= 0 {
		return nil, errors.New("power: non-positive reference voltage")
	}
	if beta < 0 {
		return nil, errors.New("power: negative temperature coefficient")
	}
	return &LeakageModel{NomW: nomW, VRef: vRef, TRefC: tRefC, Beta: beta}, nil
}

// Power returns the leakage power in watts at supply voltage v, temperature
// tC (°C), scaled by the core's process-variation multiplier.
func (m *LeakageModel) Power(v, tC, variation float64) float64 {
	if v < 0 {
		v = 0
	}
	if variation < 0 {
		variation = 0
	}
	return m.NomW * (v / m.VRef) * math.Exp(m.Beta*(tC-m.TRefC)) * variation
}
