package power

import (
	"math"
	"testing"
)

func defaultLeak(t *testing.T) *LeakageModel {
	t.Helper()
	m, err := NewLeakageModel(2.0, 1.356, 45, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLeakageAtReference(t *testing.T) {
	m := defaultLeak(t)
	if got := m.Power(1.356, 45, 1); math.Abs(got-2) > 1e-12 {
		t.Errorf("leakage at reference = %v, want 2", got)
	}
}

func TestLeakageTemperatureDoubling(t *testing.T) {
	m := defaultLeak(t)
	base := m.Power(1.356, 45, 1)
	// β = 0.05 → doubling every ln(2)/0.05 ≈ 13.9 °C.
	hot := m.Power(1.356, 45+math.Ln2/0.05, 1)
	if math.Abs(hot/base-2) > 1e-9 {
		t.Errorf("leakage ratio over doubling interval = %v, want 2", hot/base)
	}
}

func TestLeakageLinearInVoltage(t *testing.T) {
	m := defaultLeak(t)
	half := m.Power(1.356/2, 45, 1)
	full := m.Power(1.356, 45, 1)
	if math.Abs(full/half-2) > 1e-9 {
		t.Errorf("leakage not linear in voltage: ratio %v", full/half)
	}
}

func TestLeakageVariationMultiplier(t *testing.T) {
	m := defaultLeak(t)
	base := m.Power(1.2, 60, 1)
	leaky := m.Power(1.2, 60, 2)
	if math.Abs(leaky/base-2) > 1e-9 {
		t.Errorf("variation multiplier not applied linearly: %v", leaky/base)
	}
}

func TestLeakageClampsNegativeInputs(t *testing.T) {
	m := defaultLeak(t)
	if m.Power(-1, 45, 1) != 0 {
		t.Error("negative voltage should yield zero leakage")
	}
	if m.Power(1.2, 45, -3) != 0 {
		t.Error("negative variation should yield zero leakage")
	}
}

func TestNewLeakageModelValidation(t *testing.T) {
	if _, err := NewLeakageModel(-1, 1.2, 45, 0.05); err == nil {
		t.Error("negative nominal power should be rejected")
	}
	if _, err := NewLeakageModel(2, 0, 45, 0.05); err == nil {
		t.Error("zero reference voltage should be rejected")
	}
	if _, err := NewLeakageModel(2, 1.2, 45, -0.05); err == nil {
		t.Error("negative beta should be rejected")
	}
}

func TestModelAccounting(t *testing.T) {
	m := DefaultModel()
	// CorePower is the sum of the parts.
	act := DeriveActivity(ActivityProfile{Utilization: 0.8, FPFraction: 0.3, MemRefFraction: 0.3})
	lvl := 5
	op := m.Table.Point(lvl)
	want := m.Dynamic.Power(op, act) + m.Leakage.Power(op.VoltageV, 50, 1.2)
	if got := m.CorePower(lvl, act, 50, 1.2); math.Abs(got-want) > 1e-12 {
		t.Errorf("CorePower = %v, want %v", got, want)
	}
	// Out-of-range level clamps instead of panicking.
	if got := m.CorePower(99, act, 50, 1.2); got <= 0 {
		t.Error("clamped CorePower should be positive")
	}
}

func TestMaxChipPowerScalesWithCores(t *testing.T) {
	m := DefaultModel()
	one := m.MaxChipPower(1)
	if math.Abs(m.MaxChipPower(8)-8*one) > 1e-9 {
		t.Error("MaxChipPower should scale linearly with core count")
	}
	if math.Abs(one-m.CoreMaxPower()) > 1e-12 {
		t.Error("MaxChipPower(1) should equal CoreMaxPower")
	}
	// Default calibration: 10 W dynamic + 2 W leakage per core.
	if math.Abs(one-12) > 1e-9 {
		t.Errorf("CoreMaxPower = %v, want 12", one)
	}
}

func TestBudgetWatts(t *testing.T) {
	m := DefaultModel()
	w, err := m.BudgetWatts(0.8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-0.8*m.MaxChipPower(8)) > 1e-9 {
		t.Errorf("BudgetWatts = %v", w)
	}
	if _, err := m.BudgetWatts(0, 8); err == nil {
		t.Error("zero budget should be rejected")
	}
	if _, err := m.BudgetWatts(1.5, 8); err == nil {
		t.Error("budget above 1 should be rejected")
	}
}
