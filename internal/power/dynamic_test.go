package power

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cpm-sim/cpm/internal/stats"
)

func defaultDyn(t *testing.T) *DynamicModel {
	t.Helper()
	m, err := NewDynamicModel(10, PentiumM().Max(), 0.10, DefaultUnitWeights)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDefaultUnitWeightsValid(t *testing.T) {
	if err := DefaultUnitWeights.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUnitWeightsValidation(t *testing.T) {
	bad := DefaultUnitWeights
	bad[UnitFetch] = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("negative weight should be rejected")
	}
	short := UnitWeights{}
	if err := short.Validate(); err == nil {
		t.Error("zero-sum weights should be rejected")
	}
}

func TestUnitString(t *testing.T) {
	if UnitFetch.String() != "fetch" || UnitClock.String() != "clock" {
		t.Error("unexpected unit names")
	}
	if Unit(99).String() != "unit(99)" {
		t.Error("out-of-range unit name")
	}
}

func TestPowerAtReferenceFullActivity(t *testing.T) {
	m := defaultDyn(t)
	got := m.Power(m.Ref, FullActivity())
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("power at reference, full activity = %v, want 10", got)
	}
}

func TestPowerIdleIsGateFloor(t *testing.T) {
	m := defaultDyn(t)
	// Fully idle core draws GateFloor of the scaled max (the paper's linear
	// clock gating with 10% power for unused components).
	got := m.Power(m.Ref, Activity{})
	if math.Abs(got-1.0) > 1e-9 {
		t.Errorf("idle power = %v, want 1.0 (10%% of 10W)", got)
	}
}

func TestPowerMonotoneInLevel(t *testing.T) {
	m := defaultDyn(t)
	tbl := PentiumM()
	prev := -1.0
	for i := 0; i < tbl.Levels(); i++ {
		p := m.Power(tbl.Point(i), FullActivity())
		if p <= prev {
			t.Fatalf("power not increasing with level at %d", i)
		}
		prev = p
	}
}

// The V²f scaling with V linear in f must be close to the cubic law of
// Equation (1): a k·f³ fit over the table should explain nearly all
// variance.
func TestCubicFrequencyLaw(t *testing.T) {
	m := defaultDyn(t)
	tbl := PentiumM()
	var cubes, powers []float64
	for i := 0; i < tbl.Levels(); i++ {
		op := tbl.Point(i)
		f := op.FreqMHz / 1000
		cubes = append(cubes, f*f*f)
		powers = append(powers, m.Power(op, FullActivity()))
	}
	fit, err := stats.LinReg(cubes, powers)
	if err != nil {
		t.Fatal(err)
	}
	// V spans 0.956–1.356 V while f spans 600–2000 MHz, so V²f is close to
	// but not exactly cubic; the paper's Equation (1) is the same
	// approximation.
	if fit.R2 < 0.97 {
		t.Errorf("cubic fit R² = %.4f, want > 0.97 (Equation 1)", fit.R2)
	}
}

// Total power must be linear in utilization at a fixed operating point —
// the transducer relation of Figure 6 at the model level.
func TestLinearInUtilization(t *testing.T) {
	m := defaultDyn(t)
	op := PentiumM().Point(4)
	var us, ps []float64
	for u := 0.0; u <= 1.0; u += 0.05 {
		act := DeriveActivity(ActivityProfile{
			Utilization:    u,
			FPFraction:     0.3,
			MemRefFraction: 0.35,
			L2AccessFactor: 0.1 * u,
		})
		us = append(us, u)
		ps = append(ps, m.Power(op, act))
	}
	fit, err := stats.LinReg(us, ps)
	if err != nil {
		t.Fatal(err)
	}
	if fit.R2 < 0.99 {
		t.Errorf("utilization fit R² = %.4f, want > 0.99", fit.R2)
	}
	if fit.Slope <= 0 {
		t.Errorf("power must increase with utilization, slope = %v", fit.Slope)
	}
}

func TestPowerBreakdownSumsToTotal(t *testing.T) {
	m := defaultDyn(t)
	op := PentiumM().Point(3)
	act := DeriveActivity(ActivityProfile{Utilization: 0.7, FPFraction: 0.4, MemRefFraction: 0.3, L2AccessFactor: 0.2})
	parts := m.PowerBreakdown(op, act)
	sum := 0.0
	for _, p := range parts {
		sum += p
	}
	if total := m.Power(op, act); math.Abs(sum-total) > 1e-9 {
		t.Errorf("breakdown sums to %v, total is %v", sum, total)
	}
}

func TestDeriveActivityBounds(t *testing.T) {
	// Out-of-range inputs are clamped.
	a := DeriveActivity(ActivityProfile{Utilization: 2, FPFraction: -1, MemRefFraction: 5, L2AccessFactor: 9})
	for u, v := range a.Units {
		if v < 0 || v > 1 {
			t.Errorf("activity[%s] = %v out of [0,1]", Unit(u), v)
		}
	}
	if a.Units[UnitClock] != 1 {
		t.Error("clock tree should always be active")
	}
}

func TestDeriveActivityALUSplit(t *testing.T) {
	a := DeriveActivity(ActivityProfile{Utilization: 1, FPFraction: 0.25})
	if math.Abs(a.Units[UnitIntALU]-0.75) > 1e-12 || math.Abs(a.Units[UnitFPU]-0.25) > 1e-12 {
		t.Errorf("ALU split = (%v, %v), want (0.75, 0.25)", a.Units[UnitIntALU], a.Units[UnitFPU])
	}
}

func TestNewDynamicModelValidation(t *testing.T) {
	ref := PentiumM().Max()
	if _, err := NewDynamicModel(0, ref, 0.1, DefaultUnitWeights); err == nil {
		t.Error("zero max power should be rejected")
	}
	if _, err := NewDynamicModel(10, OperatingPoint{}, 0.1, DefaultUnitWeights); err == nil {
		t.Error("zero reference point should be rejected")
	}
	if _, err := NewDynamicModel(10, ref, 1.5, DefaultUnitWeights); err == nil {
		t.Error("gate floor > 1 should be rejected")
	}
	if _, err := NewDynamicModel(10, ref, 0.1, UnitWeights{}); err == nil {
		t.Error("invalid weights should be rejected")
	}
}

// Property: power is monotone non-decreasing in every unit's activity.
func TestPowerMonotoneInActivityProperty(t *testing.T) {
	m := defaultDyn(t)
	op := PentiumM().Point(5)
	f := func(seed uint64, du float64) bool {
		r := stats.NewRand(seed)
		var a Activity
		for u := range a.Units {
			a.Units[u] = r.Float64()
		}
		b := a
		which := r.Intn(int(NumUnits))
		bump := math.Abs(math.Mod(du, 1))
		b.Units[which] = clamp01(b.Units[which] + bump)
		return m.Power(op, b) >= m.Power(op, a)-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
