// Package power implements the power modelling substrate of the CPM
// simulator: the DVFS operating-point table (Table I of the paper), a
// Wattch-style per-unit dynamic power model with linear clock gating, and a
// HotLeakage-style temperature- and voltage-dependent leakage model.
//
// The paper measured power with Wattch (dynamic) and HotLeakage (static) on
// top of Simics; neither tool exists for Go, so this package provides
// analytic equivalents that preserve the two relations the control
// architecture depends on:
//
//  1. dynamic power scales as C·V²·f with V roughly linear in f, giving the
//     near-cubic frequency dependence of Equation (1), and
//  2. total power is approximately linear in processor utilization at a
//     fixed operating point, the transducer relation of Figure 6.
package power

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// OperatingPoint is one voltage/frequency pair of the DVFS table.
type OperatingPoint struct {
	FreqMHz  float64
	VoltageV float64
}

// DVFSTable is an ordered list of operating points, lowest frequency first.
// All cores of a voltage/frequency island share a single table index at any
// instant — the paper's central architectural constraint.
type DVFSTable struct {
	points []OperatingPoint
}

// NewDVFSTable validates and builds a table. Points must be strictly
// increasing in both frequency and voltage. A single-point table is legal
// — an island with no DVFS capability, pinned at its one operating point —
// and every consumer of the normalized frequency axis treats its zero
// extent as the degenerate case (NormFreq returns 0).
func NewDVFSTable(points []OperatingPoint) (*DVFSTable, error) {
	if len(points) == 0 {
		return nil, errors.New("power: DVFS table needs at least one operating point")
	}
	sorted := append([]OperatingPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].FreqMHz < sorted[j].FreqMHz })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].FreqMHz <= sorted[i-1].FreqMHz {
			return nil, fmt.Errorf("power: duplicate frequency %v MHz", sorted[i].FreqMHz)
		}
		if sorted[i].VoltageV <= sorted[i-1].VoltageV {
			return nil, fmt.Errorf("power: voltage not increasing with frequency at %v MHz", sorted[i].FreqMHz)
		}
	}
	for _, p := range sorted {
		if p.FreqMHz <= 0 || p.VoltageV <= 0 {
			return nil, fmt.Errorf("power: non-positive operating point %+v", p)
		}
	}
	return &DVFSTable{points: sorted}, nil
}

// PentiumM returns the 8-level 600 MHz – 2.0 GHz table of Table I, modelled
// on the Pentium-M datasheet the paper cites: voltage tracks frequency
// linearly from 0.956 V to 1.356 V.
func PentiumM() *DVFSTable {
	const (
		fMin, fMax = 600.0, 2000.0
		vMin, vMax = 0.956, 1.356
		levels     = 8
	)
	pts := make([]OperatingPoint, levels)
	for i := range pts {
		frac := float64(i) / float64(levels-1)
		pts[i] = OperatingPoint{
			FreqMHz:  fMin + frac*(fMax-fMin),
			VoltageV: vMin + frac*(vMax-vMin),
		}
	}
	t, err := NewDVFSTable(pts)
	if err != nil {
		panic("power: invalid built-in table: " + err.Error())
	}
	return t
}

// Levels returns the number of operating points.
func (t *DVFSTable) Levels() int { return len(t.points) }

// Point returns the operating point at level i (0 = slowest). It panics on
// an out-of-range level, which always indicates a caller bug.
func (t *DVFSTable) Point(i int) OperatingPoint {
	if i < 0 || i >= len(t.points) {
		panic(fmt.Sprintf("power: DVFS level %d out of range [0,%d)", i, len(t.points)))
	}
	return t.points[i]
}

// Min and Max return the extreme operating points.
func (t *DVFSTable) Min() OperatingPoint { return t.points[0] }

// Max returns the highest operating point.
func (t *DVFSTable) Max() OperatingPoint { return t.points[len(t.points)-1] }

// ClampLevel bounds lvl into the valid range.
func (t *DVFSTable) ClampLevel(lvl int) int {
	if lvl < 0 {
		return 0
	}
	if lvl >= len(t.points) {
		return len(t.points) - 1
	}
	return lvl
}

// NearestLevel returns the level whose frequency is closest to freqMHz,
// breaking ties toward the lower level (the power-safe choice).
func (t *DVFSTable) NearestLevel(freqMHz float64) int {
	best, bestDist := 0, math.Inf(1)
	for i, p := range t.points {
		d := math.Abs(p.FreqMHz - freqMHz)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// LevelOf returns the level whose frequency equals freqMHz (to within a
// relative tolerance of 1e-9), or (-1, false) when no operating point
// matches — the legality test an actuated frequency must pass: unlike
// NearestLevel, which snaps any frequency to the table, LevelOf rejects
// frequencies that are not actually in it.
func (t *DVFSTable) LevelOf(freqMHz float64) (int, bool) {
	for i, p := range t.points {
		if math.Abs(p.FreqMHz-freqMHz) <= 1e-9*p.FreqMHz {
			return i, true
		}
	}
	return -1, false
}

// FloorLevel returns the highest level whose frequency does not exceed
// freqMHz, or 0 if freqMHz is below the table.
func (t *DVFSTable) FloorLevel(freqMHz float64) int {
	lvl := 0
	for i, p := range t.points {
		if p.FreqMHz <= freqMHz {
			lvl = i
		}
	}
	return lvl
}

// NormFreq maps a frequency to [0, 1] relative to the table range; the PIC
// operates on this normalized axis so its plant gain is dimensionless.
func (t *DVFSTable) NormFreq(freqMHz float64) float64 {
	lo, hi := t.Min().FreqMHz, t.Max().FreqMHz
	if hi == lo {
		// Single-point table: the normalized axis has zero extent. Define
		// the sole operating point as 0 rather than returning 0/0 = NaN,
		// which would poison every downstream frequency computation.
		return 0
	}
	return (freqMHz - lo) / (hi - lo)
}

// DenormFreq is the inverse of NormFreq, clamped to the table range.
func (t *DVFSTable) DenormFreq(norm float64) float64 {
	if norm < 0 {
		norm = 0
	}
	if norm > 1 {
		norm = 1
	}
	lo, hi := t.Min().FreqMHz, t.Max().FreqMHz
	return lo + norm*(hi-lo)
}

// TransitionOverhead is the fraction of an interval lost to a DVFS
// transition (no instructions execute while the PLL relocks and voltage
// ramps). The paper sets this to 0.5% of CPU time per change, citing [22].
const TransitionOverhead = 0.005
