package power

import (
	"math"
	"testing"
)

// TestTechDisabledIsIdentity pins the bit-identity contract of the legacy
// path: a zero TechConfig and the OoO class return the *same* table and
// model pointers, so an unscaled chip cannot drift from the seed numerics.
func TestTechDisabledIsIdentity(t *testing.T) {
	base := DefaultModel()
	tbl, err := ScaleTable(base.Table, TechConfig{})
	if err != nil {
		t.Fatalf("ScaleTable: %v", err)
	}
	if tbl != base.Table {
		t.Fatal("disabled ScaleTable did not return the input table pointer")
	}
	m, err := ScaleModel(base, TechConfig{})
	if err != nil {
		t.Fatalf("ScaleModel: %v", err)
	}
	if m != base {
		t.Fatal("disabled ScaleModel did not return the input model pointer")
	}
	m, err = ModelFor(base, TechConfig{}, ClassOoO)
	if err != nil {
		t.Fatalf("ModelFor: %v", err)
	}
	if m != base {
		t.Fatal("ModelFor with zero config did not return the input model pointer")
	}
}

// TestTechScalingMonotone is the shrink-axis property test: walking the
// nodes from 45 nm down to 8 nm, top frequency must not decrease, supply
// voltage must not increase, switching power must not increase, and the
// leakage share of nominal power must not decrease — for both variants.
func TestTechScalingMonotone(t *testing.T) {
	base := DefaultModel()
	for _, variant := range []TechVariant{ITRS, Conservative} {
		prevFreq, prevVdd := 0.0, math.Inf(1)
		prevPow, prevShare := math.Inf(1), 0.0
		for _, node := range Nodes() {
			cfg := TechConfig{Node: node, Variant: variant}
			m, err := ScaleModel(base, cfg)
			if err != nil {
				t.Fatalf("%s: ScaleModel: %v", cfg, err)
			}
			top := m.Table.Max()
			if top.FreqMHz < prevFreq {
				t.Errorf("%s: top frequency %.1f MHz decreased under shrink (prev %.1f)", cfg, top.FreqMHz, prevFreq)
			}
			if top.VoltageV > prevVdd {
				t.Errorf("%s: top voltage %.3f V increased under shrink (prev %.3f)", cfg, top.VoltageV, prevVdd)
			}
			if m.Dynamic.CoreMaxW > prevPow {
				t.Errorf("%s: dynamic power %.3f W increased under shrink (prev %.3f)", cfg, m.Dynamic.CoreMaxW, prevPow)
			}
			share := m.Leakage.NomW / m.Dynamic.CoreMaxW
			if share < prevShare {
				t.Errorf("%s: leakage share %.4f decreased under shrink (prev %.4f)", cfg, share, prevShare)
			}
			prevFreq, prevVdd, prevPow, prevShare = top.FreqMHz, top.VoltageV, m.Dynamic.CoreMaxW, share
		}
	}
}

// TestTechLeakageOrdering checks the variant property: at every node the
// aggressive ITRS projection carries a leakage share of nominal power at
// least as large as the conservative one.
func TestTechLeakageOrdering(t *testing.T) {
	base := DefaultModel()
	for _, node := range Nodes() {
		itrs, err := ScaleModel(base, TechConfig{Node: node, Variant: ITRS})
		if err != nil {
			t.Fatalf("%s itrs: %v", node, err)
		}
		cons, err := ScaleModel(base, TechConfig{Node: node, Variant: Conservative})
		if err != nil {
			t.Fatalf("%s cons: %v", node, err)
		}
		si := itrs.Leakage.NomW / itrs.Dynamic.CoreMaxW
		sc := cons.Leakage.NomW / cons.Dynamic.CoreMaxW
		if si < sc {
			t.Errorf("%s: ITRS leakage share %.4f below conservative %.4f", node, si, sc)
		}
	}
}

// TestTechTablesValid re-validates every scaled table through NewDVFSTable
// and checks the vth floor: no surviving point may sit below MinVddV, and
// the expected level counts pin where the floor bites (ITRS loses the
// bottom of the Pentium-M table from 16 nm on; conservative never does).
func TestTechTablesValid(t *testing.T) {
	wantLevels := map[TechVariant]map[TechNode]int{
		ITRS:         {Node45: 8, Node32: 8, Node22: 8, Node16: 7, Node11: 6, Node8: 5},
		Conservative: {Node45: 8, Node32: 8, Node22: 8, Node16: 8, Node11: 8, Node8: 8},
	}
	base := PentiumM()
	for _, variant := range []TechVariant{ITRS, Conservative} {
		for _, node := range Nodes() {
			cfg := TechConfig{Node: node, Variant: variant}
			tbl, err := ScaleTable(base, cfg)
			if err != nil {
				t.Fatalf("%s: ScaleTable: %v", cfg, err)
			}
			if got, want := tbl.Levels(), wantLevels[variant][node]; got != want {
				t.Errorf("%s: %d levels, want %d", cfg, got, want)
			}
			floor, err := MinVddV(node)
			if err != nil {
				t.Fatalf("%s: MinVddV: %v", node, err)
			}
			pts := make([]OperatingPoint, 0, tbl.Levels())
			for i := 0; i < tbl.Levels(); i++ {
				p := tbl.Point(i)
				if p.VoltageV < floor {
					t.Errorf("%s level %d: voltage %.4f below floor %.4f", cfg, i, p.VoltageV, floor)
				}
				pts = append(pts, p)
			}
			if _, err := NewDVFSTable(pts); err != nil {
				t.Errorf("%s: scaled points fail validation: %v", cfg, err)
			}
		}
	}
}

// TestModelForClassLittle checks the little-core specialization: ~0.31×
// power in both components, a frequency axis stretched ~13% at unchanged
// voltages, and the OoO class as a pointer-identity no-op.
func TestModelForClassLittle(t *testing.T) {
	base := DefaultModel()
	same, err := ModelForClass(base, ClassOoO)
	if err != nil {
		t.Fatalf("ModelForClass(OoO): %v", err)
	}
	if same != base {
		t.Fatal("ClassOoO did not return the input model pointer")
	}
	little, err := ModelForClass(base, ClassLittleIO)
	if err != nil {
		t.Fatalf("ModelForClass(LittleIO): %v", err)
	}
	if little.Table.Levels() != base.Table.Levels() {
		t.Fatalf("little table has %d levels, want %d", little.Table.Levels(), base.Table.Levels())
	}
	for i := 0; i < base.Table.Levels(); i++ {
		b, l := base.Table.Point(i), little.Table.Point(i)
		if l.VoltageV != b.VoltageV {
			t.Errorf("level %d: little voltage %.4f differs from big %.4f", i, l.VoltageV, b.VoltageV)
		}
		if got, want := l.FreqMHz, b.FreqMHz*littleFreqScale; math.Abs(got-want) > 1e-9*want {
			t.Errorf("level %d: little frequency %.4f, want %.4f", i, got, want)
		}
	}
	if got, want := little.Dynamic.CoreMaxW, base.Dynamic.CoreMaxW*littlePowerScale; got != want {
		t.Errorf("little CoreMaxW %.4f, want %.4f", got, want)
	}
	if got, want := little.Leakage.NomW, base.Leakage.NomW*littlePowerScale; got != want {
		t.Errorf("little leakage NomW %.4f, want %.4f", got, want)
	}
	if little.CoreMaxPower() >= base.CoreMaxPower() {
		t.Errorf("little core max power %.3f W not below big %.3f W", little.CoreMaxPower(), base.CoreMaxPower())
	}
}

// TestTechConfigValidate rejects unknown nodes and variants.
func TestTechConfigValidate(t *testing.T) {
	if err := (TechConfig{}).Validate(); err != nil {
		t.Errorf("zero config: %v", err)
	}
	if err := (TechConfig{Node: 7}).Validate(); err == nil {
		t.Error("unknown node accepted")
	}
	if err := (TechConfig{Node: Node16, Variant: 9}).Validate(); err == nil {
		t.Error("unknown variant accepted")
	}
	if err := CoreClass(9).Validate(); err == nil {
		t.Error("unknown core class accepted")
	}
	if _, err := ScaleTable(PentiumM(), TechConfig{Node: 7}); err == nil {
		t.Error("ScaleTable accepted unknown node")
	}
	if _, err := ModelFor(nil, TechConfig{}, ClassOoO); err == nil {
		t.Error("ModelFor accepted nil base model")
	}
}
