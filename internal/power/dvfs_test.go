package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPentiumMTableShape(t *testing.T) {
	tbl := PentiumM()
	if tbl.Levels() != 8 {
		t.Fatalf("levels = %d, want 8 (Table I)", tbl.Levels())
	}
	if tbl.Min().FreqMHz != 600 || tbl.Max().FreqMHz != 2000 {
		t.Errorf("range = [%v, %v] MHz, want [600, 2000]", tbl.Min().FreqMHz, tbl.Max().FreqMHz)
	}
	for i := 1; i < tbl.Levels(); i++ {
		if tbl.Point(i).FreqMHz <= tbl.Point(i-1).FreqMHz {
			t.Error("frequencies not strictly increasing")
		}
		if tbl.Point(i).VoltageV <= tbl.Point(i-1).VoltageV {
			t.Error("voltages not strictly increasing")
		}
	}
}

func TestNewDVFSTableValidation(t *testing.T) {
	if _, err := NewDVFSTable(nil); err == nil {
		t.Error("empty table should be rejected")
	}
	// A single-point table is a legal no-DVFS island; its normalized
	// frequency axis has zero extent and must stay finite.
	single, err := NewDVFSTable([]OperatingPoint{{600, 1.0}})
	if err != nil {
		t.Fatalf("single-point table rejected: %v", err)
	}
	if got := single.NormFreq(600); got != 0 {
		t.Errorf("single-point NormFreq = %v, want 0", got)
	}
	if got := single.DenormFreq(0.5); got != 600 {
		t.Errorf("single-point DenormFreq = %v, want 600", got)
	}
	if _, err := NewDVFSTable([]OperatingPoint{{600, 1.0}, {600, 1.1}}); err == nil {
		t.Error("duplicate frequency should be rejected")
	}
	if _, err := NewDVFSTable([]OperatingPoint{{600, 1.2}, {800, 1.0}}); err == nil {
		t.Error("voltage decreasing with frequency should be rejected")
	}
	if _, err := NewDVFSTable([]OperatingPoint{{-600, 1.0}, {800, 1.1}}); err == nil {
		t.Error("negative frequency should be rejected")
	}
	// Unsorted input is accepted and sorted.
	tbl, err := NewDVFSTable([]OperatingPoint{{2000, 1.356}, {600, 0.956}})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Min().FreqMHz != 600 {
		t.Error("table not sorted by frequency")
	}
}

func TestNearestAndFloorLevel(t *testing.T) {
	tbl := PentiumM()
	if lvl := tbl.NearestLevel(600); lvl != 0 {
		t.Errorf("NearestLevel(600) = %d", lvl)
	}
	if lvl := tbl.NearestLevel(2000); lvl != tbl.Levels()-1 {
		t.Errorf("NearestLevel(2000) = %d", lvl)
	}
	if lvl := tbl.NearestLevel(10000); lvl != tbl.Levels()-1 {
		t.Errorf("NearestLevel above table = %d", lvl)
	}
	if lvl := tbl.NearestLevel(0); lvl != 0 {
		t.Errorf("NearestLevel below table = %d", lvl)
	}
	// Tie between 600 and 800 breaks low.
	if lvl := tbl.NearestLevel(700); lvl != 0 {
		t.Errorf("NearestLevel(700) = %d, want 0 (tie breaks low)", lvl)
	}
	if lvl := tbl.FloorLevel(999); lvl != 1 {
		t.Errorf("FloorLevel(999) = %d, want 1", lvl)
	}
	if lvl := tbl.FloorLevel(100); lvl != 0 {
		t.Errorf("FloorLevel(100) = %d, want 0", lvl)
	}
}

func TestClampLevel(t *testing.T) {
	tbl := PentiumM()
	if tbl.ClampLevel(-5) != 0 {
		t.Error("negative level should clamp to 0")
	}
	if tbl.ClampLevel(100) != tbl.Levels()-1 {
		t.Error("oversized level should clamp to top")
	}
	if tbl.ClampLevel(3) != 3 {
		t.Error("in-range level should be unchanged")
	}
}

func TestPointPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Point(-1) should panic")
		}
	}()
	PentiumM().Point(-1)
}

// Property: NormFreq and DenormFreq are inverses over the table range.
func TestNormDenormRoundTripProperty(t *testing.T) {
	tbl := PentiumM()
	f := func(raw float64) bool {
		norm := math.Abs(math.Mod(raw, 1))
		freq := tbl.DenormFreq(norm)
		back := tbl.NormFreq(freq)
		return math.Abs(back-norm) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDenormFreqClamps(t *testing.T) {
	tbl := PentiumM()
	if tbl.DenormFreq(-1) != 600 {
		t.Error("DenormFreq(-1) should clamp to min frequency")
	}
	if tbl.DenormFreq(2) != 2000 {
		t.Error("DenormFreq(2) should clamp to max frequency")
	}
}
