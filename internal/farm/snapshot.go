package farm

import "github.com/cpm-sim/cpm/internal/snapshot"

// Snapshot appends the fleet's complete dynamic state: per group its
// sampler and every member session (runner and chip included). Valid only
// between lockstep rounds (see RunRounds) after every session has started
// and before any has finished — the one moment chips and samplers are
// mutually consistent.
func (f *Farm) Snapshot(e *snapshot.Encoder) error {
	e.Tag(snapshot.TagFarm)
	e.Int(f.nSpecs)
	e.Int(len(f.groups))
	for _, g := range f.groups {
		e.Int(len(g.members))
	}
	for _, g := range f.groups {
		g.sampler.Snapshot(e)
		for _, m := range g.members {
			if err := m.sess.Snapshot(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// Restore reads state written by Snapshot into a freshly constructed farm
// built from the same specs and options (sessions not yet started) —
// grouping is deterministic, so shapes line up exactly. Chips resume
// bit-identically: the restored samplers' cursors match the restored
// sessions' interval counters.
func (f *Farm) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagFarm)
	nSpecs := d.Int()
	nGroups := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nSpecs != f.nSpecs || nGroups != len(f.groups) {
		return snapshot.ShapeErrorf("snapshot farm is %d chips / %d groups, target is %d / %d",
			nSpecs, nGroups, f.nSpecs, len(f.groups))
	}
	for i, g := range f.groups {
		if n := d.Int(); d.Err() == nil && n != len(g.members) {
			return snapshot.ShapeErrorf("snapshot farm group %d has %d chips, target has %d", i, n, len(g.members))
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	for _, g := range f.groups {
		if err := g.sampler.Restore(d); err != nil {
			return err
		}
		for _, m := range g.members {
			if err := m.sess.Restore(d); err != nil {
				return err
			}
		}
	}
	return d.Err()
}
