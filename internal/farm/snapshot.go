package farm

import "github.com/cpm-sim/cpm/internal/snapshot"

// checkBetweenRounds enforces Snapshot's "valid between rounds" contract
// instead of trusting callers: every session must have started and none
// finished, every member still inside its interval budget must sit exactly
// at the group's round, and the shared sampler's cursor must agree with
// that round. Anything else is torn state — some chips one interval ahead
// of others or of the sampler they share — which would encode a fleet that
// can never have existed between rounds and resume divergently.
func (f *Farm) checkBetweenRounds() error {
	for gi, g := range f.groups {
		round := 0
		for _, m := range g.members {
			if !m.sess.Started() {
				return snapshot.ShapeErrorf("farm: snapshot before group %d chip %d started (run at least one round first)", gi, m.spec)
			}
			if m.sess.Finished() {
				return snapshot.ShapeErrorf("farm: snapshot after group %d chip %d finished", gi, m.spec)
			}
			if k := m.sess.Completed(); k > round {
				round = k
			}
		}
		for _, m := range g.members {
			want := round
			if total := m.sess.TotalIntervals(); total < want {
				want = total // exhausted members legitimately stop early
			}
			if k := m.sess.Completed(); k != want {
				return snapshot.ShapeErrorf("farm: snapshot taken mid-round: group %d chip %d at interval %d, round at %d",
					gi, m.spec, k, round)
			}
		}
		if c := g.sampler.Cursor(); c != g.baseCursor+round {
			return snapshot.ShapeErrorf("farm: snapshot taken mid-round: group %d sampler cursor %d, members at round %d (base %d)",
				gi, c, round, g.baseCursor)
		}
	}
	return nil
}

// Snapshot appends the fleet's complete dynamic state: per group its
// sampler and every member session (runner and chip included). Valid only
// between lockstep rounds (see RunRounds) after every session has started
// and before any has finished — the one moment chips and samplers are
// mutually consistent. That contract is enforced: a snapshot attempted
// mid-round (or before start / after finish) returns a shape error instead
// of silently encoding torn state.
func (f *Farm) Snapshot(e *snapshot.Encoder) error {
	if err := f.checkBetweenRounds(); err != nil {
		return err
	}
	e.Tag(snapshot.TagFarm)
	e.Int(f.nSpecs)
	e.Int(len(f.groups))
	for _, g := range f.groups {
		e.Int(len(g.members))
	}
	for _, g := range f.groups {
		g.sampler.Snapshot(e)
		for _, m := range g.members {
			if err := m.sess.Snapshot(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// Restore reads state written by Snapshot into a freshly constructed farm
// built from the same specs and options (sessions not yet started) —
// grouping is deterministic, so shapes line up exactly. Chips resume
// bit-identically: the restored samplers' cursors match the restored
// sessions' interval counters.
func (f *Farm) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagFarm)
	nSpecs := d.Int()
	nGroups := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nSpecs != f.nSpecs || nGroups != len(f.groups) {
		return snapshot.ShapeErrorf("snapshot farm is %d chips / %d groups, target is %d / %d",
			nSpecs, nGroups, f.nSpecs, len(f.groups))
	}
	for i, g := range f.groups {
		if n := d.Int(); d.Err() == nil && n != len(g.members) {
			return snapshot.ShapeErrorf("snapshot farm group %d has %d chips, target has %d", i, n, len(g.members))
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	for _, g := range f.groups {
		if err := g.sampler.Restore(d); err != nil {
			return err
		}
		for _, m := range g.members {
			if err := m.sess.Restore(d); err != nil {
				return err
			}
		}
	}
	return d.Err()
}
