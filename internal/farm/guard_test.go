package farm

import (
	"errors"
	"testing"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/snapshot"
	"github.com/cpm-sim/cpm/internal/workload"
)

// guardFarm builds a two-chip shared-sampler farm of unmanaged sessions,
// small enough for the torn-state tests to step by hand.
func guardFarm(t *testing.T, measureEpochs int) *Farm {
	t.Helper()
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Seed = 1
	cfg.Parallel = false
	spec := ChipSpec{
		Config: cfg,
		NewSession: func(cmp *sim.CMP) (*engine.Session, error) {
			return engine.NewSession(engine.NewChipRunner(cmp), engine.SessionConfig{
				MeasureEpochs: measureEpochs, Label: "guard",
			})
		},
	}
	f, err := New([]ChipSpec{spec, spec}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumGroups() != 1 {
		t.Fatalf("equal-config chips built %d groups, want 1", f.NumGroups())
	}
	return f
}

func snapshotErr(f *Farm) error {
	return f.Snapshot(snapshot.NewEncoder())
}

// TestFarmSnapshotMidRoundGuard pins the "valid between rounds" contract:
// a snapshot attempted while one chip of a sharing group is an interval
// ahead of the other must fail with a shape error instead of encoding torn
// state.
func TestFarmSnapshotMidRoundGuard(t *testing.T) {
	f := guardFarm(t, 1)
	pool := engine.Pool{Workers: 1}
	if err := f.RunRounds(pool, 3); err != nil {
		t.Fatal(err)
	}
	if err := snapshotErr(f); err != nil {
		t.Fatalf("between-rounds snapshot rejected: %v", err)
	}

	// Tear the group: advance one member only, exactly the illegal point a
	// naive checkpointer could hit inside a round.
	f.groups[0].members[0].sess.RunIntervals(1)
	err := snapshotErr(f)
	if err == nil {
		t.Fatal("mid-round snapshot accepted torn state")
	}
	if !errors.Is(err, snapshot.ErrShape) {
		t.Fatalf("mid-round snapshot error %v does not wrap snapshot.ErrShape", err)
	}

	// Completing the round restores consistency.
	f.groups[0].members[1].sess.RunIntervals(1)
	if err := snapshotErr(f); err != nil {
		t.Fatalf("snapshot after completing the round rejected: %v", err)
	}
}

// TestFarmSnapshotBeforeStartAndAfterFinish pins the window edges: before
// any round has run and after sessions have finished, Snapshot must refuse.
func TestFarmSnapshotBeforeStartAndAfterFinish(t *testing.T) {
	f := guardFarm(t, 1)
	if err := snapshotErr(f); !errors.Is(err, snapshot.ErrShape) {
		t.Fatalf("snapshot before first round = %v, want shape error", err)
	}
	if _, err := f.Run(engine.Pool{Workers: 1}, nil); err != nil {
		t.Fatal(err)
	}
	if err := snapshotErr(f); !errors.Is(err, snapshot.ErrShape) {
		t.Fatalf("snapshot after finish = %v, want shape error", err)
	}
}

// TestFarmSnapshotAllowsExhaustedMembers pins the legal asymmetry: members
// with shorter interval budgets stop early without finishing, and a
// between-rounds snapshot of such a fleet is still valid.
func TestFarmSnapshotAllowsExhaustedMembers(t *testing.T) {
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Seed = 1
	cfg.Parallel = false
	spec := func(epochs int) ChipSpec {
		return ChipSpec{
			Config: cfg,
			NewSession: func(cmp *sim.CMP) (*engine.Session, error) {
				return engine.NewSession(engine.NewChipRunner(cmp), engine.SessionConfig{
					MeasureEpochs: epochs, Label: "guard",
				})
			},
		}
	}
	f, err := New([]ChipSpec{spec(1), spec(2)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := engine.Pool{Workers: 1}
	// 25 rounds: the 20-interval member is exhausted, the 40-interval one
	// mid-run — a legal between-rounds state.
	if err := f.RunRounds(pool, 25); err != nil {
		t.Fatal(err)
	}
	if err := snapshotErr(f); err != nil {
		t.Fatalf("between-rounds snapshot with an exhausted member rejected: %v", err)
	}
}
