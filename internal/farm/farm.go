// Package farm batches many chip simulations into shared-workload groups
// stepped in lockstep — the fleet-scale execution layer between the
// single-chip kernel (internal/sim) and batch drivers (cpmsweep, the
// fleet benchmarks).
//
// The enabling property is that uarch.TraceRecords are frequency-
// independent: the expensive half of a chip interval (phase generation,
// address streams, ~20k sampled cache accesses — >95% of a live step)
// depends only on the chip's workload identity (seed, mix, core and cache
// configuration), not on its DVFS trajectory, controller, budget, memory
// or thermal state. Chips sharing a WorkloadKey therefore share one
// sim.Sampler: each interval the sampler runs once and every member chip
// evaluates only its cheap frequency-dependent half (uarch.ComputeCore)
// over its own per-chip state. A sweep's budget points — same workload,
// different budgets and controllers — collapse into one group, so the
// aggregate cost of N points approaches the cost of one.
//
// Per-core observables are mirrored into flat structure-of-arrays Columns
// (power, CPI, temperature, frequency vectors contiguous across chips), so
// fleet-level consumers stream plain float64 slices instead of chasing N
// chips' internal pointers.
//
// Every member chip is bit-identical to the live chip sim.New would have
// produced from its Config — proven against the pinned golden scenarios by
// internal/check — and group membership, group size and pool worker count
// never change results, only wall-clock.
package farm

import (
	"errors"
	"fmt"
	"sync"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/snapshot"
)

// WorkloadKey identifies the sampling half of a chip configuration: chips
// with equal keys produce identical TraceRecord streams and may share one
// sampler. Everything else in sim.Config — power model, memory timing,
// thermal, variation, initial DVFS level, NoC, interval length — belongs
// to the frequency-dependent half and may differ freely within a group.
type WorkloadKey string

// KeyOf derives the workload key of a configuration.
func KeyOf(cfg sim.Config) WorkloadKey {
	k := fmt.Sprintf("seed=%d/mix=%s%v/core=%+v/sharedl2=%v/pref=%d",
		cfg.Seed, cfg.Mix.Name, cfg.Mix.Islands, cfg.Core, cfg.SharedL2, cfg.L2PrefetchDegree)
	// Trace records depend on each island's core pipeline and frequency
	// axis, so the tech node and island classes are part of workload
	// identity; appended only when in use, legacy keys stay byte-identical.
	if cfg.Tech.Enabled() {
		k += "/tech=" + cfg.Tech.String()
	}
	if cfg.IslandClasses != nil {
		k += fmt.Sprintf("/classes=%v", cfg.IslandClasses)
	}
	return WorkloadKey(k)
}

// ChipSpec describes one member chip of a farm.
type ChipSpec struct {
	// Config is the chip configuration. The record-driven member built
	// from it is bit-identical to sim.New(Config).
	Config sim.Config
	// Init, when non-nil, runs after chip construction and before the
	// session is built — e.g. restoring a warm-template snapshot into the
	// chip (warm-started sweeps).
	Init func(cmp *sim.CMP) error
	// NewSession builds the chip's session: wrap the chip in a runner
	// (unmanaged, CPM, MaxBIPS, ...) and attach observers. Required.
	NewSession func(cmp *sim.CMP) (*engine.Session, error)
}

// Options shapes farm construction.
type Options struct {
	// MaxGroup caps the number of chips sharing one sampler; groups larger
	// than the cap are split (each split gets its own sampler, trading
	// amortization for pool parallelism). 0 means unlimited.
	MaxGroup int
	// SamplerState, when non-nil, is a sim.Sampler snapshot restored into
	// every group's sampler — the warm-started path, where member chips
	// fork from templates already advanced past the snapshot's cursor.
	SamplerState []byte
}

// member is one chip with its session, remembering its spec index so
// results come back in spec order.
type member struct {
	spec int
	cmp  *sim.CMP
	sess *engine.Session
}

// group is the unit of sharing and of pool parallelism: one sampler plus
// the member chips drawing records from it.
type group struct {
	key     WorkloadKey
	sampler *sim.Sampler
	members []member
	fr      *engine.FarmRunner
	// baseCursor is the sampler cursor at construction time (non-zero only
	// for warm-started farms). Between lockstep rounds the cursor equals
	// baseCursor plus the round count, which is what Snapshot's torn-state
	// guard checks.
	baseCursor int
}

// Farm is a constructed fleet: grouped chips, sessions and SoA columns,
// ready to run.
type Farm struct {
	groups []*group
	nSpecs int
	cols   Columns

	mu         sync.Mutex
	completed  int
	onProgress func(completed, total int)
}

// New builds the fleet: specs are grouped by WorkloadKey (first-seen
// order, split at opts.MaxGroup), each group gets one sampler, and every
// spec becomes a record-driven chip plus session. Construction is eager
// and deterministic; Run only steps.
func New(specs []ChipSpec, opts Options) (*Farm, error) {
	if len(specs) == 0 {
		return nil, errors.New("farm: no chips")
	}
	f := &Farm{nSpecs: len(specs)}

	// Group spec indices by workload key, preserving first-seen order.
	order := []WorkloadKey{}
	byKey := map[WorkloadKey][]int{}
	for i, s := range specs {
		if s.NewSession == nil {
			return nil, fmt.Errorf("farm: chip %d has no session factory", i)
		}
		k := KeyOf(s.Config)
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], i)
	}

	for _, k := range order {
		idxs := byKey[k]
		for len(idxs) > 0 {
			n := len(idxs)
			if opts.MaxGroup > 0 && n > opts.MaxGroup {
				n = opts.MaxGroup
			}
			g, err := buildGroup(k, specs, idxs[:n], opts.SamplerState)
			if err != nil {
				return nil, err
			}
			f.groups = append(f.groups, g)
			idxs = idxs[n:]
		}
	}
	f.initColumns(specs)
	return f, nil
}

// buildGroup constructs one sampler and its member chips and sessions.
func buildGroup(key WorkloadKey, specs []ChipSpec, idxs []int, samplerState []byte) (*group, error) {
	sampler, err := sim.NewSampler(specs[idxs[0]].Config)
	if err != nil {
		return nil, fmt.Errorf("farm: sampler for %s: %w", key, err)
	}
	if samplerState != nil {
		if err := sampler.Restore(snapshot.NewDecoder(samplerState)); err != nil {
			return nil, fmt.Errorf("farm: restoring sampler for %s: %w", key, err)
		}
	}
	g := &group{key: key, sampler: sampler, baseCursor: sampler.Cursor()}
	for _, i := range idxs {
		spec := specs[i]
		cmp, err := sim.NewWithRecords(spec.Config, sampler)
		if err != nil {
			return nil, fmt.Errorf("farm: chip %d: %w", i, err)
		}
		cmp.SetCacheStatsSource(sampler.CacheStats)
		cmp.SetIslandCacheStatsSource(sampler.IslandCacheStats)
		if spec.Init != nil {
			if err := spec.Init(cmp); err != nil {
				return nil, fmt.Errorf("farm: chip %d init: %w", i, err)
			}
		}
		sess, err := spec.NewSession(cmp)
		if err != nil {
			return nil, fmt.Errorf("farm: chip %d session: %w", i, err)
		}
		if sess == nil {
			return nil, fmt.Errorf("farm: chip %d session factory returned nil", i)
		}
		g.members = append(g.members, member{spec: i, cmp: cmp, sess: sess})
	}
	sessions := make([]*engine.Session, len(g.members))
	for j, m := range g.members {
		sessions[j] = m.sess
	}
	g.fr, err = engine.NewFarmRunner(sessions)
	if err != nil {
		return nil, err
	}
	return g, nil
}

// NumChips returns the fleet size.
func (f *Farm) NumChips() int { return f.nSpecs }

// NumGroups returns the number of sampler groups.
func (f *Farm) NumGroups() int { return len(f.groups) }

// GroupSampler returns group g's sampler (e.g. for fleet-level cache
// telemetry); groups appear in construction order.
func (f *Farm) GroupSampler(g int) *sim.Sampler { return f.groups[g].sampler }

// Chip returns member chip i (spec order).
func (f *Farm) Chip(i int) *sim.CMP {
	for _, g := range f.groups {
		for _, m := range g.members {
			if m.spec == i {
				return m.cmp
			}
		}
	}
	return nil
}

// progress folds a group's newly completed sessions into the fleet count
// and forwards it; called from pool workers, hence the lock.
func (f *Farm) progress(delta int) {
	if delta == 0 || f.onProgress == nil {
		return
	}
	f.mu.Lock()
	f.completed += delta
	done, total := f.completed, f.nSpecs
	cb := f.onProgress
	f.mu.Unlock()
	cb(done, total)
}

// Run executes the whole fleet on the pool — groups are the unit of
// parallelism; within a group, chips step in lockstep rounds — and
// returns the summaries in spec order. onProgress, when non-nil, is
// invoked (serialized) whenever sessions finish, with fleet-wide counts.
// Byte-identical results at any pool size or grouping.
func (f *Farm) Run(pool engine.Pool, onProgress func(completed, total int)) ([]engine.Summary, error) {
	f.onProgress = onProgress
	out := make([]engine.Summary, f.nSpecs)
	err := pool.Run(len(f.groups), func(gi int) error {
		g := f.groups[gi]
		prev := 0
		sums := g.fr.Run(func(done, _ int) {
			f.progress(done - prev)
			prev = done
		})
		for j, m := range g.members {
			out[m.spec] = sums[j]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunRounds advances every group by up to n lockstep rounds without
// finishing any session — the checkpointing hook: between rounds every
// chip and its sampler are mutually consistent, so Snapshot captures a
// resumable fleet.
func (f *Farm) RunRounds(pool engine.Pool, n int) error {
	return pool.Run(len(f.groups), func(gi int) error {
		g := f.groups[gi]
		for i := 0; i < n && g.fr.Active() > 0; i++ {
			g.fr.StepRound()
		}
		return nil
	})
}

// Finish drives every group's remaining rounds and finishes all sessions,
// returning summaries in spec order — Run, for a fleet already partially
// advanced by RunRounds.
func (f *Farm) Finish(pool engine.Pool, onProgress func(completed, total int)) ([]engine.Summary, error) {
	return f.Run(pool, onProgress)
}
