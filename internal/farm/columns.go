package farm

import "github.com/cpm-sim/cpm/internal/sim"

// Columns is the fleet's structure-of-arrays observation state: per-core
// vectors laid out contiguously across chips (chip i's cores occupy
// [CoreOffsets[i], CoreOffsets[i+1])), refreshed in place on every chip
// step. Consumers — the fleet benchmark, the farm metrics observer,
// future serving layers — stream flat float64 slices instead of walking N
// chips' island trees; writers touch disjoint regions, so groups fill
// their chips' columns concurrently without synchronization.
type Columns struct {
	// CoreOffsets has NumChips+1 entries; the last is the fleet core count.
	CoreOffsets []int
	// Per-core columns, fleet-wide.
	PowerW  []float64
	CPI     []float64
	TempC   []float64
	FreqMHz []float64
	// Per-chip aggregates.
	ChipPowerW   []float64
	ChipBIPS     []float64
	ChipMaxTempC []float64
	// ChipInterval is each chip's last completed interval index.
	ChipInterval []int
}

// initColumns sizes the columns and installs the per-chip step hooks that
// keep them current. Hooks write only their chip's slice regions and
// allocate nothing.
func (f *Farm) initColumns(specs []ChipSpec) {
	f.cols.CoreOffsets = make([]int, f.nSpecs+1)
	for _, g := range f.groups {
		for _, m := range g.members {
			f.cols.CoreOffsets[m.spec+1] = m.cmp.NumCores()
		}
	}
	for i := 0; i < f.nSpecs; i++ {
		f.cols.CoreOffsets[i+1] += f.cols.CoreOffsets[i]
	}
	total := f.cols.CoreOffsets[f.nSpecs]
	f.cols.PowerW = make([]float64, total)
	f.cols.CPI = make([]float64, total)
	f.cols.TempC = make([]float64, total)
	f.cols.FreqMHz = make([]float64, total)
	f.cols.ChipPowerW = make([]float64, f.nSpecs)
	f.cols.ChipBIPS = make([]float64, f.nSpecs)
	f.cols.ChipMaxTempC = make([]float64, f.nSpecs)
	f.cols.ChipInterval = make([]int, f.nSpecs)

	for _, g := range f.groups {
		for _, m := range g.members {
			i := m.spec
			cmp := m.cmp
			off, end := f.cols.CoreOffsets[i], f.cols.CoreOffsets[i+1]
			cols := &f.cols
			cmp.AddStepHook(func(res sim.Result) {
				cols.ChipPowerW[i] = res.ChipPowerW
				cols.ChipBIPS[i] = res.TotalBIPS
				cols.ChipMaxTempC[i] = res.MaxTempC
				cols.ChipInterval[i] = res.Interval
				cmp.CorePowers(cols.PowerW[off:end])
				cmp.CoreCPIs(cols.CPI[off:end])
				cmp.CoreTemps(cols.TempC[off:end])
				cmp.CoreFreqsMHz(cols.FreqMHz[off:end])
			})
		}
	}
}

// Columns returns the fleet's column state. Valid to read between Run
// calls (or after Run returns); while groups are stepping concurrently,
// only each chip's own hooks may touch its regions.
func (f *Farm) Columns() *Columns { return &f.cols }
