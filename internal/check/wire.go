package check

import (
	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/pic"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
)

// ForChip derives a Config from a live simulator instance: DVFS table,
// per-island and chip maxima, thermal envelope parameters. budgetW of 0
// configures an unmanaged run (no budget check).
func ForChip(cmp *sim.CMP, budgetW float64) Config {
	n := cmp.NumIslands()
	islandMax := make([]float64, n)
	for i := 0; i < n; i++ {
		islandMax[i] = cmp.IslandMaxPowerW(i)
	}
	cfg := Config{
		BudgetW:       budgetW,
		IslandMaxW:    islandMax,
		MaxChipPowerW: cmp.MaxChipPowerW(),
		Thermal:       cmp.Thermals().Config(),
	}
	if cmp.Heterogeneous() {
		// Per-island legality tables; the thermal envelope bounds the
		// hottest core class.
		tables := make([]*power.DVFSTable, n)
		for i := 0; i < n; i++ {
			tables[i] = cmp.IslandTable(i)
			if w := cmp.IslandModel(i).CoreMaxPower(); w > cfg.MaxCorePowerW {
				cfg.MaxCorePowerW = w
			}
		}
		cfg.Tables = tables
	} else {
		cfg.Table = cmp.Table()
		cfg.MaxCorePowerW = cmp.Model().CoreMaxPower()
	}
	return cfg
}

// ForCPM wires the full standard suite for a managed run: everything All
// gives for the chip, plus PIDBounds over the controller's live PICs.
func ForCPM(ctl *core.CPM, budgetW float64) *Suite {
	return ForCPMWithConfig(ctl, ForChip(ctl.Chip(), budgetW))
}

// ForCPMWithConfig is ForCPM with an explicit (possibly adjusted) Config —
// e.g. fault-injection runs disable the budget check, since breaking the
// provisioning contract is exactly what the injected fault does.
func ForCPMWithConfig(ctl *core.CPM, cfg Config) *Suite {
	s := All(cfg)
	pics := make([]*pic.Controller, ctl.Chip().NumIslands())
	for i := range pics {
		pics[i] = ctl.PIC(i)
	}
	s.Add(NewPIDBounds(pics...))
	return s
}
