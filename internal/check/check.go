// Package check is the run-long invariant subsystem: a library of
// composable observers that plug into engine.Session and machine-check the
// physical and control-theoretic properties the paper's whole argument
// rests on — the GPM never provisions more than the budget and island power
// settles under its provision (§II-C), every actuated operating point is a
// legal entry of the island's DVFS table (§II-B), the PID respects its
// anti-windup clamp and actuator range (§II-D, Eq. 7), temperatures stay
// inside the RC thermal model's operating envelope (Fig. 18), instruction
// and energy accounting are conserved, and the whole per-interval state
// series is deterministic (hashable, replayable).
//
// Unlike the scenario tests that sample these properties at a handful of
// points, a check.Suite rides along with the run and examines *every*
// interval and epoch, the way hardware-in-the-loop validation traces do.
// Violations carry structured context (interval, island, observed value vs.
// bound) and accumulate into a report; All(cfg) wires the standard suite,
// ForChip/ForCPM derive the configuration from a live simulator instance.
//
// On top of the invariant library, the package provides a golden-trace
// regression harness (Golden, Trace, the canonical Scenarios): compact
// hashed traces of canonical runs are stored under testdata/golden and
// compared on every test run, so any behavioural drift — an accidental
// change to the power model, the PID, the provisioning policy — fails
// tier-1 tests before it reaches a figure reproduction.
package check

import (
	"fmt"
	"strings"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/thermal"
)

// Violation is one observed invariant breach with its full context.
type Violation struct {
	// Check names the invariant ("budget-conservation", "dvfs-legality",
	// ...).
	Check string
	// Interval is the step index the violation was observed at, -1 for
	// epoch- or run-level violations.
	Interval int
	// Epoch is the measured-epoch index, -1 for interval- or run-level
	// violations.
	Epoch int
	// Island is the island index, -1 for chip-level violations.
	Island int
	// Observed and Bound are the offending value and the limit it broke.
	Observed float64
	// Bound is the limit the observation violated.
	Bound float64
	// Msg describes the broken invariant.
	Msg string
}

// String renders the violation with its context.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]", v.Check)
	if v.Interval >= 0 {
		fmt.Fprintf(&b, " interval %d", v.Interval)
	}
	if v.Epoch >= 0 {
		fmt.Fprintf(&b, " epoch %d", v.Epoch)
	}
	if v.Island >= 0 {
		fmt.Fprintf(&b, " island %d", v.Island)
	}
	fmt.Fprintf(&b, ": %s (observed %.6g, bound %.6g)", v.Msg, v.Observed, v.Bound)
	return b.String()
}

// Check is one invariant observer: an engine.Observer that accumulates the
// violations it finds.
type Check interface {
	engine.Observer
	// Name identifies the invariant in reports.
	Name() string
	// Violations returns the breaches found so far (nil when clean).
	Violations() []Violation
}

// maxViolationsPerCheck caps accumulation so a systematically broken run
// (every interval violating) cannot grow memory without bound; the count of
// dropped violations is still tracked.
const maxViolationsPerCheck = 64

// recorder is the shared violation-accumulation base embedded by every
// checker.
type recorder struct {
	name    string
	vs      []Violation
	dropped int
}

func (r *recorder) Name() string { return r.name }

func (r *recorder) Violations() []Violation { return r.vs }

func (r *recorder) report(v Violation) {
	v.Check = r.name
	if len(r.vs) >= maxViolationsPerCheck {
		r.dropped++
		return
	}
	r.vs = append(r.vs, v)
}

// Suite bundles checks behind a single engine.Observer, fanning every event
// out to each member and aggregating their findings.
type Suite struct {
	checks []Check
}

// NewSuite builds a suite from explicit checks.
func NewSuite(checks ...Check) *Suite { return &Suite{checks: checks} }

// Add appends further checks (e.g. a Golden recorder next to All's suite).
func (s *Suite) Add(checks ...Check) { s.checks = append(s.checks, checks...) }

// Checks returns the member checks.
func (s *Suite) Checks() []Check { return s.checks }

// RunStart implements engine.Observer.
func (s *Suite) RunStart(info engine.RunInfo) {
	for _, c := range s.checks {
		c.RunStart(info)
	}
}

// ObserveStep implements engine.Observer.
func (s *Suite) ObserveStep(st engine.Step) {
	for _, c := range s.checks {
		c.ObserveStep(st)
	}
}

// ObserveEpoch implements engine.Observer.
func (s *Suite) ObserveEpoch(e engine.Epoch) {
	for _, c := range s.checks {
		c.ObserveEpoch(e)
	}
}

// RunEnd implements engine.Observer.
func (s *Suite) RunEnd(sum *engine.Summary) {
	for _, c := range s.checks {
		c.RunEnd(sum)
	}
}

// RunResumed implements engine.ResumeAware, forwarding to every member
// check that cares (e.g. Accounting, whose whole-window reconciliation
// cannot hold when the suite only observed the run's tail).
func (s *Suite) RunResumed(completedIntervals int) {
	for _, c := range s.checks {
		if ra, ok := c.(engine.ResumeAware); ok {
			ra.RunResumed(completedIntervals)
		}
	}
}

// Violations returns every member check's findings, in check order.
func (s *Suite) Violations() []Violation {
	var out []Violation
	for _, c := range s.checks {
		out = append(out, c.Violations()...)
	}
	return out
}

// Err returns nil when every check is clean, otherwise an error summarising
// the first violations (all of them when few, elided when many).
func (s *Suite) Err() error {
	vs := s.Violations()
	if len(vs) == 0 {
		return nil
	}
	const show = 5
	var b strings.Builder
	fmt.Fprintf(&b, "check: %d invariant violation(s):", len(vs))
	for i, v := range vs {
		if i == show {
			fmt.Fprintf(&b, "\n  ... and %d more", len(vs)-show)
			break
		}
		fmt.Fprintf(&b, "\n  %s", v.String())
	}
	return fmt.Errorf("%s", b.String())
}

// Report renders a human-readable violation report ("all invariants held"
// when clean), listing per-check status.
func (s *Suite) Report() string {
	var b strings.Builder
	for _, c := range s.checks {
		vs := c.Violations()
		if len(vs) == 0 {
			fmt.Fprintf(&b, "%-22s ok\n", c.Name())
			continue
		}
		fmt.Fprintf(&b, "%-22s %d violation(s)\n", c.Name(), len(vs))
		for _, v := range vs {
			fmt.Fprintf(&b, "  %s\n", v.String())
		}
	}
	return b.String()
}

// Config parameterizes the standard suite. ForChip fills it from a live
// simulator instance; zero fields disable the checks that need them.
type Config struct {
	// Table is the DVFS table every actuated operating point must belong
	// to; nil disables DVFSLegality.
	Table *power.DVFSTable
	// Tables are per-island DVFS tables for heterogeneous chips; when set
	// they override Table and island i is judged against Tables[i].
	Tables []*power.DVFSTable
	// BudgetW is the chip power budget; 0 disables BudgetConservation.
	BudgetW float64
	// IslandMaxW are the per-island maximum powers, used to scale the
	// island-level budget tolerance (quantized actuators cannot hold an
	// arbitrary power, so the slack is a fraction of island max, not of
	// the allocation).
	IslandMaxW []float64
	// MaxChipPowerW bounds chip power and anchors ChipPowerFrac
	// consistency; 0 skips those sub-checks.
	MaxChipPowerW float64
	// Thermal is the RC model configuration the envelope is derived from.
	Thermal thermal.Config
	// MaxCorePowerW is the largest per-core dissipation the thermal
	// envelope assumes; 0 disables ThermalEnvelope.
	MaxCorePowerW float64
	// SettleEpochs is the number of initial measured epochs the budget
	// check skips — the paper's own settling transient (≤ 6 PIC
	// invocations per §II-D, well under one epoch, but GPM reallocation
	// needs a few epochs to converge). Default 3.
	SettleEpochs int
	// BudgetTolFrac is the chip-level relative overshoot tolerance
	// (default 0.05: the worst post-settle epoch may exceed the budget by
	// 5%, looser than the paper's steady-state claim but tight enough to
	// catch a broken loop immediately).
	BudgetTolFrac float64
	// IslandTolFrac is the island-level tolerance as a fraction of island
	// max power (default 0.08: roughly half the inter-level power quantum,
	// the best a quantized actuator with the PIC's asymmetric deadband can
	// guarantee).
	IslandTolFrac float64
}

func (c Config) settleEpochs() int {
	if c.SettleEpochs == 0 {
		return 3
	}
	if c.SettleEpochs < 0 {
		return 0
	}
	return c.SettleEpochs
}

func (c Config) budgetTol() float64 {
	if c.BudgetTolFrac <= 0 {
		return 0.05
	}
	return c.BudgetTolFrac
}

func (c Config) islandTol() float64 {
	if c.IslandTolFrac <= 0 {
		return 0.08
	}
	return c.IslandTolFrac
}

// All wires the standard invariant suite for cfg: budget conservation,
// DVFS legality, thermal envelope, accounting conservation and the
// determinism hash. Checks whose configuration is absent are omitted, so
// All is safe for unmanaged and baseline runs too.
func All(cfg Config) *Suite {
	s := &Suite{}
	if cfg.BudgetW > 0 {
		s.Add(NewBudgetConservation(cfg))
	}
	if cfg.Tables != nil {
		s.Add(NewDVFSLegalityPerIsland(cfg.Tables))
	} else if cfg.Table != nil {
		s.Add(NewDVFSLegality(cfg.Table))
	}
	if cfg.MaxCorePowerW > 0 {
		s.Add(NewThermalEnvelope(cfg.Thermal, cfg.MaxCorePowerW))
	}
	s.Add(NewAccounting(cfg.MaxChipPowerW))
	s.Add(NewDeterminism(0))
	return s
}
