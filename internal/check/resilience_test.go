package check

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/sweepd"
)

// resiliencePoints wraps every canonical scenario as a migratable sweepd
// point: golden recorder attached as both observer and aux checkpoint
// state, so a migration ships the digest accumulator along with the
// session. The goldens/suites slices hold the FINAL incarnation per point
// (the one that ran to completion).
func resiliencePoints(scenarios []Scenario) ([]sweepd.Point, []*Golden, []*Suite) {
	goldens := make([]*Golden, len(scenarios))
	suites := make([]*Suite, len(scenarios))
	pts := make([]sweepd.Point, len(scenarios))
	for i, sc := range scenarios {
		i, sc := i, sc
		pts[i] = sweepd.Point{
			Name: sc.Name,
			Build: func() (*sweepd.Instance, error) {
				g := NewGolden(sc.Name)
				sess, suite, err := sc.Build(goldenSeed, g)
				if err != nil {
					return nil, err
				}
				goldens[i] = g
				suites[i] = suite
				return &sweepd.Instance{Session: sess, Aux: []sweepd.State{g}}, nil
			},
		}
	}
	return pts, goldens, suites
}

// TestResilientKillEquivalenceAllScenarios is the crash-safety tentpole
// proof: every canonical scenario driven through the sweepd coordinator
// with a worker kill injected at EVERY interval boundary (and a checkpoint
// taken at every boundary, so each kill rolls back exactly one interval)
// must finish with digests identical to the pinned goldens recorded by
// uninterrupted runs — bit-identical results under maximal fault pressure.
func TestResilientKillEquivalenceAllScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("full nine-scenario kill replay skipped in -short mode")
	}
	scenarios := Canonical()
	pts, goldens, suites := resiliencePoints(scenarios)
	c, err := sweepd.New(pts, sweepd.Config{
		Workers:         2,
		CheckpointEvery: 1,
		KillEvery:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	wantKills := 0
	for _, sc := range scenarios {
		wantKills += (sc.warm() + sc.meas()) * 20
	}
	st := c.Stats()
	if st.Kills != wantKills {
		t.Errorf("injected %d kills, want one per interval boundary = %d", st.Kills, wantKills)
	}
	if st.Migrations != wantKills || st.Restores == 0 {
		t.Errorf("migrations=%d restores=%d, want %d migrations with checkpoint resumes", st.Migrations, st.Restores, wantKills)
	}
	for i, sc := range scenarios {
		if err := suites[i].Err(); err != nil {
			t.Errorf("scenario %s violated invariants under kill injection:\n%v", sc.Name, err)
		}
		if err := goldens[i].Trace().Diff(loadRef(t, sc.Name)); err != nil {
			t.Errorf("scenario %s diverged from its unkilled golden under kill injection: %v", sc.Name, err)
		}
	}
}

// TestResilientRollbackCadence exercises the awkward cadence pairing where
// kills land between checkpoints (checkpoint every 5, kill every 7): each
// migration rolls back and deterministically re-executes lost intervals,
// and the digests still match the pinned golden.
func TestResilientRollbackCadence(t *testing.T) {
	if testing.Short() {
		t.Skip("rollback replay skipped in -short mode")
	}
	scenarios := Canonical()[:1] // cpm-default
	pts, goldens, suites := resiliencePoints(scenarios)
	c, err := sweepd.New(pts, sweepd.Config{
		Workers:         1,
		CheckpointEvery: 5,
		KillEvery:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	total := (scenarios[0].warm() + scenarios[0].meas()) * 20
	if want := total / 7; st.Kills != want {
		t.Errorf("kills = %d, want %d", st.Kills, want)
	}
	if st.Restores == 0 {
		t.Error("no migration resumed from a checkpoint")
	}
	if err := suites[0].Err(); err != nil {
		t.Errorf("invariants violated under rollback cadence:\n%v", err)
	}
	if err := goldens[0].Trace().Diff(loadRef(t, scenarios[0].Name)); err != nil {
		t.Errorf("rollback cadence diverged from the unkilled golden: %v", err)
	}
}
