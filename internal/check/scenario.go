package check

import (
	"fmt"
	"strings"
	"sync"

	"github.com/cpm-sim/cpm/internal/control"
	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/pic"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/thermal"
	"github.com/cpm-sim/cpm/internal/variation"
	"github.com/cpm-sim/cpm/internal/workload"
)

// Scenario is one canonical end-to-end configuration pinned by the golden
// harness. The set in Canonical covers every control path the paper
// evaluates: the default two-tier CPM loop, the MaxBIPS baseline, the
// thermal- and variation-aware provisioning policies, fault injection, a
// second point on the budget axis, and the adaptive/predictive extensions
// (adaptive-gain PIC, MPC-style GPM, cache-aware provisioning).
type Scenario struct {
	// Name keys the golden file (testdata/golden/<Name>.json).
	Name string
	// Mix builds the workload.
	Mix func() workload.Mix
	// Variation, when non-empty, applies intra-die process variation.
	Variation variation.Map
	// Policy, when non-nil, builds the GPM provisioning policy (fresh per
	// run — policies carry history). Nil means gpm.PerformanceAware.
	Policy func() (gpm.Policy, error)
	// BudgetFrac is the §IV budget fraction of calibrated unmanaged power.
	BudgetFrac float64
	// MaxBIPS selects the open-loop MaxBIPS baseline instead of CPM. Its
	// chip-budget tolerance is widened (see Run): the planner holds
	// *predicted* power under budget, and the paper's point is precisely
	// that its realized power overshoots.
	MaxBIPS bool
	// Faults, when non-nil, injects the §"extension" fault plan.
	Faults *core.FaultPlan
	// GainScale multiplies the paper PID gains (0 or 1 = paper gains).
	// It exists for the harness's self-test: a perturbed controller must
	// change the golden digests.
	GainScale float64
	// Adaptive runs every PIC with the adaptive-gain estimator, seeded
	// from the scenario's own calibrated plant gain (core.Config.Adaptive).
	Adaptive bool
	// Tech, when enabled, rescales the chip to the given technology node
	// (sim.Config.Tech).
	Tech power.TechConfig
	// Classes, when non-nil, assigns per-island core classes — the
	// big.LITTLE axis (sim.Config.IslandClasses).
	Classes []power.CoreClass
	// WarmEpochs/MeasureEpochs shape the run; zero means the canonical
	// 2 warm + 4 measured epochs.
	WarmEpochs    int
	MeasureEpochs int
}

func (s Scenario) warm() int {
	if s.WarmEpochs > 0 {
		return s.WarmEpochs
	}
	return 2
}

func (s Scenario) meas() int {
	if s.MeasureEpochs > 0 {
		return s.MeasureEpochs
	}
	return 4
}

// Canonical returns the eleven pinned scenarios. Names are stable — they
// key the golden files.
func Canonical() []Scenario {
	return []Scenario{
		{Name: "cpm-default", Mix: workload.Mix1, BudgetFrac: 0.8},
		{Name: "maxbips", Mix: workload.Mix1, BudgetFrac: 0.8, MaxBIPS: true},
		{Name: "thermal-policy", Mix: workload.ThermalMix, BudgetFrac: 0.5, Policy: thermalPolicy},
		{
			Name: "variation-aware", Mix: workload.Mix1, BudgetFrac: 0.8,
			Variation: variation.PaperIslands(2),
			Policy: func() (gpm.Policy, error) {
				return &gpm.VariationAware{StepFrac: 0.08, HoldIntervals: 1, MinShareFrac: 0.7}, nil
			},
		},
		{
			Name: "fault-noise", Mix: workload.Mix1, BudgetFrac: 0.8,
			Faults: &core.FaultPlan{UtilNoiseStd: 0.15, StuckIsland: -1, Seed: 11},
		},
		{Name: "budget-60", Mix: workload.Mix1, BudgetFrac: 0.6},
		{Name: "adaptive-pic", Mix: workload.Mix1, BudgetFrac: 0.8, Adaptive: true},
		{
			Name: "mpc-gpm", Mix: workload.Mix1, BudgetFrac: 0.8,
			Policy: func() (gpm.Policy, error) { return &gpm.ModelPredictive{}, nil },
		},
		{
			Name: "cache-aware", Mix: workload.Mix1, BudgetFrac: 0.7,
			Policy: func() (gpm.Policy, error) { return &gpm.CacheAware{}, nil },
		},
		{
			Name: "hetero-biglittle", Mix: workload.Mix1, BudgetFrac: 0.8,
			Classes: []power.CoreClass{
				power.ClassOoO, power.ClassLittleIO, power.ClassOoO, power.ClassLittleIO,
			},
		},
		{
			Name: "tech-16nm", Mix: workload.Mix1, BudgetFrac: 0.8,
			Tech: power.TechConfig{Node: power.Node16, Variant: power.ITRS},
		},
	}
}

// ScenarioNames lists the canonical scenario names, in Canonical order.
func ScenarioNames() []string {
	cs := Canonical()
	names := make([]string, len(cs))
	for i, sc := range cs {
		names[i] = sc.Name
	}
	return names
}

// ScenarioByName resolves a canonical scenario; the error lists the valid
// names. Callers that want to vary the run (budget, windows) mutate the
// returned copy before Build.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range Canonical() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("check: unknown scenario %q (have %s)", name, strings.Join(ScenarioNames(), ", "))
}

// Defaults returns the effective warmup and measurement windows in GPM
// epochs — the zero-value defaults resolved, so external layers (the serve
// request normalizer) can content-address a run without duplicating them.
func (s Scenario) Defaults() (warmEpochs, measureEpochs int) {
	return s.warm(), s.meas()
}

// thermalPolicy builds the Figure 18 constraint set over a 2x4 floorplan,
// matching the experiments harness.
func thermalPolicy() (gpm.Policy, error) {
	fp, err := thermal.Grid(2, 4)
	if err != nil {
		return nil, err
	}
	return &gpm.ThermalAware{
		Base:                 &gpm.PerformanceAware{},
		Floorplan:            fp,
		AdjacentPairCap:      0.30,
		ConsecutiveLimit:     2,
		SoloCap:              0.20,
		SoloConsecutiveLimit: 4,
	}, nil
}

// scenarioCal caches calibrations across scenario runs in one process —
// calibration dominates scenario cost and is identical for equal
// (mix, variation, seed) keys.
var (
	scenarioCalMu sync.Mutex
	scenarioCal   = map[string]core.Calibration{}
)

func (s Scenario) calibrate(cfg sim.Config) (core.Calibration, error) {
	key := fmt.Sprintf("%s/var=%d/seed=%d/tech=%s/classes=%v",
		cfg.Mix.Name, s.Variation.Len(), cfg.Seed, cfg.Tech, cfg.IslandClasses)
	scenarioCalMu.Lock()
	cal, ok := scenarioCal[key]
	scenarioCalMu.Unlock()
	if ok {
		return cal, nil
	}
	cal, err := core.Calibrate(cfg, 60, 240)
	if err != nil {
		return core.Calibration{}, err
	}
	scenarioCalMu.Lock()
	scenarioCal[key] = cal
	scenarioCalMu.Unlock()
	return cal, nil
}

// Run executes the scenario under the full standard invariant suite plus
// any extra observers (e.g. a Golden recorder), returning the summary and
// the suite for violation inspection.
func (s Scenario) Run(seed uint64, extra ...engine.Observer) (engine.Summary, *Suite, error) {
	sess, suite, err := s.Build(seed, extra...)
	if err != nil {
		return engine.Summary{}, nil, err
	}
	return sess.Run(), suite, nil
}

// Build constructs the scenario's full stack — chip, controller or
// baseline, invariant suite, session — without running it. Construction is
// deterministic in (scenario, seed): two Builds produce process-equivalent
// stacks, which is what lets a snapshot taken mid-run in one stack be
// restored into a fresh one (checkpoint/resume, warm-started sweeps) and
// continue bit-identically.
func (s Scenario) Build(seed uint64, extra ...engine.Observer) (*engine.Session, *Suite, error) {
	cfg := s.BuildConfig(seed)
	cmp, err := sim.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	return s.assemble(cmp, cfg, extra...)
}

// BuildConfig returns the chip configuration Build simulates for seed —
// the input a farm needs to construct an equivalent record-driven chip.
func (s Scenario) BuildConfig(seed uint64) sim.Config {
	cfg := sim.DefaultConfig(s.Mix())
	cfg.Seed = seed
	cfg.Parallel = false // sequential: golden digests must not depend on GOMAXPROCS
	cfg.Variation = s.Variation
	cfg.Tech = s.Tech
	cfg.IslandClasses = s.Classes
	return cfg
}

// BuildOn assembles the scenario's stack over a caller-supplied chip built
// from BuildConfig(seed) — normally a farm member (sim.NewWithRecords), so
// the pinned golden scenarios can be replayed through the batched path.
func (s Scenario) BuildOn(cmp *sim.CMP, seed uint64, extra ...engine.Observer) (*engine.Session, *Suite, error) {
	return s.assemble(cmp, s.BuildConfig(seed), extra...)
}

// assemble calibrates (process-cached) and wires controller or baseline,
// invariant suite and session around the chip.
func (s Scenario) assemble(cmp *sim.CMP, cfg sim.Config, extra ...engine.Observer) (*engine.Session, *Suite, error) {
	cal, err := s.calibrate(cfg)
	if err != nil {
		return nil, nil, err
	}
	budget := cal.BudgetW(s.BudgetFrac)

	if s.MaxBIPS {
		return s.buildMaxBIPS(cmp, budget, extra...)
	}
	return s.buildCPM(cmp, cal, budget, extra...)
}

func (s Scenario) buildCPM(cmp *sim.CMP, cal core.Calibration, budget float64, extra ...engine.Observer) (*engine.Session, *Suite, error) {
	var err error
	var policy gpm.Policy
	if s.Policy != nil {
		if policy, err = s.Policy(); err != nil {
			return nil, nil, err
		}
	}
	gains := control.PaperGains
	if s.GainScale != 0 && s.GainScale != 1 {
		gains = control.Gains{
			KP: control.PaperGains.KP * s.GainScale,
			KI: control.PaperGains.KI * s.GainScale,
			KD: control.PaperGains.KD * s.GainScale,
		}
	}
	var adaptive *pic.AdaptiveConfig
	if s.Adaptive {
		// Seed the estimator from the same sysid fit the scenario already
		// paid for; every AdaptiveConfig default is otherwise canonical.
		adaptive = &pic.AdaptiveConfig{SeedGain: cal.PlantGain}
	}
	ctl, err := core.New(cmp, core.Config{
		BudgetW:     budget,
		Policy:      policy,
		GPMPeriod:   20,
		Gains:       gains,
		Transducers: cal.Transducers,
		Faults:      s.Faults,
		Adaptive:    adaptive,
	})
	if err != nil {
		return nil, nil, err
	}
	suite := ForCPM(ctl, budget)
	sess, err := engine.NewSession(engine.NewCPMRunner(ctl), engine.SessionConfig{
		WarmEpochs:    s.warm(),
		MeasureEpochs: s.meas(),
		Period:        20,
		BudgetW:       budget,
		Label:         s.Name,
	}, append([]engine.Observer{suite}, extra...)...)
	if err != nil {
		return nil, nil, err
	}
	return sess, suite, nil
}

func (s Scenario) buildMaxBIPS(cmp *sim.CMP, budget float64, extra ...engine.Observer) (*engine.Session, *Suite, error) {
	planner, err := engine.NewStaticPlanner(cmp)
	if err != nil {
		return nil, nil, err
	}
	r, err := engine.NewMaxBIPSRunner(cmp, planner, budget, 20)
	if err != nil {
		return nil, nil, err
	}
	// MaxBIPS plans open-loop from static predictions; realized power
	// overshooting the budget is the paper's headline result for it, not a
	// bug. Keep the budget check but widen its tolerance to the overshoot
	// the paper itself reports (up to ~20%); everything else stays strict.
	ccfg := ForChip(cmp, budget)
	ccfg.BudgetTolFrac = 0.25
	ccfg.IslandTolFrac = 0.25
	suite := All(ccfg)
	sess, err := engine.NewSession(r, engine.SessionConfig{
		WarmEpochs:    s.warm(),
		MeasureEpochs: s.meas(),
		Period:        20,
		BudgetW:       budget,
		Label:         s.Name,
	}, append([]engine.Observer{suite}, extra...)...)
	if err != nil {
		return nil, nil, err
	}
	return sess, suite, nil
}
