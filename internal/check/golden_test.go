package check

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden traces in testdata/golden")

const goldenSeed = 1

func goldenPath(name string) string {
	return filepath.Join("testdata", "golden", name+".json")
}

// TestGoldenScenarios replays every canonical scenario under the full
// invariant suite and compares its hashed trace against the stored golden.
// Run with -update to regenerate after an intentional behaviour change.
func TestGoldenScenarios(t *testing.T) {
	for _, sc := range Canonical() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			g := NewGolden(sc.Name)
			sum, suite, err := sc.Run(goldenSeed, g)
			if err != nil {
				t.Fatalf("scenario %s: %v", sc.Name, err)
			}
			if err := suite.Err(); err != nil {
				t.Errorf("scenario %s violated invariants:\n%v", sc.Name, err)
			}
			if sum.MeanPowerW <= 0 || sum.MeanBIPS <= 0 {
				t.Fatalf("scenario %s produced a degenerate summary: %+v", sc.Name, sum)
			}
			tr := g.Trace()
			if tr.Epochs != sc.meas() {
				t.Fatalf("scenario %s recorded %d epochs, want %d", sc.Name, tr.Epochs, sc.meas())
			}
			path := goldenPath(sc.Name)
			if *update {
				if err := tr.WriteFile(path); err != nil {
					t.Fatalf("writing %s: %v", path, err)
				}
				t.Logf("wrote %s", path)
				return
			}
			ref, err := LoadTrace(path)
			if os.IsNotExist(err) {
				t.Fatalf("no golden trace at %s; run `go test ./internal/check -update` to create it", path)
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Diff(ref); err != nil {
				t.Errorf("%v\n(if this change is intentional, regenerate with `go test ./internal/check -update`)", err)
			}
		})
	}
}

// TestGoldenDetectsControllerPerturbation is the harness's self-test: a
// one-line change to the PID gains must shift the golden digests, or the
// harness could not catch a controller regression.
func TestGoldenDetectsControllerPerturbation(t *testing.T) {
	if testing.Short() {
		t.Skip("perturbation replay skipped in -short mode")
	}
	sc := Canonical()[0] // cpm-default
	sc.GainScale = 1.15
	g := NewGolden(sc.Name)
	if _, _, err := sc.Run(goldenSeed, g); err != nil {
		t.Fatal(err)
	}
	ref, err := LoadTrace(goldenPath(sc.Name))
	if err != nil {
		t.Skipf("golden trace missing (%v); run -update first", err)
	}
	if err := g.Trace().Diff(ref); err == nil {
		t.Fatal("perturbed PID gains (×1.15) produced a trace identical to the golden — the harness cannot detect controller regressions")
	} else {
		t.Logf("perturbation detected as expected: %v", err)
	}
}

// TestGoldenDeterminism re-runs one scenario and demands bit-identical
// traces: a flaky digest would make the whole harness useless.
func TestGoldenDeterminism(t *testing.T) {
	sc := Canonical()[0]
	g1 := NewGolden(sc.Name)
	if _, _, err := sc.Run(goldenSeed, g1); err != nil {
		t.Fatal(err)
	}
	g2 := NewGolden(sc.Name)
	if _, _, err := sc.Run(goldenSeed, g2); err != nil {
		t.Fatal(err)
	}
	if err := g1.Trace().Diff(g2.Trace()); err != nil {
		t.Fatalf("two identical runs diverged: %v", err)
	}
}

// TestRound6HalfAwayFromZero pins the trailer-field rounding rule at quantum
// boundaries: ties round away from zero in both directions, and values just
// under a quantum are not truncated. IEEE semantics make these expressions
// platform-deterministic.
func TestRound6HalfAwayFromZero(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{12345.5 / 1e6, 12346.0 / 1e6},   // positive tie: away from zero
		{-12345.5 / 1e6, -12346.0 / 1e6}, // negative tie: away from zero
		{12344.5 / 1e6, 12345.0 / 1e6},   // tie with even neighbour below: still up
		{0.9999995, 1.0},                 // cast truncation would give 0.999999
		{-0.9999995, -1.0},
		{1.2000004, 1.2},
		{0, 0},
	}
	for _, c := range cases {
		if got := round6(c.in); got != c.want {
			t.Errorf("round6(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
