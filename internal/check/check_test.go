package check

import (
	"strings"
	"testing"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/thermal"
)

// step builds a synthetic two-island step with self-consistent accounting
// (chip aggregates equal island sums, BIPS matches instructions at a 0.002 s
// interval, frequencies are PentiumM table points).
func step(idx int) engine.Step {
	const intervalSec = 0.002
	mk := func(island, level int, freqMHz, powerW, instr float64) sim.IslandResult {
		return sim.IslandResult{
			Island: island, Level: level, FreqMHz: freqMHz,
			PowerW: powerW, Instructions: instr,
			BIPS: instr / intervalSec / 1e9,
		}
	}
	a := mk(0, 7, 2000, 10, 4e6)
	b := mk(1, 0, 600, 3, 1e6)
	return engine.Step{
		Index: idx,
		Sim: sim.Result{
			Interval:   idx,
			Islands:    []sim.IslandResult{a, b},
			ChipPowerW: a.PowerW + b.PowerW,
			TotalBIPS:  a.BIPS + b.BIPS,
			MaxTempC:   55,
		},
	}
}

func runInfo() engine.RunInfo {
	return engine.RunInfo{Islands: 2, Cores: 4, Period: 20, MeasureIntervals: 40, IntervalSec: 0.002}
}

func TestViolationString(t *testing.T) {
	v := Violation{Check: "budget-conservation", Interval: 3, Epoch: -1, Island: 1,
		Observed: 12.5, Bound: 10, Msg: "over budget"}
	s := v.String()
	for _, want := range []string{"budget-conservation", "interval 3", "island 1", "over budget", "12.5", "10"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "epoch") {
		t.Errorf("String() = %q mentions epoch for an interval-level violation", s)
	}
}

func TestSuiteErrAndReport(t *testing.T) {
	s := All(Config{})
	if err := s.Err(); err != nil {
		t.Fatalf("empty suite reported violations: %v", err)
	}
	if rep := s.Report(); !strings.Contains(rep, "ok") {
		t.Errorf("clean report lacks ok lines: %q", rep)
	}
	// Inject violations through a member check and confirm aggregation.
	acc := NewAccounting(0)
	s.Add(acc)
	for i := 0; i < maxViolationsPerCheck+10; i++ {
		acc.report(Violation{Interval: i, Epoch: -1, Island: -1, Msg: "synthetic"})
	}
	if got := len(acc.Violations()); got != maxViolationsPerCheck {
		t.Errorf("violation cap not applied: %d recorded", got)
	}
	if acc.dropped != 10 {
		t.Errorf("dropped = %d, want 10", acc.dropped)
	}
	err := s.Err()
	if err == nil {
		t.Fatal("Err() nil with violations present")
	}
	if !strings.Contains(err.Error(), "and 59 more") {
		t.Errorf("Err() does not elide: %v", err)
	}
}

func TestAllGatesOnConfig(t *testing.T) {
	names := func(s *Suite) map[string]bool {
		out := map[string]bool{}
		for _, c := range s.Checks() {
			out[c.Name()] = true
		}
		return out
	}
	minimal := names(All(Config{}))
	if minimal["budget-conservation"] || minimal["dvfs-legality"] || minimal["thermal-envelope"] {
		t.Errorf("zero config enabled gated checks: %v", minimal)
	}
	if !minimal["accounting"] || !minimal["determinism"] {
		t.Errorf("zero config missing unconditional checks: %v", minimal)
	}
	full := names(All(Config{Table: power.PentiumM(), BudgetW: 50, MaxCorePowerW: 12, Thermal: thermal.DefaultConfig()}))
	for _, n := range []string{"budget-conservation", "dvfs-legality", "thermal-envelope", "accounting", "determinism"} {
		if !full[n] {
			t.Errorf("full config missing %s: %v", n, full)
		}
	}
}

func TestBudgetConservation(t *testing.T) {
	cfg := Config{BudgetW: 50, IslandMaxW: []float64{24, 24}}
	c := NewBudgetConservation(cfg)
	c.RunStart(runInfo())

	good := step(0)
	good.GPMInvoked = true
	good.AllocW = []float64{30, 20}
	c.ObserveStep(good)
	if len(c.Violations()) != 0 {
		t.Fatalf("clean provision flagged: %v", c.Violations())
	}

	over := step(1)
	over.GPMInvoked = true
	over.AllocW = []float64{30, 21}
	c.ObserveStep(over)
	neg := step(2)
	neg.GPMInvoked = true
	neg.AllocW = []float64{-1, 20}
	c.ObserveStep(neg)
	if got := len(c.Violations()); got != 2 {
		t.Fatalf("want 2 step violations (oversubscribe, negative), got %d: %v", got, c.Violations())
	}

	// Epoch tier: pre-settle epochs are ignored, post-settle overshoot is not.
	pre := engine.Epoch{Index: 0, MeanPowerW: 80, BudgetW: 50}
	c.ObserveEpoch(pre)
	if got := len(c.Violations()); got != 2 {
		t.Fatalf("pre-settle epoch flagged: %v", c.Violations())
	}
	post := engine.Epoch{Index: 3, MeanPowerW: 55, BudgetW: 50,
		AllocW: []float64{30, 20}, IslandPowerW: []float64{33, 22}}
	c.ObserveEpoch(post)
	vs := c.Violations()
	if got := len(vs); got != 5 {
		t.Fatalf("want 5 violations after post-settle epoch (chip over, both islands over), got %d:\n%v", got, vs)
	}
	okEpoch := engine.Epoch{Index: 4, MeanPowerW: 49, BudgetW: 50,
		AllocW: []float64{30, 20}, IslandPowerW: []float64{30.5, 20.1}}
	c.ObserveEpoch(okEpoch)
	if got := len(c.Violations()); got != 5 {
		t.Fatalf("within-tolerance epoch flagged: %v", c.Violations()[5:])
	}
}

func TestDVFSLegality(t *testing.T) {
	c := NewDVFSLegality(power.PentiumM())
	c.RunStart(runInfo())
	c.ObserveStep(step(0))
	if len(c.Violations()) != 0 {
		t.Fatalf("legal step flagged: %v", c.Violations())
	}

	// Off-table frequency.
	bad := step(1)
	bad.Sim.Islands[0].FreqMHz = 1234
	c.ObserveStep(bad)
	if got := len(c.Violations()); got == 0 || !strings.Contains(c.Violations()[0].Msg, "not a table operating point") {
		t.Fatalf("off-table frequency not caught: %v", c.Violations())
	}
	n := len(c.Violations())

	// Level/frequency disagreement.
	lie := step(2)
	lie.Sim.Islands[1].Level = 3 // still reports 600 MHz
	c.ObserveStep(lie)
	if got := len(c.Violations()); got <= n {
		t.Fatal("level/frequency disagreement not caught")
	}
	n = len(c.Violations())

	// Frequency change without the transition flag.
	c2 := NewDVFSLegality(power.PentiumM())
	c2.RunStart(runInfo())
	c2.ObserveStep(step(0))
	moved := step(1)
	moved.Sim.Islands[0].Level = 0
	moved.Sim.Islands[0].FreqMHz = 600
	moved.Sim.Islands[0].Transitioned = false
	c2.ObserveStep(moved)
	found := false
	for _, v := range c2.Violations() {
		if strings.Contains(v.Msg, "transition overhead") {
			found = true
		}
	}
	if !found {
		t.Fatalf("silent operating-point change not caught: %v", c2.Violations())
	}

	// Same change with the flag set is legal.
	c3 := NewDVFSLegality(power.PentiumM())
	c3.RunStart(runInfo())
	c3.ObserveStep(step(0))
	moved.Sim.Islands[0].Transitioned = true
	c3.ObserveStep(moved)
	if len(c3.Violations()) != 0 {
		t.Fatalf("flagged transition flagged as violation: %v", c3.Violations())
	}
}

func TestThermalEnvelope(t *testing.T) {
	tc := thermal.DefaultConfig()
	c := NewThermalEnvelope(tc, 12)
	c.RunStart(runInfo())
	c.ObserveStep(step(0))
	if len(c.Violations()) != 0 {
		t.Fatalf("plausible temperature flagged: %v", c.Violations())
	}

	cases := []struct {
		name string
		temp float64
		want string
	}{
		{"nan", nan(), "non-finite"},
		{"below-ambient", tc.AmbientC - 5, "below ambient"},
		{"runaway", tc.MaxSteadyTempC(1.25*12) + 50, "above steady-state envelope"},
	}
	for _, cse := range cases {
		cc := NewThermalEnvelope(tc, 12)
		cc.RunStart(runInfo())
		st := step(0)
		st.Sim.MaxTempC = cse.temp
		cc.ObserveStep(st)
		if vs := cc.Violations(); len(vs) == 0 || !strings.Contains(vs[0].Msg, cse.want) {
			t.Errorf("%s: want violation containing %q, got %v", cse.name, cse.want, vs)
		}
	}

	// Step-delta check: an instantaneous jump far beyond what the RC time
	// constant allows in one interval.
	cc := NewThermalEnvelope(tc, 12)
	cc.RunStart(runInfo())
	st := step(0)
	st.Sim.MaxTempC = tc.AmbientC + 1
	cc.ObserveStep(st)
	st2 := step(1)
	st2.Sim.MaxTempC = tc.AmbientC + 30
	cc.ObserveStep(st2)
	found := false
	for _, v := range cc.Violations() {
		if strings.Contains(v.Msg, "exceeds RC dynamics") {
			found = true
		}
	}
	if !found {
		t.Fatalf("implausible step delta not caught: %v", cc.Violations())
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestAccounting(t *testing.T) {
	c := NewAccounting(100)
	info := runInfo()
	c.RunStart(info)
	st := step(0)
	st.Sim.ChipPowerFrac = st.Sim.ChipPowerW / 100
	st.Measured = true
	c.ObserveStep(st)
	if len(c.Violations()) != 0 {
		t.Fatalf("consistent step flagged: %v", c.Violations())
	}

	// Chip power not equal to island sum.
	leak := step(1)
	leak.Sim.ChipPowerFrac = leak.Sim.ChipPowerW / 100
	leak.Sim.ChipPowerW += 0.5
	c.ObserveStep(leak)
	found := func(sub string) bool {
		for _, v := range c.Violations() {
			if strings.Contains(v.Msg, sub) {
				return true
			}
		}
		return false
	}
	if !found("sum of island powers") {
		t.Fatalf("power conservation breach not caught: %v", c.Violations())
	}

	// BIPS/instruction disagreement.
	c2 := NewAccounting(0)
	c2.RunStart(info)
	wrong := step(0)
	wrong.Sim.Islands[0].BIPS *= 1.01
	wrong.Sim.TotalBIPS = wrong.Sim.Islands[0].BIPS + wrong.Sim.Islands[1].BIPS
	c2.ObserveStep(wrong)
	ok := false
	for _, v := range c2.Violations() {
		if strings.Contains(v.Msg, "disagrees with instructions") {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("BIPS relation breach not caught: %v", c2.Violations())
	}

	// Interval counter skip.
	c3 := NewAccounting(0)
	c3.RunStart(info)
	c3.ObserveStep(step(0))
	skipped := step(2) // interval 2 right after 0
	c3.ObserveStep(skipped)
	ok = false
	for _, v := range c3.Violations() {
		if strings.Contains(v.Msg, "counter skipped") {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("interval skip not caught: %v", c3.Violations())
	}

	// Summary disagreement at RunEnd.
	c4 := NewAccounting(0)
	c4.RunStart(info)
	m := step(0)
	m.Measured = true
	c4.ObserveStep(m)
	c4.ObserveEpoch(engine.Epoch{Index: 0, Instructions: 5e6})
	badSum := &engine.Summary{MeanPowerW: 99, Instructions: 1, Epochs: []float64{1, 2}}
	c4.RunEnd(badSum)
	if got := len(c4.Violations()); got != 3 {
		t.Fatalf("want 3 summary violations (power, instructions, epoch count), got %d: %v", got, c4.Violations())
	}
}

func TestDeterminismExpectation(t *testing.T) {
	rec := NewDeterminism(0)
	rec.RunStart(runInfo())
	rec.ObserveStep(step(0))
	rec.RunEnd(nil)
	if len(rec.Violations()) != 0 {
		t.Fatalf("record-only determinism reported: %v", rec.Violations())
	}
	digest := rec.Sum64()
	if digest == 0 {
		t.Fatal("zero digest")
	}

	match := NewDeterminism(digest)
	match.RunStart(runInfo())
	match.ObserveStep(step(0))
	match.RunEnd(nil)
	if len(match.Violations()) != 0 {
		t.Fatalf("matching digest flagged: %v", match.Violations())
	}

	mismatch := NewDeterminism(digest)
	mismatch.RunStart(runInfo())
	st := step(0)
	st.Sim.ChipPowerW += 1e-12 // any bit-level change must flip the digest
	st.Sim.Islands[0].PowerW += 1e-12
	mismatch.ObserveStep(st)
	mismatch.RunEnd(nil)
	if len(mismatch.Violations()) != 1 {
		t.Fatalf("digest mismatch not reported: %v", mismatch.Violations())
	}
}

// TestSuiteOnLiveRun attaches the full suite to a real short managed run
// and expects it to come back clean — the integration path ForCPM wires.
func TestSuiteOnLiveRun(t *testing.T) {
	sc := Scenario{Name: "unit-live", Mix: Canonical()[0].Mix, BudgetFrac: 0.8, MeasureEpochs: 2, WarmEpochs: 1}
	sum, suite, err := sc.Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if err := suite.Err(); err != nil {
		t.Fatalf("live run violated invariants:\n%s", suite.Report())
	}
	if sum.MeanPowerW <= 0 {
		t.Fatalf("degenerate summary: %+v", sum)
	}
	if !strings.Contains(suite.Report(), "ok") {
		t.Errorf("report: %q", suite.Report())
	}
}
