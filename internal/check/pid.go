package check

import (
	"math"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/pic"
)

// PIDBounds checks the controller-state invariants of §II-D on every
// interval: each island PIC's integral accumulator stays inside its
// anti-windup clamp (Eq. 7's conditional integration), its continuous
// frequency state stays inside the normalized actuator range [0, 1], and
// its power target is a sane non-negative fraction. The check polls the
// controllers after each step, so it needs the live PICs rather than the
// engine event stream alone — attach it with NewPIDBounds(ctl.PIC(i)...).
type PIDBounds struct {
	recorder
	pics []*pic.Controller
}

// NewPIDBounds builds the check over the given controllers.
func NewPIDBounds(pics ...*pic.Controller) *PIDBounds {
	return &PIDBounds{recorder: recorder{name: "pid-bounds"}, pics: pics}
}

// RunStart implements engine.Observer.
func (c *PIDBounds) RunStart(engine.RunInfo) {}

// ObserveStep implements engine.Observer.
func (c *PIDBounds) ObserveStep(st engine.Step) {
	for i, p := range c.pics {
		if p == nil {
			continue
		}
		lo, hi := p.IntegratorBounds()
		integ := p.Integrator()
		if math.IsNaN(integ) || (hi > lo && (integ < lo-1e-12 || integ > hi+1e-12)) {
			c.report(Violation{
				Interval: st.Index, Epoch: -1, Island: i,
				Observed: integ, Bound: hi,
				Msg: "PID integrator outside its anti-windup clamp",
			})
		}
		if f := p.FreqNorm(); math.IsNaN(f) || f < -1e-12 || f > 1+1e-12 {
			c.report(Violation{
				Interval: st.Index, Epoch: -1, Island: i,
				Observed: f, Bound: 1,
				Msg: "PID frequency state outside the normalized actuator range",
			})
		}
		if tf := p.TargetFrac(); math.IsNaN(tf) || tf < 0 {
			c.report(Violation{
				Interval: st.Index, Epoch: -1, Island: i,
				Observed: tf, Bound: 0,
				Msg: "negative or NaN PIC power target",
			})
		}
	}
}

// ObserveEpoch implements engine.Observer.
func (c *PIDBounds) ObserveEpoch(engine.Epoch) {}

// RunEnd implements engine.Observer.
func (c *PIDBounds) RunEnd(*engine.Summary) {}
