package check

import (
	"hash/fnv"
	"os"
	"testing"
	"testing/quick"

	"github.com/cpm-sim/cpm/internal/snapshot"
)

// TestFNV64aMatchesStdlib pins the settable hash to hash/fnv: the golden
// final digests were recorded through the stdlib implementation, so any
// divergence here would silently invalidate every stored trace.
func TestFNV64aMatchesStdlib(t *testing.T) {
	err := quick.Check(func(chunks [][]byte) bool {
		ours := fnv64a{sum: fnvOffset64}
		ref := fnv.New64a()
		for _, c := range chunks {
			ours.Write(c)
			ref.Write(c)
		}
		return ours.Sum64() == ref.Sum64()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

// TestGoldenSnapshotResumeEquivalence is the tentpole property: for every
// canonical scenario, a run snapshotted at an arbitrary mid-run interval
// (deliberately not an epoch boundary) and restored into a freshly built,
// process-equivalent stack must finish with exactly the digests the
// uninterrupted run pinned in testdata/golden — bit-identical continuation,
// not approximate.
func TestGoldenSnapshotResumeEquivalence(t *testing.T) {
	for _, sc := range Canonical() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			ref, err := LoadTrace(goldenPath(sc.Name))
			if os.IsNotExist(err) {
				t.Skipf("no golden trace at %s; run -update first", goldenPath(sc.Name))
			}
			if err != nil {
				t.Fatal(err)
			}

			golden := NewGolden(sc.Name)
			sess, _, err := sc.Build(goldenSeed, golden)
			if err != nil {
				t.Fatal(err)
			}
			total := (sc.warm() + sc.meas()) * 20
			mid := total/2 + 7 // mid-epoch, mid-run: the awkward split
			if got := sess.RunIntervals(mid); got != mid {
				t.Fatalf("ran %d of %d intervals", got, mid)
			}
			e := snapshot.NewEncoder()
			if err := sess.Snapshot(e); err != nil {
				t.Fatal(err)
			}
			golden.Snapshot(e)

			// Fresh, process-equivalent stack; session restored first so
			// its RunStart reset is overwritten by the golden restore.
			golden2 := NewGolden(sc.Name)
			sess2, suite2, err := sc.Build(goldenSeed, golden2)
			if err != nil {
				t.Fatal(err)
			}
			d := snapshot.NewDecoder(e.Bytes())
			if err := sess2.Restore(d); err != nil {
				t.Fatal(err)
			}
			if err := golden2.Restore(d); err != nil {
				t.Fatal(err)
			}
			if rem := d.Remaining(); rem != 0 {
				t.Fatalf("%d bytes left after restore", rem)
			}

			sum := sess2.Run()
			if sum.MeanPowerW <= 0 || sum.MeanBIPS <= 0 {
				t.Fatalf("resumed run produced a degenerate summary: %+v", sum)
			}
			if err := suite2.Err(); err != nil {
				t.Errorf("resumed run violated invariants:\n%v", err)
			}
			if err := golden2.Trace().Diff(ref); err != nil {
				t.Errorf("resumed run diverged from the uninterrupted golden: %v", err)
			}
		})
	}
}

// TestSessionSnapshotRejections pins the checkpointability rules: sessions
// that have not started cannot be snapshotted, and a snapshot cannot be
// restored into a session already under way or built for another scenario.
func TestSessionSnapshotRejections(t *testing.T) {
	sc := Canonical()[0]
	sess, _, err := sc.Build(goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Snapshot(snapshot.NewEncoder()); err == nil {
		t.Error("snapshot of a not-started session should fail")
	}
	sess.RunIntervals(3)
	e := snapshot.NewEncoder()
	if err := sess.Snapshot(e); err != nil {
		t.Fatal(err)
	}
	if err := sess.Restore(snapshot.NewDecoder(e.Bytes())); err == nil {
		t.Error("restore into an already-started session should fail")
	}

	// budget-60 runs the same stack shape at a different budget; the
	// config echo must catch the mismatch.
	other, _, err := Canonical()[5].Build(goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(snapshot.NewDecoder(e.Bytes())); err == nil {
		t.Error("restore into a different-budget session should fail")
	}

	// A golden recorder for one scenario must refuse another's state.
	g := NewGolden(sc.Name)
	ge := snapshot.NewEncoder()
	g.Snapshot(ge)
	g2 := NewGolden("budget-60")
	if err := g2.Restore(snapshot.NewDecoder(ge.Bytes())); err == nil {
		t.Error("golden restore across scenarios should fail")
	}
}
