package check

import (
	"math"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/thermal"
)

// BudgetConservation checks the provisioning invariant of §II-C at both
// tiers: at every GPM invocation the allocations are non-negative and sum
// to no more than the chip budget (the Manager's contract), and once the
// loop has settled every measured epoch's island power stays under its
// provision and chip power under the global budget, within the quantization
// tolerance a discrete DVFS actuator imposes.
type BudgetConservation struct {
	recorder
	budgetW    float64
	islandMaxW []float64
	settle     int
	chipTol    float64
	islandTol  float64
}

// NewBudgetConservation builds the check from cfg (BudgetW must be > 0).
func NewBudgetConservation(cfg Config) *BudgetConservation {
	return &BudgetConservation{
		recorder:   recorder{name: "budget-conservation"},
		budgetW:    cfg.BudgetW,
		islandMaxW: cfg.IslandMaxW,
		settle:     cfg.settleEpochs(),
		chipTol:    cfg.budgetTol(),
		islandTol:  cfg.islandTol(),
	}
}

// RunStart implements engine.Observer.
func (c *BudgetConservation) RunStart(engine.RunInfo) {}

// ObserveStep implements engine.Observer: the GPM-tier invariant holds at
// every provision, warmup included.
func (c *BudgetConservation) ObserveStep(st engine.Step) {
	if !st.GPMInvoked || st.AllocW == nil {
		return
	}
	sum := 0.0
	for i, a := range st.AllocW {
		if a < 0 || math.IsNaN(a) {
			c.report(Violation{
				Interval: st.Index, Epoch: -1, Island: i,
				Observed: a, Bound: 0,
				Msg: "negative or NaN island allocation",
			})
			continue
		}
		sum += a
	}
	// The Manager clips oversubscription exactly, so the only slack needed
	// is floating-point summation noise.
	if lim := c.budgetW * (1 + 1e-9); sum > lim {
		c.report(Violation{
			Interval: st.Index, Epoch: -1, Island: -1,
			Observed: sum, Bound: c.budgetW,
			Msg: "GPM provisioned more than the chip budget",
		})
	}
}

// ObserveEpoch implements engine.Observer: the settled-power invariant is
// judged on epoch means, the granularity the paper's tracking plots use.
func (c *BudgetConservation) ObserveEpoch(e engine.Epoch) {
	if e.Index < c.settle {
		return
	}
	if lim := c.budgetW * (1 + c.chipTol); e.MeanPowerW > lim {
		c.report(Violation{
			Interval: -1, Epoch: e.Index, Island: -1,
			Observed: e.MeanPowerW, Bound: lim,
			Msg: "post-settle chip power above global budget",
		})
	}
	if e.AllocW == nil {
		return
	}
	for i, p := range e.IslandPowerW {
		if i >= len(e.AllocW) {
			break
		}
		slack := 0.0
		if i < len(c.islandMaxW) {
			slack = c.islandTol * c.islandMaxW[i]
		} else {
			slack = c.chipTol * math.Max(e.AllocW[i], 1)
		}
		if lim := e.AllocW[i] + slack; p > lim {
			c.report(Violation{
				Interval: -1, Epoch: e.Index, Island: i,
				Observed: p, Bound: lim,
				Msg: "post-settle island power above its provision",
			})
		}
	}
}

// RunEnd implements engine.Observer.
func (c *BudgetConservation) RunEnd(*engine.Summary) {}

// DVFSLegality checks the actuation invariant of §II-B: every observed
// operating point is an entry of the island's DVFS table (never an
// interpolated or out-of-range frequency), and transition overheads are
// charged exactly when the operating point changes — the knob's contract
// with the simulator.
type DVFSLegality struct {
	recorder
	table    *power.DVFSTable   // shared table (legacy homogeneous chips)
	tables   []*power.DVFSTable // per-island tables; overrides table when set
	prevFreq []float64
	havePrev bool
}

// NewDVFSLegality builds the check against the chip's shared table.
func NewDVFSLegality(table *power.DVFSTable) *DVFSLegality {
	return &DVFSLegality{recorder: recorder{name: "dvfs-legality"}, table: table}
}

// NewDVFSLegalityPerIsland builds the check for a chip whose islands run
// their own tables: island i's operating points are judged against
// tables[i].
func NewDVFSLegalityPerIsland(tables []*power.DVFSTable) *DVFSLegality {
	return &DVFSLegality{recorder: recorder{name: "dvfs-legality"}, tables: tables}
}

// tbl returns the table island i's operating points must belong to.
func (c *DVFSLegality) tbl(i int) *power.DVFSTable {
	if c.tables != nil && i < len(c.tables) {
		return c.tables[i]
	}
	return c.table
}

// RunStart implements engine.Observer.
func (c *DVFSLegality) RunStart(info engine.RunInfo) {
	c.prevFreq = make([]float64, info.Islands)
	c.havePrev = false
}

// ObserveStep implements engine.Observer.
func (c *DVFSLegality) ObserveStep(st engine.Step) {
	for i, ir := range st.Sim.Islands {
		tbl := c.tbl(i)
		lvl, ok := tbl.LevelOf(ir.FreqMHz)
		if !ok {
			c.report(Violation{
				Interval: st.Index, Epoch: -1, Island: i,
				Observed: ir.FreqMHz, Bound: tbl.Max().FreqMHz,
				Msg: "actuated frequency is not a table operating point",
			})
		} else if lvl != ir.Level {
			c.report(Violation{
				Interval: st.Index, Epoch: -1, Island: i,
				Observed: float64(ir.Level), Bound: float64(lvl),
				Msg: "reported level disagrees with actuated frequency",
			})
		}
		if ir.Level < 0 || ir.Level >= tbl.Levels() {
			c.report(Violation{
				Interval: st.Index, Epoch: -1, Island: i,
				Observed: float64(ir.Level), Bound: float64(tbl.Levels() - 1),
				Msg: "DVFS level outside the table",
			})
		}
		if c.havePrev && i < len(c.prevFreq) {
			changed := ir.FreqMHz != c.prevFreq[i]
			if changed != ir.Transitioned {
				c.report(Violation{
					Interval: st.Index, Epoch: -1, Island: i,
					Observed: ir.FreqMHz, Bound: c.prevFreq[i],
					Msg: "transition overhead disagrees with operating-point change",
				})
			}
		}
		if i < len(c.prevFreq) {
			c.prevFreq[i] = ir.FreqMHz
		}
	}
	c.havePrev = true
}

// ObserveEpoch implements engine.Observer.
func (c *DVFSLegality) ObserveEpoch(engine.Epoch) {}

// RunEnd implements engine.Observer.
func (c *DVFSLegality) RunEnd(*engine.Summary) {}

// ThermalEnvelope checks that the RC thermal model stays inside its
// physically plausible operating envelope: temperatures are finite, never
// below ambient, never above the steady-state bound for the worst per-core
// dissipation, and never move faster per interval than the forward-Euler
// dynamics allow — the early-warning signal for an unstable integration or
// a corrupted power input (the regime Figure 18's policy exists to avoid).
type ThermalEnvelope struct {
	recorder
	cfg      thermal.Config
	maxTempC float64
	maxStepC float64
	prevTemp float64
	havePrev bool
	maxCoreW float64
}

// NewThermalEnvelope derives the envelope from the RC configuration and the
// worst-case per-core power.
func NewThermalEnvelope(cfg thermal.Config, maxCoreW float64) *ThermalEnvelope {
	return &ThermalEnvelope{
		recorder: recorder{name: "thermal-envelope"},
		cfg:      cfg,
		maxCoreW: maxCoreW,
		// Headroom factor 1.25: leakage grows with temperature, so a hot
		// core can briefly dissipate somewhat more than the nominal
		// maximum; 2 °C absolute covers Euler discretization overshoot.
		maxTempC: cfg.MaxSteadyTempC(1.25*maxCoreW) + 2,
	}
}

// RunStart implements engine.Observer.
func (c *ThermalEnvelope) RunStart(info engine.RunInfo) {
	c.havePrev = false
	c.maxStepC = 1.5 * c.cfg.MaxStepDeltaC(1.25*c.maxCoreW, info.IntervalSec)
}

// ObserveStep implements engine.Observer.
func (c *ThermalEnvelope) ObserveStep(st engine.Step) {
	t := st.Sim.MaxTempC
	switch {
	case math.IsNaN(t) || math.IsInf(t, 0):
		c.report(Violation{
			Interval: st.Index, Epoch: -1, Island: -1,
			Observed: t, Bound: c.maxTempC,
			Msg: "non-finite temperature",
		})
	case t < c.cfg.AmbientC-1e-6:
		c.report(Violation{
			Interval: st.Index, Epoch: -1, Island: -1,
			Observed: t, Bound: c.cfg.AmbientC,
			Msg: "temperature below ambient",
		})
	case t > c.maxTempC:
		c.report(Violation{
			Interval: st.Index, Epoch: -1, Island: -1,
			Observed: t, Bound: c.maxTempC,
			Msg: "temperature above steady-state envelope",
		})
	}
	if c.havePrev && c.maxStepC > 0 {
		if d := math.Abs(t - c.prevTemp); d > c.maxStepC {
			c.report(Violation{
				Interval: st.Index, Epoch: -1, Island: -1,
				Observed: d, Bound: c.maxStepC,
				Msg: "per-interval temperature change exceeds RC dynamics",
			})
		}
	}
	c.prevTemp = t
	c.havePrev = true
}

// ObserveEpoch implements engine.Observer.
func (c *ThermalEnvelope) ObserveEpoch(engine.Epoch) {}

// RunEnd implements engine.Observer.
func (c *ThermalEnvelope) RunEnd(*engine.Summary) {}

// Accounting checks conservation and monotonicity of the bookkeeping
// quantities: island powers and throughputs are non-negative and finite and
// sum exactly to the chip aggregates, instruction counts only accumulate,
// interval indices advance by one, BIPS agrees with the instruction count
// over the interval, and the session summary agrees with an independent
// re-aggregation of the measured steps.
type Accounting struct {
	recorder
	maxChipW    float64
	intervalSec float64
	prevIndex   int
	havePrev    bool

	// independent re-aggregation of the measurement window
	measSteps  int
	sumPowerW  float64
	sumInstr   float64
	epochCount int

	// resumed marks a run restored from a mid-run snapshot: the check only
	// observes the tail, so whole-window reconciliation and the epoch
	// origin cannot hold and are stood down (per-step checks stay strict).
	resumed     bool
	resumeEpoch bool // next observed epoch index is accepted as the origin
}

// NewAccounting builds the check; maxChipW of 0 skips the chip-power-frac
// consistency sub-check.
func NewAccounting(maxChipW float64) *Accounting {
	return &Accounting{recorder: recorder{name: "accounting"}, maxChipW: maxChipW}
}

// RunStart implements engine.Observer.
func (c *Accounting) RunStart(info engine.RunInfo) {
	c.intervalSec = info.IntervalSec
	c.havePrev = false
	c.measSteps, c.sumPowerW, c.sumInstr, c.epochCount = 0, 0, 0, 0
	c.resumed, c.resumeEpoch = false, false
}

// RunResumed implements engine.ResumeAware.
func (c *Accounting) RunResumed(int) {
	c.resumed, c.resumeEpoch = true, true
}

// relTol is the relative slack for float re-aggregation checks: the
// reductions run in a fixed order, so only representation error accumulates.
const relTol = 1e-9

func closeRel(a, b, tol float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*math.Max(scale, 1)
}

// ObserveStep implements engine.Observer.
func (c *Accounting) ObserveStep(st engine.Step) {
	if c.havePrev && st.Sim.Interval != c.prevIndex+1 {
		c.report(Violation{
			Interval: st.Index, Epoch: -1, Island: -1,
			Observed: float64(st.Sim.Interval), Bound: float64(c.prevIndex + 1),
			Msg: "simulator interval counter skipped",
		})
	}
	c.prevIndex = st.Sim.Interval
	c.havePrev = true

	var powSum, bipsSum float64
	for i, ir := range st.Sim.Islands {
		bad := func(v float64) bool { return v < 0 || math.IsNaN(v) || math.IsInf(v, 0) }
		if bad(ir.PowerW) || bad(ir.BIPS) || bad(ir.Instructions) {
			c.report(Violation{
				Interval: st.Index, Epoch: -1, Island: i,
				Observed: math.Min(ir.PowerW, math.Min(ir.BIPS, ir.Instructions)), Bound: 0,
				Msg: "negative or non-finite island power/BIPS/instructions",
			})
		}
		if c.intervalSec > 0 && !closeRel(ir.BIPS, ir.Instructions/c.intervalSec/1e9, 1e-6) {
			c.report(Violation{
				Interval: st.Index, Epoch: -1, Island: i,
				Observed: ir.BIPS, Bound: ir.Instructions / c.intervalSec / 1e9,
				Msg: "island BIPS disagrees with instructions over the interval",
			})
		}
		powSum += ir.PowerW
		bipsSum += ir.BIPS
	}
	if !closeRel(powSum, st.Sim.ChipPowerW, relTol) {
		c.report(Violation{
			Interval: st.Index, Epoch: -1, Island: -1,
			Observed: st.Sim.ChipPowerW, Bound: powSum,
			Msg: "chip power does not equal the sum of island powers",
		})
	}
	if !closeRel(bipsSum, st.Sim.TotalBIPS, relTol) {
		c.report(Violation{
			Interval: st.Index, Epoch: -1, Island: -1,
			Observed: st.Sim.TotalBIPS, Bound: bipsSum,
			Msg: "chip BIPS does not equal the sum of island BIPS",
		})
	}
	if c.maxChipW > 0 && !closeRel(st.Sim.ChipPowerFrac*c.maxChipW, st.Sim.ChipPowerW, relTol) {
		c.report(Violation{
			Interval: st.Index, Epoch: -1, Island: -1,
			Observed: st.Sim.ChipPowerFrac * c.maxChipW, Bound: st.Sim.ChipPowerW,
			Msg: "chip power fraction inconsistent with chip power",
		})
	}
	if !st.Measured {
		return
	}
	c.measSteps++
	c.sumPowerW += st.Sim.ChipPowerW
	for _, ir := range st.Sim.Islands {
		c.sumInstr += ir.Instructions
	}
}

// ObserveEpoch implements engine.Observer.
func (c *Accounting) ObserveEpoch(e engine.Epoch) {
	if c.resumeEpoch {
		c.epochCount = e.Index
		c.resumeEpoch = false
	}
	if e.Index != c.epochCount {
		c.report(Violation{
			Interval: -1, Epoch: e.Index, Island: -1,
			Observed: float64(e.Index), Bound: float64(c.epochCount),
			Msg: "epoch index skipped",
		})
	}
	c.epochCount = e.Index + 1
	if e.Instructions < 0 {
		c.report(Violation{
			Interval: -1, Epoch: e.Index, Island: -1,
			Observed: e.Instructions, Bound: 0,
			Msg: "negative epoch instruction count",
		})
	}
}

// RunEnd implements engine.Observer: the summary must agree with the
// check's own re-aggregation of the measured steps.
func (c *Accounting) RunEnd(sum *engine.Summary) {
	if sum == nil || c.measSteps == 0 || c.resumed {
		return
	}
	if !closeRel(sum.MeanPowerW, c.sumPowerW/float64(c.measSteps), relTol) {
		c.report(Violation{
			Interval: -1, Epoch: -1, Island: -1,
			Observed: sum.MeanPowerW, Bound: c.sumPowerW / float64(c.measSteps),
			Msg: "summary mean power disagrees with re-aggregated steps",
		})
	}
	if !closeRel(sum.Instructions, c.sumInstr, relTol) {
		c.report(Violation{
			Interval: -1, Epoch: -1, Island: -1,
			Observed: sum.Instructions, Bound: c.sumInstr,
			Msg: "summary instruction total disagrees with re-aggregated steps",
		})
	}
	if len(sum.Epochs) != c.epochCount {
		c.report(Violation{
			Interval: -1, Epoch: -1, Island: -1,
			Observed: float64(len(sum.Epochs)), Bound: float64(c.epochCount),
			Msg: "summary epoch count disagrees with observed epochs",
		})
	}
}
