package check

import (
	"os"
	"testing"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/farm"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/snapshot"
)

// farmSpecs builds one farm ChipSpec per scenario at the given seed,
// wiring a Golden recorder and the invariant suite into each session. The
// returned slices are parallel to scenarios.
func farmSpecs(t *testing.T, scenarios []Scenario, seed uint64) ([]farm.ChipSpec, []*Golden, []*Suite) {
	t.Helper()
	specs := make([]farm.ChipSpec, len(scenarios))
	goldens := make([]*Golden, len(scenarios))
	suites := make([]*Suite, len(scenarios))
	for i, sc := range scenarios {
		sc := sc
		i := i
		goldens[i] = NewGolden(sc.Name)
		specs[i] = farm.ChipSpec{
			Config: sc.BuildConfig(seed),
			NewSession: func(cmp *sim.CMP) (*engine.Session, error) {
				sess, suite, err := sc.BuildOn(cmp, seed, goldens[i])
				suites[i] = suite
				return sess, err
			},
		}
	}
	return specs, goldens, suites
}

// loadRef fetches a scenario's pinned golden trace, skipping when absent.
func loadRef(t *testing.T, name string) Trace {
	t.Helper()
	ref, err := LoadTrace(goldenPath(name))
	if os.IsNotExist(err) {
		t.Skipf("no golden trace at %s; run -update first", goldenPath(name))
	}
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// checkFarmTraces compares each scenario's farm-path trace against its
// pinned golden and its suite against zero violations.
func checkFarmTraces(t *testing.T, scenarios []Scenario, goldens []*Golden, suites []*Suite) {
	t.Helper()
	for i, sc := range scenarios {
		if err := suites[i].Err(); err != nil {
			t.Errorf("scenario %s violated invariants through the farm path:\n%v", sc.Name, err)
		}
		if err := goldens[i].Trace().Diff(loadRef(t, sc.Name)); err != nil {
			t.Errorf("farm path diverged from the scalar golden: %v", err)
		}
	}
}

// TestFarmSingleChipGolden runs every canonical scenario as a 1-chip farm:
// the record-driven chip must reproduce the scenario's pinned digests
// exactly — the scalar/batched equivalence contract at fleet size one.
func TestFarmSingleChipGolden(t *testing.T) {
	for _, sc := range Canonical() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			scenarios := []Scenario{sc}
			specs, goldens, suites := farmSpecs(t, scenarios, goldenSeed)
			f, err := farm.New(specs, farm.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if f.NumGroups() != 1 {
				t.Fatalf("1-chip farm built %d groups", f.NumGroups())
			}
			if _, err := f.Run(engine.Pool{Workers: 1}, nil); err != nil {
				t.Fatal(err)
			}
			checkFarmTraces(t, scenarios, goldens, suites)
		})
	}
}

// TestFarmSharedSamplerGolden runs all six canonical scenarios as ONE
// farm. Five share the Mix-1/seed-1 workload key and must collapse into a
// single sampler group — the sharing path that gives the farm its
// throughput — while still reproducing, chip for chip, the exact digests
// the scalar path pinned. This is the strongest equivalence statement:
// heterogeneous controllers (CPM, MaxBIPS, thermal/variation policies,
// fault injection) at different budgets all drawing records from one
// shared sampling stream, bit-identical to six independent live chips.
func TestFarmSharedSamplerGolden(t *testing.T) {
	scenarios := Canonical()
	specs, goldens, suites := farmSpecs(t, scenarios, goldenSeed)
	f, err := farm.New(specs, farm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumGroups() >= f.NumChips() {
		t.Fatalf("no sharing: %d chips built %d groups", f.NumChips(), f.NumGroups())
	}
	if _, err := f.Run(engine.Pool{Workers: 4}, nil); err != nil {
		t.Fatal(err)
	}
	checkFarmTraces(t, scenarios, goldens, suites)
}

// TestFarmGroupSplitInvariance pins that MaxGroup (the farm-size knob)
// changes only scheduling, never results: the same six scenarios split
// into singleton groups reproduce the same pinned digests.
func TestFarmGroupSplitInvariance(t *testing.T) {
	scenarios := Canonical()
	specs, goldens, suites := farmSpecs(t, scenarios, goldenSeed)
	f, err := farm.New(specs, farm.Options{MaxGroup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumGroups() < 3 {
		t.Fatalf("MaxGroup=2 over 6 chips built only %d groups", f.NumGroups())
	}
	if _, err := f.Run(engine.Pool{Workers: 4}, nil); err != nil {
		t.Fatal(err)
	}
	checkFarmTraces(t, scenarios, goldens, suites)
}

// TestFarmReplicatedDistinctSeeds replicates one scenario across distinct
// seeds in a single farm — distinct workload keys, so distinct samplers —
// and demands each chip reproduce the digests of its own scalar run. The
// seed-1 replica must additionally match the stored golden file.
func TestFarmReplicatedDistinctSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("replicated-seed replay skipped in -short mode")
	}
	sc := Canonical()[0] // cpm-default
	seeds := []uint64{goldenSeed, 2, 3}

	// Scalar references, one per seed.
	refs := make([]Trace, len(seeds))
	for i, seed := range seeds {
		g := NewGolden(sc.Name)
		if _, _, err := sc.Run(seed, g); err != nil {
			t.Fatal(err)
		}
		refs[i] = g.Trace()
	}

	specs := make([]farm.ChipSpec, len(seeds))
	goldens := make([]*Golden, len(seeds))
	for i, seed := range seeds {
		seed := seed
		i := i
		goldens[i] = NewGolden(sc.Name)
		specs[i] = farm.ChipSpec{
			Config: sc.BuildConfig(seed),
			NewSession: func(cmp *sim.CMP) (*engine.Session, error) {
				sess, _, err := sc.BuildOn(cmp, seed, goldens[i])
				return sess, err
			},
		}
	}
	f, err := farm.New(specs, farm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumGroups() != len(seeds) {
		t.Fatalf("distinct seeds must not share samplers: %d chips, %d groups", len(seeds), f.NumGroups())
	}
	if _, err := f.Run(engine.Pool{Workers: 2}, nil); err != nil {
		t.Fatal(err)
	}
	for i, seed := range seeds {
		if err := goldens[i].Trace().Diff(refs[i]); err != nil {
			t.Errorf("seed %d: farm chip diverged from its scalar run: %v", seed, err)
		}
	}
	if err := goldens[0].Trace().Diff(loadRef(t, sc.Name)); err != nil {
		t.Errorf("seed-1 farm chip diverged from the stored golden: %v", err)
	}
}

// TestFarmSnapshotRestoreMidRun checkpoints a whole shared-sampler fleet
// mid-run — deliberately not at an epoch boundary — restores it into a
// freshly built farm, finishes both, and demands every chip of both
// fleets still reproduce its pinned digests. This is the
// checkpointed-fleet-resume acceptance criterion.
func TestFarmSnapshotRestoreMidRun(t *testing.T) {
	scenarios := Canonical()
	pool := engine.Pool{Workers: 4}

	specs, goldens, suites := farmSpecs(t, scenarios, goldenSeed)
	f, err := farm.New(specs, farm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 120-interval runs; pause mid-epoch, mid-run.
	if err := f.RunRounds(pool, 67); err != nil {
		t.Fatal(err)
	}
	e := snapshot.NewEncoder()
	if err := f.Snapshot(e); err != nil {
		t.Fatal(err)
	}
	for _, g := range goldens {
		g.Snapshot(e)
	}

	// Fresh process-equivalent fleet; sessions restored before observers
	// so the RunStart resets are overwritten with the captured state.
	specs2, goldens2, suites2 := farmSpecs(t, scenarios, goldenSeed)
	f2, err := farm.New(specs2, farm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := snapshot.NewDecoder(e.Bytes())
	if err := f2.Restore(d); err != nil {
		t.Fatal(err)
	}
	for _, g := range goldens2 {
		if err := g.Restore(d); err != nil {
			t.Fatal(err)
		}
	}
	if rem := d.Remaining(); rem != 0 {
		t.Fatalf("%d bytes left after restore", rem)
	}

	if _, err := f2.Finish(pool, nil); err != nil {
		t.Fatal(err)
	}
	checkFarmTraces(t, scenarios, goldens2, suites2)

	// The snapshot must not have disturbed the original fleet.
	if _, err := f.Finish(pool, nil); err != nil {
		t.Fatal(err)
	}
	checkFarmTraces(t, scenarios, goldens, suites)
}

// TestFarmColumnsPopulated sanity-checks the SoA layer: after a run,
// every chip's column region holds plausible physics (positive power and
// CPI, temperatures above ambient-ish, island frequency).
func TestFarmColumnsPopulated(t *testing.T) {
	scenarios := Canonical()[:2]
	specs, _, _ := farmSpecs(t, scenarios, goldenSeed)
	f, err := farm.New(specs, farm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(engine.Pool{Workers: 1}, nil); err != nil {
		t.Fatal(err)
	}
	cols := f.Columns()
	if got := cols.CoreOffsets[f.NumChips()]; got != 16 {
		t.Fatalf("fleet core count %d, want 16", got)
	}
	for c := 0; c < f.NumChips(); c++ {
		if cols.ChipPowerW[c] <= 0 || cols.ChipBIPS[c] <= 0 {
			t.Errorf("chip %d aggregates not populated: %+v W, %+v BIPS", c, cols.ChipPowerW[c], cols.ChipBIPS[c])
		}
		if cols.ChipInterval[c] != 119 {
			t.Errorf("chip %d last interval %d, want 119", c, cols.ChipInterval[c])
		}
		for k := cols.CoreOffsets[c]; k < cols.CoreOffsets[c+1]; k++ {
			if cols.PowerW[k] <= 0 || cols.CPI[k] <= 0 || cols.TempC[k] <= 0 || cols.FreqMHz[k] <= 0 {
				t.Fatalf("chip %d core column %d not populated: power=%g cpi=%g temp=%g freq=%g",
					c, k, cols.PowerW[k], cols.CPI[k], cols.TempC[k], cols.FreqMHz[k])
			}
		}
	}
}
