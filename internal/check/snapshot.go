package check

import "github.com/cpm-sim/cpm/internal/snapshot"

// Snapshot appends the streaming digest position. The expectation is
// construction-time configuration and not captured.
func (c *Determinism) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagDeterminism)
	e.U64(c.h.sum)
}

// Restore reads state written by Snapshot. Call after the restored session
// has fired RunStart: the restored position already folds the run prologue,
// so it simply replaces whatever the reset hashed.
func (c *Determinism) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagDeterminism)
	sum := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	c.h.sum = sum
	return nil
}

// Snapshot appends the recorder's mid-run state: the epoch digests emitted
// so far and the interval-level digest position, keyed by scenario name so
// a restore into a recorder for a different scenario fails loudly.
func (g *Golden) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagGolden)
	e.String(g.scenario)
	e.Int(len(g.trace.EpochDigests))
	for _, dg := range g.trace.EpochDigests {
		e.String(dg)
	}
	g.det.Snapshot(e)
}

// Restore reads state written by Snapshot. As with Determinism.Restore,
// call it after the restored session has fired RunStart — the reset that
// RunStart performs is then overwritten with the captured state, and the
// resumed run extends the trace exactly where the original left off.
func (g *Golden) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagGolden)
	scenario := d.String()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if scenario != g.scenario {
		return snapshot.ShapeErrorf("snapshot records scenario %q, recorder is for %q", scenario, g.scenario)
	}
	if n < 0 || n > d.Remaining()/8 {
		return snapshot.ShapeErrorf("golden epoch-digest count %d", n)
	}
	digests := make([]string, n)
	for i := range digests {
		digests[i] = d.String()
	}
	if err := d.Err(); err != nil {
		return err
	}
	g.trace = Trace{Scenario: g.scenario, Epochs: n, EpochDigests: digests}
	return g.det.Restore(d)
}
