package check

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"github.com/cpm-sim/cpm/internal/engine"
)

// Golden records a compact hashed trace of a run: one digest per measured
// GPM epoch (folding the epoch's chip power, throughput, instruction count,
// per-island powers and allocations), plus a final digest folding the
// per-interval determinism hash. Stored traces are small (a few hundred
// bytes per scenario) but pin the run's entire observable behaviour: any
// change to the power model, controllers, workload generation or scheduling
// shifts at least one digest.
//
// Digest inputs are quantized to 9 significant decimal digits before
// hashing, so traces are stable against non-semantic float formatting
// differences while still catching any real numerical drift.
type Golden struct {
	recorder
	scenario string
	det      *Determinism
	trace    Trace
}

// NewGolden builds a recorder for the named scenario.
func NewGolden(scenario string) *Golden {
	return &Golden{
		recorder: recorder{name: "golden"},
		scenario: scenario,
		det:      NewDeterminism(0),
	}
}

// Trace is the serialized golden record of one scenario run.
type Trace struct {
	// Scenario names the canonical scenario the trace pins.
	Scenario string `json:"scenario"`
	// Epochs is the number of measured GPM epochs.
	Epochs int `json:"epochs"`
	// EpochDigests are per-epoch FNV-1a digests (hex).
	EpochDigests []string `json:"epoch_digests"`
	// FinalDigest folds the full per-interval state series.
	FinalDigest string `json:"final_digest"`
	// MeanPowerW, MeanBIPS and MaxTempC are rounded headline numbers kept
	// for human diffing — the digests, not these, are what the regression
	// test compares exactly.
	MeanPowerW float64 `json:"mean_power_w"`
	MeanBIPS   float64 `json:"mean_bips"`
	MaxTempC   float64 `json:"max_temp_c"`
}

// quantize renders v at 9 significant digits, the golden-digest input
// format.
func quantize(v float64) string { return fmt.Sprintf("%.9g", v) }

// RunStart implements engine.Observer.
func (g *Golden) RunStart(info engine.RunInfo) {
	g.det.RunStart(info)
	g.trace = Trace{Scenario: g.scenario}
}

// ObserveStep implements engine.Observer.
func (g *Golden) ObserveStep(st engine.Step) { g.det.ObserveStep(st) }

// ObserveEpoch implements engine.Observer.
func (g *Golden) ObserveEpoch(e engine.Epoch) {
	g.det.ObserveEpoch(e)
	h := fnv.New64a()
	put := func(v float64) { h.Write([]byte(quantize(v))) }
	put(float64(e.Index))
	put(e.MeanPowerW)
	put(e.MeanBIPS)
	put(e.Instructions)
	for _, p := range e.IslandPowerW {
		put(p)
	}
	for _, bips := range e.IslandBIPS {
		put(bips)
	}
	for _, a := range e.AllocW {
		put(a)
	}
	g.trace.EpochDigests = append(g.trace.EpochDigests, fmt.Sprintf("%016x", h.Sum64()))
	g.trace.Epochs = len(g.trace.EpochDigests)
}

// RunEnd implements engine.Observer.
func (g *Golden) RunEnd(sum *engine.Summary) {
	g.trace.FinalDigest = fmt.Sprintf("%016x", g.det.Sum64())
	if sum != nil {
		g.trace.MeanPowerW = round6(sum.MeanPowerW)
		g.trace.MeanBIPS = round6(sum.MeanBIPS)
		g.trace.MaxTempC = round6(sum.MaxTempC)
	}
}

// round6 rounds to 6 decimal places for the human-readable trailer fields,
// half away from zero. An earlier implementation round-tripped through
// Sprintf/Sscanf, whose ties-to-even decimal rendering could flip a value
// sitting exactly on a quantum boundary depending on how the compiler
// contracted the upstream arithmetic; math.Round's half-away-from-zero rule
// is deterministic in the value alone. (Digest inputs go through quantize,
// not this.)
func round6(v float64) float64 {
	return math.Round(v*1e6) / 1e6
}

// Trace returns the recorded trace (complete once RunEnd has fired).
func (g *Golden) Trace() Trace { return g.trace }

// Diff compares tr against a reference trace and returns a descriptive
// error at the first divergence, or nil when identical.
func (tr Trace) Diff(ref Trace) error {
	if tr.Scenario != ref.Scenario {
		return fmt.Errorf("golden: scenario %q compared against %q", tr.Scenario, ref.Scenario)
	}
	if tr.Epochs != ref.Epochs {
		return fmt.Errorf("golden: %s ran %d epochs, reference has %d", tr.Scenario, tr.Epochs, ref.Epochs)
	}
	for i := range ref.EpochDigests {
		if i < len(tr.EpochDigests) && tr.EpochDigests[i] != ref.EpochDigests[i] {
			return fmt.Errorf("golden: %s diverged at epoch %d: digest %s, reference %s (mean power now %.4f W, reference %.4f W)",
				tr.Scenario, i, tr.EpochDigests[i], ref.EpochDigests[i], tr.MeanPowerW, ref.MeanPowerW)
		}
	}
	if tr.FinalDigest != ref.FinalDigest {
		return fmt.Errorf("golden: %s epoch digests match but the interval-level digest diverged: %s vs reference %s",
			tr.Scenario, tr.FinalDigest, ref.FinalDigest)
	}
	return nil
}

// WriteFile stores the trace as indented JSON at path, creating parent
// directories as needed.
func (tr Trace) WriteFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// LoadTrace reads a stored golden trace.
func LoadTrace(path string) (Trace, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Trace{}, err
	}
	var tr Trace
	if err := json.Unmarshal(b, &tr); err != nil {
		return Trace{}, fmt.Errorf("golden: parsing %s: %w", path, err)
	}
	return tr, nil
}
