package check

import (
	"math"

	"github.com/cpm-sim/cpm/internal/engine"
)

// Determinism folds the entire per-interval state series — chip power,
// throughput, peak temperature and every island's level, frequency, power,
// BIPS and instruction count — into one streaming FNV-1a hash. Two runs of
// the same configuration and seed must produce the same digest regardless
// of executor (sequential, island-parallel, pooled); construct with a
// non-zero expectation to turn a mismatch into a violation at RunEnd, or
// with 0 to use it purely as a recorder (Sum64 after the run).
type Determinism struct {
	recorder
	h      fnv64a
	expect uint64
}

// fnv64a is FNV-1a 64 with its running value exposed: byte-for-byte the
// same digest as hash/fnv's New64a, but the whole hash state IS the one
// word, which is what lets a mid-run Determinism be checkpointed and
// resumed exactly (stdlib hashes hide their state). Equivalence with the
// stdlib is pinned by a test.
type fnv64a struct{ sum uint64 }

const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

func (h *fnv64a) Write(p []byte) (int, error) {
	s := h.sum
	for _, b := range p {
		s ^= uint64(b)
		s *= fnvPrime64
	}
	h.sum = s
	return len(p), nil
}

func (h *fnv64a) Sum64() uint64 { return h.sum }

// NewDeterminism builds the check; expect of 0 records without comparing.
func NewDeterminism(expect uint64) *Determinism {
	return &Determinism{
		recorder: recorder{name: "determinism"},
		h:        fnv64a{sum: fnvOffset64},
		expect:   expect,
	}
}

// Sum64 returns the digest of everything observed so far.
func (c *Determinism) Sum64() uint64 { return c.h.Sum64() }

func (c *Determinism) word(v float64) {
	b := math.Float64bits(v)
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(b >> (8 * i))
	}
	c.h.Write(buf[:])
}

// RunStart implements engine.Observer.
func (c *Determinism) RunStart(info engine.RunInfo) {
	c.word(float64(info.Islands))
	c.word(float64(info.Cores))
	c.word(float64(info.MeasureIntervals))
}

// ObserveStep implements engine.Observer.
func (c *Determinism) ObserveStep(st engine.Step) {
	c.word(float64(st.Index))
	c.word(st.Sim.ChipPowerW)
	c.word(st.Sim.TotalBIPS)
	c.word(st.Sim.MaxTempC)
	for _, ir := range st.Sim.Islands {
		c.word(float64(ir.Level))
		c.word(ir.FreqMHz)
		c.word(ir.PowerW)
		c.word(ir.BIPS)
		c.word(ir.Instructions)
	}
	for _, a := range st.AllocW {
		c.word(a)
	}
}

// ObserveEpoch implements engine.Observer.
func (c *Determinism) ObserveEpoch(e engine.Epoch) {
	c.word(e.MeanPowerW)
	c.word(e.MeanBIPS)
	c.word(e.Instructions)
}

// RunEnd implements engine.Observer.
func (c *Determinism) RunEnd(*engine.Summary) {
	if c.expect == 0 {
		return
	}
	if got := c.h.Sum64(); got != c.expect {
		c.report(Violation{
			Interval: -1, Epoch: -1, Island: -1,
			Observed: float64(got), Bound: float64(c.expect),
			Msg: "state-series digest diverged from expectation",
		})
	}
}
