package check

import (
	"bytes"
	"testing"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/metrics"
)

// TestGoldenScenariosWithMetricsObserver is the tentpole acceptance gate:
// every canonical scenario must stay bit-identical to its stored golden
// trace with the metrics observer attached — telemetry must be purely
// observational.
func TestGoldenScenariosWithMetricsObserver(t *testing.T) {
	for _, sc := range Canonical() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			g := NewGolden(sc.Name)
			reg := metrics.NewRegistry()
			obs := metrics.NewObserver(reg, metrics.ObserverOptions{Label: sc.Name})
			if _, _, err := sc.Run(goldenSeed, g, obs); err != nil {
				t.Fatal(err)
			}
			ref, err := LoadTrace(goldenPath(sc.Name))
			if err != nil {
				t.Skipf("golden trace missing (%v); run -update first", err)
			}
			if err := g.Trace().Diff(ref); err != nil {
				t.Errorf("metrics observer changed the run: %v", err)
			}
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			if _, err := metrics.ParsePrometheus(&buf); err != nil {
				t.Errorf("scenario telemetry fails the exposition round trip: %v", err)
			}
		})
	}
}

// TestGoldenUnchangedByHostileObserver is the scratch-scribbling mutation
// test: an observer that overwrites every live slice it is handed — the
// per-chip scratch behind Step.Sim.Islands and Step.AllocW, and the epoch
// slices — must change neither the golden digests nor the telemetry
// recorded by observers ahead of it. This pins the engine's snapshot-before-
// observers contract at the scenario level, where the invariant suite,
// golden recorder and metrics observer are all attached at once.
func TestGoldenUnchangedByHostileObserver(t *testing.T) {
	sc := Canonical()[0] // cpm-default

	run := func(hostile bool) (*Golden, *bytes.Buffer) {
		g := NewGolden(sc.Name)
		reg := metrics.NewRegistry()
		obs := metrics.NewObserver(reg, metrics.ObserverOptions{Label: sc.Name})
		extra := []engine.Observer{g, obs}
		if hostile {
			extra = append(extra, engine.Funcs{
				OnStep: func(st engine.Step) {
					for i := range st.Sim.Islands {
						ir := &st.Sim.Islands[i]
						ir.PowerW, ir.BIPS, ir.MeanUtil, ir.Level = -1e9, -1e9, -1e9, -1
					}
					for i := range st.AllocW {
						st.AllocW[i] = -1e9
					}
					for i := range st.GPMObs {
						st.GPMObs[i].PowerW = -1e9
					}
				},
				OnEpoch: func(e engine.Epoch) {
					for i := range e.AllocW {
						e.AllocW[i] = -1e9
					}
					for i := range e.IslandPowerW {
						e.IslandPowerW[i] = -1e9
					}
					for i := range e.IslandBIPS {
						e.IslandBIPS[i] = -1e9
					}
				},
			})
		}
		if _, _, err := sc.Run(goldenSeed, extra...); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		return g, &buf
	}

	clean, cleanTel := run(false)
	dirty, dirtyTel := run(true)
	if err := clean.Trace().Diff(dirty.Trace()); err != nil {
		t.Errorf("scribbling observer changed the golden trace: %v", err)
	}
	if !bytes.Equal(cleanTel.Bytes(), dirtyTel.Bytes()) {
		t.Errorf("scribbling observer changed the recorded telemetry:\n%s\n---\n%s",
			cleanTel.String(), dirtyTel.String())
	}
}
