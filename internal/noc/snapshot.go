package noc

import "github.com/cpm-sim/cpm/internal/snapshot"

// Snapshot appends the mesh's dynamic state: the congestion utilization of
// the last observed interval. Hop distances are configuration-derived.
func (m *Mesh) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagNoC)
	e.F64(m.utilization)
}

// Restore reads state written by Snapshot.
func (m *Mesh) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagNoC)
	m.utilization = d.F64()
	return d.Err()
}
