// Package noc models the on-chip interconnect of the globally-asynchronous,
// locally-synchronous (GALS) design the paper motivates in §I: wire delay is
// why a single global clock cannot span the die, and why the chip is
// partitioned into voltage/frequency islands talking over an asynchronous
// fabric in the first place.
//
// The model is a 2-D mesh of tiles (one per core, matching the thermal
// floorplan) with the shared last-level-cache banks and memory controllers
// in the centre of the die, as in the paper's Figure 1. Off-island memory
// traffic crosses the mesh with a fixed per-hop router+link latency in
// *uncore* cycles: the mesh runs on its own clock, so — true to GALS — its
// nanosecond latency does not change when islands scale their frequency,
// which makes NoC hops behave exactly like DRAM latency from the
// controllers' point of view (cheap at low island frequency, expensive at
// high). A previous-interval congestion factor models contention without
// coupling islands within an interval.
package noc

import (
	"errors"
	"fmt"
)

// Config describes the mesh.
type Config struct {
	// Rows and Cols give the tile grid; tile i sits at (i/Cols, i%Cols).
	Rows, Cols int
	// HopCycles is the per-hop router+link traversal in uncore cycles.
	HopCycles int
	// UncoreMHz is the mesh clock, independent of island DVFS (GALS).
	UncoreMHz float64
	// ControllerTiles are the tiles hosting LLC banks/memory controllers;
	// traffic is routed to the nearest one. Empty selects the die-centre
	// tiles automatically.
	ControllerTiles []int
	// FlitsPerSecondCap is the mesh saturation throughput used by the
	// congestion model.
	FlitsPerSecondCap float64
	// MaxQueueFactor bounds the congestion multiplier.
	MaxQueueFactor float64
}

// DefaultConfig returns a mesh matched to an n-core chip: near-square
// grid, 3-cycle hops on a 2 GHz uncore, centre controllers, and a
// saturation throughput generous enough that congestion is second-order at
// 8 cores.
func DefaultConfig(rows, cols int) Config {
	return Config{
		Rows: rows, Cols: cols,
		HopCycles:         3,
		UncoreMHz:         2000,
		FlitsPerSecondCap: 2e9,
		MaxQueueFactor:    4,
	}
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return errors.New("noc: non-positive grid dimension")
	}
	if c.HopCycles <= 0 {
		return errors.New("noc: non-positive hop latency")
	}
	if c.UncoreMHz <= 0 {
		return errors.New("noc: non-positive uncore clock")
	}
	if c.FlitsPerSecondCap <= 0 {
		return errors.New("noc: non-positive saturation throughput")
	}
	if c.MaxQueueFactor < 1 {
		return errors.New("noc: queue factor cap below 1")
	}
	n := c.Rows * c.Cols
	for _, t := range c.ControllerTiles {
		if t < 0 || t >= n {
			return fmt.Errorf("noc: controller tile %d outside the %d-tile grid", t, n)
		}
	}
	return nil
}

// Mesh is the interconnect instance.
type Mesh struct {
	cfg Config
	// hops[i] is the XY-routing distance from tile i to its nearest
	// controller.
	hops        []int
	utilization float64
}

// New builds a mesh.
func New(cfg Config) (*Mesh, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ctrls := cfg.ControllerTiles
	if len(ctrls) == 0 {
		ctrls = centreTiles(cfg.Rows, cfg.Cols)
	}
	m := &Mesh{cfg: cfg, hops: make([]int, cfg.Rows*cfg.Cols)}
	for t := range m.hops {
		best := 1 << 30
		for _, c := range ctrls {
			if d := manhattan(t, c, cfg.Cols); d < best {
				best = d
			}
		}
		m.hops[t] = best
	}
	return m, nil
}

// centreTiles returns the 1, 2 or 4 tiles nearest the die centre.
func centreTiles(rows, cols int) []int {
	var rs, cs []int
	if rows%2 == 1 {
		rs = []int{rows / 2}
	} else {
		rs = []int{rows/2 - 1, rows / 2}
	}
	if cols%2 == 1 {
		cs = []int{cols / 2}
	} else {
		cs = []int{cols/2 - 1, cols / 2}
	}
	var out []int
	for _, r := range rs {
		for _, c := range cs {
			out = append(out, r*cols+c)
		}
	}
	return out
}

func manhattan(a, b, cols int) int {
	ar, ac := a/cols, a%cols
	br, bc := b/cols, b%cols
	return abs(ar-br) + abs(ac-bc)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Tiles returns the number of tiles.
func (m *Mesh) Tiles() int { return len(m.hops) }

// Hops returns tile t's XY distance to its nearest controller.
func (m *Mesh) Hops(t int) int {
	if t < 0 || t >= len(m.hops) {
		return 0
	}
	return m.hops[t]
}

// ObserveTraffic records the aggregate flits injected during the interval
// that just completed, setting the congestion level the next interval sees.
func (m *Mesh) ObserveTraffic(flits uint64, intervalSec float64) {
	if intervalSec <= 0 {
		return
	}
	m.utilization = float64(flits) / intervalSec / m.cfg.FlitsPerSecondCap
}

// Utilization returns the last observed demand/capacity ratio.
func (m *Mesh) Utilization() float64 { return m.utilization }

// OneWayLatencyNs returns the current one-way latency from tile t to its
// nearest controller: hop count × hop cycles at the uncore clock, inflated
// by the congestion factor. Independent of any island's DVFS state (GALS).
func (m *Mesh) OneWayLatencyNs(t int) float64 {
	base := float64(m.Hops(t)*m.cfg.HopCycles) / m.cfg.UncoreMHz * 1000
	factor := m.cfg.MaxQueueFactor
	if m.utilization < 1 {
		if f := 1 / (1 - m.utilization); f < factor {
			factor = f
		}
	}
	return base * factor
}

// RoundTripLatencyNs is the request+response traversal for tile t.
func (m *Mesh) RoundTripLatencyNs(t int) float64 { return 2 * m.OneWayLatencyNs(t) }
