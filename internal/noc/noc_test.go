package noc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig(2, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.Rows = 0 },
		func(c *Config) { c.HopCycles = 0 },
		func(c *Config) { c.UncoreMHz = 0 },
		func(c *Config) { c.FlitsPerSecondCap = 0 },
		func(c *Config) { c.MaxQueueFactor = 0.5 },
		func(c *Config) { c.ControllerTiles = []int{99} },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(2, 4)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestCentreControllerDistances(t *testing.T) {
	// 2x4 grid: centre tiles are (0,1),(0,2),(1,1),(1,2) = 1,2,5,6.
	m, err := New(DefaultConfig(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 0, 1, 1, 0, 0, 1}
	for tile, hops := range want {
		if m.Hops(tile) != hops {
			t.Errorf("tile %d hops = %d, want %d", tile, m.Hops(tile), hops)
		}
	}
	if m.Tiles() != 8 {
		t.Errorf("Tiles = %d", m.Tiles())
	}
	// Out-of-range tiles are zero-distance (defensive).
	if m.Hops(-1) != 0 || m.Hops(99) != 0 {
		t.Error("out-of-range tiles should report zero hops")
	}
}

func TestExplicitControllers(t *testing.T) {
	cfg := DefaultConfig(4, 4)
	cfg.ControllerTiles = []int{0} // top-left corner controller
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Tile 15 (3,3) is 6 hops away.
	if m.Hops(15) != 6 {
		t.Errorf("corner-to-corner hops = %d, want 6", m.Hops(15))
	}
}

func TestLatencyGALSInvariance(t *testing.T) {
	// The mesh latency is in nanoseconds on its own clock; it must be
	// identical whatever the islands do. (Trivially true by construction —
	// the API simply has no island-frequency input — but the arithmetic is
	// worth pinning: 1 hop × 3 cycles at 2 GHz = 1.5 ns one way.)
	m, err := New(DefaultConfig(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.OneWayLatencyNs(0); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("one-way latency = %v ns, want 1.5", got)
	}
	if got := m.RoundTripLatencyNs(0); math.Abs(got-3.0) > 1e-12 {
		t.Errorf("round trip = %v ns, want 3.0", got)
	}
	// Controller tiles pay nothing.
	if m.RoundTripLatencyNs(1) != 0 {
		t.Error("controller tile should have zero mesh latency")
	}
}

func TestCongestionInflatesLatency(t *testing.T) {
	m, err := New(DefaultConfig(2, 4))
	if err != nil {
		t.Fatal(err)
	}
	base := m.OneWayLatencyNs(0)
	m.ObserveTraffic(uint64(1e9*0.0025), 0.0025) // ρ = 0.5
	if math.Abs(m.Utilization()-0.5) > 1e-9 {
		t.Errorf("utilization = %v", m.Utilization())
	}
	if got := m.OneWayLatencyNs(0); math.Abs(got-2*base) > 1e-9 {
		t.Errorf("latency at ρ=0.5 = %v, want doubled (%v)", got, 2*base)
	}
	// Saturation is capped.
	m.ObserveTraffic(1<<50, 0.0025)
	if got := m.OneWayLatencyNs(0); math.Abs(got-4*base) > 1e-9 {
		t.Errorf("saturated latency = %v, want capped at %v", got, 4*base)
	}
	// Bad interval ignored.
	u := m.Utilization()
	m.ObserveTraffic(1, 0)
	if m.Utilization() != u {
		t.Error("zero interval should be ignored")
	}
}

// Property: hop distance satisfies the triangle-ish sanity bounds — within
// the grid diameter and zero exactly on controller tiles.
func TestHopBoundsProperty(t *testing.T) {
	f := func(rows8, cols8 uint8) bool {
		rows := 1 + int(rows8%6)
		cols := 1 + int(cols8%6)
		m, err := New(DefaultConfig(rows, cols))
		if err != nil {
			return false
		}
		diameter := rows - 1 + cols - 1
		for t := 0; t < m.Tiles(); t++ {
			if m.Hops(t) < 0 || m.Hops(t) > diameter {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
