package control

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPIDMatchesEquationSeven(t *testing.T) {
	// Hand-compute Equation (7) for a short error sequence.
	c := NewPID(0.4, 0.4, 0.3)
	errs := []float64{1.0, 0.5, -0.25, 0.0}
	integral, prev := 0.0, 0.0
	for i, e := range errs {
		integral += e
		want := 0.4*e + 0.4*integral + 0.3*(e-prev)
		got := c.Update(e)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("step %d: Update = %v, want %v", i, got, want)
		}
		prev = e
	}
}

func TestPIDReset(t *testing.T) {
	c := NewPID(1, 1, 1)
	c.Update(5)
	c.Update(3)
	c.Reset()
	if c.Integral() != 0 {
		t.Error("Reset did not clear integral")
	}
	// After reset the first update behaves like a fresh controller.
	got := c.Update(2)
	want := 1*2.0 + 1*2.0 + 1*2.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("post-reset Update = %v, want %v", got, want)
	}
}

func TestPIDOutputClamp(t *testing.T) {
	c := NewPID(1, 0, 0)
	c.OutMin, c.OutMax = -1, 1
	if got := c.Update(100); got != 1 {
		t.Errorf("clamped output = %v, want 1", got)
	}
	if got := c.Update(-100); got != -1 {
		t.Errorf("clamped output = %v, want -1", got)
	}
}

func TestPIDAntiWindup(t *testing.T) {
	// Pure-integral controller pushed into saturation for a long time must
	// recover quickly once the error reverses, instead of unwinding a huge
	// accumulator.
	c := NewPID(0, 0.5, 0)
	c.OutMin, c.OutMax = -1, 1
	for i := 0; i < 100; i++ {
		c.Update(10) // deep saturation high
	}
	integralAtSat := c.Integral()
	if integralAtSat > 25 {
		t.Fatalf("integral wound up to %v despite anti-windup", integralAtSat)
	}
	// A few reversed-error steps should bring the output off the rail.
	steps := 0
	for ; steps < 20; steps++ {
		if c.Update(-10) < 1 {
			break
		}
	}
	if steps >= 20 {
		t.Error("controller stuck at saturation after error reversal")
	}
}

func TestPIDIntegralClamp(t *testing.T) {
	c := NewPID(0, 1, 0)
	c.IntMin, c.IntMax = -2, 2
	for i := 0; i < 50; i++ {
		c.Update(1)
	}
	if c.Integral() != 2 {
		t.Errorf("integral = %v, want clamped at 2", c.Integral())
	}
}

func TestPIDTFMatchesEquationTen(t *testing.T) {
	c := NewPID(0.4, 0.4, 0.3)
	tf := c.TF()
	// ((KP+KI+KD)z² − (KP+2KD)z + KD) / (z² − z)
	wantNum := NewPoly(1.1, -1.0, 0.3)
	wantDen := NewPoly(1, -1, 0)
	if !polyEq(tf.Num, wantNum, 1e-12) || !polyEq(tf.Den, wantDen, 1e-12) {
		t.Errorf("TF = %v, want (%v)/(%v)", tf, wantNum, wantDen)
	}
}

// Property: without clamping, the controller is linear — scaling the error
// sequence scales the output sequence.
func TestPIDLinearityProperty(t *testing.T) {
	f := func(e1, e2, e3, k float64) bool {
		in := func(v float64) float64 { return math.Mod(v, 10) }
		errs := []float64{in(e1), in(e2), in(e3)}
		kk := in(k)
		a := NewPID(0.4, 0.4, 0.3)
		b := NewPID(0.4, 0.4, 0.3)
		for _, e := range errs {
			ua := a.Update(e) * kk
			ub := b.Update(e * kk)
			if math.Abs(ua-ub) > 1e-9*(1+math.Abs(ua)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func polyEq(a, b Poly, tol float64) bool {
	d := a.Sub(b)
	for _, c := range d {
		if math.Abs(c) > tol {
			return false
		}
	}
	return true
}

func TestPIDFrozenIntegral(t *testing.T) {
	c := NewPID(0.5, 0.5, 0)
	c.Frozen = true
	c.Update(1)
	c.Update(1)
	if c.Integral() != 0 {
		t.Errorf("frozen integral moved to %v", c.Integral())
	}
	c.Frozen = false
	c.Update(1)
	if c.Integral() != 1 {
		t.Errorf("unfrozen integral = %v, want 1", c.Integral())
	}
}
