package control

import (
	"math"
	"testing"
)

func TestRootLocusBracketsStabilityBoundary(t *testing.T) {
	pts, err := RootLocus(PaperPlantGain, PaperGains, 0.1, 3.0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 50 {
		t.Fatalf("only %d locus points", len(pts))
	}
	// Scales must be increasing and poles present.
	for i, p := range pts {
		if len(p.Poles) != 3 {
			t.Fatalf("point %d has %d poles", i, len(p.Poles))
		}
		if i > 0 && p.Scale <= pts[i-1].Scale {
			t.Fatal("scales not increasing")
		}
	}
	// The locus must transition stable→unstable exactly once, at the g
	// found by MaxStableGainScale.
	gmax, err := MaxStableGainScale(PaperPlantGain, PaperGains, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		want := p.Scale < gmax
		// Skip points within locus resolution of the boundary.
		if math.Abs(p.Scale-gmax) < 0.05 {
			continue
		}
		if p.Stable != want {
			t.Errorf("scale %.3f: stable=%v, want %v (boundary %.3f)", p.Scale, p.Stable, want, gmax)
		}
	}
}

func TestRootLocusValidation(t *testing.T) {
	if _, err := RootLocus(0, PaperGains, 0.1, 2, 10); err == nil {
		t.Error("zero plant gain should be rejected")
	}
	if _, err := RootLocus(1, PaperGains, 2, 1, 10); err == nil {
		t.Error("inverted range should be rejected")
	}
	if _, err := RootLocus(1, PaperGains, 0.1, 2, 1); err == nil {
		t.Error("single point should be rejected")
	}
}

func TestFrequencyResponseFirstOrder(t *testing.T) {
	// H(z) = (1-p)/(z-p): DC gain 1 (0 dB at ω→0), monotone low-pass.
	p := 0.8
	h, err := NewTF([]float64{1 - p}, []float64{1, -p})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := FrequencyResponse(h, 1e-4, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp[0].MagDB) > 0.01 {
		t.Errorf("DC magnitude = %.3f dB, want ≈0", resp[0].MagDB)
	}
	for i := 1; i < len(resp); i++ {
		if resp[i].MagDB > resp[i-1].MagDB+1e-9 {
			t.Fatalf("low-pass magnitude not monotone at ω=%.4f", resp[i].Omega)
		}
	}
	// At the Nyquist frequency H(-1) = (1-p)/(-1-p): |H| = 0.2/1.8.
	wantDB := 20 * math.Log10(0.2/1.8)
	last := resp[len(resp)-1]
	if math.Abs(last.MagDB-wantDB) > 0.05 {
		t.Errorf("Nyquist magnitude = %.2f dB, want %.2f", last.MagDB, wantDB)
	}
}

func TestFrequencyResponseValidation(t *testing.T) {
	h := Gain(1)
	if _, err := FrequencyResponse(h, 0, 10); err == nil {
		t.Error("zero low frequency should be rejected")
	}
	if _, err := FrequencyResponse(h, 4, 10); err == nil {
		t.Error("low frequency above π should be rejected")
	}
	if _, err := FrequencyResponse(h, 0.1, 1); err == nil {
		t.Error("single point should be rejected")
	}
}

// The Bode gain margin of the open loop must agree with the algebraic
// stable-gain range: gm_dB ≈ 20·log10(gmax).
func TestLoopMarginsAgreeWithGainRange(t *testing.T) {
	m, err := LoopMargins(PaperPlantGain, PaperGains)
	if err != nil {
		t.Fatal(err)
	}
	gmax, err := MaxStableGainScale(PaperPlantGain, PaperGains, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	wantDB := 20 * math.Log10(gmax)
	if math.IsInf(m.GainMarginDB, 0) {
		t.Fatalf("no gain margin found; margins = %+v", m)
	}
	if math.Abs(m.GainMarginDB-wantDB) > 0.2 {
		t.Errorf("gain margin = %.2f dB, want ≈%.2f dB (g=%.3f)", m.GainMarginDB, wantDB, gmax)
	}
	// A stable loop has positive margins.
	if m.GainMarginDB <= 0 {
		t.Error("gain margin should be positive for a stable design")
	}
	if !math.IsInf(m.PhaseMarginDeg, 1) && m.PhaseMarginDeg <= 0 {
		t.Errorf("phase margin = %.1f°, want positive", m.PhaseMarginDeg)
	}
}

func TestLoopMarginsDetectInstability(t *testing.T) {
	// Triple the plant gain past the boundary: margin goes negative.
	m, err := LoopMargins(3*PaperPlantGain, PaperGains)
	if err != nil {
		t.Fatal(err)
	}
	if m.GainMarginDB >= 0 {
		t.Errorf("gain margin = %.2f dB for an unstable loop, want negative", m.GainMarginDB)
	}
}
