package control

import "github.com/cpm-sim/cpm/internal/snapshot"

// Snapshot appends the controller's dynamic state (integral accumulator,
// previous error, freeze flag). Gains and clamps are construction-time
// configuration and are not captured; a snapshot restores only into a PID
// built with the same design.
func (c *PID) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagPID)
	e.F64(c.integral)
	e.F64(c.prevErr)
	e.Bool(c.Frozen)
}

// Restore reads state written by Snapshot.
func (c *PID) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagPID)
	c.integral = d.F64()
	c.prevErr = d.F64()
	c.Frozen = d.Bool()
	return d.Err()
}
