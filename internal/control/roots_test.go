package control

import (
	"math"
	"math/cmplx"
	"sort"
	"testing"
	"testing/quick"
)

func TestRootsLinear(t *testing.T) {
	roots, err := Roots(NewPoly(2, -6)) // 2z - 6 = 0 -> z = 3
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || cmplx.Abs(roots[0]-3) > 1e-12 {
		t.Errorf("roots = %v, want [3]", roots)
	}
}

func TestRootsQuadraticReal(t *testing.T) {
	// (z-2)(z+5) = z² + 3z - 10
	roots, err := Roots(NewPoly(1, 3, -10))
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{-5, 2}
	assertRootSet(t, roots, want, 1e-10)
}

func TestRootsQuadraticComplex(t *testing.T) {
	// z² + 1 -> ±i
	roots, err := Roots(NewPoly(1, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	assertRootSet(t, roots, []complex128{complex(0, 1), complex(0, -1)}, 1e-10)
}

func TestRootsCubicKnown(t *testing.T) {
	// (z-1)(z-2)(z-3) = z³ - 6z² + 11z - 6
	roots, err := Roots(NewPoly(1, -6, 11, -6))
	if err != nil {
		t.Fatal(err)
	}
	assertRootSet(t, roots, []complex128{1, 2, 3}, 1e-8)
}

func TestRootsQuinticMixed(t *testing.T) {
	// (z² + 2z + 5)(z - 0.5)(z + 4)(z - 1): roots -1±2i, 0.5, -4, 1
	p := NewPoly(1, 2, 5).Mul(NewPoly(1, -0.5)).Mul(NewPoly(1, 4)).Mul(NewPoly(1, -1))
	roots, err := Roots(p)
	if err != nil {
		t.Fatal(err)
	}
	want := []complex128{complex(-1, 2), complex(-1, -2), 0.5, -4, 1}
	assertRootSet(t, roots, want, 1e-7)
}

func TestRootsDeterministicOrder(t *testing.T) {
	p := NewPoly(1, -6, 11, -6)
	a, err := Roots(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Roots(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic root order: %v vs %v", a, b)
		}
	}
	// Sorted by descending magnitude.
	for i := 1; i < len(a); i++ {
		if cmplx.Abs(a[i]) > cmplx.Abs(a[i-1])+1e-12 {
			t.Fatalf("roots not sorted by magnitude: %v", a)
		}
	}
}

func TestRootsZeroPolynomial(t *testing.T) {
	if _, err := Roots(Poly{}); err == nil {
		t.Error("expected error for zero polynomial")
	}
}

// Property: build a polynomial from random real roots in [-2, 2], recover
// them with Roots.
func TestRootsRoundTripProperty(t *testing.T) {
	f := func(r1, r2, r3, r4 float64) bool {
		in := func(v float64) float64 { return math.Mod(v, 2) }
		want := []complex128{
			complex(in(r1), 0), complex(in(r2), 0),
			complex(in(r3), 0), complex(in(r4), 0),
		}
		// Require minimum separation; Durand–Kerner accuracy degrades with
		// (near-)multiple roots, which controller design never produces.
		for i := range want {
			for j := i + 1; j < len(want); j++ {
				if cmplx.Abs(want[i]-want[j]) < 0.05 {
					return true // skip degenerate draw
				}
			}
		}
		p := Poly{1}
		for _, r := range want {
			p = p.Mul(NewPoly(1, -real(r)))
		}
		got, err := Roots(p)
		if err != nil {
			return false
		}
		return rootSetsMatch(got, want, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSpectralRadius(t *testing.T) {
	// (z-0.5)(z+0.9): radius 0.9
	r, err := SpectralRadius(NewPoly(1, 0.4, -0.45))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-0.9) > 1e-9 {
		t.Errorf("SpectralRadius = %v, want 0.9", r)
	}
}

func assertRootSet(t *testing.T, got, want []complex128, tol float64) {
	t.Helper()
	if !rootSetsMatch(got, want, tol) {
		t.Errorf("roots = %v, want %v", got, want)
	}
}

func rootSetsMatch(got, want []complex128, tol float64) bool {
	if len(got) != len(want) {
		return false
	}
	g := append([]complex128(nil), got...)
	w := append([]complex128(nil), want...)
	key := func(z complex128) (float64, float64) { return real(z), imag(z) }
	less := func(s []complex128) func(i, j int) bool {
		return func(i, j int) bool {
			ri, ii := key(s[i])
			rj, ij := key(s[j])
			if ri != rj {
				return ri < rj
			}
			return ii < ij
		}
	}
	sort.Slice(g, less(g))
	sort.Slice(w, less(w))
	for i := range g {
		if cmplx.Abs(g[i]-w[i]) > tol {
			return false
		}
	}
	return true
}
