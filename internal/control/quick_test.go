package control

import (
	"math"
	"math/cmplx"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// quickCfg bounds the generated magnitudes so properties exercise the
// interesting region (roots and gains near the unit circle and the paper's
// design space) instead of astronomically large floats.
func quickCfg(seed int64, gen func(vs []reflect.Value, r *rand.Rand)) *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(seed)),
		Values:   gen,
	}
}

// TestQuickJuryAgreesWithRootMagnitudes builds random cubics from known
// roots (three real, or a complex-conjugate pair plus a real) and checks
// that the Jury criterion's verdict matches the explicit root magnitudes.
// Roots within 5e-3 of the unit circle are regenerated: both methods are
// legitimately undecided at the margin.
func TestQuickJuryAgreesWithRootMagnitudes(t *testing.T) {
	type input struct {
		mags  [3]float64 // root magnitudes in [0, 2]
		theta float64    // angle of the complex pair
		signs [3]bool
		pair  bool // complex-conjugate pair + real root
	}
	gen := func(vs []reflect.Value, r *rand.Rand) {
		var in input
		for i := range in.mags {
			for {
				m := 2 * r.Float64()
				if math.Abs(m-1) >= 5e-3 {
					in.mags[i] = m
					break
				}
			}
			in.signs[i] = r.Intn(2) == 0
		}
		in.theta = (0.1 + 0.8*r.Float64()) * math.Pi // away from the real axis
		in.pair = r.Intn(2) == 0
		vs[0] = reflect.ValueOf(in)
	}
	prop := func(in input) bool {
		sgn := func(i int) float64 {
			if in.signs[i] {
				return 1
			}
			return -1
		}
		var p Poly
		var mags []float64
		if in.pair {
			// (z² − 2·m·cosθ·z + m²)(z − s·m3)
			m := in.mags[0]
			p = NewPoly(1, -2*m*math.Cos(in.theta), m*m).Mul(NewPoly(1, -sgn(2)*in.mags[2]))
			mags = []float64{m, m, in.mags[2]}
		} else {
			p = NewPoly(1, -sgn(0)*in.mags[0]).
				Mul(NewPoly(1, -sgn(1)*in.mags[1])).
				Mul(NewPoly(1, -sgn(2)*in.mags[2]))
			mags = in.mags[:]
		}
		wantStable := true
		for _, m := range mags {
			if m >= 1 {
				wantStable = false
			}
		}
		stable, err := Jury(p)
		if err != nil {
			// Marginal constructions (e.g. |p(1)| ≈ 0) are allowed to be
			// rejected, never misjudged.
			return true
		}
		if stable != wantStable {
			t.Logf("Jury(%v) = %v, root magnitudes %v", p, stable, mags)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(1, gen)); err != nil {
		t.Error(err)
	}
}

// TestQuickPIDStepMatchesAnalysis closes the loop between the linear-model
// prediction (Analyze's step metrics, computed from the transfer function)
// and the actual PID implementation stepped in the time domain against the
// same integrator plant. For every stable random design the two must agree
// on overshoot, settling time and steady-state error — the property that
// makes design.go's offline analysis trustworthy for pic.Controller.
func TestQuickPIDStepMatchesAnalysis(t *testing.T) {
	type design struct {
		a float64
		g Gains
	}
	gen := func(vs []reflect.Value, r *rand.Rand) {
		vs[0] = reflect.ValueOf(design{
			a: 0.3 + 1.2*r.Float64(),
			g: Gains{
				KP: 0.1 + 0.9*r.Float64(),
				KI: 0.1 + 0.9*r.Float64(),
				KD: 0.6 * r.Float64(),
			},
		})
	}
	prop := func(d design) bool {
		an, err := Analyze(d.a, d.g)
		if err != nil || !an.Stable {
			return true // only stable designs predict a step response
		}
		if an.Step.SettlingTime < 0 || an.Step.SettlingTime > 150 {
			return true // barely-damped designs settle too near the horizon
		}
		// Time-domain replay: y(t+1) = y(t) + a·u(t) is the plant of Eq. 9,
		// u from the real controller (no clamps: match the linear model).
		pid := NewPID(d.g.KP, d.g.KI, d.g.KD)
		y := 0.0
		ys := make([]float64, 200)
		for k := range ys {
			u := pid.Update(1 - y)
			y += d.a * u
			ys[k] = y
		}
		m := MeasureStep(ys, 1, 0)
		if math.Abs(m.MaxOvershoot-an.Step.MaxOvershoot) > 0.02 {
			t.Logf("a=%.3f g=%+v: overshoot %.4f (time domain) vs %.4f (analysis)",
				d.a, d.g, m.MaxOvershoot, an.Step.MaxOvershoot)
			return false
		}
		if diff := m.SettlingTime - an.Step.SettlingTime; diff < -1 || diff > 1 {
			t.Logf("a=%.3f g=%+v: settling %d (time domain) vs %d (analysis)",
				d.a, d.g, m.SettlingTime, an.Step.SettlingTime)
			return false
		}
		if math.Abs(m.SteadyStateError-an.Step.SteadyStateError) > 0.01 {
			t.Logf("a=%.3f g=%+v: sse %.4f vs %.4f", d.a, d.g, m.SteadyStateError, an.Step.SteadyStateError)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(2, gen)); err != nil {
		t.Error(err)
	}
}

// TestQuickRootsResidual: Roots' output actually solves random stable-ish
// monic cubics (residual check), complementing FuzzRoots with magnitudes in
// the controller's operating region.
func TestQuickRootsResidual(t *testing.T) {
	gen := func(vs []reflect.Value, r *rand.Rand) {
		for i := range vs {
			vs[i] = reflect.ValueOf(4*r.Float64() - 2)
		}
	}
	prop := func(c2, c1, c0 float64) bool {
		p := NewPoly(1, c2, c1, c0)
		roots, err := Roots(p)
		if err != nil {
			return true
		}
		if len(roots) != p.Degree() {
			return false
		}
		for _, z := range roots {
			mag := math.Max(1, cmplx.Abs(z))
			if cmplx.Abs(p.EvalC(z)) > 1e-7*math.Pow(mag, 3) {
				t.Logf("poly %v root %v residual %g", p, z, cmplx.Abs(p.EvalC(z)))
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg(3, gen)); err != nil {
		t.Error(err)
	}
}

// TestDesignGainsPaperPoint pins the deterministic design-search result for
// the paper's plant: the returned gains must meet every clause of PaperSpec
// when re-analyzed from scratch.
func TestDesignGainsPaperPoint(t *testing.T) {
	g, an, err := DesignGains(PaperPlantGain, PaperSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !an.Stable {
		t.Fatal("design search returned an unstable design")
	}
	re, err := Analyze(PaperPlantGain, g)
	if err != nil {
		t.Fatal(err)
	}
	if re.Step.MaxOvershoot > PaperSpec.MaxOvershoot {
		t.Errorf("overshoot %.3f exceeds spec %.3f", re.Step.MaxOvershoot, PaperSpec.MaxOvershoot)
	}
	if re.Step.SettlingTime < 0 || re.Step.SettlingTime > PaperSpec.MaxSettling {
		t.Errorf("settling %d outside spec %d", re.Step.SettlingTime, PaperSpec.MaxSettling)
	}
	if re.Step.SteadyStateError > PaperSpec.MaxSteadyStateError {
		t.Errorf("steady-state error %.4f exceeds spec %.4f", re.Step.SteadyStateError, PaperSpec.MaxSteadyStateError)
	}
	if m, err := MaxStableGainScale(PaperPlantGain, g, 1e-3); err != nil || m < PaperSpec.MinGainMargin {
		t.Errorf("gain margin %.3f (err %v) below spec %.1f", m, err, PaperSpec.MinGainMargin)
	}
}
