// Package control implements the discrete-time control-theory toolkit that
// the CPM power-management architecture is designed and verified with.
//
// It provides polynomial algebra over real coefficients, complex root finding
// (Durand–Kerner), z-domain transfer functions with series/feedback
// composition, stability analysis (pole magnitudes and the Jury criterion),
// step-response simulation with the three robustness metrics the paper uses
// (maximum overshoot, settling time, steady-state error), and a discrete PID
// controller with anti-windup suitable for driving a DVFS actuator.
//
// The package replaces the offline Matlab pole-placement analysis of §II-D of
// the paper with tested, in-repo code: given the identified plant
// P(z) = a/(z-1) and PID gains (K_P, K_I, K_D), it constructs the closed-loop
// transfer function, verifies that every pole lies inside the unit circle and
// reports the range of gain scalings g for which stability is preserved.
package control

import (
	"fmt"
	"math"
	"strings"
)

// Poly is a real polynomial stored by ascending powers: Poly{c0, c1, c2}
// represents c0 + c1*z + c2*z². The zero value is the zero polynomial.
type Poly []float64

// NewPoly returns a polynomial from descending-power coefficients, which is
// the order polynomials are conventionally written in (z² + 2z + 3 is
// NewPoly(1, 2, 3)).
func NewPoly(desc ...float64) Poly {
	p := make(Poly, len(desc))
	for i, c := range desc {
		p[len(desc)-1-i] = c
	}
	return p.trim()
}

// trim removes leading (highest-power) zero coefficients.
func (p Poly) trim() Poly {
	n := len(p)
	for n > 0 && p[n-1] == 0 {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p; the zero polynomial has degree -1.
func (p Poly) Degree() int { return len(p.trim()) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p.trim()) == 0 }

// Clone returns an independent copy of p.
func (p Poly) Clone() Poly { return append(Poly(nil), p...) }

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	r := make(Poly, n)
	for i := range r {
		if i < len(p) {
			r[i] += p[i]
		}
		if i < len(q) {
			r[i] += q[i]
		}
	}
	return r.trim()
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly { return p.Add(q.Scale(-1)) }

// Scale returns k*p.
func (p Poly) Scale(k float64) Poly {
	r := make(Poly, len(p))
	for i, c := range p {
		r[i] = k * c
	}
	return r.trim()
}

// Mul returns p*q.
func (p Poly) Mul(q Poly) Poly {
	p, q = p.trim(), q.trim()
	if len(p) == 0 || len(q) == 0 {
		return Poly{}
	}
	r := make(Poly, len(p)+len(q)-1)
	for i, a := range p {
		for j, b := range q {
			r[i+j] += a * b
		}
	}
	return r.trim()
}

// Eval evaluates p at the real point x using Horner's method.
func (p Poly) Eval(x float64) float64 {
	v := 0.0
	for i := len(p) - 1; i >= 0; i-- {
		v = v*x + p[i]
	}
	return v
}

// EvalC evaluates p at the complex point z using Horner's method.
func (p Poly) EvalC(z complex128) complex128 {
	v := complex(0, 0)
	for i := len(p) - 1; i >= 0; i-- {
		v = v*z + complex(p[i], 0)
	}
	return v
}

// Monic returns p scaled so its leading coefficient is 1. It panics on the
// zero polynomial.
func (p Poly) Monic() Poly {
	p = p.trim()
	if len(p) == 0 {
		panic("control: Monic of zero polynomial")
	}
	return p.Scale(1 / p[len(p)-1])
}

// Derivative returns dp/dz.
func (p Poly) Derivative() Poly {
	p = p.trim()
	if len(p) <= 1 {
		return Poly{}
	}
	r := make(Poly, len(p)-1)
	for i := 1; i < len(p); i++ {
		r[i-1] = float64(i) * p[i]
	}
	return r.trim()
}

// String renders p in conventional descending-power notation, e.g.
// "z^2 - 1.131z + 0.21".
func (p Poly) String() string {
	p = p.trim()
	if len(p) == 0 {
		return "0"
	}
	var b strings.Builder
	first := true
	for i := len(p) - 1; i >= 0; i-- {
		c := p[i]
		if c == 0 && len(p) > 1 {
			continue
		}
		switch {
		case first && c < 0:
			b.WriteString("-")
		case !first && c < 0:
			b.WriteString(" - ")
		case !first:
			b.WriteString(" + ")
		}
		first = false
		ac := math.Abs(c)
		if ac != 1 || i == 0 {
			b.WriteString(trimFloat(ac))
		}
		switch {
		case i == 1:
			b.WriteString("z")
		case i > 1:
			fmt.Fprintf(&b, "z^%d", i)
		}
	}
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.6g", v)
	return s
}
