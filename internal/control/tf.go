package control

import (
	"errors"
	"fmt"
)

// TF is a discrete-time (z-domain) transfer function Num(z)/Den(z) with real
// coefficients. TFs are immutable by convention: composition methods return
// new values.
type TF struct {
	Num Poly
	Den Poly
}

// NewTF builds a transfer function from descending-power numerator and
// denominator coefficients.
func NewTF(num, den []float64) (TF, error) {
	tf := TF{Num: NewPoly(num...), Den: NewPoly(den...)}
	if tf.Den.IsZero() {
		return TF{}, errors.New("control: transfer function with zero denominator")
	}
	return tf, nil
}

// Gain returns the scalar transfer function k.
func Gain(k float64) TF { return TF{Num: Poly{k}, Den: Poly{1}} }

// String renders the transfer function as "Num / Den".
func (t TF) String() string {
	return fmt.Sprintf("(%s) / (%s)", t.Num.String(), t.Den.String())
}

// Series returns the cascade t·u (output of t feeding u).
func (t TF) Series(u TF) TF {
	return TF{Num: t.Num.Mul(u.Num), Den: t.Den.Mul(u.Den)}
}

// Add returns t + u over a common denominator.
func (t TF) Add(u TF) TF {
	return TF{
		Num: t.Num.Mul(u.Den).Add(u.Num.Mul(t.Den)),
		Den: t.Den.Mul(u.Den),
	}
}

// Scale returns k·t.
func (t TF) Scale(k float64) TF { return TF{Num: t.Num.Scale(k), Den: t.Den.Clone()} }

// Feedback closes a unity negative-feedback loop around the open-loop
// transfer function t, returning t/(1+t). This is the Y(z) = P·C/(1+P·C)
// composition of Equation (11) of the paper when t = P·C.
func (t TF) Feedback() TF {
	return TF{
		Num: t.Num,
		Den: t.Den.Add(t.Num),
	}
}

// Poles returns the roots of the denominator, sorted by descending magnitude.
func (t TF) Poles() ([]complex128, error) { return Roots(t.Den) }

// Zeros returns the roots of the numerator, sorted by descending magnitude.
func (t TF) Zeros() ([]complex128, error) {
	if t.Num.Degree() < 1 {
		return []complex128{}, nil
	}
	return Roots(t.Num)
}

// DCGain evaluates the transfer function at z = 1, the steady-state gain for
// step inputs. It returns an error when z = 1 is a pole (infinite DC gain, as
// with a pure integrator).
func (t TF) DCGain() (float64, error) {
	den := t.Den.Eval(1)
	if den == 0 {
		return 0, errors.New("control: pole at z=1, DC gain is unbounded")
	}
	return t.Num.Eval(1) / den, nil
}

// Simulate runs the difference equation implied by the transfer function on
// the input sequence u, returning the output sequence of equal length. The
// filter state starts at rest. Coefficients are normalized so the highest
// denominator coefficient is 1; numerator shorter than the denominator is
// treated as delayed (strictly proper systems respond with latency).
func (t TF) Simulate(u []float64) ([]float64, error) {
	den := t.Den.trim()
	num := t.Num.trim()
	if len(den) == 0 {
		return nil, errors.New("control: zero denominator")
	}
	if len(num) > len(den) {
		return nil, errors.New("control: improper transfer function (numerator degree exceeds denominator)")
	}
	n := len(den)
	// Normalize: a_{n-1} (leading) = 1.
	lead := den[n-1]
	a := make([]float64, n) // ascending powers
	b := make([]float64, n)
	for i := range den {
		a[i] = den[i] / lead
	}
	for i := range num {
		b[i] = num[i] / lead
	}
	// Difference equation for H(z) = (b_{n-1} z^{n-1} + ... + b_0) /
	// (z^{n-1} + a_{n-2} z^{n-2} + ... + a_0):
	// y[k] = -sum_{i=0}^{n-2} a_i y[k-(n-1-i)] + sum_{i=0}^{n-1} b_i u[k-(n-1-i)]
	y := make([]float64, len(u))
	for k := range u {
		acc := 0.0
		for i := 0; i < n-1; i++ {
			lag := n - 1 - i
			if k-lag >= 0 {
				acc -= a[i] * y[k-lag]
			}
		}
		for i := 0; i < n; i++ {
			lag := n - 1 - i
			if k-lag >= 0 {
				acc += b[i] * u[k-lag]
			}
		}
		y[k] = acc
	}
	return y, nil
}

// StepResponse simulates the unit-step response of t for n samples.
func (t TF) StepResponse(n int) ([]float64, error) {
	u := make([]float64, n)
	for i := range u {
		u[i] = 1
	}
	return t.Simulate(u)
}
