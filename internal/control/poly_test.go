package control

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewPolyDescendingOrder(t *testing.T) {
	p := NewPoly(1, 2, 3) // z² + 2z + 3
	if got := p.Eval(0); got != 3 {
		t.Errorf("Eval(0) = %v, want 3", got)
	}
	if got := p.Eval(1); got != 6 {
		t.Errorf("Eval(1) = %v, want 6", got)
	}
	if got := p.Eval(2); got != 4+4+3 {
		t.Errorf("Eval(2) = %v, want 11", got)
	}
	if p.Degree() != 2 {
		t.Errorf("Degree = %d, want 2", p.Degree())
	}
}

func TestPolyTrim(t *testing.T) {
	p := NewPoly(0, 0, 1, 2)
	if p.Degree() != 1 {
		t.Errorf("Degree = %d, want 1", p.Degree())
	}
	if !NewPoly(0).IsZero() {
		t.Error("NewPoly(0) should be zero")
	}
	if (Poly{}).Degree() != -1 {
		t.Error("zero polynomial should have degree -1")
	}
}

func TestPolyAddSub(t *testing.T) {
	p := NewPoly(1, 2, 3)
	q := NewPoly(-1, 0, 1)
	sum := p.Add(q)
	want := NewPoly(2, 4) // z² cancels: (1-1)z² + 2z + 4
	if len(sum) != len(want) {
		t.Fatalf("Add result %v, want %v", sum, want)
	}
	for i := range sum {
		if sum[i] != want[i] {
			t.Fatalf("Add result %v, want %v", sum, want)
		}
	}
	diff := p.Sub(p)
	if !diff.IsZero() {
		t.Errorf("p - p = %v, want zero", diff)
	}
}

func TestPolyMulKnown(t *testing.T) {
	// (z+1)(z-1) = z² - 1
	p := NewPoly(1, 1).Mul(NewPoly(1, -1))
	want := NewPoly(1, 0, -1)
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-15 {
			t.Fatalf("Mul = %v, want %v", p, want)
		}
	}
}

func TestPolyMulZero(t *testing.T) {
	p := NewPoly(1, 2, 3)
	if !p.Mul(Poly{}).IsZero() {
		t.Error("p * 0 should be zero")
	}
	if !(Poly{}).Mul(p).IsZero() {
		t.Error("0 * p should be zero")
	}
}

func TestPolyMonic(t *testing.T) {
	p := NewPoly(2, 4, 6).Monic()
	want := NewPoly(1, 2, 3)
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-15 {
			t.Fatalf("Monic = %v, want %v", p, want)
		}
	}
}

func TestPolyDerivative(t *testing.T) {
	// d/dz (z³ + 2z² + 3z + 4) = 3z² + 4z + 3
	p := NewPoly(1, 2, 3, 4).Derivative()
	want := NewPoly(3, 4, 3)
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("Derivative = %v, want %v", p, want)
		}
	}
	if !NewPoly(5).Derivative().IsZero() {
		t.Error("derivative of constant should be zero")
	}
}

func TestPolyString(t *testing.T) {
	cases := []struct {
		p    Poly
		want string
	}{
		{NewPoly(1, -1.131, 0.21), "z^2 - 1.131z + 0.21"},
		{NewPoly(1, 0, -1), "z^2 - 1"},
		{NewPoly(0), "0"},
		{NewPoly(-1, 1), "-z + 1"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", []float64(c.p), got, c.want)
		}
	}
}

// Property: evaluation is a ring homomorphism — (p·q)(x) = p(x)·q(x) and
// (p+q)(x) = p(x)+q(x).
func TestPolyRingHomomorphismProperty(t *testing.T) {
	f := func(a, b, c, d, e, x float64) bool {
		// Keep magnitudes tame to avoid float blowup dominating tolerance.
		clampIn := func(v float64) float64 { return math.Mod(v, 4) }
		p := NewPoly(clampIn(a), clampIn(b), clampIn(c))
		q := NewPoly(clampIn(d), clampIn(e))
		xx := clampIn(x)
		lhsMul := p.Mul(q).Eval(xx)
		rhsMul := p.Eval(xx) * q.Eval(xx)
		lhsAdd := p.Add(q).Eval(xx)
		rhsAdd := p.Eval(xx) + q.Eval(xx)
		tol := 1e-9 * (1 + math.Abs(rhsMul) + math.Abs(rhsAdd))
		return math.Abs(lhsMul-rhsMul) <= tol && math.Abs(lhsAdd-rhsAdd) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPolyEvalCMatchesEvalOnRealAxis(t *testing.T) {
	f := func(a, b, c, x float64) bool {
		clampIn := func(v float64) float64 { return math.Mod(v, 8) }
		p := NewPoly(clampIn(a), clampIn(b), clampIn(c))
		xx := clampIn(x)
		got := p.EvalC(complex(xx, 0))
		want := p.Eval(xx)
		return math.Abs(real(got)-want) <= 1e-9*(1+math.Abs(want)) && imag(got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
