package control

import (
	"math"
	"math/cmplx"
	"testing"
)

// FuzzRoots drives the Durand–Kerner solver with arbitrary cubic (and
// lower-degree) coefficients. Properties: no panics; when the solver
// converges it returns exactly Degree roots, all finite, and each root is a
// genuine zero of the polynomial to within a residual proportional to the
// coefficient scale; and the Jury criterion, when it renders a verdict,
// agrees with the root magnitudes away from the unit circle.
func FuzzRoots(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(1.0, 0.0, 0.0, -1.0)
	f.Add(0.0, 1.0, -1.5, 0.56)
	f.Add(2.5, -1.0, 0.0, 0.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(1e-9, 1e9, -1e9, 1.0)
	f.Fuzz(func(t *testing.T, c3, c2, c1, c0 float64) {
		for _, c := range []float64{c3, c2, c1, c0} {
			if math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e12 {
				return // out of the solver's documented domain
			}
		}
		p := NewPoly(c3, c2, c1, c0)
		deg := p.Degree()
		roots, err := Roots(p)
		if err != nil {
			return // degenerate or non-convergent input: rejecting is fine
		}
		if len(roots) != deg {
			t.Fatalf("Roots(%v) returned %d roots for degree %d", p, len(roots), deg)
		}
		scale := 0.0
		for _, c := range p {
			scale = math.Max(scale, math.Abs(c))
		}
		for _, r := range roots {
			if cmplx.IsNaN(r) || cmplx.IsInf(r) {
				t.Fatalf("Roots(%v) returned non-finite root %v", p, r)
			}
			// Residual tolerance grows with |root|^degree: evaluating a
			// polynomial far from the origin amplifies coefficient error.
			mag := math.Max(1, cmplx.Abs(r))
			tol := 1e-6 * scale * math.Pow(mag, float64(deg))
			if res := cmplx.Abs(p.EvalC(r)); res > tol {
				t.Fatalf("Roots(%v): root %v has residual %g > %g", p, r, res, tol)
			}
		}

		// Cross-check Jury against the computed spectral radius when the
		// poles are comfortably away from the unit circle (both methods are
		// legitimately undecided near |z| = 1).
		radius := 0.0
		for _, r := range roots {
			radius = math.Max(radius, cmplx.Abs(r))
		}
		if math.Abs(radius-1) < 1e-2 {
			return
		}
		stable, err := Jury(p)
		if err != nil {
			return
		}
		if want := radius < 1; stable != want {
			t.Fatalf("Jury(%v) = %v but spectral radius is %.6f", p, stable, radius)
		}
	})
}
