package control

import (
	"errors"
	"fmt"
	"math/cmplx"
)

// Gains bundles the three PID design parameters.
type Gains struct {
	KP, KI, KD float64
}

// PaperGains are the gains chosen in §II-D of the paper: (0.4, 0.4, 0.3).
var PaperGains = Gains{KP: 0.4, KI: 0.4, KD: 0.3}

// PaperPlantGain is the island power system gain a_i identified in §II-D by
// averaging fits of the difference model P(t+1) = P(t) + a·d(t) across the
// PARSEC suite: 0.79 (in percent-of-max-chip-power per normalized frequency
// step). cmd/sysid re-derives this value on the synthetic workloads.
const PaperPlantGain = 0.79

// PlantTF returns the open-loop island power model of Equation (9),
// P(z) = a/(z−1): an integrator with gain a relating frequency deltas to
// power deltas.
func PlantTF(a float64) TF {
	return TF{Num: Poly{a}, Den: NewPoly(1, -1)}
}

// ClosedLoop composes the plant with a PID controller under unity negative
// feedback, Y(z) = P·C/(1+P·C) (Equation 11).
func ClosedLoop(a float64, g Gains) TF {
	c := PID{KP: g.KP, KI: g.KI, KD: g.KD}
	return PlantTF(a).Series(c.TF()).Feedback()
}

// CharacteristicPoly returns the denominator of the closed loop in monic
// form:
//
//	z³ + (a(K_P+K_I+K_D) − 2)z² + (1 − a(K_P+2K_D))z + a·K_D
//
// This closed form is asserted against the composed transfer function by
// tests.
func CharacteristicPoly(a float64, g Gains) Poly {
	return NewPoly(
		1,
		a*(g.KP+g.KI+g.KD)-2,
		1-a*(g.KP+2*g.KD),
		a*g.KD,
	)
}

// Analysis is the full controller design report for one (plant gain, gains)
// pair, mirroring the analysis of §II-D.
type Analysis struct {
	PlantGain float64
	Gains     Gains
	Closed    TF
	CharPoly  Poly
	Poles     []complex128
	// SpectralRadius is the largest pole magnitude; stability requires < 1.
	SpectralRadius float64
	Stable         bool
	// Step holds overshoot/settling/steady-state-error measured from the
	// simulated unit-step response (only meaningful when Stable).
	Step StepMetrics
}

// Analyze designs and evaluates the closed loop for plant gain a and PID
// gains g: it computes poles, checks stability by both root magnitude and the
// Jury criterion (they must agree), and measures the step-response metrics.
func Analyze(a float64, g Gains) (Analysis, error) {
	if a <= 0 {
		return Analysis{}, errors.New("control: plant gain must be positive")
	}
	an := Analysis{PlantGain: a, Gains: g}
	an.Closed = ClosedLoop(a, g)
	an.CharPoly = CharacteristicPoly(a, g)

	poles, err := Roots(an.CharPoly)
	if err != nil {
		return Analysis{}, fmt.Errorf("control: analyzing poles: %w", err)
	}
	an.Poles = poles
	for _, p := range poles {
		if m := cmplx.Abs(p); m > an.SpectralRadius {
			an.SpectralRadius = m
		}
	}
	an.Stable = an.SpectralRadius < 1-1e-12

	jury, err := Jury(an.CharPoly)
	if err != nil {
		return Analysis{}, err
	}
	if jury != an.Stable {
		return Analysis{}, fmt.Errorf("control: Jury test (%v) disagrees with pole magnitudes (radius %.6f)",
			jury, an.SpectralRadius)
	}

	if an.Stable {
		y, err := an.Closed.StepResponse(200)
		if err != nil {
			return Analysis{}, err
		}
		an.Step = MeasureStep(y, 1, 0)
	}
	return an, nil
}

// MaxStableGainScale returns the largest g such that the closed loop remains
// stable when the plant gain drifts from a to g·a at run time, holding the
// PID gains fixed — the robustness guarantee of §II-D ("for 0 < g < 2.1 the
// system will always be stable" with the paper's parameters). The bound is
// located by bisection to within tol (pass 0 for 1e-4).
func MaxStableGainScale(a float64, g Gains, tol float64) (float64, error) {
	if tol <= 0 {
		tol = 1e-4
	}
	base, err := Analyze(a, g)
	if err != nil {
		return 0, err
	}
	if !base.Stable {
		return 0, errors.New("control: nominal design is unstable")
	}

	stableAt := func(scale float64) (bool, error) {
		return IsStablePoly(CharacteristicPoly(scale*a, g))
	}

	// Find an unstable upper bracket by doubling.
	hi := 2.0
	for {
		ok, err := stableAt(hi)
		if err != nil {
			return 0, err
		}
		if !ok {
			break
		}
		hi *= 2
		if hi > 1e6 {
			return 0, errors.New("control: no instability found below gain scale 1e6")
		}
	}
	lo := hi / 2
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, err := stableAt(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// DesignSpec expresses the closed-loop requirements used to select gains.
type DesignSpec struct {
	// MaxOvershoot is the largest acceptable step overshoot (fraction).
	MaxOvershoot float64
	// MaxSettling is the largest acceptable settling time in controller
	// invocations.
	MaxSettling int
	// MaxSteadyStateError is the largest acceptable steady-state error
	// (fraction). Any design with K_I > 0 drives this to ~0.
	MaxSteadyStateError float64
	// MinGainMargin, if > 1, additionally requires MaxStableGainScale to be
	// at least this large, guarding against run-time plant-gain drift.
	MinGainMargin float64
}

// PaperSpec is the design envelope satisfied by the paper's gains, expressed
// in unit-step terms. Note the unit difference from the paper's reported
// run-time numbers: the paper's "overshoot within 2–4% and settling in 5–6
// invocations" are measured relative to the island's absolute power target,
// while a GPM budget adjustment is a small step on top of a large operating
// point. A 40% overshoot of a 2%-of-target step is a 0.8%-of-target
// excursion — comfortably inside the paper's envelope. The scenario-level
// test TestOperatingPointStepMatchesPaperEnvelope makes this mapping precise.
var PaperSpec = DesignSpec{
	MaxOvershoot:        0.45,
	MaxSettling:         25,
	MaxSteadyStateError: 0.01,
	MinGainMargin:       2.0,
}

// DesignGains searches a coarse-to-fine grid of PID gains for a design
// meeting spec with plant gain a, preferring (in order) faster settling,
// lower overshoot, then larger gain margin. It returns an error if no point
// on the grid satisfies the specification.
func DesignGains(a float64, spec DesignSpec) (Gains, Analysis, error) {
	if a <= 0 {
		return Gains{}, Analysis{}, errors.New("control: plant gain must be positive")
	}
	var (
		best      Gains
		bestAn    Analysis
		bestScore = [3]float64{1e18, 1e18, 1e18}
		found     bool
	)
	grid := func(lo, hi, step float64) []float64 {
		var vs []float64
		for v := lo; v <= hi+1e-12; v += step {
			vs = append(vs, v)
		}
		return vs
	}
	// K_I starts at 0.1: with K_I = 0 the controller's (z-1) factor exactly
	// cancels the plant integrator, leaving an unobservable marginal mode
	// that Analyze (correctly) rejects rather than cancelling symbolically.
	for _, kp := range grid(0.1, 1.0, 0.1) {
		for _, ki := range grid(0.1, 1.0, 0.1) {
			for _, kd := range grid(0.0, 0.6, 0.1) {
				g := Gains{KP: kp, KI: ki, KD: kd}
				an, err := Analyze(a, g)
				if err != nil || !an.Stable {
					continue
				}
				if an.Step.MaxOvershoot > spec.MaxOvershoot ||
					an.Step.SettlingTime < 0 ||
					(spec.MaxSettling > 0 && an.Step.SettlingTime > spec.MaxSettling) ||
					an.Step.SteadyStateError > spec.MaxSteadyStateError {
					continue
				}
				margin := 0.0
				if spec.MinGainMargin > 1 {
					m, err := MaxStableGainScale(a, g, 1e-3)
					if err != nil || m < spec.MinGainMargin {
						continue
					}
					margin = m
				}
				score := [3]float64{float64(an.Step.SettlingTime), an.Step.MaxOvershoot, -margin}
				if !found || less3(score, bestScore) {
					found = true
					best, bestAn, bestScore = g, an, score
				}
			}
		}
	}
	if !found {
		return Gains{}, Analysis{}, errors.New("control: no gains on the search grid satisfy the specification")
	}
	return best, bestAn, nil
}

func less3(a, b [3]float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
