package control

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJuryKnownStable(t *testing.T) {
	cases := []struct {
		p      Poly
		stable bool
	}{
		{NewPoly(1, -0.5), true},           // root 0.5
		{NewPoly(1, -1.5), false},          // root 1.5
		{NewPoly(1, 0, 0.25), true},        // roots ±0.5i
		{NewPoly(1, 0, 4), false},          // roots ±2i
		{NewPoly(1, -1.2, 0.35), true},     // roots 0.5, 0.7
		{NewPoly(1, -2.5, 1.0), false},     // roots 0.5, 2.0
		{NewPoly(1, -1, 0.5), true},        // roots 0.5±0.5i (|·|≈0.707)
		{NewPoly(1, -1.0, 0.0, 0.0), true}, // roots 1? No: z³-z² -> roots 0,0,1 (marginal)
	}
	for i, c := range cases {
		got, err := Jury(c.p)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		// Case with a root exactly on the circle must be reported unstable.
		want := c.stable
		if i == len(cases)-1 {
			want = false
		}
		if got != want {
			t.Errorf("case %d (%v): Jury = %v, want %v", i, c.p, got, want)
		}
	}
}

func TestJuryDegreeZeroRejected(t *testing.T) {
	if _, err := Jury(NewPoly(5)); err == nil {
		t.Error("expected error for constant polynomial")
	}
}

// Property: Jury agrees with explicit root magnitudes on random cubics and
// quartics built from known roots.
func TestJuryMatchesRootsProperty(t *testing.T) {
	f := func(r1, r2, r3, r4 float64) bool {
		in := func(v float64) float64 { return math.Mod(v, 1.8) }
		roots := []float64{in(r1), in(r2), in(r3), in(r4)}
		// Skip near-coincident roots, where root-finding accuracy (not the
		// stability logic) becomes the limiting factor.
		for i := range roots {
			for j := i + 1; j < len(roots); j++ {
				if math.Abs(roots[i]-roots[j]) < 0.02 {
					return true
				}
			}
		}
		stable := true
		p := Poly{1}
		for _, r := range roots {
			// Skip draws too close to the unit circle where float error in
			// the expanded coefficients can flip the verdict.
			if math.Abs(math.Abs(r)-1) < 0.02 {
				return true
			}
			if math.Abs(r) >= 1 {
				stable = false
			}
			p = p.Mul(NewPoly(1, -r))
		}
		got, err := Jury(p)
		if err != nil {
			return false
		}
		byRoots, err := IsStablePoly(p)
		if err != nil {
			return false
		}
		return got == stable && byRoots == stable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Jury agrees with root magnitudes on complex-conjugate pairs too.
func TestJuryComplexPairsProperty(t *testing.T) {
	f := func(rr, ri, s float64) bool {
		re := math.Mod(rr, 1.5)
		im := math.Mod(ri, 1.5)
		real3 := math.Mod(s, 1.5)
		mag := math.Hypot(re, im)
		if math.Abs(mag-1) < 0.02 || math.Abs(math.Abs(real3)-1) < 0.02 {
			return true
		}
		stable := mag < 1 && math.Abs(real3) < 1
		// (z² - 2re·z + re²+im²)(z - real3)
		p := NewPoly(1, -2*re, re*re+im*im).Mul(NewPoly(1, -real3))
		got, err := Jury(p)
		if err != nil {
			return false
		}
		return got == stable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeasureStepIdealResponses(t *testing.T) {
	// Perfect step: settles immediately, no overshoot, no error.
	y := make([]float64, 50)
	for i := range y {
		y[i] = 1
	}
	m := MeasureStep(y, 1, 0)
	if m.MaxOvershoot != 0 || m.SettlingTime != 0 || m.SteadyStateError > 1e-12 {
		t.Errorf("ideal step metrics = %+v", m)
	}
}

func TestMeasureStepOvershootAndSettling(t *testing.T) {
	// Damped oscillation toward 1 with a 20% first peak.
	y := make([]float64, 100)
	for k := range y {
		y[k] = 1 + 0.2*math.Pow(0.7, float64(k))*math.Cos(float64(k))
	}
	m := MeasureStep(y, 1, 0)
	if m.MaxOvershoot < 0.15 || m.MaxOvershoot > 0.25 {
		t.Errorf("MaxOvershoot = %v, want ≈0.2", m.MaxOvershoot)
	}
	if m.SettlingTime <= 0 || m.SettlingTime > 30 {
		t.Errorf("SettlingTime = %v, want small positive", m.SettlingTime)
	}
	if m.SteadyStateError > 0.01 {
		t.Errorf("SteadyStateError = %v, want ≈0", m.SteadyStateError)
	}
}

func TestMeasureStepNeverSettles(t *testing.T) {
	// Sustained oscillation far outside any settling band.
	y := make([]float64, 60)
	for k := range y {
		y[k] = 1 + 0.5*math.Cos(float64(k))
	}
	m := MeasureStep(y, 1, 0)
	if m.SettlingTime != -1 && m.SettlingTime < len(y)-5 {
		// The last sample may coincidentally be near the mean; only a
		// genuine settled suffix counts.
		t.Errorf("SettlingTime = %v for non-settling response", m.SettlingTime)
	}
}

func TestMeasureStepEmptyAndZeroRef(t *testing.T) {
	if m := MeasureStep(nil, 1, 0); m.SettlingTime != -1 {
		t.Error("empty response should not settle")
	}
	if m := MeasureStep([]float64{1, 2}, 0, 0); m.SettlingTime != -1 {
		t.Error("zero reference should not settle")
	}
}
