package control

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

// The paper's §II-D design: a = 0.79, (K_P, K_I, K_D) = (0.4, 0.4, 0.3) must
// be stable with all closed-loop poles inside the unit circle.
func TestPaperDesignIsStable(t *testing.T) {
	an, err := Analyze(PaperPlantGain, PaperGains)
	if err != nil {
		t.Fatal(err)
	}
	if !an.Stable {
		t.Fatalf("paper design unstable: poles %v", an.Poles)
	}
	if len(an.Poles) != 3 {
		t.Fatalf("expected 3 closed-loop poles, got %d", len(an.Poles))
	}
	for _, p := range an.Poles {
		if cmplx.Abs(p) >= 1 {
			t.Errorf("pole %v outside unit circle", p)
		}
	}
	t.Logf("closed-loop poles: %v (spectral radius %.4f)", an.Poles, an.SpectralRadius)
	t.Logf("transfer function: %v", an.Closed)
	t.Logf("step metrics: %+v", an.Step)
}

// The closed-loop numerator's leading coefficient must be a(K_P+K_I+K_D) =
// 0.79·1.1 = 0.869, matching Equation (12)'s leading factor.
func TestPaperTransferFunctionLeadingGain(t *testing.T) {
	cl := ClosedLoop(PaperPlantGain, PaperGains)
	lead := cl.Num[cl.Num.Degree()]
	if math.Abs(lead-0.869) > 1e-9 {
		t.Errorf("leading numerator coefficient = %v, want 0.869", lead)
	}
}

// Linear unit-step metrics of the nominal design must satisfy PaperSpec (see
// the unit-difference note on PaperSpec: these are fractions of the step, not
// of the operating point).
func TestPaperDesignStepMetrics(t *testing.T) {
	an, err := Analyze(PaperPlantGain, PaperGains)
	if err != nil {
		t.Fatal(err)
	}
	if an.Step.SettlingTime < 0 || an.Step.SettlingTime > PaperSpec.MaxSettling {
		t.Errorf("settling time = %d invocations, want <= %d", an.Step.SettlingTime, PaperSpec.MaxSettling)
	}
	if an.Step.MaxOvershoot > PaperSpec.MaxOvershoot {
		t.Errorf("overshoot = %.3f, want <= %.2f", an.Step.MaxOvershoot, PaperSpec.MaxOvershoot)
	}
	if an.Step.SteadyStateError > PaperSpec.MaxSteadyStateError {
		t.Errorf("steady-state error = %.4f, want ≈0 (integral action)", an.Step.SteadyStateError)
	}
}

// The paper's run-time claims — overshoot "mostly within 2%" of the island
// target and settling "within 5–6 invocations of the PIC" (§IV, Fig 9) — are
// measured at an operating point: the island already consumes ≈15% of chip
// power and the GPM nudges the budget by a couple of percentage points. This
// test reproduces exactly that scenario on the identified linear model and
// checks the paper's envelope, with the settling band expressed as a
// fraction of the *target* as in the paper.
func TestOperatingPointStepMatchesPaperEnvelope(t *testing.T) {
	const (
		a       = PaperPlantGain
		from    = 15.0 // % of max chip power
		to      = 17.0
		horizon = 40
	)
	pid := NewPID(PaperGains.KP, PaperGains.KI, PaperGains.KD)
	power := from
	// Warm the loop at the initial target so the integrator holds steady.
	for k := 0; k < 50; k++ {
		power += a * pid.Update(from-power)
	}
	y := make([]float64, horizon)
	for k := 0; k < horizon; k++ {
		y[k] = power
		power += a * pid.Update(to-power)
	}
	m := MeasureStep(y, to, 0.02) // 2% of target band, as in Fig 9
	// The pure linear loop lands at ~4.7% of target for this 2-point step;
	// the remaining gap to the paper's "mostly within 2%" is closed by the
	// DVFS actuator quantization (the commanded frequency excursion is
	// snapped to the 8-entry V/f table), which the pic package tests cover.
	if m.MaxOvershoot > 0.05 {
		t.Errorf("overshoot = %.4f of target, want <= 0.05", m.MaxOvershoot)
	}
	if m.SettlingTime < 0 || m.SettlingTime > 8 {
		t.Errorf("settling time = %d invocations, paper reports 5-6", m.SettlingTime)
	}
	if m.SteadyStateError > 0.005 {
		t.Errorf("steady-state error = %.4f of target, want ≈0", m.SteadyStateError)
	}
	t.Logf("operating-point step metrics: %+v", m)
}

// CharacteristicPoly's closed form must equal the denominator of the
// composed closed-loop transfer function (up to normalization).
func TestCharacteristicPolyMatchesComposition(t *testing.T) {
	f := func(aRaw, kpRaw, kiRaw, kdRaw float64) bool {
		a := 0.1 + math.Abs(math.Mod(aRaw, 2))
		g := Gains{
			KP: math.Abs(math.Mod(kpRaw, 1)),
			KI: math.Abs(math.Mod(kiRaw, 1)),
			KD: math.Abs(math.Mod(kdRaw, 1)),
		}
		cl := ClosedLoop(a, g)
		return polyEq(cl.Den.Monic(), CharacteristicPoly(a, g), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// §II-D: with the paper's gains, the system remains stable for gain scalings
// 0 < g < ~2.1. Our bisection must land close to that bound, and the system
// must indeed be unstable just above it.
func TestMaxStableGainScaleMatchesPaper(t *testing.T) {
	gmax, err := MaxStableGainScale(PaperPlantGain, PaperGains, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	if gmax < 1.8 || gmax > 2.5 {
		t.Errorf("max stable gain scale = %.4f, paper reports ≈2.1", gmax)
	}
	t.Logf("max stable gain scale g = %.4f (paper: ≈2.1)", gmax)

	below, err := IsStablePoly(CharacteristicPoly(0.95*gmax*PaperPlantGain, PaperGains))
	if err != nil {
		t.Fatal(err)
	}
	above, err := IsStablePoly(CharacteristicPoly(1.05*gmax*PaperPlantGain, PaperGains))
	if err != nil {
		t.Fatal(err)
	}
	if !below || above {
		t.Errorf("bracket check failed: stable below=%v, stable above=%v", below, above)
	}
}

// Property: every gain scale within the certified range is stable.
func TestStabilityThroughoutCertifiedRangeProperty(t *testing.T) {
	gmax, err := MaxStableGainScale(PaperPlantGain, PaperGains, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw float64) bool {
		g := math.Abs(math.Mod(raw, gmax-0.01))
		if g < 0.01 {
			g = 0.01
		}
		ok, err := IsStablePoly(CharacteristicPoly(g*PaperPlantGain, PaperGains))
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeRejectsNonPositiveGain(t *testing.T) {
	if _, err := Analyze(0, PaperGains); err == nil {
		t.Error("expected error for zero plant gain")
	}
	if _, err := Analyze(-1, PaperGains); err == nil {
		t.Error("expected error for negative plant gain")
	}
}

func TestDesignGainsMeetsSpec(t *testing.T) {
	// Step-fraction spec (see PaperSpec note): an integrator plant under
	// integral control cannot do much better than ~18% step overshoot, so
	// specs are expressed as fractions of the step.
	spec := DesignSpec{
		MaxOvershoot:        0.25,
		MaxSettling:         15,
		MaxSteadyStateError: 0.01,
		MinGainMargin:       1.5,
	}
	g, an, err := DesignGains(PaperPlantGain, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !an.Stable {
		t.Fatal("designed gains unstable")
	}
	if an.Step.MaxOvershoot > spec.MaxOvershoot {
		t.Errorf("overshoot %.3f exceeds spec %.3f", an.Step.MaxOvershoot, spec.MaxOvershoot)
	}
	if an.Step.SettlingTime > spec.MaxSettling {
		t.Errorf("settling %d exceeds spec %d", an.Step.SettlingTime, spec.MaxSettling)
	}
	t.Logf("designed gains: %+v, metrics %+v", g, an.Step)
}

func TestDesignGainsImpossibleSpec(t *testing.T) {
	spec := DesignSpec{MaxOvershoot: 0, MaxSettling: 1, MaxSteadyStateError: 0}
	if _, _, err := DesignGains(PaperPlantGain, spec); err == nil {
		t.Error("expected failure for unachievable specification")
	}
}

func TestMaxStableGainScaleRejectsUnstableNominal(t *testing.T) {
	// Huge gains destabilize the nominal loop.
	bad := Gains{KP: 10, KI: 10, KD: 10}
	if _, err := MaxStableGainScale(PaperPlantGain, bad, 0); err == nil {
		t.Error("expected error for unstable nominal design")
	}
}
