package control

import (
	"errors"
	"math"
	"math/cmplx"
)

// This file completes the classical analysis toolkit §II-D name-drops
// alongside pole placement: root-locus traces and frequency responses
// (Bode data), plus discrete-time stability margins derived from them.

// LocusPoint is one root-locus sample: the closed-loop pole set at a given
// loop-gain scale.
type LocusPoint struct {
	// Scale is the gain multiplier g applied to the plant gain.
	Scale float64
	// Poles are the closed-loop poles at that scale.
	Poles []complex128
	// Stable reports whether all poles are inside the unit circle.
	Stable bool
}

// RootLocus traces the closed-loop poles of the CPM loop as the plant gain
// drifts from lo·a to hi·a in n steps — the discrete-time root locus the
// paper's g-range analysis (Equation 13) walks along. Points where root
// finding fails are skipped.
func RootLocus(a float64, g Gains, lo, hi float64, n int) ([]LocusPoint, error) {
	if a <= 0 {
		return nil, errors.New("control: plant gain must be positive")
	}
	if n < 2 || hi <= lo || lo <= 0 {
		return nil, errors.New("control: bad root-locus range")
	}
	out := make([]LocusPoint, 0, n)
	for i := 0; i < n; i++ {
		scale := lo + (hi-lo)*float64(i)/float64(n-1)
		poles, err := Roots(CharacteristicPoly(scale*a, g))
		if err != nil {
			continue
		}
		pt := LocusPoint{Scale: scale, Poles: poles, Stable: true}
		for _, p := range poles {
			if cmplx.Abs(p) >= 1-1e-12 {
				pt.Stable = false
				break
			}
		}
		out = append(out, pt)
	}
	if len(out) == 0 {
		return nil, ErrNoConvergence
	}
	return out, nil
}

// FreqPoint is one frequency-response sample of a discrete-time transfer
// function evaluated on the unit circle.
type FreqPoint struct {
	// Omega is the normalized angular frequency in (0, π].
	Omega float64
	// MagDB is the magnitude in decibels.
	MagDB float64
	// PhaseDeg is the phase in degrees, unwrapped within the sweep.
	PhaseDeg float64
}

// FrequencyResponse evaluates t at n logarithmically spaced frequencies
// between loOmega and π (Bode data for a sampled system). loOmega must be
// positive and below π.
func FrequencyResponse(t TF, loOmega float64, n int) ([]FreqPoint, error) {
	if loOmega <= 0 || loOmega >= math.Pi {
		return nil, errors.New("control: low frequency out of (0, π)")
	}
	if n < 2 {
		return nil, errors.New("control: need at least two frequency points")
	}
	out := make([]FreqPoint, n)
	logLo, logHi := math.Log(loOmega), math.Log(math.Pi)
	prevPhase := math.NaN()
	wrap := 0.0
	for i := 0; i < n; i++ {
		w := math.Exp(logLo + (logHi-logLo)*float64(i)/float64(n-1))
		z := cmplx.Rect(1, w)
		den := t.Den.EvalC(z)
		if den == 0 {
			return nil, errors.New("control: pole on the unit circle in sweep")
		}
		h := t.Num.EvalC(z) / den
		mag := cmplx.Abs(h)
		phase := cmplx.Phase(h) * 180 / math.Pi
		// Unwrap: keep successive phases within 180° of each other.
		if !math.IsNaN(prevPhase) {
			for phase+wrap-prevPhase > 180 {
				wrap -= 360
			}
			for phase+wrap-prevPhase < -180 {
				wrap += 360
			}
		}
		phase += wrap
		prevPhase = phase
		out[i] = FreqPoint{Omega: w, MagDB: 20 * math.Log10(mag), PhaseDeg: phase}
	}
	return out, nil
}

// Margins are the classical stability margins of an open-loop transfer
// function under unity negative feedback.
type Margins struct {
	// GainMarginDB is the gain margin in dB (how much extra loop gain the
	// system tolerates); +Inf when the phase never crosses −180°.
	GainMarginDB float64
	// PhaseCrossOmega is the frequency of the −180° crossing.
	PhaseCrossOmega float64
	// PhaseMarginDeg is the phase margin in degrees; +Inf when the
	// magnitude never crosses 0 dB.
	PhaseMarginDeg float64
	// GainCrossOmega is the frequency of the 0 dB crossing.
	GainCrossOmega float64
}

// LoopMargins computes gain and phase margins of the CPM open loop
// L(z) = P(z)·C(z) by sweeping the unit circle. The gain margin should
// agree with the g-range found by MaxStableGainScale — a cross-check tests
// exploit.
func LoopMargins(a float64, g Gains) (Margins, error) {
	pid := PID{KP: g.KP, KI: g.KI, KD: g.KD}
	open := PlantTF(a).Series(pid.TF())
	resp, err := FrequencyResponse(open, 1e-3, 2000)
	if err != nil {
		return Margins{}, err
	}
	m := Margins{GainMarginDB: math.Inf(1), PhaseMarginDeg: math.Inf(1)}
	for i := 1; i < len(resp); i++ {
		a0, a1 := resp[i-1], resp[i]
		// Phase crossing of -180° (modulo the unwrap, search for crossing
		// through any odd multiple of 180°).
		if crossed(a0.PhaseDeg, a1.PhaseDeg, -180) && math.IsInf(m.GainMarginDB, 1) {
			t := (-180 - a0.PhaseDeg) / (a1.PhaseDeg - a0.PhaseDeg)
			magAt := a0.MagDB + t*(a1.MagDB-a0.MagDB)
			m.GainMarginDB = -magAt
			m.PhaseCrossOmega = a0.Omega + t*(a1.Omega-a0.Omega)
		}
		// Gain crossing of 0 dB.
		if crossed(a0.MagDB, a1.MagDB, 0) && math.IsInf(m.PhaseMarginDeg, 1) {
			t := (0 - a0.MagDB) / (a1.MagDB - a0.MagDB)
			phaseAt := a0.PhaseDeg + t*(a1.PhaseDeg-a0.PhaseDeg)
			m.PhaseMarginDeg = 180 + phaseAt
			m.GainCrossOmega = a0.Omega + t*(a1.Omega-a0.Omega)
		}
	}
	return m, nil
}

func crossed(v0, v1, level float64) bool {
	return (v0-level)*(v1-level) <= 0 && v0 != v1
}
