package control

import (
	"errors"
	"math"
)

// IsStablePoly reports whether every root of the characteristic polynomial p
// lies strictly inside the unit circle, using root magnitudes. Marginal
// systems (a root exactly on the circle) are reported as unstable.
func IsStablePoly(p Poly) (bool, error) {
	r, err := SpectralRadius(p)
	if err != nil {
		return false, err
	}
	return r < 1-1e-12, nil
}

// Jury applies the Jury stability criterion to the characteristic polynomial
// p (the discrete-time analogue of Routh–Hurwitz): it reports whether all
// roots lie strictly inside the unit circle without computing them.
//
// The criterion requires a polynomial of degree >= 1; equality in any Jury
// condition (a marginally stable system) is reported as unstable, matching
// IsStablePoly. Jury and IsStablePoly are cross-checked against each other by
// a property-based test.
func Jury(p Poly) (bool, error) {
	p = p.trim()
	n := p.Degree()
	if n < 1 {
		return false, errors.New("control: Jury test requires degree >= 1")
	}
	// Normalize sign so the leading coefficient is positive.
	c := p.Clone()
	if c[n] < 0 {
		c = c.Scale(-1)
	}

	// Condition 1: D(1) > 0.
	if c.Eval(1) <= 0 {
		return false, nil
	}
	// Condition 2: (-1)^n D(-1) > 0.
	v := c.Eval(-1)
	if n%2 == 1 {
		v = -v
	}
	if v <= 0 {
		return false, nil
	}
	// Condition 3: |a_0| < a_n.
	if math.Abs(c[0]) >= c[n] {
		return false, nil
	}
	// First-order polynomials are fully decided by the above.
	if n == 1 {
		return true, nil
	}

	// Jury table reduction: from row (r_0 ... r_m) derive
	// s_k = r_0*r_k - r_m*r_{m-k}, requiring |s_0| > |s_{m-1}| at each stage,
	// until three coefficients remain.
	row := append([]float64(nil), c...)
	for len(row) > 3 {
		m := len(row) - 1
		next := make([]float64, m)
		for k := 0; k < m; k++ {
			next[k] = row[0]*row[k] - row[m]*row[m-k]
		}
		if math.Abs(next[0]) <= math.Abs(next[m-1]) {
			return false, nil
		}
		row = next
	}
	return true, nil
}

// StepMetrics are the three robustness metrics of §II-A of the paper,
// measured from a closed-loop unit-step response.
type StepMetrics struct {
	// MaxOvershoot is the peak output minus the reference, as a fraction of
	// the reference (0.04 = 4% overshoot). Zero when the response never
	// exceeds the reference.
	MaxOvershoot float64
	// SettlingTime is the number of controller invocations after which the
	// output stays within the settling band of its final value. It is -1 if
	// the response never settles within the simulated horizon.
	SettlingTime int
	// SteadyStateError is the absolute difference between the reference and
	// the final settled output, as a fraction of the reference.
	SteadyStateError float64
}

// DefaultSettlingBand is the ±band (fraction of the reference) used to judge
// settling; 2% is the conventional choice.
const DefaultSettlingBand = 0.02

// MeasureStep computes StepMetrics from a recorded step response y toward
// reference ref, with the given settling band (fraction of ref; pass 0 for
// DefaultSettlingBand).
func MeasureStep(y []float64, ref, band float64) StepMetrics {
	if band <= 0 {
		band = DefaultSettlingBand
	}
	m := StepMetrics{SettlingTime: -1}
	if len(y) == 0 || ref == 0 {
		return m
	}
	peak := math.Inf(-1)
	for _, v := range y {
		if v > peak {
			peak = v
		}
	}
	if over := (peak - ref) / math.Abs(ref); over > 0 {
		m.MaxOvershoot = over
	}

	// Final value: mean of the last 10% of samples (at least one).
	tail := len(y) / 10
	if tail < 1 {
		tail = 1
	}
	final := 0.0
	for _, v := range y[len(y)-tail:] {
		final += v
	}
	final /= float64(tail)
	m.SteadyStateError = math.Abs(ref-final) / math.Abs(ref)

	// Settling time: first index from which the response stays within
	// band·|ref| of the final value.
	lim := band * math.Abs(ref)
	settle := -1
	for k := len(y) - 1; k >= 0; k-- {
		if math.Abs(y[k]-final) > lim {
			break
		}
		settle = k
	}
	m.SettlingTime = settle
	return m
}
