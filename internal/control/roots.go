package control

import (
	"errors"
	"math"
	"math/cmplx"
	"sort"
)

// ErrNoConvergence is returned by Roots when the Durand–Kerner iteration
// fails to converge, which for well-scaled control polynomials indicates a
// malformed input (e.g. wildly separated coefficient magnitudes).
var ErrNoConvergence = errors.New("control: root finding did not converge")

// Roots returns all complex roots of p using the Durand–Kerner
// (Weierstrass) simultaneous iteration. Roots are sorted by descending
// magnitude, then by descending real part, so output order is deterministic.
//
// The method converges for any polynomial with simple roots and, in practice,
// for the mildly clustered roots that arise in low-order controller design;
// accuracy is on the order of 1e-10 for the degree ≤ 6 polynomials this
// package manipulates.
func Roots(p Poly) ([]complex128, error) {
	p = p.trim()
	n := p.Degree()
	switch {
	case n < 0:
		return nil, errors.New("control: roots of zero polynomial")
	case n == 0:
		return []complex128{}, nil
	case n == 1:
		// c0 + c1 z = 0
		return []complex128{complex(-p[0]/p[1], 0)}, nil
	case n == 2:
		return quadraticRoots(p), nil
	}

	m := p.Monic()
	// Initial guesses: points on a circle of radius r (Cauchy bound estimate)
	// with an irrational angular offset to avoid symmetry traps.
	r := rootRadius(m)
	roots := make([]complex128, n)
	for i := range roots {
		theta := 2*math.Pi*float64(i)/float64(n) + 0.4
		roots[i] = cmplx.Rect(r, theta)
	}

	const (
		maxIter = 500
		tol     = 1e-12
	)
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for i := range roots {
			num := m.EvalC(roots[i])
			den := complex(1, 0)
			for j := range roots {
				if j != i {
					den *= roots[i] - roots[j]
				}
			}
			if den == 0 {
				// Perturb coincident estimates and keep iterating.
				roots[i] += complex(1e-6, 1e-6)
				maxDelta = math.Inf(1)
				continue
			}
			delta := num / den
			roots[i] -= delta
			if d := cmplx.Abs(delta); d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta < tol {
			cleanRoots(roots)
			sortRoots(roots)
			return roots, nil
		}
	}
	// Near-multiple roots converge only linearly and stall above the delta
	// tolerance; accept the estimates if their residuals are already tiny
	// relative to the coefficient scale.
	maxResid := 0.0
	for _, z := range roots {
		if r := cmplx.Abs(m.EvalC(z)); r > maxResid {
			maxResid = r
		}
	}
	if maxResid < 1e-7*math.Pow(r, float64(n)) {
		cleanRoots(roots)
		sortRoots(roots)
		return roots, nil
	}
	return nil, ErrNoConvergence
}

func quadraticRoots(p Poly) []complex128 {
	a, b, c := p[2], p[1], p[0]
	disc := complex(b*b-4*a*c, 0)
	sq := cmplx.Sqrt(disc)
	r := []complex128{(-complex(b, 0) + sq) / complex(2*a, 0), (-complex(b, 0) - sq) / complex(2*a, 0)}
	cleanRoots(r)
	sortRoots(r)
	return r
}

// rootRadius returns the Cauchy upper bound 1 + max|c_i| on the magnitude of
// any root of the monic polynomial m.
func rootRadius(m Poly) float64 {
	maxC := 0.0
	for _, c := range m[:len(m)-1] {
		if a := math.Abs(c); a > maxC {
			maxC = a
		}
	}
	return 1 + maxC
}

// cleanRoots zeroes out negligible imaginary parts left by the iteration on
// real roots.
func cleanRoots(roots []complex128) {
	for i, z := range roots {
		if math.Abs(imag(z)) < 1e-9*(1+math.Abs(real(z))) {
			roots[i] = complex(real(z), 0)
		}
	}
}

func sortRoots(roots []complex128) {
	sort.Slice(roots, func(i, j int) bool {
		mi, mj := cmplx.Abs(roots[i]), cmplx.Abs(roots[j])
		if mi != mj {
			return mi > mj
		}
		if real(roots[i]) != real(roots[j]) {
			return real(roots[i]) > real(roots[j])
		}
		return imag(roots[i]) > imag(roots[j])
	})
}

// SpectralRadius returns the largest root magnitude of p, i.e. the spectral
// radius of its companion matrix. For a closed-loop characteristic polynomial
// this is the quantity that must be < 1 for stability.
func SpectralRadius(p Poly) (float64, error) {
	roots, err := Roots(p)
	if err != nil {
		return 0, err
	}
	r := 0.0
	for _, z := range roots {
		if a := cmplx.Abs(z); a > r {
			r = a
		}
	}
	return r, nil
}
