package control

import "math"

// PID is a discrete Proportional-Integral-Derivative controller implementing
// Equation (7) of the paper:
//
//	u(t) = K_P·e(t) + K_I·Σ e(u) + K_D·(e(t) - e(t-1))
//
// with output clamping and conditional-integration anti-windup: when the
// actuator saturates (the DVFS knob is already at its highest or lowest
// voltage/frequency pair), the integral term stops accumulating in the
// direction of saturation, preventing the long budget-chasing transients that
// a wound-up integrator would cause once headroom returns.
//
// PID is not safe for concurrent use; each island owns its own instance.
type PID struct {
	KP, KI, KD float64

	// OutMin and OutMax clamp the controller output when OutMax > OutMin;
	// otherwise the output is unbounded.
	OutMin, OutMax float64

	// IntMin and IntMax clamp the raw integral accumulator when
	// IntMax > IntMin, bounding worst-case windup independently of the
	// output clamp.
	IntMin, IntMax float64

	// Frozen, while true, stops the integral accumulator from changing.
	// Callers whose actuator saturates *downstream* of the controller (the
	// PIC's quantized frequency target) set this for conditional-
	// integration anti-windup; the proportional and derivative terms keep
	// operating.
	Frozen bool

	integral float64
	prevErr  float64
}

// NewPID returns a controller with the given gains and no clamping.
func NewPID(kp, ki, kd float64) *PID {
	return &PID{KP: kp, KI: ki, KD: kd}
}

// Reset clears the controller state (integral accumulator and derivative
// history), as done when a new power budget epoch begins.
func (c *PID) Reset() {
	c.integral = 0
	c.prevErr = 0
}

// Integral exposes the current integral accumulator, for tests and
// telemetry.
func (c *PID) Integral() float64 { return c.integral }

// Update advances the controller by one invocation with the measured error
// e = reference − measurement and returns the control output. The error
// history starts at zero, matching the linear model in which e(-1) = 0, so a
// fresh controller's first derivative term is K_D·e(0).
func (c *PID) Update(e float64) float64 {
	deriv := e - c.prevErr

	// Tentatively integrate, then apply anti-windup below.
	newIntegral := c.integral + e
	if c.Frozen {
		newIntegral = c.integral
	}
	if c.IntMax > c.IntMin {
		newIntegral = clamp(newIntegral, c.IntMin, c.IntMax)
	}

	u := c.KP*e + c.KI*newIntegral + c.KD*deriv

	if c.OutMax > c.OutMin {
		clamped := clamp(u, c.OutMin, c.OutMax)
		if clamped != u {
			// Saturated: only accept the new integral if it drives the
			// output back toward the admissible range.
			saturatedHigh := u > c.OutMax
			if (saturatedHigh && e > 0) || (!saturatedHigh && e < 0) {
				newIntegral = c.integral
				u = c.KP*e + c.KI*newIntegral + c.KD*deriv
				u = clamp(u, c.OutMin, c.OutMax)
			} else {
				u = clamped
			}
		}
	}

	c.integral = newIntegral
	c.prevErr = e
	return u
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}

// TF returns the z-domain transfer function of the controller,
//
//	C(z) = K_P + K_I·z/(z−1) + K_D·(z−1)/z
//	     = ((K_P+K_I+K_D)z² − (K_P+2K_D)z + K_D) / (z(z−1))
//
// which is Equation (10) of the paper. Clamping is a nonlinearity and is not
// represented in the linear model.
func (c *PID) TF() TF {
	num := NewPoly(c.KP+c.KI+c.KD, -(c.KP + 2*c.KD), c.KD)
	den := NewPoly(1, -1, 0) // z(z-1) = z² - z
	return TF{Num: num, Den: den}
}
