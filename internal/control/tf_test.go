package control

import (
	"math"
	"testing"
)

func TestTFSeriesAndFeedbackAlgebra(t *testing.T) {
	// P = a/(z-1), C = k. Open loop L = ak/(z-1).
	// Closed loop L/(1+L) = ak/(z-1+ak).
	a, k := 0.79, 0.5
	closed := PlantTF(a).Series(Gain(k)).Feedback()
	wantNum := NewPoly(a * k)
	wantDen := NewPoly(1, a*k-1)
	if closed.Num.Sub(wantNum).Degree() >= 0 || closed.Den.Sub(wantDen).Degree() >= 0 {
		t.Errorf("closed loop = %v, want (%v)/(%v)", closed, wantNum, wantDen)
	}
}

func TestTFDCGain(t *testing.T) {
	// First-order lag H = 0.2/(z-0.8): DC gain 0.2/(1-0.8) = 1.
	h, err := NewTF([]float64{0.2}, []float64{1, -0.8})
	if err != nil {
		t.Fatal(err)
	}
	g, err := h.DCGain()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-1) > 1e-12 {
		t.Errorf("DC gain = %v, want 1", g)
	}
	// Integrator has unbounded DC gain.
	if _, err := PlantTF(1).DCGain(); err == nil {
		t.Error("expected error for integrator DC gain")
	}
}

func TestTFSimulateFirstOrderLag(t *testing.T) {
	// H = (1-p)/(z-p): step response y[k] = 1 - p^k (y[0] = 0, one sample
	// of transport delay since H is strictly proper).
	p := 0.6
	h, err := NewTF([]float64{1 - p}, []float64{1, -p})
	if err != nil {
		t.Fatal(err)
	}
	y, err := h.StepResponse(30)
	if err != nil {
		t.Fatal(err)
	}
	for k := range y {
		want := 0.0
		if k >= 1 {
			want = 1 - math.Pow(p, float64(k))
		}
		if math.Abs(y[k]-want) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %v", k, y[k], want)
		}
	}
}

func TestTFSimulateIntegrator(t *testing.T) {
	// H = 1/(z-1): step response is a ramp 0,1,2,3,...
	y, err := PlantTF(1).StepResponse(10)
	if err != nil {
		t.Fatal(err)
	}
	for k := range y {
		if math.Abs(y[k]-float64(k)) > 1e-12 {
			t.Fatalf("y[%d] = %v, want %d", k, y[k], k)
		}
	}
}

func TestTFSimulateRejectsImproper(t *testing.T) {
	h := TF{Num: NewPoly(1, 0, 0), Den: NewPoly(1, -1)}
	if _, err := h.Simulate([]float64{1, 1}); err == nil {
		t.Error("expected error for improper transfer function")
	}
}

// The composed closed-loop transfer function must reproduce the behaviour of
// the actual time-domain loop: plant P(t+1) = P(t) + a·d(t) driven by the PID
// of Equation (7) on the tracking error. This validates both TF.Simulate and
// the Series/Feedback composition against first principles.
func TestClosedLoopTFMatchesTimeDomainLoop(t *testing.T) {
	const a = PaperPlantGain
	g := PaperGains
	n := 60

	// Time-domain simulation of the loop.
	pid := NewPID(g.KP, g.KI, g.KD)
	y := make([]float64, n)
	power := 0.0
	for k := 0; k < n; k++ {
		y[k] = power
		e := 1 - power // unit reference
		d := pid.Update(e)
		power += a * d
	}

	// Linear-model prediction.
	closed := ClosedLoop(a, g)
	want, err := closed.StepResponse(n)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if math.Abs(y[k]-want[k]) > 1e-9 {
			t.Fatalf("sample %d: time-domain %v, transfer function %v", k, y[k], want[k])
		}
	}
}
