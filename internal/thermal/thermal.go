// Package thermal provides the first-order RC thermal model and floorplan
// used by the thermal-aware provisioning evaluation (Figure 18). Each core
// is one thermal node with vertical conduction to the heatsink/ambient and
// lateral conduction to its floorplan neighbours, which is what makes
// sustained high power on *adjacent* cores — the situation the thermal-aware
// policy forbids — form hotspots that isolated high power does not.
package thermal

import (
	"errors"
	"fmt"
)

// Floorplan is the adjacency structure of cores on the die.
type Floorplan struct {
	n   int
	adj [][]int
}

// Grid returns a rows×cols mesh floorplan with 4-neighbour adjacency,
// numbering cores row-major. The paper's 8-core layout (Figure 18a) is
// Grid(2, 4).
func Grid(rows, cols int) (Floorplan, error) {
	if rows <= 0 || cols <= 0 {
		return Floorplan{}, errors.New("thermal: non-positive grid dimension")
	}
	n := rows * cols
	fp := Floorplan{n: n, adj: make([][]int, n)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			i := r*cols + c
			if r > 0 {
				fp.adj[i] = append(fp.adj[i], i-cols)
			}
			if r < rows-1 {
				fp.adj[i] = append(fp.adj[i], i+cols)
			}
			if c > 0 {
				fp.adj[i] = append(fp.adj[i], i-1)
			}
			if c < cols-1 {
				fp.adj[i] = append(fp.adj[i], i+1)
			}
		}
	}
	return fp, nil
}

// N returns the number of cores.
func (f Floorplan) N() int { return f.n }

// Neighbors returns the neighbour list of core i (not to be modified).
func (f Floorplan) Neighbors(i int) []int { return f.adj[i] }

// Adjacent reports whether cores a and b abut.
func (f Floorplan) Adjacent(a, b int) bool {
	for _, x := range f.adj[a] {
		if x == b {
			return true
		}
	}
	return false
}

// Config parameterizes the RC network.
type Config struct {
	// AmbientC is the heatsink/ambient temperature in °C.
	AmbientC float64
	// RthCPerW is the vertical (junction→ambient) thermal resistance per
	// core in °C/W: steady-state core temperature is ambient + P·Rth
	// (before lateral flow).
	RthCPerW float64
	// TauSec is the thermal time constant.
	TauSec float64
	// Coupling is the lateral conductance relative to vertical (0 = cores
	// thermally isolated).
	Coupling float64
	// HotspotC is the temperature above which a core counts as a hotspot.
	HotspotC float64
}

// DefaultConfig returns parameters typical of a 90 nm-class die with a
// conventional heatsink: 45 °C ambient, ~4.5 °C/W per core, a 50 ms time
// constant and a 90 °C hotspot threshold — so a core sustained at its
// 12 W maximum approaches 99 °C and trips the threshold, while one at
// two-thirds power does not.
func DefaultConfig() Config {
	return Config{AmbientC: 45, RthCPerW: 4.5, TauSec: 0.05, Coupling: 0.3, HotspotC: 90}
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.RthCPerW <= 0 {
		return errors.New("thermal: non-positive thermal resistance")
	}
	if c.TauSec <= 0 {
		return errors.New("thermal: non-positive time constant")
	}
	if c.Coupling < 0 {
		return errors.New("thermal: negative coupling")
	}
	if c.HotspotC <= c.AmbientC {
		return errors.New("thermal: hotspot threshold at or below ambient")
	}
	return nil
}

// MaxSteadyTempC returns the temperature no core can exceed in steady state
// when every core dissipates at most maxCoreW: the hottest core's lateral
// flux is non-positive (its neighbours are no hotter), so its equilibrium is
// bounded by ambient + maxCoreW·Rth. The bound is what the invariant checker
// (internal/check.ThermalEnvelope) holds run-long temperatures against.
func (c Config) MaxSteadyTempC(maxCoreW float64) float64 {
	return c.AmbientC + maxCoreW*c.RthCPerW
}

// MaxStepDeltaC returns the largest per-step temperature change the forward
// Euler integration can produce for a core dissipating at most maxCoreW
// while all temperatures stay within the [ambient, maxSteady] envelope:
// |ΔT| ≤ dt/τ · (maxCoreW·Rth + span + k·4·span), with span the envelope
// width (4 is the mesh's maximum neighbour count).
func (c Config) MaxStepDeltaC(maxCoreW, dt float64) float64 {
	span := maxCoreW * c.RthCPerW
	return dt / c.TauSec * (maxCoreW*c.RthCPerW + span + c.Coupling*4*span)
}

// Model integrates per-core temperatures.
type Model struct {
	cfg Config
	fp  Floorplan
	t   []float64
	nxt []float64
}

// New builds a model with all cores at ambient.
func New(fp Floorplan, cfg Config) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if fp.n == 0 {
		return nil, errors.New("thermal: empty floorplan")
	}
	m := &Model{cfg: cfg, fp: fp, t: make([]float64, fp.n), nxt: make([]float64, fp.n)}
	for i := range m.t {
		m.t[i] = cfg.AmbientC
	}
	return m, nil
}

// Config returns the model parameters.
func (m *Model) Config() Config { return m.cfg }

// Step advances temperatures by dt seconds under per-core power powerW
// using forward Euler on
//
//	τ·dT_i/dt = P_i·R + T_amb − T_i + k·Σ_j (T_j − T_i)
//
// dt must be well below τ (the simulator's 2.5 ms interval against the
// default 50 ms τ gives a comfortably stable integration).
func (m *Model) Step(powerW []float64, dt float64) error {
	if len(powerW) != m.fp.n {
		return fmt.Errorf("thermal: power vector length %d, want %d", len(powerW), m.fp.n)
	}
	if dt <= 0 {
		return errors.New("thermal: non-positive dt")
	}
	for i := range m.t {
		flux := m.cfg.AmbientC - m.t[i] + powerW[i]*m.cfg.RthCPerW
		for _, j := range m.fp.adj[i] {
			flux += m.cfg.Coupling * (m.t[j] - m.t[i])
		}
		m.nxt[i] = m.t[i] + dt/m.cfg.TauSec*flux
	}
	m.t, m.nxt = m.nxt, m.t
	return nil
}

// Temp returns core i's temperature in °C.
func (m *Model) Temp(i int) float64 { return m.t[i] }

// Temps copies all temperatures into dst (allocating if needed) and returns
// it.
func (m *Model) Temps(dst []float64) []float64 {
	if cap(dst) < len(m.t) {
		dst = make([]float64, len(m.t))
	}
	dst = dst[:len(m.t)]
	copy(dst, m.t)
	return dst
}

// MaxTemp returns the hottest core temperature.
func (m *Model) MaxTemp() float64 {
	max := m.t[0]
	for _, v := range m.t[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// Hotspots appends the indices of cores above the hotspot threshold to dst
// and returns it.
func (m *Model) Hotspots(dst []int) []int {
	dst = dst[:0]
	for i, v := range m.t {
		if v > m.cfg.HotspotC {
			dst = append(dst, i)
		}
	}
	return dst
}
