package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGridAdjacency(t *testing.T) {
	fp, err := Grid(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fp.N() != 8 {
		t.Fatalf("N = %d", fp.N())
	}
	// Corner core 0 has 2 neighbours: 1 (right) and 4 (below).
	nb := fp.Neighbors(0)
	if len(nb) != 2 {
		t.Errorf("core 0 neighbours = %v", nb)
	}
	if !fp.Adjacent(0, 1) || !fp.Adjacent(0, 4) {
		t.Error("expected 0-1 and 0-4 adjacency")
	}
	if fp.Adjacent(0, 5) || fp.Adjacent(0, 3) {
		t.Error("unexpected diagonal/far adjacency")
	}
	// Middle core 1 has 3 neighbours (0, 2, 5).
	if len(fp.Neighbors(1)) != 3 {
		t.Errorf("core 1 neighbours = %v", fp.Neighbors(1))
	}
	// Symmetry.
	for a := 0; a < fp.N(); a++ {
		for _, b := range fp.Neighbors(a) {
			if !fp.Adjacent(b, a) {
				t.Fatalf("asymmetric adjacency %d-%d", a, b)
			}
		}
	}
}

func TestGridValidation(t *testing.T) {
	if _, err := Grid(0, 4); err == nil {
		t.Error("zero rows should be rejected")
	}
}

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.RthCPerW = 0 },
		func(c *Config) { c.TauSec = -1 },
		func(c *Config) { c.Coupling = -0.1 },
		func(c *Config) { c.HotspotC = c.AmbientC },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func newModel(t *testing.T) *Model {
	t.Helper()
	fp, err := Grid(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(fp, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStartsAtAmbient(t *testing.T) {
	m := newModel(t)
	for i := 0; i < 8; i++ {
		if m.Temp(i) != DefaultConfig().AmbientC {
			t.Errorf("core %d starts at %v", i, m.Temp(i))
		}
	}
}

func TestSteadyStateUniformPower(t *testing.T) {
	m := newModel(t)
	p := make([]float64, 8)
	for i := range p {
		p[i] = 10
	}
	for k := 0; k < 4000; k++ {
		if err := m.Step(p, 0.0025); err != nil {
			t.Fatal(err)
		}
	}
	// Uniform power → no lateral flow → T = ambient + P·R for every core.
	want := DefaultConfig().AmbientC + 10*DefaultConfig().RthCPerW
	for i := 0; i < 8; i++ {
		if math.Abs(m.Temp(i)-want) > 0.1 {
			t.Errorf("core %d steady temp = %v, want %v", i, m.Temp(i), want)
		}
	}
}

func TestLateralCouplingSpreadsHeat(t *testing.T) {
	m := newModel(t)
	p := make([]float64, 8)
	p[0] = 12 // single hot corner core
	for k := 0; k < 4000; k++ {
		m.Step(p, 0.0025)
	}
	// Neighbours of 0 must be warmer than the far corner.
	if m.Temp(1) <= m.Temp(7) || m.Temp(4) <= m.Temp(7) {
		t.Errorf("no lateral heat flow: T1=%v T4=%v T7=%v", m.Temp(1), m.Temp(4), m.Temp(7))
	}
	// And the hot core itself must be cooler than without coupling.
	isolatedSteady := DefaultConfig().AmbientC + 12*DefaultConfig().RthCPerW
	if m.Temp(0) >= isolatedSteady {
		t.Errorf("coupling should cool the hot core below %v, got %v", isolatedSteady, m.Temp(0))
	}
}

func TestHotspotDetection(t *testing.T) {
	m := newModel(t)
	p := make([]float64, 8)
	for i := range p {
		p[i] = 12 // maximum per-core power everywhere
	}
	for k := 0; k < 4000; k++ {
		m.Step(p, 0.0025)
	}
	hs := m.Hotspots(nil)
	if len(hs) != 8 {
		t.Errorf("full-power chip should be all hotspots, got %v (max %v)", hs, m.MaxTemp())
	}
	// Two-thirds power must not trip the threshold.
	m2 := newModel(t)
	for i := range p {
		p[i] = 8
	}
	for k := 0; k < 4000; k++ {
		m2.Step(p, 0.0025)
	}
	if hs := m2.Hotspots(nil); len(hs) != 0 {
		t.Errorf("moderate power should have no hotspots, got %v (max %v)", hs, m2.MaxTemp())
	}
}

func TestStepValidation(t *testing.T) {
	m := newModel(t)
	if err := m.Step([]float64{1, 2}, 0.0025); err == nil {
		t.Error("wrong power vector length should be rejected")
	}
	if err := m.Step(make([]float64, 8), 0); err == nil {
		t.Error("zero dt should be rejected")
	}
}

func TestTempsCopy(t *testing.T) {
	m := newModel(t)
	ts := m.Temps(nil)
	ts[0] = -1000
	if m.Temp(0) == -1000 {
		t.Error("Temps returned internal storage")
	}
	buf := make([]float64, 8)
	if got := m.Temps(buf); &got[0] != &buf[0] {
		t.Error("Temps should reuse a big-enough buffer")
	}
}

// Property: with bounded power, temperatures remain bounded between ambient
// and ambient + maxP·Rth (uniform bound, valid since coupling only averages).
func TestTemperatureBoundsProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed uint64) bool {
		fp, _ := Grid(2, 4)
		m, _ := New(fp, cfg)
		p := make([]float64, 8)
		s := seed
		for k := 0; k < 400; k++ {
			for i := range p {
				s = s*6364136223846793005 + 1442695040888963407
				p[i] = float64(s%1200) / 100 // 0..12 W
			}
			m.Step(p, 0.0025)
		}
		for i := 0; i < 8; i++ {
			if m.Temp(i) < cfg.AmbientC-1e-9 || m.Temp(i) > cfg.AmbientC+12*cfg.RthCPerW+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// The physical premise of the thermal-aware policy (Figure 18): the same
// total power heats the die more when concentrated on adjacent cores than
// when spread across distant ones.
func TestAdjacentConcentrationRunsHotter(t *testing.T) {
	run := func(hot []int) float64 {
		fp, _ := Grid(2, 4)
		m, _ := New(fp, DefaultConfig())
		p := make([]float64, 8)
		for i := range p {
			p[i] = 2
		}
		for _, i := range hot {
			p[i] = 12
		}
		for k := 0; k < 4000; k++ {
			m.Step(p, 0.0025)
		}
		return m.MaxTemp()
	}
	adjacent := run([]int{1, 5}) // vertically adjacent pair
	spread := run([]int{0, 7})   // opposite corners
	if adjacent <= spread {
		t.Errorf("adjacent hot pair (%.1f C) should run hotter than spread pair (%.1f C)", adjacent, spread)
	}
}
