package thermal

import "github.com/cpm-sim/cpm/internal/snapshot"

// Snapshot appends the RC network's node temperatures — the model's only
// dynamic state (the scratch buffer Step ping-pongs through is overwritten
// before every read).
func (m *Model) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagThermal)
	e.F64s(m.t)
}

// Restore reads state written by Snapshot into a model over the same
// floorplan.
func (m *Model) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagThermal)
	t := d.F64s()
	if err := d.Err(); err != nil {
		return err
	}
	if len(t) != len(m.t) {
		return snapshot.ShapeErrorf("%d thermal nodes in snapshot, target floorplan has %d", len(t), len(m.t))
	}
	copy(m.t, t)
	return nil
}
