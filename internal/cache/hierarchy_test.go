package cache

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/stats"
)

func TestNewBankedValidation(t *testing.T) {
	cfg := TableIL2PerCore()
	if _, err := NewBanked(cfg, 0); err == nil {
		t.Error("zero banks should be rejected")
	}
	if _, err := NewBanked(cfg, 3); err == nil {
		t.Error("non-power-of-two banks should be rejected")
	}
	b, err := NewBanked(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Banks() != 4 {
		t.Errorf("Banks = %d", b.Banks())
	}
}

func TestBankedInterleaving(t *testing.T) {
	b, err := NewBanked(Config{SizeBytes: 1024, Assoc: 2, BlockBytes: 64}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive blocks round-robin across banks.
	for i := 0; i < 8; i++ {
		want := i % 4
		if got := b.BankFor(uint64(i * 64)); got != want {
			t.Errorf("BankFor(block %d) = %d, want %d", i, got, want)
		}
	}
	// Same block, any offset: same bank.
	if b.BankFor(0x40) != b.BankFor(0x7F) {
		t.Error("offsets within a block must map to one bank")
	}
}

func TestBankedStatsAggregate(t *testing.T) {
	b, err := NewBanked(Config{SizeBytes: 1024, Assoc: 2, BlockBytes: 64}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		b.Access(uint64(i * 64))
	}
	for i := 0; i < 10; i++ {
		b.Access(uint64(i * 64))
	}
	s := b.Stats()
	if s.Accesses != 20 {
		t.Errorf("accesses = %d, want 20", s.Accesses)
	}
	if s.Misses != 10 || s.Hits != 10 {
		t.Errorf("stats = %+v, want 10 hits and 10 misses", s)
	}
	b.ResetStats()
	if b.Stats().Accesses != 0 {
		t.Error("ResetStats did not clear")
	}
}

func newTestHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	l1i := mustCache(t, TableIL1())
	l1d := mustCache(t, TableIL1())
	l2 := mustCache(t, TableIL2PerCore())
	h, err := NewHierarchy(l1i, l1d, l2)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(nil, nil, nil); err == nil {
		t.Error("nil levels should be rejected")
	}
}

func TestHierarchyDataPath(t *testing.T) {
	h := newTestHierarchy(t)
	addr := uint64(0x12340)
	if r := h.Data(addr); r != HitMemory {
		t.Errorf("cold access = %v, want HitMemory", r)
	}
	if r := h.Data(addr); r != HitL1 {
		t.Errorf("warm access = %v, want HitL1", r)
	}
	// Evict from tiny L1 by sweeping conflicting blocks; L2 retains it.
	l1sets := h.L1D.Config().Sets()
	stride := uint64(l1sets * h.L1D.Config().BlockBytes)
	for i := 1; i <= h.L1D.Config().Assoc; i++ {
		h.Data(addr + uint64(i)*stride)
	}
	if r := h.Data(addr); r != HitL2 {
		t.Errorf("post-L1-eviction access = %v, want HitL2", r)
	}
}

func TestHierarchyFetchPath(t *testing.T) {
	h := newTestHierarchy(t)
	if r := h.Fetch(0x400000); r != HitMemory {
		t.Errorf("cold fetch = %v", r)
	}
	if r := h.Fetch(0x400000); r != HitL1 {
		t.Errorf("warm fetch = %v", r)
	}
	// Fetch and Data use separate L1s.
	if r := h.Data(0x400000); r != HitL2 {
		t.Errorf("data access to fetched block = %v, want HitL2", r)
	}
}

func TestHierarchySharedL2AcrossCores(t *testing.T) {
	// Two hierarchies sharing one banked L2: core 1 warms a block into L2,
	// core 2's first access then hits L2 despite a cold private L1.
	shared, err := NewBanked(TableIL2PerCore(), 2)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Hierarchy {
		l1i := mustCache(t, TableIL1())
		l1d := mustCache(t, TableIL1())
		h, err := NewHierarchy(l1i, l1d, shared)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	c1, c2 := mk(), mk()
	c1.Data(0x9000)
	if r := c2.Data(0x9000); r != HitL2 {
		t.Errorf("cross-core shared access = %v, want HitL2", r)
	}
}

// Property: the data path never reports a deeper level than the shallowest
// cache that actually holds the block (verified with Probe before access).
func TestHierarchyLevelConsistencyProperty(t *testing.T) {
	h := newTestHierarchy(t)
	r := stats.NewRand(77)
	for i := 0; i < 5000; i++ {
		addr := uint64(r.Intn(1 << 20))
		inL1 := h.L1D.Probe(addr)
		res := h.Data(addr)
		if inL1 && res != HitL1 {
			t.Fatalf("block in L1 reported as %v", res)
		}
		if !inL1 && res == HitL1 {
			t.Fatal("L1 hit reported for absent block")
		}
	}
}
