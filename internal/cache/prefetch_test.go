package cache

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/stats"
)

func newPrefetched(t *testing.T, degree int) (*StreamPrefetcher, *Cache) {
	t.Helper()
	inner := mustCache(t, Config{SizeBytes: 64 * 1024, Assoc: 8, BlockBytes: 64, LatencyCycles: 10})
	p, err := NewStreamPrefetcher(inner, degree, 16)
	if err != nil {
		t.Fatal(err)
	}
	return p, inner
}

func TestNewStreamPrefetcherValidation(t *testing.T) {
	inner := mustCache(t, Config{SizeBytes: 1024, Assoc: 2, BlockBytes: 64})
	if _, err := NewStreamPrefetcher(nil, 2, 8); err == nil {
		t.Error("nil inner should be rejected")
	}
	if _, err := NewStreamPrefetcher(inner, 0, 8); err == nil {
		t.Error("zero degree should be rejected")
	}
	if _, err := NewStreamPrefetcher(inner, 2, 0); err == nil {
		t.Error("zero table should be rejected")
	}
}

// A block-strided sweep misses every block without prefetching but mostly
// hits with a stream prefetcher ahead of it.
func TestStreamPrefetcherCoversSequentialSweep(t *testing.T) {
	plain := mustCache(t, Config{SizeBytes: 64 * 1024, Assoc: 8, BlockBytes: 64, LatencyCycles: 10})
	pref, _ := newPrefetched(t, 4)
	const blocks = 512
	for i := 0; i < blocks; i++ {
		addr := uint64(i) * 64
		plain.Access(addr)
		pref.Access(addr)
	}
	plainMiss := plain.Stats().MissRate()
	prefMiss := pref.Stats().MissRate()
	if plainMiss < 0.99 {
		t.Fatalf("plain sweep should miss everything, got %.2f", plainMiss)
	}
	if prefMiss > 0.35 {
		t.Errorf("prefetched sweep miss rate = %.2f, want mostly hits", prefMiss)
	}
	if pref.Issued() == 0 || pref.Useful() == 0 {
		t.Errorf("prefetcher idle: issued=%d useful=%d", pref.Issued(), pref.Useful())
	}
	if pref.Useful() > pref.Issued() {
		t.Error("useful prefetches cannot exceed issued")
	}
}

// Random traffic must not trigger streams (no pollution).
func TestStreamPrefetcherIgnoresRandomTraffic(t *testing.T) {
	pref, _ := newPrefetched(t, 4)
	r := stats.NewRand(7)
	for i := 0; i < 2000; i++ {
		pref.Access(uint64(r.Intn(1<<20)) &^ 63 * 7) // scattered blocks
	}
	if float64(pref.Issued()) > 200 {
		t.Errorf("prefetcher issued %d fills on random traffic", pref.Issued())
	}
}

func TestFillDoesNotTouchDemandCounters(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 1024, Assoc: 2, BlockBytes: 64})
	if !c.Fill(0x100) {
		t.Fatal("fill of absent block should happen")
	}
	if c.Fill(0x100) {
		t.Error("fill of resident block should be a no-op")
	}
	s := c.Stats()
	if s.Accesses != 0 || s.Misses != 0 || s.Hits != 0 {
		t.Errorf("Fill perturbed demand counters: %+v", s)
	}
	if !c.Access(0x100) {
		t.Error("prefilled block should hit on demand")
	}
}

func TestPrefetchedMarksClearedByEviction(t *testing.T) {
	// 2-way, 8-set cache: three conflicting fills evict the first.
	c := mustCache(t, Config{SizeBytes: 1024, Assoc: 2, BlockBytes: 64})
	c.Fill(0)
	c.Fill(512)
	c.Fill(1024) // evicts block 0
	if c.wasPrefetched(0) {
		t.Error("evicted block kept its prefetched mark")
	}
	if !c.wasPrefetched(512) || !c.wasPrefetched(1024) {
		t.Error("resident prefetched blocks lost their marks")
	}
	c.Flush()
	if c.wasPrefetched(512) {
		t.Error("flush should drop prefetch marks")
	}
}

func TestPrefetcherImplementsLevel2(t *testing.T) {
	pref, _ := newPrefetched(t, 2)
	var l2 Level2 = pref
	l2.Access(0x40)
	if l2.Stats().Accesses != 1 {
		t.Error("Level2 stats not forwarded")
	}
	l2.ResetStats()
	if l2.Stats().Accesses != 0 {
		t.Error("Level2 reset not forwarded")
	}
	if pref.Config().LatencyCycles != 10 {
		t.Error("Config not forwarded")
	}
}
