package cache

import (
	"errors"
	"fmt"
)

// Banked is a last-level cache split into address-interleaved banks, as in
// the paper's layout (Figure 1: shared last-level cache banks in the middle
// of the die). Banking is by block address, so consecutive blocks map to
// different banks.
type Banked struct {
	banks     []*Cache
	blockBits uint
}

// NewBanked builds n identical banks from cfg. n must be a power of two.
func NewBanked(cfg Config, n int) (*Banked, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("cache: bank count %d not a positive power of two", n)
	}
	b := &Banked{banks: make([]*Cache, n)}
	for i := range b.banks {
		c, err := New(cfg)
		if err != nil {
			return nil, err
		}
		b.banks[i] = c
	}
	b.blockBits = b.banks[0].blockBits
	return b, nil
}

// Banks returns the number of banks.
func (b *Banked) Banks() int { return len(b.banks) }

// BankFor returns the bank index addr maps to.
func (b *Banked) BankFor(addr uint64) int {
	return int((addr >> b.blockBits) & uint64(len(b.banks)-1))
}

// Access routes the access to its bank.
func (b *Banked) Access(addr uint64) bool {
	return b.banks[b.BankFor(addr)].Access(addr)
}

// Stats sums counters across banks.
func (b *Banked) Stats() Stats {
	var s Stats
	for _, bank := range b.banks {
		bs := bank.Stats()
		s.Accesses += bs.Accesses
		s.Hits += bs.Hits
		s.Misses += bs.Misses
		s.Evictions += bs.Evictions
	}
	return s
}

// ResetStats clears all bank counters.
func (b *Banked) ResetStats() {
	for _, bank := range b.banks {
		bank.ResetStats()
	}
}

// Hierarchy is one core's view of the memory system: private L1I and L1D,
// and a (possibly shared) L2. The L2 is abstracted behind the Level2
// interface so that a private slice and a shared banked cache are
// interchangeable.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  Level2
}

// Level2 is the minimal interface the hierarchy needs from its second level.
type Level2 interface {
	Access(addr uint64) bool
	Stats() Stats
	ResetStats()
}

// AccessResult classifies where a data access was satisfied.
type AccessResult int

// Access outcome levels.
const (
	HitL1 AccessResult = iota
	HitL2
	HitMemory
)

// NewHierarchy wires a hierarchy after validating the pieces exist.
func NewHierarchy(l1i, l1d *Cache, l2 Level2) (*Hierarchy, error) {
	if l1i == nil || l1d == nil || l2 == nil {
		return nil, errors.New("cache: hierarchy needs all three levels")
	}
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2}, nil
}

// Data performs a data access: L1D first, then L2 on a miss, then memory.
func (h *Hierarchy) Data(addr uint64) AccessResult {
	if h.L1D.Access(addr) {
		return HitL1
	}
	if h.L2.Access(addr) {
		return HitL2
	}
	return HitMemory
}

// Fetch performs an instruction access: L1I first, then L2, then memory.
func (h *Hierarchy) Fetch(addr uint64) AccessResult {
	if h.L1I.Access(addr) {
		return HitL1
	}
	if h.L2.Access(addr) {
		return HitL2
	}
	return HitMemory
}

// ResetStats clears counters at every level. Note that for a shared L2 this
// clears the shared counters too; the simulator resets per interval before
// any core runs.
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L1D.ResetStats()
	h.L2.ResetStats()
}

// TableIL1 returns the paper's L1 configuration: 16 KB, 2-way, 64 B blocks,
// 1-cycle access (Table I).
func TableIL1() Config {
	return Config{SizeBytes: 16 * 1024, Assoc: 2, BlockBytes: 64, LatencyCycles: 1}
}

// TableIL2PerCore returns the paper's per-core share of the shared L2:
// 512 KB, 16-way, 64 B blocks, 10-cycle access (Table I).
func TableIL2PerCore() Config {
	return Config{SizeBytes: 512 * 1024, Assoc: 16, BlockBytes: 64, LatencyCycles: 10}
}
