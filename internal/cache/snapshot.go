package cache

import "github.com/cpm-sim/cpm/internal/snapshot"

// L2 kind bytes written by Hierarchy.Snapshot so a restore can verify the
// target hierarchy has the same L2 wiring as the snapshotted one.
const (
	l2KindCache      uint8 = 1
	l2KindBanked     uint8 = 2
	l2KindPrefetcher uint8 = 3
)

// Snapshot appends the cache's complete dynamic state: packed tag array,
// per-set LRU order words, SWAR signatures, prefetch bit-words, per-set
// fill counts, the prefetch-liveness flag and the cumulative counters.
// Geometry (sets, associativity, block size) is construction-time
// configuration; Restore validates shape against it rather than trusting
// the bytes.
func (c *Cache) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagCache)
	e.U64s(c.tags)
	e.U64s(c.order) // nil for wide caches: encodes as length 0
	e.U64s(c.sigs)
	e.U64s(c.pref)
	e.I32s(c.size)
	e.Bool(c.prefLive)
	e.U64(c.stats.Accesses)
	e.U64(c.stats.Hits)
	e.U64(c.stats.Misses)
	e.U64(c.stats.Evictions)
}

// Restore reads state written by Snapshot into a cache of identical
// geometry, rejecting length mismatches.
func (c *Cache) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagCache)
	tags := d.U64s()
	order := d.U64s()
	sigs := d.U64s()
	pref := d.U64s()
	size := d.I32s()
	prefLive := d.Bool()
	var st Stats
	st.Accesses = d.U64()
	st.Hits = d.U64()
	st.Misses = d.U64()
	st.Evictions = d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if len(tags) != len(c.tags) || len(order) != len(c.order) ||
		len(sigs) != len(c.sigs) || len(pref) != len(c.pref) || len(size) != len(c.size) {
		return snapshot.ShapeErrorf(
			"cache arrays (%d/%d/%d/%d/%d) do not match target geometry (%d/%d/%d/%d/%d)",
			len(tags), len(order), len(sigs), len(pref), len(size),
			len(c.tags), len(c.order), len(c.sigs), len(c.pref), len(c.size))
	}
	for s, n := range size {
		if n < 0 || int(n) > c.assoc {
			return snapshot.ShapeErrorf("set %d fill count %d outside [0, %d]", s, n, c.assoc)
		}
	}
	copy(c.tags, tags)
	copy(c.order, order)
	copy(c.sigs, sigs)
	copy(c.pref, pref)
	copy(c.size, size)
	c.prefLive = prefLive
	c.stats = st
	return nil
}

// Snapshot appends every bank's state.
func (b *Banked) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagBanked)
	e.Int(len(b.banks))
	for _, bank := range b.banks {
		bank.Snapshot(e)
	}
}

// Restore reads state written by Snapshot into a Banked of the same bank
// count and per-bank geometry.
func (b *Banked) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagBanked)
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(b.banks) {
		return snapshot.ShapeErrorf("%d banks in snapshot, target has %d", n, len(b.banks))
	}
	for _, bank := range b.banks {
		if err := bank.Restore(d); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot appends the prefetcher's stream-detection table and counters
// along with the wrapped cache's state.
func (p *StreamPrefetcher) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagPrefetcher)
	p.inner.Snapshot(e)
	e.U64s(p.streams)
	e.Int(p.nextSlot)
	e.U64(p.issued)
	e.U64(p.useful)
}

// Restore reads state written by Snapshot.
func (p *StreamPrefetcher) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagPrefetcher)
	if err := p.inner.Restore(d); err != nil {
		return err
	}
	streams := d.U64s()
	nextSlot := d.Int()
	issued := d.U64()
	useful := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if len(streams) != len(p.streams) {
		return snapshot.ShapeErrorf("%d prefetch streams in snapshot, target has %d", len(streams), len(p.streams))
	}
	if nextSlot < 0 || (len(p.streams) > 0 && nextSlot >= len(p.streams)) {
		return snapshot.ShapeErrorf("prefetch slot cursor %d outside table of %d", nextSlot, len(p.streams))
	}
	copy(p.streams, streams)
	p.nextSlot = nextSlot
	p.issued = issued
	p.useful = useful
	return nil
}

// Snapshot appends the hierarchy's L1 state and, when includeL2 is true,
// its L2 state prefixed with a kind byte identifying the L2 wiring.
// Callers with a shared per-island L2 pass includeL2 false for every core
// and snapshot the shared cache once at the island level instead, so the
// shared state is captured exactly once.
func (h *Hierarchy) Snapshot(e *snapshot.Encoder, includeL2 bool) {
	e.Tag(snapshot.TagHierarchy)
	h.L1I.Snapshot(e)
	h.L1D.Snapshot(e)
	e.Bool(includeL2)
	if !includeL2 {
		return
	}
	switch l2 := h.L2.(type) {
	case *Cache:
		e.U8(l2KindCache)
		l2.Snapshot(e)
	case *Banked:
		e.U8(l2KindBanked)
		l2.Snapshot(e)
	case *StreamPrefetcher:
		e.U8(l2KindPrefetcher)
		l2.Snapshot(e)
	default:
		// Unknown Level2 implementations cannot be captured; encode an
		// invalid kind so Restore fails loudly instead of silently
		// dropping state.
		e.U8(0)
	}
}

// Restore reads state written by Snapshot, verifying the L2 wiring kind
// matches the target hierarchy.
func (h *Hierarchy) Restore(d *snapshot.Decoder, includeL2 bool) error {
	d.Tag(snapshot.TagHierarchy)
	if err := h.L1I.Restore(d); err != nil {
		return err
	}
	if err := h.L1D.Restore(d); err != nil {
		return err
	}
	had := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if had != includeL2 {
		return snapshot.ShapeErrorf("snapshot L2 presence %v, restore expects %v", had, includeL2)
	}
	if !includeL2 {
		return nil
	}
	kind := d.U8()
	if err := d.Err(); err != nil {
		return err
	}
	switch l2 := h.L2.(type) {
	case *Cache:
		if kind != l2KindCache {
			return snapshot.ShapeErrorf("snapshot L2 kind %d, target is a private cache", kind)
		}
		return l2.Restore(d)
	case *Banked:
		if kind != l2KindBanked {
			return snapshot.ShapeErrorf("snapshot L2 kind %d, target is a banked cache", kind)
		}
		return l2.Restore(d)
	case *StreamPrefetcher:
		if kind != l2KindPrefetcher {
			return snapshot.ShapeErrorf("snapshot L2 kind %d, target is a prefetching cache", kind)
		}
		return l2.Restore(d)
	default:
		return snapshot.ShapeErrorf("target hierarchy has an unsnapshotable L2 implementation")
	}
}
