package cache

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/stats"
)

// refLRU is a deliberately naive move-to-front LRU used as the behavioural
// reference for the packed implementation: a slice of tag lists, most
// recently used first — the layout the packed cache replaced.
type refLRU struct {
	sets      [][]uint64
	assoc     int
	setMask   uint64
	blockBits uint
	setShift  uint
	stats     Stats
}

func newRefLRU(cfg Config) *refLRU {
	nsets := cfg.Sets()
	r := &refLRU{
		sets:    make([][]uint64, nsets),
		assoc:   cfg.Assoc,
		setMask: uint64(nsets - 1),
	}
	for {
		if 1<<r.blockBits == cfg.BlockBytes {
			break
		}
		r.blockBits++
	}
	for {
		if 1<<r.setShift == nsets {
			break
		}
		r.setShift++
	}
	return r
}

func (r *refLRU) Access(addr uint64) bool {
	block := addr >> r.blockBits
	si := block & r.setMask
	tag := block >> r.setShift
	set := r.sets[si]
	r.stats.Accesses++
	for i, t := range set {
		if t == tag {
			copy(set[1:i+1], set[:i])
			set[0] = tag
			r.stats.Hits++
			return true
		}
	}
	r.stats.Misses++
	if len(set) < r.assoc {
		set = append(set, 0)
	} else {
		r.stats.Evictions++
	}
	copy(set[1:], set)
	set[0] = tag
	r.sets[si] = set
	return false
}

func (r *refLRU) Probe(addr uint64) bool {
	block := addr >> r.blockBits
	for _, t := range r.sets[block&r.setMask] {
		if t == block>>r.setShift {
			return true
		}
	}
	return false
}

// TestPackedMatchesReference drives the packed cache and the reference LRU
// with identical random traces and demands identical hit/miss sequences,
// statistics and residency — across the order-word path (assoc ≤ 16) and
// the wide move-to-front fallback (assoc > 16).
func TestPackedMatchesReference(t *testing.T) {
	geoms := []Config{
		{SizeBytes: 1024, Assoc: 2, BlockBytes: 64},
		{SizeBytes: 4 * 1024, Assoc: 4, BlockBytes: 64},
		{SizeBytes: 16 * 1024, Assoc: 16, BlockBytes: 64},
		{SizeBytes: 32 * 1024, Assoc: 32, BlockBytes: 64}, // wide fallback
	}
	for _, cfg := range geoms {
		c := mustCache(t, cfg)
		ref := newRefLRU(cfg)
		r := stats.NewRand(uint64(cfg.Assoc))
		// Heavy set pressure: a footprint a few times the capacity.
		span := uint64(4 * cfg.SizeBytes / cfg.BlockBytes)
		for i := 0; i < 20000; i++ {
			addr := r.Uint64() % span * uint64(cfg.BlockBytes)
			if got, want := c.Access(addr), ref.Access(addr); got != want {
				t.Fatalf("assoc %d: access %d of %#x: packed %v, reference %v",
					cfg.Assoc, i, addr, got, want)
			}
		}
		if c.Stats() != ref.stats {
			t.Errorf("assoc %d: stats %+v, reference %+v", cfg.Assoc, c.Stats(), ref.stats)
		}
		for b := uint64(0); b < span; b++ {
			addr := b * uint64(cfg.BlockBytes)
			if got, want := c.Probe(addr), ref.Probe(addr); got != want {
				t.Errorf("assoc %d: probe %#x: packed %v, reference %v", cfg.Assoc, addr, got, want)
			}
		}
	}
}

// TestPrefetchMarksSurviveRotation exercises the packed per-way prefetch
// marks: a mark must follow its line through LRU reordering and evictions,
// in both the order-word and wide layouts.
func TestPrefetchMarksSurviveRotation(t *testing.T) {
	for _, assoc := range []int{4, 32} {
		cfg := Config{SizeBytes: assoc * 64, Assoc: assoc, BlockBytes: 64} // one set
		c := mustCache(t, cfg)
		stride := uint64(64)
		// Fill way 0 by demand, then prefetch two lines.
		c.Access(0)
		if !c.Fill(1 * stride) {
			t.Fatalf("assoc %d: fill of absent line reported no fill", assoc)
		}
		if c.Fill(1 * stride) {
			t.Errorf("assoc %d: refill of resident line reported a fill", assoc)
		}
		c.Fill(2 * stride)
		if !c.wasPrefetched(1*stride) || !c.wasPrefetched(2*stride) {
			t.Fatalf("assoc %d: prefetch marks missing after fills", assoc)
		}
		if c.wasPrefetched(0) {
			t.Errorf("assoc %d: demand line carries a prefetch mark", assoc)
		}
		// Rotate the set: demand hits must not disturb other lines' marks.
		c.Access(0)
		c.Access(1 * stride)
		if !c.wasPrefetched(2 * stride) {
			t.Errorf("assoc %d: mark lost on unrelated hit", assoc)
		}
		c.clearPrefetched(1 * stride)
		if c.wasPrefetched(1 * stride) {
			t.Errorf("assoc %d: mark survived clearPrefetched", assoc)
		}
		// Evict everything: marks must go with their lines.
		for b := uint64(10); b < uint64(10+assoc); b++ {
			c.Access(b * stride)
		}
		if c.wasPrefetched(2 * stride) {
			t.Errorf("assoc %d: mark survived eviction", assoc)
		}
	}
}

// TestPrefetcherRejectsWideAssoc pins the packed-mark constraint: one bit
// per way in a uint64 caps prefetchable associativity at 64.
func TestPrefetcherRejectsWideAssoc(t *testing.T) {
	inner := mustCache(t, Config{SizeBytes: 128 * 64, Assoc: 128, BlockBytes: 64})
	if _, err := NewStreamPrefetcher(inner, 2, 8); err == nil {
		t.Error("prefetcher accepted a 128-way inner cache")
	}
	ok := mustCache(t, Config{SizeBytes: 64 * 64, Assoc: 64, BlockBytes: 64})
	if _, err := NewStreamPrefetcher(ok, 2, 8); err != nil {
		t.Errorf("prefetcher rejected a 64-way inner cache: %v", err)
	}
}

// TestAccessHitPathAllocs pins the zero-allocation contract of the demand
// path for both layouts.
func TestAccessHitPathAllocs(t *testing.T) {
	for _, assoc := range []int{16, 32} {
		c := mustCache(t, Config{SizeBytes: assoc * 64 * 8, Assoc: assoc, BlockBytes: 64})
		c.Access(0x40)
		if n := testing.AllocsPerRun(100, func() { c.Access(0x40) }); n != 0 {
			t.Errorf("assoc %d: Access hit path allocates %v times, want 0", assoc, n)
		}
	}
}

// BenchmarkCacheHit isolates the hit path: repeated accesses to a resident
// working set under the Table I L2 geometry.
func BenchmarkCacheHit(b *testing.B) {
	c, err := New(TableIL2PerCore())
	if err != nil {
		b.Fatal(err)
	}
	addrs := make([]uint64, 1024)
	r := stats.NewRand(1)
	for i := range addrs {
		addrs[i] = uint64(r.Intn(1<<18)) &^ 63 // 4096 blocks: resident after one pass
	}
	for _, a := range addrs {
		c.Access(a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i%len(addrs)])
	}
}
