package cache

import (
	"errors"
	"fmt"
)

// StreamPrefetcher wraps a second-level cache with a sequential stream
// prefetcher: when a demand miss extends an ascending block stream, the next
// Degree blocks are filled ahead of use. PARSEC's streaming kernels
// (streamcluster, vips) are exactly the workloads such prefetchers were
// built for, so the simulator offers it as a substrate option — the paper's
// platform predates aggressive LLC prefetching, which is why it is off by
// default.
type StreamPrefetcher struct {
	inner *Cache
	// Degree is the number of blocks fetched ahead on a detected stream.
	degree int
	// streams is a small table of the most recent miss block addresses,
	// used to detect ascending sequences.
	streams  []uint64
	nextSlot int

	issued uint64
	useful uint64
}

// NewStreamPrefetcher wraps inner with a prefetcher of the given degree and
// stream-table size. The inner cache's associativity must not exceed 64:
// prefetched-line marks are one bit per way in a packed per-set word.
func NewStreamPrefetcher(inner *Cache, degree, tableSize int) (*StreamPrefetcher, error) {
	if inner == nil {
		return nil, errors.New("cache: nil inner cache")
	}
	if inner.assoc > maxPrefWays {
		return nil, fmt.Errorf("cache: prefetched-line marks need assoc ≤ %d, got %d", maxPrefWays, inner.assoc)
	}
	if degree <= 0 {
		return nil, errors.New("cache: non-positive prefetch degree")
	}
	if tableSize <= 0 {
		return nil, errors.New("cache: non-positive stream table")
	}
	return &StreamPrefetcher{
		inner:   inner,
		degree:  degree,
		streams: make([]uint64, tableSize),
	}, nil
}

// Access implements Level2: a demand access that misses checks the stream
// table for the preceding block; on a match the following Degree blocks are
// prefetched.
func (p *StreamPrefetcher) Access(addr uint64) bool {
	block := addr >> p.inner.blockBits
	if p.inner.Access(addr) {
		if p.inner.wasPrefetched(addr) {
			p.useful++
			p.inner.clearPrefetched(addr)
		}
		return true
	}
	// Demand miss: detect an ascending stream (previous block missed
	// recently) and run ahead.
	if p.lookup(block-1) || p.lookup(block-2) {
		for d := 1; d <= p.degree; d++ {
			if p.inner.Fill((block + uint64(d)) << p.inner.blockBits) {
				p.issued++
			}
		}
	}
	p.record(block)
	return false
}

func (p *StreamPrefetcher) lookup(block uint64) bool {
	for _, b := range p.streams {
		if b == block {
			return true
		}
	}
	return false
}

func (p *StreamPrefetcher) record(block uint64) {
	p.streams[p.nextSlot] = block
	p.nextSlot = (p.nextSlot + 1) % len(p.streams)
}

// Stats implements Level2, exposing the inner cache's demand counters.
func (p *StreamPrefetcher) Stats() Stats { return p.inner.Stats() }

// ResetStats implements Level2.
func (p *StreamPrefetcher) ResetStats() { p.inner.ResetStats() }

// Config exposes the inner geometry (used for latency lookups).
func (p *StreamPrefetcher) Config() Config { return p.inner.Config() }

// Issued returns the number of prefetch fills performed.
func (p *StreamPrefetcher) Issued() uint64 { return p.issued }

// Useful returns the number of demand hits on prefetched lines.
func (p *StreamPrefetcher) Useful() uint64 { return p.useful }

// --- prefetch bookkeeping on Cache -----------------------------------------

// Fill inserts the block containing addr without touching the demand
// counters, marking it as prefetched; it reports whether a fill actually
// happened (false when the block was already resident). The mark lives in
// the set's packed per-way bit word, so Fill requires assoc ≤ 64 (enforced
// by NewStreamPrefetcher).
func (c *Cache) Fill(addr uint64) bool {
	block := addr >> c.blockBits
	set := block & c.setMask
	tag := block >> c.setShift
	base := int(set) * c.assoc
	n := int(c.size[set])
	for _, t := range c.tags[base : base+n] {
		if t == tag {
			return false
		}
	}
	c.prefLive = true
	if c.wide {
		if n < c.assoc {
			n++
			c.size[set] = int32(n)
		} else {
			// Evicting for a prefetch still counts as an eviction; the
			// evicted line's mark (bit n-1) shifts out below.
			c.stats.Evictions++
		}
		ways := c.tags[base : base+n : base+n]
		copy(ways[1:], ways)
		ways[0] = tag
		c.pref[set] = c.pref[set]<<1&wayMask(n) | 1
		return true
	}
	var way uint64
	if n < c.assoc {
		way = uint64(n)
		c.size[set] = int32(n + 1)
	} else {
		c.stats.Evictions++
		way = c.order[set] >> (4 * uint(n-1)) & 0xf
	}
	c.tags[base+int(way)] = tag
	c.order[set] = c.order[set]<<4 | way
	c.setSig(int(set)*c.sigWords, int(way), tag)
	c.pref[set] |= 1 << way
	return true
}

func (c *Cache) wasPrefetched(addr uint64) bool {
	if !c.prefLive {
		return false
	}
	block := addr >> c.blockBits
	set := block & c.setMask
	if w, ok := c.findWay(set, block>>c.setShift); ok {
		return c.pref[set]>>w&1 == 1
	}
	return false
}

func (c *Cache) clearPrefetched(addr uint64) {
	if !c.prefLive {
		return
	}
	block := addr >> c.blockBits
	set := block & c.setMask
	if w, ok := c.findWay(set, block>>c.setShift); ok {
		c.pref[set] &^= 1 << w
	}
}
