package cache

import "errors"

// StreamPrefetcher wraps a second-level cache with a sequential stream
// prefetcher: when a demand miss extends an ascending block stream, the next
// Degree blocks are filled ahead of use. PARSEC's streaming kernels
// (streamcluster, vips) are exactly the workloads such prefetchers were
// built for, so the simulator offers it as a substrate option — the paper's
// platform predates aggressive LLC prefetching, which is why it is off by
// default.
type StreamPrefetcher struct {
	inner *Cache
	// Degree is the number of blocks fetched ahead on a detected stream.
	degree int
	// streams is a small table of the most recent miss block addresses,
	// used to detect ascending sequences.
	streams  []uint64
	nextSlot int

	issued uint64
	useful uint64
}

// NewStreamPrefetcher wraps inner with a prefetcher of the given degree and
// stream-table size.
func NewStreamPrefetcher(inner *Cache, degree, tableSize int) (*StreamPrefetcher, error) {
	if inner == nil {
		return nil, errors.New("cache: nil inner cache")
	}
	if degree <= 0 {
		return nil, errors.New("cache: non-positive prefetch degree")
	}
	if tableSize <= 0 {
		return nil, errors.New("cache: non-positive stream table")
	}
	return &StreamPrefetcher{
		inner:   inner,
		degree:  degree,
		streams: make([]uint64, tableSize),
	}, nil
}

// Access implements Level2: a demand access that misses checks the stream
// table for the preceding block; on a match the following Degree blocks are
// prefetched.
func (p *StreamPrefetcher) Access(addr uint64) bool {
	block := addr >> p.inner.blockBits
	if p.inner.Access(addr) {
		if p.inner.wasPrefetched(addr) {
			p.useful++
			p.inner.clearPrefetched(addr)
		}
		return true
	}
	// Demand miss: detect an ascending stream (previous block missed
	// recently) and run ahead.
	if p.lookup(block-1) || p.lookup(block-2) {
		for d := 1; d <= p.degree; d++ {
			if p.inner.Fill((block + uint64(d)) << p.inner.blockBits) {
				p.issued++
			}
		}
	}
	p.record(block)
	return false
}

func (p *StreamPrefetcher) lookup(block uint64) bool {
	for _, b := range p.streams {
		if b == block {
			return true
		}
	}
	return false
}

func (p *StreamPrefetcher) record(block uint64) {
	p.streams[p.nextSlot] = block
	p.nextSlot = (p.nextSlot + 1) % len(p.streams)
}

// Stats implements Level2, exposing the inner cache's demand counters.
func (p *StreamPrefetcher) Stats() Stats { return p.inner.Stats() }

// ResetStats implements Level2.
func (p *StreamPrefetcher) ResetStats() { p.inner.ResetStats() }

// Config exposes the inner geometry (used for latency lookups).
func (p *StreamPrefetcher) Config() Config { return p.inner.Config() }

// Issued returns the number of prefetch fills performed.
func (p *StreamPrefetcher) Issued() uint64 { return p.issued }

// Useful returns the number of demand hits on prefetched lines.
func (p *StreamPrefetcher) Useful() uint64 { return p.useful }

// --- prefetch bookkeeping on Cache -----------------------------------------

// Fill inserts the block containing addr without touching the demand
// counters, marking it as prefetched; it reports whether a fill actually
// happened (false when the block was already resident).
func (c *Cache) Fill(addr uint64) bool {
	block := addr >> c.blockBits
	setIdx := block & c.setMask
	tag := block >> trailingSetBits(c.setMask)
	set := c.sets[setIdx]
	for _, t := range set {
		if t == tag {
			return false
		}
	}
	if len(set) < c.cfg.Assoc {
		set = append(set, 0)
	} else {
		// Evicting for a prefetch still counts as an eviction; any evicted
		// line's prefetched mark is dropped with it.
		c.stats.Evictions++
		evicted := set[len(set)-1]
		delete(c.prefetched, prefKey{setIdx, evicted})
	}
	copy(set[1:], set)
	set[0] = tag
	c.sets[setIdx] = set
	if c.prefetched == nil {
		c.prefetched = make(map[prefKey]struct{})
	}
	c.prefetched[prefKey{setIdx, tag}] = struct{}{}
	return true
}

type prefKey struct {
	set uint64
	tag uint64
}

func (c *Cache) wasPrefetched(addr uint64) bool {
	if c.prefetched == nil {
		return false
	}
	block := addr >> c.blockBits
	_, ok := c.prefetched[prefKey{block & c.setMask, block >> trailingSetBits(c.setMask)}]
	return ok
}

func (c *Cache) clearPrefetched(addr uint64) {
	if c.prefetched == nil {
		return
	}
	block := addr >> c.blockBits
	delete(c.prefetched, prefKey{block & c.setMask, block >> trailingSetBits(c.setMask)})
}

func trailingSetBits(mask uint64) uint {
	n := uint(0)
	for mask != 0 {
		mask >>= 1
		n++
	}
	return n
}
