// Package cache implements the set-associative cache hierarchy of the CMP
// simulator: private L1 instruction/data caches per core and a shared,
// banked last-level cache, all with true LRU replacement — the configuration
// of Table I of the paper (the role g-cache played in the original Simics
// setup).
//
// The simulator drives caches with sampled synthetic address streams each
// control interval; the resulting miss rates feed the interval-analysis core
// model and, through it, utilization and power.
package cache

import (
	"errors"
	"fmt"
	"math/bits"
)

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity. Must be a power-of-two multiple of
	// BlockBytes*Assoc.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// BlockBytes is the line size.
	BlockBytes int
	// LatencyCycles is the access latency in core cycles.
	LatencyCycles int
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.BlockBytes <= 0 {
		return errors.New("cache: non-positive geometry parameter")
	}
	if c.LatencyCycles < 0 {
		return errors.New("cache: negative latency")
	}
	if bits.OnesCount(uint(c.BlockBytes)) != 1 {
		return fmt.Errorf("cache: block size %d not a power of two", c.BlockBytes)
	}
	if c.SizeBytes%(c.BlockBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache: size %d not divisible by block*assoc", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.BlockBytes * c.Assoc)
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.BlockBytes * c.Assoc) }

// Stats accumulates access counters.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a single set-associative cache with true LRU replacement.
// It is not safe for concurrent use; in the parallel simulator each cache is
// owned by exactly one island goroutine.
type Cache struct {
	cfg       Config
	sets      [][]uint64 // per-set tag list, most recently used first
	setMask   uint64
	blockBits uint
	stats     Stats
	// prefetched marks lines filled by a prefetcher but not yet touched by
	// demand (lazily allocated; nil when no prefetcher is attached).
	prefetched map[prefKey]struct{}
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	c := &Cache{
		cfg:       cfg,
		sets:      make([][]uint64, nsets),
		setMask:   uint64(nsets - 1),
		blockBits: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
	}
	for i := range c.sets {
		c.sets[i] = make([]uint64, 0, cfg.Assoc)
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters without touching cache contents, as done at
// control-interval boundaries.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates all contents and clears statistics.
func (c *Cache) Flush() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.stats = Stats{}
	c.prefetched = nil
}

// Access looks up the block containing addr, updating LRU state and
// counters, and reports whether it hit. On a miss the block is filled,
// evicting the LRU line of its set if needed.
func (c *Cache) Access(addr uint64) bool {
	block := addr >> c.blockBits
	setIdx := block & c.setMask
	tag := block >> bits.TrailingZeros64(c.setMask+1)

	set := c.sets[setIdx]
	c.stats.Accesses++
	for i, t := range set {
		if t == tag {
			// Move to front (most recently used).
			copy(set[1:i+1], set[:i])
			set[0] = tag
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	if len(set) < c.cfg.Assoc {
		set = append(set, 0)
	} else {
		c.stats.Evictions++
		if c.prefetched != nil {
			delete(c.prefetched, prefKey{setIdx, set[len(set)-1]})
		}
	}
	copy(set[1:], set)
	set[0] = tag
	c.sets[setIdx] = set
	return false
}

// Probe reports whether the block containing addr is present without
// updating LRU state or counters.
func (c *Cache) Probe(addr uint64) bool {
	block := addr >> c.blockBits
	setIdx := block & c.setMask
	tag := block >> bits.TrailingZeros64(c.setMask+1)
	for _, t := range c.sets[setIdx] {
		if t == tag {
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, s := range c.sets {
		n += len(s)
	}
	return n
}
