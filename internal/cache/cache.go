// Package cache implements the set-associative cache hierarchy of the CMP
// simulator: private L1 instruction/data caches per core and a shared,
// banked last-level cache, all with true LRU replacement — the configuration
// of Table I of the paper (the role g-cache played in the original Simics
// setup).
//
// The simulator drives caches with sampled synthetic address streams each
// control interval; the resulting miss rates feed the interval-analysis core
// model and, through it, utilization and power.
package cache

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity. Must be a power-of-two multiple of
	// BlockBytes*Assoc.
	SizeBytes int
	// Assoc is the set associativity.
	Assoc int
	// BlockBytes is the line size.
	BlockBytes int
	// LatencyCycles is the access latency in core cycles.
	LatencyCycles int
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Assoc <= 0 || c.BlockBytes <= 0 {
		return errors.New("cache: non-positive geometry parameter")
	}
	if c.LatencyCycles < 0 {
		return errors.New("cache: negative latency")
	}
	if bits.OnesCount(uint(c.BlockBytes)) != 1 {
		return fmt.Errorf("cache: block size %d not a power of two", c.BlockBytes)
	}
	if c.SizeBytes%(c.BlockBytes*c.Assoc) != 0 {
		return fmt.Errorf("cache: size %d not divisible by block*assoc", c.SizeBytes)
	}
	sets := c.SizeBytes / (c.BlockBytes * c.Assoc)
	if bits.OnesCount(uint(sets)) != 1 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int { return c.SizeBytes / (c.BlockBytes * c.Assoc) }

// Stats accumulates access counters.
type Stats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// MissRate returns Misses/Accesses. An interval with no accesses has no
// defined miss rate — returning 0 would make an idle or fully-stalled core
// read as a perfect cache — so the sentinel NaN is returned instead.
// Callers folding the rate into a model must check Accesses (or
// math.IsNaN) first.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return math.NaN()
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// maxOrderWays is the widest associativity the packed LRU order word can
// track: 16 ways of 4 bits each in one uint64. Wider caches fall back to a
// move-to-front tag layout.
const maxOrderWays = 16

// maxPrefWays is the widest associativity the per-set prefetched-line bit
// word supports (one bit per way).
const maxPrefWays = 64

// Cache is a single set-associative cache with true LRU replacement.
//
// Storage is packed: all tags live in one flat array of sets*assoc words
// (indexed set*assoc+way) with lines at fixed way positions, and recency is
// tracked per set in a 64-bit order word of 4-bit way indices, most recent
// first. A hit therefore updates LRU state with a few register-width shifts
// instead of the memmove a move-to-front tag list needs, and an eviction
// reads its victim from the order word's last nibble. Associativities above
// 16 use a move-to-front layout within the same flat array.
//
// It is not safe for concurrent use; in the parallel simulator each cache is
// owned by exactly one island goroutine.
type Cache struct {
	cfg  Config
	tags []uint64 // sets*assoc, indexed set*assoc+way
	// order is the per-set LRU order word: nibble k holds the way index of
	// the k-th most recently used line. Only the first size[s] nibbles are
	// meaningful; higher nibbles may hold stale values. Nil for wide caches.
	order []uint64
	// sigs holds one 8-bit tag signature per way, packed eight ways to a
	// word (sigWords words per set): a lookup SWAR-compares the signatures
	// and only verifies full tags at candidate ways, so most misses never
	// touch the (much larger) tag array. Nil for wide caches.
	sigs []uint64
	pref []uint64 // per-set prefetched-line marks, bit w = way w
	size []int32  // valid ways per set

	setMask   uint64
	setShift  uint // tag shift: block bits consumed by set indexing
	blockBits uint
	assoc     int
	sigWords  int  // signature words per set: (assoc+7)/8
	wide      bool // assoc > maxOrderWays: move-to-front layout
	prefLive  bool // a prefetcher has marked at least one line
	stats     Stats
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	c := &Cache{
		cfg:       cfg,
		tags:      make([]uint64, nsets*cfg.Assoc),
		pref:      make([]uint64, nsets),
		size:      make([]int32, nsets),
		setMask:   uint64(nsets - 1),
		blockBits: uint(bits.TrailingZeros(uint(cfg.BlockBytes))),
		assoc:     cfg.Assoc,
		wide:      cfg.Assoc > maxOrderWays,
	}
	c.setShift = uint(bits.TrailingZeros64(c.setMask + 1))
	if !c.wide {
		c.order = make([]uint64, nsets)
		c.sigWords = (cfg.Assoc + 7) / 8
		c.sigs = make([]uint64, nsets*c.sigWords)
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a copy of the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats clears the counters without touching cache contents, as done at
// control-interval boundaries.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Flush invalidates all contents and clears statistics.
func (c *Cache) Flush() {
	clear(c.size)
	clear(c.order)
	clear(c.sigs)
	clear(c.pref)
	c.prefLive = false
	c.stats = Stats{}
}

// Access looks up the block containing addr, updating LRU state and
// counters, and reports whether it hit. On a miss the block is filled,
// evicting the LRU line of its set if needed.
func (c *Cache) Access(addr uint64) bool {
	block := addr >> c.blockBits
	set := block & c.setMask
	tag := block >> c.setShift
	c.stats.Accesses++
	if c.wide {
		return c.accessWide(set, tag)
	}
	base := int(set) * c.assoc
	n := int(c.size[set])
	ord := c.order[set]
	si := int(set) * c.sigWords
	bcast := (tag & 0xff) * sigLo
	// SWAR-match the packed per-way signatures: candidate ways fall out of
	// a branch-free byte compare, and only candidates load the full tag.
	// The zero-byte trick never misses a true match (borrows can only raise
	// spurious flags, rejected by the verify), so most misses finish here
	// without touching the tag array.
	for k := 0; k < c.sigWords; k++ {
		x := c.sigs[si+k] ^ bcast
		for m := (x - sigLo) &^ x & sigHi; m != 0; m &= m - 1 {
			w := k*8 + bits.TrailingZeros64(m)>>3
			if w < n && c.tags[base+w] == tag {
				c.stats.Hits++
				// Locate way w's nibble in the order word with the same
				// zero-find, then move it to the front with shifts. Stale
				// nibbles sit above every valid one, so the lowest flag is
				// the true rank.
				y := ord ^ uint64(w)*sigNib
				p := uint(bits.TrailingZeros64((y-sigNib)&^y&sigNibHi)) &^ 3
				low := ord & (1<<p - 1)
				c.order[set] = ord&^(1<<(p+4)-1) | low<<4 | uint64(w)
				return true
			}
		}
	}
	c.stats.Misses++
	var way uint64
	if n < c.assoc {
		way = uint64(n)
		c.size[set] = int32(n + 1)
	} else {
		c.stats.Evictions++
		way = ord >> (4 * uint(n-1)) & 0xf
		if c.prefLive {
			c.pref[set] &^= 1 << way
		}
	}
	c.tags[base+int(way)] = tag
	c.order[set] = ord<<4 | way
	c.setSig(si, int(way), tag)
	return false
}

// SWAR constants: byte and nibble lane units and high-bit masks.
const (
	sigLo    = 0x0101010101010101
	sigHi    = 0x8080808080808080
	sigNib   = 0x1111111111111111
	sigNibHi = 0x8888888888888888
)

// setSig stores tag's signature byte for the given way of the set whose
// first signature word is at index si.
func (c *Cache) setSig(si, way int, tag uint64) {
	sh := uint(way&7) * 8
	i := si + way>>3
	c.sigs[i] = c.sigs[i]&^(0xff<<sh) | (tag&0xff)<<sh
}

// accessWide is the Access fallback for associativities the order word
// cannot hold: tags are kept most-recently-used first and rotated in place.
func (c *Cache) accessWide(set, tag uint64) bool {
	base := int(set) * c.assoc
	n := int(c.size[set])
	ways := c.tags[base : base+n : base+n]
	for i, t := range ways {
		if t == tag {
			copy(ways[1:i+1], ways[:i])
			ways[0] = tag
			if c.prefLive {
				c.pref[set] = promoteBit(c.pref[set], uint(i))
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	if n < c.assoc {
		n++
		c.size[set] = int32(n)
		ways = c.tags[base : base+n : base+n]
	} else {
		c.stats.Evictions++
	}
	copy(ways[1:], ways)
	ways[0] = tag
	if c.prefLive {
		// The victim's mark (bit n-1) shifts out; the new line enters clean.
		c.pref[set] = c.pref[set] << 1 & wayMask(n)
	}
	return false
}

// promoteBit moves bit i of a per-way bit word to bit 0, shifting bits
// below it up by one — the bit-word analogue of a move-to-front rotation.
func promoteBit(word uint64, i uint) uint64 {
	b := word >> i & 1
	low := word & (1<<i - 1)
	return word&^(1<<(i+1)-1) | low<<1 | b
}

// wayMask returns a mask of the low n way bits (n ≤ 64).
func wayMask(n int) uint64 {
	return 1<<uint(n) - 1 // n == 64 wraps to ^0 via Go's shift semantics
}

// Probe reports whether the block containing addr is present without
// updating LRU state or counters.
func (c *Cache) Probe(addr uint64) bool {
	block := addr >> c.blockBits
	set := block & c.setMask
	_, ok := c.findWay(set, block>>c.setShift)
	return ok
}

// findWay scans the valid ways of set for tag.
func (c *Cache) findWay(set, tag uint64) (uint, bool) {
	base := int(set) * c.assoc
	ways := c.tags[base : base+int(c.size[set])]
	for w, t := range ways {
		if t == tag {
			return uint(w), true
		}
	}
	return 0, false
}

// Occupancy returns the number of valid lines.
func (c *Cache) Occupancy() int {
	n := 0
	for _, s := range c.size {
		n += int(s)
	}
	return n
}
