package cache

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cpm-sim/cpm/internal/stats"
)

func mustCache(t *testing.T, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func small(t *testing.T) *Cache {
	return mustCache(t, Config{SizeBytes: 1024, Assoc: 2, BlockBytes: 64, LatencyCycles: 1})
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Assoc: 2, BlockBytes: 64},
		{SizeBytes: 1024, Assoc: 0, BlockBytes: 64},
		{SizeBytes: 1024, Assoc: 2, BlockBytes: 60},       // not power of two
		{SizeBytes: 1000, Assoc: 2, BlockBytes: 64},       // not divisible
		{SizeBytes: 64 * 2 * 3, Assoc: 2, BlockBytes: 64}, // 3 sets
		{SizeBytes: 1024, Assoc: 2, BlockBytes: 64, LatencyCycles: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, cfg)
		}
	}
	if err := TableIL1().Validate(); err != nil {
		t.Errorf("Table I L1 config invalid: %v", err)
	}
	if err := TableIL2PerCore().Validate(); err != nil {
		t.Errorf("Table I L2 config invalid: %v", err)
	}
}

func TestTableIGeometry(t *testing.T) {
	if s := TableIL1().Sets(); s != 128 {
		t.Errorf("L1 sets = %d, want 128 (16KB/2-way/64B)", s)
	}
	if s := TableIL2PerCore().Sets(); s != 512 {
		t.Errorf("L2 sets = %d, want 512 (512KB/16-way/64B)", s)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := small(t)
	if c.Access(0x1000) {
		t.Error("first access should miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access should hit")
	}
	// Same block, different byte offset.
	if !c.Access(0x103F) {
		t.Error("same-block access should hit")
	}
	if c.Access(0x1040) {
		t.Error("adjacent block should miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Hits != 2 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way cache; three blocks mapping to the same set evict in LRU order.
	c := small(t) // 8 sets, so stride of 8*64 = 512 bytes conflicts
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU, b is LRU
	c.Access(d) // evicts b
	if !c.Probe(a) {
		t.Error("a should survive (was MRU)")
	}
	if c.Probe(b) {
		t.Error("b should have been evicted (was LRU)")
	}
	if !c.Probe(d) {
		t.Error("d should be resident")
	}
	if ev := c.Stats().Evictions; ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestProbeDoesNotPerturb(t *testing.T) {
	c := small(t)
	c.Access(0)
	c.Access(512) // same set, 0 is LRU
	before := c.Stats()
	if !c.Probe(0) {
		t.Fatal("probe should find resident block")
	}
	if c.Stats() != before {
		t.Error("Probe changed statistics")
	}
	// Probe must not refresh LRU: accessing a third conflicting block still
	// evicts block 0.
	c.Access(1024)
	if c.Probe(0) {
		t.Error("Probe refreshed LRU state")
	}
}

func TestFlushAndOccupancy(t *testing.T) {
	c := small(t)
	for i := uint64(0); i < 10; i++ {
		c.Access(i * 64)
	}
	if c.Occupancy() != 10 {
		t.Errorf("occupancy = %d, want 10", c.Occupancy())
	}
	c.Flush()
	if c.Occupancy() != 0 || c.Stats().Accesses != 0 {
		t.Error("flush should clear contents and stats")
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := small(t)
	c.Access(0x40)
	c.ResetStats()
	if c.Stats().Accesses != 0 {
		t.Error("stats not cleared")
	}
	if !c.Access(0x40) {
		t.Error("contents lost by ResetStats")
	}
}

func TestWorkingSetFitsNoCapacityMisses(t *testing.T) {
	// A working set smaller than capacity touched round-robin has only cold
	// misses under LRU.
	c := mustCache(t, Config{SizeBytes: 4096, Assoc: 4, BlockBytes: 64, LatencyCycles: 1})
	blocks := 4096 / 64
	for pass := 0; pass < 5; pass++ {
		for i := 0; i < blocks; i++ {
			c.Access(uint64(i * 64))
		}
	}
	s := c.Stats()
	if s.Misses != uint64(blocks) {
		t.Errorf("misses = %d, want %d (cold only)", s.Misses, blocks)
	}
}

func TestMissRate(t *testing.T) {
	// Regression: zero-access stats must not read as a perfect cache. The
	// documented sentinel is NaN, which any consumer folding the rate into a
	// model has to handle explicitly.
	var s Stats
	if !math.IsNaN(s.MissRate()) {
		t.Errorf("empty MissRate = %v, want NaN sentinel", s.MissRate())
	}
	s = Stats{Accesses: 10, Misses: 3}
	if s.MissRate() != 0.3 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
	s = Stats{Accesses: 5, Hits: 5}
	if s.MissRate() != 0 {
		t.Errorf("all-hit MissRate = %v, want 0", s.MissRate())
	}
}

// Property (LRU inclusion): with the same set count, a higher-associativity
// LRU cache hits on a superset of accesses — hit count is monotone in
// associativity for any access trace.
func TestLRUInclusionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		sets := 16
		block := 64
		c2, _ := New(Config{SizeBytes: sets * 2 * block, Assoc: 2, BlockBytes: block})
		c4, _ := New(Config{SizeBytes: sets * 4 * block, Assoc: 4, BlockBytes: block})
		for i := 0; i < 2000; i++ {
			addr := uint64(r.Intn(256)) * uint64(block) // heavy set pressure
			h2 := c2.Access(addr)
			h4 := c4.Access(addr)
			if h2 && !h4 {
				return false // violates inclusion
			}
		}
		return c4.Stats().Hits >= c2.Stats().Hits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: counters are always consistent — hits + misses = accesses, and
// occupancy never exceeds capacity.
func TestCounterConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		c, _ := New(Config{SizeBytes: 2048, Assoc: 2, BlockBytes: 64})
		for i := 0; i < 1000; i++ {
			c.Access(uint64(r.Intn(10000)) * 8)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses && c.Occupancy() <= 2048/64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
