package pic

import (
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/control"
	"github.com/cpm-sim/cpm/internal/snapshot"
)

func newAdaptiveController(t *testing.T, plant *islandPlant, acfg AdaptiveConfig) *Controller {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Table = plant.table
	cfg.IslandMaxW = plant.maxW
	cfg.UseOraclePower = true
	cfg.Adaptive = &acfg
	c, err := New(cfg, plant.level)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// driveAdaptive runs the closed loop with a target schedule that steps
// between fractions every few invocations — the excitation the RLS
// estimator needs (a settled loop's Δf is zero and carries no information).
func driveAdaptive(c *Controller, plant *islandPlant, n int, fracs []float64) {
	for k := 0; k < n; k++ {
		c.SetTargetWatts(fracs[(k/7)%len(fracs)] * plant.maxW)
		util, pw := plant.observe()
		lvl := c.Invoke(util, pw)
		plant.apply(lvl)
	}
}

func TestAdaptiveConfigValidation(t *testing.T) {
	plant := defaultPlant()
	bad := []AdaptiveConfig{
		{SeedGain: -1},
		{SeedGain: math.NaN()},
		{Lambda: 1.5},
		{Lambda: -0.1},
		{Period: -3},
		{InitCov: -2},
		{MaxScale: 0.5},
		{SeedGain: 1e6}, // no stable scale bound exists at this plant gain
	}
	for _, acfg := range bad {
		base := DefaultConfig()
		base.Table = plant.table
		base.IslandMaxW = plant.maxW
		base.UseOraclePower = true
		base.Adaptive = &acfg
		if _, err := New(base, plant.level); err == nil {
			t.Errorf("AdaptiveConfig %+v should be rejected", acfg)
		}
	}
}

// The plant slope is exactly observable through the synthetic island (power
// fraction affine in the quantized normalized frequency), so the RLS
// estimate must converge from the paper seed to the true slope, and the
// gains must rescale by seed/â.
func TestAdaptiveEstimateConvergesToPlantSlope(t *testing.T) {
	plant := defaultPlant() // slope 0.6, within the jury-verified region of seed 0.79
	c := newAdaptiveController(t, plant, AdaptiveConfig{Period: 10})
	driveAdaptive(c, plant, 200, []float64{0.35, 0.8, 0.55})

	if !c.Adaptive() {
		t.Fatal("controller is not in adaptive mode")
	}
	if got := c.PlantGainEstimate(); math.Abs(got-plant.slope) > 0.05 {
		t.Errorf("plant-gain estimate %v, want ≈ true slope %v", got, plant.slope)
	}
	wantScale := control.PaperPlantGain / plant.slope
	if got := c.GainScale(); math.Abs(got-wantScale) > 0.1 {
		t.Errorf("gain scale %v, want ≈ seed/slope = %v", got, wantScale)
	}
	if c.AdaptiveFellBack() {
		t.Error("guard tripped inside the verified region")
	}
}

// A plant far outside the jury-verified region must trip the guard: gains
// fall back to the paper design (scale 1) instead of chasing an estimate
// the stability analysis does not cover — and recover once the plant
// returns to the verified region.
func TestAdaptiveGuardFallsBackAndRecovers(t *testing.T) {
	plant := defaultPlant()
	plant.slope, plant.offset = 2.5, 0.1 // well above seed·maxScale ≈ 0.79·2.1
	c := newAdaptiveController(t, plant, AdaptiveConfig{Period: 10, Lambda: 0.9})
	driveAdaptive(c, plant, 120, []float64{0.5, 1.8, 1.0})

	if !c.AdaptiveFellBack() {
		t.Fatalf("guard did not trip at estimate %v", c.PlantGainEstimate())
	}
	if got := c.GainScale(); got != 1 {
		t.Errorf("fallback gain scale %v, want 1", got)
	}

	// The plant drifts back inside the verified region; the estimator
	// follows and the guard releases.
	plant.slope, plant.offset = 0.7, 0.2
	driveAdaptive(c, plant, 300, []float64{0.35, 0.8, 0.55})
	if c.AdaptiveFellBack() {
		t.Errorf("guard still holding at estimate %v after plant returned", c.PlantGainEstimate())
	}
}

// A fixed-gain controller must be bit-identical to an adaptive one whose
// rescale has not yet fired only in its *outputs before the first rescale*;
// what this test pins instead is the basic fixed-gain invariant: without
// Adaptive config, GainScale is 1 and the estimate reads the paper seed.
func TestFixedGainAccessors(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, false)
	if c.Adaptive() {
		t.Error("fixed-gain controller reports adaptive mode")
	}
	if c.GainScale() != 1 {
		t.Errorf("fixed-gain scale %v, want 1", c.GainScale())
	}
	if c.PlantGainEstimate() != control.PaperPlantGain {
		t.Errorf("fixed-gain estimate %v, want paper seed", c.PlantGainEstimate())
	}
}

// Mid-run snapshot/restore of an adaptive controller must resume
// bit-identically: same levels, same frequency state, same estimate — and
// critically the same rescaled PID gains, which are runtime state in
// adaptive mode.
func TestAdaptiveSnapshotResume(t *testing.T) {
	mk := func() (*Controller, *islandPlant) {
		plant := defaultPlant()
		return newAdaptiveController(t, plant, AdaptiveConfig{Period: 10}), plant
	}
	src, srcPlant := mk()
	driveAdaptive(src, srcPlant, 57, []float64{0.35, 0.8, 0.55})

	enc := snapshot.NewEncoder()
	src.Snapshot(enc)

	dst, dstPlant := mk()
	*dstPlant = *srcPlant
	if err := dst.Restore(snapshot.NewDecoder(enc.Bytes())); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 90; k++ {
		frac := []float64{0.35, 0.8, 0.55}[(k/7)%3]
		src.SetTargetWatts(frac * srcPlant.maxW)
		dst.SetTargetWatts(frac * dstPlant.maxW)
		su, sp := srcPlant.observe()
		du, dp := dstPlant.observe()
		sl, dl := src.Invoke(su, sp), dst.Invoke(du, dp)
		if sl != dl {
			t.Fatalf("step %d: levels diverge (%d vs %d)", k, sl, dl)
		}
		srcPlant.apply(sl)
		dstPlant.apply(dl)
	}
	if src.FreqNorm() != dst.FreqNorm() || src.PlantGainEstimate() != dst.PlantGainEstimate() || src.GainScale() != dst.GainScale() {
		t.Errorf("resumed state diverged: fNorm %v vs %v, â %v vs %v, scale %v vs %v",
			src.FreqNorm(), dst.FreqNorm(), src.PlantGainEstimate(), dst.PlantGainEstimate(), src.GainScale(), dst.GainScale())
	}
}

// An adaptive snapshot must not restore into a fixed-gain controller (and
// vice versa): the modes disagree on what the PID gains mean.
func TestAdaptiveSnapshotModeMismatch(t *testing.T) {
	plant := defaultPlant()
	adaptive := newAdaptiveController(t, plant, AdaptiveConfig{})
	fixed := newController(t, plant, false)

	enc := snapshot.NewEncoder()
	adaptive.Snapshot(enc)
	if err := fixed.Restore(snapshot.NewDecoder(enc.Bytes())); err == nil {
		t.Error("adaptive snapshot restored into a fixed-gain controller")
	}

	enc = snapshot.NewEncoder()
	fixed.Snapshot(enc)
	if err := adaptive.Restore(snapshot.NewDecoder(enc.Bytes())); err == nil {
		t.Error("fixed-gain snapshot restored into an adaptive controller")
	}
}

// Reset must clear the adaptive state too: estimate back to the seed,
// scale back to 1, design gains reinstated.
func TestAdaptiveReset(t *testing.T) {
	plant := defaultPlant()
	c := newAdaptiveController(t, plant, AdaptiveConfig{Period: 10})
	driveAdaptive(c, plant, 100, []float64{0.35, 0.8, 0.55})
	if c.GainScale() == 1 {
		t.Fatal("drive did not move the gain scale; test cannot observe Reset")
	}
	c.Reset(plant.level)
	if got := c.PlantGainEstimate(); got != control.PaperPlantGain {
		t.Errorf("estimate after Reset %v, want seed %v", got, control.PaperPlantGain)
	}
	if c.GainScale() != 1 {
		t.Errorf("gain scale after Reset %v, want 1", c.GainScale())
	}
}
