package pic

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/control"
	"github.com/cpm-sim/cpm/internal/power"
)

// TestConfigDefaulting pins the explicit-vs-unset semantics of Config's
// ambiguous zero values: a zero-literal Config keeps the historical
// defaulting, while a DefaultConfig-derived one is taken literally even
// where a field was overwritten back to zero.
func TestConfigDefaulting(t *testing.T) {
	table := power.PentiumM()
	cases := []struct {
		name         string
		cfg          Config
		wantGains    control.Gains
		wantAlpha    float64
		wantDeadband float64
	}{
		{
			name:         "zero literal gets legacy defaults",
			cfg:          Config{},
			wantGains:    control.PaperGains,
			wantAlpha:    1,
			wantDeadband: DefaultDeadbandFrac,
		},
		{
			name:         "DefaultConfig untouched matches legacy",
			cfg:          DefaultConfig(),
			wantGains:    control.PaperGains,
			wantAlpha:    1,
			wantDeadband: DefaultDeadbandFrac,
		},
		{
			name: "explicit zero gains are honoured",
			cfg: func() Config {
				c := DefaultConfig()
				c.Gains = control.Gains{}
				return c
			}(),
			wantGains:    control.Gains{},
			wantAlpha:    1,
			wantDeadband: DefaultDeadbandFrac,
		},
		{
			name: "explicit zero deadband disables it",
			cfg: func() Config {
				c := DefaultConfig()
				c.DeadbandFrac = 0
				return c
			}(),
			wantGains:    control.PaperGains,
			wantAlpha:    1,
			wantDeadband: 0,
		},
		{
			name:         "literal zero deadband still silently defaulted",
			cfg:          Config{Gains: control.PaperGains, SmoothAlpha: 0.5},
			wantGains:    control.PaperGains,
			wantAlpha:    0.5,
			wantDeadband: DefaultDeadbandFrac,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Table = table
			tc.cfg.IslandMaxW = 24
			tc.cfg.UseOraclePower = true
			c, err := New(tc.cfg, 4)
			if err != nil {
				t.Fatal(err)
			}
			if c.cfg.Gains != tc.wantGains {
				t.Errorf("gains = %+v, want %+v", c.cfg.Gains, tc.wantGains)
			}
			if c.cfg.SmoothAlpha != tc.wantAlpha {
				t.Errorf("smooth alpha = %v, want %v", c.cfg.SmoothAlpha, tc.wantAlpha)
			}
			if c.cfg.DeadbandFrac != tc.wantDeadband {
				t.Errorf("deadband = %v, want %v", c.cfg.DeadbandFrac, tc.wantDeadband)
			}
		})
	}
}

// TestExplicitZeroGainsFreezeActuator checks the behavioural consequence of
// an honoured all-zero gain set: the controller never moves, which the
// legacy path made impossible to request.
func TestExplicitZeroGainsFreezeActuator(t *testing.T) {
	plant := defaultPlant()
	cfg := DefaultConfig()
	cfg.Gains = control.Gains{}
	cfg.DeadbandFrac = 0 // isolate the gains: no hold path either
	cfg.Table = plant.table
	cfg.IslandMaxW = plant.maxW
	cfg.UseOraclePower = true
	c, err := New(cfg, plant.level)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTargetWatts(0.3 * plant.maxW) // far from the operating point
	start := plant.level
	for k := 0; k < 50; k++ {
		util, pw := plant.observe()
		plant.apply(c.Invoke(util, pw))
	}
	if plant.level != start {
		t.Errorf("zero-gain controller moved the island from level %d to %d", start, plant.level)
	}
}

// TestExplicitZeroDeadbandAllowsLimitCycle checks DeadbandFrac == 0 from
// DefaultConfig behaves like a negative value: for a target between two
// levels the loop dithers, where the default band would hold.
func TestExplicitZeroDeadbandAllowsLimitCycle(t *testing.T) {
	run := func(deadband float64) int {
		plant := defaultPlant()
		cfg := DefaultConfig()
		cfg.DeadbandFrac = deadband
		cfg.Table = plant.table
		cfg.IslandMaxW = plant.maxW
		cfg.UseOraclePower = true
		c, err := New(cfg, plant.level)
		if err != nil {
			t.Fatal(err)
		}
		// A mid-gap target: representable by no single level exactly.
		c.SetTargetWatts(0.53 * plant.maxW)
		transitions := 0
		prev := plant.level
		for k := 0; k < 200; k++ {
			util, pw := plant.observe()
			plant.apply(c.Invoke(util, pw))
			if k >= 100 && plant.level != prev {
				transitions++
			}
			prev = plant.level
		}
		return transitions
	}
	if got := run(DefaultDeadbandFrac); got != 0 {
		t.Errorf("default deadband: %d settled-state transitions, want 0", got)
	}
	if got := run(0); got == 0 {
		t.Errorf("explicit zero deadband: settled loop never dithered, deadband still active")
	}
}

// TestNegativeSmoothAlphaRejected pins the new validation added alongside
// the explicit-config path. On the legacy literal path a non-positive
// SmoothAlpha keeps meaning "unset" (defaulted to 1, preserving existing
// callers); only an explicit negative is an error.
func TestNegativeSmoothAlphaRejected(t *testing.T) {
	cfg := Config{Table: power.PentiumM(), IslandMaxW: 24, SmoothAlpha: -0.5}
	c, err := New(cfg, 0)
	if err != nil {
		t.Fatalf("legacy negative SmoothAlpha must default, got error: %v", err)
	}
	if c.cfg.SmoothAlpha != 1 {
		t.Errorf("legacy negative SmoothAlpha = %v, want defaulted 1", c.cfg.SmoothAlpha)
	}
	ecfg := DefaultConfig()
	ecfg.Table = power.PentiumM()
	ecfg.IslandMaxW = 24
	ecfg.SmoothAlpha = -0.5
	if _, err := New(ecfg, 0); err == nil {
		t.Error("negative SmoothAlpha accepted on the explicit path")
	}
}
