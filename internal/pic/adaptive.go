package pic

import (
	"errors"
	"fmt"
	"math"

	"github.com/cpm-sim/cpm/internal/control"
)

// AdaptiveConfig enables the adaptive-gain mode of the controller (the
// Chen & Wardi direction named in the roadmap): the plant gain a = dP/df —
// island power fraction per normalized frequency, the paper's a ≈ 0.79 — is
// estimated online by recursive least squares over the controller's own
// observables (the transducer power estimate it already smooths, and the
// frequency command it already applies), and the PID gains are rescaled by
// seed/â so the loop gain a·K stays at its design value as the plant drifts.
//
// A stability guard bounds the adaptation: the paper's Jury analysis proves
// the fixed-gain loop stable for plant drifts up to MaxStableGainScale, so
// whenever â leaves that verified region (or the rescaled loop fails its own
// Jury check), the controller falls back to control.PaperGains until the
// estimate returns.
type AdaptiveConfig struct {
	// SeedGain is the initial plant-gain estimate — normally the sysid fit
	// (core.Calibration.PlantGain). Zero selects control.PaperPlantGain.
	SeedGain float64
	// Lambda is the RLS forgetting factor in (0, 1]: smaller forgets the
	// past faster and tracks plant drift sooner at the cost of estimate
	// variance. Zero selects 0.98.
	Lambda float64
	// Period is the number of controller invocations between gain
	// rescales. Zero selects 20 — one GPM epoch, so gains are stable
	// within an epoch and adapt at provisioning cadence.
	Period int
	// MaxScale bounds how far the estimate may drift from SeedGain before
	// the guard trips, as a factor (the verified region is
	// (seed/MaxScale, seed·MaxScale)). Zero derives the bound from the
	// Jury criterion via control.MaxStableGainScale — the paper's
	// "stable for 0 < g < 2.1" robustness result.
	MaxScale float64
	// InitCov is the initial RLS covariance: larger trusts the seed less
	// and moves the estimate faster on the first observations. Zero
	// selects 1.
	InitCov float64
}

// adaptiveCovMax bounds the RLS covariance so a long excitation drought
// (df ≈ 0 for many epochs under forgetting) cannot inflate it to the point
// where one noisy observation teleports the estimate.
const adaptiveCovMax = 1e3

// adaptiveState is the controller's resolved adaptive-mode state.
type adaptiveState struct {
	// resolved configuration
	seed     float64
	lambda   float64
	period   int
	maxScale float64
	initCov  float64
	base     control.Gains // design gains the scale multiplies

	// RLS state
	aHat float64
	cov  float64

	// measurement pairing: the estimate at invoke k pairs
	// ΔP = ema_k − ema_{k−1} with Δf = norm(level applied at k−1) −
	// norm(level applied at k−2), because each invocation's measurement was
	// taken at the level the previous invocation applied.
	prevEma      float64
	prevNorm     float64
	prevPrevNorm float64
	havePrev     bool
	havePrev2    bool

	invokes  int
	scale    float64 // gain scale currently applied to the PID
	fellBack bool    // true while the guard holds the paper gains
}

// newAdaptiveState resolves and validates an AdaptiveConfig against the
// controller's design gains.
func newAdaptiveState(cfg AdaptiveConfig, base control.Gains) (*adaptiveState, error) {
	ad := &adaptiveState{
		seed:    cfg.SeedGain,
		lambda:  cfg.Lambda,
		period:  cfg.Period,
		initCov: cfg.InitCov,
		base:    base,
	}
	if ad.seed == 0 {
		ad.seed = control.PaperPlantGain
	}
	if !(ad.seed > 0) || math.IsInf(ad.seed, 0) {
		return nil, fmt.Errorf("pic: adaptive seed gain %v must be positive and finite", cfg.SeedGain)
	}
	if ad.lambda == 0 {
		ad.lambda = 0.98
	}
	if !(ad.lambda > 0 && ad.lambda <= 1) {
		return nil, fmt.Errorf("pic: adaptive forgetting factor %v outside (0, 1]", cfg.Lambda)
	}
	if ad.period == 0 {
		ad.period = 20
	}
	if ad.period < 0 {
		return nil, errors.New("pic: negative adaptive period")
	}
	if ad.initCov == 0 {
		ad.initCov = 1
	}
	if !(ad.initCov > 0) || math.IsInf(ad.initCov, 0) {
		return nil, fmt.Errorf("pic: adaptive initial covariance %v must be positive and finite", cfg.InitCov)
	}
	ad.maxScale = cfg.MaxScale
	if ad.maxScale == 0 {
		ms, err := control.MaxStableGainScale(ad.seed, base, 0)
		if err != nil {
			return nil, fmt.Errorf("pic: deriving adaptive stability bound: %w", err)
		}
		ad.maxScale = ms
	}
	if !(ad.maxScale > 1) {
		return nil, fmt.Errorf("pic: adaptive MaxScale %v must exceed 1", ad.maxScale)
	}
	ad.aHat = ad.seed
	ad.cov = ad.initCov
	ad.scale = 1
	return ad, nil
}

// reset returns the adaptive state to its just-constructed condition.
func (ad *adaptiveState) reset() {
	ad.aHat = ad.seed
	ad.cov = ad.initCov
	ad.prevEma, ad.prevNorm, ad.prevPrevNorm = 0, 0, 0
	ad.havePrev, ad.havePrev2 = false, false
	ad.invokes = 0
	ad.scale = 1
	ad.fellBack = false
}

// adaptUpdate runs one RLS step against the freshly smoothed measurement
// and, every period invocations, re-derives the PID gains. Called before the
// PID update so a rescale applies to the current invocation.
func (c *Controller) adaptUpdate(emaNow float64) {
	ad := c.ad
	if ad.havePrev2 {
		df := ad.prevNorm - ad.prevPrevNorm
		dP := emaNow - ad.prevEma
		// Update only under excitation: a zero frequency delta carries no
		// gain information, and dividing by it would poison the estimate.
		if math.Abs(df) > 1e-9 && !math.IsNaN(dP) && !math.IsInf(dP, 0) {
			k := ad.cov * df / (ad.lambda + ad.cov*df*df)
			ad.aHat += k * (dP - ad.aHat*df)
			ad.cov = (ad.cov - k*ad.cov*df) / ad.lambda
			if ad.cov > adaptiveCovMax {
				ad.cov = adaptiveCovMax
			}
		}
	}
	ad.invokes++
	if ad.invokes%ad.period == 0 {
		c.rescaleGains()
	}
}

// rescaleGains applies the certainty-equivalence rule K ← K_design·seed/â,
// holding the design loop gain constant as the plant estimate moves — unless
// the estimate has left the jury-verified region, in which case the
// controller falls back to the paper gains (known stable across the whole
// region) until the estimate returns.
func (c *Controller) rescaleGains() {
	ad := c.ad
	if lo, hi := ad.seed/ad.maxScale, ad.seed*ad.maxScale; !math.IsNaN(ad.aHat) && ad.aHat > lo && ad.aHat < hi {
		r := ad.seed / ad.aHat
		cand := control.Gains{KP: ad.base.KP * r, KI: ad.base.KI * r, KD: ad.base.KD * r}
		// Belt and braces: certify the candidate loop at the estimated
		// plant before applying it, not just the region membership.
		if stable, err := control.IsStablePoly(control.CharacteristicPoly(ad.aHat, cand)); err == nil && stable {
			ad.scale, ad.fellBack = r, false
			c.pid.KP, c.pid.KI, c.pid.KD = cand.KP, cand.KI, cand.KD
			return
		}
	}
	ad.scale, ad.fellBack = 1, true
	c.pid.KP, c.pid.KI, c.pid.KD = control.PaperGains.KP, control.PaperGains.KI, control.PaperGains.KD
}

// adaptShift records this invocation's outputs for the next RLS pairing:
// the level just applied becomes the frequency the *next* measurement will
// have run at, and the current EMA becomes the next delta's baseline.
func (c *Controller) adaptShift() {
	ad := c.ad
	ad.prevPrevNorm, ad.havePrev2 = ad.prevNorm, ad.havePrev
	t := c.cfg.Table
	ad.prevNorm = t.NormFreq(t.Point(c.lastLevel).FreqMHz)
	ad.havePrev = true
	ad.prevEma = c.ema
}

// Adaptive reports whether the controller runs in adaptive-gain mode.
func (c *Controller) Adaptive() bool { return c.ad != nil }

// PlantGainEstimate returns the current RLS plant-gain estimate â, or the
// configured seed when the controller is not adaptive.
func (c *Controller) PlantGainEstimate() float64 {
	if c.ad == nil {
		return control.PaperPlantGain
	}
	return c.ad.aHat
}

// GainScale returns the gain scale currently applied to the PID (1 for a
// fixed-gain controller, and while the stability guard holds the fallback).
func (c *Controller) GainScale() float64 {
	if c.ad == nil {
		return 1
	}
	return c.ad.scale
}

// AdaptiveFellBack reports whether the stability guard is currently holding
// the paper gains because the estimate left the jury-verified region.
func (c *Controller) AdaptiveFellBack() bool { return c.ad != nil && c.ad.fellBack }
