package pic

import "testing"

// TestInvokeHookFiresOnBothPaths checks the hook fires on the deadband hold
// path as well as the normal PID path, carrying the level Invoke returned.
func TestInvokeHookFiresOnBothPaths(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, false)
	c.SetTargetWatts(0.55 * plant.maxW)

	var calls int
	var lastLevel int
	var lastTarget, lastEst float64
	c.SetInvokeHook(func(targetFrac, estFrac float64, level int) {
		calls++
		lastTarget, lastEst, lastLevel = targetFrac, estFrac, level
	})

	const steps = 40
	for k := 0; k < steps; k++ {
		util, powW := plant.observe()
		lvl := c.Invoke(util, powW)
		if lvl != lastLevel {
			t.Fatalf("step %d: hook saw level %d, Invoke returned %d", k, lastLevel, lvl)
		}
		if lastTarget != c.TargetFrac() {
			t.Fatalf("step %d: hook saw target %v, want %v", k, lastTarget, c.TargetFrac())
		}
		if lastEst < 0 || lastEst > 1.5 {
			t.Fatalf("step %d: implausible estimate fraction %v", k, lastEst)
		}
		plant.apply(lvl)
	}
	if calls != steps {
		t.Fatalf("hook fired %d times over %d invocations", calls, steps)
	}

	// Converged controllers sit in the deadband hold path; the hook must
	// keep firing there too, so verify a few more settled invocations.
	settled := calls
	for k := 0; k < 5; k++ {
		util, powW := plant.observe()
		plant.apply(c.Invoke(util, powW))
	}
	if calls != settled+5 {
		t.Fatalf("hook fired %d times while settled, want %d", calls-settled, 5)
	}

	c.SetInvokeHook(nil)
	util, powW := plant.observe()
	c.Invoke(util, powW)
	if calls != settled+5 {
		t.Error("detached hook still fired")
	}
}

// TestInvokeHookFanOut pins the Add/Set semantics: Add subscribes alongside
// existing hooks, Set replaces them all, Set(nil) detaches all.
func TestInvokeHookFanOut(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, false)
	step := func() {
		util, powW := plant.observe()
		plant.apply(c.Invoke(util, powW))
	}
	var a, b, s int
	c.AddInvokeHook(func(float64, float64, int) { a++ })
	c.AddInvokeHook(func(float64, float64, int) { b++ })
	c.AddInvokeHook(nil) // ignored
	step()
	if a != 1 || b != 1 {
		t.Fatalf("added hooks fired %d/%d times, want 1/1", a, b)
	}
	c.SetInvokeHook(func(float64, float64, int) { s++ })
	step()
	if a != 1 || b != 1 || s != 1 {
		t.Fatalf("after Set: fired %d/%d/%d, want 1/1/1 (Set must replace)", a, b, s)
	}
	c.SetInvokeHook(nil)
	step()
	if a != 1 || b != 1 || s != 1 {
		t.Error("Set(nil) left a hook attached")
	}
}
