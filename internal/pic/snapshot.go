package pic

import "github.com/cpm-sim/cpm/internal/snapshot"

// Snapshot appends the controller's complete dynamic state: the PID's
// accumulator and derivative memory, the continuous frequency state, the
// provisioned target, the measurement EMA with its primed flag, and the
// last applied DVFS level. Configuration (gains, table, transducer) is
// construction-time and not captured; invoke hooks are observers and are
// re-attached by whoever rebuilds the stack.
func (c *Controller) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagPIC)
	c.pid.Snapshot(e)
	e.F64(c.fNorm)
	e.F64(c.targetFrac)
	e.F64(c.ema)
	e.Bool(c.emaPrimed)
	e.Int(c.lastLevel)
}

// Restore reads state written by Snapshot, validating the level against
// the controller's table.
func (c *Controller) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagPIC)
	if err := c.pid.Restore(d); err != nil {
		return err
	}
	fNorm := d.F64()
	targetFrac := d.F64()
	ema := d.F64()
	emaPrimed := d.Bool()
	lastLevel := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if lastLevel != c.cfg.Table.ClampLevel(lastLevel) {
		return snapshot.ShapeErrorf("pic level %d outside the DVFS table", lastLevel)
	}
	c.fNorm = fNorm
	c.targetFrac = targetFrac
	c.ema = ema
	c.emaPrimed = emaPrimed
	c.lastLevel = lastLevel
	return nil
}
