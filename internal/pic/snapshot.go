package pic

import (
	"github.com/cpm-sim/cpm/internal/control"
	"github.com/cpm-sim/cpm/internal/snapshot"
)

// Snapshot appends the controller's complete dynamic state: the PID's
// accumulator and derivative memory, the continuous frequency state, the
// provisioned target, the measurement EMA with its primed flag, the last
// applied DVFS level, and — in adaptive-gain mode — the RLS estimator and
// rescale state. Configuration (gains, table, transducer) is
// construction-time and not captured; invoke hooks are observers and are
// re-attached by whoever rebuilds the stack.
func (c *Controller) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagPIC)
	c.pid.Snapshot(e)
	e.F64(c.fNorm)
	e.F64(c.targetFrac)
	e.F64(c.ema)
	e.Bool(c.emaPrimed)
	e.Int(c.lastLevel)
	e.Bool(c.ad != nil)
	if c.ad != nil {
		ad := c.ad
		e.F64(ad.aHat)
		e.F64(ad.cov)
		e.F64(ad.prevEma)
		e.F64(ad.prevNorm)
		e.F64(ad.prevPrevNorm)
		e.Bool(ad.havePrev)
		e.Bool(ad.havePrev2)
		e.Int(ad.invokes)
		e.F64(ad.scale)
		e.Bool(ad.fellBack)
	}
}

// Restore reads state written by Snapshot, validating the level against
// the controller's table.
func (c *Controller) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagPIC)
	if err := c.pid.Restore(d); err != nil {
		return err
	}
	fNorm := d.F64()
	targetFrac := d.F64()
	ema := d.F64()
	emaPrimed := d.Bool()
	lastLevel := d.Int()
	hadAdaptive := d.Bool()
	var ad adaptiveState
	if hadAdaptive {
		ad.aHat = d.F64()
		ad.cov = d.F64()
		ad.prevEma = d.F64()
		ad.prevNorm = d.F64()
		ad.prevPrevNorm = d.F64()
		ad.havePrev = d.Bool()
		ad.havePrev2 = d.Bool()
		ad.invokes = d.Int()
		ad.scale = d.F64()
		ad.fellBack = d.Bool()
	}
	if err := d.Err(); err != nil {
		return err
	}
	if lastLevel != c.cfg.Table.ClampLevel(lastLevel) {
		return snapshot.ShapeErrorf("pic level %d outside the DVFS table", lastLevel)
	}
	if hadAdaptive != (c.ad != nil) {
		return snapshot.ShapeErrorf("snapshot pic adaptive-mode %v, controller %v", hadAdaptive, c.ad != nil)
	}
	c.fNorm = fNorm
	c.targetFrac = targetFrac
	c.ema = ema
	c.emaPrimed = emaPrimed
	c.lastLevel = lastLevel
	if c.ad != nil {
		if ad.invokes < 0 {
			return snapshot.ShapeErrorf("negative pic adaptive invoke count %d", ad.invokes)
		}
		c.ad.aHat = ad.aHat
		c.ad.cov = ad.cov
		c.ad.prevEma = ad.prevEma
		c.ad.prevNorm = ad.prevNorm
		c.ad.prevPrevNorm = ad.prevPrevNorm
		c.ad.havePrev = ad.havePrev
		c.ad.havePrev2 = ad.havePrev2
		c.ad.invokes = ad.invokes
		c.ad.scale = ad.scale
		c.ad.fellBack = ad.fellBack
		// The PID's gains are runtime state in adaptive mode (the PID
		// snapshot captures only accumulator and memory): re-derive them
		// from the restored rescale state.
		if c.ad.fellBack {
			c.pid.KP, c.pid.KI, c.pid.KD = control.PaperGains.KP, control.PaperGains.KI, control.PaperGains.KD
		} else {
			b, r := c.ad.base, c.ad.scale
			c.pid.KP, c.pid.KI, c.pid.KD = b.KP*r, b.KI*r, b.KD*r
		}
	}
	return nil
}
