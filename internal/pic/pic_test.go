package pic

import (
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/control"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sensor"
)

// islandPlant is a synthetic island for closed-loop tests: actual power is
// an affine function of the *quantized* operating point, and utilization is
// chosen so the identity transducer is exact. The static map's slope is the
// full-range power swing, which plays the role of the plant gain over the
// normalized frequency axis.
type islandPlant struct {
	table  *power.DVFSTable
	maxW   float64
	slope  float64 // power-fraction swing over the DVFS range
	offset float64 // power fraction at the lowest level
	level  int
}

func (p *islandPlant) apply(level int) {
	p.level = p.table.ClampLevel(level)
}

// observe returns (meanUtil, powerW) at the current level.
func (p *islandPlant) observe() (float64, float64) {
	fn := p.table.NormFreq(p.table.Point(p.level).FreqMHz)
	frac := p.offset + p.slope*fn
	return frac, frac * p.maxW // identity transducer: util == power frac
}

func newController(t *testing.T, plant *islandPlant, oracle bool) *Controller {
	t.Helper()
	// The calibrated estimator matches the plant exactly: per-level power
	// intercepts with no utilization term (the synthetic plant's power is
	// purely level-determined).
	base := make([]float64, plant.table.Levels())
	for l := range base {
		base[l] = plant.offset + plant.slope*plant.table.NormFreq(plant.table.Point(l).FreqMHz)
	}
	c, err := New(Config{
		Gains:          control.PaperGains,
		Table:          plant.table,
		IslandMaxW:     plant.maxW,
		Transducer:     sensor.LevelTransducer{Base: base},
		UseOraclePower: oracle,
	}, plant.level)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func defaultPlant() *islandPlant {
	return &islandPlant{table: power.PentiumM(), maxW: 24, slope: 0.6, offset: 0.2, level: 7}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Table: nil, IslandMaxW: 24}, 0); err == nil {
		t.Error("nil table should be rejected")
	}
	if _, err := New(Config{Table: power.PentiumM(), IslandMaxW: 0}, 0); err == nil {
		t.Error("zero island max power should be rejected")
	}
}

func TestDefaultGainsApplied(t *testing.T) {
	c, err := New(Config{Table: power.PentiumM(), IslandMaxW: 24}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-value gains must fall back to the paper design.
	if c.cfg.Gains != control.PaperGains {
		t.Errorf("gains = %+v, want paper defaults", c.cfg.Gains)
	}
}

func TestTargetConversion(t *testing.T) {
	c := newController(t, defaultPlant(), false)
	c.SetTargetWatts(12)
	if math.Abs(c.TargetFrac()-0.5) > 1e-12 {
		t.Errorf("target frac = %v, want 0.5", c.TargetFrac())
	}
	if math.Abs(c.TargetWatts()-12) > 1e-12 {
		t.Errorf("target watts = %v", c.TargetWatts())
	}
	c.SetTargetWatts(-5)
	if c.TargetFrac() != 0 {
		t.Error("negative budget should clamp to 0")
	}
}

// track runs the closed loop for n invocations and returns the power-
// fraction trajectory.
func track(c *Controller, plant *islandPlant, n int) []float64 {
	out := make([]float64, n)
	for k := 0; k < n; k++ {
		util, pw := plant.observe()
		out[k] = pw / plant.maxW
		plant.apply(c.Invoke(util, pw))
	}
	return out
}

func TestTracksTargetWithinQuantization(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, false)
	c.SetTargetWatts(0.55 * plant.maxW)
	traj := track(c, plant, 40)
	// Quantization limit: adjacent levels differ by slope/(levels-1) in
	// power fraction.
	quantum := plant.slope / float64(plant.table.Levels()-1)
	final := traj[len(traj)-1]
	if math.Abs(final-0.55) > quantum {
		t.Errorf("settled at %.3f, target 0.55, quantum %.3f", final, quantum)
	}
}

// The paper's §IV claims: settling within 5–6 PIC invocations and overshoot
// within ~2% of the target for GPM-sized budget steps, with the quantized
// actuator. This is the closed-loop (controller + quantization) version of
// the control-package envelope test.
func TestPaperEnvelopeWithQuantizedActuator(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, false)

	// Converge at an operating point first.
	c.SetTargetWatts(0.50 * plant.maxW)
	track(c, plant, 30)

	// GPM-sized step: +3% of island max.
	target := 0.53
	c.SetTargetWatts(target * plant.maxW)
	traj := track(c, plant, 12)

	peak := 0.0
	for _, v := range traj {
		if v > peak {
			peak = v
		}
	}
	overshoot := (peak - target) / target
	if overshoot > 0.04 {
		t.Errorf("overshoot = %.4f of target, paper envelope ≈0.02–0.04", overshoot)
	}
	// Settle: stay within quantization+2% band of target afterwards.
	quantum := plant.slope / float64(plant.table.Levels()-1)
	band := 0.02*target + quantum/2
	for k := 6; k < len(traj); k++ {
		if math.Abs(traj[k]-target) > band {
			t.Errorf("not settled at invocation %d: %.4f vs target %.4f (band %.4f)", k, traj[k], target, band)
		}
	}
}

func TestOracleModeTracksToo(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, true)
	c.SetTargetWatts(0.6 * plant.maxW)
	traj := track(c, plant, 40)
	quantum := plant.slope / float64(plant.table.Levels()-1)
	if math.Abs(traj[len(traj)-1]-0.6) > quantum {
		t.Errorf("oracle mode settled at %.3f", traj[len(traj)-1])
	}
}

func TestUnreachablyHighTargetPinsTopWithoutWindup(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, false)
	// Demand more than the island can consume (offset+slope = 0.8 max).
	c.SetTargetWatts(0.95 * plant.maxW)
	track(c, plant, 100)
	if plant.level != plant.table.Levels()-1 {
		t.Errorf("level = %d, want pinned at top", plant.level)
	}
	if c.FreqNorm() < 0.999 {
		t.Errorf("fNorm = %v, want saturated at 1", c.FreqNorm())
	}
	// Now drop the target sharply; recovery must be fast despite the long
	// saturation (anti-windup).
	c.SetTargetWatts(0.30 * plant.maxW)
	traj := track(c, plant, 15)
	settled := false
	quantum := plant.slope / float64(plant.table.Levels()-1)
	for k := 0; k < len(traj); k++ {
		if math.Abs(traj[k]-0.30) <= quantum {
			settled = true
			break
		}
	}
	if !settled {
		t.Errorf("did not recover from saturation within 15 invocations: %v", traj)
	}
}

func TestUnreachablyLowTargetPinsBottom(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, false)
	c.SetTargetWatts(0.05 * plant.maxW) // below the 0.2 floor
	track(c, plant, 60)
	if plant.level != 0 {
		t.Errorf("level = %d, want pinned at bottom", plant.level)
	}
	if c.FreqNorm() > 0.001 {
		t.Errorf("fNorm = %v, want saturated at 0", c.FreqNorm())
	}
}

func TestResetClearsState(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, false)
	c.SetTargetWatts(0.55 * plant.maxW)
	track(c, plant, 20)
	c.Reset(plant.level)
	// After a full reset the controller is indistinguishable from a fresh
	// one constructed at the same level: identical inputs produce identical
	// outputs with no manual field alignment. (The old Reset cleared only
	// the PID, so this test had to sync fNorm and the target by hand.)
	fresh := newController(t, plant, false)
	c.SetTargetWatts(0.55 * plant.maxW)
	fresh.SetTargetWatts(0.55 * plant.maxW)
	for k := 0; k < 10; k++ {
		u, p := plant.observe()
		lc, lf := c.Invoke(u, p), fresh.Invoke(u, p)
		if lc != lf {
			t.Fatalf("post-reset divergence at invocation %d: reset chose %d, fresh chose %d", k, lc, lf)
		}
		plant.apply(lc)
	}
}

// TestResetFullStateTable pins field by field what Reset clears. The old
// implementation reset only the PID; each row below names a field that
// leaked across the documented "restart an epoch" use and the value a
// fresh controller would hold.
func TestResetFullStateTable(t *testing.T) {
	const resetLevel = 2
	plant := defaultPlant()
	freshNorm := plant.table.NormFreq(plant.table.Point(resetLevel).FreqMHz)
	cases := []struct {
		name string
		get  func(*Controller) float64
		want float64
	}{
		{"pid integrator", func(c *Controller) float64 { return c.Integrator() }, 0},
		{"ema", func(c *Controller) float64 { return c.ema }, 0},
		{"ema primed", func(c *Controller) float64 { return b2f(c.emaPrimed) }, 0},
		{"target frac", func(c *Controller) float64 { return c.TargetFrac() }, 0},
		{"last level", func(c *Controller) float64 { return float64(c.lastLevel) }, resetLevel},
		{"freq norm", func(c *Controller) float64 { return c.FreqNorm() }, freshNorm},
		{"pid frozen", func(c *Controller) float64 { return b2f(c.pid.Frozen) }, 0},
	}
	// Dirty a controller: converged loop state in every field.
	p := *plant
	c := newController(t, &p, false)
	c.SetTargetWatts(0.55 * p.maxW)
	track(c, &p, 20)
	for _, tc := range cases {
		if tc.name == "pid frozen" {
			continue // may legitimately end a tracking run unfrozen
		}
		if got := tc.get(c); got == tc.want {
			t.Logf("field %q already at its reset value before Reset (weak row)", tc.name)
		}
	}
	c.Reset(resetLevel)
	for _, tc := range cases {
		if got := tc.get(c); got != tc.want {
			t.Errorf("after Reset, %s = %v, want %v (field leaked)", tc.name, got, tc.want)
		}
	}
	// Out-of-range initial levels clamp like New.
	c.Reset(-5)
	if c.lastLevel != 0 {
		t.Errorf("Reset(-5) level = %d, want clamped to 0", c.lastLevel)
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// TestSingleLevelTable drives the degenerate one-point DVFS table through
// New and Invoke: the old clampToCapture computed a ±Inf capture half-width
// (0.5/(levels-1)) and poisoned fNorm the first time the deadband held.
func TestSingleLevelTable(t *testing.T) {
	tbl, err := power.NewDVFSTable([]power.OperatingPoint{{FreqMHz: 1000, VoltageV: 1.1}})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{
		Table:      tbl,
		IslandMaxW: 10,
		Transducer: sensor.LevelTransducer{Base: []float64{0.5}},
	}, 0)
	if err != nil {
		t.Fatalf("New with single-level table: %v", err)
	}
	if math.IsNaN(c.FreqNorm()) || math.IsInf(c.FreqNorm(), 0) {
		t.Fatalf("initial fNorm = %v, want finite", c.FreqNorm())
	}
	c.SetTargetWatts(5) // exactly the estimate: lands in the deadband hold
	for k := 0; k < 30; k++ {
		if lvl := c.Invoke(0.5, 5); lvl != 0 {
			t.Fatalf("invocation %d chose level %d on a 1-level table", k, lvl)
		}
		if math.IsNaN(c.FreqNorm()) || math.IsInf(c.FreqNorm(), 0) {
			t.Fatalf("invocation %d poisoned fNorm to %v", k, c.FreqNorm())
		}
	}
	// Off-target budgets exercise the non-deadband path too.
	c.SetTargetWatts(2)
	for k := 0; k < 10; k++ {
		if lvl := c.Invoke(0.5, 5); lvl != 0 {
			t.Fatalf("level %d on a 1-level table", lvl)
		}
	}
	if math.IsNaN(c.FreqNorm()) || math.IsInf(c.FreqNorm(), 0) {
		t.Fatalf("fNorm = %v after off-target tracking", c.FreqNorm())
	}
}

// TestSetTargetWattsRejectsNonFinite: NaN/±Inf budgets must not poison the
// target — the previous finite target is held.
func TestSetTargetWattsRejectsNonFinite(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, false)
	c.SetTargetWatts(12)
	want := c.TargetFrac()
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		c.SetTargetWatts(w)
		if got := c.TargetFrac(); got != want {
			t.Errorf("SetTargetWatts(%v) changed target frac to %v, want held at %v", w, got, want)
		}
	}
	// The controller keeps tracking the held target afterwards.
	c.SetTargetWatts(math.NaN())
	traj := track(c, plant, 40)
	if final := traj[len(traj)-1]; math.IsNaN(final) {
		t.Error("loop state went NaN after a NaN budget")
	}
}

// Inside the deadband the controller must hold its level — no limit cycle —
// when a level lands within the hold window of the target.
func TestDeadbandSuppressesLimitCycle(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, false)
	// Level 4 delivers 0.543 of max; a 0.54 target leaves e = -0.003,
	// inside the hold window.
	c.SetTargetWatts(0.54 * plant.maxW)
	track(c, plant, 40) // converge
	levels := map[int]bool{}
	for k := 0; k < 40; k++ {
		util, pw := plant.observe()
		plant.apply(c.Invoke(util, pw))
		levels[plant.level] = true
	}
	if len(levels) > 1 {
		t.Errorf("steady state toggles between %d levels — limit cycle not suppressed", len(levels))
	}
}

// Targets in neither bracketing level's hold window dither — but the dither
// must stay bounded to the two adjacent levels (never a wider excursion).
func TestGapTargetsDitherBounded(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, false)
	// 0.52 of max sits between level 3 (0.457) and level 4 (0.543) outside
	// both hold windows.
	c.SetTargetWatts(0.52 * plant.maxW)
	track(c, plant, 40)
	levels := map[int]bool{}
	for k := 0; k < 60; k++ {
		util, pw := plant.observe()
		plant.apply(c.Invoke(util, pw))
		levels[plant.level] = true
	}
	for l := range levels {
		if l < 3 || l > 4 {
			t.Errorf("dither escaped the bracketing levels: saw level %d", l)
		}
	}
}

// The deadband is asymmetric: steady power above target by more than a third
// of the band must still be corrected downward.
func TestDeadbandAsymmetryCorrectsOverage(t *testing.T) {
	plant := defaultPlant()
	c := newController(t, plant, false)
	c.SetTargetWatts(0.50 * plant.maxW)
	track(c, plant, 40)
	// Drop the target so the current level sits clearly above it.
	c.SetTargetWatts(0.42 * plant.maxW)
	traj := track(c, plant, 15)
	final := traj[len(traj)-1]
	if final > 0.42+0.6/7 {
		t.Errorf("controller held %.3f despite target 0.42 — overage not corrected", final)
	}
}

// With SmoothAlpha < 1 the measurement is low-passed: a one-interval spike
// in utilization must move the internal estimate by only alpha of the jump.
func TestSmoothingFiltersMeasurementSpikes(t *testing.T) {
	plant := defaultPlant()
	cfg := Config{
		Table:       plant.table,
		IslandMaxW:  plant.maxW,
		Transducer:  sensorIdentity{},
		SmoothAlpha: 0.25,
	}
	c, err := New(cfg, plant.level)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTargetWatts(0.5 * plant.maxW)
	// Feed a steady reading, then one spike; with alpha=0.25 the spike
	// contributes only a quarter.
	for k := 0; k < 30; k++ {
		c.Invoke(0.5, 0)
	}
	before := c.ema
	c.Invoke(0.9, 0)
	after := c.ema
	jump := after - before
	if jump < 0.05 || jump > 0.15 {
		t.Errorf("EMA moved by %.3f on a 0.4 spike with alpha 0.25, want ≈0.1", jump)
	}
}

// sensorIdentity is an Estimator returning the utilization unchanged.
type sensorIdentity struct{}

func (sensorIdentity) EstimatePowerFrac(u float64, _ int) float64 { return u }
