// Package pic implements the Local Per-Island Controller of §II-D: a
// discrete PID controller that caps one voltage/frequency island's power at
// the budget provisioned by the Global Power Manager.
//
// Each invocation the controller:
//
//  1. reads the island's mean processor utilization (the performance-counter
//     observable),
//  2. converts it to estimated power through the linear transducer
//     P = k₀·U + k₁ of Figure 6,
//  3. computes the tracking error against the GPM-provisioned budget,
//  4. produces a frequency delta via the PID of Equation (7), and
//  5. quantizes the accumulated frequency target onto the island's 8-entry
//     DVFS table.
//
// All power quantities inside the controller are fractions of the island's
// maximum power, and frequency is normalized to [0, 1] over the DVFS range —
// in these units the identified plant gain lands near the paper's a ≈ 0.79
// and the paper's PID gains (0.4, 0.4, 0.3) apply unchanged.
package pic

import (
	"errors"
	"math"

	"github.com/cpm-sim/cpm/internal/control"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sensor"
)

// Config parameterizes a controller.
type Config struct {
	// Gains are the PID design parameters (control.PaperGains by default).
	Gains control.Gains
	// Table is the island's DVFS table.
	Table *power.DVFSTable
	// IslandMaxW is the island's maximum power in watts, the unit converter
	// between GPM budgets (watts) and internal fractions.
	IslandMaxW float64
	// Transducer converts the measured utilization (plus the level the
	// controller itself applied) to an estimated power fraction.
	Transducer sensor.Estimator
	// UseOraclePower, when true, bypasses the transducer and feeds the
	// measured power back directly — an ablation mode quantifying how much
	// accuracy the utilization proxy costs.
	UseOraclePower bool
	// SmoothAlpha is the exponential-moving-average coefficient applied to
	// the feedback measurement (1 = no smoothing, smaller = smoother).
	// Zero selects the default of 1: with the operating-point-aware
	// transducer, smoothing buys no tracking accuracy and only adds loop
	// lag; the knob remains for sensitivity studies.
	SmoothAlpha float64
	// Adaptive, when non-nil, runs the controller in adaptive-gain mode:
	// the plant gain dP/df is estimated online by recursive least squares
	// and the PID gains rescaled to hold the design loop gain, with a
	// Jury-criterion stability guard (see AdaptiveConfig). Gains then names
	// the *design* gains the scale multiplies.
	Adaptive *AdaptiveConfig
	// DeadbandFrac is the upper tracking-error deadband as a fraction of
	// island max power (default 0.045 — about half the power gap between
	// adjacent DVFS levels). With a quantized actuator, integral action on
	// an error smaller than one level step can correct produces a
	// permanent limit cycle between the two bracketing levels; inside the
	// band the controller holds its level and freezes the integrator. The
	// band is asymmetric (this is a power *cap*): undershoot up to the full
	// band is held, overshoot only up to a third of it. Targets that land
	// in neither level's hold window dither between the two bracketing
	// levels by design — bounded, and preferable to ignoring sub-quantum
	// budget changes, which a hold window wider than the level quantum
	// would cause. Negative disables the deadband.
	DeadbandFrac float64

	// explicit marks a Config that came from DefaultConfig: New takes its
	// fields literally instead of applying the legacy zero-value defaulting,
	// so all-zero Gains and DeadbandFrac == 0 are honoured as written. A
	// zero-literal Config keeps the historical defaulting behaviour.
	explicit bool
}

// DefaultDeadbandFrac is the deadband New applies on the legacy zero-value
// Config path — about half the power gap between adjacent DVFS levels.
const DefaultDeadbandFrac = 0.045

// DefaultConfig returns a Config pre-filled with the package defaults
// (PaperGains, no smoothing, DefaultDeadbandFrac) and marked explicit:
// every field a caller then overwrites — including zero values such as
// all-zero Gains (no control action) or DeadbandFrac 0 (deadband disabled,
// like any negative value) — is taken literally by New. This resolves the
// zero-value ambiguity of literal Configs, where those settings were
// silently replaced by the defaults and could not be requested at all.
func DefaultConfig() Config {
	return Config{
		Gains:        control.PaperGains,
		SmoothAlpha:  1,
		DeadbandFrac: DefaultDeadbandFrac,
		explicit:     true,
	}
}

// Controller is one island's PIC. Not safe for concurrent use.
type Controller struct {
	cfg   Config
	pid   *control.PID
	fNorm float64
	// targetFrac is the provisioned budget as a fraction of island max.
	targetFrac float64
	// ema is the smoothed feedback estimate; primed on first measurement.
	ema       float64
	emaPrimed bool
	// lastLevel is the DVFS level the controller most recently applied —
	// the level the incoming measurement was taken at.
	lastLevel int
	// ad is the adaptive-gain state; nil for fixed-gain controllers.
	ad *adaptiveState

	invokeHooks []func(targetFrac, estFrac float64, level int)
}

// SetInvokeHook installs a callback invoked after every Invoke with the
// island's target fraction, the (smoothed) feedback power estimate, and the
// chosen DVFS level — the pic-layer attachment point for fine-grained
// tracking observers. Set replaces every previously installed hook; a nil
// hook detaches them all. Not safe to call concurrently with Invoke.
func (c *Controller) SetInvokeHook(fn func(targetFrac, estFrac float64, level int)) {
	c.invokeHooks = c.invokeHooks[:0]
	if fn != nil {
		c.invokeHooks = append(c.invokeHooks, fn)
	}
}

// AddInvokeHook appends a hook without disturbing the ones already
// installed, so independent observers (telemetry, tests) can subscribe to
// the same controller. A nil hook is ignored. Not safe to call concurrently
// with Invoke.
func (c *Controller) AddInvokeHook(fn func(targetFrac, estFrac float64, level int)) {
	if fn != nil {
		c.invokeHooks = append(c.invokeHooks, fn)
	}
}

// New builds a controller starting from the given initial DVFS level.
func New(cfg Config, initialLevel int) (*Controller, error) {
	if cfg.Table == nil {
		return nil, errors.New("pic: nil DVFS table")
	}
	if cfg.IslandMaxW <= 0 {
		return nil, errors.New("pic: non-positive island max power")
	}
	if !cfg.explicit {
		// Legacy zero-value defaulting for literal Configs. Configs from
		// DefaultConfig skip this: their fields are explicit requests.
		if cfg.Gains == (control.Gains{}) {
			cfg.Gains = control.PaperGains
		}
		if cfg.SmoothAlpha <= 0 {
			cfg.SmoothAlpha = 1
		}
		if cfg.DeadbandFrac == 0 {
			cfg.DeadbandFrac = DefaultDeadbandFrac
		}
	}
	if cfg.SmoothAlpha < 0 {
		return nil, errors.New("pic: negative SmoothAlpha")
	}
	if cfg.SmoothAlpha > 1 {
		cfg.SmoothAlpha = 1
	}
	pid := control.NewPID(cfg.Gains.KP, cfg.Gains.KI, cfg.Gains.KD)
	// Bound the integral accumulator: the tracking error is at most 1 in
	// island-fraction units, so a few units of headroom cover any
	// legitimate transient without allowing unbounded windup.
	pid.IntMin, pid.IntMax = -3, 3
	c := &Controller{cfg: cfg, pid: pid, lastLevel: cfg.Table.ClampLevel(initialLevel)}
	op := cfg.Table.Point(c.lastLevel)
	c.fNorm = cfg.Table.NormFreq(op.FreqMHz)
	if cfg.Adaptive != nil {
		ad, err := newAdaptiveState(*cfg.Adaptive, cfg.Gains)
		if err != nil {
			return nil, err
		}
		c.ad = ad
	}
	return c, nil
}

// SetTargetWatts installs the GPM-provisioned power budget. The controller
// state (integrator, frequency target) carries across budget changes, as a
// budget update is a reference step, not a restart.
//
// Non-finite budgets are ignored and the previous target held: a NaN or
// ±Inf target would otherwise poison the tracking error — and through it
// the integrator and EMA — permanently, since every comparison against NaN
// is false and no later finite budget can flush the accumulated state.
func (c *Controller) SetTargetWatts(w float64) {
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return
	}
	f := w / c.cfg.IslandMaxW
	if f < 0 {
		f = 0
	}
	c.targetFrac = f
}

// TargetWatts returns the current budget in watts.
func (c *Controller) TargetWatts() float64 { return c.targetFrac * c.cfg.IslandMaxW }

// TargetFrac returns the current budget as a fraction of island max power.
func (c *Controller) TargetFrac() float64 { return c.targetFrac }

// Invoke runs one controller invocation. meanUtil is the island's measured
// utilization; oraclePowerW is the measured island power, used only in the
// UseOraclePower ablation. It returns the DVFS level the actuator should
// apply for the next interval.
func (c *Controller) Invoke(meanUtil, oraclePowerW float64) int {
	lvl := c.invoke(meanUtil, oraclePowerW)
	for _, h := range c.invokeHooks {
		h(c.targetFrac, c.ema, lvl)
	}
	return lvl
}

// invoke is the hook-free controller invocation.
func (c *Controller) invoke(meanUtil, oraclePowerW float64) int {
	var estFrac float64
	if c.cfg.UseOraclePower {
		estFrac = oraclePowerW / c.cfg.IslandMaxW
	} else {
		estFrac = c.cfg.Transducer.EstimatePowerFrac(meanUtil, c.lastLevel)
	}
	if !c.emaPrimed {
		c.ema = estFrac
		c.emaPrimed = true
	} else {
		c.ema = c.cfg.SmoothAlpha*estFrac + (1-c.cfg.SmoothAlpha)*c.ema
	}
	// Adaptive mode: fold the fresh measurement into the plant-gain
	// estimate (and possibly rescale the gains) before the PID acts on it.
	if c.ad != nil {
		c.adaptUpdate(c.ema)
	}
	e := c.targetFrac - c.ema

	// Quantization deadband: an error no single level step can correct
	// would only feed a permanent limit cycle between the two levels
	// bracketing the target; inside the (asymmetric, cap-biased) band the
	// controller holds its level, freezes the integrator and keeps the
	// frequency state inside the level's capture region so no windup
	// builds up while holding.
	if c.cfg.DeadbandFrac > 0 && e < c.cfg.DeadbandFrac && e > -c.cfg.DeadbandFrac/3 {
		c.pid.Frozen = true
		c.pid.Update(e)
		c.clampToCapture()
		if c.ad != nil {
			c.adaptShift()
		}
		return c.lastLevel
	}

	// Actuator anti-windup: when the frequency target is pinned at either
	// end of the table and the error pushes further out, freeze the
	// integrator so it cannot wind up against the rail.
	c.pid.Frozen = (c.fNorm >= 1 && e > 0) || (c.fNorm <= 0 && e < 0)
	d := c.pid.Update(e)

	c.fNorm += d
	if c.fNorm < 0 {
		c.fNorm = 0
	}
	if c.fNorm > 1 {
		c.fNorm = 1
	}
	c.lastLevel = c.cfg.Table.NearestLevel(c.cfg.Table.DenormFreq(c.fNorm))
	if c.ad != nil {
		c.adaptShift()
	}
	return c.lastLevel
}

// clampToCapture keeps the continuous frequency state inside the current
// level's capture region, so a held integrator cannot silently drift the
// quantized command by more than one step once the hold releases.
func (c *Controller) clampToCapture() {
	t := c.cfg.Table
	if t.Levels() < 2 {
		// A single-level table has one capture region covering the whole
		// axis; the general half-width formula would divide by zero and
		// clamp fNorm to ±Inf bounds, poisoning the frequency state.
		return
	}
	f := t.NormFreq(t.Point(c.lastLevel).FreqMHz)
	half := 0.5 / float64(t.Levels()-1)
	if c.fNorm < f-half {
		c.fNorm = f - half
	}
	if c.fNorm > f+half {
		c.fNorm = f + half
	}
}

// FreqNorm returns the controller's continuous normalized frequency state
// (before quantization), exposed for tests and telemetry.
func (c *Controller) FreqNorm() float64 { return c.fNorm }

// Integrator returns the PID's current integral accumulator, exposed for
// the anti-windup invariant check (internal/check.PIDBounds) and telemetry.
func (c *Controller) Integrator() float64 { return c.pid.Integral() }

// IntegratorBounds returns the anti-windup clamp the controller was built
// with (lo < hi always holds for controllers from New).
func (c *Controller) IntegratorBounds() (lo, hi float64) {
	return c.pid.IntMin, c.pid.IntMax
}

// Reset returns the controller to its just-constructed condition at the
// given initial DVFS level (clamped into the table), for experiments that
// restart an epoch. Every piece of dynamic state is cleared: the PID's
// integrator and derivative memory, the measurement EMA and its primed
// flag, the continuous frequency state, the last applied level, and the
// provisioned target. An earlier version cleared only the PID, so the
// EMA, frequency state, level and target all leaked into the "restarted"
// epoch; install hooks are observers, not state, and survive a Reset.
func (c *Controller) Reset(initialLevel int) {
	c.pid.Reset()
	c.pid.Frozen = false
	c.ema = 0
	c.emaPrimed = false
	c.targetFrac = 0
	c.lastLevel = c.cfg.Table.ClampLevel(initialLevel)
	c.fNorm = c.cfg.Table.NormFreq(c.cfg.Table.Point(c.lastLevel).FreqMHz)
	if c.ad != nil {
		c.ad.reset()
		c.pid.KP, c.pid.KI, c.pid.KD = c.ad.base.KP, c.ad.base.KI, c.ad.base.KD
	}
}
