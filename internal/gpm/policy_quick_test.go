package gpm

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"
)

// adversarialObs decodes a raw value stream into IslandObs whose every
// float field may be NaN, ±Inf, negative, subnormal — the hostile inputs a
// provisioning policy must survive (a faulty sensor path reaches the GPM
// unfiltered in the oracle ablation).
func adversarialObs(vals []float64, n int) []IslandObs {
	pick := func(k int) float64 {
		if len(vals) == 0 {
			return 0
		}
		return vals[k%len(vals)]
	}
	obs := make([]IslandObs, n)
	for i := range obs {
		obs[i] = IslandObs{
			Island:      i,
			AllocW:      pick(9*i + 0),
			PowerW:      pick(9*i + 1),
			BIPS:        pick(9*i + 2),
			MaxPowerW:   pick(9*i + 3),
			LeakMult:    pick(9*i + 4),
			Level:       int(math.Abs(pick(9*i+5))) % 8,
			L2Accesses:  pick(9*i + 6),
			L2Misses:    pick(9*i + 7),
			L1DAccesses: pick(9*i + 8),
			L1DMisses:   pick(9*i + 7),
		}
	}
	return obs
}

// checkPolicyInvariants asserts the three allocation invariants on a
// policy's raw output (not the Manager's clipped version): Σalloc ≤ budget,
// non-negativity, and NaN/Inf-freedom.
func checkPolicyInvariants(t *testing.T, name string, alloc []float64, budgetW float64, n int) {
	t.Helper()
	if len(alloc) != n {
		t.Fatalf("%s: %d allocations for %d islands", name, len(alloc), n)
	}
	sum := 0.0
	for i, a := range alloc {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			t.Fatalf("%s: alloc[%d] = %v is not finite", name, i, a)
		}
		if a < 0 {
			t.Fatalf("%s: alloc[%d] = %v is negative", name, i, a)
		}
		sum += a
	}
	if sum > budgetW*(1+1e-9) {
		t.Fatalf("%s: Σalloc = %v exceeds budget %v", name, sum, budgetW)
	}
}

// newPolicies builds one fresh instance of every policy added by the
// adaptive/predictive family — the subjects of the invariant property suite.
func newPolicies() map[string]Policy {
	return map[string]Policy{
		"mpc-gpm":     &ModelPredictive{},
		"cache-aware": &CacheAware{},
	}
}

// TestNewPolicyInvariantsQuick drives each new policy through a sequence of
// adversarial epochs with testing/quick-generated observables and asserts
// the allocation invariants on every single epoch — including the epochs
// after the state has been poisoned by earlier garbage.
func TestNewPolicyInvariantsQuick(t *testing.T) {
	for name, mkName := range map[string]func() Policy{
		"mpc-gpm":     func() Policy { return &ModelPredictive{} },
		"cache-aware": func() Policy { return &CacheAware{} },
	} {
		t.Run(name, func(t *testing.T) {
			f := func(vals []float64, nIslands uint8, budgetCenti uint16) bool {
				n := int(nIslands)%8 + 1
				budget := float64(budgetCenti)/100 + 1 // (1, 656]
				p := mkName()
				for epoch := 0; epoch < 4; epoch++ {
					obs := adversarialObs(vals, n)
					alloc := p.Provision(budget, obs)
					checkPolicyInvariants(t, name, alloc, budget, n)
				}
				return !t.Failed()
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestNewPolicyInvariantsThroughManager replays the same adversarial drive
// through the Manager, which additionally pins the budget-clipping contract
// for the new policies.
func TestNewPolicyInvariantsThroughManager(t *testing.T) {
	for name, p := range newPolicies() {
		t.Run(name, func(t *testing.T) {
			m, err := NewManager(p, 80)
			if err != nil {
				t.Fatal(err)
			}
			hostile := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -5, 0, 1e300, 5e-324, 20}
			for epoch := 0; epoch < 6; epoch++ {
				obs := adversarialObs(hostile[epoch%len(hostile):], 4)
				alloc := m.Provision(obs)
				checkPolicyInvariants(t, name, alloc, 80, 4)
			}
		})
	}
}

// FuzzNewPolicyInvariants is the byte-level twin of the quick test: raw
// fuzz bytes become float observables (every bit pattern reachable,
// including signalling NaNs), driven through both new policies for several
// epochs with the invariants asserted each time.
func FuzzNewPolicyInvariants(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f, 1})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 4})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 2})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 9 {
			return
		}
		n := int(raw[len(raw)-1])%8 + 1
		vals := make([]float64, 0, len(raw)/8)
		for i := 0; i+8 <= len(raw)-1; i += 8 {
			vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(raw[i:])))
		}
		budget := 1 + math.Abs(math.Mod(float64(len(raw)), 97))
		for name, p := range newPolicies() {
			for epoch := 0; epoch < 3; epoch++ {
				obs := adversarialObs(vals, n)
				alloc := p.Provision(budget, obs)
				checkPolicyInvariants(t, name, alloc, budget, n)
			}
		}
	})
}

// TestModelPredictiveShiftsBudgetTowardResponsiveIsland checks the planner
// does what the rollout model promises: an island whose BIPS baseline
// dominates attracts budget, and the committed shares stay there.
func TestModelPredictiveShiftsBudgetTowardResponsiveIsland(t *testing.T) {
	p := &ModelPredictive{}
	obs := []IslandObs{
		{Island: 0, AllocW: 20, PowerW: 18, BIPS: 8, MaxPowerW: 48},
		{Island: 1, AllocW: 20, PowerW: 18, BIPS: 1, MaxPowerW: 48},
		{Island: 2, AllocW: 20, PowerW: 18, BIPS: 1, MaxPowerW: 48},
		{Island: 3, AllocW: 20, PowerW: 18, BIPS: 1, MaxPowerW: 48},
	}
	alloc := p.Provision(80, obs)
	for epoch := 0; epoch < 10; epoch++ {
		for i := range obs {
			obs[i].AllocW = alloc[i]
			obs[i].PowerW = alloc[i] * 0.95
		}
		alloc = p.Provision(80, obs)
		checkPolicyInvariants(t, "mpc-gpm", alloc, 80, 4)
	}
	if alloc[0] <= alloc[1] {
		t.Errorf("planner left the dominant island at %v W (others %v W)", alloc[0], alloc[1])
	}
}

// TestCacheAwareFavorsResidentIsland checks the occupancy weighting: equal
// BIPS/W, but one island hits in L2 while another misses everything — the
// resident island must end up with the larger provision.
func TestCacheAwareFavorsResidentIsland(t *testing.T) {
	p := &CacheAware{}
	obs := []IslandObs{
		{Island: 0, AllocW: 40, PowerW: 20, BIPS: 4, MaxPowerW: 48, L2Accesses: 1000, L2Misses: 10},
		{Island: 1, AllocW: 40, PowerW: 20, BIPS: 4, MaxPowerW: 48, L2Accesses: 1000, L2Misses: 990},
	}
	alloc := p.Provision(80, obs)
	for epoch := 0; epoch < 6; epoch++ {
		for i := range obs {
			obs[i].AllocW = alloc[i]
		}
		alloc = p.Provision(80, obs)
		checkPolicyInvariants(t, "cache-aware", alloc, 80, 2)
	}
	if alloc[0] <= alloc[1] {
		t.Errorf("resident island got %v W, thrashing island %v W", alloc[0], alloc[1])
	}
}

// TestWantsCacheSignalsProbe pins the capability probe, including traversal
// through decorator chains.
func TestWantsCacheSignalsProbe(t *testing.T) {
	cases := []struct {
		name string
		p    Policy
		want bool
	}{
		{"nil", nil, false},
		{"equal-share", EqualShare{}, false},
		{"performance", &PerformanceAware{}, false},
		{"mpc", &ModelPredictive{}, false},
		{"cache-aware", &CacheAware{}, true},
		{"energy over cache-aware", &EnergyAware{Base: &CacheAware{}}, true},
		{"energy over performance", &EnergyAware{Base: &PerformanceAware{}}, false},
	}
	for _, tc := range cases {
		if got := WantsCacheSignals(tc.p); got != tc.want {
			t.Errorf("%s: WantsCacheSignals = %v, want %v", tc.name, got, tc.want)
		}
	}
}
