package gpm

import "math"

// VariationAware is the variation-aware provisioning policy of §IV-B,
// modelled on the greedy search of Teodorescu & Torrellas [15] (itself a CMP
// extension of Magklis et al.'s scheme): each island hill-climbs the
// energy-per-instruction curve over provisioning levels, assuming
// power/throughput is convex in the operating point. Leakier islands
// naturally settle at lower provisions (their EPI curve bottoms out lower),
// so the chip operates leaky silicon slow and tight silicon fast.
//
// Per island the policy keeps a direction (step provision up or down). Each
// invocation it compares the island's energy per instruction against the
// previous epoch: improvement keeps the direction; degradation means the
// optimum was overshot, so the policy reverses, holds the suspected optimum
// for HoldIntervals invocations, then resumes exploring.
type VariationAware struct {
	// StepFrac is the provisioning step as a fraction of the island's
	// equal share (default 0.1).
	StepFrac float64
	// HoldIntervals is how long to hold after an overshoot (paper: 10 PIC
	// intervals ≈ 1 GPM invocation at default periods; expressed here in
	// GPM invocations).
	HoldIntervals int
	// MinShareFrac bounds exploration from below as a fraction of the
	// island's equal share (default 0.5): pure energy-per-instruction
	// descent would otherwise walk every island toward the bottom of the
	// table on substrates whose EPI keeps improving at low frequency.
	MinShareFrac float64

	st []varState
}

func (p *VariationAware) minFrac() float64 {
	if p.MinShareFrac > 0 {
		return p.MinShareFrac
	}
	return 0.5
}

type varState struct {
	frac    float64 // provision as fraction of equal share (1 = equal)
	dir     float64 // +1 or -1
	lastEPI float64
	hold    int
	primed  bool
}

// Name implements Policy.
func (p *VariationAware) Name() string { return "variation-aware" }

// Provision implements Policy.
func (p *VariationAware) Provision(budgetW float64, obs []IslandObs) []float64 {
	n := len(obs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	step := p.StepFrac
	if step <= 0 {
		step = 0.1
	}
	hold := p.HoldIntervals
	if hold <= 0 {
		hold = 1
	}
	if len(p.st) != n {
		p.st = make([]varState, n)
		for i := range p.st {
			p.st[i] = varState{frac: 1, dir: -1} // start by exploring down
		}
	}

	share := budgetW / float64(n)
	for i, o := range obs {
		s := &p.st[i]
		epi := math.Inf(1)
		if o.BIPS > 0 {
			// Energy per instruction over the epoch: power / instruction
			// rate. Constant epoch length cancels.
			epi = o.PowerW / o.BIPS
		}
		switch {
		case !s.primed:
			s.primed = true
		case s.hold > 0:
			s.hold--
			if s.hold == 0 {
				// Resume exploring opposite to the move that preceded the
				// hold.
				s.dir = -s.dir
			}
		case epi <= s.lastEPI:
			// Improved (or equal): keep moving.
		default:
			// Degraded: overshot the optimum — step back and hold there.
			s.dir = -s.dir
			s.frac += s.dir * step
			s.hold = hold
		}
		if s.hold == 0 {
			s.frac += s.dir * step
		}
		s.frac = math.Max(p.minFrac(), math.Min(1.5, s.frac))
		s.lastEPI = epi
		out[i] = share * s.frac
	}

	// Unlike the performance-aware policy, this one may *underspend*: it
	// seeks each island's energy-per-instruction optimum, and filling the
	// budget for its own sake would drag leaky islands past theirs. Only
	// scale down when the exploration oversubscribes the budget.
	sum := 0.0
	for _, a := range out {
		sum += a
	}
	if sum > budgetW && sum > 0 {
		scale := budgetW / sum
		for i := range out {
			out[i] *= scale
		}
	}
	return out
}
