package gpm

import (
	"sort"

	"github.com/cpm-sim/cpm/internal/snapshot"
)

// StatefulPolicy is the optional capability a Policy implements when it
// carries history across epochs. Stateless policies (EqualShare) simply
// don't implement it; the Manager records which case it captured.
type StatefulPolicy interface {
	Policy
	// SnapshotState appends the policy's cross-epoch state.
	SnapshotState(e *snapshot.Encoder)
	// RestoreState reads state written by SnapshotState.
	RestoreState(d *snapshot.Decoder) error
}

// Snapshot appends the manager's dynamic state: the current budget and, if
// the policy carries history, the policy's state (keyed by policy name so
// a restore into a manager running a different policy fails loudly).
func (m *Manager) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagGPM)
	e.F64(m.budgetW)
	e.String(m.policy.Name())
	sp, ok := m.policy.(StatefulPolicy)
	e.Bool(ok)
	if ok {
		e.Tag(snapshot.TagPolicy)
		sp.SnapshotState(e)
	}
}

// Restore reads state written by Snapshot. The manager must be running a
// policy of the same name (and statefulness) as the captured one.
func (m *Manager) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagGPM)
	budget := d.F64()
	name := d.String()
	hadState := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if name != m.policy.Name() {
		return snapshot.ShapeErrorf("snapshot ran policy %q, manager runs %q", name, m.policy.Name())
	}
	sp, ok := m.policy.(StatefulPolicy)
	if hadState != ok {
		return snapshot.ShapeErrorf("snapshot policy statefulness %v, target %v", hadState, ok)
	}
	m.budgetW = budget
	if !ok {
		return nil
	}
	d.Tag(snapshot.TagPolicy)
	return sp.RestoreState(d)
}

// SnapshotState implements StatefulPolicy: the per-island (power,
// prev-power, BIPS) history of Equations 4–6 and its primed flag.
func (p *PerformanceAware) SnapshotState(e *snapshot.Encoder) {
	e.Bool(p.havePrev)
	e.Int(len(p.prev))
	for _, h := range p.prev {
		e.F64(h.power)
		e.F64(h.prevPower)
		e.F64(h.bips)
	}
}

// RestoreState implements StatefulPolicy.
func (p *PerformanceAware) RestoreState(d *snapshot.Decoder) error {
	havePrev := d.Bool()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n < 0 || n > d.Remaining()/8 {
		return snapshot.ShapeErrorf("performance-aware history length %d", n)
	}
	prev := make([]perfHistory, n)
	for i := range prev {
		prev[i] = perfHistory{power: d.F64(), prevPower: d.F64(), bips: d.F64()}
	}
	if err := d.Err(); err != nil {
		return err
	}
	p.havePrev = havePrev
	p.prev = prev
	return nil
}

// SnapshotState implements StatefulPolicy: per-island exploration state
// (share fraction, direction, last EPI, hold counter, primed flag).
func (p *VariationAware) SnapshotState(e *snapshot.Encoder) {
	e.Int(len(p.st))
	for _, s := range p.st {
		e.F64(s.frac)
		e.F64(s.dir)
		e.F64(s.lastEPI) // may be +Inf; raw bits round-trip it
		e.Int(s.hold)
		e.Bool(s.primed)
	}
}

// RestoreState implements StatefulPolicy.
func (p *VariationAware) RestoreState(d *snapshot.Decoder) error {
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n < 0 || n > d.Remaining()/8 {
		return snapshot.ShapeErrorf("variation-aware state length %d", n)
	}
	st := make([]varState, n)
	for i := range st {
		st[i] = varState{frac: d.F64(), dir: d.F64(), lastEPI: d.F64(), hold: d.Int(), primed: d.Bool()}
	}
	if err := d.Err(); err != nil {
		return err
	}
	p.st = st
	return nil
}

// SnapshotState implements StatefulPolicy: the current budget-shrink
// factor, plus the base policy's state when it has any. A nil Base means
// Provision builds a throwaway PerformanceAware per call, which therefore
// carries no cross-epoch state to capture.
func (p *EnergyAware) SnapshotState(e *snapshot.Encoder) {
	e.F64(p.shrink)
	snapshotBase(e, p.Base)
}

// RestoreState implements StatefulPolicy.
func (p *EnergyAware) RestoreState(d *snapshot.Decoder) error {
	shrink := d.F64()
	if err := d.Err(); err != nil {
		return err
	}
	p.shrink = shrink
	return restoreBase(d, p.Base)
}

// SnapshotState implements StatefulPolicy: solo and adjacent-pair streak
// counters (the pair map emitted in sorted key order for deterministic
// bytes), plus the base policy's state.
func (p *ThermalAware) SnapshotState(e *snapshot.Encoder) {
	e.Ints(p.soloStreak)
	keys := make([][2]int, 0, len(p.pairStreak))
	for k := range p.pairStreak {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	e.Int(len(keys))
	for _, k := range keys {
		e.Int(k[0])
		e.Int(k[1])
		e.Int(p.pairStreak[k])
	}
	snapshotBase(e, p.Base)
}

// RestoreState implements StatefulPolicy.
func (p *ThermalAware) RestoreState(d *snapshot.Decoder) error {
	solo := d.Ints()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if n < 0 || n > d.Remaining()/24 {
		return snapshot.ShapeErrorf("thermal-aware pair-streak length %d", n)
	}
	pairs := make(map[[2]int]int, n)
	for i := 0; i < n; i++ {
		k := [2]int{d.Int(), d.Int()}
		pairs[k] = d.Int()
	}
	if err := d.Err(); err != nil {
		return err
	}
	p.soloStreak = solo
	p.pairStreak = pairs
	return restoreBase(d, p.Base)
}

// snapshotBase captures a decorator's base-policy state: absent (nil or
// stateless base) or present with the base's name for cross-checking.
func snapshotBase(e *snapshot.Encoder, base Policy) {
	sp, ok := base.(StatefulPolicy)
	e.Bool(ok)
	if ok {
		e.String(sp.Name())
		sp.SnapshotState(e)
	}
}

// restoreBase reads what snapshotBase wrote.
func restoreBase(d *snapshot.Decoder, base Policy) error {
	had := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	sp, ok := base.(StatefulPolicy)
	if had != ok {
		return snapshot.ShapeErrorf("snapshot base-policy statefulness %v, target %v", had, ok)
	}
	if !ok {
		return nil
	}
	name := d.String()
	if err := d.Err(); err != nil {
		return err
	}
	if name != sp.Name() {
		return snapshot.ShapeErrorf("snapshot base policy %q, target %q", name, sp.Name())
	}
	return sp.RestoreState(d)
}

// SnapshotState implements StatefulPolicy: the committed share vector of
// the receding-horizon plan and its primed flag.
func (p *ModelPredictive) SnapshotState(e *snapshot.Encoder) {
	e.Bool(p.primed)
	e.F64s(p.shares)
}

// RestoreState implements StatefulPolicy.
func (p *ModelPredictive) RestoreState(d *snapshot.Decoder) error {
	primed := d.Bool()
	shares := d.F64s()
	if err := d.Err(); err != nil {
		return err
	}
	p.primed = primed
	p.shares = shares
	return nil
}

// SnapshotState implements StatefulPolicy: the EMA-smoothed occupancy
// weights and their primed flag.
func (p *CacheAware) SnapshotState(e *snapshot.Encoder) {
	e.Bool(p.primed)
	e.F64s(p.w)
}

// RestoreState implements StatefulPolicy.
func (p *CacheAware) RestoreState(d *snapshot.Decoder) error {
	primed := d.Bool()
	w := d.F64s()
	if err := d.Err(); err != nil {
		return err
	}
	p.primed = primed
	p.w = w
	return nil
}
