package gpm

import "math"

// PerformanceAware is the performance-aware provisioning policy of §II-C:
// it maximizes total instruction throughput under the chip budget by
// allocating power in proportion to each island's ratio of actual to
// expected performance (Equations 4–6), with the starvation/reclaim rule
// the paper describes alongside them.
//
// Expected performance derives from the cube law of Equation (1): dynamic
// power ∝ f³ with V tracking f, so performance (∝ f for the CPU-bound case
// the estimate assumes) scales with the cube root of the power ratio:
//
//	BIPSᵉᵢ(t) = BIPSᵃᵢ(t−1) · (Pᵢ(t−1)/Pᵢ(t−2))^(1/3)     (Eq. 4)
//	φᵢ(t)    = BIPSᵃᵢ(t)/BIPSᵉᵢ(t)                          (Eq. 5)
//	Pᵢ(t+1)  ∝ Pᵢ(t) · φᵢ(t), normalized to P_target        (Eq. 6)
//
// Equation (6) is applied as a multiplicative-weights update on the current
// shares rather than on φ alone: at equilibrium every φᵢ ≈ 1, and a literal
// P_target·φᵢ/Σφⱼ would then snap all allocations back to an equal split,
// erasing whatever the policy had learned — which contradicts the paper's
// own Figure 7 (sustained 13–25% spreads) and the §II-C starvation
// discussion. Share-proportional application keeps learned allocations and
// still reduces to the literal form whenever shares are equal.
//
// Because real power grows slower than cubically in frequency, an island
// that converts extra budget into throughput earns φ > 1 and attracts more
// budget — a deliberate positive feedback that concentrates power where it
// buys performance. Three mechanisms bound it: φ is clamped per epoch, a
// minimum-share floor prevents outright starvation, and the reclaim rule of
// §II-C ("the GPM would realize this fact and provision less") caps an
// island's next allocation just above what it proved able to consume,
// returning unspendable budget to the pool. An island whose PIC is already
// at the top of the DVFS table therefore cannot hoard.
type PerformanceAware struct {
	// MaxShareFrac, when in (0, 1], caps any island's allocation at this
	// fraction of the budget, redistributing the excess — the constraint
	// extension sketched in §II-C. Zero disables the cap.
	MaxShareFrac float64

	// PhiClamp bounds the per-epoch responsiveness ratio to
	// [1/PhiClamp, PhiClamp] (default 2).
	PhiClamp float64

	// PowerExponent is the exponent relating performance expectations to
	// power ratios in Equation (4). The paper hardcodes the cube root
	// (1/3), from the idealized P ∝ f³ of Equation (1); a substrate whose
	// power elasticity e differs is better served by 1/e (see
	// Calibration.RecommendedExponent), which removes the systematic φ > 1
	// bias that drives blind allocation concentration. Zero selects the
	// paper's 1/3.
	PowerExponent float64

	// ReclaimHeadroomFrac is the slack above observed consumption an
	// island may still be allocated, as a fraction of its maximum power
	// (default 0.10 — about one DVFS step). Negative disables reclaim.
	ReclaimHeadroomFrac float64

	// MinShareFrac floors each island's allocation at this fraction of the
	// equal share (default 0.15), so no island is ever starved outright
	// and a phase change can always earn its way back up.
	MinShareFrac float64

	prev     []perfHistory
	havePrev bool
}

type perfHistory struct {
	power     float64 // P_i(t-1)
	prevPower float64 // P_i(t-2)
	bips      float64 // BIPS_a(t-1)
}

// Name implements Policy.
func (p *PerformanceAware) Name() string { return "performance-aware" }

// Provision implements Policy.
func (p *PerformanceAware) Provision(budgetW float64, obs []IslandObs) []float64 {
	n := len(obs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	clamp := p.PhiClamp
	if clamp <= 1 {
		clamp = 2
	}
	headroom := p.ReclaimHeadroomFrac
	if headroom == 0 {
		headroom = 0.10
	}
	exponent := p.PowerExponent
	if exponent <= 0 {
		exponent = 1.0 / 3.0
	}

	if !p.havePrev || len(p.prev) != n {
		// First invocation: equal split, prime history.
		p.prev = make([]perfHistory, n)
		for i, o := range obs {
			out[i] = budgetW / float64(n)
			p.prev[i] = perfHistory{power: o.PowerW, prevPower: o.PowerW, bips: o.BIPS}
		}
		p.havePrev = true
		return out
	}

	minShare := p.MinShareFrac
	if minShare == 0 {
		minShare = 0.15
	}
	floor := minShare * budgetW / float64(n)

	sum := 0.0
	for i, o := range obs {
		h := p.prev[i]
		expected := h.bips
		if h.prevPower > 0 && h.power > 0 {
			expected = h.bips * math.Pow(h.power/h.prevPower, exponent)
		}
		phi := 1.0
		if expected > 0 {
			phi = o.BIPS / expected
		}
		phi = math.Max(1/clamp, math.Min(clamp, phi))
		// Multiplicative-weights form of Eq. 6: weight by the current
		// share (the previous allocation) times its responsiveness ratio.
		share := o.AllocW
		if share <= floor {
			share = floor
		}
		out[i] = share * phi
		sum += out[i]
	}
	if sum > 0 {
		for i := range out {
			out[i] *= budgetW / sum
		}
	}

	// Reclaim: an island that could not spend its last allocation has its
	// next one capped just above proven consumption; freed budget goes to
	// islands with headroom.
	if headroom > 0 {
		caps := make([]float64, n)
		for i, o := range obs {
			caps[i] = math.Inf(1)
			slack := o.MaxPowerW * headroom
			if o.AllocW-o.PowerW > slack {
				caps[i] = o.PowerW + slack
			}
		}
		enforceCaps(out, caps)
	}
	if p.MaxShareFrac > 0 && p.MaxShareFrac <= 1 {
		capShares(out, budgetW*p.MaxShareFrac)
	}

	for i, o := range obs {
		p.prev[i] = perfHistory{power: o.PowerW, prevPower: p.prev[i].power, bips: o.BIPS}
	}
	return out
}

// enforceCaps clamps entries above their per-entry cap and redistributes the
// excess over uncapped entries proportionally, iterating to a fixed point.
// When every uncapped entry sits at zero, proportional weights all vanish;
// the excess is then spread equally across the open entries instead of being
// silently dropped (a zero-allocation island with headroom is exactly where
// reclaimed budget should go).
func enforceCaps(alloc, caps []float64) {
	for iter := 0; iter < len(alloc); iter++ {
		excess := 0.0
		var openSum float64
		open := 0
		for i := range alloc {
			if alloc[i] > caps[i] {
				excess += alloc[i] - caps[i]
			} else if alloc[i] < caps[i] {
				openSum += alloc[i]
				open++
			}
		}
		if excess == 0 {
			return
		}
		if open == 0 {
			break // everything capped; leave the excess unspent
		}
		for i := range alloc {
			if alloc[i] > caps[i] {
				alloc[i] = caps[i]
			} else if alloc[i] < caps[i] {
				if openSum > 0 {
					alloc[i] += excess * alloc[i] / openSum
				} else {
					alloc[i] += excess / float64(open)
				}
			}
		}
	}
	for i := range alloc {
		if alloc[i] > caps[i] {
			alloc[i] = caps[i]
		}
	}
}

// capShares clamps entries above cap and redistributes the excess over the
// uncapped entries proportionally, iterating until stable.
func capShares(alloc []float64, cap float64) {
	caps := make([]float64, len(alloc))
	for i := range caps {
		caps[i] = cap
	}
	enforceCaps(alloc, caps)
}
