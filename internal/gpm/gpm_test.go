package gpm

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/cpm-sim/cpm/internal/stats"
	"github.com/cpm-sim/cpm/internal/thermal"
)

func obs4() []IslandObs {
	return []IslandObs{
		{Island: 0, AllocW: 20, PowerW: 18, BIPS: 4, MaxPowerW: 24, LeakMult: 1.2},
		{Island: 1, AllocW: 20, PowerW: 19, BIPS: 2, MaxPowerW: 24, LeakMult: 1.5},
		{Island: 2, AllocW: 20, PowerW: 17, BIPS: 3, MaxPowerW: 24, LeakMult: 2.0},
		{Island: 3, AllocW: 20, PowerW: 16, BIPS: 1, MaxPowerW: 24, LeakMult: 1.0},
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(nil, 80); err == nil {
		t.Error("nil policy should be rejected")
	}
	if _, err := NewManager(EqualShare{}, 0); err == nil {
		t.Error("zero budget should be rejected")
	}
}

func TestEqualShare(t *testing.T) {
	alloc := EqualShare{}.Provision(80, obs4())
	for _, a := range alloc {
		if math.Abs(a-20) > 1e-12 {
			t.Errorf("equal share = %v", alloc)
		}
	}
	if len(EqualShare{}.Provision(80, nil)) != 0 {
		t.Error("empty obs should give empty allocation")
	}
}

func TestManagerEnforcesBudget(t *testing.T) {
	over := policyFunc(func(budgetW float64, obs []IslandObs) []float64 {
		out := make([]float64, len(obs))
		for i := range out {
			out[i] = budgetW // 4x oversubscription
		}
		return out
	})
	m, err := NewManager(over, 80)
	if err != nil {
		t.Fatal(err)
	}
	alloc := m.Provision(obs4())
	if s := sum(alloc); s > 80+1e-9 {
		t.Errorf("manager let Σ=%v exceed budget 80", s)
	}
}

func TestManagerSanitizesBadValues(t *testing.T) {
	bad := policyFunc(func(budgetW float64, obs []IslandObs) []float64 {
		return []float64{math.NaN(), -5, math.Inf(1), 10}
	})
	m, _ := NewManager(bad, 80)
	alloc := m.Provision(obs4())
	for i, a := range alloc {
		if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			t.Errorf("alloc[%d] = %v not sanitized", i, a)
		}
	}
}

func TestManagerRecoversFromWrongArity(t *testing.T) {
	bad := policyFunc(func(budgetW float64, obs []IslandObs) []float64 {
		return []float64{1}
	})
	m, _ := NewManager(bad, 80)
	alloc := m.Provision(obs4())
	if len(alloc) != 4 {
		t.Fatalf("arity not recovered: %v", alloc)
	}
	if math.Abs(sum(alloc)-80) > 1e-9 {
		t.Error("fallback should spend the budget")
	}
}

type policyFunc func(float64, []IslandObs) []float64

func (policyFunc) Name() string { return "test" }
func (f policyFunc) Provision(b float64, o []IslandObs) []float64 {
	return f(b, o)
}

// Equation (6) invariant: the performance-aware policy always spends exactly
// the budget.
func TestPerformanceAwareSpendsExactBudget(t *testing.T) {
	p := &PerformanceAware{}
	o := obs4()
	for k := 0; k < 50; k++ {
		alloc := p.Provision(80, o)
		if math.Abs(sum(alloc)-80) > 1e-9 {
			t.Fatalf("invocation %d: Σ=%v, want 80", k, sum(alloc))
		}
		// Feed back plausible dynamics.
		for i := range o {
			o[i].AllocW = alloc[i]
			o[i].PowerW = alloc[i] * 0.95
			o[i].BIPS = 1 + float64(i)
		}
	}
}

// An island that converts power into proportionally more throughput earns a
// larger allocation than one that wastes it.
func TestPerformanceAwareRewardsEfficiency(t *testing.T) {
	p := &PerformanceAware{}
	o := []IslandObs{
		{Island: 0, PowerW: 20, BIPS: 4, MaxPowerW: 24},
		{Island: 1, PowerW: 20, BIPS: 4, MaxPowerW: 24},
	}
	p.Provision(40, o) // prime
	// Epoch 2: island 0 turned its power into much more BIPS; island 1
	// stagnated despite the same power.
	o[0].BIPS, o[0].PowerW = 8, 20
	o[1].BIPS, o[1].PowerW = 2, 20
	alloc := p.Provision(40, o)
	if alloc[0] <= alloc[1] {
		t.Errorf("efficient island got %v, inefficient got %v", alloc[0], alloc[1])
	}
}

// The starvation guard of §II-C: an island whose PIC cannot spend its
// allocation (power plateaued despite a big budget) loses budget next epoch.
func TestPerformanceAwareReclaimsUnspendablePower(t *testing.T) {
	p := &PerformanceAware{}
	o := []IslandObs{
		{Island: 0, PowerW: 10, BIPS: 4, MaxPowerW: 24},
		{Island: 1, PowerW: 10, BIPS: 4, MaxPowerW: 24},
	}
	p.Provision(40, o)
	// Island 0 received more power (20) but produced the same BIPS with
	// higher measured power — expected BIPS rose with the cube of the power
	// ratio, actual didn't follow.
	o[0].PowerW, o[0].BIPS = 20, 4.05
	o[1].PowerW, o[1].BIPS = 10, 4.0
	p.Provision(40, o)
	o[0].PowerW, o[0].BIPS = 20, 4.05
	o[1].PowerW, o[1].BIPS = 10, 4.0
	alloc := p.Provision(40, o)
	if alloc[0] >= alloc[1] {
		t.Errorf("saturated island kept %v vs %v", alloc[0], alloc[1])
	}
}

func TestPerformanceAwareMaxShareCap(t *testing.T) {
	p := &PerformanceAware{MaxShareFrac: 0.3}
	o := obs4()
	p.Provision(80, o)
	// Make island 0 wildly outperform.
	o[0].BIPS = 100
	for i := 1; i < 4; i++ {
		o[i].BIPS = 0.1
	}
	alloc := p.Provision(80, o)
	for i, a := range alloc {
		if a > 0.3*80+1e-9 {
			t.Errorf("island %d allocation %v exceeds 30%% cap", i, a)
		}
	}
	if s := sum(alloc); s > 80+1e-9 {
		t.Errorf("Σ=%v exceeds budget", s)
	}
}

// Property: allocations are non-negative and never exceed the budget for
// arbitrary observation histories (the reclaim rule may deliberately leave
// part of the budget unspent when islands prove unable to consume it).
func TestPerformanceAwareSafetyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		p := &PerformanceAware{}
		o := obs4()
		for k := 0; k < 20; k++ {
			alloc := p.Provision(80, o)
			if sum(alloc) > 80+1e-6 {
				return false
			}
			for _, a := range alloc {
				if a < 0 {
					return false
				}
			}
			for i := range o {
				o[i].AllocW = alloc[i]
				o[i].PowerW = r.Range(0, 30)
				o[i].BIPS = r.Range(0, 10)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The reclaim rule of §II-C: an island that was given far more than it
// consumed gets its next allocation pulled back near proven consumption.
func TestPerformanceAwareReclaimsUnspentBudget(t *testing.T) {
	p := &PerformanceAware{}
	o := obs4()
	p.Provision(80, o) // prime with equal split (20 each)
	// Island 0 consumed only 8 W of its 20 W allocation.
	o[0].AllocW, o[0].PowerW = 20, 8
	for i := 1; i < 4; i++ {
		o[i].AllocW, o[i].PowerW = 20, 19.5
	}
	alloc := p.Provision(80, o)
	if alloc[0] > 8+0.10*o[0].MaxPowerW+1e-9 {
		t.Errorf("unspendable island kept %v W, want capped near its 8 W consumption", alloc[0])
	}
	// The freed budget goes to the islands that can spend.
	for i := 1; i < 4; i++ {
		if alloc[i] <= 20 {
			t.Errorf("island %d should receive reclaimed budget, got %v", i, alloc[i])
		}
	}
}

func thermalPolicy(t *testing.T) *ThermalAware {
	t.Helper()
	fp, err := thermal.Grid(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	return &ThermalAware{
		Floorplan:            fp,
		AdjacentPairCap:      0.5,
		ConsecutiveLimit:     2,
		SoloCap:              0.3,
		SoloConsecutiveLimit: 4,
	}
}

func obs8() []IslandObs {
	o := make([]IslandObs, 8)
	for i := range o {
		o[i] = IslandObs{Island: i, PowerW: 8, BIPS: 2, MaxPowerW: 12}
	}
	return o
}

// A hot pair of adjacent islands must be trimmed once its streak exceeds
// the limit, and never afterwards while the demand persists.
func TestThermalAwareBreaksPairStreaks(t *testing.T) {
	p := thermalPolicy(t)
	greedy := policyFunc(func(budgetW float64, obs []IslandObs) []float64 {
		// Base policy persistently throws 60% of the budget at adjacent
		// islands 0 and 1.
		out := make([]float64, len(obs))
		out[0], out[1] = 0.3*budgetW, 0.3*budgetW
		rest := 0.4 * budgetW / float64(len(obs)-2)
		for i := 2; i < len(obs); i++ {
			out[i] = rest
		}
		return out
	})
	p.Base = greedy
	budget := 80.0
	exceeded := 0
	for k := 0; k < 20; k++ {
		alloc := p.Provision(budget, obs8())
		if alloc[0]+alloc[1] > 0.5*budget+1e-9 {
			exceeded++
			if exceeded > p.ConsecutiveLimit {
				t.Fatalf("invocation %d: pair allocation %v sustained above cap", k, alloc[0]+alloc[1])
			}
		} else {
			exceeded = 0
		}
		if sum(alloc) > budget+1e-9 {
			t.Fatalf("budget exceeded: %v", sum(alloc))
		}
	}
}

func TestThermalAwareBreaksSoloStreaks(t *testing.T) {
	p := thermalPolicy(t)
	p.Base = policyFunc(func(budgetW float64, obs []IslandObs) []float64 {
		out := make([]float64, len(obs))
		out[3] = 0.5 * budgetW // far above the 30% solo cap
		rest := 0.5 * budgetW / float64(len(obs)-1)
		for i := range out {
			if i != 3 {
				out[i] = rest
			}
		}
		return out
	})
	over := 0
	for k := 0; k < 20; k++ {
		alloc := p.Provision(80, obs8())
		if alloc[3] > 0.3*80+1e-9 {
			over++
			if over > p.SoloConsecutiveLimit {
				t.Fatalf("invocation %d: solo streak not broken", k)
			}
		} else {
			over = 0
		}
	}
}

func TestThermalAwareDefaultBase(t *testing.T) {
	p := thermalPolicy(t)
	alloc := p.Provision(80, obs8())
	// Equal share never violates anything.
	for _, a := range alloc {
		if math.Abs(a-10) > 1e-9 {
			t.Errorf("default base should be equal share, got %v", alloc)
		}
	}
}

func TestThermalViolationsCounter(t *testing.T) {
	p := thermalPolicy(t)
	budget := 80.0
	hot := []float64{24, 24, 4, 4, 4, 4, 8, 8} // islands 0+1 at 60%
	cool := []float64{10, 10, 10, 10, 10, 10, 10, 10}
	// Streak of 3 hot epochs: first two within limit, third violates.
	if v := p.Violations(budget, [][]float64{hot, hot, hot}); v != 1 {
		t.Errorf("violations = %d, want 1", v)
	}
	if v := p.Violations(budget, [][]float64{hot, hot, cool, hot, hot, cool}); v != 0 {
		t.Errorf("violations = %d, want 0 (streaks broken)", v)
	}
	// Solo: island 0 at 40% for 5 consecutive epochs → 1 violation.
	solo := []float64{32, 8, 8, 8, 8, 8, 4, 4}
	if v := p.Violations(budget, [][]float64{solo, solo, solo, solo, solo}); v != 1 {
		t.Errorf("solo violations = %d, want 1", v)
	}
}

// The variation-aware policy must provision leaky islands less than tight
// ones once EPI feedback reflects their leakage.
func TestVariationAwareDeprovisionsLeakyIslands(t *testing.T) {
	p := &VariationAware{StepFrac: 0.1, HoldIntervals: 2}
	o := obs4() // leak multipliers 1.2, 1.5, 2.0, 1.0
	budget := 80.0
	alloc := EqualShare{}.Provision(budget, o)
	for k := 0; k < 80; k++ {
		// Synthetic plant shaped like the real one: superlinear leakage in
		// voltage plus thermal feedback push a leaky island's
		// energy-per-instruction optimum to a *lower* provision. Each
		// island's EPI is a parabola with its minimum at 20/LeakMult watts.
		for i := range o {
			o[i].AllocW = alloc[i]
			o[i].PowerW = alloc[i]
			opt := 20 / o[i].LeakMult
			epi := (alloc[i]-opt)*(alloc[i]-opt)/100 + 1
			o[i].BIPS = alloc[i] / epi // so PowerW/BIPS == epi
		}
		alloc = p.Provision(budget, o)
		if s := sum(alloc); s > budget+1e-6 {
			t.Fatalf("invocation %d: Σ=%v exceeds budget", k, s)
		}
	}
	// Island 2 (2.0x leakage, optimum 10 W) should end well below island 3
	// (nominal, optimum 20 W).
	if alloc[2] >= alloc[3]-2 {
		t.Errorf("leaky island kept %v, tight island %v", alloc[2], alloc[3])
	}
}

func TestVariationAwareBoundsExploration(t *testing.T) {
	p := &VariationAware{StepFrac: 0.5, HoldIntervals: 1}
	o := obs4()
	budget := 80.0
	for k := 0; k < 100; k++ {
		alloc := p.Provision(budget, o)
		for i, a := range alloc {
			if a < 0 || a > budget {
				t.Fatalf("alloc[%d]=%v out of bounds", i, a)
			}
		}
		for i := range o {
			o[i].PowerW = alloc[i]
			o[i].BIPS = 0 // worst case: no instructions at all
		}
	}
}

// The energy-aware policy must shrink the effective budget while the
// throughput floor has headroom and restore it once breached.
func TestEnergyAwareShrinksAndRecovers(t *testing.T) {
	p := &EnergyAware{FloorBIPS: 4}
	o := obs4()
	budget := 80.0
	// Plenty of headroom: total BIPS = 10.
	for k := 0; k < 30; k++ {
		alloc := p.Provision(budget, o)
		if s := sum(alloc); s > budget+1e-9 {
			t.Fatalf("Σ=%v exceeds offered budget", s)
		}
	}
	if p.Shrink() > 0.9 {
		t.Errorf("shrink = %v after 30 headroom epochs, want well below 1", p.Shrink())
	}
	shrunk := p.Shrink()
	// Now breach the floor: total BIPS = 2.
	for i := range o {
		o[i].BIPS = 0.5
	}
	for k := 0; k < 10; k++ {
		p.Provision(budget, o)
	}
	if p.Shrink() <= shrunk {
		t.Errorf("shrink should recover after a floor breach: %v -> %v", shrunk, p.Shrink())
	}
}

func TestEnergyAwareBounds(t *testing.T) {
	p := &EnergyAware{FloorBIPS: 1000} // unreachable floor: recover to 1
	o := obs4()
	for k := 0; k < 20; k++ {
		p.Provision(80, o)
	}
	if p.Shrink() != 1 {
		t.Errorf("shrink = %v, want pinned at 1 under an unreachable floor", p.Shrink())
	}
	p2 := &EnergyAware{FloorBIPS: 0.0001, MinBudgetFrac: 0.5}
	for k := 0; k < 200; k++ {
		p2.Provision(80, o)
	}
	if p2.Shrink() < 0.5-1e-9 {
		t.Errorf("shrink = %v, want floored at MinBudgetFrac", p2.Shrink())
	}
}

func TestEnergyAwareNoFloorBehavesLikeBase(t *testing.T) {
	p := &EnergyAware{}
	base := &PerformanceAware{}
	o := obs4()
	a := p.Provision(80, o)
	b := base.Provision(80, obs4())
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("no-floor EnergyAware diverges from base: %v vs %v", a, b)
		}
	}
}

// With the exponent matched to the true power elasticity, the φ feedback
// carries no systematic bias: two identical islands under a synthetic
// elastic plant keep near-equal allocations, while the paper's cube root
// (too small for a sub-cubic plant) drives blind concentration.
func TestPowerExponentCalibrationPreventsBlindConcentration(t *testing.T) {
	const elasticity = 1.5
	run := func(exponent float64, seed uint64) float64 {
		p := &PerformanceAware{PowerExponent: exponent, ReclaimHeadroomFrac: -1}
		r := stats.NewRand(seed)
		o := []IslandObs{
			{Island: 0, PowerW: 20, BIPS: 4, MaxPowerW: 48},
			{Island: 1, PowerW: 20, BIPS: 4, MaxPowerW: 48},
		}
		alloc := p.Provision(40, o)
		for k := 0; k < 60; k++ {
			for i := range o {
				o[i].AllocW = alloc[i]
				o[i].PowerW = alloc[i]
				// BIPS ∝ f ∝ P^(1/elasticity), with small noise.
				o[i].BIPS = 4 * math.Pow(alloc[i]/20, 1/elasticity) * (1 + r.Norm(0, 0.01))
			}
			alloc = p.Provision(40, o)
		}
		return math.Abs(alloc[0] - alloc[1])
	}
	biased := run(1.0/3.0, 3)
	matched := run(1/elasticity, 3)
	if matched > 4 {
		t.Errorf("calibrated exponent still concentrates: |Δ| = %.1f W", matched)
	}
	// The one-epoch lag in Equation 4's power ratio damps the runaway in
	// this synthetic setting, so the cube root need not be *worse* here —
	// but it must at least stay bounded too.
	if biased > 15 {
		t.Errorf("cube-root exponent diverged: |Δ| = %.1f W", biased)
	}
}

// SetBudgetW must enforce the same boundary as NewManager: non-finite AND
// non-positive updates are ignored, the previous budget held. The pre-fix
// code let w <= 0 through, zeroing every subsequent provision.
func TestSetBudgetWBoundary(t *testing.T) {
	cases := []struct {
		name string
		w    float64
		want float64 // budget after the call, starting from 80
	}{
		{"zero held", 0, 80},
		{"negative held", -5, 80},
		{"NaN held", math.NaN(), 80},
		{"+Inf held", math.Inf(1), 80},
		{"-Inf held", math.Inf(-1), 80},
		{"positive applied", 42, 42},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := NewManager(EqualShare{}, 80)
			if err != nil {
				t.Fatal(err)
			}
			m.SetBudgetW(tc.w)
			if got := m.BudgetW(); got != tc.want {
				t.Errorf("SetBudgetW(%v): budget = %v, want %v", tc.w, got, tc.want)
			}
		})
	}
}

// enforceCaps must not drop reclaimed budget when the only islands with
// headroom sit at zero allocation: proportional redistribution weights them
// all at zero, so the excess must be spread equally instead. The pre-fix
// code returned with the excess unspent.
func TestEnforceCapsZeroAllocOpenEntries(t *testing.T) {
	t.Run("single open entry at zero", func(t *testing.T) {
		alloc := []float64{4, 0}
		caps := []float64{2, math.Inf(1)}
		enforceCaps(alloc, caps)
		if alloc[0] != 2 {
			t.Errorf("capped entry = %v, want 2", alloc[0])
		}
		if alloc[1] != 2 {
			t.Errorf("open zero entry received %v W, want the full 2 W excess", alloc[1])
		}
	})
	t.Run("excess spread equally over open zero entries", func(t *testing.T) {
		alloc := []float64{6, 0, 0}
		caps := []float64{2, 3, math.Inf(1)}
		enforceCaps(alloc, caps)
		if alloc[0] != 2 {
			t.Errorf("capped entry = %v, want 2", alloc[0])
		}
		if alloc[1] != 2 || alloc[2] != 2 {
			t.Errorf("open entries = %v, want 2 W each", alloc[1:])
		}
		if s := sum(alloc); math.Abs(s-6) > 1e-12 {
			t.Errorf("total %v changed, want 6 preserved", s)
		}
	})
	t.Run("equal spread respects caps", func(t *testing.T) {
		alloc := []float64{9, 0, 0}
		caps := []float64{1, 2, math.Inf(1)}
		enforceCaps(alloc, caps)
		for i := range alloc {
			if alloc[i] > caps[i]+1e-12 {
				t.Errorf("alloc[%d] = %v exceeds cap %v", i, alloc[i], caps[i])
			}
		}
		// 8 W excess: equal spread gives each open entry 4, entry 1 clamps
		// to 2, and its 2 W of re-excess flows on to the unbounded entry.
		if alloc[1] != 2 || alloc[2] != 6 {
			t.Errorf("alloc = %v, want [1 2 6]", alloc)
		}
	})
	t.Run("all capped still drops excess", func(t *testing.T) {
		alloc := []float64{5, 5}
		caps := []float64{2, 2}
		enforceCaps(alloc, caps)
		if alloc[0] != 2 || alloc[1] != 2 {
			t.Errorf("alloc = %v, want clamped to caps", alloc)
		}
	})
}
