package gpm

import (
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/snapshot"
	"github.com/cpm-sim/cpm/internal/thermal"
)

func TestManagerRejectsNonFiniteBudget(t *testing.T) {
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := NewManager(EqualShare{}, w); err == nil {
			t.Errorf("NewManager(%v) should be rejected", w)
		}
	}
	m, err := NewManager(EqualShare{}, 80)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		m.SetBudgetW(w)
		if got := m.BudgetW(); got != 80 {
			t.Errorf("SetBudgetW(%v) changed budget to %v, want previous 80 held", w, got)
		}
	}
	m.SetBudgetW(60)
	if m.BudgetW() != 60 {
		t.Errorf("finite SetBudgetW should apply, got %v", m.BudgetW())
	}
}

// drive advances a manager through a few provisioning epochs so the
// stateful policies accumulate history worth snapshotting.
func drive(m *Manager, epochs int) {
	obs := obs4()
	for e := 0; e < epochs; e++ {
		alloc := m.Provision(obs)
		for i := range obs {
			obs[i].AllocW = alloc[i]
			obs[i].PowerW = alloc[i] * (0.8 + 0.05*float64(i) + 0.01*float64(e))
			obs[i].BIPS = 1 + 0.5*float64(i) + 0.1*float64(e)
		}
	}
}

func managerSnapshotRoundTrip(t *testing.T, mk func() Policy) {
	t.Helper()
	src, err := NewManager(mk(), 80)
	if err != nil {
		t.Fatal(err)
	}
	drive(src, 5)
	src.SetBudgetW(72)

	e := snapshot.NewEncoder()
	src.Snapshot(e)

	dst, err := NewManager(mk(), 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(snapshot.NewDecoder(e.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if dst.BudgetW() != 72 {
		t.Fatalf("restored budget = %v, want 72", dst.BudgetW())
	}

	// The restored manager must provision identically to the original from
	// here on: run both forward and compare allocations exactly.
	srcObs, dstObs := obs4(), obs4()
	for e := 0; e < 4; e++ {
		sa := src.Provision(srcObs)
		da := dst.Provision(dstObs)
		for i := range sa {
			if sa[i] != da[i] {
				t.Fatalf("epoch %d island %d: restored alloc %v != original %v", e, i, da[i], sa[i])
			}
			srcObs[i].AllocW, dstObs[i].AllocW = sa[i], da[i]
			srcObs[i].PowerW = sa[i] * 0.9
			dstObs[i].PowerW = da[i] * 0.9
		}
	}
}

func TestManagerSnapshotRoundTrip(t *testing.T) {
	fp, err := thermal.Grid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func() Policy{
		"equal-share": func() Policy { return EqualShare{} },
		"performance": func() Policy { return &PerformanceAware{} },
		"variation":   func() Policy { return &VariationAware{} },
		"mpc":         func() Policy { return &ModelPredictive{} },
		"cache-aware": func() Policy { return &CacheAware{} },
		"energy":      func() Policy { return &EnergyAware{Base: &PerformanceAware{}, FloorBIPS: 5} },
		"thermal": func() Policy {
			return &ThermalAware{
				Base:                 &PerformanceAware{},
				Floorplan:            fp,
				AdjacentPairCap:      0.5,
				ConsecutiveLimit:     2,
				SoloCap:              0.3,
				SoloConsecutiveLimit: 4,
			}
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) { managerSnapshotRoundTrip(t, mk) })
	}
}

func TestManagerRestoreRejectsPolicyMismatch(t *testing.T) {
	src, err := NewManager(&PerformanceAware{}, 80)
	if err != nil {
		t.Fatal(err)
	}
	drive(src, 3)
	e := snapshot.NewEncoder()
	src.Snapshot(e)

	dst, err := NewManager(EqualShare{}, 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(snapshot.NewDecoder(e.Bytes())); err == nil {
		t.Fatal("restoring a performance-aware snapshot into an equal-share manager should fail")
	}
}
