package gpm

import "github.com/cpm-sim/cpm/internal/thermal"

// ThermalAware is the thermal-aware provisioning policy of Figure 18: it
// wraps a base policy (performance-aware in the paper's evaluation) and
// vetoes allocations that would sustain hotspot-forming power patterns.
//
// The paper's constraints, for islands mapped onto a floorplan:
//
//  1. two *adjacent* islands may not jointly receive more than
//     AdjacentPairCap of the chip budget for more than ConsecutiveLimit
//     consecutive GPM invocations, and
//  2. a single island may not receive more than SoloCap of the budget for
//     more than SoloConsecutiveLimit consecutive invocations.
//
// When a streak is about to exceed its limit, the offending allocations are
// trimmed to the cap boundary and the freed budget is redistributed to
// unconstrained islands.
type ThermalAware struct {
	// Base decides the unconstrained allocation (EqualShare if nil).
	Base Policy
	// Floorplan maps island indices to die positions; islands are adjacent
	// when their positions abut. (For the Figure 18 evaluation each island
	// is a single core, so island index == core index.)
	Floorplan thermal.Floorplan
	// AdjacentPairCap is the budget fraction two adjacent islands may
	// jointly hold (paper: 50%).
	AdjacentPairCap float64
	// ConsecutiveLimit is the number of consecutive invocations a pair may
	// exceed the cap before intervention (paper: 2).
	ConsecutiveLimit int
	// SoloCap is the budget fraction one island may hold (paper: 30%).
	SoloCap float64
	// SoloConsecutiveLimit is the solo streak limit (paper: 4).
	SoloConsecutiveLimit int

	pairStreak map[[2]int]int
	soloStreak []int
}

// Name implements Policy.
func (p *ThermalAware) Name() string { return "thermal-aware" }

// Provision implements Policy.
func (p *ThermalAware) Provision(budgetW float64, obs []IslandObs) []float64 {
	base := p.Base
	if base == nil {
		base = EqualShare{}
	}
	alloc := base.Provision(budgetW, obs)
	n := len(alloc)
	if p.pairStreak == nil {
		p.pairStreak = make(map[[2]int]int)
	}
	if len(p.soloStreak) != n {
		p.soloStreak = make([]int, n)
	}

	// Enforce to a fixed point: trimming one constraint redistributes
	// budget that can push another (already-checked) constraint over its
	// cap, so iterate solo+pair passes, and on the final pass trim without
	// redistribution — guaranteeing feasibility at worst by leaving budget
	// unspent. Only constraints whose streak is already at its limit are
	// binding this epoch (the limits permit short excursions by design).
	soloCapW := p.SoloCap * budgetW
	pairCapW := p.AdjacentPairCap * budgetW
	// Trim to just below the caps so floating-point rounding can never
	// leave an allocation marginally above and silently extend a streak.
	const trimMargin = 0.995
	const maxPasses = 8
	for pass := 0; pass < maxPasses; pass++ {
		final := pass == maxPasses-1
		changed := false
		if p.SoloCap > 0 {
			for i := range alloc {
				if alloc[i] > soloCapW+1e-9 && p.soloStreak[i] >= p.SoloConsecutiveLimit {
					freed := alloc[i] - trimMargin*soloCapW
					alloc[i] = trimMargin * soloCapW
					if !final {
						redistribute(alloc, freed, map[int]bool{i: true})
					}
					changed = true
				}
			}
		}
		if p.AdjacentPairCap > 0 {
			for a := 0; a < n; a++ {
				for _, b := range p.Floorplan.Neighbors(a) {
					if b <= a || b >= n {
						continue
					}
					key := [2]int{a, b}
					if alloc[a]+alloc[b] > pairCapW+1e-9 && p.pairStreak[key] >= p.ConsecutiveLimit {
						scale := trimMargin * pairCapW / (alloc[a] + alloc[b])
						freed := (alloc[a] + alloc[b]) * (1 - scale)
						alloc[a] *= scale
						alloc[b] *= scale
						if !final {
							redistribute(alloc, freed, map[int]bool{a: true, b: true})
						}
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Update streaks from the final allocation.
	for i := range alloc {
		if p.SoloCap > 0 && alloc[i] > soloCapW {
			p.soloStreak[i]++
		} else {
			p.soloStreak[i] = 0
		}
	}
	for a := 0; a < n; a++ {
		for _, b := range p.Floorplan.Neighbors(a) {
			if b <= a || b >= n {
				continue
			}
			key := [2]int{a, b}
			if p.AdjacentPairCap > 0 && alloc[a]+alloc[b] > pairCapW {
				p.pairStreak[key]++
			} else {
				p.pairStreak[key] = 0
			}
		}
	}
	return alloc
}

// Violations counts, for a given allocation trace produced by some *other*
// policy, how many invocations violated this policy's constraints — the
// measurement behind Figure 18(c). It is stateless with respect to the
// receiver's streak tracking.
func (p *ThermalAware) Violations(budgetW float64, allocs [][]float64) int {
	pairStreak := map[[2]int]int{}
	var soloStreak []int
	violations := 0
	for _, alloc := range allocs {
		n := len(alloc)
		if len(soloStreak) != n {
			soloStreak = make([]int, n)
		}
		bad := false
		if p.SoloCap > 0 {
			soloCapW := p.SoloCap * budgetW
			for i := 0; i < n; i++ {
				if alloc[i] > soloCapW {
					soloStreak[i]++
					if soloStreak[i] > p.SoloConsecutiveLimit {
						bad = true
					}
				} else {
					soloStreak[i] = 0
				}
			}
		}
		if p.AdjacentPairCap > 0 {
			pairCapW := p.AdjacentPairCap * budgetW
			for a := 0; a < n; a++ {
				for _, b := range p.Floorplan.Neighbors(a) {
					if b <= a || b >= n {
						continue
					}
					key := [2]int{a, b}
					if alloc[a]+alloc[b] > pairCapW {
						pairStreak[key]++
						if pairStreak[key] > p.ConsecutiveLimit {
							bad = true
						}
					} else {
						pairStreak[key] = 0
					}
				}
			}
		}
		if bad {
			violations++
		}
	}
	return violations
}

// redistribute spreads freed watts over islands not in excluded,
// proportionally to their current allocation.
func redistribute(alloc []float64, freed float64, excluded map[int]bool) {
	var sum float64
	for i, a := range alloc {
		if !excluded[i] {
			sum += a
		}
	}
	if sum <= 0 {
		return // nothing to give it to; leave the budget unspent
	}
	for i := range alloc {
		if !excluded[i] {
			alloc[i] += freed * alloc[i] / sum
		}
	}
}

// BaseOf implements BasePolicy, exposing the wrapped policy to capability
// probes (see WantsCacheSignals).
func (p *ThermalAware) BaseOf() Policy { return p.Base }
