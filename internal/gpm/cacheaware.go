package gpm

import "math"

// CacheAware is a THEAS-style provisioning policy: power follows the memory
// hierarchy. An island whose working set is resident (high L2 hit fraction
// over the past epoch) converts frequency into throughput nearly linearly,
// so extra budget buys performance there; an island missing to memory
// stalls regardless of its operating point, so its budget is largely
// wasted. The policy therefore weights each island by occupancy-weighted
// responsiveness:
//
//	w_i = (OccFloor + occ_i) · BIPS_i / P_i
//
// where occ_i is the epoch's L2 hit fraction (the occupancy proxy: a
// resident working set hits, a thrashing one misses), and BIPS/P is the
// island's demonstrated efficiency at converting watts into instructions.
// OccFloor keeps a memory-bound island from starving outright — misses
// still need cycles to generate. Weights are EMA-smoothed across epochs so
// one transient phase does not slosh the whole budget, floored at
// MinShareFrac of the equal split, normalized to the budget, and capped at
// island maximum power with the usual excess redistribution.
//
// The controller feeds the L2 (and L1-D) deltas through IslandObs only for
// policies that implement CacheSignalPolicy; CacheAware is the first.
type CacheAware struct {
	// SmoothAlpha is the EMA coefficient on the per-island weights
	// (1 = no smoothing; default 0.5).
	SmoothAlpha float64
	// OccFloor is the occupancy weight a fully-missing island retains
	// (default 0.25).
	OccFloor float64
	// MinShareFrac floors each island's allocation at this fraction of the
	// equal split (default 0.15), as in PerformanceAware.
	MinShareFrac float64

	w      []float64
	primed bool
}

// cacheAwareWeightMax bounds a single epoch's raw weight so that no finite
// sum of weights can overflow the normalization (see Provision).
const cacheAwareWeightMax = 1e12

// Name implements Policy.
func (p *CacheAware) Name() string { return "cache-aware" }

// WantsCacheSignals implements CacheSignalPolicy: this policy is why the
// controller collects per-island cache deltas at all.
func (p *CacheAware) WantsCacheSignals() bool { return true }

func (p *CacheAware) smoothAlpha() float64 {
	if p.SmoothAlpha <= 0 || p.SmoothAlpha > 1 {
		return 0.5
	}
	return p.SmoothAlpha
}

func (p *CacheAware) occFloor() float64 {
	if p.OccFloor <= 0 {
		return 0.25
	}
	return p.OccFloor
}

func (p *CacheAware) minShareFrac() float64 {
	if p.MinShareFrac <= 0 {
		return 0.15
	}
	return p.MinShareFrac
}

// Provision implements Policy.
func (p *CacheAware) Provision(budgetW float64, obs []IslandObs) []float64 {
	n := len(obs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if !(budgetW > 0) || math.IsInf(budgetW, 0) {
		return out
	}
	equal := budgetW / float64(n)

	alpha := p.smoothAlpha()
	occFloor := p.occFloor()
	if !p.primed || len(p.w) != n {
		p.w = make([]float64, n)
		for i := range p.w {
			p.w[i] = 1
		}
		p.primed = true
		for i := range out {
			out[i] = equal
		}
		return out
	}

	for i, o := range obs {
		// Occupancy proxy: the epoch's L2 hit fraction. No accesses —
		// a core that never left L1 — reads as fully resident.
		occ := 1.0
		acc := finitePos(o.L2Accesses, 0)
		miss := finitePos(o.L2Misses, 0)
		if acc > 0 {
			occ = 1 - math.Min(miss, acc)/acc
		}
		// Responsiveness: demonstrated BIPS per watt at the island's
		// current operating point.
		bips := finitePos(o.BIPS, 0)
		pw := finitePos(o.PowerW, 0)
		resp := 0.0
		if pw > 0 {
			resp = bips / pw
		}
		raw := (occFloor + occ) * resp
		// The ratio can overflow (huge BIPS over subnormal power → +Inf),
		// and an infinite weight would turn the normalization below into
		// NaN; clamp to a bound that still dwarfs any real efficiency.
		if !(raw < cacheAwareWeightMax) {
			raw = cacheAwareWeightMax
		}
		p.w[i] = alpha*raw + (1-alpha)*p.w[i]
	}

	sum := 0.0
	for _, w := range p.w {
		sum += w
	}
	floor := p.minShareFrac() * equal
	if sum <= 0 {
		// No island demonstrated any efficiency (idle chip): equal split.
		for i := range out {
			out[i] = equal
		}
		return out
	}
	total := 0.0
	for i := range out {
		out[i] = budgetW * p.w[i] / sum
		if out[i] < floor {
			out[i] = floor
		}
		total += out[i]
	}
	// The floor can oversubscribe; renormalize onto the budget.
	if total > budgetW {
		scale := budgetW / total
		for i := range out {
			out[i] *= scale
		}
	}

	caps := make([]float64, n)
	for i, o := range obs {
		caps[i] = finitePos(o.MaxPowerW, math.Inf(1))
		if caps[i] <= 0 {
			caps[i] = math.Inf(1)
		}
	}
	enforceCaps(out, caps)
	return out
}
