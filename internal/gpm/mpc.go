package gpm

import "math"

// ModelPredictive is an MPC-style provisioning policy: instead of reacting
// to the last epoch's responsiveness ratio (PerformanceAware), it *plans*
// over an H-epoch horizon using the same interval model the simulator is
// built on — the cube law of Equation (1), performance scaling with the
// cube root of the power ratio — and commits the first move of the best
// plan, re-planning every epoch (receding horizon).
//
// Each epoch the policy enumerates a small deterministic candidate set of
// share vectors: hold the current shares, return to the equal split, and
// every pairwise transfer of StepFrac of the budget from island i to island
// j. Transfers respect two floors: the static minimum-share floor, and a
// *demonstrated-power* floor — an island is never planned more than a small
// concession below the power it just exhibited, because an island pinned at
// its bottom operating point cannot spend less no matter the provision, and
// planning below its floor power only moves a budget violation around
// instead of freeing real watts. Each candidate is rolled forward
// H epochs: island power converges toward its (cap-clamped) allocation at
// rate ConvergeRate per epoch — the closed-loop settling the PIC tier
// provides — and predicted BIPS follows the cube-law power ratio. The
// candidate with the highest cumulative predicted BIPS wins; ties break to
// the earliest candidate so the choice is deterministic.
//
// The policy is stateful (it carries its current share vector across
// epochs) and implements StatefulPolicy for bit-identical resume.
type ModelPredictive struct {
	// Horizon is the number of epochs each candidate plan is rolled
	// forward (default 3). Longer horizons weight sustained gains over
	// one-epoch spikes; with the memoryless cube-law model the marginal
	// value fades quickly.
	Horizon int
	// StepFrac is the fraction of the budget a pairwise-transfer candidate
	// moves between two islands (default 0.05).
	StepFrac float64
	// PowerExponent relates predicted performance to power ratios, as in
	// PerformanceAware (default 1/3, the paper's cube law).
	PowerExponent float64
	// MinShareFrac floors each island's share of the equal split (default
	// 0.15), preventing starvation exactly as in PerformanceAware.
	MinShareFrac float64
	// ConvergeRate is the per-epoch fraction by which island power closes
	// the gap to its allocation in the rollout model (default 0.6 — the
	// PIC tier settles well within an epoch, but transducer error and
	// quantization leave a remainder).
	ConvergeRate float64

	shares []float64
	primed bool
}

// demonstratedFloorFrac is the fraction of an island's demonstrated power
// below which the planner never cuts its allocation in one move: a 5%
// concession per epoch is what the closed PIC loop reliably settles, and an
// island pinned at its bottom operating point holds its floor power
// regardless, so deeper cuts cannot be realized.
const demonstratedFloorFrac = 0.95

// Name implements Policy.
func (p *ModelPredictive) Name() string { return "mpc-gpm" }

func (p *ModelPredictive) horizon() int {
	if p.Horizon <= 0 {
		return 3
	}
	return p.Horizon
}

func (p *ModelPredictive) stepFrac() float64 {
	if p.StepFrac <= 0 {
		return 0.05
	}
	return p.StepFrac
}

func (p *ModelPredictive) exponent() float64 {
	if p.PowerExponent <= 0 {
		return 1.0 / 3.0
	}
	return p.PowerExponent
}

func (p *ModelPredictive) minShareFrac() float64 {
	if p.MinShareFrac <= 0 {
		return 0.15
	}
	return p.MinShareFrac
}

func (p *ModelPredictive) convergeRate() float64 {
	if p.ConvergeRate <= 0 || p.ConvergeRate > 1 {
		return 0.6
	}
	return p.ConvergeRate
}

// Provision implements Policy.
func (p *ModelPredictive) Provision(budgetW float64, obs []IslandObs) []float64 {
	n := len(obs)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	if !(budgetW > 0) || math.IsInf(budgetW, 0) {
		return out
	}
	equal := 1.0 / float64(n)
	if !p.primed || len(p.shares) != n {
		p.shares = make([]float64, n)
		for i := range p.shares {
			p.shares[i] = equal
		}
		p.primed = true
		for i := range out {
			out[i] = budgetW * equal
		}
		return out
	}

	// Sanitized model inputs: power and BIPS baselines for the rollout.
	pow := make([]float64, n)
	bips := make([]float64, n)
	caps := make([]float64, n)
	for i, o := range obs {
		pow[i] = finitePos(o.PowerW, budgetW*equal)
		bips[i] = finitePos(o.BIPS, 0)
		caps[i] = finitePos(o.MaxPowerW, math.Inf(1))
		if caps[i] <= 0 {
			caps[i] = math.Inf(1)
		}
	}

	// Per-island plan floor: the static minimum share, raised to a small
	// concession below the island's demonstrated power — cutting further
	// than the PIC can actually settle in one epoch just produces an island
	// overshooting its provision. An incumbent share already below its
	// floor is not lifted (the next upward transfer fixes it); it simply
	// cannot be cut further.
	floor := make([]float64, n)
	base := p.minShareFrac() * equal
	for i := range floor {
		floor[i] = base
		if f := demonstratedFloorFrac * pow[i] / budgetW; f > floor[i] {
			floor[i] = f
		}
		// A floor above the island's physical cap would pin budget on an
		// island that cannot spend it — on a heterogeneous chip a little
		// island's cap share sits well below the equal split, so the floor
		// clamps to the cap first.
		if cap := caps[i] / budgetW; floor[i] > cap {
			floor[i] = cap
		}
		if floor[i] > p.shares[i] {
			floor[i] = p.shares[i]
		}
	}
	step := p.stepFrac()
	best := append([]float64(nil), p.shares...)
	bestScore := p.rollout(budgetW, best, pow, bips, caps)

	try := func(cand []float64) {
		if s := p.rollout(budgetW, cand, pow, bips, caps); s > bestScore {
			bestScore = s
			best = append(best[:0:0], cand...)
		}
	}

	eq := make([]float64, n)
	eqFeasible := true
	for i := range eq {
		eq[i] = equal
		if equal < floor[i] {
			eqFeasible = false
		}
	}
	if eqFeasible {
		try(eq)
	}

	cand := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			move := step
			if p.shares[i]-move < floor[i] {
				move = p.shares[i] - floor[i]
			}
			if move <= 0 {
				continue
			}
			copy(cand, p.shares)
			cand[i] -= move
			cand[j] += move
			try(cand)
		}
	}

	p.shares = append(p.shares[:0:0], best...)
	for i := range out {
		out[i] = budgetW * best[i]
	}
	enforceCaps(out, caps)
	return out
}

// rollout scores one candidate share vector: cumulative predicted BIPS over
// the horizon under the converge-toward-allocation power model and the
// cube-law performance model.
func (p *ModelPredictive) rollout(budgetW float64, shares, pow, bips, caps []float64) float64 {
	h := p.horizon()
	kappa := p.convergeRate()
	e := p.exponent()
	total := 0.0
	for i := range shares {
		target := budgetW * shares[i]
		if target > caps[i] {
			target = caps[i]
		}
		pi := pow[i]
		p0 := pi
		if p0 <= 0 {
			// An island observed at zero power gives the ratio model no
			// baseline; score it by its target share directly so budget
			// still counts for something there.
			total += bips[i] * float64(h)
			continue
		}
		for k := 0; k < h; k++ {
			pi += kappa * (target - pi)
			total += bips[i] * math.Pow(pi/p0, e)
		}
	}
	return total
}

// WantsCacheSignals implements CacheSignalPolicy: the rollout model runs on
// power and BIPS only.
func (p *ModelPredictive) WantsCacheSignals() bool { return false }

// finitePos sanitizes a model input: non-finite or negative values become
// the fallback.
func finitePos(v, fallback float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fallback
	}
	return v
}
