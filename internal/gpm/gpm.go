// Package gpm implements the Global Power Manager of §II-C: the first tier
// of the CPM architecture, invoked every T_global (20 PIC intervals by
// default) to provision the chip-wide power budget across the
// voltage/frequency islands.
//
// Provisioning is delegated to a Policy; the package ships the three
// policies the paper evaluates — performance-aware (Equations 4–6),
// thermal-aware (Figure 18) and variation-aware (§IV-B) — plus the
// max-share constraint decorator sketched in §II-C. The decoupling is the
// point: policies decide *how much* power each island gets, the PICs
// guarantee each island *stays at* its provision, so ΣP_i = P_target implies
// the chip tracks the global budget.
package gpm

import (
	"errors"
	"fmt"
	"math"
)

// IslandObs is what the GPM observes about one island at invocation time:
// interval aggregates over the epoch that just ended.
type IslandObs struct {
	// Island is the island index.
	Island int
	// AllocW is the allocation the island received for the past epoch.
	AllocW float64
	// PowerW is the island's measured mean power over the past epoch.
	PowerW float64
	// BIPS is the island's mean instruction throughput over the past epoch.
	BIPS float64
	// MaxPowerW is the island's maximum power (static).
	MaxPowerW float64
	// LeakMult is the island's process-variation leakage multiplier
	// (static; used by the variation-aware policy).
	LeakMult float64
	// Level is the island's current DVFS level.
	Level int
	// L2Accesses/L2Misses are the island's shared-L2 access and miss
	// deltas over the past epoch. The controller fills them only when the
	// active policy implements CacheSignalPolicy (see CacheAware); they
	// are zero otherwise.
	L2Accesses, L2Misses float64
	// L1DAccesses/L1DMisses are the corresponding private L1-D deltas.
	L1DAccesses, L1DMisses float64
}

// CacheSignalPolicy is the optional capability a Policy implements when its
// provisioning decisions read the IslandObs cache-delta fields. The
// controller probes for it (through decorators via BasePolicy) and only
// collects per-island cache counters when some policy in the chain wants
// them, so the common policies pay nothing.
type CacheSignalPolicy interface {
	Policy
	// WantsCacheSignals reports whether the policy reads cache deltas.
	WantsCacheSignals() bool
}

// BasePolicy is the optional capability of decorator policies (thermal,
// energy) that wrap another policy, letting capability probes such as
// WantsCacheSignals traverse the chain.
type BasePolicy interface {
	// BaseOf returns the wrapped policy (nil when none).
	BaseOf() Policy
}

// WantsCacheSignals reports whether p — or any policy it decorates — asks
// for the IslandObs cache-delta fields.
func WantsCacheSignals(p Policy) bool {
	for p != nil {
		if cs, ok := p.(CacheSignalPolicy); ok && cs.WantsCacheSignals() {
			return true
		}
		b, ok := p.(BasePolicy)
		if !ok {
			return false
		}
		p = b.BaseOf()
	}
	return false
}

// Policy decides the next epoch's per-island allocations.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Provision returns per-island power allocations in watts. The sum of
	// allocations must not exceed budgetW.
	Provision(budgetW float64, obs []IslandObs) []float64
}

// EqualShare is the trivial baseline policy: the budget is split evenly —
// also the initial condition of every other policy (P_i(0) = P_target/N).
type EqualShare struct{}

// Name implements Policy.
func (EqualShare) Name() string { return "equal-share" }

// Provision implements Policy.
func (EqualShare) Provision(budgetW float64, obs []IslandObs) []float64 {
	out := make([]float64, len(obs))
	if len(obs) == 0 {
		return out
	}
	share := budgetW / float64(len(obs))
	for i := range out {
		out[i] = share
	}
	return out
}

// Manager runs a policy and enforces the budget invariant.
type Manager struct {
	policy  Policy
	budgetW float64

	provisionHooks []func(budgetW float64, obs []IslandObs, alloc []float64)
}

// SetProvisionHook installs a callback invoked after every Provision with
// the budget, the island observations the policy saw, and the clipped
// allocations it produced — the gpm-layer attachment point for observers.
// The slices are live; callers must copy what they keep. Set replaces every
// previously installed hook; a nil hook detaches them all. Not safe to call
// concurrently with Provision.
func (m *Manager) SetProvisionHook(fn func(budgetW float64, obs []IslandObs, alloc []float64)) {
	m.provisionHooks = m.provisionHooks[:0]
	if fn != nil {
		m.provisionHooks = append(m.provisionHooks, fn)
	}
}

// AddProvisionHook appends a hook without disturbing the ones already
// installed, so independent observers (the engine runner, telemetry) can
// subscribe to the same manager. The same live-slice contract applies. A
// nil hook is ignored. Not safe to call concurrently with Provision.
func (m *Manager) AddProvisionHook(fn func(budgetW float64, obs []IslandObs, alloc []float64)) {
	if fn != nil {
		m.provisionHooks = append(m.provisionHooks, fn)
	}
}

// NewManager builds a GPM with the given policy and chip budget in watts.
// The budget must be positive and finite: a NaN or +Inf budget passes a
// plain `<= 0` test and then poisons every provision the manager ever
// makes, so non-finite values are rejected at this boundary.
func NewManager(policy Policy, budgetW float64) (*Manager, error) {
	if policy == nil {
		return nil, errors.New("gpm: nil policy")
	}
	if math.IsNaN(budgetW) || math.IsInf(budgetW, 0) {
		return nil, fmt.Errorf("gpm: non-finite budget %v", budgetW)
	}
	if budgetW <= 0 {
		return nil, errors.New("gpm: non-positive budget")
	}
	return &Manager{policy: policy, budgetW: budgetW}, nil
}

// BudgetW returns the chip budget.
func (m *Manager) BudgetW() float64 { return m.budgetW }

// SetBudgetW updates the chip budget (budget-sweep experiments).
// Non-finite and non-positive budgets are ignored and the previous budget
// held, matching the NewManager boundary check (see there for why): a zero
// or negative budget would zero every provision and drive all PICs to the
// bottom of the DVFS table with no way to recover the intended budget.
func (m *Manager) SetBudgetW(w float64) {
	if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
		return
	}
	m.budgetW = w
}

// Policy returns the active policy.
func (m *Manager) Policy() Policy { return m.policy }

// Provision invokes the policy and clips the result so that the invariant
// Σ alloc ≤ budget holds regardless of policy bugs, scaling allocations
// proportionally if the policy oversubscribed.
func (m *Manager) Provision(obs []IslandObs) []float64 {
	alloc := m.policy.Provision(m.budgetW, obs)
	if len(alloc) != len(obs) {
		// A policy returning the wrong arity is a programming error;
		// recover to an equal split rather than crash a long experiment.
		alloc = EqualShare{}.Provision(m.budgetW, obs)
	}
	sum := 0.0
	for i, a := range alloc {
		if a < 0 || math.IsNaN(a) || math.IsInf(a, 0) {
			alloc[i] = 0
			a = 0
		}
		sum += a
	}
	if sum > m.budgetW && sum > 0 {
		scale := m.budgetW / sum
		for i := range alloc {
			alloc[i] *= scale
		}
	}
	for _, h := range m.provisionHooks {
		h(m.budgetW, obs, alloc)
	}
	return alloc
}
