package gpm

import "testing"

func TestProvisionHookSeesClippedAllocation(t *testing.T) {
	m, err := NewManager(EqualShare{}, 80)
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	m.SetProvisionHook(func(budgetW float64, obs []IslandObs, alloc []float64) {
		calls++
		if budgetW != 80 {
			t.Errorf("hook budget = %v, want 80", budgetW)
		}
		if len(obs) != 4 || len(alloc) != 4 {
			t.Fatalf("hook slices %d/%d, want 4/4", len(obs), len(alloc))
		}
		if s := sum(alloc); s > 80+1e-9 {
			t.Errorf("hook saw unclipped allocation summing to %v", s)
		}
	})
	alloc := m.Provision(obs4())
	if calls != 1 {
		t.Fatalf("hook fired %d times, want 1", calls)
	}
	if len(alloc) != 4 {
		t.Fatalf("allocation length %d", len(alloc))
	}

	m.SetProvisionHook(nil)
	m.Provision(obs4())
	if calls != 1 {
		t.Error("detached hook still fired")
	}
}

// TestProvisionHookFanOut pins the Add/Set semantics: Add subscribes
// alongside existing hooks, Set replaces them all, Set(nil) detaches all.
func TestProvisionHookFanOut(t *testing.T) {
	m, err := NewManager(EqualShare{}, 80)
	if err != nil {
		t.Fatal(err)
	}
	var a, b, c int
	m.AddProvisionHook(func(float64, []IslandObs, []float64) { a++ })
	m.AddProvisionHook(func(float64, []IslandObs, []float64) { b++ })
	m.AddProvisionHook(nil) // ignored
	m.Provision(obs4())
	if a != 1 || b != 1 {
		t.Fatalf("added hooks fired %d/%d times, want 1/1", a, b)
	}
	m.SetProvisionHook(func(float64, []IslandObs, []float64) { c++ })
	m.Provision(obs4())
	if a != 1 || b != 1 || c != 1 {
		t.Fatalf("after Set: fired %d/%d/%d, want 1/1/1 (Set must replace)", a, b, c)
	}
	m.SetProvisionHook(nil)
	m.Provision(obs4())
	if a != 1 || b != 1 || c != 1 {
		t.Error("Set(nil) left a hook attached")
	}
}
