package gpm

// EnergyAware is the energy-minimizing policy §II-C sketches but does not
// evaluate: "policies for reducing energy consumption by providing a
// minimum guarantee on the performance ... are also feasible using our
// approach". It wraps a base policy with an outer loop on the *effective*
// budget: while chip throughput stays above the guaranteed floor, the
// offered budget is progressively shrunk (saving energy); when throughput
// dips below the floor, budget is restored quickly. The asymmetric rates
// make the floor a soft barrier approached from above.
type EnergyAware struct {
	// Base decides the per-island split of the effective budget
	// (performance-aware if nil).
	Base Policy
	// FloorBIPS is the guaranteed minimum chip throughput.
	FloorBIPS float64
	// ShrinkRate is the multiplicative budget decrease per epoch while the
	// throughput has headroom (default 0.97).
	ShrinkRate float64
	// RecoverRate is the divisor applied when the floor is breached
	// (default 0.94 — recovery is faster than decay).
	RecoverRate float64
	// MinBudgetFrac bounds the effective budget from below as a fraction
	// of the offered one (default 0.4).
	MinBudgetFrac float64
	// HeadroomFrac is the throughput margin above the floor required
	// before shrinking further (default 0.02).
	HeadroomFrac float64

	shrink float64
}

// Name implements Policy.
func (p *EnergyAware) Name() string { return "energy-aware" }

// Shrink exposes the current effective-budget fraction for telemetry.
func (p *EnergyAware) Shrink() float64 {
	if p.shrink == 0 {
		return 1
	}
	return p.shrink
}

// Provision implements Policy.
func (p *EnergyAware) Provision(budgetW float64, obs []IslandObs) []float64 {
	base := p.Base
	if base == nil {
		base = &PerformanceAware{}
	}
	shrinkRate := p.ShrinkRate
	if shrinkRate <= 0 || shrinkRate >= 1 {
		shrinkRate = 0.97
	}
	recoverRate := p.RecoverRate
	if recoverRate <= 0 || recoverRate >= 1 {
		recoverRate = 0.94
	}
	minFrac := p.MinBudgetFrac
	if minFrac <= 0 || minFrac > 1 {
		minFrac = 0.4
	}
	headroom := p.HeadroomFrac
	if headroom <= 0 {
		headroom = 0.02
	}
	if p.shrink == 0 {
		p.shrink = 1
	}

	total := 0.0
	for _, o := range obs {
		total += o.BIPS
	}
	switch {
	case p.FloorBIPS <= 0:
		// No guarantee configured: behave like the base policy.
	case total > p.FloorBIPS*(1+headroom):
		p.shrink *= shrinkRate
	case total < p.FloorBIPS:
		p.shrink /= recoverRate
	}
	if p.shrink > 1 {
		p.shrink = 1
	}
	if p.shrink < minFrac {
		p.shrink = minFrac
	}
	return base.Provision(budgetW*p.shrink, obs)
}

// BaseOf implements BasePolicy, exposing the wrapped policy to capability
// probes (see WantsCacheSignals).
func (p *EnergyAware) BaseOf() Policy { return p.Base }
