// Package maxbips implements the MaxBIPS global power-management baseline
// (Isci et al., MICRO 2006) the paper compares against: every management
// interval, predict each island's power and throughput at every DVFS level
// from a static scaling table, then pick the combination of levels that
// maximizes total predicted BIPS subject to the predicted chip power staying
// under the budget.
//
// Two properties of MaxBIPS drive the paper's comparison results:
//
//   - it is open loop — the prediction table is trusted, there is no error
//     feedback — and it must pick a combination *below* the set-point, so
//     with only 8 discrete knobs per island it systematically under-consumes
//     the budget (Figure 11), and
//   - its predictions assume performance scales with frequency, which holds
//     per-core but degrades for multi-core islands mixing CPU- and
//     memory-bound threads (Figures 13 and 15).
//
// The combination search is exhaustive for small configurations (the
// original formulation) and falls back to a quantized-power dynamic program
// for larger island counts, where L^N would be intractable.
package maxbips

import (
	"errors"
	"fmt"
	"math"

	"github.com/cpm-sim/cpm/internal/power"
)

// IslandObs is the per-island observation the planner predicts from.
type IslandObs struct {
	// Level is the island's current DVFS level.
	Level int
	// PowerW is the measured island power at that level.
	PowerW float64
	// BIPS is the measured throughput at that level.
	BIPS float64
}

// Planner chooses DVFS level combinations.
type Planner struct {
	// shared is the chip-global table in legacy mode (every island planned
	// on the same axis); tables carries one table per island otherwise.
	shared *power.DVFSTable
	tables []*power.DVFSTable
	static [][]float64
	// ExhaustiveLimit is the largest island count planned exhaustively;
	// larger configurations use the DP (default 6: 8⁶ ≈ 262k combinations).
	ExhaustiveLimit int
	// PowerQuantum is the DP's power resolution in watts (default 0.25).
	PowerQuantum float64
}

// New builds a planner over a chip-global DVFS table, applied to every
// island — the legacy homogeneous mode.
func New(table *power.DVFSTable) (*Planner, error) {
	if table == nil {
		return nil, errors.New("maxbips: nil DVFS table")
	}
	return &Planner{shared: table, ExhaustiveLimit: 6, PowerQuantum: 0.25}, nil
}

// NewPerIsland builds a planner over per-island DVFS tables (one per
// island, in island order) so heterogeneous chips are planned on each
// island's own operating points. Observations passed to Choose must cover
// exactly these islands.
func NewPerIsland(tables []*power.DVFSTable) (*Planner, error) {
	if len(tables) == 0 {
		return nil, errors.New("maxbips: no island tables")
	}
	for i, t := range tables {
		if t == nil {
			return nil, fmt.Errorf("maxbips: nil DVFS table for island %d", i)
		}
	}
	return &Planner{tables: tables, ExhaustiveLimit: 6, PowerQuantum: 0.25}, nil
}

// tbl returns island i's planning table.
func (p *Planner) tbl(i int) *power.DVFSTable {
	if p.shared != nil {
		return p.shared
	}
	return p.tables[i]
}

// islands returns the island count the planner is sized for, or -1 in
// chip-global mode (any count).
func (p *Planner) islands() int {
	if p.shared != nil {
		return -1
	}
	return len(p.tables)
}

// predict fills per-island predicted power and BIPS for every level,
// scaling the observed operating point by the static table: BIPS ∝ f,
// P ∝ V²f (both normalized to the observed level).
func (p *Planner) predict(obs []IslandObs) (pw, bips [][]float64) {
	pw = make([][]float64, len(obs))
	bips = make([][]float64, len(obs))
	for i, o := range obs {
		t := p.tbl(i)
		l := t.Levels()
		pw[i] = make([]float64, l)
		bips[i] = make([]float64, l)
		cur := t.Point(t.ClampLevel(o.Level))
		curVF := cur.VoltageV * cur.VoltageV * cur.FreqMHz
		for lvl := 0; lvl < l; lvl++ {
			op := t.Point(lvl)
			pw[i][lvl] = o.PowerW * (op.VoltageV * op.VoltageV * op.FreqMHz) / curVF
			bips[i][lvl] = o.BIPS * op.FreqMHz / cur.FreqMHz
		}
	}
	return pw, bips
}

// Choose returns the per-island DVFS levels maximizing predicted total BIPS
// with predicted total power ≤ budgetW. When even the all-lowest combination
// exceeds the predicted budget, it returns all-lowest (the scheme's failure
// mode under infeasible budgets).
func (p *Planner) Choose(budgetW float64, obs []IslandObs) []int {
	if len(obs) == 0 {
		return nil
	}
	if n := p.islands(); n >= 0 && len(obs) != n {
		panic(fmt.Sprintf("maxbips: %d observations for a planner over %d island tables", len(obs), n))
	}
	if p.static != nil {
		return p.chooseStaticUniform(budgetW, len(obs))
	}
	pw, bips := p.predict(obs)
	if len(obs) <= p.ExhaustiveLimit {
		return p.exhaustive(budgetW, pw, bips)
	}
	return p.quantizedDP(budgetW, pw, bips)
}

// exhaustive enumerates all L^N combinations with branch-and-bound on
// power: islands are processed in order, pruning prefixes whose minimal
// completion already busts the budget.
func (p *Planner) exhaustive(budgetW float64, pw, bips [][]float64) []int {
	n := len(pw)

	// minTail[i] = Σ_{j>=i} min_l pw[j][l]: the cheapest possible
	// completion from island i on. Level counts are per island (pw rows
	// are sized by each island's own table).
	minTail := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		minP := math.Inf(1)
		for lvl := 0; lvl < len(pw[i]); lvl++ {
			if pw[i][lvl] < minP {
				minP = pw[i][lvl]
			}
		}
		minTail[i] = minTail[i+1] + minP
	}

	best := make([]int, n) // all-lowest fallback
	bestBIPS := -1.0
	cur := make([]int, n)

	var rec func(i int, usedPower, gotBIPS float64)
	rec = func(i int, usedPower, gotBIPS float64) {
		if usedPower+minTail[i] > budgetW {
			return
		}
		if i == n {
			if gotBIPS > bestBIPS {
				bestBIPS = gotBIPS
				copy(best, cur)
			}
			return
		}
		for lvl := len(pw[i]) - 1; lvl >= 0; lvl-- { // try fast levels first
			cur[i] = lvl
			rec(i+1, usedPower+pw[i][lvl], gotBIPS+bips[i][lvl])
		}
	}
	rec(0, 0, 0)
	return best
}

// quantizedDP solves the same selection as a multiple-choice knapsack over
// power quantized to PowerQuantum bins.
func (p *Planner) quantizedDP(budgetW float64, pw, bips [][]float64) []int {
	n := len(pw)
	q := p.PowerQuantum
	if q <= 0 {
		q = 0.25
	}
	bins := int(budgetW/q) + 1

	const unset = -1
	// dp[b] = best BIPS using exactly ≤ b quanta so far; choice tracking
	// per island.
	dp := make([]float64, bins)
	choice := make([][]int16, n)
	reach := make([]bool, bins)
	reach[0] = true
	next := make([]float64, bins)
	nextReach := make([]bool, bins)

	for i := 0; i < n; i++ {
		choice[i] = make([]int16, bins)
		for b := range next {
			next[b] = 0
			nextReach[b] = false
			choice[i][b] = unset
		}
		for b := 0; b < bins; b++ {
			if !reach[b] {
				continue
			}
			for lvl := 0; lvl < len(pw[i]); lvl++ {
				cost := int(math.Ceil(pw[i][lvl] / q))
				nb := b + cost
				if nb >= bins {
					continue
				}
				v := dp[b] + bips[i][lvl]
				if !nextReach[nb] || v > next[nb] {
					nextReach[nb] = true
					next[nb] = v
					choice[i][nb] = int16(lvl)
				}
			}
		}
		copy(dp, next)
		copy(reach, nextReach)
	}

	// Find the best reachable bin, then backtrack.
	bestBin, bestV := -1, -1.0
	for b := 0; b < bins; b++ {
		if reach[b] && dp[b] > bestV {
			bestV, bestBin = dp[b], b
		}
	}
	out := make([]int, n)
	if bestBin < 0 {
		return out // infeasible: all-lowest
	}
	// Backtracking requires recomputing the path; rerun the DP storing
	// parent bins is costlier in memory, so instead walk islands in reverse
	// greedily: at each island find the level consistent with the recorded
	// choice table.
	b := bestBin
	for i := n - 1; i >= 0; i-- {
		lvl := choice[i][b]
		if lvl == unset {
			// The recorded choice at this bin belongs to a different path;
			// fall back to the cheapest level (conservative, cannot bust
			// the budget).
			lvl = 0
		}
		out[i] = int(lvl)
		cost := int(math.Ceil(pw[i][out[i]] / q))
		b -= cost
		if b < 0 {
			b = 0
		}
	}
	return out
}

// SetStaticTable installs a static per-island, per-level power prediction
// table (watts), switching the planner into the mode the paper actually
// evaluated: "with MaxBIPS, given a power budget, the scheme selects DVFS
// co-ordinates from a static prediction table" (§IV). A static table knows
// nothing about what each island is currently running, so performance is
// modelled as proportional to frequency with equal weight per core —
// making all feasible combinations of equal total frequency equivalent —
// and the planner picks the highest uniform level whose predicted chip
// power stays under the budget. This is what produces the paper's MaxBIPS
// behaviour: consumption always below the budget (the next level up busts
// it) and large performance loss at scale, since CPU-bound islands get
// throttled exactly as hard as memory-bound ones.
func (p *Planner) SetStaticTable(table [][]float64) error {
	if len(table) == 0 {
		return errors.New("maxbips: empty static table")
	}
	if n := p.islands(); n >= 0 && len(table) != n {
		return fmt.Errorf("maxbips: static table covers %d islands, planner has %d", len(table), n)
	}
	for i, row := range table {
		if len(row) != p.tblForRow(i).Levels() {
			return fmt.Errorf("maxbips: island %d has %d levels, want %d", i, len(row), p.tblForRow(i).Levels())
		}
	}
	p.static = table
	return nil
}

// Static reports whether a static table is installed.
func (p *Planner) Static() bool { return p.static != nil }

// tblForRow returns the table governing static-table row i; chip-global
// planners use the shared table for every row.
func (p *Planner) tblForRow(i int) *power.DVFSTable {
	if p.shared != nil {
		return p.shared
	}
	if i >= len(p.tables) {
		i = len(p.tables) - 1
	}
	return p.tables[i]
}

// chooseStaticUniform picks the highest uniform level fitting the budget.
// On a heterogeneous chip "uniform" means the same level index with each
// island clamped to its own table: shorter tables saturate at their top
// while longer ones keep climbing.
func (p *Planner) chooseStaticUniform(budgetW float64, n int) []int {
	out := make([]int, n)
	if n > len(p.static) {
		n = len(p.static)
	}
	maxLevels := 0
	for i := 0; i < n; i++ {
		if l := len(p.static[i]); l > maxLevels {
			maxLevels = l
		}
	}
	best := 0
	for lvl := maxLevels - 1; lvl >= 0; lvl-- {
		total := 0.0
		for i := 0; i < n; i++ {
			row := p.static[i]
			li := lvl
			if li >= len(row) {
				li = len(row) - 1
			}
			total += row[li]
		}
		if total <= budgetW {
			best = lvl
			break
		}
	}
	for i := range out {
		li := best
		if i < len(p.static) && li >= len(p.static[i]) {
			li = len(p.static[i]) - 1
		}
		out[i] = li
	}
	return out
}
