package maxbips

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/stats"
)

func newPlanner(t *testing.T) *Planner {
	t.Helper()
	p, err := New(power.PentiumM())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// predictedTotals evaluates a chosen combination under the planner's own
// prediction model.
func predictedTotals(p *Planner, obs []IslandObs, levels []int) (pw, bips float64) {
	pwTab, bipsTab := p.predict(obs)
	for i, lvl := range levels {
		pw += pwTab[i][lvl]
		bips += bipsTab[i][lvl]
	}
	return
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil table should be rejected")
	}
}

func TestPredictionScaling(t *testing.T) {
	p := newPlanner(t)
	obs := []IslandObs{{Level: 7, PowerW: 20, BIPS: 4}}
	pw, bips := p.predict(obs)
	// At the observed level the prediction equals the observation.
	if math.Abs(pw[0][7]-20) > 1e-9 || math.Abs(bips[0][7]-4) > 1e-9 {
		t.Errorf("self-prediction = (%v, %v)", pw[0][7], bips[0][7])
	}
	// BIPS scales with frequency: level 0 is 600/2000 of level 7.
	if math.Abs(bips[0][0]-4*600.0/2000.0) > 1e-9 {
		t.Errorf("BIPS prediction at level 0 = %v", bips[0][0])
	}
	// Power scales with V²f.
	lo, hi := power.PentiumM().Point(0), power.PentiumM().Point(7)
	want := 20 * (lo.VoltageV * lo.VoltageV * lo.FreqMHz) / (hi.VoltageV * hi.VoltageV * hi.FreqMHz)
	if math.Abs(pw[0][0]-want) > 1e-9 {
		t.Errorf("power prediction at level 0 = %v, want %v", pw[0][0], want)
	}
}

func TestChooseRespectsBudget(t *testing.T) {
	p := newPlanner(t)
	obs := []IslandObs{
		{Level: 7, PowerW: 20, BIPS: 4},
		{Level: 7, PowerW: 22, BIPS: 2},
		{Level: 7, PowerW: 18, BIPS: 3},
		{Level: 7, PowerW: 21, BIPS: 5},
	}
	for _, budget := range []float64{30, 50, 65, 81} {
		levels := p.Choose(budget, obs)
		pw, _ := predictedTotals(p, obs, levels)
		if pw > budget+1e-9 {
			t.Errorf("budget %v: predicted power %v exceeds it", budget, pw)
		}
	}
}

func TestChooseMaximizesAtGenerousBudget(t *testing.T) {
	p := newPlanner(t)
	obs := []IslandObs{
		{Level: 7, PowerW: 20, BIPS: 4},
		{Level: 7, PowerW: 20, BIPS: 2},
	}
	levels := p.Choose(1000, obs)
	for i, lvl := range levels {
		if lvl != 7 {
			t.Errorf("island %d at level %d despite unconstrained budget", i, lvl)
		}
	}
}

func TestChooseInfeasibleBudget(t *testing.T) {
	p := newPlanner(t)
	obs := []IslandObs{{Level: 7, PowerW: 20, BIPS: 4}}
	levels := p.Choose(0.01, obs)
	if levels[0] != 0 {
		t.Errorf("infeasible budget should pick the lowest level, got %d", levels[0])
	}
	if p.Choose(10, nil) != nil {
		t.Error("empty observation should give nil")
	}
}

// The under-consumption behaviour of Figure 11: with discrete knobs the
// chosen combination's predicted power sits strictly below a budget that
// falls between achievable combinations.
func TestUnderConsumesBetweenKnobs(t *testing.T) {
	p := newPlanner(t)
	obs := []IslandObs{
		{Level: 7, PowerW: 20, BIPS: 4},
		{Level: 7, PowerW: 20, BIPS: 4},
	}
	budget := 31.0 // between combination powers
	levels := p.Choose(budget, obs)
	pw, _ := predictedTotals(p, obs, levels)
	if pw >= budget {
		t.Errorf("predicted power %v not below budget %v", pw, budget)
	}
	if budget-pw < 0.1 {
		t.Errorf("expected a visible under-consumption gap, got %v", budget-pw)
	}
}

// The DP must match the exhaustive search's achieved BIPS (up to the power
// quantization) on identical inputs.
func TestDPMatchesExhaustiveProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		p, err := New(power.PentiumM())
		if err != nil {
			return false
		}
		p.PowerQuantum = 0.05
		obs := make([]IslandObs, 4)
		for i := range obs {
			obs[i] = IslandObs{
				Level:  r.Intn(8),
				PowerW: r.Range(5, 25),
				BIPS:   r.Range(0.5, 6),
			}
		}
		budget := r.Range(20, 90)

		pwTab, bipsTab := p.predict(obs)

		// Infeasible draws (even all-lowest busts the budget) exercise the
		// documented fallback: both searches must return all-lowest.
		minP := 0.0
		for i := range obs {
			minP += pwTab[i][0]
		}
		ex := p.exhaustive(budget, pwTab, bipsTab)
		dp := p.quantizedDP(budget, pwTab, bipsTab)
		if minP > budget {
			for i := range ex {
				if ex[i] != 0 || dp[i] != 0 {
					return false
				}
			}
			return true
		}

		exP, exB := predictedTotals(p, obs, ex)
		dpP, dpB := predictedTotals(p, obs, dp)
		if exP > budget+1e-9 {
			return false
		}
		// Quantization rounds power *up*, so the DP is conservative: it
		// must stay within budget and within a few percent of the
		// exhaustive optimum. 8% covers the observed worst case (seed
		// 0x4549befdae27735e reaches 92.75% of the exhaustive BIPS when
		// rounding pushes the budget boundary across a level step).
		if dpP > budget+1e-9 {
			return false
		}
		return dpB >= exB*0.92-1e-9
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLargeConfigurationUsesDPAndIsFast(t *testing.T) {
	p := newPlanner(t)
	obs := make([]IslandObs, 16) // 8^16 exhaustive would be impossible
	for i := range obs {
		obs[i] = IslandObs{Level: 7, PowerW: 20, BIPS: 3}
	}
	levels := p.Choose(200, obs)
	if len(levels) != 16 {
		t.Fatalf("levels = %v", levels)
	}
	pw, _ := predictedTotals(p, obs, levels)
	if pw > 200+1e-9 {
		t.Errorf("DP busted the budget: %v", pw)
	}
	_, bips := predictedTotals(p, obs, levels)
	// Sanity: with 200 W for 16 islands (12.5 W each) the DP should get
	// well above the all-lowest throughput.
	if bips < 16*3*0.4 {
		t.Errorf("DP throughput %v implausibly low", bips)
	}
}

func staticTable4(levels int) [][]float64 {
	// Four identical islands whose per-level prediction ramps 6..20 W.
	out := make([][]float64, 4)
	for i := range out {
		out[i] = make([]float64, levels)
		for l := 0; l < levels; l++ {
			out[i][l] = 6 + 2*float64(l)
		}
	}
	return out
}

func TestSetStaticTableValidation(t *testing.T) {
	p := newPlanner(t)
	if err := p.SetStaticTable(nil); err == nil {
		t.Error("empty table should be rejected")
	}
	if err := p.SetStaticTable([][]float64{{1, 2}}); err == nil {
		t.Error("wrong level arity should be rejected")
	}
	if p.Static() {
		t.Error("failed installs should not enable static mode")
	}
	if err := p.SetStaticTable(staticTable4(8)); err != nil {
		t.Fatal(err)
	}
	if !p.Static() {
		t.Error("static mode not enabled")
	}
}

func TestStaticChoosesHighestFeasibleUniformLevel(t *testing.T) {
	p := newPlanner(t)
	if err := p.SetStaticTable(staticTable4(8)); err != nil {
		t.Fatal(err)
	}
	obs := make([]IslandObs, 4)
	// Level l costs 4*(6+2l): level 5 costs 64, level 6 costs 72.
	levels := p.Choose(70, obs)
	for i, l := range levels {
		if l != 5 {
			t.Errorf("island %d level = %d, want uniform 5 under a 70 W budget", i, l)
		}
	}
	// Generous budget: top level.
	for _, l := range p.Choose(1000, obs) {
		if l != 7 {
			t.Error("generous budget should pick the top level")
		}
	}
	// Infeasible: bottom level.
	for _, l := range p.Choose(1, obs) {
		if l != 0 {
			t.Error("infeasible budget should pick the bottom level")
		}
	}
}

// The static mode is workload-blind: wildly different observations change
// nothing.
func TestStaticModeIgnoresObservations(t *testing.T) {
	p := newPlanner(t)
	if err := p.SetStaticTable(staticTable4(8)); err != nil {
		t.Fatal(err)
	}
	a := p.Choose(70, []IslandObs{{BIPS: 100, PowerW: 1}, {}, {}, {}})
	b := p.Choose(70, []IslandObs{{BIPS: 0.01, PowerW: 99}, {}, {}, {}})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("static planner must not react to observations")
		}
	}
}
