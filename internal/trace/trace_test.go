package trace

import (
	"math"
	"strings"
	"testing"
)

func TestSeriesStats(t *testing.T) {
	s := &Series{Name: "x"}
	if s.Mean() != 0 || !math.IsInf(s.Max(), -1) || !math.IsInf(s.Min(), 1) {
		t.Error("empty series stats wrong")
	}
	for _, v := range []float64{1, 2, 3} {
		s.Append(v)
	}
	if s.Len() != 3 || s.Mean() != 2 || s.Min() != 1 || s.Max() != 3 {
		t.Errorf("series stats wrong: %+v", s)
	}
}

func TestSetGetCreatesOnce(t *testing.T) {
	set := NewSet("t")
	a := set.Get("alpha")
	b := set.Get("alpha")
	if a != b {
		t.Error("Get should return the same series")
	}
	set.Get("beta")
	names := set.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("Names = %v", names)
	}
	if len(set.Series()) != 2 {
		t.Error("Series length wrong")
	}
}

func TestWriteCSV(t *testing.T) {
	set := NewSet("interval")
	set.Get("a").Append(1)
	set.Get("a").Append(2)
	set.Get("b").Append(10)
	var b strings.Builder
	if err := set.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "interval,a,b\n0,1,10\n1,2,\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
	empty := NewSet("x")
	if err := empty.WriteCSV(&b); err == nil {
		t.Error("empty set should error")
	}
}

// TestWriteCSVNonFinite pins the export-boundary sanitization: NaN and ±Inf
// samples (an idle interval's miss rate, a min/max over an empty window)
// become empty cells, since CSV has no portable encoding for them.
func TestWriteCSVNonFinite(t *testing.T) {
	set := NewSet("interval")
	s := set.Get("rate")
	s.Append(0.5)
	s.Append(math.NaN())
	s.Append(math.Inf(1))
	s.Append(math.Inf(-1))
	var b strings.Builder
	if err := set.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "interval,rate\n0,0.5\n1,\n2,\n3,\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestChartRendersAllSeries(t *testing.T) {
	set := NewSet("k")
	for i := 0; i < 10; i++ {
		set.Get("rise").Append(float64(i))
		set.Get("fall").Append(float64(9 - i))
	}
	out := set.Chart(40, 8)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("chart missing glyphs:\n%s", out)
	}
	if !strings.Contains(out, "rise") || !strings.Contains(out, "fall") {
		t.Error("chart missing legend")
	}
	if !strings.Contains(out, "> k") {
		t.Error("chart missing x-axis label")
	}
}

func TestChartDegenerate(t *testing.T) {
	set := NewSet("k")
	if out := set.Chart(40, 8); !strings.Contains(out, "no data") {
		t.Error("empty chart should say no data")
	}
	set.Get("flat").Append(5)
	set.Get("flat").Append(5)
	out := set.Chart(20, 4)
	if !strings.Contains(out, "*") {
		t.Error("flat series should still render")
	}
}

func TestChartMinimumDimensions(t *testing.T) {
	set := NewSet("k")
	set.Get("a").Append(1)
	out := set.Chart(1, 1) // clamped up internally
	if len(out) == 0 {
		t.Error("chart should render with clamped dimensions")
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"alpha", "1"},
		{"b", "22222"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name ") {
		t.Errorf("header misaligned: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[3], "22222") {
		t.Error("rows missing")
	}
}

func TestSortedKeys(t *testing.T) {
	m := map[string]int{"b": 1, "a": 2, "c": 3}
	got := SortedKeys(m)
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SortedKeys = %v", got)
	}
}
