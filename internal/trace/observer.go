package trace

import (
	"fmt"

	"github.com/cpm-sim/cpm/internal/engine"
)

// Recorder is an engine.Observer that records a session's per-epoch
// telemetry into a Set as it runs, so any engine-driven run (experiment,
// CLI, replay) can produce CSV exports and ASCII charts without scraping
// the summary afterwards.
//
// The zero value is not usable; construct with NewRecorder.
type Recorder struct {
	set *Set
	// PerIsland additionally records each island's allocation and measured
	// power series.
	PerIsland bool
}

// NewRecorder builds a recorder whose series share the given x-axis label
// (typically "GPM epoch").
func NewRecorder(xName string) *Recorder {
	return &Recorder{set: NewSet(xName)}
}

// Set returns the recorded series.
func (r *Recorder) Set() *Set { return r.set }

// RunStart implements engine.Observer.
func (r *Recorder) RunStart(engine.RunInfo) {}

// ObserveStep implements engine.Observer. The recorder works at epoch
// granularity, so per-interval events are ignored.
func (r *Recorder) ObserveStep(engine.Step) {}

// ObserveEpoch implements engine.Observer.
func (r *Recorder) ObserveEpoch(e engine.Epoch) {
	r.set.Get("chip power (W)").Append(e.MeanPowerW)
	r.set.Get("chip BIPS").Append(e.MeanBIPS)
	if e.BudgetW > 0 {
		r.set.Get("budget (W)").Append(e.BudgetW)
	}
	if !r.PerIsland {
		return
	}
	for i, p := range e.IslandPowerW {
		r.set.Get(fmt.Sprintf("island %d power (W)", i)).Append(p)
	}
	for i, a := range e.AllocW {
		r.set.Get(fmt.Sprintf("island %d alloc (W)", i)).Append(a)
	}
}

// RunEnd implements engine.Observer.
func (r *Recorder) RunEnd(*engine.Summary) {}

// engine.Observer conformance is checked at compile time.
var _ engine.Observer = (*Recorder)(nil)
