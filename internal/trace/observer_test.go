package trace

import (
	"strings"
	"testing"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

func TestRecorderCapturesManagedRun(t *testing.T) {
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Seed = 9
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.New(cmp, core.Config{BudgetW: 30, UseOraclePower: true})
	if err != nil {
		t.Fatal(err)
	}
	rec := NewRecorder("GPM epoch")
	rec.PerIsland = true
	const meas = 3
	s, err := engine.NewSession(engine.NewCPMRunner(ctl), engine.SessionConfig{
		WarmEpochs: 1, MeasureEpochs: meas, BudgetW: 30,
	}, rec)
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Run()

	set := rec.Set()
	pow := set.Get("chip power (W)")
	if pow.Len() != meas {
		t.Fatalf("recorded %d power samples, want %d", pow.Len(), meas)
	}
	for e, v := range pow.Samples {
		if v != sum.Epochs[e] {
			t.Errorf("epoch %d: recorded %v, summary %v", e, v, sum.Epochs[e])
		}
	}
	if set.Get("budget (W)").Len() != meas {
		t.Error("budget series missing on a managed run")
	}
	for i := 0; i < cmp.NumIslands(); i++ {
		name := "island 0 alloc (W)"
		if i > 0 {
			name = strings.Replace(name, "0", string(rune('0'+i)), 1)
		}
		if set.Get(name).Len() != meas {
			t.Errorf("%s has %d samples, want %d", name, set.Get(name).Len(), meas)
		}
	}
}
