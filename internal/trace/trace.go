// Package trace provides the light-weight recording and rendering utilities
// the experiment harnesses use: named time series, CSV export, aligned text
// tables and ASCII line charts, so every figure and table of the paper can
// be regenerated on a terminal without plotting dependencies.
package trace

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is a named sequence of samples.
type Series struct {
	Name    string
	Samples []float64
}

// Append adds a sample.
func (s *Series) Append(v float64) { s.Samples = append(s.Samples, v) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Mean returns the mean of the samples (0 when empty).
func (s *Series) Mean() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Samples {
		sum += v
	}
	return sum / float64(len(s.Samples))
}

// Max returns the maximum sample (-Inf when empty).
func (s *Series) Max() float64 {
	m := math.Inf(-1)
	for _, v := range s.Samples {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum sample (+Inf when empty).
func (s *Series) Min() float64 {
	m := math.Inf(1)
	for _, v := range s.Samples {
		if v < m {
			m = v
		}
	}
	return m
}

// Set is an ordered collection of series sharing an x-axis.
type Set struct {
	// XName labels the shared axis (e.g. "GPM invocation").
	XName  string
	series []*Series
	index  map[string]*Series
}

// NewSet builds an empty set.
func NewSet(xName string) *Set {
	return &Set{XName: xName, index: map[string]*Series{}}
}

// Get returns the series with the given name, creating it on first use.
func (t *Set) Get(name string) *Series {
	if s, ok := t.index[name]; ok {
		return s
	}
	s := &Series{Name: name}
	t.index[name] = s
	t.series = append(t.series, s)
	return s
}

// Names returns the series names in insertion order.
func (t *Set) Names() []string {
	out := make([]string, len(t.series))
	for i, s := range t.series {
		out[i] = s.Name
	}
	return out
}

// Series returns the series in insertion order.
func (t *Set) Series() []*Series { return t.series }

// WriteCSV emits the set as CSV: one row per x index, one column per series.
// Shorter series leave blank cells.
func (t *Set) WriteCSV(w io.Writer) error {
	if len(t.series) == 0 {
		return errors.New("trace: empty set")
	}
	cols := []string{t.XName}
	n := 0
	for _, s := range t.series {
		cols = append(cols, s.Name)
		if s.Len() > n {
			n = s.Len()
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprint(i)}
		for _, s := range t.series {
			// Non-finite samples (a NaN miss rate on an idle interval, a
			// ±Inf min/max over an empty window) become empty cells, like
			// missing ones: CSV has no portable encoding for them.
			if i < s.Len() && !math.IsNaN(s.Samples[i]) && !math.IsInf(s.Samples[i], 0) {
				row = append(row, fmt.Sprintf("%g", s.Samples[i]))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Chart renders the set as an ASCII line chart of the given size, one glyph
// per series, with a legend and y-axis labels.
func (t *Set) Chart(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte("*o+x#@%&")
	lo, hi := math.Inf(1), math.Inf(-1)
	maxLen := 0
	for _, s := range t.series {
		for _, v := range s.Samples {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	if maxLen == 0 {
		return "(no data)\n"
	}
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range t.series {
		g := glyphs[si%len(glyphs)]
		for i, v := range s.Samples {
			x := 0
			if maxLen > 1 {
				x = i * (width - 1) / (maxLen - 1)
			}
			y := int(math.Round((v - lo) / (hi - lo) * float64(height-1)))
			row := height - 1 - y
			grid[row][x] = g
		}
	}
	var b strings.Builder
	for r, line := range grid {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%10.3g |", hi)
		case height - 1:
			label = fmt.Sprintf("%10.3g |", lo)
		default:
			label = strings.Repeat(" ", 10) + " |"
		}
		b.WriteString(label)
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 11) + "+" + strings.Repeat("-", width) + "> " + t.XName + "\n")
	for si, s := range t.series {
		fmt.Fprintf(&b, "            %c %s\n", glyphs[si%len(glyphs)], s.Name)
	}
	return b.String()
}

// Table renders rows as an aligned text table with a header.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c + strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// SortedKeys returns the sorted keys of a string-keyed map, for
// deterministic report iteration.
func SortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
