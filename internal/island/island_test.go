package island

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/power"
)

func newIsland(t *testing.T, lvl int) *Island {
	t.Helper()
	i, err := New(0, []int{0, 1}, power.PentiumM(), lvl)
	if err != nil {
		t.Fatal(err)
	}
	return i
}

func TestNewValidation(t *testing.T) {
	tbl := power.PentiumM()
	if _, err := New(0, nil, tbl, 0); err == nil {
		t.Error("empty island should be rejected")
	}
	if _, err := New(0, []int{0}, nil, 0); err == nil {
		t.Error("nil table should be rejected")
	}
	if _, err := New(0, []int{0}, tbl, 99); err == nil {
		t.Error("out-of-range initial level should be rejected")
	}
}

func TestAccessors(t *testing.T) {
	i := newIsland(t, 7)
	if i.ID() != 0 || i.NumCores() != 2 || i.Level() != 7 {
		t.Errorf("basic accessors wrong: %d %d %d", i.ID(), i.NumCores(), i.Level())
	}
	if i.OperatingPoint().FreqMHz != 2000 {
		t.Errorf("operating point = %+v", i.OperatingPoint())
	}
	if len(i.CoreIDs()) != 2 {
		t.Error("core IDs lost")
	}
}

func TestSetLevelAndTransitions(t *testing.T) {
	i := newIsland(t, 4)
	if i.SetLevel(4) {
		t.Error("setting the same level should not report a change")
	}
	if !i.SetLevel(6) {
		t.Error("level change not reported")
	}
	if i.Level() != 6 || i.Transitions() != 1 {
		t.Errorf("state after change: level %d, transitions %d", i.Level(), i.Transitions())
	}
	// Clamping.
	i.SetLevel(-3)
	if i.Level() != 0 {
		t.Errorf("negative level should clamp to 0, got %d", i.Level())
	}
	i.SetLevel(100)
	if i.Level() != 7 {
		t.Errorf("oversized level should clamp to 7, got %d", i.Level())
	}
}

func TestOverheadConsumedOnce(t *testing.T) {
	i := newIsland(t, 4)
	if i.ConsumeOverhead() != 0 {
		t.Error("no pending overhead initially")
	}
	i.SetLevel(5)
	if got := i.ConsumeOverhead(); got != power.TransitionOverhead {
		t.Errorf("overhead = %v, want %v", got, power.TransitionOverhead)
	}
	if i.ConsumeOverhead() != 0 {
		t.Error("overhead should be consumed exactly once")
	}
	// A no-op SetLevel does not arm overhead.
	i.SetLevel(5)
	if i.ConsumeOverhead() != 0 {
		t.Error("no-op level change armed overhead")
	}
	// Clamped-to-same does not arm either.
	i.SetLevel(0)
	i.ConsumeOverhead()
	i.SetLevel(-1)
	if i.ConsumeOverhead() != 0 {
		t.Error("clamped no-op armed overhead")
	}
}

func TestCoreIDsCopied(t *testing.T) {
	src := []int{3, 4}
	i, err := New(1, src, power.PentiumM(), 0)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = 99
	if i.CoreIDs()[0] != 3 {
		t.Error("island aliased the caller's slice")
	}
}
