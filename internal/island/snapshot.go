package island

import "github.com/cpm-sim/cpm/internal/snapshot"

// Snapshot appends the island's dynamic state: current DVFS level, the
// cumulative transition count and the pending-overhead latch.
func (i *Island) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagIsland)
	e.Int(i.level)
	e.Int(i.transitions)
	e.Bool(i.pendingOverhead)
}

// Restore reads state written by Snapshot, validating the level against
// the island's DVFS table.
func (i *Island) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagIsland)
	level := d.Int()
	transitions := d.Int()
	pending := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if level != i.table.ClampLevel(level) {
		return snapshot.ShapeErrorf("island %d level %d outside the DVFS table", i.id, level)
	}
	if transitions < 0 {
		return snapshot.ShapeErrorf("island %d negative transition count %d", i.id, transitions)
	}
	i.level = level
	i.transitions = transitions
	i.pendingOverhead = pending
	return nil
}
