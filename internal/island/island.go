// Package island models voltage/frequency islands: groups of cores sharing
// a single DVFS actuator, the architectural granularity at which the paper's
// Per-Island Controllers operate (Figure 1). All cores of an island always
// run at the same operating point; the actuator tracks level changes so the
// simulator can charge the 0.5% transition overhead to the following
// interval.
package island

import (
	"errors"
	"fmt"

	"github.com/cpm-sim/cpm/internal/power"
)

// Island is one voltage/frequency island.
type Island struct {
	id      int
	coreIDs []int
	table   *power.DVFSTable

	level       int
	transitions int
	// pendingOverhead is true when the last SetLevel changed the operating
	// point and the overhead has not yet been consumed by an interval.
	pendingOverhead bool
}

// New builds an island over the given core IDs starting at initialLevel.
func New(id int, coreIDs []int, table *power.DVFSTable, initialLevel int) (*Island, error) {
	if len(coreIDs) == 0 {
		return nil, errors.New("island: no cores")
	}
	if table == nil {
		return nil, errors.New("island: nil DVFS table")
	}
	if initialLevel != table.ClampLevel(initialLevel) {
		return nil, fmt.Errorf("island: initial level %d out of range", initialLevel)
	}
	return &Island{
		id:      id,
		coreIDs: append([]int(nil), coreIDs...),
		table:   table,
		level:   initialLevel,
	}, nil
}

// ID returns the island identifier.
func (i *Island) ID() int { return i.id }

// CoreIDs returns the member core IDs (callers must not modify the slice).
func (i *Island) CoreIDs() []int { return i.coreIDs }

// NumCores returns the island size.
func (i *Island) NumCores() int { return len(i.coreIDs) }

// Table returns the island's DVFS table.
func (i *Island) Table() *power.DVFSTable { return i.table }

// Level returns the current DVFS level.
func (i *Island) Level() int { return i.level }

// OperatingPoint returns the current voltage/frequency pair.
func (i *Island) OperatingPoint() power.OperatingPoint { return i.table.Point(i.level) }

// SetLevel requests a DVFS change to lvl (clamped into range) and reports
// whether the operating point actually changed. A change arms the
// transition overhead for the next interval.
func (i *Island) SetLevel(lvl int) bool {
	lvl = i.table.ClampLevel(lvl)
	if lvl == i.level {
		return false
	}
	i.level = lvl
	i.transitions++
	i.pendingOverhead = true
	return true
}

// Transitions returns the cumulative number of DVFS changes.
func (i *Island) Transitions() int { return i.transitions }

// ConsumeOverhead returns the execution-time fraction lost to a pending
// DVFS transition and clears it; it returns 0 when no transition is
// pending. The simulator calls this exactly once per interval.
func (i *Island) ConsumeOverhead() float64 {
	if !i.pendingOverhead {
		return 0
	}
	i.pendingOverhead = false
	return power.TransitionOverhead
}
