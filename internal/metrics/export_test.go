package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// buildRegistry populates a registry with every instrument kind, label
// shapes, values needing escaping, and the non-finite values that the
// export boundary must survive.
func buildRegistry() *Registry {
	r := NewRegistry()
	r.CounterVec("cpm_events_total", "Counted events.", "run").With("cpm-0.80").Add(12)
	g := r.GaugeVec("cpm_miss_rate", "Miss rate; NaN when idle.", "run", "level")
	g.With("cpm-0.80", "l1i").Set(0.25)
	g.With("cpm-0.80", "l2").Set(math.NaN())
	r.GaugeVec("cpm_min_power", "Min power; +Inf when empty.", "run").With("cpm-0.80").Set(math.Inf(1))
	r.GaugeVec("cpm_plain", `Help with \ backslash and
newline.`).With().Set(-3.5)
	h := r.HistogramVec("cpm_err", "Tracking error.", []float64{0.01, 0.1, 1}, "run").With(`we"ird`)
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	return r
}

// TestPrometheusRoundTrip is the exposition-format round-trip test: render,
// re-parse, and compare the parsed families against the registry snapshot.
func TestPrometheusRoundTrip(t *testing.T) {
	r := buildRegistry()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("re-parsing our own exposition output: %v\n%s", err, buf.String())
	}
	want := r.Gather()
	if len(fams) != len(want) {
		t.Fatalf("parsed %d families, registry has %d", len(fams), len(want))
	}
	for i, f := range fams {
		if f.Name != want[i].Name {
			t.Errorf("family %d = %q, want %q (order must be deterministic)", i, f.Name, want[i].Name)
		}
		if f.Type != want[i].Kind.String() {
			t.Errorf("family %q type = %q, want %q", f.Name, f.Type, want[i].Kind)
		}
	}
	// Spot-check values, including the non-finite ones and escaping.
	find := func(name string, labels map[string]string) float64 {
		t.Helper()
		for _, f := range fams {
			for _, s := range f.Samples {
				if s.Name != name {
					continue
				}
				ok := true
				for k, v := range labels {
					if s.Labels[k] != v {
						ok = false
						break
					}
				}
				if ok && len(s.Labels) == len(labels) {
					return s.Value
				}
			}
		}
		t.Fatalf("sample %s%v not found", name, labels)
		return 0
	}
	if v := find("cpm_events_total", map[string]string{"run": "cpm-0.80"}); v != 12 {
		t.Errorf("counter round-tripped to %v", v)
	}
	if v := find("cpm_miss_rate", map[string]string{"run": "cpm-0.80", "level": "l2"}); !math.IsNaN(v) {
		t.Errorf("NaN gauge round-tripped to %v", v)
	}
	if v := find("cpm_min_power", map[string]string{"run": "cpm-0.80"}); !math.IsInf(v, 1) {
		t.Errorf("+Inf gauge round-tripped to %v", v)
	}
	if v := find("cpm_err_count", map[string]string{"run": `we"ird`}); v != 4 {
		t.Errorf("histogram count with escaped label = %v, want 4", v)
	}
	if v := find("cpm_err_bucket", map[string]string{"run": `we"ird`, "le": "0.1"}); v != 2 {
		t.Errorf("cumulative bucket le=0.1 = %v, want 2", v)
	}
}

// TestPrometheusDeterministic pins byte-identical output for identical
// registries — the determinism contract telemetry diffing relies on.
func TestPrometheusDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildRegistry().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("identical registries rendered differently:\n%s\n---\n%s", a.String(), b.String())
	}
}

// TestJSONSurvivesNonFinite is the export-boundary regression test: a
// registry holding NaN and ±Inf must produce JSON that encoding/json
// accepts, with the non-finite values encoded as null.
func TestJSONSurvivesNonFinite(t *testing.T) {
	r := buildRegistry()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON with NaN/Inf present: %v", err)
	}
	var doc struct {
		Families []struct {
			Name    string `json:"name"`
			Metrics []struct {
				Labels map[string]string `json:"labels"`
				Value  *float64          `json:"value"`
			} `json:"metrics"`
		} `json:"families"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("encoding/json rejected the export: %v\n%s", err, buf.String())
	}
	var sawNull, sawFinite bool
	for _, f := range doc.Families {
		if f.Name != "cpm_miss_rate" {
			continue
		}
		for _, m := range f.Metrics {
			switch m.Labels["level"] {
			case "l2":
				if m.Value != nil {
					t.Errorf("NaN exported as %v, want null", *m.Value)
				}
				sawNull = true
			case "l1i":
				if m.Value == nil || *m.Value != 0.25 {
					t.Errorf("finite value mangled: %v", m.Value)
				}
				sawFinite = true
			}
		}
	}
	if !sawNull || !sawFinite {
		t.Fatalf("miss-rate series missing from export:\n%s", buf.String())
	}
	// json.Unmarshal succeeding above already proves no bare NaN/Inf literal
	// was emitted (they are invalid JSON); the histogram's "+Inf" bucket
	// bound survives as a quoted string by design.
	if !strings.Contains(buf.String(), `"le": "+Inf"`) {
		t.Errorf("histogram +Inf bucket bound missing:\n%s", buf.String())
	}
}

func TestFloatRoundTrip(t *testing.T) {
	cases := []float64{1.5, 0, -2, math.NaN(), math.Inf(1), math.Inf(-1)}
	for _, v := range cases {
		b, err := json.Marshal(Float(v))
		if err != nil {
			t.Fatalf("Marshal(%v): %v", v, err)
		}
		var back Float
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("Unmarshal(%s): %v", b, err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			if !math.IsNaN(float64(back)) {
				t.Errorf("%v -> %s -> %v, want NaN back", v, b, back)
			}
		} else if float64(back) != v {
			t.Errorf("%v -> %s -> %v", v, b, back)
		}
	}
}

// TestParseRejectsMalformed pins the validator half of the round trip: the
// parser must reject structurally broken expositions.
func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE":  "foo 1\n",
		"bad name":            "# TYPE 9bad counter\n9bad 1\n",
		"bad value":           "# TYPE foo counter\nfoo x\n",
		"unterminated labels": "# TYPE foo counter\nfoo{a=\"b\" 1\n",
		"non-cumulative hist": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_count 3\n",
		"missing +Inf bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_count 2\n",
		"count != Inf bucket": "# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 5\n",
		"duplicate TYPE":      "# TYPE foo counter\nfoo 1\n# TYPE foo counter\nfoo 2\n",
	}
	for name, doc := range cases {
		if _, err := ParsePrometheus(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, doc)
		}
	}
}
