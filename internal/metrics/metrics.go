// Package metrics is the simulator's telemetry layer: a small, deterministic
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus-text and JSON exporters, plus an engine.Observer that surfaces
// the health of the two-tier GPM/PIC control loop — tracking error,
// integrator state, allocation vs. measured power, DVFS residency, cache
// behaviour and thermal headroom.
//
// The design goals, in order:
//
//  1. Zero allocations on the hot path. Instrument handles (Counter, Gauge,
//     Histogram) are created once at setup through their Vec; updates are
//     plain atomic operations on pre-allocated structs. The interval loop's
//     0 allocs/interval contract (internal/sim TestStepSteadyStateAllocs)
//     holds with the observer attached.
//  2. Determinism. Export output depends only on the recorded values:
//     families are emitted in name order and series in label order, so two
//     runs of the same scenario produce byte-identical telemetry.
//  3. Race-safe scraping. All instrument state is atomic and registry
//     bookkeeping is mutex-guarded, so an exporter may run concurrently
//     with updates (e.g. scraping during a pooled sweep).
//
// The registry intentionally implements a subset of the Prometheus data
// model rather than importing a client library: the simulator's telemetry is
// file/stdout-oriented and the repo carries no external dependencies.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind enumerates the instrument types.
type Kind int

// Instrument kinds, in Prometheus terminology.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families. The zero value is not usable; construct
// with NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// family is one named metric with a fixed label-key schema and a set of
// children (one per label-value combination).
type family struct {
	name      string
	help      string
	kind      Kind
	labelKeys []string
	buckets   []float64 // histogram upper bounds, strictly increasing

	mu       sync.RWMutex
	children map[string]*child
}

// child is one labelled series. Exactly one of the instrument fields is
// used, selected by the family kind; fusing them into one struct keeps the
// Vec lookup monomorphic.
type child struct {
	labelValues []string
	counter     Counter
	gauge       Gauge
	hist        Histogram
}

// validName reports whether s is a legal Prometheus metric name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelKey reports whether s is a legal Prometheus label name.
func validLabelKey(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// lookup returns the family registered under name, creating it on first use.
// Re-registration with a different schema is a programming error and panics:
// silently returning a mismatched family would corrupt the export.
func (r *Registry) lookup(name, help string, kind Kind, buckets []float64, labelKeys []string) *family {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, k := range labelKeys {
		if !validLabelKey(k) {
			panic(fmt.Sprintf("metrics: invalid label key %q on metric %q", k, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !equalStrings(f.labelKeys, labelKeys) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("metrics: metric %q re-registered with a different schema", name))
		}
		return f
	}
	f := &family{
		name:      name,
		help:      help,
		kind:      kind,
		labelKeys: append([]string(nil), labelKeys...),
		buckets:   append([]float64(nil), buckets...),
		children:  map[string]*child{},
	}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// childFor returns the series for the given label values, creating it on
// first use. Creation allocates; callers hold the returned handle and use it
// on the hot path, where updates are allocation-free.
func (f *family) childFor(labelValues []string) *child {
	if len(labelValues) != len(f.labelKeys) {
		panic(fmt.Sprintf("metrics: metric %q wants %d label values, got %d",
			f.name, len(f.labelKeys), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = &child{labelValues: append([]string(nil), labelValues...)}
	if f.kind == KindHistogram {
		c.hist.init(f.buckets)
	}
	f.children[key] = c
	return c
}

// CounterVec registers (or finds) a counter family with the given label
// schema. Use With to obtain series handles at setup time.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{fam: r.lookup(name, help, KindCounter, nil, labelKeys)}
}

// GaugeVec registers (or finds) a gauge family with the given label schema.
func (r *Registry) GaugeVec(name, help string, labelKeys ...string) *GaugeVec {
	return &GaugeVec{fam: r.lookup(name, help, KindGauge, nil, labelKeys)}
}

// HistogramVec registers (or finds) a histogram family with the given bucket
// upper bounds (strictly increasing; an implicit +Inf bucket is appended)
// and label schema.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelKeys ...string) *HistogramVec {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(buckets); i++ {
		if !(buckets[i] > buckets[i-1]) {
			panic(fmt.Sprintf("metrics: histogram %q bucket bounds not strictly increasing", name))
		}
	}
	return &HistogramVec{fam: r.lookup(name, help, KindHistogram, buckets, labelKeys)}
}

// CounterVec hands out Counter series of one family.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values, creating it on first
// use. Call at setup time, not on the hot path.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return &v.fam.childFor(labelValues).counter
}

// GaugeVec hands out Gauge series of one family.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values, creating it on first
// use. Call at setup time, not on the hot path.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return &v.fam.childFor(labelValues).gauge
}

// HistogramVec hands out Histogram series of one family.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values, creating it on
// first use. Call at setup time, not on the hot path.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return &v.fam.childFor(labelValues).hist
}

// Counter is a monotonically non-decreasing value. All methods are atomic
// and allocation-free.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v. Negative, NaN and -Inf deltas would break monotonicity and
// are ignored.
func (c *Counter) Add(v float64) {
	if !(v > 0) {
		return
	}
	addFloatBits(&c.bits, v)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an arbitrary instantaneous value. All methods are atomic and
// allocation-free. Non-finite values are stored as-is; the JSON exporter
// sanitizes them at the boundary (Prometheus text represents them natively).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v to the current value.
func (g *Gauge) Add(v float64) { addFloatBits(&g.bits, v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// addFloatBits atomically adds v to a float64 stored as bits, via CAS.
func addFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets. Observe is atomic and
// allocation-free. Bucket counts are stored per-bucket (not cumulative) and
// cumulated at export, so the hot path is a single increment.
type Histogram struct {
	upper  []float64       // finite upper bounds; the +Inf bucket is counts[len(upper)]
	counts []atomic.Uint64 // len(upper)+1
	sum    atomic.Uint64   // float64 bits
}

func (h *Histogram) init(buckets []float64) {
	h.upper = buckets // family-owned, immutable after registration
	h.counts = make([]atomic.Uint64, len(buckets)+1)
}

// Observe records v. NaN observations carry no bucket information and are
// dropped; ±Inf land in the outermost buckets.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	addFloatBits(&h.sum, v)
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// LinearBuckets returns count upper bounds starting at start, width apart —
// a convenience for histogram registration.
func LinearBuckets(start, width float64, count int) []float64 {
	if count <= 0 || width <= 0 {
		panic("metrics: LinearBuckets needs positive count and width")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count upper bounds starting at start, each
// factor times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if count <= 0 || start <= 0 || factor <= 1 {
		panic("metrics: ExponentialBuckets needs positive start, factor > 1, positive count")
	}
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Label is one key/value pair of a series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// BucketCount is one cumulative histogram bucket in a snapshot.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound; the final bucket is
	// +Inf.
	UpperBound float64
	// CumulativeCount counts observations ≤ UpperBound.
	CumulativeCount uint64
}

// Sample is one series' snapshot.
type Sample struct {
	// Labels are the series' label pairs in family key order.
	Labels []Label
	// Value is the counter or gauge value (unused for histograms).
	Value float64
	// Buckets, Sum and Count describe a histogram (nil otherwise).
	Buckets []BucketCount
	Sum     float64
	Count   uint64
}

// Family is one metric family's snapshot.
type Family struct {
	Name      string
	Help      string
	Kind      Kind
	LabelKeys []string
	Samples   []Sample
}

// Gather snapshots the registry into a deterministic structure: families
// sorted by name, samples sorted by label values. Safe to call concurrently
// with updates; each instrument is read atomically (a histogram's buckets,
// sum and count are read individually, so a scrape racing an Observe may see
// a sum slightly ahead of the buckets — the usual Prometheus semantics).
func (r *Registry) Gather() []Family {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]Family, 0, len(fams))
	for _, f := range fams {
		out = append(out, f.snapshot())
	}
	return out
}

func (f *family) snapshot() Family {
	f.mu.RLock()
	children := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		children = append(children, c)
	}
	f.mu.RUnlock()
	sort.Slice(children, func(i, j int) bool {
		return lessStrings(children[i].labelValues, children[j].labelValues)
	})

	fam := Family{
		Name:      f.name,
		Help:      f.help,
		Kind:      f.kind,
		LabelKeys: f.labelKeys,
		Samples:   make([]Sample, 0, len(children)),
	}
	for _, c := range children {
		s := Sample{Labels: make([]Label, len(f.labelKeys))}
		for i, k := range f.labelKeys {
			s.Labels[i] = Label{Key: k, Value: c.labelValues[i]}
		}
		switch f.kind {
		case KindCounter:
			s.Value = c.counter.Value()
		case KindGauge:
			s.Value = c.gauge.Value()
		case KindHistogram:
			s.Buckets = make([]BucketCount, len(f.buckets)+1)
			var cum uint64
			for i := range c.hist.counts {
				cum += c.hist.counts[i].Load()
				ub := math.Inf(1)
				if i < len(f.buckets) {
					ub = f.buckets[i]
				}
				s.Buckets[i] = BucketCount{UpperBound: ub, CumulativeCount: cum}
			}
			s.Sum = c.hist.Sum()
			s.Count = cum
		}
		fam.Samples = append(fam.Samples, s)
	}
	return fam
}

func lessStrings(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
