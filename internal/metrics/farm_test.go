package metrics

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/farm"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

// farmCounter reads back a fleet counter under the test farm label.
func farmCounter(reg *Registry, name, help string) float64 {
	return reg.CounterVec(name, help, "farm").With("test-fleet").Value()
}

// TestFarmObserverEndToEnd attaches ONE shared FarmObserver to every
// member session of a mixed farm (two workload keys, unmanaged runners),
// runs the fleet concurrently, and cross-checks the fleet sums.
func TestFarmObserverEndToEnd(t *testing.T) {
	const warm, meas, period = 1, 2, 10
	const nChips = 4
	total := float64(nChips * (warm + meas) * period)

	reg := NewRegistry()
	fo := NewFarmObserver(reg, "test-fleet")

	specs := make([]farm.ChipSpec, nChips)
	for i := range specs {
		cfg := sim.DefaultConfig(workload.Mix1())
		cfg.Seed = uint64(1 + i%2) // two workload keys -> two sampler groups
		cfg.Parallel = false
		specs[i] = farm.ChipSpec{
			Config: cfg,
			NewSession: func(cmp *sim.CMP) (*engine.Session, error) {
				return engine.NewSession(engine.NewChipRunner(cmp), engine.SessionConfig{
					WarmEpochs: warm, MeasureEpochs: meas, Period: period, Label: "fleet",
				}, fo)
			},
		}
	}
	f, err := farm.New(specs, farm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumGroups() != 2 {
		t.Fatalf("expected 2 sampler groups, got %d", f.NumGroups())
	}
	if _, err := f.Run(engine.Pool{Workers: 2}, nil); err != nil {
		t.Fatal(err)
	}

	if got := farmCounter(reg, "cpm_farm_sessions_total", "Member sessions started in the farm."); got != nChips {
		t.Errorf("sessions started = %v, want %v", got, nChips)
	}
	if got := farmCounter(reg, "cpm_farm_sessions_completed_total", "Member sessions finished in the farm."); got != nChips {
		t.Errorf("sessions completed = %v, want %v", got, nChips)
	}
	if got := farmCounter(reg, "cpm_farm_chip_intervals_total", "Chip-intervals simulated across the fleet, warmup included."); got != total {
		t.Errorf("chip intervals = %v, want %v", got, total)
	}
	if got := farmCounter(reg, "cpm_farm_epochs_total", "Measured GPM epochs across the fleet."); got != nChips*meas {
		t.Errorf("epochs = %v, want %v", got, nChips*meas)
	}
	if got := farmCounter(reg, "cpm_farm_instructions_total", "Instructions executed across the fleet's measured epochs."); got <= 0 {
		t.Errorf("instructions = %v, want > 0", got)
	}

	powerSum := farmCounter(reg, "cpm_farm_power_watt_intervals_total",
		"Sum of per-interval chip power across the fleet; divide by cpm_farm_chip_intervals_total for the fleet-mean chip power.")
	maxW := reg.GaugeVec("cpm_farm_chip_power_max_watts",
		"Highest single-chip interval power seen across the fleet.", "farm").With("test-fleet").Value()
	minW := reg.GaugeVec("cpm_farm_chip_power_min_watts",
		"Lowest single-chip interval power seen across the fleet.", "farm").With("test-fleet").Value()
	mean := powerSum / total
	if !(minW > 0 && minW <= mean && mean <= maxW) {
		t.Errorf("power extremes inconsistent: min=%v mean=%v max=%v", minW, mean, maxW)
	}
	if got := reg.GaugeVec("cpm_farm_temp_max_celsius",
		"Peak die temperature seen across the fleet.", "farm").With("test-fleet").Value(); got <= 0 {
		t.Errorf("peak temperature = %v, want > 0", got)
	}

	// Bounded cardinality: the whole fleet contributes exactly one sample
	// per farm family, regardless of chip count.
	for _, fam := range reg.Gather() {
		if len(fam.Name) >= 9 && fam.Name[:9] == "cpm_farm_" && len(fam.Samples) != 1 {
			t.Errorf("family %s has %d samples, want 1 (per-chip labels forbidden)", fam.Name, len(fam.Samples))
		}
	}
}

// TestFarmObserverStepAllocs pins the fleet observer's zero-allocation
// step path: an unmanaged interval with the shared observer attached must
// not allocate.
func TestFarmObserverStepAllocs(t *testing.T) {
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Seed = 5
	cfg.Parallel = false
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	fo := NewFarmObserver(reg, "alloc-fleet")
	r := engine.NewChipRunner(cmp)
	fo.RunStart(engine.RunInfo{Label: "alloc", Islands: cmp.NumIslands(), Cores: cmp.NumCores()})
	for k := 0; k < 5; k++ {
		fo.ObserveStep(r.Step())
	}
	if n := testing.AllocsPerRun(20, func() { fo.ObserveStep(r.Step()) }); n != 0 {
		t.Errorf("fleet interval allocates %v times with the farm observer attached, want 0", n)
	}
}
