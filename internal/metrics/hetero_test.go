package metrics

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

// TestResidencyCardinalityPerIsland is the audit regression for the
// chip-global Table() assumption in the observer: on a chip whose islands
// run different tables, each island's residency counter family must have
// exactly its own table's level count — a chip-wide cardinality would
// either misindex the little island or fabricate levels it cannot reach
// (and the legacy accessor panics outright on such a chip).
func TestResidencyCardinalityPerIsland(t *testing.T) {
	cfg := sim.DefaultConfig(workload.Mix{
		Name:    "tiny",
		Islands: [][]string{{"bschls"}, {"fsim"}},
	})
	cfg.IslandClasses = []power.CoreClass{power.ClassOoO, power.ClassLittleIO}
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := NewObserver(NewRegistry(), ObserverOptions{Label: "hetero", Chip: cmp})
	if len(o.residency) != cmp.NumIslands() {
		t.Fatalf("residency for %d islands, chip has %d", len(o.residency), cmp.NumIslands())
	}
	for i := range o.residency {
		if got, want := len(o.residency[i]), cmp.IslandTable(i).Levels(); got != want {
			t.Errorf("island %d residency has %d levels, its table has %d", i, got, want)
		}
	}
}
