package metrics

import (
	"bytes"
	"encoding/json"
	"testing"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/pic"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

// newManaged builds a managed chip in the oracle-power ablation, which
// needs no calibration — the controller behaviour differs from the paper
// configuration but every telemetry path is exercised identically.
func newManaged(t testing.TB, gpmPeriod int) (*sim.CMP, *core.CPM) {
	t.Helper()
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Seed = 7
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.New(cmp, core.Config{BudgetW: 30, GPMPeriod: gpmPeriod, UseOraclePower: true})
	if err != nil {
		t.Fatal(err)
	}
	return cmp, ctl
}

func picsOf(cmp *sim.CMP, ctl *core.CPM) []*pic.Controller {
	out := make([]*pic.Controller, cmp.NumIslands())
	for i := range out {
		out[i] = ctl.PIC(i)
	}
	return out
}

// TestObserverEndToEnd runs a full session with the observer attached and
// cross-checks the recorded telemetry against ground truth from the chip.
func TestObserverEndToEnd(t *testing.T) {
	const warm, meas, period = 1, 3, 10
	cmp, ctl := newManaged(t, period)
	reg := NewRegistry()
	obs := NewObserver(reg, ObserverOptions{Label: "test", Chip: cmp, PICs: picsOf(cmp, ctl)})
	s, err := engine.NewSession(engine.NewCPMRunner(ctl), engine.SessionConfig{
		WarmEpochs: warm, MeasureEpochs: meas, Period: period, BudgetW: 30, Label: "test",
	}, obs)
	if err != nil {
		t.Fatal(err)
	}
	sum := s.Run()

	total := float64((warm + meas) * period)
	if got := reg.CounterVec("cpm_intervals_total", "Simulated PIC intervals, warmup included.", "run").With("test").Value(); got != total {
		t.Errorf("cpm_intervals_total = %v, want %v", got, total)
	}
	if got := reg.CounterVec("cpm_epochs_total", "Measured GPM epochs.", "run").With("test").Value(); got != meas {
		t.Errorf("cpm_epochs_total = %v, want %v", got, meas)
	}

	// Residency across levels must sum to the interval count, per island.
	fams := reg.Gather()
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	res, ok := byName["cpm_island_level_residency_intervals_total"]
	if !ok {
		t.Fatal("no residency family recorded")
	}
	perIsland := map[string]float64{}
	for _, s := range res.Samples {
		perIsland[s.Labels[1].Value] += s.Value
	}
	for isl, n := range perIsland {
		if n != total {
			t.Errorf("island %s residency sums to %v, want %v", isl, n, total)
		}
	}

	// Cache counters must reconcile with the chip's cumulative stats.
	cs := cmp.CacheStats()
	wantHits := float64(cs.L1I.Hits + cs.L1D.Hits + cs.L2.Hits)
	var gotHits float64
	for _, s := range byName["cpm_cache_hits_total"].Samples {
		gotHits += s.Value
	}
	if gotHits != wantHits {
		t.Errorf("cpm_cache_hits_total sums to %v, chip reports %v", gotHits, wantHits)
	}

	// Peak temperature matches the summary.
	if got := reg.GaugeVec("cpm_max_temp_celsius", "Peak die temperature seen so far in the run.", "run").With("test").Value(); got < sum.MaxTempC {
		t.Errorf("cpm_max_temp_celsius = %v < summary max %v", got, sum.MaxTempC)
	}

	// PIC telemetry was recorded: the tracking-error histogram saw one
	// observation per island per post-warmup interval.
	hist := reg.HistogramVec("cpm_pic_tracking_error_frac",
		"Per-invocation PIC tracking error |target − estimate| in island-max-power fractions.",
		ExponentialBuckets(0.005, 2, 8), "run").With("test")
	wantObs := uint64(((warm+meas)*period - 1) * cmp.NumIslands())
	if got := hist.Count(); got != wantObs {
		t.Errorf("tracking-error observations = %d, want %d", got, wantObs)
	}

	// Both exports are well-formed.
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if _, err := ParsePrometheus(&prom); err != nil {
		t.Errorf("telemetry fails the exposition round trip: %v", err)
	}
	var jbuf bytes.Buffer
	if err := reg.WriteJSON(&jbuf); err != nil {
		t.Fatal(err)
	}
	var anyDoc any
	if err := json.Unmarshal(jbuf.Bytes(), &anyDoc); err != nil {
		t.Errorf("telemetry JSON rejected by encoding/json: %v", err)
	}
}

// TestObserverStepAllocs pins the tentpole's zero-allocation contract: one
// managed interval with the full metrics observer attached (chip cache
// polling, PIC hooks, residency counters) must not allocate in steady
// state. The GPM period is pushed beyond the metered window because the
// provisioning step itself allocates its observation slice by design.
func TestObserverStepAllocs(t *testing.T) {
	cmp, ctl := newManaged(t, 1<<20)
	reg := NewRegistry()
	obs := NewObserver(reg, ObserverOptions{Label: "alloc", Chip: cmp, PICs: picsOf(cmp, ctl)})
	r := engine.NewCPMRunner(ctl)
	obs.RunStart(engine.RunInfo{Label: "alloc", Islands: cmp.NumIslands(), Cores: cmp.NumCores(), BudgetW: 30})
	for k := 0; k < 5; k++ {
		obs.ObserveStep(r.Step())
	}
	if n := testing.AllocsPerRun(20, func() { obs.ObserveStep(r.Step()) }); n != 0 {
		t.Errorf("metered interval allocates %v times with metrics attached, want 0", n)
	}
}

// TestObserverWithoutChip covers the degraded mode used by scenario-level
// telemetry: no chip, no PICs — engine-level series only, island series
// sized from RunInfo at RunStart.
func TestObserverWithoutChip(t *testing.T) {
	cmp, ctl := newManaged(t, 10)
	reg := NewRegistry()
	obs := NewObserver(reg, ObserverOptions{Label: "bare"})
	s, err := engine.NewSession(engine.NewCPMRunner(ctl), engine.SessionConfig{
		WarmEpochs: 1, MeasureEpochs: 2, Period: 10, BudgetW: 30,
	}, obs)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	_ = cmp
	if got := reg.CounterVec("cpm_intervals_total", "Simulated PIC intervals, warmup included.", "run").With("bare").Value(); got != 30 {
		t.Errorf("cpm_intervals_total = %v, want 30", got)
	}
	for _, f := range reg.Gather() {
		switch f.Name {
		case "cpm_cache_hits_total", "cpm_island_level_residency_intervals_total":
			t.Errorf("chip-dependent family %q present without a chip", f.Name)
		case "cpm_island_level":
			if len(f.Samples) != cmp.NumIslands() {
				t.Errorf("island series sized %d, want %d", len(f.Samples), cmp.NumIslands())
			}
		}
	}
}

// TestObserverAdaptiveGauges checks the adaptive-mode series: present and
// live for an adaptive controller, absent entirely for a fixed-gain one.
func TestObserverAdaptiveGauges(t *testing.T) {
	cfg := sim.DefaultConfig(workload.Mix1())
	cfg.Seed = 7
	cmp, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := core.New(cmp, core.Config{
		BudgetW: 30, GPMPeriod: 10, UseOraclePower: true,
		Adaptive: &pic.AdaptiveConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	obs := NewObserver(reg, ObserverOptions{Label: "ad", Chip: cmp, PICs: picsOf(cmp, ctl)})
	s, err := engine.NewSession(engine.NewCPMRunner(ctl), engine.SessionConfig{
		WarmEpochs: 1, MeasureEpochs: 3, Period: 10, BudgetW: 30, Label: "ad",
	}, obs)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()

	byName := map[string]Family{}
	for _, f := range reg.Gather() {
		byName[f.Name] = f
	}
	for _, name := range []string{"cpm_pic_gain_scale", "cpm_pic_plant_gain_est"} {
		fam, ok := byName[name]
		if !ok {
			t.Fatalf("adaptive run exported no %s family", name)
		}
		if len(fam.Samples) != cmp.NumIslands() {
			t.Errorf("%s has %d samples, want one per island (%d)", name, len(fam.Samples), cmp.NumIslands())
		}
		for _, smp := range fam.Samples {
			if smp.Value <= 0 {
				t.Errorf("%s sample %v = %v, want positive", name, smp.Labels, smp.Value)
			}
		}
	}

	// A fixed-gain run must not register the adaptive families at all.
	cmp2, ctl2 := newManaged(t, 10)
	reg2 := NewRegistry()
	obs2 := NewObserver(reg2, ObserverOptions{Label: "fx", Chip: cmp2, PICs: picsOf(cmp2, ctl2)})
	s2, err := engine.NewSession(engine.NewCPMRunner(ctl2), engine.SessionConfig{
		WarmEpochs: 1, MeasureEpochs: 2, Period: 10, BudgetW: 30, Label: "fx",
	}, obs2)
	if err != nil {
		t.Fatal(err)
	}
	s2.Run()
	for _, f := range reg2.Gather() {
		if f.Name == "cpm_pic_gain_scale" || f.Name == "cpm_pic_plant_gain_est" {
			t.Errorf("fixed-gain run exported %s", f.Name)
		}
	}
}
