package metrics

import (
	"math"
	"strconv"

	"github.com/cpm-sim/cpm/internal/cache"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/pic"
	"github.com/cpm-sim/cpm/internal/sim"
)

// ObserverOptions parameterizes NewObserver.
type ObserverOptions struct {
	// Label is the value of the "run" label on every series the observer
	// writes. Runs sharing a registry should use distinct labels; counters
	// under the same label accumulate across runs.
	Label string
	// Chip, when set, enables chip-level telemetry that needs direct
	// simulator access: cache hit/miss counters and per-level DVFS
	// residency (the DVFS table's depth is read from the chip).
	Chip *sim.CMP
	// PICs, when set, enables controller-state telemetry: integrator,
	// continuous frequency state, target and estimated power fractions, and
	// the tracking-error histogram (subscribed via AddInvokeHook, so other
	// hooks on the same controllers are preserved).
	PICs []*pic.Controller
}

// Observer is an engine.Observer that aggregates per-interval and per-epoch
// telemetry of the two-tier control loop into a Registry. All instrument
// handles are created up front (NewObserver / RunStart), so the per-step
// path performs only atomic updates and allocates nothing — the interval
// loop's 0 allocs/interval contract holds with the observer attached.
//
// Step and epoch events are consumed synchronously and nothing handed to
// the observer is retained, so the engine's live-slice contract
// (Step.Sim.Islands and Step.AllocW alias per-chip scratch) is respected.
type Observer struct {
	reg   *Registry
	label string
	chip  *sim.CMP
	pics  []*pic.Controller

	// chip-level series
	intervals      *Counter
	epochs         *Counter
	gpmInvocations *Counter
	chipPower      *Gauge
	chipBIPS       *Gauge
	budget         *Gauge
	maxTemp        *Gauge
	epochPower     *Gauge
	epochBIPS      *Gauge
	budgetResidual *Gauge
	powerFracHist  *Histogram
	trackErrHist   *Histogram

	// per-island series, indexed by island
	islAlloc  []*Gauge
	islPower  []*Gauge
	islBIPS   []*Gauge
	islLevel  []*Gauge
	islTrans  []*Counter
	residency [][]*Counter // [island][level], nil without a chip

	picInteg  []*Gauge
	picFreq   []*Gauge
	picTarget []*Gauge
	// Adaptive-mode series, populated only when the controllers run the
	// adaptive-gain estimator (nil slices otherwise — fixed-gain runs
	// export no estimator telemetry at all).
	picScale   []*Gauge
	picGainEst []*Gauge
	picEst     []*Gauge

	// cache series, indexed l1i/l1d/l2
	cacheHits     [3]*Counter
	cacheMisses   [3]*Counter
	cacheMissRate [3]*Gauge
	prevCache     sim.CacheStats

	peakTempC float64
}

// cacheLevelNames label the three cache series.
var cacheLevelNames = [3]string{"l1i", "l1d", "l2"}

// NewObserver builds an observer writing into reg under opts.Label. Families
// are registered (or found — registries are shared across runs) immediately;
// per-island series are created now when a Chip or PICs are given, otherwise
// at RunStart from the session's RunInfo.
func NewObserver(reg *Registry, opts ObserverOptions) *Observer {
	o := &Observer{reg: reg, label: opts.Label, chip: opts.Chip, pics: opts.PICs}

	o.intervals = reg.CounterVec("cpm_intervals_total",
		"Simulated PIC intervals, warmup included.", "run").With(o.label)
	o.epochs = reg.CounterVec("cpm_epochs_total",
		"Measured GPM epochs.", "run").With(o.label)
	o.gpmInvocations = reg.CounterVec("cpm_gpm_invocations_total",
		"GPM provisioning invocations (epoch boundaries with measurements).", "run").With(o.label)
	o.chipPower = reg.GaugeVec("cpm_chip_power_watts",
		"Chip power of the latest interval.", "run").With(o.label)
	o.chipBIPS = reg.GaugeVec("cpm_chip_bips",
		"Chip instruction throughput of the latest interval (BIPS).", "run").With(o.label)
	o.budget = reg.GaugeVec("cpm_budget_watts",
		"Chip power budget (0 when unmanaged).", "run").With(o.label)
	o.maxTemp = reg.GaugeVec("cpm_max_temp_celsius",
		"Peak die temperature seen so far in the run.", "run").With(o.label)
	o.epochPower = reg.GaugeVec("cpm_epoch_mean_power_watts",
		"Mean chip power of the latest measured epoch.", "run").With(o.label)
	o.epochBIPS = reg.GaugeVec("cpm_epoch_mean_bips",
		"Mean chip throughput of the latest measured epoch.", "run").With(o.label)
	o.budgetResidual = reg.GaugeVec("cpm_epoch_budget_residual_watts",
		"Latest epoch's mean power minus the budget (negative = headroom).", "run").With(o.label)
	o.powerFracHist = reg.HistogramVec("cpm_interval_power_frac",
		"Per-interval chip power as a fraction of maximum chip power.",
		LinearBuckets(0.05, 0.05, 19), "run").With(o.label)
	o.trackErrHist = reg.HistogramVec("cpm_pic_tracking_error_frac",
		"Per-invocation PIC tracking error |target − estimate| in island-max-power fractions.",
		ExponentialBuckets(0.005, 2, 8), "run").With(o.label)

	if opts.Chip != nil {
		o.ensureIslands(opts.Chip.NumIslands())
	} else if len(opts.PICs) > 0 {
		o.ensureIslands(len(opts.PICs))
	}
	if opts.Chip != nil {
		o.initChip(opts.Chip)
	}
	o.initPICs()
	o.peakTempC = math.Inf(-1)
	return o
}

// ensureIslands creates the per-island series for islands [len(islAlloc), n).
// Idempotent; called from NewObserver and RunStart, never on the step path
// once sized.
func (o *Observer) ensureIslands(n int) {
	allocV := o.reg.GaugeVec("cpm_island_alloc_watts",
		"GPM-provisioned power of the island.", "run", "island")
	powerV := o.reg.GaugeVec("cpm_island_power_watts",
		"Measured island power (epoch mean).", "run", "island")
	bipsV := o.reg.GaugeVec("cpm_island_bips",
		"Island instruction throughput (epoch mean).", "run", "island")
	levelV := o.reg.GaugeVec("cpm_island_level",
		"Island DVFS level of the latest interval.", "run", "island")
	transV := o.reg.CounterVec("cpm_island_transitions_total",
		"Intervals that paid a DVFS transition overhead.", "run", "island")
	for i := len(o.islAlloc); i < n; i++ {
		is := strconv.Itoa(i)
		o.islAlloc = append(o.islAlloc, allocV.With(o.label, is))
		o.islPower = append(o.islPower, powerV.With(o.label, is))
		o.islBIPS = append(o.islBIPS, bipsV.With(o.label, is))
		o.islLevel = append(o.islLevel, levelV.With(o.label, is))
		o.islTrans = append(o.islTrans, transV.With(o.label, is))
	}
}

// initChip creates the chip-dependent series: per-level DVFS residency
// counters (the table depth comes from the chip) and cache counters.
func (o *Observer) initChip(chip *sim.CMP) {
	resV := o.reg.CounterVec("cpm_island_level_residency_intervals_total",
		"Intervals the island spent at each DVFS level.", "run", "island", "level")
	o.residency = make([][]*Counter, chip.NumIslands())
	for i := range o.residency {
		// Each island's counter cardinality is its *own* table depth — on a
		// heterogeneous chip islands legitimately differ.
		levels := chip.IslandTable(i).Levels()
		is := strconv.Itoa(i)
		o.residency[i] = make([]*Counter, levels)
		for l := 0; l < levels; l++ {
			o.residency[i][l] = resV.With(o.label, is, strconv.Itoa(l))
		}
	}

	hitsV := o.reg.CounterVec("cpm_cache_hits_total",
		"Cache hits by hierarchy level.", "run", "level")
	missesV := o.reg.CounterVec("cpm_cache_misses_total",
		"Cache misses by hierarchy level.", "run", "level")
	rateV := o.reg.GaugeVec("cpm_cache_miss_rate",
		"Cumulative cache miss rate by hierarchy level (NaN until the level is accessed).", "run", "level")
	for k, name := range cacheLevelNames {
		o.cacheHits[k] = hitsV.With(o.label, name)
		o.cacheMisses[k] = missesV.With(o.label, name)
		o.cacheMissRate[k] = rateV.With(o.label, name)
	}
	o.prevCache = chip.CacheStats()
}

// initPICs subscribes the tracking-error hook on every controller and
// creates the controller-state gauges.
func (o *Observer) initPICs() {
	if len(o.pics) == 0 {
		return
	}
	integV := o.reg.GaugeVec("cpm_pic_integrator",
		"PID integral accumulator of the island's controller.", "run", "island")
	freqV := o.reg.GaugeVec("cpm_pic_freq_norm",
		"Controller's continuous normalized frequency state.", "run", "island")
	targetV := o.reg.GaugeVec("cpm_pic_target_frac",
		"Provisioned budget as a fraction of island max power.", "run", "island")
	estV := o.reg.GaugeVec("cpm_pic_est_power_frac",
		"Smoothed feedback power estimate as a fraction of island max power.", "run", "island")
	var scaleV, gainV *GaugeVec
	if o.pics[0].Adaptive() {
		scaleV = o.reg.GaugeVec("cpm_pic_gain_scale",
			"Adaptive-gain rescale factor applied to the design PID gains (1 = design gains).", "run", "island")
		gainV = o.reg.GaugeVec("cpm_pic_plant_gain_est",
			"RLS estimate of the island plant gain dP/df (power fraction per normalized frequency).", "run", "island")
	}
	for i, p := range o.pics {
		is := strconv.Itoa(i)
		o.picInteg = append(o.picInteg, integV.With(o.label, is))
		o.picFreq = append(o.picFreq, freqV.With(o.label, is))
		o.picTarget = append(o.picTarget, targetV.With(o.label, is))
		if scaleV != nil {
			o.picScale = append(o.picScale, scaleV.With(o.label, is))
			o.picGainEst = append(o.picGainEst, gainV.With(o.label, is))
		}
		est := estV.With(o.label, is)
		o.picEst = append(o.picEst, est)
		hist := o.trackErrHist
		p.AddInvokeHook(func(targetFrac, estFrac float64, _ int) {
			est.Set(estFrac)
			hist.Observe(math.Abs(targetFrac - estFrac))
		})
	}
}

// RunStart implements engine.Observer.
func (o *Observer) RunStart(info engine.RunInfo) {
	o.ensureIslands(info.Islands)
	o.budget.Set(info.BudgetW)
	o.peakTempC = math.Inf(-1)
}

// ObserveStep implements engine.Observer. Allocation-free.
func (o *Observer) ObserveStep(st engine.Step) {
	o.intervals.Inc()
	o.chipPower.Set(st.Sim.ChipPowerW)
	o.chipBIPS.Set(st.Sim.TotalBIPS)
	o.powerFracHist.Observe(st.Sim.ChipPowerFrac)
	if st.Sim.MaxTempC > o.peakTempC {
		o.peakTempC = st.Sim.MaxTempC
		o.maxTemp.Set(o.peakTempC)
	}
	if st.GPMInvoked {
		o.gpmInvocations.Inc()
	}
	for i := range st.Sim.Islands {
		if i >= len(o.islLevel) {
			break
		}
		ir := &st.Sim.Islands[i]
		o.islLevel[i].Set(float64(ir.Level))
		if ir.Transitioned {
			o.islTrans[i].Inc()
		}
		if o.residency != nil && ir.Level >= 0 && ir.Level < len(o.residency[i]) {
			o.residency[i][ir.Level].Inc()
		}
	}
	for i := range st.AllocW {
		if i >= len(o.islAlloc) {
			break
		}
		o.islAlloc[i].Set(st.AllocW[i])
	}
	for i, p := range o.pics {
		o.picInteg[i].Set(p.Integrator())
		o.picFreq[i].Set(p.FreqNorm())
		o.picTarget[i].Set(p.TargetFrac())
		if o.picScale != nil {
			o.picScale[i].Set(p.GainScale())
			o.picGainEst[i].Set(p.PlantGainEstimate())
		}
	}
	if o.chip != nil {
		cur := o.chip.CacheStats()
		o.observeCacheDelta(0, cur.L1I, o.prevCache.L1I)
		o.observeCacheDelta(1, cur.L1D, o.prevCache.L1D)
		o.observeCacheDelta(2, cur.L2, o.prevCache.L2)
		o.prevCache = cur
	}
}

// observeCacheDelta folds one level's counter delta into its series. The
// miss-rate gauge carries the cumulative rate — cache.Stats.MissRate's NaN
// sentinel for a zero-access level flows through on purpose; the JSON
// exporter encodes it as null, the Prometheus text format natively.
func (o *Observer) observeCacheDelta(k int, cur, prev cache.Stats) {
	o.cacheHits[k].Add(float64(cur.Hits - prev.Hits))
	o.cacheMisses[k].Add(float64(cur.Misses - prev.Misses))
	o.cacheMissRate[k].Set(cur.MissRate())
}

// ObserveEpoch implements engine.Observer.
func (o *Observer) ObserveEpoch(e engine.Epoch) {
	o.epochs.Inc()
	o.epochPower.Set(e.MeanPowerW)
	o.epochBIPS.Set(e.MeanBIPS)
	if e.BudgetW > 0 {
		o.budgetResidual.Set(e.MeanPowerW - e.BudgetW)
	}
	for i := range e.AllocW {
		if i >= len(o.islAlloc) {
			break
		}
		o.islAlloc[i].Set(e.AllocW[i])
	}
	for i := range e.IslandPowerW {
		if i >= len(o.islPower) {
			break
		}
		o.islPower[i].Set(e.IslandPowerW[i])
	}
	for i := range e.IslandBIPS {
		if i >= len(o.islBIPS) {
			break
		}
		o.islBIPS[i].Set(e.IslandBIPS[i])
	}
}

// RunEnd implements engine.Observer.
func (o *Observer) RunEnd(sum *engine.Summary) {
	if sum == nil {
		return
	}
	if sum.MaxTempC > o.peakTempC {
		o.peakTempC = sum.MaxTempC
		o.maxTemp.Set(o.peakTempC)
	}
}
