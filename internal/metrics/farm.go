package metrics

import (
	"math"
	"sync"

	"github.com/cpm-sim/cpm/internal/engine"
)

// FarmObserver aggregates fleet-wide telemetry for a chip farm into a
// Registry under a single "farm" label. Cardinality is bounded by
// construction: every series is a fleet-level sum or extreme — there are no
// per-chip labels, so a 4-chip farm and a 4096-chip farm emit the same
// number of series.
//
// One shared FarmObserver is attached to every member session of the farm.
// Member sessions step concurrently (groups are the pool's unit of
// parallelism), so all instrument updates are atomic and the running
// extremes are guarded by a mutex; the step path allocates nothing, so the
// fleet's 0 allocs/interval contract holds with the observer attached.
//
// RunStart fires once per member session and must therefore not reset
// fleet state; extremes are initialized at construction and only ever
// tightened.
type FarmObserver struct {
	sessions      *Counter
	sessionsDone  *Counter
	chipIntervals *Counter
	epochs        *Counter
	instructions  *Counter
	powerSum      *Counter
	bipsSum       *Counter

	chipPowerMax *Gauge
	chipPowerMin *Gauge
	tempMax      *Gauge

	mu       sync.Mutex
	powerMax float64
	powerMin float64
	peakTemp float64
}

// NewFarmObserver builds a fleet observer writing into reg under the given
// farm label. All instruments are created up front.
func NewFarmObserver(reg *Registry, farm string) *FarmObserver {
	o := &FarmObserver{
		powerMax: math.Inf(-1),
		powerMin: math.Inf(1),
		peakTemp: math.Inf(-1),
	}
	o.sessions = reg.CounterVec("cpm_farm_sessions_total",
		"Member sessions started in the farm.", "farm").With(farm)
	o.sessionsDone = reg.CounterVec("cpm_farm_sessions_completed_total",
		"Member sessions finished in the farm.", "farm").With(farm)
	o.chipIntervals = reg.CounterVec("cpm_farm_chip_intervals_total",
		"Chip-intervals simulated across the fleet, warmup included.", "farm").With(farm)
	o.epochs = reg.CounterVec("cpm_farm_epochs_total",
		"Measured GPM epochs across the fleet.", "farm").With(farm)
	o.instructions = reg.CounterVec("cpm_farm_instructions_total",
		"Instructions executed across the fleet's measured epochs.", "farm").With(farm)
	o.powerSum = reg.CounterVec("cpm_farm_power_watt_intervals_total",
		"Sum of per-interval chip power across the fleet; divide by cpm_farm_chip_intervals_total for the fleet-mean chip power.", "farm").With(farm)
	o.bipsSum = reg.CounterVec("cpm_farm_bips_intervals_total",
		"Sum of per-interval chip BIPS across the fleet; divide by cpm_farm_chip_intervals_total for the fleet-mean throughput.", "farm").With(farm)
	o.chipPowerMax = reg.GaugeVec("cpm_farm_chip_power_max_watts",
		"Highest single-chip interval power seen across the fleet.", "farm").With(farm)
	o.chipPowerMin = reg.GaugeVec("cpm_farm_chip_power_min_watts",
		"Lowest single-chip interval power seen across the fleet.", "farm").With(farm)
	o.tempMax = reg.GaugeVec("cpm_farm_temp_max_celsius",
		"Peak die temperature seen across the fleet.", "farm").With(farm)
	return o
}

// RunStart implements engine.Observer; it fires once per member session.
func (o *FarmObserver) RunStart(engine.RunInfo) { o.sessions.Inc() }

// ObserveStep implements engine.Observer. Allocation-free and safe under
// concurrent member sessions.
func (o *FarmObserver) ObserveStep(st engine.Step) {
	o.chipIntervals.Inc()
	o.powerSum.Add(st.Sim.ChipPowerW)
	o.bipsSum.Add(st.Sim.TotalBIPS)

	p, tc := st.Sim.ChipPowerW, st.Sim.MaxTempC
	o.mu.Lock()
	if p > o.powerMax {
		o.powerMax = p
		o.chipPowerMax.Set(p)
	}
	if p < o.powerMin {
		o.powerMin = p
		o.chipPowerMin.Set(p)
	}
	if tc > o.peakTemp {
		o.peakTemp = tc
		o.tempMax.Set(tc)
	}
	o.mu.Unlock()
}

// ObserveEpoch implements engine.Observer.
func (o *FarmObserver) ObserveEpoch(e engine.Epoch) {
	o.epochs.Inc()
	o.instructions.Add(e.Instructions)
}

// RunEnd implements engine.Observer.
func (o *FarmObserver) RunEnd(sum *engine.Summary) {
	o.sessionsDone.Inc()
	if sum == nil {
		return
	}
	o.mu.Lock()
	if sum.MaxTempC > o.peakTemp {
		o.peakTemp = sum.MaxTempC
		o.tempMax.Set(sum.MaxTempC)
	}
	o.mu.Unlock()
}
