package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): a # HELP / # TYPE header per family followed by
// one sample line per series, histograms expanded into cumulative _bucket
// series plus _sum and _count. Output is deterministic (see Gather).
//
// Non-finite values are legal in this format ("NaN", "+Inf", "-Inf") and
// are emitted as-is; only the JSON exporter needs to sanitize them.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, fam := range r.Gather() {
		if fam.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", fam.Name, escapeHelp(fam.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", fam.Name, fam.Kind)
		for _, s := range fam.Samples {
			switch fam.Kind {
			case KindHistogram:
				for _, b := range s.Buckets {
					writeSample(bw, fam.Name+"_bucket", s.Labels, Label{Key: "le", Value: formatValue(b.UpperBound)}, float64(b.CumulativeCount))
				}
				writeSample(bw, fam.Name+"_sum", s.Labels, Label{}, s.Sum)
				writeSample(bw, fam.Name+"_count", s.Labels, Label{}, float64(s.Count))
			default:
				writeSample(bw, fam.Name, s.Labels, Label{}, s.Value)
			}
		}
	}
	return bw.Flush()
}

// writeSample emits one exposition line. extra, when non-zero, is appended
// after the series labels (the histogram "le" label).
func writeSample(w io.Writer, name string, labels []Label, extra Label, value float64) {
	io.WriteString(w, name)
	if len(labels) > 0 || extra.Key != "" {
		io.WriteString(w, "{")
		first := true
		for _, l := range labels {
			if !first {
				io.WriteString(w, ",")
			}
			first = false
			fmt.Fprintf(w, "%s=%q", l.Key, escapeLabelValue(l.Value))
		}
		if extra.Key != "" {
			if !first {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", extra.Key, escapeLabelValue(extra.Value))
		}
		io.WriteString(w, "}")
	}
	io.WriteString(w, " ")
	io.WriteString(w, formatValue(value))
	io.WriteString(w, "\n")
}

// formatValue renders a float the way the exposition format expects:
// shortest round-trippable decimal, with the canonical spellings for the
// non-finite values.
func formatValue(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes backslash and newline for HELP lines.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabelValue escapes backslash and newline for label values; %q adds
// the surrounding quotes and quote escaping.
func escapeLabelValue(s string) string {
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Float is a float64 whose JSON encoding is safe at the export boundary:
// NaN and ±Inf — which encoding/json rejects with an error, dropping the
// whole report — marshal to null instead. Unmarshalling accepts null back
// as NaN, so a round trip preserves "no defined value".
type Float float64

// MarshalJSON implements json.Marshaler.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return []byte("null"), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Float) UnmarshalJSON(b []byte) error {
	if string(b) == "null" {
		*f = Float(math.NaN())
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}

// jsonBucket is one cumulative histogram bucket in the JSON export. The
// upper bound is a string so "+Inf" survives the encoding.
type jsonBucket struct {
	LE    string `json:"le"`
	Count uint64 `json:"count"`
}

// jsonSample is one series in the JSON export.
type jsonSample struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *Float            `json:"value,omitempty"`
	Buckets []jsonBucket      `json:"buckets,omitempty"`
	Sum     *Float            `json:"sum,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
}

// jsonFamily is one family in the JSON export.
type jsonFamily struct {
	Name    string       `json:"name"`
	Type    string       `json:"type"`
	Help    string       `json:"help,omitempty"`
	Metrics []jsonSample `json:"metrics"`
}

// jsonExport is the top-level JSON document.
type jsonExport struct {
	Families []jsonFamily `json:"families"`
}

// WriteJSON renders the registry as an indented JSON document. Non-finite
// values are encoded as null (see Float), so the output always survives
// encoding/json — including the NaN miss rate of a zero-access interval and
// the ±Inf of an empty min/max.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := jsonExport{Families: []jsonFamily{}}
	for _, fam := range r.Gather() {
		jf := jsonFamily{
			Name:    fam.Name,
			Type:    fam.Kind.String(),
			Help:    fam.Help,
			Metrics: []jsonSample{},
		}
		for _, s := range fam.Samples {
			js := jsonSample{}
			if len(s.Labels) > 0 {
				js.Labels = make(map[string]string, len(s.Labels))
				for _, l := range s.Labels {
					js.Labels[l.Key] = l.Value
				}
			}
			if fam.Kind == KindHistogram {
				js.Buckets = make([]jsonBucket, len(s.Buckets))
				for i, b := range s.Buckets {
					js.Buckets[i] = jsonBucket{LE: formatValue(b.UpperBound), Count: b.CumulativeCount}
				}
				sum := Float(s.Sum)
				count := s.Count
				js.Sum, js.Count = &sum, &count
			} else {
				v := Float(s.Value)
				js.Value = &v
			}
			jf.Metrics = append(jf.Metrics, js)
		}
		doc.Families = append(doc.Families, jf)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ParsedSample is one sample line of a parsed exposition document.
type ParsedSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParsedFamily is one family of a parsed exposition document.
type ParsedFamily struct {
	Name    string
	Type    string
	Samples []ParsedSample
}

// ParsePrometheus parses a Prometheus text-format document back into
// families — the round-trip half of the exporter's format test. It enforces
// the structural rules a scraper relies on: legal metric and label names,
// parseable values, a TYPE line preceding each family's samples, histogram
// buckets cumulative with a +Inf bucket matching _count.
func ParsePrometheus(r io.Reader) ([]ParsedFamily, error) {
	var order []string
	byName := map[string]*ParsedFamily{}
	cur := ""
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				name, typ := fields[2], ""
				if len(fields) == 4 {
					typ = fields[3]
				}
				if !validName(name) {
					return nil, fmt.Errorf("metrics: line %d: invalid metric name %q", line, name)
				}
				if _, dup := byName[name]; dup {
					return nil, fmt.Errorf("metrics: line %d: duplicate TYPE for %q", line, name)
				}
				byName[name] = &ParsedFamily{Name: name, Type: typ}
				order = append(order, name)
				cur = name
			}
			continue
		}
		s, err := parseSampleLine(text)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", line, err)
		}
		base := s.Name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if t := strings.TrimSuffix(s.Name, suffix); t != s.Name {
				if f, ok := byName[t]; ok && f.Type == "histogram" {
					base = t
					break
				}
			}
		}
		fam, ok := byName[base]
		if !ok || base != cur {
			return nil, fmt.Errorf("metrics: sample %q outside its family's TYPE block", s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	fams := make([]ParsedFamily, 0, len(order))
	for _, name := range order {
		f := *byName[name]
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
		fams = append(fams, f)
	}
	return fams, nil
}

// parseSampleLine parses `name{k="v",...} value`.
func parseSampleLine(text string) (ParsedSample, error) {
	s := ParsedSample{Labels: map[string]string{}}
	rest := text
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("malformed sample %q", text)
	} else {
		s.Name = rest[:i]
		rest = rest[i:]
	}
	if !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.LastIndex(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set in %q", text)
		}
		body, tail := rest[1:end], rest[end+1:]
		for body != "" {
			eq := strings.Index(body, "=")
			if eq < 0 {
				return s, fmt.Errorf("malformed label in %q", text)
			}
			key := body[:eq]
			if !validLabelKey(key) && key != "le" {
				return s, fmt.Errorf("invalid label key %q", key)
			}
			val, n, err := scanQuoted(body[eq+1:])
			if err != nil {
				return s, err
			}
			s.Labels[key] = val
			body = body[eq+1+n:]
			body = strings.TrimPrefix(body, ",")
		}
		rest = tail
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", text, err)
	}
	s.Value = v
	return s, nil
}

// scanQuoted reads a leading double-quoted, backslash-escaped string and
// returns its unescaped value plus the number of input bytes consumed.
func scanQuoted(s string) (string, int, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", 0, fmt.Errorf("label value not quoted in %q", s)
	}
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape in %q", s)
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated label value in %q", s)
}

// checkHistogram enforces the cumulative-bucket contract for one parsed
// histogram family.
func checkHistogram(f ParsedFamily) error {
	type series struct {
		buckets []ParsedSample
		count   *float64
	}
	byLabels := map[string]*series{}
	keyOf := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			b.WriteString(k)
			b.WriteByte('\xff')
			b.WriteString(labels[k])
			b.WriteByte('\xff')
		}
		return b.String()
	}
	for _, s := range f.Samples {
		key := keyOf(s.Labels)
		sr := byLabels[key]
		if sr == nil {
			sr = &series{}
			byLabels[key] = sr
		}
		switch s.Name {
		case f.Name + "_bucket":
			sr.buckets = append(sr.buckets, s)
		case f.Name + "_count":
			v := s.Value
			sr.count = &v
		}
	}
	for _, sr := range byLabels {
		var prev float64
		var hasInf bool
		var last float64
		for _, b := range sr.buckets {
			le, err := strconv.ParseFloat(b.Labels["le"], 64)
			if err != nil {
				return fmt.Errorf("metrics: histogram %s has bad le %q", f.Name, b.Labels["le"])
			}
			if b.Value < prev {
				return fmt.Errorf("metrics: histogram %s buckets not cumulative", f.Name)
			}
			prev = b.Value
			last = b.Value
			if math.IsInf(le, 1) {
				hasInf = true
			}
		}
		if len(sr.buckets) > 0 && !hasInf {
			return fmt.Errorf("metrics: histogram %s missing +Inf bucket", f.Name)
		}
		if sr.count != nil && len(sr.buckets) > 0 && *sr.count != last {
			return fmt.Errorf("metrics: histogram %s count %v != +Inf bucket %v", f.Name, *sr.count, last)
		}
	}
	return nil
}
