package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestCounterSemantics(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("c_total", "help", "run").With("a")
	c.Inc()
	c.Add(2.5)
	c.Add(-1)           // ignored: counters are monotone
	c.Add(math.NaN())   // ignored
	c.Add(math.Inf(-1)) // ignored
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter value = %v, want 3.5", got)
	}
	// The same (name, labels) resolves to the same series.
	if again := r.CounterVec("c_total", "help", "run").With("a"); again.Value() != 3.5 {
		t.Errorf("re-looked-up counter = %v, want 3.5", again.Value())
	}
}

func TestGaugeSemantics(t *testing.T) {
	r := NewRegistry()
	g := r.GaugeVec("g", "help").With()
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge value = %v, want 2.5", got)
	}
	g.Set(math.NaN())
	if !math.IsNaN(g.Value()) {
		t.Errorf("gauge did not hold NaN")
	}
}

func TestHistogramSemantics(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramVec("h", "help", []float64{1, 2, 4}).With()
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped: carries no bucket information
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Errorf("sum = %v, want 106", got)
	}
	fam := r.Gather()[0]
	b := fam.Samples[0].Buckets
	wantCum := []uint64{2, 3, 4, 5} // le=1:2, le=2:3, le=4:4, +Inf:5
	for i, w := range wantCum {
		if b[i].CumulativeCount != w {
			t.Errorf("bucket %d cumulative = %d, want %d", i, b[i].CumulativeCount, w)
		}
	}
	if !math.IsInf(b[len(b)-1].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", b[len(b)-1].UpperBound)
	}
}

func TestSchemaMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m", "help", "run")
	for name, f := range map[string]func(){
		"kind":    func() { r.GaugeVec("m", "help", "run") },
		"labels":  func() { r.CounterVec("m", "help", "island") },
		"badName": func() { r.CounterVec("9bad", "help") },
		"badKey":  func() { r.CounterVec("ok", "help", "9bad") },
		"arity":   func() { r.CounterVec("m", "help", "run").With("a", "b") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestGatherDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		// Register in one order, populate in another.
		r.GaugeVec("zz", "z", "run").With("b").Set(2)
		r.CounterVec("aa_total", "a", "run", "island").With("x", "1").Inc()
		r.CounterVec("aa_total", "a", "run", "island").With("x", "0").Inc()
		r.GaugeVec("zz", "z", "run").With("a").Set(1)
		return r
	}
	a, b := build().Gather(), build().Gather()
	if len(a) != 2 || a[0].Name != "aa_total" || a[1].Name != "zz" {
		t.Fatalf("families not name-sorted: %+v", a)
	}
	if a[0].Samples[0].Labels[1].Value != "0" || a[0].Samples[1].Labels[1].Value != "1" {
		t.Errorf("samples not label-sorted: %+v", a[0].Samples)
	}
	if a[1].Samples[0].Labels[0].Value != "a" {
		t.Errorf("zz samples not label-sorted: %+v", a[1].Samples)
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Samples) != len(b[i].Samples) {
			t.Fatalf("two identical builds gathered differently")
		}
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if len(lin) != 3 || lin[0] != 1 || lin[2] != 5 {
		t.Errorf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 2, 4)
	if len(exp) != 4 || exp[3] != 8 {
		t.Errorf("ExponentialBuckets = %v", exp)
	}
}

// TestConcurrentUpdatesAndScrape hammers one registry from writer
// goroutines while scraping both export formats — the package-level
// race-detector target (the sweep-level one lives in cmd/cpmsweep).
func TestConcurrentUpdatesAndScrape(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("events_total", "help", "worker")
	hv := r.HistogramVec("lat", "help", []float64{1, 10, 100}, "worker")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := cv.With(string(rune('a' + w)))
			h := hv.With(string(rune('a' + w)))
			for i := 0; i < 2000; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := r.WritePrometheus(discard{}); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
			if err := r.WriteJSON(discard{}); err != nil {
				t.Errorf("WriteJSON: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	var total float64
	for w := 0; w < 4; w++ {
		total += cv.With(string(rune('a' + w))).Value()
	}
	if total != 8000 {
		t.Errorf("lost updates: total = %v, want 8000", total)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
