package sim

import (
	"errors"
	"fmt"

	"github.com/cpm-sim/cpm/internal/cache"
	"github.com/cpm-sim/cpm/internal/mem"
	"github.com/cpm-sim/cpm/internal/snapshot"
	"github.com/cpm-sim/cpm/internal/stats"
	"github.com/cpm-sim/cpm/internal/uarch"
)

// Sampler is the frequency-independent half of a chip, standing alone: the
// per-core phase machines, address-stream generators and cache hierarchies
// a live chip would own, advanced one interval at a time to produce
// TraceRecord batches. Because records do not depend on the operating
// point, every chip sharing the sampler's workload identity (seed, mix,
// core and cache configuration — see farm.WorkloadKey) can be driven from
// one Sampler through NewWithRecords, paying the expensive sampling work
// (>95% of a live step) once per interval instead of once per chip.
//
// A Sampler built from cfg produces, interval for interval, exactly the
// records a live New(cfg) chip's cores would have sampled: construction
// derives the same per-core seeds and builds the same cache structures
// through the same helpers. The memory system, thermal, variation and DVFS
// parts of cfg are ignored — they belong to the compute half.
//
// Not safe for concurrent use; in a farm each sampler group is stepped by
// one worker.
type Sampler struct {
	cfg     Config
	islands []samplerIsland
	cores   []*uarch.Core // global core-ID order
	cursor  int
	recs    []uarch.TraceRecord
	// fresh reports that recs holds interval cursor-1 (false right after
	// construction or restore, when no batch has been sampled yet).
	fresh bool
}

type samplerIsland struct {
	cores  []*uarch.Core
	shared *cache.Banked
}

// NewSampler builds the sampling half of New(cfg). Replay configurations
// are rejected: replay cores have no sampling half.
func NewSampler(cfg Config) (*Sampler, error) {
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if cfg.Replay != nil {
		return nil, errors.New("sim: replay chips have no sampling half")
	}
	if cfg.L2PrefetchDegree > 0 && cfg.SharedL2 {
		return nil, errors.New("sim: L2 prefetching requires private L2 slices")
	}
	profiles, err := cfg.Mix.Profiles()
	if err != nil {
		return nil, err
	}
	// Cores validate against a memory system at construction but never
	// read it during sampling (latency belongs to the compute half); a
	// throwaway instance satisfies the constructor.
	memsys, err := mem.New(cfg.Mem)
	if err != nil {
		return nil, err
	}
	// The per-island core configurations must match the live chip's exactly
	// — a class or tech mismatch would change the record stream (pipeline
	// widths shape the CPI floor), so the sampler resolves islands through
	// the same helpers as newChip.
	_, islandModels, classes, err := resolveIslandModels(cfg)
	if err != nil {
		return nil, err
	}
	s := &Sampler{cfg: cfg}
	coreID := 0
	for islandID, islandProfiles := range profiles {
		coreCfg, err := islandCoreConfig(cfg, classes[islandID], islandModels[islandID].Table)
		if err != nil {
			return nil, err
		}
		shared, err := islandL2(cfg, len(islandProfiles))
		if err != nil {
			return nil, err
		}
		isl := samplerIsland{shared: shared}
		for _, prof := range islandProfiles {
			h, err := coreHierarchy(cfg, shared)
			if err != nil {
				return nil, err
			}
			core, err := uarch.NewCore(coreID, stats.DeriveSeed(cfg.Seed, uint64(coreID)), coreCfg, prof, h, memsys)
			if err != nil {
				return nil, fmt.Errorf("sim: sampler core %d (%s): %w", coreID, prof.Name, err)
			}
			isl.cores = append(isl.cores, core)
			s.cores = append(s.cores, core)
			coreID++
		}
		s.islands = append(s.islands, isl)
	}
	s.recs = make([]uarch.TraceRecord, len(s.cores))
	return s, nil
}

// NumCores returns the core count of the sampled chip.
func (s *Sampler) NumCores() int { return len(s.cores) }

// Cursor returns the next interval the sampler will generate.
func (s *Sampler) Cursor() int { return s.cursor }

// Records implements RecordSource: asking for the cursor interval samples
// a fresh batch and advances; asking for the interval just sampled returns
// the cached batch (the sharing path — every chip of a group steps the
// same interval). Anything else panics: a chip has fallen out of lockstep
// with its sampler, and continuing would silently corrupt every sharing
// chip's workload stream.
func (s *Sampler) Records(k int) []uarch.TraceRecord {
	switch {
	case k == s.cursor:
		for i, core := range s.cores {
			s.recs[i] = core.SampleInterval()
		}
		s.cursor++
		s.fresh = true
	case k == s.cursor-1 && s.fresh:
		// cached batch
	default:
		panic(fmt.Sprintf("sim: record source at interval %d driven out of lockstep (asked for %d)", s.cursor, k))
	}
	return s.recs
}

// Advance samples and discards n intervals — warming the sampler past a
// stretch no chip will consume (e.g. warm-up intervals already baked into
// forked chip snapshots).
func (s *Sampler) Advance(n int) {
	for i := 0; i < n; i++ {
		s.Records(s.cursor)
	}
}

// CacheStats aggregates the sampler's cumulative cache counters exactly as
// CMP.CacheStats would for the live twin chip: summed over cores, shared
// L2s counted once per island. Record-driven chips delegate here via
// CMP.SetCacheStatsSource (all chips of a group share these counters).
func (s *Sampler) CacheStats() CacheStats {
	var out CacheStats
	for _, isl := range s.islands {
		for j, core := range isl.cores {
			l1i, l1d, l2 := core.CacheStats()
			addCacheStats(&out.L1I, l1i)
			addCacheStats(&out.L1D, l1d)
			if isl.shared == nil || j == 0 {
				addCacheStats(&out.L2, l2)
			}
		}
	}
	return out
}

// IslandCacheStats aggregates island i's cumulative cache counters exactly
// as CMP.IslandCacheStats would for the live twin chip: summed over the
// island's cores, a shared L2 counted once. Record-driven chips delegate
// here via CMP.SetIslandCacheStatsSource.
func (s *Sampler) IslandCacheStats(i int) CacheStats {
	var out CacheStats
	isl := s.islands[i]
	for j, core := range isl.cores {
		l1i, l1d, l2 := core.CacheStats()
		addCacheStats(&out.L1I, l1i)
		addCacheStats(&out.L1D, l1d)
		if isl.shared == nil || j == 0 {
			addCacheStats(&out.L2, l2)
		}
	}
	return out
}

// Snapshot appends the sampler's complete dynamic state: the cursor and
// per island its shared L2 (once, when shared) and per-core generator and
// cache state. The cached record batch is not captured — snapshots are
// taken between farm rounds, when every sharing chip has consumed it and
// the next request advances the cursor.
func (s *Sampler) Snapshot(e *snapshot.Encoder) {
	e.Tag(snapshot.TagSampler)
	e.Int(len(s.cores))
	e.Int(len(s.islands))
	for _, isl := range s.islands {
		e.Int(len(isl.cores))
	}
	e.Int(s.cursor)
	for _, isl := range s.islands {
		e.Bool(isl.shared != nil)
		if isl.shared != nil {
			isl.shared.Snapshot(e)
		}
		for _, core := range isl.cores {
			core.Snapshot(e, isl.shared == nil)
		}
	}
}

// Restore reads state written by Snapshot into a freshly constructed,
// structurally identical sampler. On error the sampler may be partially
// written and must be discarded.
func (s *Sampler) Restore(d *snapshot.Decoder) error {
	d.Tag(snapshot.TagSampler)
	nCores := d.Int()
	nIslands := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nCores != len(s.cores) || nIslands != len(s.islands) {
		return snapshot.ShapeErrorf("snapshot sampler is %d cores / %d islands, target is %d / %d",
			nCores, nIslands, len(s.cores), len(s.islands))
	}
	for i, isl := range s.islands {
		if n := d.Int(); d.Err() == nil && n != len(isl.cores) {
			return snapshot.ShapeErrorf("snapshot sampler island %d has %d cores, target has %d", i, n, len(isl.cores))
		}
	}
	cursor := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if cursor < 0 {
		return snapshot.ShapeErrorf("negative sampler cursor %d", cursor)
	}
	s.cursor = cursor
	s.fresh = false
	for i, isl := range s.islands {
		hadShared := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		if hadShared != (isl.shared != nil) {
			return snapshot.ShapeErrorf("sampler island %d shared-L2 presence %v, target %v", i, hadShared, isl.shared != nil)
		}
		if isl.shared != nil {
			if err := isl.shared.Restore(d); err != nil {
				return err
			}
		}
		for _, core := range isl.cores {
			if err := core.Restore(d, isl.shared == nil); err != nil {
				return err
			}
		}
	}
	return d.Err()
}
