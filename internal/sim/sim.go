// Package sim is the full-system CMP simulator: it composes the core models,
// cache hierarchies, memory system, power models, thermal model and process
// variation into one interval-driven engine — the role Simics+GEMS+Wattch+
// HotLeakage played for the paper.
//
// The engine advances in PIC-sized intervals (2.5 ms by default). Each
// interval, every core executes under its island's current operating point;
// island and chip power, utilization, BIPS and temperatures are produced for
// the controllers sitting on top (internal/core wires the GPM and PICs to
// this engine; internal/maxbips drives it for the baseline).
//
// Cross-island couplings (shared-memory queueing and lateral heat flow) are
// applied with one interval of delay, so islands are fully independent
// within an interval. This is what makes the parallel executor (one
// goroutine per island, barrier per interval) produce bit-identical results
// to the sequential one — asserted by tests.
package sim

import (
	"errors"
	"fmt"
	"sync"

	"github.com/cpm-sim/cpm/internal/cache"
	"github.com/cpm-sim/cpm/internal/island"
	"github.com/cpm-sim/cpm/internal/mem"
	"github.com/cpm-sim/cpm/internal/noc"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/stats"
	"github.com/cpm-sim/cpm/internal/thermal"
	"github.com/cpm-sim/cpm/internal/uarch"
	"github.com/cpm-sim/cpm/internal/variation"
	"github.com/cpm-sim/cpm/internal/workload"
)

// Config describes a complete CMP instance.
type Config struct {
	// Seed drives every stochastic component deterministically.
	Seed uint64
	// Mix assigns benchmarks to cores and defines the island structure.
	Mix workload.Mix
	// Core is the per-core microarchitecture configuration.
	Core uarch.Config
	// Power is the power model (DefaultModel if nil).
	Power *power.Model
	// Tech selects a technology node that rescales the power model and the
	// DVFS table (power.ScaleModel) before any per-island specialization.
	// The zero value applies no scaling at all: the chip is bit-identical
	// to one built before the tech axis existed.
	Tech power.TechConfig
	// IslandClasses assigns a core class per island for heterogeneous
	// big.LITTLE chips: each island gets its own DVFS table, power-model
	// scalars (power.ModelForClass) and pipeline preset
	// (uarch.ParamsForClass). Nil means every island runs the big
	// out-of-order class on the chip-wide model — the legacy homogeneous
	// path. When non-nil the length must equal the mix's island count.
	IslandClasses []power.CoreClass
	// Mem is the memory system configuration.
	Mem mem.Config
	// Thermal is the RC thermal configuration.
	Thermal thermal.Config
	// Variation is the per-core leakage variation map (uniform if empty).
	Variation variation.Map
	// IntervalSec is the simulation interval — the PIC invocation period
	// (2.5 ms default).
	IntervalSec float64
	// InitialLevel is the DVFS level all islands start at; -1 means the top
	// level (the no-power-management operating point).
	InitialLevel int
	// SharedL2 shares a banked L2 among the cores of each island,
	// approximating the shared-LLC layout of Figure 1 at island
	// granularity; the default (false) gives each core its private 512 KB
	// slice per Table I's "512 KB per core". With true LRU and sampled
	// streams, full sharing lets one streaming application evict a
	// co-runner's entire working set every few intervals — far harsher
	// than the paper's environment — so private slices are the default.
	SharedL2 bool
	// L2PrefetchDegree, when positive, attaches a sequential stream
	// prefetcher of that degree to every private L2 slice — a substrate
	// option the paper's platform lacks (off by default); incompatible
	// with SharedL2.
	L2PrefetchDegree int
	// NoC, when non-nil, adds a GALS mesh interconnect between core tiles
	// and the die-centre memory controllers: every memory access pays the
	// mesh round trip on top of DRAM latency, with congestion fed back
	// with one interval of delay. Nil disables the interconnect (memory
	// controller adjacency, the pre-mesh idealization).
	NoC *noc.Config
	// Parallel runs islands concurrently (bit-identical to sequential).
	Parallel bool
	// RecordTraces captures every core's per-interval TraceRecord; retrieve
	// the set with CMP.Traces() and replay it via Replay.
	RecordTraces bool
	// Replay, when non-nil, replaces the live cores with trace-replaying
	// ones: the chip re-executes the recorded workload behaviour (possibly
	// under a different controller or DVFS trajectory), skipping phase
	// generation and cache simulation. Core/benchmark assignments must
	// match the mix.
	Replay *uarch.TraceSet
}

// DefaultConfig returns the paper's baseline configuration (Table I) for the
// given mix.
func DefaultConfig(mix workload.Mix) Config {
	return Config{
		Seed:         1,
		Mix:          mix,
		Core:         uarch.DefaultConfig(),
		Mem:          mem.TableI(),
		Thermal:      thermal.DefaultConfig(),
		IntervalSec:  0.0025,
		InitialLevel: -1,
	}
}

// IslandResult is one island's observation for one interval — everything
// the GPM, PIC and baselines are allowed to see, plus the oracle power used
// for evaluation plots.
type IslandResult struct {
	Island  int
	Level   int
	FreqMHz float64
	// PowerW is the measured (oracle) island power.
	PowerW float64
	// PowerFracIsland is PowerW over the island's maximum power — the
	// quantity the PIC regulates.
	PowerFracIsland float64
	// PowerFracChip is PowerW over maximum chip power — the unit of the
	// paper's percent-power plots.
	PowerFracChip float64
	// MeanUtil is the mean normalized utilization across the island's
	// cores: the performance-counter observable fed to the transducer.
	MeanUtil float64
	// BIPS is the summed instruction throughput of the island.
	BIPS float64
	// Instructions executed by the island this interval.
	Instructions float64
	// Transitioned reports whether this interval paid a DVFS transition
	// overhead.
	Transitioned bool
}

// Result is one interval's chip-wide observation.
//
// Islands aliases a per-chip scratch buffer that Step overwrites on every
// interval (the steady-state loop allocates nothing); a caller that retains
// a Result across steps must Clone it first.
type Result struct {
	Interval      int
	Islands       []IslandResult
	ChipPowerW    float64
	ChipPowerFrac float64
	TotalBIPS     float64
	MaxTempC      float64
}

// Clone returns a deep copy whose Islands slice is independent of the
// chip's scratch buffer, safe to retain across Steps.
func (r Result) Clone() Result {
	r.Islands = append([]IslandResult(nil), r.Islands...)
	return r
}

// coreModel is the per-core surface the engine drives, satisfied by both
// the live uarch.Core and the trace-replaying uarch.ReplayCore.
type coreModel interface {
	RunInterval(freqMHz, intervalSec, overheadFrac float64) uarch.IntervalStats
	Profile() workload.Profile
	SetExtraMemLatency(func() float64)
}

// recordFinisher is the capability record-driven chips step cores through:
// evaluating an externally supplied TraceRecord at the core's operating
// point. uarch.ComputeCore (and uarch.Core) implement it.
type recordFinisher interface {
	FinishInterval(rec uarch.TraceRecord, freqMHz, intervalSec, overheadFrac float64) uarch.IntervalStats
}

// RecordSource supplies per-core TraceRecords, one batch per interval, to
// chips built with NewWithRecords. The returned slice is indexed by global
// core ID and must stay valid until the next Records call.
//
// The contract is lockstep: consumers ask for interval k only when the
// source's cursor is at k (which advances it) or at k+1 (which returns the
// cached batch, so several chips sharing one source can each step interval
// k). Implementations panic on out-of-order access — it means chips
// sharing a sampler have diverged, which would silently corrupt every
// chip's workload stream.
type RecordSource interface {
	Records(k int) []uarch.TraceRecord
}

type islandState struct {
	isl       *island.Island
	cores     []coreModel
	maxPowerW float64
	// model is the island's own power model: on a homogeneous chip every
	// island aliases the chip model (pointer-identical, so the legacy
	// numerics are untouched); on a heterogeneous or tech-scaled chip each
	// class carries its own scaled table and reference parameters.
	model *power.Model
	class power.CoreClass
	// sharedL2 is the island's shared banked L2 when Config.SharedL2 is
	// set (nil otherwise); retained so a snapshot captures the shared
	// state exactly once per island instead of once per core.
	sharedL2 *cache.Banked
	// scratch for the parallel executor
	res       IslandResult
	memBlocks uint64
	powers    []float64 // per-core power of this interval (island-local)
	cpis      []float64 // per-core CPI of this interval (island-local)
}

// CMP is a simulated chip-multiprocessor instance.
type CMP struct {
	cfg      Config
	model    *power.Model
	islands  []*islandState
	memsys   *mem.System
	thermals *thermal.Model
	varmap   variation.Map

	mesh *noc.Mesh

	recorded [][]uarch.TraceRecord

	// recSrc, when non-nil, supplies every interval's per-core TraceRecords
	// in place of live sampling: the chip was built by NewWithRecords and
	// its cores are compute-only. recs is the current interval's batch.
	recSrc RecordSource
	recs   []uarch.TraceRecord

	// cacheStatsSrc, when non-nil, overrides CacheStats — record-driven
	// chips have no caches of their own and delegate to their sampler.
	cacheStatsSrc func() CacheStats
	// islandCacheStatsSrc is the per-island twin of cacheStatsSrc.
	islandCacheStatsSrc func(int) CacheStats

	nCores     int
	maxChipW   float64
	corePowers []float64 // global, indexed by core ID
	coreCPIs   []float64 // global, indexed by core ID
	// resIslands is the reused backing array of every Result.Islands the
	// chip returns — part of the zero-allocation steady-state contract.
	resIslands []IslandResult
	interval   int
	totalInstr float64

	stepHooks []func(Result)
}

// SetStepHook installs a callback invoked at the end of every Step with the
// interval's observation — the sim-layer attachment point for observers
// when the chip is driven directly rather than through a controller. Set
// replaces every previously installed hook; a nil hook detaches them all.
// Not safe to call concurrently with Step.
func (c *CMP) SetStepHook(fn func(Result)) {
	c.stepHooks = c.stepHooks[:0]
	if fn != nil {
		c.stepHooks = append(c.stepHooks, fn)
	}
}

// AddStepHook appends a hook without disturbing the ones already installed,
// so independent observers can subscribe to the same chip. The Result's
// Islands slice is live scratch; hooks must copy what they keep. A nil hook
// is ignored. Not safe to call concurrently with Step.
func (c *CMP) AddStepHook(fn func(Result)) {
	if fn != nil {
		c.stepHooks = append(c.stepHooks, fn)
	}
}

// New builds a CMP from cfg.
func New(cfg Config) (*CMP, error) {
	return newChip(cfg, nil)
}

// NewWithRecords builds a record-driven chip: every core is a thin
// uarch.ComputeCore holding no caches or generators, and each Step consumes
// one batch of per-core TraceRecords from src (normally a sim.Sampler built
// from the same Config). Everything frequency- or chip-dependent — DVFS
// state, power, leakage, thermal RC network, memory and NoC congestion
// feedback, process variation — remains per-chip, so a record-driven chip
// fed the records its own live twin would have sampled is bit-identical to
// that twin while costing a few KB and a few µs per interval instead of a
// few hundred KB and ~100µs per core.
//
// Incompatible with RecordTraces and Replay (there is nothing to record,
// and replay already has its own record stream).
func NewWithRecords(cfg Config, src RecordSource) (*CMP, error) {
	if src == nil {
		return nil, errors.New("sim: NewWithRecords needs a record source")
	}
	if cfg.RecordTraces {
		return nil, errors.New("sim: cannot record traces from a record-driven chip")
	}
	if cfg.Replay != nil {
		return nil, errors.New("sim: cannot replay into a record-driven chip")
	}
	return newChip(cfg, src)
}

func newChip(cfg Config, src RecordSource) (*CMP, error) {
	if err := cfg.Mix.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if cfg.IntervalSec <= 0 {
		return nil, errors.New("sim: non-positive interval")
	}
	if cfg.L2PrefetchDegree > 0 && cfg.SharedL2 {
		return nil, errors.New("sim: L2 prefetching requires private L2 slices")
	}
	model, islandModels, classes, err := resolveIslandModels(cfg)
	if err != nil {
		return nil, err
	}
	memsys, err := mem.New(cfg.Mem)
	if err != nil {
		return nil, err
	}

	profiles, err := cfg.Mix.Profiles()
	if err != nil {
		return nil, err
	}
	nCores := cfg.Mix.Cores()

	fp, err := floorplanFor(nCores)
	if err != nil {
		return nil, err
	}
	th, err := thermal.New(fp, cfg.Thermal)
	if err != nil {
		return nil, err
	}

	c := &CMP{
		cfg:        cfg,
		model:      model,
		memsys:     memsys,
		thermals:   th,
		varmap:     cfg.Variation,
		nCores:     nCores,
		corePowers: make([]float64, nCores),
		coreCPIs:   make([]float64, nCores),
	}
	if cfg.NoC != nil {
		mesh, err := noc.New(*cfg.NoC)
		if err != nil {
			return nil, err
		}
		if mesh.Tiles() < nCores {
			return nil, fmt.Errorf("sim: NoC has %d tiles for %d cores", mesh.Tiles(), nCores)
		}
		c.mesh = mesh
	}
	if cfg.RecordTraces {
		if cfg.Replay != nil {
			return nil, errors.New("sim: cannot record while replaying")
		}
		c.recorded = make([][]uarch.TraceRecord, nCores)
	}

	c.recSrc = src
	coreID := 0
	for islandID, islandProfiles := range profiles {
		st := &islandState{model: islandModels[islandID], class: classes[islandID]}
		coreCfg, err := islandCoreConfig(cfg, st.class, st.model.Table)
		if err != nil {
			return nil, err
		}
		initLevel := cfg.InitialLevel
		if initLevel < 0 {
			initLevel = st.model.Table.Levels() - 1
		}
		if initLevel != st.model.Table.ClampLevel(initLevel) {
			return nil, fmt.Errorf("sim: initial level %d out of range for island %d (%d levels)",
				initLevel, islandID, st.model.Table.Levels())
		}
		var coreIDs []int
		if src == nil {
			shared, err := islandL2(cfg, len(islandProfiles))
			if err != nil {
				return nil, err
			}
			st.sharedL2 = shared
		}
		for _, prof := range islandProfiles {
			var core coreModel
			switch {
			case src != nil:
				// Thin member chip: no caches, no generators; records
				// arrive from the shared sampler. The L2 latency records
				// are charged at is the Table I per-core figure in every
				// L2 configuration (banked shares it; the prefetcher
				// wraps a slice with it).
				cc, err := uarch.NewComputeCore(coreID, coreCfg, prof,
					cache.TableIL2PerCore().LatencyCycles, memsys)
				if err != nil {
					return nil, fmt.Errorf("sim: core %d (%s): %w", coreID, prof.Name, err)
				}
				core = cc
			case cfg.Replay != nil:
				rc, err := replayCoreFor(cfg, coreCfg, coreID, prof, memsys)
				if err != nil {
					return nil, err
				}
				core = rc
			default:
				h, err := coreHierarchy(cfg, st.sharedL2)
				if err != nil {
					return nil, err
				}
				live, err := uarch.NewCore(coreID, stats.DeriveSeed(cfg.Seed, uint64(coreID)), coreCfg, prof, h, memsys)
				if err != nil {
					return nil, fmt.Errorf("sim: core %d (%s): %w", coreID, prof.Name, err)
				}
				if cfg.RecordTraces {
					id := coreID
					live.SetRecorder(func(rec uarch.TraceRecord) {
						c.recorded[id] = append(c.recorded[id], rec)
					})
				}
				core = live
			}
			if c.mesh != nil {
				tile := coreID
				core.SetExtraMemLatency(func() float64 { return c.mesh.RoundTripLatencyNs(tile) })
			}
			st.cores = append(st.cores, core)
			coreIDs = append(coreIDs, coreID)
			coreID++
		}
		isl, err := island.New(islandID, coreIDs, st.model.Table, initLevel)
		if err != nil {
			return nil, err
		}
		st.isl = isl
		st.maxPowerW = float64(len(st.cores)) * st.model.CoreMaxPower()
		st.powers = make([]float64, len(st.cores))
		st.cpis = make([]float64, len(st.cores))
		c.islands = append(c.islands, st)
	}
	// On a homogeneous chip the chip maximum is computed exactly as it
	// always was (n × per-core maximum); summing per-island maxima instead
	// would perturb the last ulps of every percent-power figure.
	if c.Heterogeneous() {
		for _, st := range c.islands {
			c.maxChipW += st.maxPowerW
		}
	} else {
		c.maxChipW = model.MaxChipPower(nCores)
	}
	c.resIslands = make([]IslandResult, len(c.islands))
	return c, nil
}

// resolveIslandModels derives the chip-level model (the base model scaled
// to cfg.Tech) and the per-island models and classes. On a homogeneous
// chip every island aliases the chip model pointer; heterogeneous chips
// get one specialized model per class (shared by islands of that class).
func resolveIslandModels(cfg Config) (*power.Model, []*power.Model, []power.CoreClass, error) {
	base := cfg.Power
	if base == nil {
		base = power.DefaultModel()
	}
	if err := cfg.Tech.Validate(); err != nil {
		return nil, nil, nil, err
	}
	chipModel, err := power.ScaleModel(base, cfg.Tech)
	if err != nil {
		return nil, nil, nil, err
	}
	nIslands := len(cfg.Mix.Islands)
	classes := make([]power.CoreClass, nIslands)
	if cfg.IslandClasses != nil {
		if len(cfg.IslandClasses) != nIslands {
			return nil, nil, nil, fmt.Errorf("sim: %d island classes for %d islands", len(cfg.IslandClasses), nIslands)
		}
		copy(classes, cfg.IslandClasses)
	}
	models := make([]*power.Model, nIslands)
	byClass := map[power.CoreClass]*power.Model{}
	for i, class := range classes {
		m, ok := byClass[class]
		if !ok {
			m, err = power.ModelForClass(chipModel, class)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("sim: island %d: %w", i, err)
			}
			byClass[class] = m
		}
		models[i] = m
	}
	return chipModel, models, classes, nil
}

// islandCoreConfig specializes the chip-wide core configuration to one
// island: a non-OoO class replaces the pipeline preset, and once the tech
// or class axis is in play the island table's top frequency becomes the
// utilization denominator. The legacy path (no tech, OoO class) returns
// cfg.Core untouched so existing chips keep their exact record streams.
func islandCoreConfig(cfg Config, class power.CoreClass, table *power.DVFSTable) (uarch.Config, error) {
	if !cfg.Tech.Enabled() && class == power.ClassOoO {
		return cfg.Core, nil
	}
	cc := cfg.Core
	if class != power.ClassOoO {
		params, err := uarch.ParamsForClass(class)
		if err != nil {
			return uarch.Config{}, err
		}
		cc.Params = params
	}
	cc.NominalMaxMHz = table.Max().FreqMHz
	return cc, nil
}

// islandL2 builds an island's shared banked L2 when cfg.SharedL2 is set:
// one bank per core (rounded up to a power of two), each bank holding the
// Table I per-core share of 512 KB. Returns nil for private slices.
func islandL2(cfg Config, islandCores int) (*cache.Banked, error) {
	if !cfg.SharedL2 {
		return nil, nil
	}
	banks := 1
	for banks < islandCores {
		banks *= 2
	}
	return cache.NewBanked(cache.TableIL2PerCore(), banks)
}

// coreHierarchy builds one core's cache hierarchy, wiring the island's
// shared L2 when present and otherwise a private slice with the configured
// prefetcher. Shared by the live constructor and the farm sampler so both
// produce bit-identical cache state.
func coreHierarchy(cfg Config, shared *cache.Banked) (*cache.Hierarchy, error) {
	l1i, err := cache.New(cache.TableIL1())
	if err != nil {
		return nil, err
	}
	l1d, err := cache.New(cache.TableIL1())
	if err != nil {
		return nil, err
	}
	var l2 cache.Level2
	if shared != nil {
		l2 = shared
	} else {
		priv, err := cache.New(cache.TableIL2PerCore())
		if err != nil {
			return nil, err
		}
		l2 = priv
		if cfg.L2PrefetchDegree > 0 {
			pf, err := cache.NewStreamPrefetcher(priv, cfg.L2PrefetchDegree, 16)
			if err != nil {
				return nil, err
			}
			l2 = pf
		}
	}
	return cache.NewHierarchy(l1i, l1d, l2)
}

// floorplanFor returns a near-square grid containing exactly n cores.
func floorplanFor(n int) (thermal.Floorplan, error) {
	rows := 1
	for rows*rows < n {
		rows++
	}
	for n%rows != 0 {
		rows--
	}
	return thermal.Grid(rows, n/rows)
}

// NumIslands returns the island count.
func (c *CMP) NumIslands() int { return len(c.islands) }

// NumCores returns the chip's core count.
func (c *CMP) NumCores() int { return c.nCores }

// Table is the legacy chip-global accessor: it returns the DVFS table
// shared by all islands, and panics on a heterogeneous chip, where no such
// table exists — a caller reaching it there is a bug that would silently
// mis-size every per-island computation. Use IslandTable.
func (c *CMP) Table() *power.DVFSTable {
	if c.Heterogeneous() {
		panic("sim: heterogeneous chip has no chip-global DVFS table; use IslandTable")
	}
	return c.model.Table
}

// Model is the legacy chip-global accessor for the power model, with the
// same contract as Table: it panics on a heterogeneous chip (use
// IslandModel).
func (c *CMP) Model() *power.Model {
	if c.Heterogeneous() {
		panic("sim: heterogeneous chip has no chip-global power model; use IslandModel")
	}
	return c.model
}

// Heterogeneous reports whether any island carries a power model of its
// own rather than aliasing the chip model.
func (c *CMP) Heterogeneous() bool {
	for _, st := range c.islands {
		if st.model != c.model {
			return true
		}
	}
	return false
}

// IslandTable returns island i's own DVFS table. On a homogeneous chip
// this is the chip-global table for every island.
func (c *CMP) IslandTable(i int) *power.DVFSTable { return c.islands[i].model.Table }

// IslandModel returns island i's own power model.
func (c *CMP) IslandModel(i int) *power.Model { return c.islands[i].model }

// IslandClass returns island i's core class.
func (c *CMP) IslandClass(i int) power.CoreClass { return c.islands[i].class }

// Tech returns the chip's technology configuration (zero when unscaled).
func (c *CMP) Tech() power.TechConfig { return c.cfg.Tech }

// IntervalSec returns the simulation interval length.
func (c *CMP) IntervalSec() float64 { return c.cfg.IntervalSec }

// MaxChipPowerW returns the maximum chip power — the denominator of every
// percent-power quantity.
func (c *CMP) MaxChipPowerW() float64 { return c.maxChipW }

// IslandMaxPowerW returns the maximum power of island i.
func (c *CMP) IslandMaxPowerW(i int) float64 { return c.islands[i].maxPowerW }

// IslandCores returns the number of cores on island i.
func (c *CMP) IslandCores(i int) int { return len(c.islands[i].cores) }

// IslandBenchmarks returns the benchmark names running on island i.
func (c *CMP) IslandBenchmarks(i int) []string {
	out := make([]string, len(c.islands[i].cores))
	for j, core := range c.islands[i].cores {
		out[j] = core.Profile().Name
	}
	return out
}

// IslandLeakMult returns the mean process-variation leakage multiplier of
// island i, the observable the variation-aware policy uses.
func (c *CMP) IslandLeakMult(i int) float64 {
	st := c.islands[i]
	s := 0.0
	for _, id := range st.isl.CoreIDs() {
		s += c.varmap.CoreMult(id)
	}
	return s / float64(len(st.cores))
}

// Level returns island i's current DVFS level.
func (c *CMP) Level(i int) int { return c.islands[i].isl.Level() }

// SetLevel requests a DVFS change on island i and reports whether the
// operating point changed.
func (c *CMP) SetLevel(i, lvl int) bool { return c.islands[i].isl.SetLevel(lvl) }

// Transitions returns the cumulative DVFS transition count of island i.
func (c *CMP) Transitions(i int) int { return c.islands[i].isl.Transitions() }

// Thermals exposes the thermal model (read-only use by policies).
func (c *CMP) Thermals() *thermal.Model { return c.thermals }

// TotalInstructions returns cumulative instructions across all cores.
func (c *CMP) TotalInstructions() float64 { return c.totalInstr }

// SetCacheStatsSource overrides CacheStats with an external supplier —
// record-driven chips simulate no caches and delegate to the sampler that
// feeds them. A nil source restores the chip's own counters.
func (c *CMP) SetCacheStatsSource(f func() CacheStats) { c.cacheStatsSrc = f }

// SetIslandCacheStatsSource overrides IslandCacheStats with an external
// per-island supplier, the island-resolution twin of SetCacheStatsSource.
// A nil source restores the chip's own counters.
func (c *CMP) SetIslandCacheStatsSource(f func(int) CacheStats) { c.islandCacheStatsSrc = f }

// CorePowers copies the previous interval's per-core oracle power (W) into
// dst, which must have NumCores capacity; it returns dst[:NumCores].
// Allocation-free when dst is large enough — the farm layer's column
// extraction path.
func (c *CMP) CorePowers(dst []float64) []float64 {
	return append(dst[:0], c.corePowers...)
}

// CoreCPIs copies the previous interval's per-core effective CPI into dst,
// mirroring CorePowers.
func (c *CMP) CoreCPIs(dst []float64) []float64 {
	return append(dst[:0], c.coreCPIs...)
}

// CoreTemps copies the current per-core temperatures (°C) into dst,
// mirroring CorePowers.
func (c *CMP) CoreTemps(dst []float64) []float64 {
	dst = dst[:0]
	for id := 0; id < c.nCores; id++ {
		dst = append(dst, c.thermals.Temp(id))
	}
	return dst
}

// CoreFreqsMHz copies the current per-core operating frequency into dst,
// mirroring CorePowers (cores of an island share its operating point).
func (c *CMP) CoreFreqsMHz(dst []float64) []float64 {
	dst = dst[:0]
	for _, st := range c.islands {
		f := st.isl.OperatingPoint().FreqMHz
		for range st.cores {
			dst = append(dst, f)
		}
	}
	return dst
}

// CacheStats aggregates cumulative cache counters across the chip, one
// Stats per hierarchy level.
type CacheStats struct {
	L1I cache.Stats
	L1D cache.Stats
	L2  cache.Stats
}

// cacheStatser is the optional per-core capability CacheStats aggregates;
// live uarch.Cores implement it, trace-replaying cores (which simulate no
// caches) do not.
type cacheStatser interface {
	CacheStats() (l1i, l1d, l2 cache.Stats)
}

// CacheStats returns the chip's cumulative cache counters, summed over
// cores. With a shared per-island L2, the shared cache's counters are
// counted once per island, not once per core. Replay cores contribute
// nothing (they re-execute recorded cache behaviour without caches).
// Allocation-free; safe to call between Steps.
func (c *CMP) CacheStats() CacheStats {
	if c.cacheStatsSrc != nil {
		return c.cacheStatsSrc()
	}
	var out CacheStats
	for _, st := range c.islands {
		for j, core := range st.cores {
			cs, ok := core.(cacheStatser)
			if !ok {
				continue
			}
			l1i, l1d, l2 := cs.CacheStats()
			addCacheStats(&out.L1I, l1i)
			addCacheStats(&out.L1D, l1d)
			if !c.cfg.SharedL2 || j == 0 {
				addCacheStats(&out.L2, l2)
			}
		}
	}
	return out
}

// IslandCacheStats returns island i's cumulative cache counters, the
// per-island resolution of CacheStats with identical semantics: summed over
// the island's cores, a shared L2 counted once. Record-driven chips
// delegate to the sampler via SetIslandCacheStatsSource. Allocation-free;
// safe to call between Steps.
func (c *CMP) IslandCacheStats(i int) CacheStats {
	if c.islandCacheStatsSrc != nil {
		return c.islandCacheStatsSrc(i)
	}
	var out CacheStats
	for j, core := range c.islands[i].cores {
		cs, ok := core.(cacheStatser)
		if !ok {
			continue
		}
		l1i, l1d, l2 := cs.CacheStats()
		addCacheStats(&out.L1I, l1i)
		addCacheStats(&out.L1D, l1d)
		if !c.cfg.SharedL2 || j == 0 {
			addCacheStats(&out.L2, l2)
		}
	}
	return out
}

func addCacheStats(dst *cache.Stats, s cache.Stats) {
	dst.Accesses += s.Accesses
	dst.Hits += s.Hits
	dst.Misses += s.Misses
	dst.Evictions += s.Evictions
}

// Step advances the chip by one interval and returns its observation. The
// returned Result's Islands slice is valid until the next Step (see
// Result.Clone).
func (c *CMP) Step() Result {
	if c.recSrc != nil {
		// Fetch the interval's records before the island loop so the
		// parallel executor only reads the shared batch.
		c.recs = c.recSrc.Records(c.interval)
		if len(c.recs) != c.nCores {
			panic(fmt.Sprintf("sim: record source supplied %d records for %d cores", len(c.recs), c.nCores))
		}
	}
	if c.cfg.Parallel && len(c.islands) > 1 {
		var wg sync.WaitGroup
		for _, st := range c.islands {
			wg.Add(1)
			go func(st *islandState) {
				defer wg.Done()
				c.stepIsland(st)
			}(st)
		}
		wg.Wait()
	} else {
		for _, st := range c.islands {
			c.stepIsland(st)
		}
	}

	// Reduce: chip aggregates and delayed cross-island couplings.
	res := Result{Interval: c.interval, Islands: c.resIslands}
	var blocks uint64
	for i, st := range c.islands {
		res.Islands[i] = st.res
		res.ChipPowerW += st.res.PowerW
		res.TotalBIPS += st.res.BIPS
		c.totalInstr += st.res.Instructions
		blocks += st.memBlocks
		for j, id := range st.isl.CoreIDs() {
			c.corePowers[id] = st.powers[j]
			c.coreCPIs[id] = st.cpis[j]
		}
	}
	res.ChipPowerFrac = res.ChipPowerW / c.maxChipW
	c.memsys.ObserveTraffic(blocks, c.cfg.IntervalSec)
	if c.mesh != nil {
		// One request + one response flit train per block transfer.
		c.mesh.ObserveTraffic(2*blocks, c.cfg.IntervalSec)
	}
	if err := c.thermals.Step(c.corePowers, c.cfg.IntervalSec); err != nil {
		// Construction guarantees matching lengths and a positive interval.
		panic("sim: thermal step failed: " + err.Error())
	}
	res.MaxTempC = c.thermals.MaxTemp()
	c.interval++
	for _, h := range c.stepHooks {
		h(res)
	}
	return res
}

// stepIsland runs one island for one interval, writing only island-local
// state (plus reads of previous-interval global state), so islands may run
// concurrently.
func (c *CMP) stepIsland(st *islandState) {
	overhead := st.isl.ConsumeOverhead()
	op := st.isl.OperatingPoint()
	r := IslandResult{
		Island:       st.isl.ID(),
		Level:        st.isl.Level(),
		FreqMHz:      op.FreqMHz,
		Transitioned: overhead > 0,
	}
	st.memBlocks = 0
	for j, core := range st.cores {
		coreID := st.isl.CoreIDs()[j]
		var cs uarch.IntervalStats
		if c.recs != nil {
			cs = core.(recordFinisher).FinishInterval(c.recs[coreID], op.FreqMHz, c.cfg.IntervalSec, overhead)
		} else {
			cs = core.RunInterval(op.FreqMHz, c.cfg.IntervalSec, overhead)
		}
		act := power.DeriveActivity(cs.Activity)
		pw := st.model.Dynamic.Power(op, act) +
			st.model.Leakage.Power(op.VoltageV, c.thermals.Temp(coreID), c.varmap.CoreMult(coreID))
		st.powers[j] = pw
		st.cpis[j] = cs.CPI
		r.PowerW += pw
		r.MeanUtil += cs.Utilization
		r.BIPS += cs.BIPS
		r.Instructions += cs.Instructions
		st.memBlocks += cs.MemBlocks
	}
	r.MeanUtil /= float64(len(st.cores))
	r.PowerFracIsland = r.PowerW / st.maxPowerW
	r.PowerFracChip = r.PowerW / c.maxChipW
	st.res = r
}

// replayCoreFor validates the replay assignment for one core and builds its
// ReplayCore.
func replayCoreFor(cfg Config, coreCfg uarch.Config, coreID int, prof workload.Profile, memsys *mem.System) (*uarch.ReplayCore, error) {
	bench, ok := cfg.Replay.Benchmarks[coreID]
	if !ok {
		return nil, fmt.Errorf("sim: replay set has no trace for core %d", coreID)
	}
	if bench != prof.Name {
		return nil, fmt.Errorf("sim: core %d trace was recorded from %s, mix assigns %s", coreID, bench, prof.Name)
	}
	return uarch.NewReplayCore(coreID, coreCfg, prof, cfg.Replay.Records[coreID],
		cache.TableIL2PerCore().LatencyCycles, memsys)
}

// Traces returns the recorded trace set (RecordTraces must have been set).
func (c *CMP) Traces() (uarch.TraceSet, error) {
	if c.recorded == nil {
		return uarch.TraceSet{}, errors.New("sim: tracing was not enabled")
	}
	set := uarch.TraceSet{
		Benchmarks: map[int]string{},
		Records:    map[int][]uarch.TraceRecord{},
	}
	for _, st := range c.islands {
		for j, core := range st.cores {
			id := st.isl.CoreIDs()[j]
			set.Benchmarks[id] = core.Profile().Name
			set.Records[id] = c.recorded[id]
		}
	}
	return set, nil
}
