package sim

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/workload"
)

// TestStepSteadyStateAllocs pins the zero-allocation contract of the
// sequential interval loop: after warmup, a Step must not allocate — the
// result reuses the chip's scratch Islands buffer and every island's
// goroutine-owned buffers are already sized.
func TestStepSteadyStateAllocs(t *testing.T) {
	cfg := DefaultConfig(workload.Mix1())
	cfg.Seed = 11
	c := newCMP(t, cfg)
	for k := 0; k < 5; k++ {
		c.Step()
	}
	if n := testing.AllocsPerRun(20, func() { c.Step() }); n != 0 {
		t.Errorf("steady-state Step allocates %v times per interval, want 0", n)
	}
}

// BenchmarkIntervalKernel measures the full per-interval cost of the
// sequential 8-core chip — the ns/interval figure of the bench trajectory.
func BenchmarkIntervalKernel(b *testing.B) {
	cfg := DefaultConfig(workload.Mix1())
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		c.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}
