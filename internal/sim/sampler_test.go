package sim

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/snapshot"
	"github.com/cpm-sim/cpm/internal/workload"
)

// TestSamplerMatchesLiveChipRecords is the sampler's core contract at the
// sim layer: interval for interval, the standalone sampler produces exactly
// the records a live chip built from the same config samples — including
// while the live chip's DVFS trajectory diverges (records are frequency-
// independent; the live chip here runs unmanaged at its initial level,
// which is enough to pin the identity since check's farm tests cover
// managed trajectories end to end).
func TestSamplerMatchesLiveChipRecords(t *testing.T) {
	const intervals = 40
	cfg := DefaultConfig(workload.Mix1())
	cfg.Seed = 9
	cfg.RecordTraces = true
	live, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < intervals; k++ {
		live.Step()
	}
	set, err := live.Traces()
	if err != nil {
		t.Fatal(err)
	}

	scfg := cfg
	scfg.RecordTraces = false
	s, err := NewSampler(scfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < intervals; k++ {
		recs := s.Records(k)
		for id := 0; id < s.NumCores(); id++ {
			if recs[id] != set.Records[id][k] {
				t.Fatalf("interval %d core %d: sampler record %+v, live chip sampled %+v",
					k, id, recs[id], set.Records[id][k])
			}
		}
	}
}

// TestSamplerLockstepContract pins Records' three-way behaviour: cursor
// advances, cursor-1 replays the cached batch, anything else panics.
func TestSamplerLockstepContract(t *testing.T) {
	s, err := NewSampler(DefaultConfig(workload.Mix1()))
	if err != nil {
		t.Fatal(err)
	}
	r0 := s.Records(0)
	if s.Cursor() != 1 {
		t.Fatalf("cursor = %d after first batch, want 1", s.Cursor())
	}
	if again := s.Records(0); &again[0] != &r0[0] {
		t.Error("replaying the current interval did not return the cached batch")
	}
	s.Records(1)
	for _, bad := range []int{0, 3, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Records(%d) at cursor 2 did not panic", bad)
				}
			}()
			s.Records(bad)
		}()
	}
	s.Advance(5)
	if s.Cursor() != 7 {
		t.Fatalf("cursor = %d after Advance(5), want 7", s.Cursor())
	}
}

// TestSamplerSnapshotRoundTrip restores a mid-stream sampler snapshot into
// a fresh sampler and demands the continuation streams be identical.
func TestSamplerSnapshotRoundTrip(t *testing.T) {
	cfg := DefaultConfig(workload.Mix1())
	cfg.Seed = 3
	a, err := NewSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.Advance(13)
	e := snapshot.NewEncoder()
	a.Snapshot(e)

	b, err := NewSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Restore(snapshot.NewDecoder(e.Bytes())); err != nil {
		t.Fatal(err)
	}
	if b.Cursor() != 13 {
		t.Fatalf("restored cursor = %d, want 13", b.Cursor())
	}
	for k := 13; k < 25; k++ {
		ra, rb := a.Records(k), b.Records(k)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("interval %d core %d: restored sampler diverged", k, i)
			}
		}
	}

	// Shape mismatches must be rejected, not silently misapplied.
	c, err := NewSampler(DefaultConfig(workload.Mix3(2)))
	if err != nil {
		t.Fatal(err)
	}
	e2 := snapshot.NewEncoder()
	a.Snapshot(e2)
	if err := c.Restore(snapshot.NewDecoder(e2.Bytes())); err == nil {
		t.Error("32-core sampler accepted an 8-core snapshot")
	}
}
