package sim

import (
	"bytes"
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/uarch"
	"github.com/cpm-sim/cpm/internal/workload"
)

// recordRun captures a trace set from a live run while collecting its
// per-interval chip power.
func recordRun(t *testing.T, intervals int, levelAt func(k int) int) (uarch.TraceSet, []float64) {
	t.Helper()
	cfg := DefaultConfig(workload.Mix1())
	cfg.RecordTraces = true
	c := newCMP(t, cfg)
	var powers []float64
	for k := 0; k < intervals; k++ {
		if levelAt != nil {
			for i := 0; i < c.NumIslands(); i++ {
				c.SetLevel(i, levelAt(k))
			}
		}
		powers = append(powers, c.Step().ChipPowerW)
	}
	set, err := c.Traces()
	if err != nil {
		t.Fatal(err)
	}
	return set, powers
}

// Replaying a trace under the same DVFS trajectory must reproduce the live
// run's observable behaviour exactly (power, throughput).
func TestReplayReproducesLiveRun(t *testing.T) {
	levels := func(k int) int { return (k / 7) % 8 }
	set, livePowers := recordRun(t, 60, levels)

	cfg := DefaultConfig(workload.Mix1())
	cfg.Replay = &set
	r := newCMP(t, cfg)
	for k := 0; k < 60; k++ {
		for i := 0; i < r.NumIslands(); i++ {
			r.SetLevel(i, levels(k))
		}
		got := r.Step().ChipPowerW
		if math.Abs(got-livePowers[k]) > 1e-9 {
			t.Fatalf("interval %d: replay power %v, live %v", k, got, livePowers[k])
		}
	}
}

// The point of frequency-independent records: the same trace replayed at a
// different operating point behaves like the workload would have — here,
// pinned low, it must consume less power than the recorded high-frequency
// run.
func TestReplayUnderDifferentTrajectory(t *testing.T) {
	set, livePowers := recordRun(t, 40, func(int) int { return 7 })
	cfg := DefaultConfig(workload.Mix1())
	cfg.Replay = &set
	r := newCMP(t, cfg)
	var replayLow float64
	for k := 0; k < 40; k++ {
		for i := 0; i < r.NumIslands(); i++ {
			r.SetLevel(i, 0)
		}
		replayLow += r.Step().ChipPowerW
	}
	var liveHigh float64
	for _, p := range livePowers {
		liveHigh += p
	}
	if replayLow >= liveHigh {
		t.Errorf("replay at the bottom level (%v) should consume less than the level-7 recording (%v)", replayLow, liveHigh)
	}
}

func TestReplayWrapsAround(t *testing.T) {
	set, _ := recordRun(t, 10, nil)
	cfg := DefaultConfig(workload.Mix1())
	cfg.Replay = &set
	// Decouple the memory-contention feedback (latency depends on previous
	// traffic, which never becomes exactly periodic); with an effectively
	// unlimited channel, replay behaviour is strictly periodic.
	cfg.Mem.BandwidthGBs = 1e9
	r := newCMP(t, cfg)
	// Run three times the trace length; throughput must repeat with period
	// 10 (same records, same levels, same memory-contention pattern).
	// Power is deliberately NOT compared: die temperature is integrative
	// state that keeps warming across periods, so leakage differs.
	var first, third []float64
	for k := 0; k < 30; k++ {
		p := r.Step().TotalBIPS
		if k < 10 {
			first = append(first, p)
		}
		if k >= 20 {
			third = append(third, p)
		}
	}
	for i := 0; i < 10; i++ {
		// Tolerance: the residual ~1e-10 channel utilization still perturbs
		// latency at the tenth decimal.
		if math.Abs(first[i]-third[i]) > 1e-6 {
			t.Fatalf("interval %d: wrap-around diverged: %v vs %v", i, first[i], third[i])
		}
	}
}

func TestReplayValidation(t *testing.T) {
	set, _ := recordRun(t, 5, nil)
	// Mismatched mix: Mix-2 assigns different benchmarks to the cores.
	cfg := DefaultConfig(workload.Mix2())
	cfg.Replay = &set
	if _, err := New(cfg); err == nil {
		t.Error("replaying a Mix-1 trace on Mix-2 should be rejected")
	}
	// Missing core.
	delete(set.Records, 3)
	delete(set.Benchmarks, 3)
	cfg = DefaultConfig(workload.Mix1())
	cfg.Replay = &set
	if _, err := New(cfg); err == nil {
		t.Error("incomplete trace set should be rejected")
	}
	// Record+replay together.
	set2, _ := recordRun(t, 5, nil)
	cfg = DefaultConfig(workload.Mix1())
	cfg.Replay = &set2
	cfg.RecordTraces = true
	if _, err := New(cfg); err == nil {
		t.Error("recording while replaying should be rejected")
	}
}

func TestTracesRequiresRecording(t *testing.T) {
	c := newCMP(t, DefaultConfig(workload.Mix1()))
	if _, err := c.Traces(); err == nil {
		t.Error("Traces without RecordTraces should error")
	}
}

func TestTraceSetSaveLoadRoundTrip(t *testing.T) {
	set, _ := recordRun(t, 8, nil)
	var buf bytes.Buffer
	if err := uarch.SaveTraces(&buf, set); err != nil {
		t.Fatal(err)
	}
	got, err := uarch.LoadTraces(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(set.Records) {
		t.Fatalf("round trip lost cores: %d vs %d", len(got.Records), len(set.Records))
	}
	for id, recs := range set.Records {
		if len(got.Records[id]) != len(recs) {
			t.Fatalf("core %d trace length changed", id)
		}
		if got.Records[id][3] != recs[3] {
			t.Fatalf("core %d record mutated in transit", id)
		}
		if got.Benchmarks[id] != set.Benchmarks[id] {
			t.Fatalf("core %d benchmark name lost", id)
		}
	}
	// Validation catches corrupt sets.
	bad := uarch.TraceSet{
		Benchmarks: map[int]string{0: "bschls"},
		Records:    map[int][]uarch.TraceRecord{0: {}},
	}
	var b2 bytes.Buffer
	if err := uarch.SaveTraces(&b2, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := uarch.LoadTraces(&b2); err == nil {
		t.Error("empty per-core trace should be rejected on load")
	}
	if err := uarch.SaveTraces(&b2, uarch.TraceSet{}); err == nil {
		t.Error("empty set should be rejected on save")
	}
}

// Replay must be dramatically cheaper than live simulation (it skips the
// cache and stream work); this guards the feature's raison d'être without
// being timing-flaky — we compare work, not wall-clock.
func TestReplayCoreIsolated(t *testing.T) {
	set, _ := recordRun(t, 6, nil)
	cfg := DefaultConfig(workload.Mix1())
	cfg.Replay = &set
	r := newCMP(t, cfg)
	sum := 0.0
	for k := 0; k < 12; k++ {
		sum += r.Step().TotalBIPS
	}
	if sum <= 0 {
		t.Fatal("replay produced no throughput")
	}
}
