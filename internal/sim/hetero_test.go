package sim

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/snapshot"
	"github.com/cpm-sim/cpm/internal/workload"
)

// tinyMix is a 2-island × 1-core chip: the smallest structure that can be
// heterogeneous, keeping snapshot fuzz corpora small.
func tinyMix() workload.Mix {
	return workload.Mix{Name: "tiny", Islands: [][]string{{"bschls"}, {"fsim"}}}
}

func biglittleClasses() []power.CoreClass {
	return []power.CoreClass{power.ClassOoO, power.ClassLittleIO}
}

// TestHeterogeneousChip pins the per-island contract of a big.LITTLE chip:
// each island carries its own table and model, the legacy chip-global
// accessors panic, and the chip maximum is the sum of the island maxima.
func TestHeterogeneousChip(t *testing.T) {
	cfg := DefaultConfig(tinyMix())
	cfg.IslandClasses = biglittleClasses()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Heterogeneous() {
		t.Fatal("big.LITTLE chip does not report Heterogeneous")
	}
	if c.IslandClass(0) != power.ClassOoO || c.IslandClass(1) != power.ClassLittleIO {
		t.Fatalf("island classes %v/%v, want ooo/little", c.IslandClass(0), c.IslandClass(1))
	}
	big, little := c.IslandTable(0), c.IslandTable(1)
	if big == little {
		t.Fatal("big and little islands share one DVFS table")
	}
	if little.Max().FreqMHz <= big.Max().FreqMHz {
		t.Errorf("little top frequency %.1f not above big %.1f (shorter pipeline clocks higher)",
			little.Max().FreqMHz, big.Max().FreqMHz)
	}
	if c.IslandMaxPowerW(1) >= c.IslandMaxPowerW(0) {
		t.Errorf("little island max power %.2f W not below big %.2f W",
			c.IslandMaxPowerW(1), c.IslandMaxPowerW(0))
	}
	if got, want := c.MaxChipPowerW(), c.IslandMaxPowerW(0)+c.IslandMaxPowerW(1); got != want {
		t.Errorf("chip max %.4f W, want sum of island maxima %.4f W", got, want)
	}
	for _, fn := range []func(){func() { c.Table() }, func() { c.Model() }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("legacy chip-global accessor did not panic on a heterogeneous chip")
				}
			}()
			fn()
		}()
	}
	r := c.Step()
	if r.ChipPowerW <= 0 || r.TotalBIPS <= 0 {
		t.Fatalf("hetero chip step produced power %.3f W, BIPS %.3f", r.ChipPowerW, r.TotalBIPS)
	}
	if !strings.Contains(c.Fingerprint(), "/classes=ooo,little") {
		t.Errorf("fingerprint %q lacks class identity", c.Fingerprint())
	}
}

// TestTechScaledChip pins the homogeneous tech path: a 16 nm ITRS chip is
// still chip-global (Table() works) but runs the scaled 7-level table, and
// its fingerprint names the node.
func TestTechScaledChip(t *testing.T) {
	cfg := DefaultConfig(tinyMix())
	cfg.Tech = power.TechConfig{Node: power.Node16, Variant: power.ITRS}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.Heterogeneous() {
		t.Fatal("homogeneous tech-scaled chip reports Heterogeneous")
	}
	if got := c.Table().Levels(); got != 7 {
		t.Fatalf("16nm-itrs table has %d levels, want 7 (vth floor eats level 0)", got)
	}
	if c.Table() != c.IslandTable(0) || c.Table() != c.IslandTable(1) {
		t.Fatal("islands do not alias the chip-global scaled table")
	}
	if !strings.Contains(c.Fingerprint(), "/tech=16nm-itrs") {
		t.Errorf("fingerprint %q lacks tech identity", c.Fingerprint())
	}
	base, err := New(DefaultConfig(tinyMix()))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(base.Fingerprint(), "tech=") || strings.Contains(base.Fingerprint(), "classes=") {
		t.Errorf("legacy fingerprint %q grew tech/class fields", base.Fingerprint())
	}
	if c.MaxChipPowerW() >= base.MaxChipPowerW() {
		t.Errorf("16nm chip max %.2f W not below 45nm-class %.2f W", c.MaxChipPowerW(), base.MaxChipPowerW())
	}
}

// TestIslandClassesLengthValidated rejects a class list that does not
// cover every island.
func TestIslandClassesLengthValidated(t *testing.T) {
	cfg := DefaultConfig(tinyMix())
	cfg.IslandClasses = []power.CoreClass{power.ClassLittleIO}
	if _, err := New(cfg); err == nil {
		t.Fatal("one class for two islands accepted")
	}
	cfg = DefaultConfig(tinyMix())
	cfg.Tech = power.TechConfig{Node: 7}
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown tech node accepted")
	}
}

// snapshotChip encodes a chip's dynamic state (no file header; the section
// bytes the v3 identity block lives in).
func snapshotChip(t testing.TB, c *CMP) []byte {
	t.Helper()
	e := snapshot.NewEncoder()
	if err := c.Snapshot(e); err != nil {
		t.Fatal(err)
	}
	return append([]byte(nil), e.Bytes()...)
}

// TestSnapshotRejectsIslandIdentityMismatch pins the v3 rule: a snapshot
// restores only into a chip with the same tech node and per-island
// class/table identity; any mismatch is a shape error, not a silent
// reinterpretation of DVFS state against the wrong table.
func TestSnapshotRejectsIslandIdentityMismatch(t *testing.T) {
	hetero := DefaultConfig(tinyMix())
	hetero.IslandClasses = biglittleClasses()
	src, err := New(hetero)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		src.Step()
	}
	raw := snapshotChip(t, src)

	for name, mut := range map[string]func(*Config){
		"homogeneous target":  func(c *Config) { c.IslandClasses = nil },
		"classes swapped":     func(c *Config) { c.IslandClasses = []power.CoreClass{power.ClassLittleIO, power.ClassOoO} },
		"tech-scaled target":  func(c *Config) { c.Tech = power.TechConfig{Node: power.Node16, Variant: power.ITRS} },
		"conservative target": func(c *Config) { c.Tech = power.TechConfig{Node: power.Node8, Variant: power.Conservative} },
	} {
		cfg := DefaultConfig(tinyMix())
		cfg.IslandClasses = biglittleClasses()
		mut(&cfg)
		dst, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		err = dst.Restore(snapshot.NewDecoder(raw))
		if err == nil {
			t.Errorf("%s: mismatched snapshot restored without error", name)
		} else if !errors.Is(err, snapshot.ErrShape) {
			t.Errorf("%s: want shape error, got %v", name, err)
		}
	}

	// The matching target restores and re-encodes identically.
	cfg := DefaultConfig(tinyMix())
	cfg.IslandClasses = biglittleClasses()
	dst, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(snapshot.NewDecoder(raw)); err != nil {
		t.Fatalf("matching restore: %v", err)
	}
	if re := snapshotChip(t, dst); !bytes.Equal(re, raw) {
		t.Fatal("matching restore is not re-encode-identical")
	}
}

// FuzzChipSnapshotV3Restore is the reject-or-identical robustness target
// for the chip section and its v3 per-island identity block: whatever
// bytes arrive, Restore must either reject them with an error or produce a
// state whose re-encoding is byte-identical to the input.
func FuzzChipSnapshotV3Restore(f *testing.F) {
	cfg := DefaultConfig(tinyMix())
	cfg.Tech = power.TechConfig{Node: power.Node16, Variant: power.ITRS}
	cfg.IslandClasses = biglittleClasses()
	seed, err := New(cfg)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		seed.Step()
	}
	valid := snapshotChip(f, seed)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)/3])
	for _, off := range []int{8, 24, 40, 64, len(valid) / 2} {
		if off < len(valid) {
			mut := bytes.Clone(valid)
			mut[off] ^= 0x01
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dst, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Restore(snapshot.NewDecoder(data)); err != nil {
			return // rejected: the safe outcome for arbitrary bytes
		}
		e := snapshot.NewEncoder()
		if err := dst.Snapshot(e); err != nil {
			t.Fatalf("accepted snapshot failed to re-encode: %v", err)
		}
		if !bytes.Equal(e.Bytes(), data[:e.Len()]) {
			t.Fatal("accepted chip snapshot is not re-encode-identical")
		}
	})
}
