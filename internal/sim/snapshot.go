package sim

import (
	"errors"
	"fmt"

	"github.com/cpm-sim/cpm/internal/snapshot"
	"github.com/cpm-sim/cpm/internal/uarch"
)

// Core kind bytes written per core so a restore verifies live vs replay
// wiring matches the snapshot.
const (
	coreKindLive    uint8 = 1
	coreKindReplay  uint8 = 2
	coreKindCompute uint8 = 3
)

// Fingerprint summarizes the chip's structural identity — the part of the
// configuration a snapshot must match to be restorable. It is embedded in
// snapshot file headers by the CLIs.
func (c *CMP) Fingerprint() string {
	return fmt.Sprintf("mix=%s/seed=%d/cores=%d/islands=%d/sharedl2=%v/pref=%d/noc=%v",
		c.cfg.Mix.Name, c.cfg.Seed, c.nCores, len(c.islands),
		c.cfg.SharedL2, c.cfg.L2PrefetchDegree, c.mesh != nil)
}

// Snapshot appends the chip's complete dynamic state: interval counter,
// cumulative instructions, memory and NoC congestion, thermal node
// temperatures, the process-variation map, and per island its DVFS state,
// shared L2 (once, when shared) and per-core generator/cache state.
//
// Chips recording traces cannot be snapshotted: the accumulated trace
// records live outside the restore path and would silently be lost.
func (c *CMP) Snapshot(e *snapshot.Encoder) error {
	if c.recorded != nil {
		return errors.New("sim: cannot snapshot a chip that is recording traces")
	}
	e.Tag(snapshot.TagChip)
	// Structural echo, validated on restore before any state is touched.
	e.Int(c.nCores)
	e.Int(len(c.islands))
	for _, st := range c.islands {
		e.Int(len(st.cores))
	}
	e.Int(c.interval)
	e.F64(c.totalInstr)
	c.memsys.Snapshot(e)
	e.Bool(c.mesh != nil)
	if c.mesh != nil {
		c.mesh.Snapshot(e)
	}
	c.thermals.Snapshot(e)
	c.varmap.Snapshot(e)
	for _, st := range c.islands {
		st.isl.Snapshot(e)
		e.Bool(st.sharedL2 != nil)
		if st.sharedL2 != nil {
			st.sharedL2.Snapshot(e)
		}
		for _, cm := range st.cores {
			switch core := cm.(type) {
			case *uarch.Core:
				e.U8(coreKindLive)
				core.Snapshot(e, st.sharedL2 == nil)
			case *uarch.ReplayCore:
				e.U8(coreKindReplay)
				core.Snapshot(e)
			case *uarch.ComputeCore:
				// The workload half lives in the chip's sampler, captured
				// separately by whoever owns it (the farm layer).
				e.U8(coreKindCompute)
				core.Snapshot(e)
			default:
				return errors.New("sim: unsnapshotable core model")
			}
		}
	}
	return nil
}

// Restore reads state written by Snapshot into a freshly constructed,
// structurally identical chip. On any error the chip may be partially
// written and must be discarded.
func (c *CMP) Restore(d *snapshot.Decoder) error {
	if c.recorded != nil {
		return errors.New("sim: cannot restore into a chip that is recording traces")
	}
	d.Tag(snapshot.TagChip)
	nCores := d.Int()
	nIslands := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nCores != c.nCores || nIslands != len(c.islands) {
		return snapshot.ShapeErrorf("snapshot chip is %d cores / %d islands, target is %d / %d",
			nCores, nIslands, c.nCores, len(c.islands))
	}
	for i, st := range c.islands {
		if n := d.Int(); d.Err() == nil && n != len(st.cores) {
			return snapshot.ShapeErrorf("snapshot island %d has %d cores, target has %d", i, n, len(st.cores))
		}
	}
	c.interval = d.Int()
	c.totalInstr = d.F64()
	if err := d.Err(); err != nil {
		return err
	}
	if err := c.memsys.Restore(d); err != nil {
		return err
	}
	hadMesh := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hadMesh != (c.mesh != nil) {
		return snapshot.ShapeErrorf("snapshot NoC presence %v, target %v", hadMesh, c.mesh != nil)
	}
	if c.mesh != nil {
		if err := c.mesh.Restore(d); err != nil {
			return err
		}
	}
	if err := c.thermals.Restore(d); err != nil {
		return err
	}
	if err := c.varmap.Restore(d); err != nil {
		return err
	}
	for i, st := range c.islands {
		if err := st.isl.Restore(d); err != nil {
			return err
		}
		hadShared := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		if hadShared != (st.sharedL2 != nil) {
			return snapshot.ShapeErrorf("island %d shared-L2 presence %v, target %v", i, hadShared, st.sharedL2 != nil)
		}
		if st.sharedL2 != nil {
			if err := st.sharedL2.Restore(d); err != nil {
				return err
			}
		}
		for j, cm := range st.cores {
			kind := d.U8()
			if err := d.Err(); err != nil {
				return err
			}
			switch core := cm.(type) {
			case *uarch.Core:
				if kind != coreKindLive {
					return snapshot.ShapeErrorf("island %d core %d kind %d, target is a live core", i, j, kind)
				}
				if err := core.Restore(d, st.sharedL2 == nil); err != nil {
					return err
				}
			case *uarch.ReplayCore:
				if kind != coreKindReplay {
					return snapshot.ShapeErrorf("island %d core %d kind %d, target is a replay core", i, j, kind)
				}
				if err := core.Restore(d); err != nil {
					return err
				}
			case *uarch.ComputeCore:
				if kind != coreKindCompute {
					return snapshot.ShapeErrorf("island %d core %d kind %d, target is a compute core", i, j, kind)
				}
				if err := core.Restore(d); err != nil {
					return err
				}
			default:
				return errors.New("sim: unsnapshotable core model")
			}
		}
	}
	return d.Err()
}
