package sim

import (
	"errors"
	"fmt"
	"strings"

	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/snapshot"
	"github.com/cpm-sim/cpm/internal/uarch"
)

// Core kind bytes written per core so a restore verifies live vs replay
// wiring matches the snapshot.
const (
	coreKindLive    uint8 = 1
	coreKindReplay  uint8 = 2
	coreKindCompute uint8 = 3
)

// Fingerprint summarizes the chip's structural identity — the part of the
// configuration a snapshot must match to be restorable. It is embedded in
// snapshot file headers by the CLIs.
func (c *CMP) Fingerprint() string {
	fp := fmt.Sprintf("mix=%s/seed=%d/cores=%d/islands=%d/sharedl2=%v/pref=%d/noc=%v",
		c.cfg.Mix.Name, c.cfg.Seed, c.nCores, len(c.islands),
		c.cfg.SharedL2, c.cfg.L2PrefetchDegree, c.mesh != nil)
	// The tech/heterogeneity axis joins the fingerprint only when in use,
	// so every pre-existing fingerprint (serve cache keys, sweep warmstart
	// headers) is preserved byte for byte.
	if c.cfg.Tech.Enabled() {
		fp += "/tech=" + c.cfg.Tech.String()
	}
	if c.Heterogeneous() {
		classes := make([]string, len(c.islands))
		for i, st := range c.islands {
			classes[i] = st.class.String()
		}
		fp += "/classes=" + strings.Join(classes, ",")
	}
	return fp
}

// Snapshot appends the chip's complete dynamic state: interval counter,
// cumulative instructions, memory and NoC congestion, thermal node
// temperatures, the process-variation map, and per island its DVFS state,
// shared L2 (once, when shared) and per-core generator/cache state.
//
// Chips recording traces cannot be snapshotted: the accumulated trace
// records live outside the restore path and would silently be lost.
func (c *CMP) Snapshot(e *snapshot.Encoder) error {
	if c.recorded != nil {
		return errors.New("sim: cannot snapshot a chip that is recording traces")
	}
	e.Tag(snapshot.TagChip)
	// Structural echo, validated on restore before any state is touched.
	e.Int(c.nCores)
	e.Int(len(c.islands))
	for _, st := range c.islands {
		e.Int(len(st.cores))
	}
	// v3: per-island identity — the technology configuration plus each
	// island's core class and DVFS-table shape. Restore rejects any
	// mismatch, so a snapshot cannot silently land on a chip whose islands
	// run different tables (per-island DVFS state would be reinterpreted
	// against the wrong operating points).
	e.Int(int(c.cfg.Tech.Node))
	e.U8(uint8(c.cfg.Tech.Variant))
	for _, st := range c.islands {
		e.U8(uint8(st.class))
		tbl := st.model.Table
		e.Int(tbl.Levels())
		e.F64(tbl.Min().FreqMHz)
		e.F64(tbl.Max().FreqMHz)
	}
	e.Int(c.interval)
	e.F64(c.totalInstr)
	c.memsys.Snapshot(e)
	e.Bool(c.mesh != nil)
	if c.mesh != nil {
		c.mesh.Snapshot(e)
	}
	c.thermals.Snapshot(e)
	c.varmap.Snapshot(e)
	for _, st := range c.islands {
		st.isl.Snapshot(e)
		e.Bool(st.sharedL2 != nil)
		if st.sharedL2 != nil {
			st.sharedL2.Snapshot(e)
		}
		for _, cm := range st.cores {
			switch core := cm.(type) {
			case *uarch.Core:
				e.U8(coreKindLive)
				core.Snapshot(e, st.sharedL2 == nil)
			case *uarch.ReplayCore:
				e.U8(coreKindReplay)
				core.Snapshot(e)
			case *uarch.ComputeCore:
				// The workload half lives in the chip's sampler, captured
				// separately by whoever owns it (the farm layer).
				e.U8(coreKindCompute)
				core.Snapshot(e)
			default:
				return errors.New("sim: unsnapshotable core model")
			}
		}
	}
	return nil
}

// Restore reads state written by Snapshot into a freshly constructed,
// structurally identical chip. On any error the chip may be partially
// written and must be discarded.
func (c *CMP) Restore(d *snapshot.Decoder) error {
	if c.recorded != nil {
		return errors.New("sim: cannot restore into a chip that is recording traces")
	}
	d.Tag(snapshot.TagChip)
	nCores := d.Int()
	nIslands := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nCores != c.nCores || nIslands != len(c.islands) {
		return snapshot.ShapeErrorf("snapshot chip is %d cores / %d islands, target is %d / %d",
			nCores, nIslands, c.nCores, len(c.islands))
	}
	for i, st := range c.islands {
		if n := d.Int(); d.Err() == nil && n != len(st.cores) {
			return snapshot.ShapeErrorf("snapshot island %d has %d cores, target has %d", i, n, len(st.cores))
		}
	}
	techNode := d.Int()
	techVariant := d.U8()
	if err := d.Err(); err != nil {
		return err
	}
	if power.TechNode(techNode) != c.cfg.Tech.Node || power.TechVariant(techVariant) != c.cfg.Tech.Variant {
		return snapshot.ShapeErrorf("snapshot tech %s, target %s",
			power.TechConfig{Node: power.TechNode(techNode), Variant: power.TechVariant(techVariant)}, c.cfg.Tech)
	}
	for i, st := range c.islands {
		class := d.U8()
		levels := d.Int()
		minF := d.F64()
		maxF := d.F64()
		if err := d.Err(); err != nil {
			return err
		}
		if power.CoreClass(class) != st.class {
			return snapshot.ShapeErrorf("snapshot island %d class %s, target %s",
				i, power.CoreClass(class), st.class)
		}
		tbl := st.model.Table
		if levels != tbl.Levels() || minF != tbl.Min().FreqMHz || maxF != tbl.Max().FreqMHz {
			return snapshot.ShapeErrorf("snapshot island %d table %d levels %.1f–%.1f MHz, target %d levels %.1f–%.1f MHz",
				i, levels, minF, maxF, tbl.Levels(), tbl.Min().FreqMHz, tbl.Max().FreqMHz)
		}
	}
	c.interval = d.Int()
	c.totalInstr = d.F64()
	if err := d.Err(); err != nil {
		return err
	}
	if err := c.memsys.Restore(d); err != nil {
		return err
	}
	hadMesh := d.Bool()
	if err := d.Err(); err != nil {
		return err
	}
	if hadMesh != (c.mesh != nil) {
		return snapshot.ShapeErrorf("snapshot NoC presence %v, target %v", hadMesh, c.mesh != nil)
	}
	if c.mesh != nil {
		if err := c.mesh.Restore(d); err != nil {
			return err
		}
	}
	if err := c.thermals.Restore(d); err != nil {
		return err
	}
	if err := c.varmap.Restore(d); err != nil {
		return err
	}
	for i, st := range c.islands {
		if err := st.isl.Restore(d); err != nil {
			return err
		}
		hadShared := d.Bool()
		if err := d.Err(); err != nil {
			return err
		}
		if hadShared != (st.sharedL2 != nil) {
			return snapshot.ShapeErrorf("island %d shared-L2 presence %v, target %v", i, hadShared, st.sharedL2 != nil)
		}
		if st.sharedL2 != nil {
			if err := st.sharedL2.Restore(d); err != nil {
				return err
			}
		}
		for j, cm := range st.cores {
			kind := d.U8()
			if err := d.Err(); err != nil {
				return err
			}
			switch core := cm.(type) {
			case *uarch.Core:
				if kind != coreKindLive {
					return snapshot.ShapeErrorf("island %d core %d kind %d, target is a live core", i, j, kind)
				}
				if err := core.Restore(d, st.sharedL2 == nil); err != nil {
					return err
				}
			case *uarch.ReplayCore:
				if kind != coreKindReplay {
					return snapshot.ShapeErrorf("island %d core %d kind %d, target is a replay core", i, j, kind)
				}
				if err := core.Restore(d); err != nil {
					return err
				}
			case *uarch.ComputeCore:
				if kind != coreKindCompute {
					return snapshot.ShapeErrorf("island %d core %d kind %d, target is a compute core", i, j, kind)
				}
				if err := core.Restore(d); err != nil {
					return err
				}
			default:
				return errors.New("sim: unsnapshotable core model")
			}
		}
	}
	return d.Err()
}
