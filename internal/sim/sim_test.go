package sim

import (
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/noc"
	"github.com/cpm-sim/cpm/internal/variation"
	"github.com/cpm-sim/cpm/internal/workload"
)

func newCMP(t *testing.T, cfg Config) *CMP {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	bad := DefaultConfig(workload.Mix1())
	bad.IntervalSec = 0
	if _, err := New(bad); err == nil {
		t.Error("zero interval should be rejected")
	}
	bad = DefaultConfig(workload.Mix1())
	bad.InitialLevel = 99
	if _, err := New(bad); err == nil {
		t.Error("out-of-range initial level should be rejected")
	}
	bad = DefaultConfig(workload.Mix{Name: "x", Islands: [][]string{{"nope"}}})
	if _, err := New(bad); err == nil {
		t.Error("invalid mix should be rejected")
	}
}

func TestTopology(t *testing.T) {
	c := newCMP(t, DefaultConfig(workload.Mix1()))
	if c.NumIslands() != 4 || c.NumCores() != 8 {
		t.Fatalf("topology = %d islands / %d cores", c.NumIslands(), c.NumCores())
	}
	for i := 0; i < 4; i++ {
		if c.IslandCores(i) != 2 {
			t.Errorf("island %d has %d cores", i, c.IslandCores(i))
		}
		if math.Abs(c.IslandMaxPowerW(i)-2*c.Model().CoreMaxPower()) > 1e-9 {
			t.Errorf("island %d max power wrong", i)
		}
	}
	if math.Abs(c.MaxChipPowerW()-8*c.Model().CoreMaxPower()) > 1e-9 {
		t.Error("chip max power wrong")
	}
	bm := c.IslandBenchmarks(0)
	if len(bm) != 2 || bm[0] != "bschls" || bm[1] != "sclust" {
		t.Errorf("island 0 benchmarks = %v", bm)
	}
	// Default initial level is the top.
	if c.Level(0) != c.Table().Levels()-1 {
		t.Error("default initial level should be top")
	}
}

func TestStepBasicInvariants(t *testing.T) {
	c := newCMP(t, DefaultConfig(workload.Mix1()))
	for k := 0; k < 30; k++ {
		r := c.Step()
		if r.Interval != k {
			t.Fatalf("interval numbering broken: %d != %d", r.Interval, k)
		}
		var sum float64
		for _, ir := range r.Islands {
			if ir.PowerW <= 0 {
				t.Fatalf("island %d non-positive power", ir.Island)
			}
			// Fractions are relative to the nominal maximum (leakage at the
			// 45C reference); hot cores can exceed 1 slightly.
			if ir.PowerFracIsland < 0 || ir.PowerFracIsland > 1.3 {
				t.Fatalf("island %d power fraction %v out of range", ir.Island, ir.PowerFracIsland)
			}
			if ir.MeanUtil < 0 || ir.MeanUtil > 1 {
				t.Fatalf("island %d utilization %v out of range", ir.Island, ir.MeanUtil)
			}
			sum += ir.PowerW
		}
		if math.Abs(sum-r.ChipPowerW) > 1e-9 {
			t.Fatal("island powers do not sum to chip power")
		}
		if r.ChipPowerFrac < 0 || r.ChipPowerFrac > 1.3 {
			t.Fatalf("chip power fraction %v out of range", r.ChipPowerFrac)
		}
		if r.TotalBIPS <= 0 {
			t.Fatal("no throughput")
		}
		if r.MaxTempC < 40 || r.MaxTempC > 140 {
			t.Fatalf("implausible temperature %v", r.MaxTempC)
		}
	}
	if c.TotalInstructions() <= 0 {
		t.Error("no cumulative instructions")
	}
}

func TestLowerLevelLowersPowerAndThroughput(t *testing.T) {
	run := func(level int) (pw, bips float64) {
		cfg := DefaultConfig(workload.Mix1())
		cfg.InitialLevel = level
		c := newCMP(t, cfg)
		for k := 0; k < 40; k++ {
			r := c.Step()
			if k >= 20 {
				pw += r.ChipPowerW
				bips += r.TotalBIPS
			}
		}
		return pw / 20, bips / 20
	}
	pHi, bHi := run(7)
	pLo, bLo := run(0)
	if pLo >= pHi {
		t.Errorf("power at min level (%v) should be below max level (%v)", pLo, pHi)
	}
	if bLo >= bHi {
		t.Errorf("throughput at min level (%v) should be below max level (%v)", bLo, bHi)
	}
	// Power dynamic range must be wide enough for meaningful control: the
	// plant gain over the normalized frequency axis is roughly this swing.
	swing := (pHi - pLo) / c8MaxPower(t)
	if swing < 0.4 || swing > 0.95 {
		t.Errorf("chip power swing = %.2f of max, want a wide controllable range", swing)
	}
}

func c8MaxPower(t *testing.T) float64 {
	c := newCMP(t, DefaultConfig(workload.Mix1()))
	return c.MaxChipPowerW()
}

func TestSetLevelTransitionOverhead(t *testing.T) {
	c := newCMP(t, DefaultConfig(workload.Mix1()))
	c.Step()
	if !c.SetLevel(0, 3) {
		t.Fatal("level change not acknowledged")
	}
	r := c.Step()
	if !r.Islands[0].Transitioned {
		t.Error("transition overhead not charged")
	}
	if r.Islands[0].Level != 3 || r.Islands[0].FreqMHz != c.Table().Point(3).FreqMHz {
		t.Error("island result does not reflect new level")
	}
	r = c.Step()
	if r.Islands[0].Transitioned {
		t.Error("overhead charged twice")
	}
	if c.Transitions(0) != 1 {
		t.Errorf("transitions = %d", c.Transitions(0))
	}
}

// The load-bearing property of the whole repository: the parallel executor
// must produce bit-identical results to the sequential one.
func TestParallelMatchesSequential(t *testing.T) {
	mk := func(parallel bool) *CMP {
		cfg := DefaultConfig(workload.Mix1())
		cfg.Parallel = parallel
		cfg.Variation = variation.PaperIslands(2)
		return newCMP(t, cfg)
	}
	seq, par := mk(false), mk(true)
	for k := 0; k < 60; k++ {
		// Exercise DVFS changes mid-run.
		if k%7 == 3 {
			seq.SetLevel(k%4, k%8)
			par.SetLevel(k%4, k%8)
		}
		rs, rp := seq.Step(), par.Step()
		if rs.ChipPowerW != rp.ChipPowerW || rs.TotalBIPS != rp.TotalBIPS || rs.MaxTempC != rp.MaxTempC {
			t.Fatalf("interval %d diverged: %+v vs %+v", k, rs, rp)
		}
		for i := range rs.Islands {
			if rs.Islands[i] != rp.Islands[i] {
				t.Fatalf("interval %d island %d diverged", k, i)
			}
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	mk := func() *CMP { return newCMP(t, DefaultConfig(workload.Mix2())) }
	a, b := mk(), mk()
	for k := 0; k < 40; k++ {
		ra, rb := a.Step(), b.Step()
		if ra.ChipPowerW != rb.ChipPowerW {
			t.Fatalf("interval %d: nondeterministic power", k)
		}
	}
}

func TestSeedChangesResults(t *testing.T) {
	cfg := DefaultConfig(workload.Mix1())
	a := newCMP(t, cfg)
	cfg.Seed = 2
	b := newCMP(t, cfg)
	same := 0
	for k := 0; k < 20; k++ {
		if a.Step().ChipPowerW == b.Step().ChipPowerW {
			same++
		}
	}
	if same == 20 {
		t.Error("different seeds gave identical trajectories")
	}
}

func TestVariationRaisesLeakyIslandPower(t *testing.T) {
	base := DefaultConfig(workload.Mix2()) // homogeneous islands
	base.Variation = variation.PaperIslands(2)
	c := newCMP(t, base)
	if math.Abs(c.IslandLeakMult(2)-2.0) > 1e-12 || math.Abs(c.IslandLeakMult(3)-1.0) > 1e-12 {
		t.Fatalf("leak multipliers wrong: %v %v", c.IslandLeakMult(2), c.IslandLeakMult(3))
	}
	// Same-benchmark islands: compare a leaky vs nominal island running the
	// same applications. Mix-2 islands 1 (sclust,fsim) and 3 (canneal,vips)
	// differ in apps, so instead compare island 2 against a uniform-map run.
	uni := DefaultConfig(workload.Mix2())
	u := newCMP(t, uni)
	var leaky, nominal float64
	for k := 0; k < 30; k++ {
		leaky += c.Step().Islands[2].PowerW
		nominal += u.Step().Islands[2].PowerW
	}
	if leaky <= nominal {
		t.Errorf("2x leakage island power (%v) should exceed nominal (%v)", leaky, nominal)
	}
}

func TestSixteenAndThirtyTwoCoreConfigs(t *testing.T) {
	for _, replicas := range []int{1, 2} {
		cfg := DefaultConfig(workload.Mix3(replicas))
		cfg.Parallel = true
		c := newCMP(t, cfg)
		want := 16 * replicas
		if c.NumCores() != want {
			t.Fatalf("cores = %d, want %d", c.NumCores(), want)
		}
		r := c.Step()
		if len(r.Islands) != 4*replicas {
			t.Fatalf("islands = %d", len(r.Islands))
		}
		if r.ChipPowerW <= 0 {
			t.Fatal("no power")
		}
	}
}

func TestSharedL2Config(t *testing.T) {
	cfg := DefaultConfig(workload.Mix1())
	cfg.SharedL2 = true
	c := newCMP(t, cfg)
	r := c.Step()
	if r.ChipPowerW <= 0 {
		t.Fatal("shared-L2 config does not run")
	}
}

// Shared island L2 slices let a streaming co-runner pollute a CPU-bound
// application's working set; its throughput must be no better than with a
// private slice.
func TestSharedL2PollutionHurtsCPUBound(t *testing.T) {
	run := func(shared bool) float64 {
		cfg := DefaultConfig(workload.Mix1())
		cfg.SharedL2 = shared
		c := newCMP(t, cfg)
		var bips float64
		for k := 0; k < 80; k++ {
			r := c.Step()
			if k >= 40 {
				bips += r.Islands[0].BIPS
			}
		}
		return bips
	}
	if sharedBips, privBips := run(true), run(false); sharedBips > privBips*1.02 {
		t.Errorf("shared L2 island throughput (%v) should not beat private slices (%v)", sharedBips, privBips)
	}
}

func TestMemoryBoundIslandLessSensitiveToDVFS(t *testing.T) {
	// Mix-2 island 0 is CPU-bound (bschls+btrack), island 1 memory-bound
	// (sclust+fsim). Dropping frequency must hurt island 0's BIPS much more.
	measure := func(level int) (cpu, memb float64) {
		cfg := DefaultConfig(workload.Mix2())
		cfg.InitialLevel = level
		c := newCMP(t, cfg)
		for k := 0; k < 60; k++ {
			r := c.Step()
			if k >= 30 {
				cpu += r.Islands[0].BIPS
				memb += r.Islands[1].BIPS
			}
		}
		return
	}
	cpuHi, memHi := measure(7)
	cpuLo, memLo := measure(0)
	cpuLoss := 1 - cpuLo/cpuHi
	memLoss := 1 - memLo/memHi
	if cpuLoss < memLoss+0.15 {
		t.Errorf("CPU-bound island DVFS loss (%.2f) should far exceed memory-bound loss (%.2f)", cpuLoss, memLoss)
	}
}

func TestNoCAddsMemoryLatency(t *testing.T) {
	run := func(withNoC bool) float64 {
		cfg := DefaultConfig(workload.Mix1())
		if withNoC {
			n := noc.DefaultConfig(2, 4)
			cfg.NoC = &n
		}
		c := newCMP(t, cfg)
		var bips float64
		for k := 0; k < 60; k++ {
			r := c.Step()
			if k >= 30 {
				bips += r.TotalBIPS
			}
		}
		return bips
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Errorf("NoC round trips should cost throughput: %v with vs %v without", with, without)
	}
	if with < without*0.9 {
		t.Errorf("a few-ns mesh should be a small tax, got %.1f%%", (1-with/without)*100)
	}
}

func TestNoCValidatedAgainstCoreCount(t *testing.T) {
	cfg := DefaultConfig(workload.Mix3(2)) // 32 cores
	n := noc.DefaultConfig(2, 4)           // only 8 tiles
	cfg.NoC = &n
	if _, err := New(cfg); err == nil {
		t.Error("undersized mesh should be rejected")
	}
}

func TestNoCParallelStillDeterministic(t *testing.T) {
	mk := func(parallel bool) *CMP {
		cfg := DefaultConfig(workload.Mix1())
		n := noc.DefaultConfig(2, 4)
		cfg.NoC = &n
		cfg.Parallel = parallel
		return newCMP(t, cfg)
	}
	seq, par := mk(false), mk(true)
	for k := 0; k < 40; k++ {
		rs, rp := seq.Step(), par.Step()
		if rs.ChipPowerW != rp.ChipPowerW {
			t.Fatalf("interval %d diverged with NoC enabled", k)
		}
	}
}

func TestL2PrefetchingHelpsStreamingWorkloads(t *testing.T) {
	run := func(degree int) float64 {
		cfg := DefaultConfig(workload.Mix2()) // island 1 = sclust+fsim (streaming)
		cfg.L2PrefetchDegree = degree
		c := newCMP(t, cfg)
		var bips float64
		for k := 0; k < 80; k++ {
			r := c.Step()
			if k >= 40 {
				bips += r.Islands[1].BIPS
			}
		}
		return bips
	}
	off := run(0)
	on := run(4)
	if on <= off {
		t.Errorf("stream prefetching should help memory-bound islands: %v vs %v", on, off)
	}
}

func TestL2PrefetchIncompatibleWithSharedL2(t *testing.T) {
	cfg := DefaultConfig(workload.Mix1())
	cfg.SharedL2 = true
	cfg.L2PrefetchDegree = 4
	if _, err := New(cfg); err == nil {
		t.Error("prefetch + shared L2 should be rejected")
	}
}
