package sim

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/cache"
	"github.com/cpm-sim/cpm/internal/workload"
)

func checkConsistent(t *testing.T, name string, s cache.Stats) {
	t.Helper()
	if s.Accesses == 0 {
		t.Errorf("%s: no accesses recorded after stepping", name)
	}
	if s.Hits+s.Misses != s.Accesses {
		t.Errorf("%s: hits %d + misses %d != accesses %d", name, s.Hits, s.Misses, s.Accesses)
	}
}

// TestCacheStatsAggregation checks the chip-level cache accessor: zero
// before any step, internally consistent and monotone after stepping.
func TestCacheStatsAggregation(t *testing.T) {
	cfg := DefaultConfig(workload.Mix1())
	cfg.Seed = 11
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.CacheStats(); s != (CacheStats{}) {
		t.Errorf("fresh chip reports nonzero cache stats: %+v", s)
	}
	for k := 0; k < 5; k++ {
		c.Step()
	}
	first := c.CacheStats()
	checkConsistent(t, "l1i", first.L1I)
	checkConsistent(t, "l1d", first.L1D)
	checkConsistent(t, "l2", first.L2)
	for k := 0; k < 5; k++ {
		c.Step()
	}
	second := c.CacheStats()
	if second.L1D.Accesses < first.L1D.Accesses || second.L2.Accesses < first.L2.Accesses {
		t.Errorf("cumulative stats went backwards: %+v then %+v", first, second)
	}
}

// TestCacheStatsSharedL2Dedupe checks a shared L2 is counted once per
// island: every core of an island sees the same banked L2, so summing all
// cores would overcount its traffic by the cores-per-island factor.
func TestCacheStatsSharedL2Dedupe(t *testing.T) {
	cfg := DefaultConfig(workload.Mix1())
	cfg.Seed = 11
	cfg.SharedL2 = true
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		c.Step()
	}
	got := c.CacheStats()
	checkConsistent(t, "shared l2", got.L2)

	// Ground truth: one core's view per island.
	var want cache.Stats
	var overcounted cache.Stats
	for _, st := range c.islands {
		for j, core := range st.cores {
			cs, ok := core.(cacheStatser)
			if !ok {
				continue
			}
			_, _, l2 := cs.CacheStats()
			addCacheStats(&overcounted, l2)
			if j == 0 {
				addCacheStats(&want, l2)
			}
		}
	}
	if got.L2 != want {
		t.Errorf("shared L2 stats = %+v, want once-per-island %+v", got.L2, want)
	}
	if got.L2 == overcounted {
		t.Errorf("shared L2 stats equal the per-core overcount %+v — dedupe not applied", overcounted)
	}
}

// TestIslandCacheStatsSumToChip checks the per-island accessor partitions
// the chip-level counters exactly: summing IslandCacheStats over islands
// must reproduce CacheStats, with and without a shared L2.
func TestIslandCacheStatsSumToChip(t *testing.T) {
	for _, shared := range []bool{false, true} {
		cfg := DefaultConfig(workload.Mix1())
		cfg.Seed = 11
		cfg.SharedL2 = shared
		c, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 5; k++ {
			c.Step()
		}
		var got CacheStats
		for i := 0; i < c.NumIslands(); i++ {
			is := c.IslandCacheStats(i)
			addCacheStats(&got.L1I, is.L1I)
			addCacheStats(&got.L1D, is.L1D)
			addCacheStats(&got.L2, is.L2)
		}
		if want := c.CacheStats(); got != want {
			t.Errorf("sharedL2=%v: Σ island stats %+v != chip stats %+v", shared, got, want)
		}
	}
}

// TestSamplerIslandCacheStatsMatchLiveChip checks the sampler's per-island
// view is identical to a live chip's after consuming the same intervals —
// the property that makes cache-aware provisioning bit-identical between
// the scalar and the record-driven farm paths.
func TestSamplerIslandCacheStatsMatchLiveChip(t *testing.T) {
	cfg := DefaultConfig(workload.Mix1())
	cfg.Seed = 11
	cfg.Parallel = false
	live, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sampler, err := NewSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := NewWithRecords(cfg, sampler)
	if err != nil {
		t.Fatal(err)
	}
	rec.SetCacheStatsSource(sampler.CacheStats)
	rec.SetIslandCacheStatsSource(sampler.IslandCacheStats)
	for k := 0; k < 5; k++ {
		live.Step()
		rec.Step()
	}
	for i := 0; i < live.NumIslands(); i++ {
		if got, want := rec.IslandCacheStats(i), live.IslandCacheStats(i); got != want {
			t.Errorf("island %d: record-chip stats %+v != live-chip stats %+v", i, got, want)
		}
	}
}
