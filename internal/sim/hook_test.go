package sim

import (
	"testing"

	"github.com/cpm-sim/cpm/internal/workload"
)

func TestStepHookReceivesEveryResult(t *testing.T) {
	cfg := DefaultConfig(workload.Mix1())
	cfg.Seed = 3
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	// Results are retained across steps, so the hook clones them out of the
	// chip's scratch buffers.
	c.SetStepHook(func(r Result) { got = append(got, r.Clone()) })
	const n = 10
	want := make([]Result, 0, n)
	for k := 0; k < n; k++ {
		want = append(want, c.Step().Clone())
	}
	if len(got) != n {
		t.Fatalf("hook fired %d times over %d steps", len(got), n)
	}
	for k := range want {
		if got[k].ChipPowerW != want[k].ChipPowerW || got[k].TotalBIPS != want[k].TotalBIPS {
			t.Fatalf("step %d: hook saw %+v, Step returned %+v", k, got[k], want[k])
		}
	}

	c.SetStepHook(nil)
	c.Step()
	if len(got) != n {
		t.Error("detached hook still fired")
	}
}

// TestStepHookFanOut pins the Add/Set semantics: Add subscribes alongside
// existing hooks, Set replaces them all, Set(nil) detaches all.
func TestStepHookFanOut(t *testing.T) {
	cfg := DefaultConfig(workload.Mix1())
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var a, b, s int
	c.AddStepHook(func(Result) { a++ })
	c.AddStepHook(func(Result) { b++ })
	c.AddStepHook(nil) // ignored
	c.Step()
	if a != 1 || b != 1 {
		t.Fatalf("added hooks fired %d/%d times, want 1/1", a, b)
	}
	c.SetStepHook(func(Result) { s++ })
	c.Step()
	if a != 1 || b != 1 || s != 1 {
		t.Fatalf("after Set: fired %d/%d/%d, want 1/1/1 (Set must replace)", a, b, s)
	}
	c.SetStepHook(nil)
	c.Step()
	if a != 1 || b != 1 || s != 1 {
		t.Error("Set(nil) left a hook attached")
	}
}
