package snapshot

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// record is the property-test payload: one value of every primitive the
// codec supports, plus every slice kind. quick generates random instances
// (including NaN-adjacent bit patterns via the uint64 fields reinterpreted
// as floats below).
type record struct {
	A  uint8
	B  uint32
	C  uint64
	D  int64
	E  int
	F  bool
	G  float64
	GB uint64 // reinterpreted as float bits: covers NaN payloads and ±Inf
	S  string
	U  []uint64
	X  []float64
	I  []int32
	N  []int
}

func (r record) encode(e *Encoder) {
	e.Tag(TagHeader)
	e.U8(r.A)
	e.U32(r.B)
	e.U64(r.C)
	e.I64(r.D)
	e.Int(r.E)
	e.Bool(r.F)
	e.F64(r.G)
	e.F64(math.Float64frombits(r.GB))
	e.String(r.S)
	e.U64s(r.U)
	e.F64s(r.X)
	e.I32s(r.I)
	e.Ints(r.N)
}

func (r *record) decode(d *Decoder) {
	d.Tag(TagHeader)
	r.A = d.U8()
	r.B = d.U32()
	r.C = d.U64()
	r.D = d.I64()
	r.E = d.Int()
	r.F = d.Bool()
	r.G = d.F64()
	r.GB = math.Float64bits(d.F64())
	r.S = d.String()
	r.U = d.U64s()
	r.X = d.F64s()
	r.I = d.I32s()
	r.N = d.Ints()
}

// TestRoundTripProperty is the codec's headline property: for arbitrary
// values, encode → decode → encode reproduces the identical byte sequence
// (so snapshot bytes are a pure function of state, which is what makes
// snapshot comparison meaningful).
func TestRoundTripProperty(t *testing.T) {
	prop := func(r record) bool {
		e1 := NewEncoder()
		r.encode(e1)
		d := NewDecoder(e1.Bytes())
		var got record
		got.decode(d)
		if d.Err() != nil {
			t.Logf("decode error: %v", d.Err())
			return false
		}
		if d.Remaining() != 0 {
			t.Logf("%d bytes left over", d.Remaining())
			return false
		}
		e2 := NewEncoder()
		got.encode(e2)
		return bytes.Equal(e1.Bytes(), e2.Bytes())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNonFiniteFloatsRoundTrip(t *testing.T) {
	vals := []float64{
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.Float64frombits(0x7ff8dead_beef0001), // NaN with payload
		math.Copysign(0, -1),                      // negative zero
	}
	e := NewEncoder()
	for _, v := range vals {
		e.F64(v)
	}
	d := NewDecoder(e.Bytes())
	for i, want := range vals {
		got := d.F64()
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("value %d: bits %#x, want %#x", i, math.Float64bits(got), math.Float64bits(want))
		}
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Header(Header{Kind: "session", Fingerprint: "cpm-default/seed=1"})
	h, err := NewDecoder(e.Bytes()).Header()
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind != "session" || h.Fingerprint != "cpm-default/seed=1" {
		t.Errorf("header = %+v", h)
	}
}

func TestHeaderRejectsBadMagicAndVersion(t *testing.T) {
	if _, err := NewDecoder([]byte("not a snapshot")).Header(); err == nil {
		t.Error("bad magic accepted")
	}
	e := NewEncoder()
	e.U32(Magic)
	e.U32(Version + 1)
	e.Tag(TagHeader)
	e.String("x")
	e.String("y")
	if _, err := NewDecoder(e.Bytes()).Header(); err == nil {
		t.Error("future version accepted")
	}
}

func TestTagMismatch(t *testing.T) {
	e := NewEncoder()
	e.Tag(TagCache)
	d := NewDecoder(e.Bytes())
	d.Tag(TagThermal)
	if d.Err() == nil {
		t.Fatal("tag mismatch not detected")
	}
	if !strings.Contains(d.Err().Error(), "section tag") {
		t.Errorf("unhelpful error: %v", d.Err())
	}
}

// TestStickyError: after the first failure every read returns a zero value
// and the original error is preserved.
func TestStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	_ = d.U64() // fails: only 2 bytes
	first := d.Err()
	if first == nil {
		t.Fatal("truncated U64 read succeeded")
	}
	if v := d.U8(); v != 0 {
		t.Errorf("read after error returned %d, want 0", v)
	}
	if got := d.Err(); got != first {
		t.Errorf("error was overwritten: %v", got)
	}
}

// TestLengthPrefixBounded: a corrupt length prefix claiming more elements
// than bytes remain must error, not allocate gigabytes.
func TestLengthPrefixBounded(t *testing.T) {
	e := NewEncoder()
	e.U32(0xffffffff) // absurd element count, no payload
	for _, dec := range []func(*Decoder){
		func(d *Decoder) { d.U64s() },
		func(d *Decoder) { d.F64s() },
		func(d *Decoder) { d.I32s() },
		func(d *Decoder) { d.Ints() },
		func(d *Decoder) { _ = d.String() },
	} {
		d := NewDecoder(e.Bytes())
		dec(d)
		if d.Err() == nil {
			t.Fatal("oversized length prefix accepted")
		}
	}
}

func TestBoolRejectsJunk(t *testing.T) {
	d := NewDecoder([]byte{7})
	d.Bool()
	if d.Err() == nil {
		t.Error("bool byte 7 accepted")
	}
}

func TestEmptySlicesRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U64s(nil)
	e.F64s([]float64{})
	d := NewDecoder(e.Bytes())
	if got := d.U64s(); got != nil {
		t.Errorf("empty U64s decoded as %v", got)
	}
	if got := d.F64s(); got != nil {
		t.Errorf("empty F64s decoded as %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestShapeErrorf(t *testing.T) {
	err := ShapeErrorf("want %d tags, got %d", 4, 2)
	if !strings.Contains(err.Error(), "shape mismatch") || !strings.Contains(err.Error(), "want 4 tags, got 2") {
		t.Errorf("err = %v", err)
	}
}
