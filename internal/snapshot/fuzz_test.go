package snapshot

import (
	"testing"
)

// FuzzSnapshotDecode drives the decoder over arbitrary bytes through every
// read primitive, in an order resembling a real composite restore. The
// invariant under fuzzing: corrupt or truncated input surfaces as
// Decoder.Err(), never as a panic or a huge allocation (the length-prefix
// bounds cap every slice by the bytes actually remaining).
func FuzzSnapshotDecode(f *testing.F) {
	// Seed corpus: a well-formed composite encoding, a header, and a few
	// hand-broken variants so the fuzzer starts near the interesting
	// boundaries.
	good := NewEncoder()
	good.Header(Header{Kind: "chip", Fingerprint: "mix1/seed=1"})
	good.Tag(TagCache)
	good.U64s([]uint64{1, 2, 3})
	good.I32s([]int32{4, 5})
	good.F64s([]float64{6.5})
	good.Bool(true)
	good.Int(-7)
	good.String("ok")
	f.Add(good.Bytes())
	f.Add(good.Bytes()[:len(good.Bytes())/2]) // truncated
	f.Add([]byte{})
	f.Add([]byte{0x43, 0x50, 0x4d, 0x53})                         // magic only
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 0, 0, 0, 2, 3, 4, 5}) // junk

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		// A header read first, as every file-level restore does.
		_, _ = d.Header()
		// Then a battery of section-style reads regardless of header
		// validity (the sticky error makes them no-ops after a failure,
		// which is exactly the code path restores rely on).
		d.Tag(TagCache)
		_ = d.U64s()
		_ = d.I32s()
		_ = d.F64s()
		_ = d.Ints()
		_ = d.Bool()
		_ = d.U8()
		_ = d.U32()
		_ = d.U64()
		_ = d.Int()
		_ = d.F64()
		_ = d.String()
		if d.Err() == nil && d.Remaining() < 0 {
			t.Fatal("negative remaining")
		}
		// Err() may be nil (the input happened to be well-formed) or
		// non-nil; both are fine. Reaching here without panicking is the
		// property.
	})
}
