// Package snapshot is a versioned, deterministic, dependency-free binary
// codec for checkpointing simulator state. Every state-bearing package in
// the stack (caches, workload generators, thermal RC state, controllers,
// the engine session) implements a pair of methods against this package:
//
//	Snapshot(e *snapshot.Encoder)          // append my state
//	Restore(d *snapshot.Decoder) error     // read it back, validating shape
//
// Design rules, in priority order:
//
//  1. Deterministic bytes: the same state always encodes to the same byte
//     sequence. All integers are fixed-width little-endian; floats are raw
//     IEEE-754 bits (NaN and ±Inf round-trip exactly); map-backed state
//     must be emitted in sorted key order by its owner.
//  2. Corrupt input is an error, never a panic: the Decoder carries a
//     sticky error, returns zero values once it is set, and bounds every
//     length prefix against the bytes actually remaining, so truncated or
//     hostile inputs cannot drive large allocations or out-of-range reads.
//  3. Structure is checked, not trusted: sections open with a Tag the
//     decoder verifies, and restorers validate decoded slice lengths
//     against the geometry of the object being restored. A snapshot only
//     restores into a structurally identical, freshly constructed target.
//
// The file format is a fixed header (magic, format version, kind and
// fingerprint strings identifying what was captured) followed by nested
// tagged sections. There is no backward-compatibility machinery: a version
// bump invalidates old snapshots, which is the honest contract for a
// research simulator whose state layout changes with the code.
package snapshot

import (
	"errors"
	"fmt"
	"math"
)

// Magic opens every snapshot file ("CPMS" in little-endian byte order).
const Magic uint32 = 0x534d5043

// Version is the format version; bump on any layout change.
// Version 2: the PIC section grew an adaptive-mode presence flag (plus the
// RLS estimator state when set), and the CPM section a cache-signal latch.
// Version 3: the chip section carries a per-island identity block —
// technology node/variant plus each island's core class and DVFS-table
// shape — validated on restore, so a snapshot cannot silently restore
// into a chip with different tables.
const Version uint32 = 3

// Section tags. Every composite object's Snapshot opens with one, and the
// matching Restore verifies it — a cheap structural checksum that turns
// "decoded garbage into the wrong fields" into an immediate error.
const (
	TagHeader uint32 = 0xC0DE0000 + iota
	TagRand
	TagPID
	TagPIC
	TagPhaseGen
	TagStreamGen
	TagCache
	TagBanked
	TagPrefetcher
	TagHierarchy
	TagThermal
	TagMem
	TagNoC
	TagIsland
	TagVariation
	TagCore
	TagReplayCore
	TagChip
	TagGPM
	TagPolicy
	TagCPM
	TagRunner
	TagSession
	TagSummary
	TagDeterminism
	TagGolden
	TagComputeCore
	TagSampler
	TagFarm
)

// Header identifies what a snapshot captured, so a restore can refuse a
// file that was written by a different producer or configuration.
type Header struct {
	// Kind names the captured object ("session", "chip", ...).
	Kind string
	// Fingerprint is a producer-chosen configuration identity (scenario
	// name, seed, geometry); Restore sites compare it against the
	// fingerprint of the target they are restoring into.
	Fingerprint string
}

// Encoder appends a deterministic binary encoding to an in-memory buffer.
// The zero value is not usable; construct with NewEncoder. Encoding cannot
// fail: all methods are infallible appends.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded buffer. The slice aliases the encoder's
// internal buffer; further encoding may grow (and re-allocate) it.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends a little-endian int64 (two's complement).
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as int64.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// Bool appends a bool as one byte (0 or 1).
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends a float64 as its raw IEEE-754 bits, so NaN payloads and
// signed infinities round-trip bit-exactly.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// String appends a length-prefixed UTF-8 string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Tag opens a section.
func (e *Encoder) Tag(t uint32) { e.U32(t) }

// U64s appends a length-prefixed []uint64.
func (e *Encoder) U64s(v []uint64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// F64s appends a length-prefixed []float64 (raw bits per element).
func (e *Encoder) F64s(v []float64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// I32s appends a length-prefixed []int32.
func (e *Encoder) I32s(v []int32) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U32(uint32(x))
	}
}

// Ints appends a length-prefixed []int (int64 per element).
func (e *Encoder) Ints(v []int) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.Int(x)
	}
}

// Blob appends a length-prefixed opaque byte slice — a nested encoding
// carried verbatim, e.g. a checkpoint body covered by an integrity digest.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Header writes the file header (magic, version, kind, fingerprint).
func (e *Encoder) Header(h Header) {
	e.U32(Magic)
	e.U32(Version)
	e.Tag(TagHeader)
	e.String(h.Kind)
	e.String(h.Fingerprint)
}

// Decoder reads the Encoder's format back. Errors are sticky: after the
// first failure every subsequent read returns a zero value and Err()
// reports the original cause, so restore code can decode a whole section
// and check once. Construct with NewDecoder.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps b (not copied; the caller must not mutate it while
// decoding).
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first decoding error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: "+format, args...)
	}
}

// Fail puts the decoder into its sticky error state with a shape error, for
// callers that detect an implausible decoded value (a count that cannot fit
// in the remaining bytes, say) outside the primitive readers. The first
// error wins, as with intrinsic decoding failures.
func (d *Decoder) Fail(format string, args ...any) {
	if d.err == nil {
		d.err = ShapeErrorf(format, args...)
	}
}

// need reports whether n more bytes are available, failing if not.
func (d *Decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.Remaining() < n {
		d.fail("truncated input: need %d bytes at offset %d, have %d", n, d.off, d.Remaining())
		return false
	}
	return true
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	b := d.buf[d.off:]
	v := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	b := d.buf[d.off:]
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
	d.off += 8
	return v
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads an int encoded as int64.
func (d *Decoder) Int() int { return int(d.I64()) }

// Bool reads a bool, rejecting bytes other than 0 and 1.
func (d *Decoder) Bool() bool {
	v := d.U8()
	if v > 1 {
		d.fail("invalid bool byte %d at offset %d", v, d.off-1)
		return false
	}
	return v == 1
}

// F64 reads a float64 from raw bits.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// String reads a length-prefixed string. The length prefix is bounded by
// the bytes remaining, so a corrupt prefix cannot drive a huge allocation.
func (d *Decoder) String() string {
	n := int(d.U32())
	if d.err != nil {
		return ""
	}
	if n > d.Remaining() {
		d.fail("string length %d exceeds %d remaining bytes at offset %d", n, d.Remaining(), d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Blob reads a length-prefixed opaque byte slice written by Encoder.Blob.
// The returned slice aliases the decoder's buffer; copy before mutating.
func (d *Decoder) Blob() []byte {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	if n > d.Remaining() {
		d.fail("blob length %d exceeds %d remaining bytes at offset %d", n, d.Remaining(), d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// count reads a slice length prefix and bounds it by the remaining bytes
// at elemSize bytes per element.
func (d *Decoder) count(elemSize int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n*elemSize > d.Remaining() {
		d.fail("slice length %d (x%d bytes) exceeds %d remaining bytes at offset %d",
			n, elemSize, d.Remaining(), d.off)
		return 0
	}
	return n
}

// Tag reads a section tag and verifies it.
func (d *Decoder) Tag(want uint32) {
	at := d.off
	got := d.U32()
	if d.err == nil && got != want {
		d.fail("section tag %#x at offset %d, want %#x", got, at, want)
	}
}

// U64s reads a length-prefixed []uint64.
func (d *Decoder) U64s() []uint64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	return out
}

// F64s reads a length-prefixed []float64.
func (d *Decoder) F64s() []float64 {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// I32s reads a length-prefixed []int32.
func (d *Decoder) I32s() []int32 {
	n := d.count(4)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.U32())
	}
	return out
}

// Ints reads a length-prefixed []int.
func (d *Decoder) Ints() []int {
	n := d.count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// Header reads and validates the file header.
func (d *Decoder) Header() (Header, error) {
	if m := d.U32(); d.err == nil && m != Magic {
		d.fail("bad magic %#x, want %#x (not a snapshot file?)", m, Magic)
	}
	if v := d.U32(); d.err == nil && v != Version {
		d.fail("format version %d, this build reads version %d", v, Version)
	}
	d.Tag(TagHeader)
	h := Header{Kind: d.String(), Fingerprint: d.String()}
	return h, d.err
}

// ErrShape is wrapped by restore-site errors where the decoded structure
// does not match the target object's geometry.
var ErrShape = errors.New("snapshot: shape mismatch")

// ShapeErrorf builds a shape-mismatch error (wrapping ErrShape) for
// Restore implementations that validate decoded lengths against the
// target's construction-time geometry.
func ShapeErrorf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrShape}, args...)...)
}
