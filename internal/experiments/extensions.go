package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/trace"
	"github.com/cpm-sim/cpm/internal/workload"
)

// Extensions beyond the paper's evaluation (DESIGN.md §6): the policies and
// studies §II-C declares feasible but does not evaluate, plus the
// robustness experiments the control-theoretic framing invites.

func init() {
	register(Definition{
		ID:    "ext1",
		Title: "Energy-aware provisioning with a performance floor (extension)",
		Paper: "§II-C sketch: \"policies for reducing energy consumption by providing a minimum guarantee on the performance ... are also feasible\"",
		Run:   runExt1,
	})
	register(Definition{
		ID:    "ext2",
		Title: "Robustness under injected sensor/actuator faults (extension)",
		Paper: "§II-D claim: formal feedback control keeps behaviour predictable under mis-prediction and disturbance, unlike open-loop heuristics",
		Run:   runExt2,
	})
	register(Definition{
		ID:    "ext3",
		Title: "GPM expectation exponent: Eq. 4 cube root vs calibrated elasticity (extension)",
		Paper: "Eq. 1/4 idealize P ∝ f³; a calibrated exponent matches the plant actually identified",
		Run:   runExt3,
	})
}

// runExt1 sweeps the performance floor of the energy-aware policy and
// reports the energy/performance frontier it traces.
func runExt1(o Options) (Result, error) {
	cfg, cal, err := setup(workload.Mix1(), o, 0)
	if err != nil {
		return Result{}, err
	}
	meas := o.epochs(20)
	var rows [][]string
	set := trace.NewSet("performance floor (% of unmanaged)")
	metrics := map[string]float64{}
	for _, floor := range []float64{0.85, 0.90, 0.95} {
		policy := &gpm.EnergyAware{FloorBIPS: floor * cal.UnmanagedBIPS}
		sum, err := runCPM(cfg, cal, cpmParams{
			budgetW: cal.BudgetW(1.0), policy: policy, warmEpochs: 8, measEpochs: meas, opts: o,
		})
		if err != nil {
			return Result{}, err
		}
		powerFrac := sum.MeanPowerW / cal.UnmanagedPowerW
		bipsFrac := sum.MeanBIPS / cal.UnmanagedBIPS
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", floor*100),
			fmt.Sprintf("%.1f W (%.0f%%)", sum.MeanPowerW, powerFrac*100),
			fmt.Sprintf("%.2f (%.0f%%)", sum.MeanBIPS, bipsFrac*100),
		})
		set.Get("power").Append(powerFrac * 100)
		set.Get("throughput").Append(bipsFrac * 100)
		key := fmt.Sprintf("floor%.0f", floor*100)
		metrics[key+"_power_frac"] = powerFrac
		metrics[key+"_bips_frac"] = bipsFrac
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Energy-aware policy on Mix-1 (unmanaged: %.1f W, %.2f BIPS):\n\n", cal.UnmanagedPowerW, cal.UnmanagedBIPS)
	b.WriteString(trace.Table([]string{"Perf floor", "Mean power", "Mean throughput"}, rows))
	b.WriteString("\nLower floors buy larger energy savings; the guarantee holds by construction\n(budget recovery is faster than decay).\n")
	return Result{
		ID:      "ext1",
		Title:   "Extension: energy-aware provisioning",
		Text:    b.String(),
		Sets:    map[string]*trace.Set{"ext1": set},
		Metrics: metrics,
	}, nil
}

// runExt2 measures budget tracking under the fault plans of
// core.FaultPlan.
func runExt2(o Options) (Result, error) {
	cfg, cal, err := setup(workload.Mix1(), o, 0)
	if err != nil {
		return Result{}, err
	}
	budget := cal.BudgetW(0.8)
	meas := o.epochs(16)
	cases := []struct {
		name string
		plan *core.FaultPlan
	}{
		{"fault-free", nil},
		{"15% sensor noise", &core.FaultPlan{UtilNoiseStd: 0.15, StuckIsland: -1, Seed: 11}},
		{"+10% sensor bias", &core.FaultPlan{UtilBiasMult: 1.10, StuckIsland: -1, Seed: 12}},
		{"island 0 stuck at top", &core.FaultPlan{StuckIsland: 0, StuckLevel: 7, Seed: 13}},
		{"50% GPM drops", &core.FaultPlan{DropGPMProb: 0.5, StuckIsland: -1, Seed: 14}},
	}
	var rows [][]string
	metrics := map[string]float64{}
	for i, cse := range cases {
		sum, err := runCPM(cfg, cal, cpmParams{
			budgetW: budget, warmEpochs: 7, measEpochs: meas, faults: cse.plan, opts: o,
		})
		if err != nil {
			return Result{}, err
		}
		mean := sum.MeanPowerW
		errFrac := (mean - budget) / budget
		rows = append(rows, []string{cse.name, fmt.Sprintf("%.1f W", mean), fmt.Sprintf("%+.1f%%", errFrac*100)})
		metrics[fmt.Sprintf("err_case%d", i)] = math.Abs(errFrac)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Budget tracking at %.1f W (80%%) under injected faults:\n\n", budget)
	b.WriteString(trace.Table([]string{"Fault", "Mean power", "Tracking error"}, rows))
	b.WriteString("\nThe closed loop absorbs noise, bounded bias, a failed actuator and a flaky\nsupervisor — the predictability argument of §II-D, quantified.\n")
	return Result{
		ID:      "ext2",
		Title:   "Extension: fault robustness",
		Text:    b.String(),
		Metrics: metrics,
	}, nil
}

// runExt3 compares the paper's Eq. 4 cube-root expectation against the
// elasticity-calibrated exponent end to end.
func runExt3(o Options) (Result, error) {
	cfg, cal, err := setup(workload.Mix1(), o, 0)
	if err != nil {
		return Result{}, err
	}
	budget := cal.BudgetW(0.8)
	meas := o.epochs(16)
	base, err := runUnmanagedWindow(cfg, 6, meas, 20, o)
	if err != nil {
		return Result{}, err
	}
	run := func(exponent float64) (float64, float64, error) {
		sum, err := runCPM(cfg, cal, cpmParams{
			budgetW: budget, warmEpochs: 6, measEpochs: meas, opts: o,
			policy: &gpm.PerformanceAware{PowerExponent: exponent},
		})
		if err != nil {
			return 0, 0, err
		}
		return degradation(sum, base), sum.MeanPowerW, nil
	}
	dCube, pCube, err := run(1.0 / 3.0)
	if err != nil {
		return Result{}, err
	}
	dCal, pCal, err := run(cal.RecommendedExponent())
	if err != nil {
		return Result{}, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Identified power elasticity e = %.2f (Eq. 1 idealizes 3); calibrated exponent 1/e = %.2f.\n\n", cal.PowerElasticity, cal.RecommendedExponent())
	b.WriteString(trace.Table(
		[]string{"Expectation exponent", "Degradation", "Mean power"},
		[][]string{
			{"1/3 (paper, Eq. 4)", pct(dCube), fmt.Sprintf("%.1f W", pCube)},
			{fmt.Sprintf("1/e = %.2f (calibrated)", cal.RecommendedExponent()), pct(dCal), fmt.Sprintf("%.1f W", pCal)},
		}))
	return Result{
		ID:    "ext3",
		Title: "Extension: calibrated expectation exponent",
		Text:  b.String(),
		Metrics: map[string]float64{
			"elasticity":             cal.PowerElasticity,
			"degradation_cube":       dCube,
			"degradation_calibrated": dCal,
		},
	}, nil
}
