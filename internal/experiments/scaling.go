package experiments

import (
	"fmt"
	"strings"

	"github.com/cpm-sim/cpm/internal/trace"
	"github.com/cpm-sim/cpm/internal/workload"
)

func init() {
	register(Definition{
		ID:    "fig13",
		Title: "Performance degradation vs island size (1/2/4 cores per island)",
		Paper: "Figure 13: degradation grows with cores per island; at 1 core/island our scheme and MaxBIPS are comparable (ours ~3.75% better)",
		Run:   runFig13,
	})
	register(Definition{
		ID:    "fig15",
		Title: "16- and 32-core CMP evaluation vs MaxBIPS",
		Paper: "Figure 15: ~4% degradation at 80% budget for ours; MaxBIPS at 14-16.2%",
		Run:   runFig15,
	})
	register(Definition{
		ID:    "fig16",
		Title: "Sensitivity to the application mix (Mix-1 vs Mix-2)",
		Paper: "Figure 16: Mix-2 (homogeneous islands) degrades less than Mix-1",
		Run:   runFig16,
	})
	register(Definition{
		ID:    "fig17",
		Title: "Sensitivity to GPM/PIC invocation intervals",
		Paper: "Figure 17: (50ms, 2.5ms) degrades less than (50ms, 5ms); shown for 1/2/4 cores per island",
		Run:   runFig17,
	})
}

func runFig13(o Options) (Result, error) {
	meas := o.epochs(12)
	const budgetFrac = 0.8
	var rows [][]string
	metrics := map[string]float64{}
	set := trace.NewSet("cores per island")
	for _, size := range []int{1, 2, 4} {
		mix, err := workload.PerIslandSize(size)
		if err != nil {
			return Result{}, err
		}
		cfg, cal, err := setup(mix, o, 0)
		if err != nil {
			return Result{}, err
		}
		base, err := runUnmanagedWindow(cfg, 6, meas, 20, o)
		if err != nil {
			return Result{}, err
		}
		ours, err := runCPM(cfg, cal, cpmParams{budgetW: cal.BudgetW(budgetFrac), warmEpochs: 6, measEpochs: meas, opts: o})
		if err != nil {
			return Result{}, err
		}
		mb, err := runMaxBIPS(cfg, cal.BudgetW(budgetFrac), 20, 6, meas, true, o)
		if err != nil {
			return Result{}, err
		}
		dOurs := degradation(ours, base)
		dMB := degradation(mb, base)
		metrics[fmt.Sprintf("ours_%d", size)] = dOurs
		metrics[fmt.Sprintf("maxbips_%d", size)] = dMB
		set.Get("Our scheme").Append(dOurs * 100)
		set.Get("MaxBIPS").Append(dMB * 100)
		rows = append(rows, []string{
			fmt.Sprintf("%d core/island", size), pct(dOurs), pct(dMB),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Performance degradation at the %.0f%% budget by island granularity:\n", budgetFrac*100)
	b.WriteString(trace.Table([]string{"Configuration", "Our scheme", "MaxBIPS"}, rows))
	b.WriteString("\n")
	b.WriteString(set.Chart(50, 10))
	b.WriteString("\n1 core/island is the architecture MaxBIPS targets; larger islands are where per-island control must cope with co-scheduled threads.\n")
	return Result{
		ID:      "fig13",
		Title:   "Figure 13",
		Text:    b.String(),
		Sets:    map[string]*trace.Set{"fig13": set},
		Metrics: metrics,
	}, nil
}

func runFig15(o Options) (Result, error) {
	meas := o.epochs(10)
	budgets := []float64{0.70, 0.80, 0.90}
	metrics := map[string]float64{}
	var rows [][]string
	for _, replicas := range []int{1, 2} {
		cores := 16 * replicas
		mix := workload.Mix3(replicas)
		cfg, cal, err := setup(mix, o, 0)
		if err != nil {
			return Result{}, err
		}
		base, err := runUnmanagedWindow(cfg, 6, meas, 20, o)
		if err != nil {
			return Result{}, err
		}
		for _, frac := range budgets {
			ours, err := runCPM(cfg, cal, cpmParams{budgetW: cal.BudgetW(frac), warmEpochs: 6, measEpochs: meas, opts: o})
			if err != nil {
				return Result{}, err
			}
			mb, err := runMaxBIPS(cfg, cal.BudgetW(frac), 20, 6, meas, true, o)
			if err != nil {
				return Result{}, err
			}
			dOurs := degradation(ours, base)
			dMB := degradation(mb, base)
			if frac == 0.80 {
				metrics[fmt.Sprintf("ours_%d", cores)] = dOurs
				metrics[fmt.Sprintf("maxbips_%d", cores)] = dMB
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d cores", cores),
				fmt.Sprintf("%.0f%%", frac*100),
				pct(dOurs),
				pct(dMB),
			})
		}
	}
	var b strings.Builder
	b.WriteString(trace.Table([]string{"CMP", "Budget", "Our scheme", "MaxBIPS"}, rows))
	fmt.Fprintf(&b, "\nAt the 80%% budget (paper: ours ~4%%; MaxBIPS 14%% @16 cores, 16.2%% @32 cores).\n")
	return Result{
		ID:      "fig15",
		Title:   "Figure 15",
		Text:    b.String(),
		Metrics: metrics,
	}, nil
}

func runFig16(o Options) (Result, error) {
	meas := o.epochs(14)
	metrics := map[string]float64{}
	var rows [][]string
	set := trace.NewSet("budget (% of required power)")
	for _, frac := range budgetSweep {
		row := []string{fmt.Sprintf("%.0f%%", frac*100)}
		for _, mix := range []workload.Mix{workload.Mix1(), workload.Mix2()} {
			cfg, cal, err := setup(mix, o, 0)
			if err != nil {
				return Result{}, err
			}
			base, err := runUnmanagedWindow(cfg, 6, meas, 20, o)
			if err != nil {
				return Result{}, err
			}
			ours, err := runCPM(cfg, cal, cpmParams{budgetW: cal.BudgetW(frac), warmEpochs: 6, measEpochs: meas, opts: o})
			if err != nil {
				return Result{}, err
			}
			d := degradation(ours, base)
			row = append(row, pct(d))
			set.Get(mix.Name).Append(d * 100)
			if frac == 0.80 {
				metrics[mix.Name] = d
			}
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString(trace.Table([]string{"Budget", "Mix-1", "Mix-2"}, rows))
	b.WriteString("\n")
	b.WriteString(set.Chart(60, 10))
	b.WriteString("\nMix-2 groups CPU-bound with CPU-bound and memory-bound with memory-bound;\nslowing a homogeneous memory-bound island costs little performance.\n")
	return Result{
		ID:      "fig16",
		Title:   "Figure 16",
		Text:    b.String(),
		Sets:    map[string]*trace.Set{"fig16": set},
		Metrics: metrics,
	}, nil
}

func runFig17(o Options) (Result, error) {
	meas := o.epochs(12)
	const budgetFrac = 0.8
	metrics := map[string]float64{}
	var rows [][]string
	for _, size := range []int{1, 2, 4} {
		mix, err := workload.PerIslandSize(size)
		if err != nil {
			return Result{}, err
		}
		row := []string{fmt.Sprintf("%d core/island", size)}
		for _, picMs := range []float64{2.5, 5.0} {
			interval := picMs / 1000
			period := int(50/picMs + 0.5) // keep T_global at 50 ms
			cfg, cal, err := setup(mix, o, interval)
			if err != nil {
				return Result{}, err
			}
			base, err := runUnmanagedWindow(cfg, 6, meas, period, o)
			if err != nil {
				return Result{}, err
			}
			ours, err := runCPM(cfg, cal, cpmParams{
				budgetW: cal.BudgetW(budgetFrac), gpmPeriod: period,
				warmEpochs: 6, measEpochs: meas, opts: o,
			})
			if err != nil {
				return Result{}, err
			}
			d := degradation(ours, base)
			row = append(row, pct(d))
			metrics[fmt.Sprintf("size%d_pic%.1fms", size, picMs)] = d
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Performance degradation at the %.0f%% budget, GPM every 50 ms:\n", budgetFrac*100)
	b.WriteString(trace.Table([]string{"Configuration", "PIC @ 2.5 ms", "PIC @ 5 ms"}, rows))
	b.WriteString("\nFiner PIC intervals let the controller exploit budget headroom sooner (paper: (50, 2.5) beats (50, 5)).\n")
	return Result{
		ID:      "fig17",
		Title:   "Figure 17",
		Text:    b.String(),
		Metrics: metrics,
	}, nil
}
