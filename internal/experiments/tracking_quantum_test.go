package experiments

import (
	"math"
	"testing"

	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/workload"
)

// TestQuantumWSinglePointTable is the regression for the divide-by-zero in
// the tracking resolution estimate: a single-point DVFS table is legal
// (power.NewDVFSTable accepts it), and the old Levels()-1 divisor turned
// its quantum into +Inf, poisoning every downstream tolerance.
func TestQuantumWSinglePointTable(t *testing.T) {
	base := power.DefaultModel()
	tbl, err := power.NewDVFSTable([]power.OperatingPoint{base.Table.Max()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig(workload.Mix{Name: "tiny", Islands: [][]string{{"bschls"}}})
	cfg.Power = &power.Model{Table: tbl, Dynamic: base.Dynamic, Leakage: base.Leakage}
	q := quantumW(cfg, 0)
	if math.IsInf(q, 0) || math.IsNaN(q) || q <= 0 {
		t.Fatalf("single-point table quantum = %v, want finite positive", q)
	}

	// The multi-level path is unchanged: swing spread over levels-1 steps.
	mcfg := sim.DefaultConfig(workload.Mix{Name: "tiny", Islands: [][]string{{"bschls"}}})
	mq := quantumW(mcfg, 0)
	c, err := sim.New(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.6 * c.IslandMaxPowerW(0) / float64(c.IslandTable(0).Levels()-1)
	if math.Abs(mq-want) > 1e-12 {
		t.Fatalf("multi-level quantum %v, want %v", mq, want)
	}
}
