package experiments

import (
	"fmt"
	"strings"

	"github.com/cpm-sim/cpm/internal/cache"
	"github.com/cpm-sim/cpm/internal/mem"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/trace"
	"github.com/cpm-sim/cpm/internal/uarch"
	"github.com/cpm-sim/cpm/internal/workload"
)

func init() {
	register(Definition{
		ID:    "table1",
		Title: "Core, memory, CMP configuration and V-f settings",
		Paper: "Table I: 4/2/2-wide core, 16KB 2-way L1s, 512KB/core 16-way L2, 200-cycle memory, 8 cores in 4 islands, 8 V/f pairs 600MHz-2GHz",
		Run:   runTable1,
	})
	register(Definition{
		ID:    "table2",
		Title: "PARSEC benchmark details",
		Paper: "Table II: six applications and two kernels with input sets",
		Run:   runTable2,
	})
	register(Definition{
		ID:    "table3",
		Title: "Application mixes and island assignment",
		Paper: "Table III: Mix-1, Mix-2 for 8 cores; Mix-3 for 16/32 cores",
		Run:   runTable3,
	})
}

func runTable1(o Options) (Result, error) {
	var b strings.Builder
	p := uarch.TableIParams()
	l1 := cache.TableIL1()
	l2 := cache.TableIL2PerCore()
	m := mem.TableI()
	// The technology and CMP-configuration rows are derived from the chip
	// the default configuration actually builds — not hardcoded — so a
	// tech-scaled or heterogeneous default would be reported truthfully.
	cfg := sim.DefaultConfig(workload.Mix1())
	cmp, err := sim.New(cfg)
	if err != nil {
		return Result{}, err
	}
	rows := [][]string{
		{"Technology", describeTech(cmp)},
		{"Core fetch/issue/commit width", fmt.Sprintf("%d/%d/%d", p.FetchWidth, p.IssueWidth, p.CommitWidth)},
		{"ROB / issue queue", fmt.Sprintf("%d / %d entries", p.ROBSize, p.IQSize)},
		{"L1 data cache", describeCache(l1)},
		{"L1 instruction cache", describeCache(l1)},
		{"L2 cache", describeCache(l2) + " per core"},
		{"Memory", fmt.Sprintf("%.0f ns (%.0f cycles at 2 GHz), %.1f GB/s", m.BaseLatencyNs, m.BaseLatencyNs*2, m.BandwidthGBs)},
		{"CMP configuration", describeCMP(cmp)},
	}
	b.WriteString(trace.Table([]string{"Parameter", "Value"}, rows))
	b.WriteString("\nDVFS operating points (Pentium-M derived):\n")
	tbl := cmp.IslandTable(0)
	var vf [][]string
	for i := 0; i < tbl.Levels(); i++ {
		op := tbl.Point(i)
		vf = append(vf, []string{fmt.Sprint(i), fmt.Sprintf("%.0f MHz", op.FreqMHz), fmt.Sprintf("%.3f V", op.VoltageV)})
	}
	b.WriteString(trace.Table([]string{"Level", "Frequency", "Voltage"}, vf))
	return Result{
		ID:    "table1",
		Title: "Table I",
		Text:  b.String(),
		Metrics: map[string]float64{
			"dvfs_levels":   float64(tbl.Levels()),
			"fmin_mhz":      tbl.Min().FreqMHz,
			"fmax_mhz":      tbl.Max().FreqMHz,
			"mem_cycles_2g": m.BaseLatencyNs * 2,
		},
	}, nil
}

func runTable2(o Options) (Result, error) {
	var rows [][]string
	for _, p := range workload.PARSEC() {
		rows = append(rows, []string{
			p.Name, p.FullName, p.Class.String(), p.InputSet, p.Description,
		})
	}
	return Result{
		ID:    "table2",
		Title: "Table II",
		Text:  trace.Table([]string{"Short", "Benchmark", "Class", "Input", "Description"}, rows),
		Metrics: map[string]float64{
			"benchmarks": float64(len(workload.PARSEC())),
		},
	}, nil
}

func runTable3(o Options) (Result, error) {
	var b strings.Builder
	describeMix := func(m workload.Mix) {
		fmt.Fprintf(&b, "%s (%d cores, %d islands):\n", m.Name, m.Cores(), len(m.Islands))
		var rows [][]string
		for i, isl := range m.Islands {
			var classes []string
			for _, bench := range isl {
				classes = append(classes, workload.MustByName(bench).Class.String())
			}
			rows = append(rows, []string{
				fmt.Sprint(i + 1),
				strings.Join(isl, ", "),
				strings.Join(classes, ", "),
			})
		}
		b.WriteString(trace.Table([]string{"Island", "Benchmarks", "Characteristics"}, rows))
		b.WriteString("\n")
	}
	describeMix(workload.Mix1())
	describeMix(workload.Mix2())
	describeMix(workload.Mix3(1))
	m3 := workload.Mix3(2)
	fmt.Fprintf(&b, "For 32 cores, Mix-3 is replicated twice (%d cores, %d islands).\n", m3.Cores(), len(m3.Islands))
	return Result{
		ID:    "table3",
		Title: "Table III",
		Text:  b.String(),
		Metrics: map[string]float64{
			"mix1_cores": float64(workload.Mix1().Cores()),
			"mix3_cores": float64(workload.Mix3(1).Cores()),
		},
	}, nil
}

func describeCache(c cache.Config) string {
	return fmt.Sprintf("%d KB, %d-way, %d B blocks, %d-cycle",
		c.SizeBytes/1024, c.Assoc, c.BlockBytes, c.LatencyCycles)
}

// describeTech renders the chip's technology row from its actual
// configuration: the 90 nm-class baseline when no scaling is enabled,
// otherwise the node/variant with the scaled top frequency.
func describeTech(cmp *sim.CMP) string {
	top := 0.0
	for i := 0; i < cmp.NumIslands(); i++ {
		if f := cmp.IslandTable(i).Max().FreqMHz; f > top {
			top = f
		}
	}
	if tech := cmp.Tech(); tech.Enabled() {
		return fmt.Sprintf("%s (Lumos-scaled), %.2g GHz nominal", tech, top/1000)
	}
	return fmt.Sprintf("90 nm-class, %.2g GHz nominal", top/1000)
}

// describeCMP renders the chip-organization row from the chip itself:
// core count, island count and per-island population, and — on a
// heterogeneous chip — the per-class split instead of a blanket
// "out-of-order".
func describeCMP(cmp *sim.CMP) string {
	n := cmp.NumIslands()
	perIsland := cmp.IslandCores(0)
	uniform := true
	counts := map[power.CoreClass]int{}
	for i := 0; i < n; i++ {
		if cmp.IslandCores(i) != perIsland {
			uniform = false
		}
		counts[cmp.IslandClass(i)] += cmp.IslandCores(i)
	}
	var kind string
	if cmp.Heterogeneous() {
		var parts []string
		for _, class := range []power.CoreClass{power.ClassOoO, power.ClassLittleIO} {
			if c := counts[class]; c > 0 {
				parts = append(parts, fmt.Sprintf("%d %s", c, classDescription(class)))
			}
		}
		kind = strings.Join(parts, " + ") + " cores"
	} else {
		kind = fmt.Sprintf("%d %s cores", cmp.NumCores(), classDescription(cmp.IslandClass(0)))
	}
	if uniform {
		return fmt.Sprintf("%s (%d islands, %d cores per island)", kind, n, perIsland)
	}
	return fmt.Sprintf("%s (%d islands)", kind, n)
}

// classDescription spells a core class out for the configuration table.
func classDescription(c power.CoreClass) string {
	if c == power.ClassLittleIO {
		return "in-order little"
	}
	return "out-of-order"
}
