package experiments

import (
	"fmt"
	"strings"

	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/power"
	"github.com/cpm-sim/cpm/internal/sim"
	"github.com/cpm-sim/cpm/internal/trace"
	"github.com/cpm-sim/cpm/internal/workload"
)

func init() {
	register(Definition{
		ID:    "technode",
		Title: "Optimal big/little budget split across technology nodes",
		Paper: "Extension: Lumos-scaled 45-8nm big.LITTLE chips; how the budget share the big islands should get shifts as leakage grows and vth eats the bottom of the table",
		Run:   runTechNode,
	})
}

// splitPolicy provisions a fixed fraction of the chip budget to the
// out-of-order islands (split equally among them) and the remainder to the
// little islands — the open-loop knob the technode study sweeps.
type splitPolicy struct {
	bigFrac float64
	classes []power.CoreClass
}

func (p splitPolicy) Name() string { return "fixed-split" }

func (p splitPolicy) Provision(budgetW float64, obs []gpm.IslandObs) []float64 {
	out := make([]float64, len(obs))
	nBig, nLittle := 0, 0
	for i := range obs {
		if p.classes[i] == power.ClassOoO {
			nBig++
		} else {
			nLittle++
		}
	}
	for i := range obs {
		if p.classes[i] == power.ClassOoO {
			out[i] = budgetW * p.bigFrac / float64(nBig)
		} else {
			out[i] = budgetW * (1 - p.bigFrac) / float64(nLittle)
		}
	}
	return out
}

// runTechNode sweeps the big-island budget share on a big.LITTLE Mix-1
// chip at every technology node and reports the BIPS-optimal split. The
// PICs run in the oracle-power ablation (measured island power as
// feedback), so each node needs no per-node transducer calibration and the
// comparison isolates the physics — scaled tables, vth-trimmed level
// counts, leakage share — from estimator quality.
func runTechNode(o Options) (Result, error) {
	classes := []power.CoreClass{
		power.ClassOoO, power.ClassLittleIO, power.ClassOoO, power.ClassLittleIO,
	}
	nodes := append([]power.TechNode{0}, power.Nodes()...)
	splits := []float64{0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85}
	warm, meas := 2, o.epochs(8)

	var b strings.Builder
	rows := [][]string{}
	metrics := map[string]float64{}
	set := trace.NewSet("big-island budget share")
	for _, node := range nodes {
		cfg := sim.DefaultConfig(workload.Mix1())
		cfg.Seed = o.seed()
		cfg.Parallel = true
		cfg.IslandClasses = classes
		label := "90nm-base"
		if node != 0 {
			cfg.Tech = power.TechConfig{Node: node, Variant: power.ITRS}
			label = cfg.Tech.String()
		}
		unmanagedW, _, err := core.RunUnmanaged(cfg, -1, warm*20, meas*20)
		if err != nil {
			return Result{}, fmt.Errorf("technode %s unmanaged: %w", label, err)
		}
		budget := 0.8 * unmanagedW

		bestSplit, bestBIPS, equalBIPS := 0.0, -1.0, 0.0
		for _, s := range splits {
			bips, err := runSplit(cfg, budget, s, classes, warm, meas)
			if err != nil {
				return Result{}, fmt.Errorf("technode %s split %.2f: %w", label, s, err)
			}
			set.Get(label).Append(bips)
			if bips > bestBIPS {
				bestSplit, bestBIPS = s, bips
			}
			if s == 0.50 {
				equalBIPS = bips
			}
		}
		gain := 0.0
		if equalBIPS > 0 {
			gain = 100 * (bestBIPS/equalBIPS - 1)
		}
		rows = append(rows, []string{
			label,
			fmt.Sprintf("%.1f W", budget),
			fmt.Sprintf("%.2f", bestSplit),
			fmt.Sprintf("%.2f", bestBIPS),
			fmt.Sprintf("%+.1f%%", gain),
		})
		key := label
		metrics["opt_big_share_"+key] = bestSplit
		metrics["bips_"+key] = bestBIPS
		metrics["budget_w_"+key] = budget
	}
	b.WriteString("Big-island budget share maximizing chip BIPS, 0.8 budget, Mix-1 big.LITTLE (2 OoO + 2 little islands), ITRS scaling:\n")
	b.WriteString(trace.Table([]string{"Node", "Budget", "Best big share", "BIPS", "vs 50/50"}, rows))
	b.WriteString("\nShares sweep 0.50-0.85; the little islands absorb the remainder.\n")
	return Result{
		ID:      "technode",
		Title:   "Optimal big/little budget split across technology nodes",
		Text:    b.String(),
		Sets:    map[string]*trace.Set{"technode": set},
		Metrics: metrics,
	}, nil
}

// runSplit runs one (node, split) point: CPM with the fixed-split policy
// in the oracle-power ablation, returning the mean measured-epoch BIPS.
func runSplit(cfg sim.Config, budgetW, bigFrac float64, classes []power.CoreClass, warmEpochs, measEpochs int) (float64, error) {
	cmp, err := sim.New(cfg)
	if err != nil {
		return 0, err
	}
	ctl, err := core.New(cmp, core.Config{
		BudgetW:        budgetW,
		Policy:         splitPolicy{bigFrac: bigFrac, classes: classes},
		UseOraclePower: true,
	})
	if err != nil {
		return 0, err
	}
	for k := 0; k < warmEpochs*20; k++ {
		ctl.Step()
	}
	var bips float64
	n := measEpochs * 20
	for k := 0; k < n; k++ {
		bips += ctl.Step().Sim.TotalBIPS
	}
	return bips / float64(n), nil
}
