package experiments

import (
	"fmt"

	"github.com/cpm-sim/cpm/internal/check"
	"github.com/cpm-sim/cpm/internal/core"
	"github.com/cpm-sim/cpm/internal/engine"
	"github.com/cpm-sim/cpm/internal/gpm"
	"github.com/cpm-sim/cpm/internal/metrics"
	"github.com/cpm-sim/cpm/internal/pic"
	"github.com/cpm-sim/cpm/internal/sim"
)

// runSummary is the engine's run summary; the experiments previously
// aggregated this by hand in three bespoke loops.
type runSummary = engine.Summary

// cpmParams configures a managed run.
type cpmParams struct {
	budgetW     float64
	policy      gpm.Policy
	gpmPeriod   int
	warmEpochs  int
	measEpochs  int
	keepSteps   bool
	oraclePower bool
	faults      *core.FaultPlan
	// adaptive runs the PICs with the adaptive-gain estimator.
	adaptive *pic.AdaptiveConfig
	// observers watch the run as it executes (engine.Observer fan-out).
	observers []engine.Observer
	// opts carries the harness Options through to the run: Check attaches
	// the standard invariant suite and fails the run on any violation;
	// Metrics attaches a telemetry observer writing into the registry.
	opts Options
}

// metricsObserver builds the telemetry observer for a run, or nil when the
// harness was not given a registry.
func metricsObserver(reg *metrics.Registry, label string, cmp *sim.CMP, pics []*pic.Controller) engine.Observer {
	if reg == nil {
		return nil
	}
	return metrics.NewObserver(reg, metrics.ObserverOptions{Label: label, Chip: cmp, PICs: pics})
}

// runCPM executes a CPM-managed run and summarises its measurement window.
func runCPM(cfg sim.Config, cal core.Calibration, p cpmParams) (runSummary, error) {
	cmp, err := sim.New(cfg)
	if err != nil {
		return runSummary{}, err
	}
	period := p.gpmPeriod
	if period <= 0 {
		period = 20
	}
	c, err := core.New(cmp, core.Config{
		BudgetW:        p.budgetW,
		Policy:         p.policy,
		GPMPeriod:      period,
		Transducers:    cal.Transducers,
		UseOraclePower: p.oraclePower,
		Faults:         p.faults,
		Adaptive:       p.adaptive,
	})
	if err != nil {
		return runSummary{}, err
	}
	obs := append([]engine.Observer(nil), p.observers...)
	var suite *check.Suite
	if p.opts.Check {
		ccfg := check.ForChip(cmp, p.budgetW)
		if p.faults != nil {
			// The injected fault deliberately breaks provisioning; every
			// other invariant must still hold under it.
			ccfg.BudgetW = 0
		}
		suite = check.ForCPMWithConfig(c, ccfg)
		obs = append(obs, suite)
	}
	if m := metricsObserver(p.opts.Metrics, fmt.Sprintf("cpm-%.2fW", p.budgetW), cmp, picsOf(cmp, c)); m != nil {
		obs = append(obs, m)
	}
	s, err := engine.NewSession(engine.NewCPMRunner(c), engine.SessionConfig{
		WarmEpochs:    p.warmEpochs,
		MeasureEpochs: p.measEpochs,
		Period:        period,
		BudgetW:       p.budgetW,
		KeepSteps:     p.keepSteps,
		Label:         "cpm",
	}, obs...)
	if err != nil {
		return runSummary{}, err
	}
	sum := s.Run()
	if suite != nil {
		if err := suite.Err(); err != nil {
			return sum, fmt.Errorf("cpm run (budget %.1f W): %w", p.budgetW, err)
		}
	}
	return sum, nil
}

// runMaxBIPS executes the MaxBIPS baseline: every GPM period the planner
// picks the level combination maximizing predicted BIPS under the budget.
// With static true (the paper's setup, used by every comparison figure),
// predictions come from a workload-blind static characterization table; the
// adaptive mode predicts from last-epoch per-island observations (the
// original Isci et al. formulation) and is kept for ablations.
func runMaxBIPS(cfg sim.Config, budgetW float64, gpmPeriod, warmEpochs, measEpochs int, static bool, o Options) (runSummary, error) {
	cmp, err := sim.New(cfg)
	if err != nil {
		return runSummary{}, err
	}
	planner, err := engine.NewPlanner(cmp)
	if err != nil {
		return runSummary{}, err
	}
	if static {
		if err := planner.SetStaticTable(engine.StaticPredictionTable(cmp)); err != nil {
			return runSummary{}, err
		}
	}
	period := gpmPeriod
	if period <= 0 {
		period = 20
	}
	r, err := engine.NewMaxBIPSRunner(cmp, planner, budgetW, period)
	if err != nil {
		return runSummary{}, err
	}
	var obs []engine.Observer
	var suite *check.Suite
	if o.Check {
		// MaxBIPS plans open-loop from predictions; realized power
		// overshooting the budget is the paper's result for it, not a bug,
		// so its budget tolerance is widened to the reported ~20%.
		ccfg := check.ForChip(cmp, budgetW)
		ccfg.BudgetTolFrac = 0.25
		ccfg.IslandTolFrac = 0.25
		suite = check.All(ccfg)
		obs = append(obs, suite)
	}
	if m := metricsObserver(o.Metrics, fmt.Sprintf("maxbips-%.2fW", budgetW), cmp, nil); m != nil {
		obs = append(obs, m)
	}
	s, err := engine.NewSession(r, engine.SessionConfig{
		WarmEpochs:    warmEpochs,
		MeasureEpochs: measEpochs,
		Period:        period,
		BudgetW:       budgetW,
		Label:         "maxbips",
	}, obs...)
	if err != nil {
		return runSummary{}, err
	}
	sum := s.Run()
	if suite != nil {
		if err := suite.Err(); err != nil {
			return sum, fmt.Errorf("maxbips run (budget %.1f W): %w", budgetW, err)
		}
	}
	return sum, nil
}

// runUnmanagedWindow measures the no-power-management baseline over exactly
// the same interval window as a managed run (same seed, same phases), so
// instruction counts are directly comparable.
func runUnmanagedWindow(cfg sim.Config, warmEpochs, measEpochs, gpmPeriod int, o Options) (runSummary, error) {
	cfg.InitialLevel = -1
	cmp, err := sim.New(cfg)
	if err != nil {
		return runSummary{}, err
	}
	var obs []engine.Observer
	var suite *check.Suite
	if o.Check {
		suite = check.All(check.ForChip(cmp, 0))
		obs = append(obs, suite)
	}
	if m := metricsObserver(o.Metrics, "unmanaged", cmp, nil); m != nil {
		obs = append(obs, m)
	}
	s, err := engine.NewSession(engine.NewChipRunner(cmp), engine.SessionConfig{
		WarmEpochs:    warmEpochs,
		MeasureEpochs: measEpochs,
		Period:        gpmPeriod,
		Label:         "unmanaged",
	}, obs...)
	if err != nil {
		return runSummary{}, err
	}
	sum := s.Run()
	if suite != nil {
		if err := suite.Err(); err != nil {
			return sum, fmt.Errorf("unmanaged run: %w", err)
		}
	}
	return sum, nil
}

// picsOf collects the managed chip's per-island controllers for telemetry.
func picsOf(cmp *sim.CMP, c *core.CPM) []*pic.Controller {
	out := make([]*pic.Controller, cmp.NumIslands())
	for i := range out {
		out[i] = c.PIC(i)
	}
	return out
}

// degradation returns the throughput loss of run vs baseline as a fraction.
func degradation(run, baseline runSummary) float64 {
	return engine.Degradation(run, baseline)
}
